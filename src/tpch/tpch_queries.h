#ifndef HETDB_TPCH_TPCH_QUERIES_H_
#define HETDB_TPCH_TPCH_QUERIES_H_

#include "ssb/ssb_queries.h"  // NamedQuery

namespace hetdb {

/// The TPC-H subset evaluated in the paper (Q2–Q7, Appendix C.2), as plan
/// builders over the schema produced by GenerateTpchDatabase.
///
/// Deviations from the standard SQL, mirroring the paper's modifications:
///  * Q2's "p_type like '%BRASS'" is an equality on the materialized third
///    type syllable `p_type3`; the correlated min-supplycost subquery is
///    evaluated as a group-by over a duplicated candidate subtree and joined
///    back on a composite (partkey, supplycost) key.
///  * Q4's EXISTS becomes a group-by on qualifying lineitem orderkeys
///    followed by a key join (an equivalent semi-join rewrite).
///  * Q5's and Q7's cross-column nation conditions are evaluated with a
///    projected key difference followed by a selection.
std::vector<NamedQuery> TpchQueries();

Result<NamedQuery> TpchQueryByName(const std::string& name);

}  // namespace hetdb

#endif  // HETDB_TPCH_TPCH_QUERIES_H_
