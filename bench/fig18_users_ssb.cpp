// Figure 18(a): SSB workload execution time (SF 10, fixed total work) with a
// growing number of parallel users. GPU-Only degrades under heap contention;
// the dynamic fault reaction and concurrency bound of (Data-Driven) Chopping
// keep performance stable.

#include "bench/bench_util.h"

using namespace hetdb;
using namespace hetdb::bench;

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv);
  const double sf = args.quick ? 5 : 10;
  const int reps = args.quick ? 1 : 2;
  const std::vector<int> users =
      args.quick ? std::vector<int>{1, 8} : std::vector<int>{1, 4, 8, 16, 20};
  const std::vector<Strategy> strategies = {
      Strategy::kCpuOnly,      Strategy::kGpuOnly,
      Strategy::kCriticalPath, Strategy::kDataDriven,
      Strategy::kChopping,     Strategy::kDataDrivenChopping};

  Banner("Figure 18(a)",
         "SSB workload time vs parallel users (SF " +
             std::to_string(static_cast<int>(sf)) + ", " +
             std::to_string(reps * 13) + " queries total)");

  SsbGeneratorOptions gen;
  args.ApplySeed(gen);
  gen.scale_factor = sf;
  DatabasePtr db = GenerateSsbDatabase(gen);

  std::vector<std::string> header = {"users"};
  for (Strategy strategy : strategies) {
    header.push_back(std::string(StrategyToString(strategy)) + "[ms]");
  }
  PrintHeader(header);

  for (int user_count : users) {
    PrintCell(static_cast<uint64_t>(user_count));
    for (Strategy strategy : strategies) {
      WorkloadRunOptions options;
      options.repetitions = reps;
      options.num_users = user_count;
      options.warmup_repetitions = 1;
      args.ApplySessionKnobs(options);
      const WorkloadRunResult result = RunPoint(
          PaperConfig(args.time_scale), db, strategy, SsbQueries(), options);
      PrintCell(result.wall_millis);
    }
    EndRow();
  }
  return 0;
}
