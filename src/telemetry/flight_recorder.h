#ifndef HETDB_TELEMETRY_FLIGHT_RECORDER_H_
#define HETDB_TELEMETRY_FLIGHT_RECORDER_H_

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace hetdb {

/// One entry in the flight recorder: a finished query's summary, an engine
/// state transition (circuit breaker, fault-injector episodes, detector
/// escalations), or a fault event.
struct FlightRecord {
  enum class Kind { kQuerySummary, kStateTransition, kFault };

  Kind kind = Kind::kStateTransition;
  int64_t ts_micros = 0;   ///< since recorder construction (monotonic)
  uint64_t sequence = 0;   ///< global record order (total, gap-free)
  uint64_t query_id = 0;   ///< 0 when not query-scoped
  std::string name;        ///< query name / component / fault site
  /// Flat key/value payload, serialized in the given (deterministic) order.
  std::vector<std::pair<std::string, std::string>> fields;
};

const char* FlightRecordKindName(FlightRecord::Kind kind);

/// Always-on ring buffer of recent engine history ("flight recorder").
///
/// Writers append under a mutex held only for a swap into the ring — no
/// allocation and no I/O inside the lock beyond moving the record — so it is
/// cheap enough to leave enabled in every run. When something goes wrong
/// (circuit breaker trips, a chaos fault escalates to a device-offline
/// episode) the engine calls AutoDump() and the last `capacity` records are
/// written as JSONL for post-mortem analysis; `\flight` in the SQL shell and
/// Dump() expose the same snapshot on demand.
class FlightRecorder {
 public:
  explicit FlightRecorder(size_t capacity = 256);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Appends a record, stamping ts_micros and sequence. Evicts the oldest
  /// record once the ring is full.
  void Record(FlightRecord record);

  // Convenience constructors for the three record kinds.
  void RecordQuerySummary(
      uint64_t query_id, const std::string& name,
      std::vector<std::pair<std::string, std::string>> fields);
  void RecordStateTransition(const std::string& component,
                             const std::string& from, const std::string& to);
  void RecordFault(const std::string& site,
                   std::vector<std::pair<std::string, std::string>> fields);

  /// Records currently in the ring, oldest first.
  std::vector<FlightRecord> Snapshot() const;
  /// Total records ever written (>= Snapshot().size()).
  uint64_t total_recorded() const;
  size_t capacity() const { return capacity_; }

  /// One JSON object per line, oldest first; deterministic field order.
  static std::string ToJsonl(const std::vector<FlightRecord>& records);
  /// Writes Snapshot() as JSONL to `path`. Returns false on I/O failure.
  bool Dump(const std::string& path) const;

  /// Arms automatic dumps: when AutoDump(reason) fires, the snapshot is
  /// written to `path` (suffixed with a dump ordinal so successive dumps
  /// don't clobber each other: "<path>" then "<path>.1", "<path>.2", ...).
  /// An empty path disarms.
  void SetAutoDumpPath(std::string path);
  /// Dumps to the armed path, tagging the dump with `reason`. No-op when
  /// disarmed. Returns the path written, or "" when disarmed/failed.
  std::string AutoDump(const std::string& reason);

 private:
  int64_t NowMicros() const;

  const size_t capacity_;
  const std::chrono::steady_clock::time_point epoch_;

  mutable std::mutex mutex_;
  std::vector<FlightRecord> ring_;  // ring_[seq % capacity_]
  uint64_t next_sequence_ = 0;
  std::string auto_dump_path_;
  uint64_t auto_dump_count_ = 0;
};

}  // namespace hetdb

#endif  // HETDB_TELEMETRY_FLIGHT_RECORDER_H_
