#ifndef HETDB_ENGINE_ENGINE_CONTEXT_H_
#define HETDB_ENGINE_ENGINE_CONTEXT_H_

#include <memory>

#include "cache/data_cache.h"
#include "common/config.h"
#include "fault/circuit_breaker.h"
#include "hype/cost_model.h"
#include "hype/load_tracker.h"
#include "hype/scheduler.h"
#include "sim/simulator.h"
#include "storage/database.h"
#include "telemetry/telemetry.h"

namespace hetdb {

/// Owns the full runtime state of one HetDB instance: the simulated machine,
/// the device data cache, the HyPE optimizer state, and telemetry (metric
/// registry + workload counters; trace recording is process-global, see
/// telemetry/trace_recorder.h).
///
/// Benchmarks construct one EngineContext per experimental configuration;
/// executors and placement strategies all operate against it.
class EngineContext {
 public:
  EngineContext(const SystemConfig& config, DatabasePtr database,
                EvictionPolicy cache_policy = EvictionPolicy::kLfu)
      : simulator_(std::make_unique<Simulator>(config)),
        cache_(std::make_unique<DataCache>(config.device_cache_bytes,
                                           cache_policy, simulator_.get(),
                                           config.compress_device_cache)),
        cost_model_(std::make_unique<CostModel>(simulator_.get())),
        load_tracker_(std::make_unique<LoadTracker>()),
        scheduler_(std::make_unique<HypeScheduler>(
            cost_model_.get(), load_tracker_.get(), simulator_.get())),
        telemetry_(std::make_unique<Telemetry>()),
        breaker_(std::make_unique<DeviceCircuitBreaker>(
            DeviceCircuitBreaker::Options(), &telemetry_->registry())),
        database_(std::move(database)) {
    // Fault-injection counters surface in this context's metric exports.
    simulator_->fault_injector().BindMetrics(&telemetry_->registry());
  }

  EngineContext(const EngineContext&) = delete;
  EngineContext& operator=(const EngineContext&) = delete;

  Simulator& simulator() { return *simulator_; }
  DataCache& cache() { return *cache_; }
  CostModel& cost_model() { return *cost_model_; }
  LoadTracker& load_tracker() { return *load_tracker_; }
  HypeScheduler& scheduler() { return *scheduler_; }
  Telemetry& telemetry() { return *telemetry_; }
  /// Workload counters live on the telemetry bundle; `metrics()` remains as
  /// the established spelling at the recording sites.
  Telemetry& metrics() { return *telemetry_; }
  /// Abort-storm circuit breaker gating device placement and execution.
  DeviceCircuitBreaker& breaker() { return *breaker_; }
  const DatabasePtr& database() const { return database_; }
  const SystemConfig& config() const { return simulator_->config(); }

  /// Clears all per-run statistics (bus, allocator, cache, metrics) while
  /// keeping cache contents and learned cost models.
  void ResetRunStats() {
    simulator_->bus().ResetStats();
    simulator_->device_heap().ResetStats();
    simulator_->fault_injector().ResetStats();
    cache_->ResetStats();
    telemetry_->Reset();
  }

 private:
  std::unique_ptr<Simulator> simulator_;
  std::unique_ptr<DataCache> cache_;
  std::unique_ptr<CostModel> cost_model_;
  std::unique_ptr<LoadTracker> load_tracker_;
  std::unique_ptr<HypeScheduler> scheduler_;
  std::unique_ptr<Telemetry> telemetry_;
  std::unique_ptr<DeviceCircuitBreaker> breaker_;  // after telemetry_
  DatabasePtr database_;
};

}  // namespace hetdb

#endif  // HETDB_ENGINE_ENGINE_CONTEXT_H_
