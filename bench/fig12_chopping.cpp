// Figure 12: query chopping achieves near-optimal performance under
// parallelism — the device worker pool bounds concurrently running device
// operators, so heap contention (and its abort/transfer overhead) almost
// disappears.

#include "bench/bench_util.h"

using namespace hetdb;
using namespace hetdb::bench;

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv);
  const double sf = args.quick ? 5 : 10;
  const int total_queries = args.quick ? 24 : 48;

  SsbGeneratorOptions gen;
  args.ApplySeed(gen);
  gen.scale_factor = sf;
  DatabasePtr db = GenerateSsbDatabase(gen);

  Banner("Figure 12",
         "Parallel selection workload (B.2): chopping variants vs the "
         "contention-prone strategies");

  RunContentionSweep(args, db,
                     {Strategy::kChopping, Strategy::kDataDrivenChopping,
                      Strategy::kGpuOnly, Strategy::kCpuOnly},
                     {ContentionMetric::kWallMillis}, total_queries);
  return 0;
}
