file(REMOVE_RECURSE
  "libhetdb_tpch.a"
)
