#!/usr/bin/env python3
"""Splits a full benchmark sweep log (bench_output.txt) into per-figure TSV
files for plotting.

Usage:
    python3 scripts/split_bench_output.py bench_output.txt out_dir/

Each `# <banner>` section becomes `<out_dir>/<slug>.tsv` with the banner
kept as comment lines. Columns in the source are fixed-width; they are
re-emitted tab-separated.
"""

import os
import re
import sys


def slugify(title: str) -> str:
    slug = re.sub(r"[^a-zA-Z0-9]+", "_", title.strip().lower()).strip("_")
    return slug or "section"


def split_columns(line: str) -> list[str]:
    # Source rows are printed in 24-character fixed-width cells.
    cells = [line[i : i + 24].strip() for i in range(0, len(line), 24)]
    return [c for c in cells if c]


def main() -> int:
    if len(sys.argv) != 3:
        print(__doc__)
        return 1
    source, out_dir = sys.argv[1], sys.argv[2]
    os.makedirs(out_dir, exist_ok=True)

    sections: list[tuple[str, list[str]]] = []
    with open(source, encoding="utf-8") as f:
        for raw in f:
            line = raw.rstrip("\n")
            if line.startswith("# ") and (
                line.startswith("# Figure") or line.startswith("# Ablation")
            ):
                sections.append((line[2:], []))
                continue
            if sections:
                sections[-1][1].append(line)

    for title, lines in sections:
        path = os.path.join(out_dir, slugify(title) + ".tsv")
        with open(path, "w", encoding="utf-8") as out:
            out.write(f"# {title}\n")
            for line in lines:
                if not line or line.startswith("#"):
                    if line.strip("# "):
                        out.write(f"# {line.lstrip('# ')}\n")
                    continue
                out.write("\t".join(split_columns(line)) + "\n")
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
