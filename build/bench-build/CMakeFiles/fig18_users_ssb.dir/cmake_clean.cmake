file(REMOVE_RECURSE
  "../bench/fig18_users_ssb"
  "../bench/fig18_users_ssb.pdb"
  "CMakeFiles/fig18_users_ssb.dir/fig18_users_ssb.cpp.o"
  "CMakeFiles/fig18_users_ssb.dir/fig18_users_ssb.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_users_ssb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
