#ifndef HETDB_ENGINE_CHOPPING_EXECUTOR_H_
#define HETDB_ENGINE_CHOPPING_EXECUTOR_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/cancellation.h"
#include "engine/engine_context.h"
#include "engine/operator_executor.h"
#include "operators/plan_node.h"

namespace hetdb {

/// Run-time operator placement callback. Invoked when an operator becomes
/// ready (all children materialized), with the children's results — so the
/// placer sees exact input cardinalities and current device residency.
using RuntimePlacer = std::function<ProcessorKind(
    const PlanNode& node, const std::vector<OperatorResult*>& inputs,
    EngineContext& ctx)>;

/// Per-query lifecycle controls: a cancel token the client may fire at any
/// time and an optional absolute deadline. Both are checked when an operator
/// is scheduled and again when a worker picks it up; a query that trips
/// either fails promptly with Cancelled and releases its device-held
/// intermediates.
struct QueryControls {
  CancelToken cancel;
  std::chrono::steady_clock::time_point deadline =
      std::chrono::steady_clock::time_point::max();
  /// Per-query resource attribution (EXPLAIN ANALYZE, workload breakdowns).
  /// Optional: when null the executor creates its own, so flight-recorder
  /// summaries stay complete; pass one to read the stats back afterwards.
  QueryStatsPtr stats;

  bool has_deadline() const {
    return deadline != std::chrono::steady_clock::time_point::max();
  }
};

/// The paper's *query chopping* executor (Section 5.2).
///
/// Queries are chopped into their operators: leaf operators enter the global
/// operator stream immediately; every other operator inserts itself once all
/// its children have completed. A run-time placer assigns each ready
/// operator to a processor's *ready queue*, from which that processor's pool
/// of worker threads pulls work. The pool sizes bound the number of
/// concurrently *running* operators per processor — the GPU pool size is the
/// knob that prevents heap contention. Plain run-time placement without
/// concurrency limiting (Section 4) is this executor with a large GPU pool.
///
/// Operators that abort on the device are restarted on the CPU by the worker
/// immediately (transient faults get a bounded device retry first, see
/// ExecuteWithFallback), and — because placement happens at run time — their
/// successors will see a host-resident input and naturally stay on the CPU
/// (Figure 8, right side).
///
/// Lifecycle guarantees:
///  * every future returned by Submit resolves — with the query's result, a
///    clean error, or Cancelled — never std::future_error/broken_promise;
///  * a failed/cancelled query's device-held intermediates are released as
///    its remaining tasks drain, not deferred to executor teardown;
///  * the destructor fails all pending and in-flight queries with Cancelled
///    and joins every worker.
class ChoppingExecutor {
 public:
  ChoppingExecutor(EngineContext* ctx, int cpu_workers, int gpu_workers);
  ~ChoppingExecutor();

  ChoppingExecutor(const ChoppingExecutor&) = delete;
  ChoppingExecutor& operator=(const ChoppingExecutor&) = delete;

  /// Chops the query and inserts its leaves into the operator stream.
  std::future<Result<TablePtr>> Submit(PlanNodePtr root, RuntimePlacer placer,
                                       QueryControls controls = {});

  /// Submit and wait.
  Result<TablePtr> ExecuteQuery(PlanNodePtr root, RuntimePlacer placer,
                                QueryControls controls = {});

  int cpu_workers() const { return cpu_workers_; }
  int gpu_workers() const { return gpu_workers_; }

  /// Operators currently waiting in `kind`'s ready queue (not yet picked up
  /// by a worker). A load signal for admission governors: a deep device
  /// queue with a small pool means new work will wait, not run.
  size_t ReadyQueueDepth(ProcessorKind kind) const;

 private:
  struct QueryExec;

  /// One plan operator within one submitted query.
  struct OpTask {
    QueryExec* query = nullptr;
    const PlanNode* node = nullptr;
    OpTask* parent = nullptr;
    std::vector<OpTask*> children;
    std::atomic<int> pending_children{0};
    OperatorResult result;
    ProcessorKind assigned = ProcessorKind::kCpu;
    /// Target co-processor when `assigned == kGpu` (sharding policy pick).
    int device = 0;
    double load_estimate_micros = 0;
    NodeStats* stats = nullptr;  ///< this operator's attribution slot
    /// When the task entered its ready queue (queue-wait measurement).
    std::chrono::steady_clock::time_point ready_at{};
  };

  struct QueryExec {
    PlanNodePtr root;
    RuntimePlacer placer;
    QueryControls controls;
    std::promise<Result<TablePtr>> promise;
    /// Declared before `tasks` so attributed device allocations held by task
    /// results are destroyed while the stats object is still alive.
    QueryStatsPtr stats;
    std::vector<std::unique_ptr<OpTask>> tasks;
    std::atomic<bool> failed{false};
    /// Guards the promise: exactly one of {root success, FailQuery} wins.
    std::atomic<bool> done{false};
    uint64_t query_id = 0;  ///< stamps this query's trace spans
    /// Sharding home (largest scan's affinity device); biases every device
    /// pick so the query's tasks stay on one device.
    int home_device = -1;
    /// Plan-template fingerprint (op shapes + base columns), the brownout
    /// controller's hot-template key.
    uint64_t template_fp = 0;
    /// Submit-time brownout verdict: false pins every operator of this query
    /// to the CPU (L2 cold-template pinning / L3 survival mode).
    bool device_allowed = true;
  };

  using QueryExecPtr = std::shared_ptr<QueryExec>;

  /// Non-OK when the query must stop: already failed, cancelled, or past
  /// its deadline (fails the query as a side effect in the latter cases).
  Status CheckRunnable(const QueryExecPtr& query);
  /// Releases the child results `task` would have consumed — it is their
  /// sole consumer, and it will never run.
  static void ReleaseTaskInputs(OpTask* task);

  /// Places a ready task and pushes it into the chosen ready queue.
  void ScheduleTask(const QueryExecPtr& query, OpTask* task);
  void WorkerLoop(int queue_index);
  void RunTask(const QueryExecPtr& query, OpTask* task, ProcessorKind kind);
  void FailQuery(const QueryExecPtr& query, const Status& status);

  /// Ready-queue index: 0 is the CPU queue, 1 + d is device d's queue —
  /// each device has its own queue and its own pool of `gpu_workers_`
  /// threads, so a slow or tripped device cannot head-of-line-block work
  /// bound for its siblings.
  static int QueueIndex(ProcessorKind kind, int device) {
    return kind == ProcessorKind::kCpu ? 0 : 1 + device;
  }

  EngineContext* ctx_;
  const int cpu_workers_;
  const int gpu_workers_;

  mutable std::mutex mutex_;
  std::condition_variable ready_cv_;
  std::vector<std::deque<std::pair<QueryExecPtr, OpTask*>>> ready_queues_;
  bool shutting_down_ = false;
  /// Every submitted query, so the destructor can fail stragglers whose
  /// promise was never settled. Expired entries are pruned on Submit.
  std::vector<std::weak_ptr<QueryExec>> live_queries_;

  std::vector<std::thread> workers_;
};

}  // namespace hetdb

#endif  // HETDB_ENGINE_CHOPPING_EXECUTOR_H_
