#include "telemetry/trace_recorder.h"

#include <algorithm>

namespace hetdb {

std::atomic<bool> TraceRecorder::enabled_{false};

TraceRecorder::TraceRecorder() : epoch_(std::chrono::steady_clock::now()) {}

TraceRecorder& TraceRecorder::Global() {
  static TraceRecorder* recorder = new TraceRecorder();  // leaked on purpose:
  // worker threads may record during static destruction otherwise.
  return *recorder;
}

int64_t TraceRecorder::NowMicros() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

TraceRecorder::ThreadBuffer& TraceRecorder::LocalBuffer() {
  // The shared_ptr keeps the buffer alive in buffers_ after thread exit, so
  // a Snapshot taken later still sees the thread's events.
  thread_local std::shared_ptr<ThreadBuffer> buffer = [this] {
    auto fresh = std::make_shared<ThreadBuffer>();
    std::lock_guard<std::mutex> lock(mutex_);
    fresh->tid = next_tid_++;
    buffers_.push_back(fresh);
    return fresh;
  }();
  return *buffer;
}

void TraceRecorder::Record(TraceEvent event) {
  ThreadBuffer& buffer = LocalBuffer();
  event.tid = buffer.tid;
  std::lock_guard<std::mutex> lock(buffer.mutex);
  buffer.events.push_back(std::move(event));
}

std::vector<TraceEvent> TraceRecorder::Snapshot() const {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    buffers = buffers_;
  }
  std::vector<TraceEvent> events;
  for (const auto& buffer : buffers) {
    std::lock_guard<std::mutex> lock(buffer->mutex);
    events.insert(events.end(), buffer->events.begin(), buffer->events.end());
  }
  // Total deterministic order — tie-break equal timestamps by thread, name,
  // and duration — so exported traces from identical runs diff cleanly.
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.ts_micros != b.ts_micros) {
                       return a.ts_micros < b.ts_micros;
                     }
                     if (a.tid != b.tid) return a.tid < b.tid;
                     if (a.name != b.name) return a.name < b.name;
                     return a.dur_micros < b.dur_micros;
                   });
  return events;
}

void TraceRecorder::Clear() {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    buffers = buffers_;
  }
  for (const auto& buffer : buffers) {
    std::lock_guard<std::mutex> lock(buffer->mutex);
    buffer->events.clear();
  }
}

size_t TraceRecorder::thread_count() const {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    buffers = buffers_;
  }
  size_t threads = 0;
  for (const auto& buffer : buffers) {
    std::lock_guard<std::mutex> lock(buffer->mutex);
    if (!buffer->events.empty()) ++threads;
  }
  return threads;
}

void TraceSpan::Begin(std::string name, const char* category) {
  active_ = true;
  event_.name = std::move(name);
  event_.category = category;
  event_.ts_micros = TraceRecorder::Global().NowMicros();
}

void TraceSpan::End() {
  if (!active_) return;
  active_ = false;
  event_.dur_micros = TraceRecorder::Global().NowMicros() - event_.ts_micros;
  TraceRecorder::Global().Record(std::move(event_));
  event_ = TraceEvent();
}

void TraceSpan::AddArg(std::string key, std::string value) {
  if (active_) event_.args.emplace_back(std::move(key), std::move(value));
}

void TraceSpan::AddArg(std::string key, int64_t value) {
  if (active_) event_.args.emplace_back(std::move(key), std::to_string(value));
}

void RecordInstantEvent(std::string name, const char* category,
                        uint64_t query_id,
                        std::vector<std::pair<std::string, std::string>> args) {
  TraceRecorder& recorder = TraceRecorder::Global();
  TraceEvent event;
  event.name = std::move(name);
  event.category = category;
  event.ts_micros = recorder.NowMicros();
  event.query_id = query_id;
  event.args = std::move(args);
  recorder.Record(std::move(event));
}

}  // namespace hetdb
