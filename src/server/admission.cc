#include "server/admission.h"

#include <algorithm>

#include "common/logging.h"

namespace hetdb {

namespace {

const char* ThrashStateName(ThrashingDetector::State state) {
  return ThrashingDetector::StateName(state);
}

const char* BreakerStateName(DeviceCircuitBreaker::State state) {
  switch (state) {
    case DeviceCircuitBreaker::State::kClosed:
      return "closed";
    case DeviceCircuitBreaker::State::kOpen:
      return "open";
    case DeviceCircuitBreaker::State::kHalfOpen:
      return "half-open";
  }
  return "unknown";
}

}  // namespace

AdmissionController::AdmissionController(const AdmissionOptions& options,
                                         MetricRegistry* registry,
                                         FlightRecorder* recorder,
                                         std::function<GovernorSignals()> signals)
    : options_(options),
      registry_(registry),
      recorder_(recorder),
      signals_(std::move(signals)) {
  HETDB_CHECK(options_.min_concurrency >= 1);
  HETDB_CHECK(options_.max_concurrency >= options_.min_concurrency);
  limit_ = std::clamp(options_.initial_concurrency, options_.min_concurrency,
                      options_.max_concurrency);
  ewma_service_micros_ = options_.initial_service_micros;
  if (registry_ != nullptr) {
    offered_counter_ = &registry_->GetCounter("admission.offered");
    admitted_counter_ = &registry_->GetCounter("admission.admitted");
    shed_counter_ = &registry_->GetCounter("admission.shed");
    completed_counter_ = &registry_->GetCounter("admission.completed");
    failed_counter_ = &registry_->GetCounter("admission.failed");
    limit_gauge_ = &registry_->GetGauge("admission.concurrency_limit");
    depth_gauge_ = &registry_->GetGauge("admission.queue_depth");
    in_flight_gauge_ = &registry_->GetGauge("admission.in_flight");
    limit_gauge_->Set(limit_);
  }
}

AdmissionController::~AdmissionController() { Stop(); }

void AdmissionController::RegisterTenant(const TenantSpec& spec) {
  std::lock_guard<std::mutex> lock(mutex_);
  TenantState& tenant = TenantLocked(spec.name);
  tenant.spec = spec;
}

AdmissionController::TenantState& AdmissionController::TenantLocked(
    const std::string& name) {
  auto it = tenants_.find(name);
  if (it == tenants_.end()) {
    it = tenants_.try_emplace(name).first;
    it->second.spec.name = name;
    if (registry_ != nullptr) {
      it->second.admitted =
          &registry_->GetCounter("admission.admitted." + name);
      it->second.shed = &registry_->GetCounter("admission.shed." + name);
      it->second.completed =
          &registry_->GetCounter("admission.completed." + name);
    }
  }
  return it->second;
}

double AdmissionController::EstimatedLatencyLocked(
    const TenantState& tenant) const {
  // A new arrival waits behind its *own* tenant's queue: under round-robin
  // each of those entries costs roughly `active_tenants` dispatch turns, and
  // `limit_` servers drain turns at the EWMA service rate. Using the global
  // queue here instead couples the tenants — one tenant's backlog would shed
  // the other's arrivals even when its own lane is empty, and whichever
  // tenant happens to hold the backlog keeps every dispatch slot.
  const double turns = static_cast<double>(tenant.queue.size()) *
                       static_cast<double>(std::max<size_t>(
                           round_robin_.size(), 1));
  const double backlog = turns / static_cast<double>(std::max(limit_, 1));
  return options_.slo_safety_factor * ewma_service_micros_ * (1.0 + backlog);
}

bool AdmissionController::Offer(QueuedQueryPtr query) {
  HETDB_CHECK(query != nullptr);
  std::lock_guard<std::mutex> lock(mutex_);
  offered_++;
  if (offered_counter_ != nullptr) offered_counter_->Increment();
  if (stopped_) {
    ShedLocked(*query, "server shutting down");
    return false;
  }
  TenantState& tenant = TenantLocked(query->tenant);
  if (tenant.queue.size() >= tenant.spec.max_queue) {
    ShedLocked(*query, "tenant queue full");
    return false;
  }
  if (options_.shed_unmeetable && query->controls.has_deadline()) {
    const auto now = std::chrono::steady_clock::now();
    const double remaining_micros =
        std::chrono::duration_cast<std::chrono::microseconds>(
            query->controls.deadline - now)
            .count();
    if (remaining_micros < EstimatedLatencyLocked(tenant)) {
      ShedLocked(*query, "deadline unmeetable at admission");
      return false;
    }
  }
  query->enqueued_at = std::chrono::steady_clock::now();
  if (query->controls.stats != nullptr) {
    // Stamp submission now so queue wait counts into wall time; the
    // executor's own MarkSubmitted is first-call-wins and keeps this.
    query->controls.stats->MarkSubmitted();
  }
  tenant.queue.push_back(std::move(query));
  queued_++;
  if (!tenant.active) {
    tenant.active = true;
    tenant.charged = false;
    round_robin_.push_back(&tenant);
  }
  PublishDepthLocked();
  dispatch_cv_.notify_one();
  return true;
}

void AdmissionController::DeactivateLocked(TenantState* tenant) {
  tenant->active = false;
  tenant->charged = false;
  tenant->deficit = 0;  // an idle tenant accrues no credit
  for (auto it = round_robin_.begin(); it != round_robin_.end(); ++it) {
    if (*it == tenant) {
      round_robin_.erase(it);
      break;
    }
  }
}

QueuedQueryPtr AdmissionController::Take() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    dispatch_cv_.wait(lock, [this] {
      return stopped_ || (queued_ > 0 && in_flight_ < limit_);
    });
    if (stopped_) return nullptr;

    // Weighted deficit round-robin, adapted to dispatch one query per Take:
    // visit the head tenant; credit its quantum once per visit; if its head
    // query fits the deficit, dispatch it, else rotate to the next tenant.
    // Bounded by ring size: every full pass with no dispatch credits every
    // tenant, and deficits are monotone per visit, so progress is certain.
    QueuedQueryPtr picked;
    bool ring_drained = false;
    for (size_t attempts = 0; picked == nullptr; ++attempts) {
      HETDB_CHECK(!round_robin_.empty());
      TenantState* tenant = round_robin_.front();
      // Flush queue heads that died while waiting — cancelled by the client
      // or already past deadline. Doing this before the deficit accounting
      // matters for fairness: a dead entry must not burn its tenant's turn,
      // or a tenant whose backlog aged loses real dispatch slots to the
      // others exactly when it is furthest behind.
      while (!tenant->queue.empty()) {
        QueuedQuery& head = *tenant->queue.front();
        if (head.controls.cancel.cancelled()) {
          if (head.controls.stats != nullptr) {
            head.controls.stats->MarkFinished(false, "cancelled while queued");
          }
          head.promise.set_value(
              Status::Cancelled("cancelled while queued"));
        } else if (head.controls.has_deadline() &&
                   std::chrono::steady_clock::now() >= head.controls.deadline) {
          ShedLocked(head, "deadline expired in queue");
        } else {
          break;
        }
        tenant->queue.pop_front();
        queued_--;
      }
      if (tenant->queue.empty()) {
        DeactivateLocked(tenant);
        PublishDepthLocked();
        if (round_robin_.empty() || queued_ == 0) {
          ring_drained = true;  // back to the condition-variable wait
          break;
        }
        continue;
      }
      if (!tenant->charged) {
        tenant->deficit += options_.wdrr_quantum * tenant->spec.weight;
        // Cap so a long-idle-queue tenant cannot bank unbounded credit.
        tenant->deficit = std::min(
            tenant->deficit, 8.0 * options_.wdrr_quantum * tenant->spec.weight);
        tenant->charged = true;
      }
      HETDB_CHECK(!tenant->queue.empty());
      if (tenant->queue.front()->cost <= tenant->deficit ||
          attempts >= 2 * round_robin_.size()) {
        picked = std::move(tenant->queue.front());
        tenant->queue.pop_front();
        queued_--;
        tenant->deficit = std::max(0.0, tenant->deficit - picked->cost);
        if (tenant->queue.empty()) {
          DeactivateLocked(tenant);
        }
        break;
      }
      // Rotate: this tenant's next visit earns a fresh quantum.
      round_robin_.pop_front();
      tenant->charged = false;
      round_robin_.push_back(tenant);
    }
    if (ring_drained) continue;  // every live query was flushed; wait again

    in_flight_++;
    TenantState& tenant = TenantLocked(picked->tenant);
    if (admitted_counter_ != nullptr) admitted_counter_->Increment();
    if (tenant.admitted != nullptr) tenant.admitted->Increment();
    PublishDepthLocked();
    return picked;
  }
}

void AdmissionController::OnComplete(bool ok, int64_t service_micros) {
  std::lock_guard<std::mutex> lock(mutex_);
  HETDB_CHECK(in_flight_ > 0);
  in_flight_--;
  if (completed_counter_ != nullptr) completed_counter_->Increment();
  if (!ok && failed_counter_ != nullptr) failed_counter_->Increment();
  // Only successful completions feed the estimator. A query cancelled at
  // its deadline reports service >= deadline; letting those samples in can
  // push the EWMA past every arrival's budget, after which the shed test
  // rejects everything and — since shed queries never complete — nothing
  // ever pulls the estimate back down. Successes are bounded by their
  // deadline, so this keeps the estimator able to probe.
  if (ok && service_micros > 0) {
    ewma_service_micros_ =
        options_.ewma_alpha * static_cast<double>(service_micros) +
        (1.0 - options_.ewma_alpha) * ewma_service_micros_;
  }
  if (++completions_since_adjust_ >= options_.governor_period) {
    completions_since_adjust_ = 0;
    AdjustLimitLocked();
  }
  PublishDepthLocked();
  dispatch_cv_.notify_one();
}

void AdmissionController::AdjustLimitLocked() {
  if (!signals_) return;
  const GovernorSignals signals = signals_();
  const int before = limit_;
  if (signals.breaker == DeviceCircuitBreaker::State::kOpen ||
      signals.thrash == ThrashingDetector::State::kThrashing ||
      signals.brownout_level >= 2) {
    limit_ = std::max(options_.min_concurrency, limit_ / 2);
  } else if (signals.breaker == DeviceCircuitBreaker::State::kHalfOpen ||
             signals.thrash == ThrashingDetector::State::kPressure ||
             signals.brownout_level >= 1) {
    limit_ = std::max(options_.min_concurrency, limit_ - 1);
  } else {
    limit_ = std::min(options_.max_concurrency, limit_ + 1);
  }
  if (limit_ != before) {
    if (limit_gauge_ != nullptr) limit_gauge_->Set(limit_);
    if (recorder_ != nullptr) {
      recorder_->RecordStateTransition(
          "admission.governor",
          "limit=" + std::to_string(before),
          "limit=" + std::to_string(limit_) + " thrash=" +
              ThrashStateName(signals.thrash) + " breaker=" +
              BreakerStateName(signals.breaker) + " brownout=L" +
              std::to_string(signals.brownout_level));
    }
    if (limit_ > before) {
      // Raising the limit may unblock more than one waiter.
      dispatch_cv_.notify_all();
    }
  }
}

void AdmissionController::ShedLocked(QueuedQuery& query,
                                     const std::string& reason) {
  shed_total_++;
  if (shed_counter_ != nullptr) shed_counter_->Increment();
  auto it = tenants_.find(query.tenant);
  if (it != tenants_.end() && it->second.shed != nullptr) {
    it->second.shed->Increment();
  }
  uint64_t query_id = 0;
  if (query.controls.stats != nullptr) {
    query_id = query.controls.stats->query_id();
    query.controls.stats->MarkShed("shed: " + reason);
  }
  if (recorder_ != nullptr) {
    recorder_->RecordQuerySummary(
        query_id,
        query.controls.stats != nullptr ? query.controls.stats->name() : "",
        {{"status", "shed"}, {"tenant", query.tenant}, {"reason", reason}});
  }
  query.promise.set_value(Status::ResourceExhausted("shed: " + reason));
}

void AdmissionController::Shed(QueuedQuery& query, const std::string& reason) {
  std::lock_guard<std::mutex> lock(mutex_);
  ShedLocked(query, reason);
}

void AdmissionController::Stop() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (stopped_) return;
  stopped_ = true;
  for (auto& [name, tenant] : tenants_) {
    while (!tenant.queue.empty()) {
      QueuedQueryPtr query = std::move(tenant.queue.front());
      tenant.queue.pop_front();
      queued_--;
      ShedLocked(*query, "server shutting down");
    }
    tenant.active = false;
    tenant.charged = false;
    tenant.deficit = 0;
  }
  round_robin_.clear();
  PublishDepthLocked();
  dispatch_cv_.notify_all();
}

void AdmissionController::PublishDepthLocked() {
  if (depth_gauge_ != nullptr) {
    depth_gauge_->Set(static_cast<int64_t>(queued_));
  }
  if (in_flight_gauge_ != nullptr) in_flight_gauge_->Set(in_flight_);
}

int AdmissionController::concurrency_limit() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return limit_;
}

int AdmissionController::in_flight() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return in_flight_;
}

size_t AdmissionController::queued() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queued_;
}

double AdmissionController::ewma_service_micros() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ewma_service_micros_;
}

}  // namespace hetdb
