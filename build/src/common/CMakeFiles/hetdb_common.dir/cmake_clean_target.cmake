file(REMOVE_RECURSE
  "libhetdb_common.a"
)
