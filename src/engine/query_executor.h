#ifndef HETDB_ENGINE_QUERY_EXECUTOR_H_
#define HETDB_ENGINE_QUERY_EXECUTOR_H_

#include <unordered_map>

#include "engine/engine_context.h"
#include "engine/operator_executor.h"
#include "operators/plan_node.h"

namespace hetdb {

/// Compile-time operator placement: one processor per plan node, fixed
/// before execution starts.
using PlacementMap = std::unordered_map<const PlanNode*, ProcessorKind>;

/// Operator-at-a-time executor for compile-time-placed plans.
///
/// Walks the plan bottom-up; children of an n-ary operator are evaluated in
/// parallel (CoGaDB's inter-operator parallelism, Section 2.5). Each
/// operator runs on its compile-time processor with the standard fault
/// handling — and, crucially, an abort does *not* change the placement of
/// successor operators; the resulting ping-pong transfers are the
/// compile-time weakness the paper illustrates in Figure 8.
class QueryExecutor {
 public:
  explicit QueryExecutor(EngineContext* ctx) : ctx_(ctx) {}

  QueryExecutor(const QueryExecutor&) = delete;
  QueryExecutor& operator=(const QueryExecutor&) = delete;

  /// Executes the plan; nodes missing from `placement` run on the CPU.
  /// `stats` (optional) receives per-query/per-node resource attribution;
  /// when null the executor creates its own so flight-recorder summaries
  /// stay complete.
  Result<TablePtr> Execute(const PlanNodePtr& root,
                           const PlacementMap& placement,
                           QueryStatsPtr stats = nullptr);

 private:
  Result<OperatorResult> ExecuteNode(const PlanNodePtr& node,
                                     const PlacementMap& placement,
                                     const PlanNode* parent);

  EngineContext* ctx_;
  uint64_t query_id_ = 0;   ///< stamps this query's trace spans
  QueryStatsPtr stats_;     ///< attribution target of the running query
  /// Sharding home of the running query (largest scan's affinity device);
  /// biases every device pick so the query stays on one device.
  int home_device_ = -1;
};

}  // namespace hetdb

#endif  // HETDB_ENGINE_QUERY_EXECUTOR_H_
