// Quickstart: generate a small Star Schema Benchmark database, run one query
// under every placement strategy, and print the timings and transfer stats.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "common/stopwatch.h"
#include "placement/strategy_runner.h"
#include "ssb/ssb_generator.h"
#include "ssb/ssb_queries.h"

int main() {
  using namespace hetdb;

  // 1) Generate a deterministic SSB database (scale factor 2 here: 120k
  //    lineorder rows; see DESIGN.md for the scale mapping).
  SsbGeneratorOptions gen;
  gen.scale_factor = 2.0;
  DatabasePtr db = GenerateSsbDatabase(gen);
  std::printf("SSB database: %zu bytes across %zu tables\n", db->TotalBytes(),
              db->tables().size());

  // 2) Configure the simulated machine: a 4 MB co-processor, half of it
  //    used as data cache.
  SystemConfig config;
  config.device_memory_bytes = 4ull << 20;
  config.device_cache_bytes = 2ull << 20;
  config.time_scale = 0.25;  // speed up the demo without changing ratios

  // 3) Run SSB Q3.3 under every strategy.
  Result<NamedQuery> query = SsbQueryByName("Q3.3");
  if (!query.ok()) {
    std::fprintf(stderr, "%s\n", query.status().ToString().c_str());
    return 1;
  }

  std::printf("\n%-22s %10s %12s %10s %8s\n", "strategy", "time[ms]",
              "h2d[ms]", "d2h[ms]", "aborts");
  for (Strategy strategy : kAllStrategies) {
    EngineContext ctx(config, db);
    StrategyRunner runner(&ctx, strategy);

    // Warm up (loads caches, trains cost models), then refresh the data
    // placement and measure.
    Result<PlanNodePtr> warm = query->builder(*db);
    if (!warm.ok()) return 1;
    (void)runner.RunQuery(warm.value());
    runner.RefreshDataPlacement();
    ctx.ResetRunStats();

    Result<PlanNodePtr> plan = query->builder(*db);
    if (!plan.ok()) return 1;
    Stopwatch watch;
    Result<TablePtr> result = runner.RunQuery(plan.value());
    const double ms = watch.ElapsedMillis();
    if (!result.ok()) {
      std::printf("%-22s failed: %s\n", StrategyToString(strategy),
                  result.status().ToString().c_str());
      continue;
    }
    PcieBus& bus = ctx.simulator().bus();
    std::printf("%-22s %10.2f %12.2f %10.2f %8llu   (%zu result rows)\n",
                StrategyToString(strategy), ms,
                bus.transfer_micros(TransferDirection::kHostToDevice) / 1000.0,
                bus.transfer_micros(TransferDirection::kDeviceToHost) / 1000.0,
                static_cast<unsigned long long>(
                    ctx.metrics().gpu_operator_aborts()),
                result.value()->num_rows());
  }
  return 0;
}
