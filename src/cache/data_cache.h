#ifndef HETDB_CACHE_DATA_CACHE_H_
#define HETDB_CACHE_DATA_CACHE_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/status.h"
#include "sim/simulator.h"
#include "storage/column.h"

namespace hetdb {

/// Cache eviction / placement strategies compared in Appendix E.
enum class EvictionPolicy { kLru, kLfu };

const char* EvictionPolicyToString(EvictionPolicy policy);

/// Statistics exposed by the cache (reset per workload run).
struct DataCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;
  uint64_t evictions = 0;
  uint64_t placement_job_runs = 0;
  /// Loads abandoned because the PCIe transfer faulted (entry rolled back).
  uint64_t load_failures = 0;
};

/// The co-processor's column data cache and data placement manager.
///
/// Device memory set aside as *data cache* (Section 2.1) holds copies of
/// frequently used base-table columns so device operators can read them
/// without a PCIe transfer. Two usage modes coexist:
///
///  * **Operator-driven** (the state of the art the paper improves on):
///    operators call `RequireOnDevice`; on a miss the column is transferred
///    and demand-inserted, evicting per LRU/LFU. When the working set
///    exceeds the cache this thrashes (Figure 2).
///  * **Data-driven** (Section 3): only the background placement job
///    (`RunPlacementJob`, the paper's Algorithm 1) changes cache content,
///    pinning the most frequently accessed columns; the query processor
///    merely checks `IsCached` and places operators accordingly.
///
/// Leases implement the paper's reference counters: a column cannot be
/// dropped while an operator reads it; evictions of leased entries are
/// deferred to the last release. Concurrent loads of the same column block
/// on a per-entry latch rather than a global lock ("fine-grained latching").
class DataCache {
 public:
  /// `device_id` selects which device this cache (and its transfers) belong
  /// to; all loads go over that device's PCIe link.
  DataCache(size_t capacity_bytes, EvictionPolicy policy, Simulator* simulator,
            bool compress_entries = false, int device_id = 0);
  ~DataCache();

  DataCache(const DataCache&) = delete;
  DataCache& operator=(const DataCache&) = delete;

  /// RAII read-lease on a cached column; releases the reference count on
  /// destruction. Move-only.
  class Lease {
   public:
    Lease() = default;
    Lease(DataCache* cache, std::string key) : cache_(cache), key_(std::move(key)) {}
    ~Lease() { Release(); }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    Lease(Lease&& other) noexcept { *this = std::move(other); }
    Lease& operator=(Lease&& other) noexcept {
      if (this != &other) {
        Release();
        cache_ = other.cache_;
        key_ = std::move(other.key_);
        other.cache_ = nullptr;
      }
      return *this;
    }
    bool valid() const { return cache_ != nullptr; }
    void Release();

   private:
    DataCache* cache_ = nullptr;
    std::string key_;
  };

  /// Outcome of RequireOnDevice.
  struct Access {
    bool hit = false;       ///< column was already device-resident
    bool resident = false;  ///< column is device-resident after the call
    Lease lease;            ///< valid iff resident
    /// Non-OK when the load transfer faulted: the column is neither cached
    /// nor transferred, and the caller must abort the operator with this
    /// status (classification decides between device retry and CPU).
    Status status;
  };

  /// True iff `key` is cached and ready (data-driven placement test).
  bool IsCached(const std::string& key) const;

  /// Takes a lease if cached; records the access for LRU/LFU bookkeeping.
  std::optional<Lease> TryGet(const std::string& key);

  /// Operator-driven access: returns a lease on a hit; on a miss transfers
  /// the column over the bus and demand-inserts it (evicting as needed). If
  /// the column cannot fit even after evicting every unleased, unpinned
  /// entry, the transfer still happens but the column is *transient*
  /// (`resident == false`): the caller must hold it in device heap for the
  /// operator's lifetime — this is the cache-thrashing path.
  Access RequireOnDevice(const ColumnPtr& column, const std::string& key);

  /// The paper's Algorithm 1: given all candidate columns, selects the most
  /// frequently accessed prefix that fits the budget, evicts cached columns
  /// that fell out of the set, and transfers newly selected ones. Entries
  /// cached by the job are pinned against demand eviction.
  void RunPlacementJob(
      const std::vector<std::pair<std::string, ColumnPtr>>& columns);

  /// Pins/unpins an entry manually (e.g. warm-up in benchmarks).
  Status Pin(const ColumnPtr& column, const std::string& key);

  /// Inserts `column` as a ready, pinned entry *without* a bus transfer —
  /// for cross-device rebalancing, where the bytes already arrived over the
  /// D2D path and charging this device's PCIe link again would double-count.
  Status AdmitMigrated(const ColumnPtr& column, const std::string& key);

  /// Drops every droppable entry (leased entries are marked for eviction).
  void Clear();

  /// Installs a demand-admission gate (null clears). While the gate returns
  /// false, RequireOnDevice misses still transfer the column but no longer
  /// demand-insert it (the transient path): the resident hot set stops
  /// churning under pressure. The brownout controller's L2 level is the
  /// intended caller; the gate must be cheap and lock-free (it is invoked
  /// under the cache mutex).
  void SetAdmissionGate(std::function<bool()> gate);

  size_t capacity_bytes() const { return capacity_bytes_; }
  size_t used_bytes() const;
  DataCacheStats stats() const;
  void ResetStats();
  EvictionPolicy policy() const { return policy_; }

  /// Keys currently cached and ready (diagnostics, tests).
  std::vector<std::string> CachedKeys() const;

  /// Cached-and-ready columns with their source ColumnPtr (rebalancing:
  /// a tripped device's resident set is re-pinned on survivors).
  std::vector<std::pair<std::string, ColumnPtr>> ResidentColumns() const;

  int device_id() const { return device_id_; }

  /// Bytes one cache entry for `column` occupies (compressed when entry
  /// compression is on).
  size_t EntryBytes(const Column& column) const {
    return compress_entries_ ? column.compressed_bytes() : column.data_bytes();
  }
  bool compress_entries() const { return compress_entries_; }

 private:
  struct Entry {
    ColumnPtr column;
    size_t bytes = 0;
    bool ready = false;          // false while the initial transfer runs
    bool pinned = false;         // owned by the placement job
    bool pending_evict = false;  // drop when ref_count reaches zero
    int ref_count = 0;
    uint64_t last_access = 0;    // LRU clock
    uint64_t access_count = 0;   // LFU counter (demand mode)
  };

  void ReleaseLease(const std::string& key);
  /// Rolls back a reserved-but-unloaded entry after its transfer faulted and
  /// wakes waiters (who re-find the key and treat the vanished entry as a
  /// miss). Takes mutex_.
  void AbandonLoad(const std::string& key);
  /// Evicts unleased, unpinned, ready entries per policy until `bytes` fit.
  /// Returns true on success. Caller holds mutex_.
  bool EvictUntilFits(size_t bytes);
  /// Removes `it` from the map, adjusting used bytes. Caller holds mutex_.
  void RemoveEntry(std::unordered_map<std::string, Entry>::iterator it);
  /// Picks the eviction victim per policy among droppable entries.
  std::unordered_map<std::string, Entry>::iterator PickVictim();

  const size_t capacity_bytes_;
  const EvictionPolicy policy_;
  Simulator* simulator_;
  const bool compress_entries_;
  const int device_id_;

  mutable std::mutex mutex_;
  std::function<bool()> admission_gate_;
  std::condition_variable load_cv_;  // per-entry "ready" latch
  std::unordered_map<std::string, Entry> entries_;
  size_t used_bytes_ = 0;
  uint64_t access_clock_ = 0;
  DataCacheStats stats_;
};

}  // namespace hetdb

#endif  // HETDB_CACHE_DATA_CACHE_H_
