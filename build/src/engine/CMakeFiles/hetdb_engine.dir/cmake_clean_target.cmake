file(REMOVE_RECURSE
  "libhetdb_engine.a"
)
