// Ablation: database compression on the device cache (Section 6.3). The
// paper argues compression "shifts the point where performance breaks down
// to a larger scale factor ... [but] neither solves the cache thrashing nor
// the heap contention problem". Reproduced by sweeping the SSB scale factor
// with and without bit-packed cache entries under GPU-Only placement: the
// thrashing knee moves right, but past it the degradation is the same.

#include "bench/bench_util.h"

using namespace hetdb;
using namespace hetdb::bench;

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv);
  const std::vector<double> scale_factors =
      args.quick ? std::vector<double>{2, 5} : std::vector<double>{5, 10, 20,
                                                                   30, 40};

  Banner("Ablation: device-cache compression",
         "SSB workload under GPU-Only placement, plain vs bit-packed cache "
         "entries (24 MiB cache)");

  PrintHeader({"sf", "plain[ms]", "compressed[ms]", "plain_h2d[ms]",
               "compressed_h2d[ms]"});
  for (double sf : scale_factors) {
    SsbGeneratorOptions gen;
    args.ApplySeed(gen);
    gen.scale_factor = sf;
    DatabasePtr db = GenerateSsbDatabase(gen);
    WorkloadRunOptions options;
    options.repetitions = 1;
    options.warmup_repetitions = 1;

    SystemConfig plain = PaperConfig(args.time_scale);
    SystemConfig packed = PaperConfig(args.time_scale);
    packed.compress_device_cache = true;

    const WorkloadRunResult p =
        RunPoint(plain, db, Strategy::kGpuOnly, SsbQueries(), options);
    const WorkloadRunResult c =
        RunPoint(packed, db, Strategy::kGpuOnly, SsbQueries(), options);
    PrintCell(static_cast<uint64_t>(sf));
    PrintCell(p.wall_millis);
    PrintCell(c.wall_millis);
    PrintCell(p.h2d_transfer_millis);
    PrintCell(c.h2d_transfer_millis);
    EndRow();
  }
  return 0;
}
