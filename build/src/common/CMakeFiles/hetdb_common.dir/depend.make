# Empty dependencies file for hetdb_common.
# This may be replaced when dependencies are built.
