file(REMOVE_RECURSE
  "../bench/fig15_transfer_scale"
  "../bench/fig15_transfer_scale.pdb"
  "CMakeFiles/fig15_transfer_scale.dir/fig15_transfer_scale.cpp.o"
  "CMakeFiles/fig15_transfer_scale.dir/fig15_transfer_scale.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_transfer_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
