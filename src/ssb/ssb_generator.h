#ifndef HETDB_SSB_SSB_GENERATOR_H_
#define HETDB_SSB_SSB_GENERATOR_H_

#include <cstdint>

#include "storage/database.h"

namespace hetdb {

/// Deterministic Star Schema Benchmark data generator (O'Neil et al.).
///
/// One HetDB scale-factor unit is 1/100 of a paper scale factor (DESIGN.md
/// §2): SF 10 generates 600,000 lineorder tuples instead of 60 million, with
/// all simulated device capacities scaled by the same factor, so the
/// working-set-to-cache ratios of the paper's experiments are preserved.
///
/// Value distributions follow the SSB specification where the benchmark
/// queries depend on them (uniform lo_discount 0..10, lo_quantity 1..50,
/// 5 regions x 5 nations x 10 cities, p_mfgr/p_category/p_brand1 hierarchy,
/// 7 calendar years 1992-1998), so every query's selectivity matches the
/// paper's workload.
struct SsbGeneratorOptions {
  double scale_factor = 1.0;
  uint64_t seed = 42;
  /// Lineorder rows per scale-factor unit.
  int64_t lineorder_rows_per_sf = 60000;
};

/// Row counts implied by the options (used by tests and Figure 16).
struct SsbSizes {
  int64_t lineorder = 0;
  int64_t customer = 0;
  int64_t supplier = 0;
  int64_t part = 0;
  int64_t date = 0;
};
SsbSizes ComputeSsbSizes(const SsbGeneratorOptions& options);

/// Generates the five SSB tables into a fresh database.
DatabasePtr GenerateSsbDatabase(const SsbGeneratorOptions& options);

/// The eight lineorder measure columns used by the Appendix B.1 selection
/// micro-workload, in workload order.
extern const char* const kSsbSelectionColumns[8];

}  // namespace hetdb

#endif  // HETDB_SSB_SSB_GENERATOR_H_
