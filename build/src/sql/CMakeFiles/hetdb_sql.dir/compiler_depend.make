# Empty compiler generated dependencies file for hetdb_sql.
# This may be replaced when dependencies are built.
