#ifndef HETDB_ENGINE_CHOPPING_EXECUTOR_H_
#define HETDB_ENGINE_CHOPPING_EXECUTOR_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "engine/engine_context.h"
#include "engine/operator_executor.h"
#include "operators/plan_node.h"

namespace hetdb {

/// Run-time operator placement callback. Invoked when an operator becomes
/// ready (all children materialized), with the children's results — so the
/// placer sees exact input cardinalities and current device residency.
using RuntimePlacer = std::function<ProcessorKind(
    const PlanNode& node, const std::vector<OperatorResult*>& inputs,
    EngineContext& ctx)>;

/// The paper's *query chopping* executor (Section 5.2).
///
/// Queries are chopped into their operators: leaf operators enter the global
/// operator stream immediately; every other operator inserts itself once all
/// its children have completed. A run-time placer assigns each ready
/// operator to a processor's *ready queue*, from which that processor's pool
/// of worker threads pulls work. The pool sizes bound the number of
/// concurrently *running* operators per processor — the GPU pool size is the
/// knob that prevents heap contention. Plain run-time placement without
/// concurrency limiting (Section 4) is this executor with a large GPU pool.
///
/// Operators that abort on the device (ResourceExhausted) are restarted on
/// the CPU by the worker immediately, and — because placement happens at run
/// time — their successors will see a host-resident input and naturally stay
/// on the CPU (Figure 8, right side).
class ChoppingExecutor {
 public:
  ChoppingExecutor(EngineContext* ctx, int cpu_workers, int gpu_workers);
  ~ChoppingExecutor();

  ChoppingExecutor(const ChoppingExecutor&) = delete;
  ChoppingExecutor& operator=(const ChoppingExecutor&) = delete;

  /// Chops the query and inserts its leaves into the operator stream.
  std::future<Result<TablePtr>> Submit(PlanNodePtr root, RuntimePlacer placer);

  /// Submit and wait.
  Result<TablePtr> ExecuteQuery(PlanNodePtr root, RuntimePlacer placer);

  int cpu_workers() const { return cpu_workers_; }
  int gpu_workers() const { return gpu_workers_; }

 private:
  struct QueryExec;

  /// One plan operator within one submitted query.
  struct OpTask {
    QueryExec* query = nullptr;
    const PlanNode* node = nullptr;
    OpTask* parent = nullptr;
    std::vector<OpTask*> children;
    std::atomic<int> pending_children{0};
    OperatorResult result;
    ProcessorKind assigned = ProcessorKind::kCpu;
    double load_estimate_micros = 0;
  };

  struct QueryExec {
    PlanNodePtr root;
    RuntimePlacer placer;
    std::promise<Result<TablePtr>> promise;
    std::vector<std::unique_ptr<OpTask>> tasks;
    std::atomic<bool> failed{false};
    uint64_t query_id = 0;  ///< stamps this query's trace spans
  };

  using QueryExecPtr = std::shared_ptr<QueryExec>;

  /// Places a ready task and pushes it into the chosen ready queue.
  void ScheduleTask(const QueryExecPtr& query, OpTask* task);
  void WorkerLoop(ProcessorKind kind);
  void RunTask(const QueryExecPtr& query, OpTask* task, ProcessorKind kind);
  void FailQuery(const QueryExecPtr& query, const Status& status);

  EngineContext* ctx_;
  const int cpu_workers_;
  const int gpu_workers_;

  std::mutex mutex_;
  std::condition_variable ready_cv_;
  std::deque<std::pair<QueryExecPtr, OpTask*>> ready_queues_[2];
  bool shutting_down_ = false;

  std::vector<std::thread> workers_;
};

}  // namespace hetdb

#endif  // HETDB_ENGINE_CHOPPING_EXECUTOR_H_
