#include <gtest/gtest.h>

#include "engine/chopping_executor.h"
#include "engine/query_executor.h"
#include "placement/compile_time.h"
#include "placement/runtime.h"
#include "tests/test_util.h"

namespace hetdb {
namespace {

class ExecutorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = MakeTinyDb();
    ctx_ = std::make_unique<EngineContext>(TestConfig(), db_);
  }

  PlanNodePtr ScanFact(std::vector<std::string> columns = {"fk", "v"}) {
    return std::make_shared<ScanNode>(db_->GetTable("fact").value(),
                                      std::move(columns));
  }

  PlanNodePtr SimplePlan() {
    // select(v < 50) -> join dim -> aggregate sum(v) by name -> sort
    PlanNodePtr select = std::make_shared<SelectNode>(
        ScanFact(),
        ConjunctiveFilter::And({Predicate::Lt("v", int64_t{50})}));
    PlanNodePtr dim_scan = std::make_shared<ScanNode>(
        db_->GetTable("dim").value(), std::vector<std::string>{"key", "name"});
    JoinOutputSpec spec;
    spec.build_columns = {"name"};
    spec.probe_columns = {"v"};
    PlanNodePtr join = std::make_shared<JoinNode>(
        std::move(dim_scan), std::move(select), "key", "fk", spec);
    PlanNodePtr agg = std::make_shared<AggregateNode>(
        std::move(join), std::vector<std::string>{"name"},
        std::vector<AggregateSpec>{{AggregateFn::kSum, "v", "total"}});
    return std::make_shared<SortNode>(
        std::move(agg), std::vector<SortKey>{{"name", true}});
  }

  DatabasePtr db_;
  std::unique_ptr<EngineContext> ctx_;
};

TEST_F(ExecutorTest, CpuScanAliasesBaseColumns) {
  PlanNodePtr scan = ScanFact();
  auto result = ExecuteOperator(*scan, {}, ProcessorKind::kCpu, *ctx_);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->location, ProcessorKind::kCpu);
  EXPECT_TRUE(result->base_data);
  EXPECT_EQ(result->table->num_rows(), 1000u);
  // Zero-copy: the scan output shares the base column.
  EXPECT_EQ(result->table->GetColumn("v").value().get(),
            db_->GetTable("fact").value()->GetColumn("v").value().get());
  // Access counters were bumped.
  EXPECT_EQ(db_->GetTable("fact").value()->GetColumn("v").value()->access_count(),
            1u);
}

TEST_F(ExecutorTest, GpuScanCachesColumns) {
  PlanNodePtr scan = ScanFact();
  auto result = ExecuteOperator(*scan, {}, ProcessorKind::kGpu, *ctx_);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->location, ProcessorKind::kGpu);
  EXPECT_TRUE(result->base_data);
  EXPECT_EQ(result->cache_leases.size(), 2u);
  EXPECT_TRUE(ctx_->cache().IsCached("fact.fk"));
  EXPECT_TRUE(ctx_->cache().IsCached("fact.v"));
  EXPECT_EQ(ctx_->simulator().bus().transferred_bytes(
                TransferDirection::kHostToDevice),
            8000u);
  // A second scan hits the cache: no more transfers.
  auto again = ExecuteOperator(*scan, {}, ProcessorKind::kGpu, *ctx_);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(ctx_->simulator().bus().transferred_bytes(
                TransferDirection::kHostToDevice),
            8000u);
}

TEST_F(ExecutorTest, GpuScanTransientWhenCacheTooSmall) {
  SystemConfig config = TestConfig();
  config.device_memory_bytes = 64 << 10;
  config.device_cache_bytes = 1 << 10;  // 1 KB cache: columns don't fit
  EngineContext ctx(config, db_);
  PlanNodePtr scan = ScanFact();
  auto result = ExecuteOperator(*scan, {}, ProcessorKind::kGpu, ctx);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->cache_leases.size(), 0u);
  EXPECT_EQ(result->device_allocations.size(), 2u);
  EXPECT_EQ(ctx.simulator().device_heap().used(), 8000u);
  result->ReleaseDeviceResources();
  EXPECT_EQ(ctx.simulator().device_heap().used(), 0u);
}

TEST_F(ExecutorTest, GpuScanAbortsWhenHeapAndCacheTooSmall) {
  SystemConfig config = TestConfig();
  config.device_memory_bytes = 2 << 10;
  config.device_cache_bytes = 1 << 10;
  EngineContext ctx(config, db_);
  PlanNodePtr scan = ScanFact();
  auto result = ExecuteOperator(*scan, {}, ProcessorKind::kGpu, ctx);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsResourceExhausted());
  EXPECT_EQ(ctx.metrics().gpu_operator_aborts(), 1u);
  EXPECT_EQ(ctx.simulator().device_heap().used(), 0u);  // rollback
}

TEST_F(ExecutorTest, GpuSelectOverCpuChildTransfersInput) {
  PlanNodePtr scan = ScanFact({"v"});
  auto child = ExecuteOperator(*scan, {}, ProcessorKind::kCpu, *ctx_);
  ASSERT_TRUE(child.ok());
  PlanNodePtr select = std::make_shared<SelectNode>(
      ScanFact({"v"}), ConjunctiveFilter::And({Predicate::Lt("v", int64_t{10})}));
  std::vector<OperatorResult*> inputs = {&child.value()};
  auto result = ExecuteOperator(*select, inputs, ProcessorKind::kGpu, *ctx_);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->location, ProcessorKind::kGpu);
  EXPECT_FALSE(result->base_data);
  // Input bytes crossed the bus; the result is held in device heap.
  EXPECT_EQ(ctx_->simulator().bus().transferred_bytes(
                TransferDirection::kHostToDevice),
            4000u);
  EXPECT_FALSE(result->device_allocations.empty());
  EXPECT_GT(ctx_->simulator().device_heap().used(), 0u);
}

TEST_F(ExecutorTest, CpuConsumerOfGpuIntermediatePaysCopyBack) {
  PlanNodePtr select = std::make_shared<SelectNode>(
      ScanFact({"v"}), ConjunctiveFilter::And({Predicate::Lt("v", int64_t{10})}));
  PlanNodePtr scan = select->children()[0];
  auto scanned = ExecuteOperator(*scan, {}, ProcessorKind::kGpu, *ctx_);
  ASSERT_TRUE(scanned.ok());
  std::vector<OperatorResult*> scan_inputs = {&scanned.value()};
  auto filtered =
      ExecuteOperator(*select, scan_inputs, ProcessorKind::kGpu, *ctx_);
  ASSERT_TRUE(filtered.ok());
  const uint64_t d2h_before = ctx_->simulator().bus().transferred_bytes(
      TransferDirection::kDeviceToHost);
  // Aggregate on the CPU consumes the device-resident selection result.
  PlanNodePtr agg = std::make_shared<AggregateNode>(
      select, std::vector<std::string>{},
      std::vector<AggregateSpec>{{AggregateFn::kSum, "v", "s"}});
  std::vector<OperatorResult*> inputs = {&filtered.value()};
  auto result = ExecuteOperator(*agg, inputs, ProcessorKind::kCpu, *ctx_);
  ASSERT_TRUE(result.ok());
  const uint64_t d2h_after = ctx_->simulator().bus().transferred_bytes(
      TransferDirection::kDeviceToHost);
  EXPECT_GT(d2h_after, d2h_before);
  EXPECT_EQ(result->location, ProcessorKind::kCpu);
}

TEST_F(ExecutorTest, CpuConsumerOfGpuScanPaysNoCopyBack) {
  PlanNodePtr scan = ScanFact({"v"});
  auto scanned = ExecuteOperator(*scan, {}, ProcessorKind::kGpu, *ctx_);
  ASSERT_TRUE(scanned.ok());
  PlanNodePtr agg = std::make_shared<AggregateNode>(
      scan, std::vector<std::string>{},
      std::vector<AggregateSpec>{{AggregateFn::kSum, "v", "s"}});
  std::vector<OperatorResult*> inputs = {&scanned.value()};
  auto result = ExecuteOperator(*agg, inputs, ProcessorKind::kCpu, *ctx_);
  ASSERT_TRUE(result.ok());
  // Base data always has a host copy: no device-to-host traffic.
  EXPECT_EQ(ctx_->simulator().bus().transferred_bytes(
                TransferDirection::kDeviceToHost),
            0u);
}

TEST_F(ExecutorTest, FallbackRestartsAbortedOperatorOnCpu) {
  ctx_->simulator().fault_injector().SetSchedule(
      FaultSite::kDeviceAlloc, FaultSchedule::Always(FaultKind::kHeapExhausted));
  PlanNodePtr scan = ScanFact({"v"});
  auto scanned = ExecuteOperator(*scan, {}, ProcessorKind::kCpu, *ctx_);
  ASSERT_TRUE(scanned.ok());
  PlanNodePtr select = std::make_shared<SelectNode>(
      scan, ConjunctiveFilter::And({Predicate::Lt("v", int64_t{10})}));
  std::vector<OperatorResult*> inputs = {&scanned.value()};
  auto executed = ExecuteWithFallback(*select, inputs, ProcessorKind::kGpu, *ctx_);
  ASSERT_TRUE(executed.ok());
  EXPECT_TRUE(executed->aborted);
  EXPECT_EQ(executed->ran_on, ProcessorKind::kCpu);
  EXPECT_EQ(ctx_->metrics().gpu_operator_aborts(), 1u);
  EXPECT_EQ(executed->result.table->num_rows(), 110u);  // v in [0,10) of i%97
}

TEST_F(ExecutorTest, FallbackDoesNotMaskRealErrors) {
  PlanNodePtr bad_select = std::make_shared<SelectNode>(
      ScanFact({"v"}),
      ConjunctiveFilter::And({Predicate::Lt("missing", int64_t{1})}));
  std::vector<OperatorResult*> no_inputs;
  auto scanned = ExecuteOperator(*bad_select->children()[0], no_inputs,
                                 ProcessorKind::kCpu, *ctx_);
  ASSERT_TRUE(scanned.ok());
  std::vector<OperatorResult*> inputs = {&scanned.value()};
  auto executed =
      ExecuteWithFallback(*bad_select, inputs, ProcessorKind::kCpu, *ctx_);
  EXPECT_FALSE(executed.ok());
  EXPECT_EQ(executed.status().code(), StatusCode::kNotFound);
}

TEST_F(ExecutorTest, QueryExecutorRunsFullPlan) {
  QueryExecutor executor(ctx_.get());
  PlanNodePtr plan = SimplePlan();
  auto result = executor.Execute(plan, PlaceCpuOnly(plan));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value()->num_rows(), 10u);
  EXPECT_EQ(ctx_->metrics().queries_completed(), 1u);
}

TEST_F(ExecutorTest, AllPlacementsProduceIdenticalResults) {
  QueryExecutor executor(ctx_.get());
  PlanNodePtr plan_cpu = SimplePlan();
  auto cpu = executor.Execute(plan_cpu, PlaceCpuOnly(plan_cpu));
  ASSERT_TRUE(cpu.ok());
  PlanNodePtr plan_gpu = SimplePlan();
  auto gpu = executor.Execute(plan_gpu, PlaceGpuOnly(plan_gpu));
  ASSERT_TRUE(gpu.ok());
  EXPECT_TRUE(TablesEqual(*cpu.value(), *gpu.value()));
}

TEST_F(ExecutorTest, CompileTimePlacementSurvivesAborts) {
  // Every device allocation fails: a GPU-only plan must still complete, all
  // operators falling back to the CPU.
  ctx_->simulator().fault_injector().SetSchedule(
      FaultSite::kDeviceAlloc, FaultSchedule::Always(FaultKind::kHeapExhausted));
  QueryExecutor executor(ctx_.get());
  PlanNodePtr plan = SimplePlan();
  auto result = executor.Execute(plan, PlaceGpuOnly(plan));
  ASSERT_TRUE(result.ok());
  EXPECT_GT(ctx_->metrics().gpu_operator_aborts(), 0u);
  PlanNodePtr reference = SimplePlan();
  EngineContext clean_ctx(TestConfig(), db_);
  QueryExecutor clean(&clean_ctx);
  auto expected = clean.Execute(reference, PlaceCpuOnly(reference));
  ASSERT_TRUE(expected.ok());
  EXPECT_TRUE(TablesEqual(*expected.value(), *result.value()));
}

TEST_F(ExecutorTest, ChoppingExecutorMatchesCompileTime) {
  QueryExecutor reference_executor(ctx_.get());
  PlanNodePtr reference_plan = SimplePlan();
  auto expected =
      reference_executor.Execute(reference_plan, PlaceCpuOnly(reference_plan));
  ASSERT_TRUE(expected.ok());

  ChoppingExecutor chopping(ctx_.get(), 2, 1);
  auto result = chopping.ExecuteQuery(SimplePlan(), MakeHypePlacer());
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(TablesEqual(*expected.value(), *result.value()));
}

TEST_F(ExecutorTest, ChoppingHandlesManyConcurrentQueries) {
  ChoppingExecutor chopping(ctx_.get(), 2, 1);
  std::vector<std::future<Result<TablePtr>>> futures;
  for (int i = 0; i < 16; ++i) {
    futures.push_back(chopping.Submit(SimplePlan(), MakeDataDrivenPlacer()));
  }
  TablePtr first;
  for (auto& future : futures) {
    auto result = future.get();
    ASSERT_TRUE(result.ok());
    if (first == nullptr) {
      first = result.value();
    } else {
      EXPECT_TRUE(TablesEqual(*first, *result.value()));
    }
  }
  EXPECT_EQ(ctx_->metrics().queries_completed(), 16u);
}

TEST_F(ExecutorTest, ChoppingSurvivesAllocatorFailures) {
  // First five device allocations fail, then the device recovers.
  ctx_->simulator().fault_injector().SetSchedule(
      FaultSite::kDeviceAlloc,
      FaultSchedule::FirstN(FaultKind::kHeapExhausted, 5));
  ChoppingExecutor chopping(ctx_.get(), 2, 2);
  auto result = chopping.ExecuteQuery(SimplePlan(), MakeHypePlacer());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value()->num_rows(), 10u);
}

TEST_F(ExecutorTest, ChoppingReportsQueryErrors) {
  PlanNodePtr bad = std::make_shared<SelectNode>(
      ScanFact({"v"}),
      ConjunctiveFilter::And({Predicate::Lt("missing", int64_t{1})}));
  ChoppingExecutor chopping(ctx_.get(), 1, 1);
  auto result = chopping.ExecuteQuery(bad, MakeHypePlacer());
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST_F(ExecutorTest, RuntimePlacerSendsSuccessorsOfAbortedOpsToCpu) {
  // Data-driven placer: a CPU-located input forces CPU placement.
  OperatorResult cpu_input;
  cpu_input.table = db_->GetTable("fact").value();
  cpu_input.location = ProcessorKind::kCpu;
  PlanNodePtr select = std::make_shared<SelectNode>(
      ScanFact({"v"}), ConjunctiveFilter::And({Predicate::Lt("v", int64_t{1})}));
  RuntimePlacer placer = MakeDataDrivenPlacer();
  std::vector<OperatorResult*> inputs = {&cpu_input};
  EXPECT_EQ(placer(*select, inputs, *ctx_), ProcessorKind::kCpu);
  cpu_input.location = ProcessorKind::kGpu;
  EXPECT_EQ(placer(*select, inputs, *ctx_), ProcessorKind::kGpu);
}

}  // namespace
}  // namespace hetdb
