#include "hype/cost_model.h"

#include <algorithm>
#include <cmath>

namespace hetdb {

void CostModel::Fit::Line(double* a, double* b) const {
  const double denom = n * sum_xx - sum_x * sum_x;
  if (n < 2 || std::abs(denom) < 1e-9) {
    *a = n > 0 ? sum_y / n : 0;
    *b = 0;
    return;
  }
  *b = (n * sum_xy - sum_x * sum_y) / denom;
  *a = (sum_y - *b * sum_x) / n;
}

double CostModel::EstimateMicros(ProcessorKind processor, OpClass op_class,
                                 size_t input_bytes) const {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const Fit& fit = fits_[Index(processor, op_class)];
    if (fit.Ready()) {
      double a = 0, b = 0;
      fit.Line(&a, &b);
      const double estimate = a + b * static_cast<double>(input_bytes);
      return std::max(estimate, 0.0);
    }
  }
  return simulator_->EstimateComputeMicros(processor, op_class, input_bytes);
}

void CostModel::Observe(ProcessorKind processor, OpClass op_class,
                        size_t input_bytes, double micros) {
  const double x = static_cast<double>(input_bytes);
  std::lock_guard<std::mutex> lock(mutex_);
  Fit& fit = fits_[Index(processor, op_class)];
  fit.n += 1;
  fit.sum_x += x;
  fit.sum_y += micros;
  fit.sum_xx += x * x;
  fit.sum_xy += x * micros;
}

uint64_t CostModel::ObservationCount(ProcessorKind processor,
                                     OpClass op_class) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<uint64_t>(fits_[Index(processor, op_class)].n);
}

}  // namespace hetdb
