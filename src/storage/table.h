#ifndef HETDB_STORAGE_TABLE_H_
#define HETDB_STORAGE_TABLE_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "storage/column.h"

namespace hetdb {

/// A named collection of equally-sized columns.
///
/// Base tables are registered in a `Database`; intermediate query results are
/// anonymous Tables produced by operators. Tables are cheap handle objects:
/// columns are shared, so projections and intermediate results alias the
/// underlying data where possible.
class Table {
 public:
  explicit Table(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// Adds a column; fails if the name exists or the row count differs from
  /// the existing columns.
  Status AddColumn(ColumnPtr column);

  Result<ColumnPtr> GetColumn(const std::string& name) const;
  bool HasColumn(const std::string& name) const;

  const std::vector<ColumnPtr>& columns() const { return columns_; }
  size_t num_columns() const { return columns_.size(); }
  size_t num_rows() const { return columns_.empty() ? 0 : columns_[0]->num_rows(); }

  /// Total bytes of all column data.
  size_t data_bytes() const;

  /// The cache key of a base-table column: "<table>.<column>".
  std::string QualifiedName(const std::string& column_name) const {
    return name_ + "." + column_name;
  }

 private:
  std::string name_;
  std::vector<ColumnPtr> columns_;
  std::unordered_map<std::string, size_t> column_index_;
};

using TablePtr = std::shared_ptr<Table>;

}  // namespace hetdb

#endif  // HETDB_STORAGE_TABLE_H_
