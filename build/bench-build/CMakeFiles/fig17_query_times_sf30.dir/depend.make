# Empty dependencies file for fig17_query_times_sf30.
# This may be replaced when dependencies are built.
