file(REMOVE_RECURSE
  "../bench/fig12_chopping"
  "../bench/fig12_chopping.pdb"
  "CMakeFiles/fig12_chopping.dir/fig12_chopping.cpp.o"
  "CMakeFiles/fig12_chopping.dir/fig12_chopping.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_chopping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
