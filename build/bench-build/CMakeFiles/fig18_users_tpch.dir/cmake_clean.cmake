file(REMOVE_RECURSE
  "../bench/fig18_users_tpch"
  "../bench/fig18_users_tpch.pdb"
  "CMakeFiles/fig18_users_tpch.dir/fig18_users_tpch.cpp.o"
  "CMakeFiles/fig18_users_tpch.dir/fig18_users_tpch.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_users_tpch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
