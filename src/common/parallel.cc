#include "common/parallel.h"

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/config.h"
#include "common/logging.h"

namespace hetdb {

namespace {

int DefaultCapacity() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

/// One contiguous sub-range of the iteration space with an atomic morsel
/// cursor. Padded to a cache line so concurrent cursors don't false-share.
struct alignas(64) Shard {
  std::atomic<size_t> next{0};
  size_t end = 0;
};

/// One ParallelFor invocation, shared between the caller and its helpers.
struct MorselJob {
  const MorselFn* fn = nullptr;
  size_t morsel = 1;
  std::vector<Shard> shards;
  int workers = 1;  ///< total workers including the caller (worker 0)

  /// Helpers not yet claimed from the arena queue; guarded by the arena
  /// mutex. The caller revokes unclaimed helpers when it finishes early.
  int unclaimed = 0;

  /// Helpers currently running (claimed but not finished).
  std::atomic<int> inflight{0};
  std::mutex mu;
  std::condition_variable done_cv;
};

using MorselJobPtr = std::shared_ptr<MorselJob>;

/// Set while a thread is executing a morsel body; nested ParallelFor calls
/// degrade to serial so per-worker scratch indexed by `worker` stays private.
thread_local bool t_inside_morsel_worker = false;

/// Drains shard `worker`, then steals morsels from the other shards.
void RunMorselWorker(MorselJob& job, int worker) {
  t_inside_morsel_worker = true;
  const int shard_count = static_cast<int>(job.shards.size());
  for (int offset = 0; offset < shard_count; ++offset) {
    Shard& shard = job.shards[(worker + offset) % shard_count];
    while (true) {
      const size_t begin =
          shard.next.fetch_add(job.morsel, std::memory_order_relaxed);
      if (begin >= shard.end) break;
      (*job.fn)(begin, std::min(begin + job.morsel, shard.end), worker);
    }
  }
  t_inside_morsel_worker = false;
}

/// Marks one helper done and wakes the caller when it was the last.
void FinishHelper(const MorselJobPtr& job) {
  if (job->inflight.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    // Taking the lock before notifying closes the race with a caller that
    // checked the predicate and is about to sleep.
    std::lock_guard<std::mutex> lock(job->mu);
    job->done_cv.notify_all();
  }
}

/// Fixed-size (after lazy growth) pool of helper threads serving morsel
/// jobs. Threads are created on demand up to a hard cap and parked on a
/// condition variable between jobs; the arena is shut down (threads joined)
/// at static destruction.
class TaskArena {
 public:
  static TaskArena& Global() {
    static TaskArena arena;
    return arena;
  }

  ~TaskArena() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      shutdown_ = true;
    }
    cv_.notify_all();
    for (std::thread& thread : threads_) thread.join();
  }

  /// Ensures at least `count` helper threads exist (capped).
  void EnsureWorkers(int count) {
    static constexpr int kMaxThreads = 64;
    count = std::min(count, kMaxThreads);
    std::lock_guard<std::mutex> lock(mu_);
    while (static_cast<int>(threads_.size()) < count) {
      threads_.emplace_back([this] { WorkerLoop(); });
    }
  }

  /// Offers `job` to `helpers` arena threads.
  void Submit(const MorselJobPtr& job, int helpers) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      job->unclaimed = helpers;
      queue_.push_back(job);
    }
    cv_.notify_all();
  }

  /// Revokes helper slots nobody claimed yet, so the caller never waits on
  /// arena threads that are busy with other jobs.
  void Revoke(const MorselJobPtr& job) {
    std::lock_guard<std::mutex> lock(mu_);
    if (job->unclaimed > 0) {
      job->unclaimed = 0;
      for (auto it = queue_.begin(); it != queue_.end(); ++it) {
        if (*it == job) {
          queue_.erase(it);
          break;
        }
      }
    }
  }

 private:
  void WorkerLoop() {
    while (true) {
      MorselJobPtr job;
      int worker = 0;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
        if (queue_.empty()) return;  // shutdown with no pending work
        job = queue_.front();
        worker = job->workers - job->unclaimed;
        if (--job->unclaimed == 0) queue_.pop_front();
        // Claiming (and the matching revocation) happens under the arena
        // mutex, so inflight can only rise while the caller still considers
        // the job open.
        job->inflight.fetch_add(1, std::memory_order_acq_rel);
      }
      RunMorselWorker(*job, worker);
      FinishHelper(job);
    }
  }

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<MorselJobPtr> queue_;
  std::vector<std::thread> threads_;
  bool shutdown_ = false;
};

void RunSerial(size_t total, size_t morsel_rows, const MorselFn& fn) {
  for (size_t begin = 0; begin < total; begin += morsel_rows) {
    fn(begin, std::min(begin + morsel_rows, total), 0);
  }
}

}  // namespace

DopBudget::DopBudget(int capacity)
    : capacity_(capacity), available_(capacity) {
  HETDB_CHECK(capacity >= 0);
}

DopBudget& DopBudget::Global() {
  static DopBudget budget(DefaultCapacity());
  return budget;
}

void DopBudget::SetCapacity(int capacity) {
  HETDB_CHECK(capacity >= 0);
  const int old = capacity_.exchange(capacity, std::memory_order_relaxed);
  available_.fetch_add(capacity - old, std::memory_order_relaxed);
}

int DopBudget::TryAcquire(int want) {
  if (want <= 0) return 0;
  int avail = available_.load(std::memory_order_relaxed);
  while (avail > 0) {
    const int take = std::min(want, avail);
    if (available_.compare_exchange_weak(avail, avail - take,
                                         std::memory_order_acq_rel)) {
      return take;
    }
  }
  return 0;
}

void DopBudget::Release(int count) {
  if (count > 0) available_.fetch_add(count, std::memory_order_acq_rel);
}

namespace {
thread_local int t_dop_cap = 0;  // 0 = uncapped

int ApplyDopCap(int max_dop) {
  const int cap = t_dop_cap;
  if (cap > 0 && (max_dop <= 0 || cap < max_dop)) return cap;
  return max_dop;
}
}  // namespace

ScopedDopCap::ScopedDopCap(int cap) : previous_(t_dop_cap) {
  if (cap > 0 && (previous_ == 0 || cap < previous_)) t_dop_cap = cap;
}

ScopedDopCap::~ScopedDopCap() { t_dop_cap = previous_; }

int ScopedDopCap::current() { return t_dop_cap; }

int MaxParallelWorkers(size_t total, size_t morsel_rows, int max_dop) {
  if (total == 0) return 1;
  if (morsel_rows == 0) morsel_rows = 1;
  if (max_dop <= 0) max_dop = GlobalKernelConfig().max_dop;
  if (max_dop <= 0) max_dop = DopBudget::Global().capacity();
  max_dop = ApplyDopCap(max_dop);
  const size_t morsels = (total + morsel_rows - 1) / morsel_rows;
  return static_cast<int>(std::min<size_t>(std::max(max_dop, 1), morsels));
}

int ParallelFor(size_t total, size_t morsel_rows, const MorselFn& fn,
                int max_dop) {
  if (total == 0) return 1;
  if (morsel_rows == 0) morsel_rows = 1;
  if (max_dop <= 0) max_dop = GlobalKernelConfig().max_dop;
  if (max_dop <= 0) max_dop = DopBudget::Global().capacity();
  max_dop = ApplyDopCap(max_dop);

  const size_t morsels = (total + morsel_rows - 1) / morsel_rows;
  const int want =
      static_cast<int>(std::min<size_t>(std::max(max_dop, 1), morsels));
  if (want <= 1 || t_inside_morsel_worker) {
    const bool was_inside = t_inside_morsel_worker;
    t_inside_morsel_worker = true;
    RunSerial(total, morsel_rows, fn);
    t_inside_morsel_worker = was_inside;
    return 1;
  }

  const int extra = DopBudget::Global().TryAcquire(want - 1);
  if (extra == 0) {
    t_inside_morsel_worker = true;
    RunSerial(total, morsel_rows, fn);
    t_inside_morsel_worker = false;
    return 1;
  }
  const int workers = 1 + extra;

  auto job = std::make_shared<MorselJob>();
  job->fn = &fn;
  job->morsel = morsel_rows;
  job->workers = workers;
  job->shards = std::vector<Shard>(workers);
  // Contiguous shards in whole morsels; earlier shards take the remainder.
  const size_t base = morsels / workers;
  const size_t rem = morsels % workers;
  size_t begin = 0;
  for (int w = 0; w < workers; ++w) {
    const size_t shard_morsels = base + (static_cast<size_t>(w) < rem ? 1 : 0);
    const size_t end = std::min(total, begin + shard_morsels * morsel_rows);
    job->shards[w].next.store(begin, std::memory_order_relaxed);
    job->shards[w].end = end;
    begin = end;
  }

  TaskArena& arena = TaskArena::Global();
  arena.EnsureWorkers(extra);
  arena.Submit(job, extra);

  RunMorselWorker(*job, 0);

  // Drop helper slots nobody picked up, then wait for the ones that did.
  arena.Revoke(job);
  {
    std::unique_lock<std::mutex> lock(job->mu);
    job->done_cv.wait(lock, [&job] {
      return job->inflight.load(std::memory_order_acquire) == 0;
    });
  }
  DopBudget::Global().Release(extra);
  return workers;
}

}  // namespace hetdb
