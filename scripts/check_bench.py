#!/usr/bin/env python3
"""Bench regression gate: compare a fresh kernel-benchmark run against the
committed baseline BENCH_kernels.json.

Absolute kernel times vary wildly across hosts (and CI runners), so the gate
compares *speedup ratios* — scalar median time / Parallel/8 median time per
kernel family (Filter, HashJoin, Aggregate) — which are what the morsel
parallelism work actually promises. A candidate fails when any family's
speedup drops below (baseline_speedup * (1 - tolerance)).

Usage:
  scripts/check_bench.py CANDIDATE.json [--baseline BENCH_kernels.json]
                         [--tolerance 0.5]

With --serve-slo the candidate is instead a serve_slo JSON artifact and the
gate checks admission-control sanity rather than kernel speedups: at the
lowest load multiplier the controller must shed (approximately) nothing —
an uncontended front door that rejects traffic is a regression no matter
how the host performs — and every sweep point must report its tenants.

Usage:
  scripts/check_bench.py serve_slo.json --serve-slo [--shed-tolerance 0.0]

With --scaleout the candidate is a fig18_scaleout JSON artifact and the gate
checks multi-device sanity: every sweep point must finish its queries with
zero failures and zero device aborts (the modeled machine has no real
faults), and the largest device count must beat the 1-device point by at
least --min-speedup (modeled time scales with device parallelism, so the
floor holds on any host; CI's 2-device smoke uses a relaxed floor).

Usage:
  scripts/check_bench.py scaleout.json --scaleout [--min-speedup 1.5]

With --availability the candidate is a fig26_availability artifact and the
gate checks coordinated graceful degradation: every phase (baseline, each
chaos episode, each recovery probe) must serve queries (no zero-goodput
blackout), the device-loss phase must keep at least --goodput-floor of the
baseline's goodput, nothing may be stranded (watchdog still watching, device
heap still held) after the drain, and the system must report recovery — back
at brownout L0 with a baseline-comparable p99 — within --recovery-ceiling
seconds.

Usage:
  scripts/check_bench.py fig26.json --availability
                         [--goodput-floor 0.1] [--recovery-ceiling 20.0]

Exit code 0 = within tolerance, 1 = regression, 2 = malformed input.
"""

import argparse
import json
import sys


FAMILIES = ["Filter", "HashJoin", "Aggregate"]
PARALLEL_DOP = 8
FUSION_DOP = 8


def load_medians(path):
    """run_name -> median real_time for all *_median aggregate rows."""
    try:
        with open(path) as fp:
            doc = json.load(fp)
    except (OSError, json.JSONDecodeError) as error:
        print(f"error: cannot read {path}: {error}", file=sys.stderr)
        sys.exit(2)
    medians = {}
    for bench in doc.get("benchmarks", []):
        if bench.get("aggregate_name") != "median":
            continue
        medians[bench["run_name"]] = float(bench["real_time"])
    if not medians:
        print(f"error: {path} holds no median aggregate rows", file=sys.stderr)
        sys.exit(2)
    return medians


def family_speedup(medians, family):
    scalar = medians.get(f"BM_{family}Scalar")
    parallel = medians.get(f"BM_{family}Parallel/{PARALLEL_DOP}")
    if scalar is None or parallel is None or parallel <= 0:
        return None
    return scalar / parallel


def fusion_speedup(medians):
    """Unfused/fused ratio of the operator-fusion pipeline pair."""
    unfused = medians.get(f"BM_PipelineUnfused/{FUSION_DOP}")
    fused = medians.get(f"BM_PipelineFused/{FUSION_DOP}")
    if unfused is None or fused is None or fused <= 0:
        return None
    return unfused / fused


def check_serve_slo(path, shed_tolerance):
    """Gate on a serve_slo sweep artifact: no shedding at the low-load point."""
    try:
        with open(path) as fp:
            doc = json.load(fp)
    except (OSError, json.JSONDecodeError) as error:
        print(f"error: cannot read {path}: {error}", file=sys.stderr)
        return 2
    points = doc.get("points", [])
    if not points:
        print(f"error: {path} holds no sweep points", file=sys.stderr)
        return 2

    failures = []
    print(f"{'load':<8}{'offered':>9}{'shed_rate':>11}{'goodput':>9}")
    for point in points:
        result = point.get("result", {})
        load = point.get("load_multiplier")
        print(f"{load:<8}{result.get('offered', 0):>9}"
              f"{result.get('shed_rate', 0.0):>11.3f}"
              f"{result.get('goodput_qps', 0.0):>9.2f}")
        if load is None or "shed_rate" not in result:
            failures.append(f"point {load}: missing load_multiplier/shed_rate")
        if not result.get("tenants"):
            failures.append(f"point {load}: no per-tenant results")

    low = min(points, key=lambda p: p.get("load_multiplier", float("inf")))
    low_shed = low.get("result", {}).get("shed_rate", 1.0)
    if low_shed > shed_tolerance:
        failures.append(
            f"low-load point (x{low.get('load_multiplier')}) shed "
            f"{low_shed:.3f} of offered queries "
            f"(tolerance {shed_tolerance:.3f}) — an uncontended admission "
            f"controller must not reject traffic")
    if low.get("result", {}).get("completed", 0) == 0:
        failures.append("low-load point completed zero queries")

    if failures:
        print("\nREGRESSION:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("\nOK: no shedding at low load, all points report tenants")
    return 0


def check_scaleout(path, min_speedup):
    """Gate on a fig18_scaleout sweep artifact: clean runs, real scaling."""
    try:
        with open(path) as fp:
            doc = json.load(fp)
    except (OSError, json.JSONDecodeError) as error:
        print(f"error: cannot read {path}: {error}", file=sys.stderr)
        return 2
    points = doc.get("points", [])
    if not points:
        print(f"error: {path} holds no sweep points", file=sys.stderr)
        return 2

    failures = []
    print(f"{'devices':<9}{'wall_ms':>10}{'speedup':>9}{'aborts':>8}"
          f"{'failed':>8}")
    by_devices = {}
    for point in points:
        devices = point.get("devices")
        result = point.get("result", {})
        if devices is None or "wall_millis" not in result:
            failures.append(f"point {devices}: missing devices/wall_millis")
            continue
        by_devices[devices] = result
        print(f"{devices:<9}{result['wall_millis']:>10.1f}"
              f"{result.get('speedup', 0.0):>9.2f}"
              f"{result.get('gpu_aborts', 0):>8}"
              f"{result.get('failed_queries', 0):>8}")
        if result.get("failed_queries", 0) != 0:
            failures.append(
                f"{devices} device(s): {result['failed_queries']} "
                f"failed queries — scale-out must lose no queries")
        if result.get("gpu_aborts", 0) != 0:
            failures.append(
                f"{devices} device(s): {result['gpu_aborts']} device "
                f"aborts — the sweep machine models no faults")
        if result.get("queries_run", 0) == 0:
            failures.append(f"{devices} device(s): completed zero queries")

    if 1 not in by_devices or len(by_devices) < 2:
        failures.append("sweep must include a 1-device baseline and at "
                        "least one multi-device point")
    else:
        top = max(by_devices)
        base_ms = by_devices[1]["wall_millis"]
        top_ms = by_devices[top]["wall_millis"]
        speedup = base_ms / top_ms if top_ms > 0 else 0.0
        if speedup < min_speedup:
            failures.append(
                f"{top}-device speedup {speedup:.2f}x over 1 device fell "
                f"below the {min_speedup:.2f}x floor")
        else:
            print(f"\n{top}-device speedup over 1 device: {speedup:.2f}x "
                  f"(floor {min_speedup:.2f}x)")

    if failures:
        print("\nREGRESSION:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("OK: clean multi-device sweep, scaling floor met")
    return 0


def check_availability(path, goodput_floor, recovery_ceiling):
    """Gate on a fig26_availability artifact: degrade, survive, recover."""
    try:
        with open(path) as fp:
            doc = json.load(fp)
    except (OSError, json.JSONDecodeError) as error:
        print(f"error: cannot read {path}: {error}", file=sys.stderr)
        return 2
    phases = doc.get("phases", [])
    summary = doc.get("summary", {})
    if not phases or not summary:
        print(f"error: {path} holds no phases/summary", file=sys.stderr)
        return 2

    failures = []
    print(f"{'phase':<16}{'offered':>9}{'goodput':>9}{'p99_ms':>9}"
          f"{'level':>7}")
    baseline = None
    for phase in phases:
        name = phase.get("name", "?")
        goodput = phase.get("goodput_qps", 0.0)
        print(f"{name:<16}{phase.get('offered', 0):>9}"
              f"{goodput:>9.2f}{phase.get('p99_ms', 0.0):>9.1f}"
              f"{phase.get('brownout_level_end', -1):>7}")
        if baseline is None:
            baseline = phase
        if phase.get("completed", 0) == 0 or goodput <= 0:
            failures.append(
                f"phase {name}: zero goodput — graceful degradation must "
                f"never black out the service")

    base_goodput = baseline.get("goodput_qps", 0.0) if baseline else 0.0
    loss = next((p for p in phases if p.get("name") == "device_loss"), None)
    if loss is None:
        failures.append("no device_loss phase in the artifact")
    elif base_goodput > 0:
        floor = goodput_floor * base_goodput
        if loss.get("goodput_qps", 0.0) < floor:
            failures.append(
                f"device_loss goodput {loss.get('goodput_qps', 0.0):.2f} qps "
                f"fell below the floor {floor:.2f} "
                f"({goodput_floor:.0%} of baseline {base_goodput:.2f})")

    if not summary.get("recovered", False):
        failures.append("system did not report recovery (brownout back at "
                        "L0 with baseline-comparable p99)")
    recovery_s = summary.get("recovery_time_s", float("inf"))
    if recovery_s > recovery_ceiling:
        failures.append(
            f"recovery took {recovery_s:.1f}s, above the "
            f"{recovery_ceiling:.1f}s ceiling")
    if summary.get("final_brownout_level", -1) != 0:
        failures.append(
            f"final brownout level is "
            f"L{summary.get('final_brownout_level')} — must end at L0")
    if summary.get("stranded_queries", 1) != 0:
        failures.append(
            f"{summary.get('stranded_queries')} queries still under "
            f"watchdog watch after the drain — stranded work")
    if summary.get("heap_used_after_drain", 1) != 0:
        failures.append(
            f"{summary.get('heap_used_after_drain')} bytes of device heap "
            f"still held after the drain — leaked device resources")

    print(f"\nrecovered={summary.get('recovered')} "
          f"recovery_time_s={summary.get('recovery_time_s')} "
          f"stranded={summary.get('stranded_queries')} "
          f"hedges={summary.get('hedge_attempts')}/"
          f"{summary.get('hedge_successes')} "
          f"watchdog_fires={summary.get('watchdog_fires')}")

    if failures:
        print("\nREGRESSION:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("OK: served through every chaos phase, recovered, nothing stranded")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("candidate", help="fresh benchmark JSON to check")
    parser.add_argument("--baseline", default="BENCH_kernels.json",
                        help="committed baseline (default: BENCH_kernels.json)")
    parser.add_argument("--tolerance", type=float, default=0.5,
                        help="allowed relative speedup drop, 0..1 "
                             "(default 0.5 — CI runners are noisy)")
    parser.add_argument("--serve-slo", action="store_true",
                        help="treat candidate as a serve_slo sweep artifact")
    parser.add_argument("--scaleout", action="store_true",
                        help="treat candidate as a fig18_scaleout artifact")
    parser.add_argument("--availability", action="store_true",
                        help="treat candidate as a fig26_availability "
                             "artifact")
    parser.add_argument("--goodput-floor", type=float, default=0.1,
                        help="device-loss goodput floor as a fraction of "
                             "baseline goodput for --availability "
                             "(default 0.1)")
    parser.add_argument("--recovery-ceiling", type=float, default=20.0,
                        help="max seconds to recover after the chaos ends "
                             "for --availability (default 20.0)")
    parser.add_argument("--min-speedup", type=float, default=1.5,
                        help="multi-device speedup floor for --scaleout "
                             "(default 1.5 — the 4-device acceptance bar; "
                             "CI's 2-device smoke passes 1.15)")
    parser.add_argument("--shed-tolerance", type=float, default=0.0,
                        help="allowed shed rate at the lowest load point "
                             "(default 0.0)")
    parser.add_argument("--fusion-floor", type=float, default=1.3,
                        help="absolute minimum unfused/fused pipeline "
                             "speedup (default 1.3 — the fusion win is "
                             "skipped work, so it holds on any host)")
    args = parser.parse_args()

    if args.serve_slo:
        return check_serve_slo(args.candidate, args.shed_tolerance)
    if args.scaleout:
        return check_scaleout(args.candidate, args.min_speedup)
    if args.availability:
        return check_availability(args.candidate, args.goodput_floor,
                                  args.recovery_ceiling)

    baseline = load_medians(args.baseline)
    candidate = load_medians(args.candidate)

    failures = []
    print(f"{'family':<12}{'baseline':>10}{'candidate':>10}{'floor':>10}")
    for family in FAMILIES:
        base = family_speedup(baseline, family)
        cand = family_speedup(candidate, family)
        if base is None:
            print(f"{family:<12}{'n/a':>10}  (missing from baseline, skipped)")
            continue
        if cand is None:
            failures.append(f"{family}: missing from candidate run")
            print(f"{family:<12}{base:>10.2f}{'n/a':>10}")
            continue
        floor = base * (1.0 - args.tolerance)
        print(f"{family:<12}{base:>10.2f}{cand:>10.2f}{floor:>10.2f}")
        if cand < floor:
            failures.append(
                f"{family}: speedup {cand:.2f}x fell below floor "
                f"{floor:.2f}x (baseline {base:.2f}x, "
                f"tolerance {args.tolerance:.0%})")

    # Operator fusion gate: unlike the parallel speedups (bounded by host
    # cores), the fused/unfused ratio comes from *skipped work* — it must
    # clear an absolute floor, and must not regress against the baseline.
    base_fusion = fusion_speedup(baseline)
    cand_fusion = fusion_speedup(candidate)
    if cand_fusion is None:
        if base_fusion is not None:
            failures.append("Pipeline: fusion pair missing from candidate run")
        else:
            print("Pipeline     n/a  (fusion pair not in baseline, skipped)")
    else:
        floor = args.fusion_floor
        if base_fusion is not None:
            floor = max(floor, base_fusion * (1.0 - args.tolerance))
        base_text = f"{base_fusion:>10.2f}" if base_fusion else f"{'n/a':>10}"
        print(f"{'Pipeline':<12}{base_text}{cand_fusion:>10.2f}{floor:>10.2f}")
        if cand_fusion < floor:
            failures.append(
                f"Pipeline: fused speedup {cand_fusion:.2f}x fell below "
                f"floor {floor:.2f}x")

    if failures:
        print("\nREGRESSION:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("\nOK: all kernel-family speedups within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
