#include "server/line_protocol.h"

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>

#include "common/logging.h"
#include "storage/column.h"

namespace hetdb {

namespace {

/// Buffered line reader over a stream fd.
class LineReader {
 public:
  explicit LineReader(int fd) : fd_(fd) {}

  /// Reads up to the next '\n' (stripped, along with a preceding '\r').
  /// Returns false on EOF/error with no pending line.
  bool ReadLine(std::string* line) {
    line->clear();
    for (;;) {
      const size_t newline = buffer_.find('\n');
      if (newline != std::string::npos) {
        *line = buffer_.substr(0, newline);
        buffer_.erase(0, newline + 1);
        if (!line->empty() && line->back() == '\r') line->pop_back();
        return true;
      }
      char chunk[4096];
      const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
      if (n <= 0) return false;
      buffer_.append(chunk, static_cast<size_t>(n));
    }
  }

 private:
  int fd_;
  std::string buffer_;
};

bool WriteAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::write(fd, data.data() + sent, data.size() - sent);
    if (n <= 0) return false;
    sent += static_cast<size_t>(n);
  }
  return true;
}

std::string FormatValue(const Column& column, size_t row) {
  char buf[64];
  switch (column.type()) {
    case DataType::kInt32:
      std::snprintf(buf, sizeof(buf), "%d",
                    static_cast<const Int32Column&>(column).value(row));
      return buf;
    case DataType::kInt64:
      std::snprintf(buf, sizeof(buf), "%lld",
                    static_cast<long long>(
                        static_cast<const Int64Column&>(column).value(row)));
      return buf;
    case DataType::kDouble:
      std::snprintf(buf, sizeof(buf), "%.4f",
                    static_cast<const DoubleColumn&>(column).value(row));
      return buf;
    case DataType::kString:
      return std::string(static_cast<const StringColumn&>(column).value(row));
  }
  return "?";
}

std::string OneLine(std::string text) {
  for (char& c : text) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  return text;
}

}  // namespace

LineProtocolServer::LineProtocolServer(Server* server,
                                       LineProtocolOptions options)
    : server_(server), options_(options) {
  HETDB_CHECK(server_ != nullptr);
}

LineProtocolServer::~LineProtocolServer() { Stop(); }

void LineProtocolServer::Serve(int fd) {
  LineReader reader(fd);
  SessionPtr session = server_->OpenSession("default");
  std::chrono::milliseconds deadline_budget{0};  // 0 = no deadline

  WriteAll(fd, "HETDB 1 ready\n");
  std::string line;
  while (!stopping_.load(std::memory_order_relaxed) &&
         reader.ReadLine(&line)) {
    if (line.empty()) continue;
    const size_t space = line.find(' ');
    std::string verb = line.substr(0, space);
    std::string rest =
        space == std::string::npos ? "" : line.substr(space + 1);
    for (char& c : verb) c = static_cast<char>(std::toupper(c));

    if (verb == "BYE" || verb == "QUIT") {
      break;
    } else if (verb == "HELLO") {
      const std::string tenant = rest.empty() ? "default" : rest;
      session = server_->OpenSession(tenant);
      if (!WriteAll(fd, "OK tenant " + tenant + "\n")) break;
    } else if (verb == "DEADLINE") {
      deadline_budget = std::chrono::milliseconds(std::atol(rest.c_str()));
      if (!WriteAll(fd, "OK deadline " +
                            std::to_string(deadline_budget.count()) +
                            "ms\n")) {
        break;
      }
    } else if (verb == "QUERY") {
      SubmitOptions options;
      if (deadline_budget.count() > 0) {
        options.deadline = std::chrono::steady_clock::now() + deadline_budget;
      }
      const auto started = std::chrono::steady_clock::now();
      Result<TablePtr> result = session->ExecuteSql(rest, std::move(options));
      const int64_t micros =
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - started)
              .count();
      if (!result.ok()) {
        if (!WriteAll(fd, "ERR " +
                              std::string(StatusCodeToString(
                                  result.status().code())) +
                              " " + OneLine(result.status().message()) +
                              "\n")) {
          break;
        }
        continue;
      }
      const Table& table = *result.value();
      const size_t total = table.num_rows();
      const size_t sent = std::min(total, options_.max_result_rows);
      std::string reply = "ROWS " + std::to_string(sent) + " " +
                          std::to_string(total) + " " +
                          std::to_string(table.num_columns()) + " " +
                          std::to_string(micros) + "\n";
      for (size_t row = 0; row < sent; ++row) {
        for (size_t col = 0; col < table.num_columns(); ++col) {
          if (col > 0) reply += '\t';
          reply += FormatValue(*table.columns()[col], row);
        }
        reply += '\n';
      }
      reply += "DONE\n";
      if (!WriteAll(fd, reply)) break;
    } else {
      if (!WriteAll(fd, "ERR InvalidArgument unknown verb " + verb + "\n")) {
        break;
      }
    }
  }
  ::close(fd);
}

Result<uint16_t> LineProtocolServer::Listen(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal("socket: " + std::string(std::strerror(errno)));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return Status::Internal("bind: " + std::string(std::strerror(errno)));
  }
  if (::listen(fd, 64) < 0) {
    ::close(fd);
    return Status::Internal("listen: " + std::string(std::strerror(errno)));
  }
  socklen_t len = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  listen_fd_.store(fd);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return port_;
}

void LineProtocolServer::AcceptLoop() {
  for (;;) {
    const int listener = listen_fd_.load();
    if (listener < 0) return;
    const int fd = ::accept(listener, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load(std::memory_order_relaxed)) return;
      if (errno == EINTR) continue;
      return;  // listener closed
    }
    std::lock_guard<std::mutex> lock(threads_mutex_);
    connection_threads_.emplace_back([this, fd] { Serve(fd); });
  }
}

void LineProtocolServer::Stop() {
  if (stopping_.exchange(true)) return;
  // Shutdown unblocks the accept() the loop is parked in; only close the fd
  // after the accept thread is joined, or a concurrently opened descriptor
  // could reuse the number and receive the accept call.
  const int listener = listen_fd_.exchange(-1);
  if (listener >= 0) {
    ::shutdown(listener, SHUT_RDWR);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listener >= 0) {
    ::close(listener);
  }
  std::lock_guard<std::mutex> lock(threads_mutex_);
  for (std::thread& thread : connection_threads_) {
    if (thread.joinable()) thread.join();
  }
  connection_threads_.clear();
}

}  // namespace hetdb
