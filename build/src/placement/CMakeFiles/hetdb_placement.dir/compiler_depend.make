# Empty compiler generated dependencies file for hetdb_placement.
# This may be replaced when dependencies are built.
