#ifndef HETDB_COMMON_LOGGING_H_
#define HETDB_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <mutex>
#include <sstream>
#include <string>

#include "common/status.h"

namespace hetdb {

/// Severity levels for the built-in logger. kFatal aborts the process after
/// emitting the message.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

/// Minimal thread-safe logger. The global minimum level defaults to kWarning
/// so that benchmarks stay quiet; tests and examples can lower it.
class Logger {
 public:
  static Logger& Global();

  void set_min_level(LogLevel level) { min_level_ = level; }
  LogLevel min_level() const { return min_level_; }

  /// Emits one formatted line ("[LEVEL] message") to stderr.
  void Log(LogLevel level, const std::string& message);

 private:
  Logger() = default;
  LogLevel min_level_ = LogLevel::kWarning;
  std::mutex mutex_;
};

namespace internal_logging {

/// Stream-style collector used by the HETDB_LOG macro; emits on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal_logging

#define HETDB_LOG(level)                                                  \
  ::hetdb::internal_logging::LogMessage(::hetdb::LogLevel::k##level,      \
                                        __FILE__, __LINE__)

/// Invariant check that is active in all build types (unlike assert).
#define HETDB_CHECK(condition)                                       \
  do {                                                               \
    if (!(condition)) {                                              \
      HETDB_LOG(Fatal) << "Check failed: " #condition;               \
    }                                                                \
  } while (false)

#define HETDB_CHECK_OK(expr)                                         \
  do {                                                               \
    ::hetdb::Status _st = (expr);                                    \
    if (!_st.ok()) {                                                 \
      HETDB_LOG(Fatal) << "Status not OK: " << _st.ToString();       \
    }                                                                \
  } while (false)

}  // namespace hetdb

#endif  // HETDB_COMMON_LOGGING_H_
