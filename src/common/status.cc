#include "common/status.h"

namespace hetdb {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDeviceLost:
      return "DeviceLost";
    case StatusCode::kCancelled:
      return "Cancelled";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result = StatusCodeToString(code_);
  result += ": ";
  result += message_;
  return result;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace hetdb
