file(REMOVE_RECURSE
  "CMakeFiles/hetdb_operators.dir/expression.cc.o"
  "CMakeFiles/hetdb_operators.dir/expression.cc.o.d"
  "CMakeFiles/hetdb_operators.dir/kernels.cc.o"
  "CMakeFiles/hetdb_operators.dir/kernels.cc.o.d"
  "CMakeFiles/hetdb_operators.dir/plan_node.cc.o"
  "CMakeFiles/hetdb_operators.dir/plan_node.cc.o.d"
  "libhetdb_operators.a"
  "libhetdb_operators.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetdb_operators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
