#ifndef HETDB_PLACEMENT_SHARDING_H_
#define HETDB_PLACEMENT_SHARDING_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "cache/data_cache.h"
#include "fault/circuit_breaker.h"
#include "sim/simulator.h"

namespace hetdb {

class PlanNode;

/// Device-aware sharding layer for the N-co-processor machine (DESIGN.md
/// §12, the Theseus-style scale-out direction).
///
/// Three responsibilities:
///
///  * **Column affinity** — `AffinityDevice(key)` hashes a base column's
///    cache key over the currently live devices, giving every column one
///    stable home device. Scans of a column are routed there, so each
///    device's data cache holds a disjoint shard of the working set (N
///    caches behave like one N-times-larger cache instead of N copies of
///    the same hot set).
///  * **Operator placement** — `PickDevice` chooses the device for an
///    operator about to run on a co-processor: follow resident inputs if
///    any (avoid cross-device migrations), else the affinity of the base
///    columns it reads, else the device with the most free heap — which
///    spreads join builds and fused-pipeline heaps across devices instead
///    of piling them onto device 0.
///  * **Loss rebalancing** — when a breaker trips a device (or chaos kills
///    it), `MarkDeviceLost` removes it from the live set; every affinity
///    re-hashes onto the survivors. `RebalanceAway` moves the dead device's
///    cached shard to its new homes: over the D2D link when the device is
///    still reachable (breaker trip, device on the bus), or re-sourced from
///    host over the survivors' PCIe links when it is truly gone — charging
///    the right bus either way.
///
/// Thread-safe. With one device every decision degenerates to device 0 and
/// the policy is invisible — the single-GPU paper setup is unchanged.
class DeviceShardingPolicy {
 public:
  DeviceShardingPolicy(Simulator* simulator, std::vector<DataCache*> caches,
                       std::vector<DeviceCircuitBreaker*> breakers);

  DeviceShardingPolicy(const DeviceShardingPolicy&) = delete;
  DeviceShardingPolicy& operator=(const DeviceShardingPolicy&) = delete;

  int device_count() const { return static_cast<int>(caches_.size()); }

  bool IsLive(int device) const;
  std::vector<int> LiveDevices() const;

  /// Stable home device for a column/partition key, hashed over the live
  /// set. Returns -1 when no device is live.
  int AffinityDevice(const std::string& key) const;

  /// Device for an operator about to run on a co-processor, or -1 when no
  /// device is usable (caller falls back to the CPU). Candidates are live
  /// devices whose breaker is not open. `resident_inputs` holds one
  /// (device, bytes) pair per device-resident input; residency is scored by
  /// *bytes*, so an operator follows its largest input and only the smaller
  /// side of a cross-device join ever migrates — at the paper's 100 MB/s
  /// PCIe, moving the fact side instead would erase the scale-out win.
  /// `input_keys` holds the cache keys of base columns the operator scans
  /// (empty for non-scans). `preferred_device` is the query's home device
  /// (see `QueryHomeDevice`): it wins over cached-column pull but loses to
  /// large resident inputs, so a whole query converges onto one device
  /// instead of shipping intermediates between the homes of the columns it
  /// reads. `estimated_heap_bytes` breaks free-heap ties.
  int PickDevice(const std::vector<std::string>& input_keys,
                 const std::vector<std::pair<int, size_t>>& resident_inputs,
                 size_t estimated_heap_bytes,
                 int preferred_device = -1) const;

  /// The query's home device: a hash of the plan's base-column footprint
  /// (every column any of its scans reads) over the live devices. Placing
  /// every operator of the query there means intermediates never cross a
  /// bus, and the columns it reads demand-cache on the home so repeat
  /// queries pay nothing. The footprint fingerprints the query *template*,
  /// so a multi-user template mix spreads near-uniformly across devices —
  /// where any single-column anchor would pile whole flights onto one.
  /// Returns -1 for plans without base scans or with no live device.
  int QueryHomeDevice(const PlanNode& root) const;

  /// Installs a policy gate consulted per candidate in PickDevice (null
  /// clears): a device for which the gate returns false is skipped even when
  /// live with a closed breaker. The brownout controller uses this to exclude
  /// thrashing devices at L2 and every device at L3 — unlike MarkDeviceLost,
  /// the gate is advisory placement pressure, not a liveness change, so
  /// affinities do NOT re-hash and nothing rebalances. The gate must be
  /// cheap and lock-free.
  void SetDeviceGate(std::function<bool(int)> gate);

  /// Removes `device` from the live set (affinities re-hash to survivors).
  void MarkDeviceLost(int device);
  /// Re-admits `device` after breaker recovery; new placements can use it
  /// again immediately, and affinities re-hash to include it.
  void MarkDeviceRestored(int device);

  /// Migrates the dead device's cached columns to their new affinity homes
  /// and drops them from the dead cache. `source_reachable` selects the
  /// path: true charges a device-to-device move per column (D2D link, or
  /// D2H+H2D through the host without one); false means the device's memory
  /// is gone, so survivors re-load from host over their own PCIe links.
  /// Returns the number of columns that found a new home.
  int RebalanceAway(int device, bool source_reachable);

 private:
  Simulator* simulator_;
  std::vector<DataCache*> caches_;
  std::vector<DeviceCircuitBreaker*> breakers_;

  mutable std::mutex mutex_;       // guards live_ and device_gate_
  std::vector<bool> live_;
  std::function<bool(int)> device_gate_;
  /// Round-robin tie-breaker so input-free operators (e.g. joins of two
  /// host-resident tables) spread instead of all landing on device 0.
  mutable std::atomic<uint64_t> spread_clock_{0};
};

}  // namespace hetdb

#endif  // HETDB_PLACEMENT_SHARDING_H_
