file(REMOVE_RECURSE
  "../bench/fig23_ssb_backends"
  "../bench/fig23_ssb_backends.pdb"
  "CMakeFiles/fig23_ssb_backends.dir/fig23_ssb_backends.cpp.o"
  "CMakeFiles/fig23_ssb_backends.dir/fig23_ssb_backends.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig23_ssb_backends.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
