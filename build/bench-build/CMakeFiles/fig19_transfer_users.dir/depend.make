# Empty dependencies file for fig19_transfer_users.
# This may be replaced when dependencies are built.
