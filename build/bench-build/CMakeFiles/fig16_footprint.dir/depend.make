# Empty dependencies file for fig16_footprint.
# This may be replaced when dependencies are built.
