file(REMOVE_RECURSE
  "../bench/fig20_wasted_time"
  "../bench/fig20_wasted_time.pdb"
  "CMakeFiles/fig20_wasted_time.dir/fig20_wasted_time.cpp.o"
  "CMakeFiles/fig20_wasted_time.dir/fig20_wasted_time.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig20_wasted_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
