# Empty dependencies file for fig13_aborts.
# This may be replaced when dependencies are built.
