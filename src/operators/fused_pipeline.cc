#include "operators/fused_pipeline.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>
#include <limits>
#include <sstream>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "common/config.h"
#include "common/logging.h"
#include "common/parallel.h"
#include "operators/kernels_internal.h"

namespace hetdb {

using namespace kernel_internal;  // NOLINT — shared kernel building blocks

namespace {

// ---------------------------------------------------------------------------
// Runtime binding
// ---------------------------------------------------------------------------

/// Where a pipeline-schema column lives while the chain runs unmaterialized:
/// in the source table, in one join level's build table, or computed on the
/// fly from a project expression.
struct Binding {
  enum class Kind { kSource, kBuild, kComputed };
  Kind kind = Kind::kSource;
  int build_level = -1;  ///< kBuild: which join level's build table
  ColumnPtr column;      ///< kSource/kBuild: the physical column
  int computed = -1;     ///< kComputed: index into BoundChain::computed
};

/// One column of the pipeline's logical schema at some point in the chain
/// (names follow join/project renames; bindings stay physical).
struct SchemaCol {
  std::string name;
  Binding binding;
};

/// One project expression lowered against the pipeline schema. The
/// `integer_result` rule is byte-for-byte the one in Project().
struct ComputedCol {
  ArithmeticExpr expr;
  Binding left;
  Binding right;  ///< unused when expr.right_column is empty
  bool integer_result = false;
};

/// One join member lowered: where the probe key lives plus the build side.
/// The probe key is additionally resolved to a typed raw pointer (binding
/// guarantees an integer column), so the match loop reads it without a
/// per-row IntKeyAt call.
struct BoundJoin {
  Binding probe_key;
  ColumnPtr build_key;
  size_t build_rows = 0;
  const int32_t* key_i32 = nullptr;
  const int64_t* key_i64 = nullptr;

  int64_t KeyAt(size_t row) const {
    return key_i32 != nullptr ? key_i32[row] : key_i64[row];
  }
};

/// One aggregate input lowered: COUNT(*), a physical column, or a computed
/// expression evaluated per match.
struct AggBinding {
  bool count_star = false;
  Binding binding;
};

struct BoundChain {
  /// Every select member's CNF, compiled against the source table (all
  /// predicates are source-bound or binding declines).
  std::vector<std::vector<CompiledAtom>> conjuncts;
  std::vector<BoundJoin> joins;  ///< bottom-up join levels
  std::vector<ComputedCol> computed;
  std::vector<SchemaCol> schema;  ///< output schema (non-aggregate terminal)
  const AggregateNode* aggregate = nullptr;
  std::vector<Binding> group_bindings;
  std::vector<AggBinding> agg_bindings;
  std::string output_name;  ///< table name the top member's kernel would use
};

const char* KernelTableName(PlanOp op) {
  switch (op) {
    case PlanOp::kSelect:
      return "select";
    case PlanOp::kJoin:
      return "join";
    case PlanOp::kProject:
      return "project";
    case PlanOp::kAggregate:
      return "aggregate";
    default:
      return "fused";
  }
}

bool HasDuplicateNames(const std::vector<SchemaCol>& schema) {
  std::unordered_set<std::string> seen;
  for (const SchemaCol& col : schema) {
    if (!seen.insert(col.name).second) return true;
  }
  return false;
}

bool IsIntegerColumn(const Column& column) {
  return column.type() == DataType::kInt32 ||
         column.type() == DataType::kInt64;
}

/// Lowers the member chain against the actual input tables. Any status
/// other than OK means "run the operator-at-a-time fallback instead" — the
/// fallback reproduces the unfused semantics (including genuine query
/// errors) exactly, so declining here is always safe.
Result<BoundChain> BindChain(const std::vector<PlanNodePtr>& members,
                             const std::vector<TablePtr>& inputs) {
  BoundChain bound;
  const Table& source = *inputs[0];
  std::vector<SchemaCol> schema;
  for (const ColumnPtr& column : source.columns()) {
    schema.push_back({column->name(),
                      {Binding::Kind::kSource, -1, column, -1}});
  }
  auto find = [&schema](const std::string& name) -> const SchemaCol* {
    for (const SchemaCol& col : schema) {
      if (col.name == name) return &col;
    }
    return nullptr;
  };

  size_t join_level = 0;
  for (size_t m = 0; m < members.size(); ++m) {
    const PlanNode& member = *members[m];
    switch (member.op()) {
      case PlanOp::kSelect: {
        const auto& select = static_cast<const SelectNode&>(member);
        for (const Disjunction& disjunction : select.filter().conjuncts) {
          std::vector<CompiledAtom> atoms;
          atoms.reserve(disjunction.atoms.size());
          for (const Predicate& atom : disjunction.atoms) {
            const SchemaCol* col = find(atom.column);
            if (col == nullptr ||
                col->binding.kind != Binding::Kind::kSource) {
              return Status::NotImplemented("filter not source-bound");
            }
            // Compile against the source table under the column's physical
            // name (the schema name may be a join alias).
            Predicate rewritten = atom;
            rewritten.column = col->binding.column->name();
            HETDB_ASSIGN_OR_RETURN(CompiledAtom compiled,
                                   CompileAtom(source, rewritten));
            atoms.push_back(compiled);
          }
          bound.conjuncts.push_back(std::move(atoms));
        }
        break;
      }
      case PlanOp::kJoin: {
        const auto& join = static_cast<const JoinNode&>(member);
        if (1 + join_level >= inputs.size() ||
            inputs[1 + join_level] == nullptr) {
          return Status::NotImplemented("missing build input");
        }
        const Table& build = *inputs[1 + join_level];
        const SchemaCol* probe = find(join.probe_key());
        if (probe == nullptr ||
            probe->binding.kind == Binding::Kind::kComputed ||
            !IsIntegerColumn(*probe->binding.column)) {
          return Status::NotImplemented("probe key not integer-column-bound");
        }
        HETDB_ASSIGN_OR_RETURN(ColumnPtr build_key,
                               build.GetColumn(join.build_key()));
        if (!IsIntegerColumn(*build_key)) {
          return Status::NotImplemented("build key not integer");
        }
        const JoinOutputSpec& spec = join.output_spec();
        if ((!spec.build_aliases.empty() &&
             spec.build_aliases.size() != spec.build_columns.size()) ||
            (!spec.probe_aliases.empty() &&
             spec.probe_aliases.size() != spec.probe_columns.size())) {
          return Status::NotImplemented("alias size mismatch");
        }
        BoundJoin bound_join;
        bound_join.probe_key = probe->binding;
        bound_join.build_key = std::move(build_key);
        bound_join.build_rows = build.num_rows();
        const Column& probe_col = *probe->binding.column;
        if (probe_col.type() == DataType::kInt32) {
          bound_join.key_i32 =
              static_cast<const Int32Column&>(probe_col).values().data();
        } else {
          bound_join.key_i64 =
              static_cast<const Int64Column&>(probe_col).values().data();
        }
        bound.joins.push_back(std::move(bound_join));
        // The join's output schema replaces the current one: build columns
        // first, then probe columns, honoring aliases (MaterializeJoinOutput
        // order).
        std::vector<SchemaCol> next;
        for (size_t i = 0; i < spec.build_columns.size(); ++i) {
          HETDB_ASSIGN_OR_RETURN(ColumnPtr column,
                                 build.GetColumn(spec.build_columns[i]));
          const std::string& out_name = spec.build_aliases.empty()
                                            ? spec.build_columns[i]
                                            : spec.build_aliases[i];
          next.push_back({out_name,
                          {Binding::Kind::kBuild,
                           static_cast<int>(join_level), column, -1}});
        }
        for (size_t i = 0; i < spec.probe_columns.size(); ++i) {
          const SchemaCol* col = find(spec.probe_columns[i]);
          if (col == nullptr) {
            return Status::NotImplemented("probe column not in schema");
          }
          const std::string& out_name = spec.probe_aliases.empty()
                                            ? spec.probe_columns[i]
                                            : spec.probe_aliases[i];
          next.push_back({out_name, col->binding});
        }
        if (HasDuplicateNames(next)) {
          return Status::NotImplemented("duplicate output column");
        }
        schema = std::move(next);
        ++join_level;
        break;
      }
      case PlanOp::kProject: {
        const auto& project = static_cast<const ProjectNode&>(member);
        std::vector<SchemaCol> next;
        for (const std::string& name : project.keep_columns()) {
          const SchemaCol* col = find(name);
          if (col == nullptr) {
            return Status::NotImplemented("keep column not in schema");
          }
          next.push_back(*col);
        }
        for (const ArithmeticExpr& expr : project.expressions()) {
          const SchemaCol* left = find(expr.left_column);
          if (left == nullptr ||
              left->binding.kind == Binding::Kind::kComputed) {
            return Status::NotImplemented("expr input not column-bound");
          }
          ComputedCol cc;
          cc.expr = expr;
          cc.left = left->binding;
          if (!expr.right_column.empty()) {
            const SchemaCol* right = find(expr.right_column);
            if (right == nullptr ||
                right->binding.kind == Binding::Kind::kComputed) {
              return Status::NotImplemented("expr input not column-bound");
            }
            cc.right = right->binding;
          }
          cc.integer_result =
              expr.op != ArithmeticExpr::Op::kDiv &&
              cc.left.column->type() != DataType::kDouble &&
              (expr.right_column.empty()
                   ? expr.right_constant == std::floor(expr.right_constant)
                   : cc.right.column->type() != DataType::kDouble);
          bound.computed.push_back(cc);
          next.push_back({expr.output_name,
                          {Binding::Kind::kComputed, -1, nullptr,
                           static_cast<int>(bound.computed.size()) - 1}});
        }
        if (HasDuplicateNames(next)) {
          return Status::NotImplemented("duplicate output column");
        }
        schema = std::move(next);
        break;
      }
      case PlanOp::kAggregate: {
        if (m + 1 != members.size()) {
          return Status::NotImplemented("aggregate must terminate pipeline");
        }
        const auto& agg = static_cast<const AggregateNode&>(member);
        for (const std::string& name : agg.group_by()) {
          const SchemaCol* col = find(name);
          if (col == nullptr ||
              col->binding.kind == Binding::Kind::kComputed) {
            return Status::NotImplemented("group key not column-bound");
          }
          bound.group_bindings.push_back(col->binding);
        }
        for (const AggregateSpec& spec : agg.aggregates()) {
          AggBinding ab;
          if (spec.fn == AggregateFn::kCount && spec.input_column.empty()) {
            ab.count_star = true;
          } else {
            const SchemaCol* col = find(spec.input_column);
            if (col == nullptr) {
              return Status::NotImplemented("aggregate input not in schema");
            }
            ab.binding = col->binding;
          }
          bound.agg_bindings.push_back(std::move(ab));
        }
        bound.aggregate = &agg;
        break;
      }
      default:
        return Status::NotImplemented("unfusable member");
    }
  }
  bound.schema = std::move(schema);
  bound.output_name = KernelTableName(members.back()->op());
  return bound;
}

// ---------------------------------------------------------------------------
// Join tables
// ---------------------------------------------------------------------------

/// Per-join build-side lookup structure: a direct-address table over
/// [min, max] for dense key domains (the same `max(8192, 8x rows)` density
/// rule as the parallel hash join), a hash map otherwise. Duplicate build
/// rows chain through `next` in ascending-row order, so enumeration replays
/// the (probe ascending, build ascending within key) order of both unfused
/// backends.
struct FusedJoinTable {
  bool dense = false;
  int64_t min_key = 0;
  uint64_t range = 0;
  std::vector<uint32_t> heads;
  std::unordered_map<int64_t, uint32_t> sparse;
  std::vector<uint32_t> next;

  uint32_t First(int64_t key) const {
    if (dense) {
      const uint64_t k =
          static_cast<uint64_t>(key) - static_cast<uint64_t>(min_key);
      return k > range ? kNoEntry : heads[k];
    }
    auto it = sparse.find(key);
    return it == sparse.end() ? kNoEntry : it->second;
  }
};

FusedJoinTable BuildJoinTable(const Column& key_col, size_t rows) {
  FusedJoinTable jt;
  jt.next.assign(rows, kNoEntry);
  if (rows == 0) return jt;
  int64_t min_key = IntKeyAt(key_col, 0);
  int64_t max_key = min_key;
  for (size_t i = 1; i < rows; ++i) {
    const int64_t k = IntKeyAt(key_col, i);
    min_key = std::min(min_key, k);
    max_key = std::max(max_key, k);
  }
  const uint64_t range =
      static_cast<uint64_t>(max_key) - static_cast<uint64_t>(min_key);
  const uint64_t dense_limit =
      std::max<uint64_t>(8192, 8 * static_cast<uint64_t>(rows));
  if (range < dense_limit) {
    jt.dense = true;
    jt.min_key = min_key;
    jt.range = range;
    jt.heads.assign(range + 1, kNoEntry);
    std::vector<uint32_t> tails(range + 1, kNoEntry);
    for (size_t i = 0; i < rows; ++i) {
      const uint64_t k = static_cast<uint64_t>(IntKeyAt(key_col, i)) -
                         static_cast<uint64_t>(min_key);
      if (jt.heads[k] == kNoEntry) {
        jt.heads[k] = static_cast<uint32_t>(i);
      } else {
        jt.next[tails[k]] = static_cast<uint32_t>(i);
      }
      tails[k] = static_cast<uint32_t>(i);
    }
  } else {
    std::unordered_map<int64_t, uint32_t> tails;
    jt.sparse.reserve(rows * 2);
    tails.reserve(rows * 2);
    for (size_t i = 0; i < rows; ++i) {
      const int64_t key = IntKeyAt(key_col, i);
      auto [it, inserted] = jt.sparse.emplace(key, static_cast<uint32_t>(i));
      if (inserted) {
        tails[key] = static_cast<uint32_t>(i);
      } else {
        uint32_t& tail = tails[key];
        jt.next[tail] = static_cast<uint32_t>(i);
        tail = static_cast<uint32_t>(i);
      }
    }
  }
  return jt;
}

// ---------------------------------------------------------------------------
// Match enumeration
// ---------------------------------------------------------------------------

/// Depth-first nested probe from `level` for one surviving source row.
/// Enumerates matches in (source asc, build_0 asc, build_1 asc, ...) order —
/// exactly the lexicographic row order the unfused join cascade produces.
void EmitMatches(const BoundChain& bound,
                 const std::vector<FusedJoinTable>& tables, size_t level,
                 uint32_t src_row, uint32_t* cur,
                 std::vector<uint32_t>* src_buf,
                 std::vector<std::vector<uint32_t>>* lvl_buf) {
  const BoundJoin& join = bound.joins[level];
  const size_t key_row = join.probe_key.kind == Binding::Kind::kSource
                             ? src_row
                             : cur[join.probe_key.build_level];
  const int64_t key = join.KeyAt(key_row);
  const FusedJoinTable& jt = tables[level];
  for (uint32_t e = jt.First(key); e != kNoEntry; e = jt.next[e]) {
    cur[level] = e;
    if (level + 1 == bound.joins.size()) {
      src_buf->push_back(src_row);
      for (size_t j = 0; j < bound.joins.size(); ++j) {
        (*lvl_buf)[j].push_back(cur[j]);
      }
    } else {
      EmitMatches(bound, tables, level + 1, src_row, cur, src_buf, lvl_buf);
    }
  }
}

/// Row in the bound table that match tuple `t` refers to for binding `b`.
uint32_t RowOf(const Binding& b, size_t t, const std::vector<uint32_t>& src,
               const std::vector<std::vector<uint32_t>>& levels) {
  return b.kind == Binding::Kind::kSource ? src[t]
                                          : levels[b.build_level][t];
}

/// Insertion-ordered open-addressing set over packed 64-bit group keys:
/// Add returns the key's group id, numbering groups in first-seen order —
/// the order every backend fixes for aggregate output rows.
struct PackedGroups {
  std::vector<uint64_t> slot_keys;
  std::vector<uint32_t> slot_gids;  // kNoEntry = empty slot
  size_t size = 0;

  PackedGroups() : slot_keys(1024, 0), slot_gids(1024, kNoEntry) {}

  uint32_t Add(uint64_t key) {
    if ((size + 1) * 2 > slot_gids.size()) Grow();
    const size_t mask = slot_gids.size() - 1;
    size_t idx = MixHash(key) & mask;
    while (true) {
      const uint32_t gid = slot_gids[idx];
      if (gid == kNoEntry) {
        const auto fresh = static_cast<uint32_t>(size++);
        slot_keys[idx] = key;
        slot_gids[idx] = fresh;
        return fresh;
      }
      if (slot_keys[idx] == key) return gid;
      idx = (idx + 1) & mask;
    }
  }

  void Grow() {
    const size_t new_size = slot_gids.size() * 2;
    std::vector<uint64_t> old_keys = std::move(slot_keys);
    std::vector<uint32_t> old_gids = std::move(slot_gids);
    slot_keys.assign(new_size, 0);
    slot_gids.assign(new_size, kNoEntry);
    const size_t mask = new_size - 1;
    for (size_t i = 0; i < old_gids.size(); ++i) {
      if (old_gids[i] == kNoEntry) continue;
      size_t idx = MixHash(old_keys[i]) & mask;
      while (slot_gids[idx] != kNoEntry) idx = (idx + 1) & mask;
      slot_keys[idx] = old_keys[i];
      slot_gids[idx] = old_gids[i];
    }
  }
};

/// Packed-64-bit group discovery — the AggregateParallel technique applied
/// to unmaterialized matches. Each group column contributes a bit field
/// sized by its full-column value range (a superset of the rows any match
/// touches, so the packing stays injective). Returns false when a key
/// column is not int/code-typed or the composite key does not fit in 64
/// bits; the byte-string path handles those. Either way groups are
/// numbered first-seen over matches in ascending order, so the output is
/// bit-identical across both discovery paths and both unfused backends.
bool PackedGroupDiscovery(const BoundChain& bound,
                          const std::vector<uint32_t>& src,
                          const std::vector<std::vector<uint32_t>>& levels,
                          std::vector<uint32_t>* representative,
                          std::vector<uint32_t>* group_of) {
  const size_t num_keys = bound.group_bindings.size();
  struct PackedKeyCol {
    const Binding* binding = nullptr;
    const int32_t* i32 = nullptr;  ///< int32 values or string codes
    const int64_t* i64 = nullptr;
    uint64_t min = 0;
    int shift = 0;
  };
  std::vector<PackedKeyCol> cols(num_keys);
  int total_bits = 0;
  for (size_t c = 0; c < num_keys; ++c) {
    const Binding& binding = bound.group_bindings[c];
    const Column& column = *binding.column;
    PackedKeyCol& kc = cols[c];
    kc.binding = &binding;
    const size_t rows = column.num_rows();
    switch (column.type()) {
      case DataType::kInt32:
        kc.i32 = static_cast<const Int32Column&>(column).values().data();
        break;
      case DataType::kString:
        kc.i32 = static_cast<const StringColumn&>(column).codes().data();
        break;
      case DataType::kInt64:
        kc.i64 = static_cast<const Int64Column&>(column).values().data();
        break;
      case DataType::kDouble:
        return false;  // byte path traps this programming error
    }
    int64_t lo = 0;
    int64_t hi = 0;
    if (rows > 0) {
      if (kc.i32 != nullptr) {
        lo = hi = kc.i32[0];
        for (size_t i = 1; i < rows; ++i) {
          lo = std::min<int64_t>(lo, kc.i32[i]);
          hi = std::max<int64_t>(hi, kc.i32[i]);
        }
      } else {
        lo = hi = kc.i64[0];
        for (size_t i = 1; i < rows; ++i) {
          lo = std::min(lo, kc.i64[i]);
          hi = std::max(hi, kc.i64[i]);
        }
      }
    }
    kc.min = static_cast<uint64_t>(lo);
    kc.shift = total_bits;
    total_bits += std::bit_width(static_cast<uint64_t>(hi) -
                                 static_cast<uint64_t>(lo));
    if (total_bits > 64) return false;
  }

  const size_t total = src.size();
  group_of->resize(total);
  PackedGroups groups;
  for (size_t t = 0; t < total; ++t) {
    uint64_t key = 0;
    for (const PackedKeyCol& kc : cols) {
      const uint32_t row = RowOf(*kc.binding, t, src, levels);
      const uint64_t raw = kc.i32 != nullptr
                               ? static_cast<uint64_t>(
                                     static_cast<int64_t>(kc.i32[row]))
                               : static_cast<uint64_t>(kc.i64[row]);
      key |= (raw - kc.min) << kc.shift;
    }
    const uint32_t gid = groups.Add(key);
    if (gid == representative->size()) {
      representative->push_back(static_cast<uint32_t>(t));
    }
    (*group_of)[t] = gid;
  }
  return true;
}

double ApplyArithmetic(ArithmeticExpr::Op op, double a, double b) {
  switch (op) {
    case ArithmeticExpr::Op::kAdd:
      return a + b;
    case ArithmeticExpr::Op::kSub:
      return a - b;
    case ArithmeticExpr::Op::kMul:
      return a * b;
    case ArithmeticExpr::Op::kDiv:
      return b == 0 ? 0 : a / b;
    case ArithmeticExpr::Op::kRsub:
      return b - a;
  }
  return 0;
}

// ---------------------------------------------------------------------------
// Terminal stages
// ---------------------------------------------------------------------------

ColumnPtr MaterializeComputed(
    const ComputedCol& cc, const std::string& name,
    const std::vector<uint32_t>& src,
    const std::vector<std::vector<uint32_t>>& levels) {
  const size_t total = src.size();
  auto value_at = [&](const Binding& b, size_t t) -> double {
    return NumericAt(*b.column, RowOf(b, t, src, levels));
  };
  auto right_at = [&](size_t t) -> double {
    return cc.expr.right_column.empty() ? cc.expr.right_constant
                                        : value_at(cc.right, t);
  };
  if (cc.integer_result) {
    std::vector<int64_t> values(total);
    for (size_t t = 0; t < total; ++t) {
      values[t] = static_cast<int64_t>(
          ApplyArithmetic(cc.expr.op, value_at(cc.left, t), right_at(t)));
    }
    return std::make_shared<Int64Column>(name, std::move(values));
  }
  std::vector<double> values(total);
  for (size_t t = 0; t < total; ++t) {
    values[t] = ApplyArithmetic(cc.expr.op, value_at(cc.left, t), right_at(t));
  }
  return std::make_shared<DoubleColumn>(name, std::move(values));
}

Result<TablePtr> MaterializeMatches(
    const BoundChain& bound, const std::vector<uint32_t>& src,
    const std::vector<std::vector<uint32_t>>& levels) {
  auto output = std::make_shared<Table>(bound.output_name);
  for (const SchemaCol& col : bound.schema) {
    switch (col.binding.kind) {
      case Binding::Kind::kSource:
        HETDB_RETURN_NOT_OK(output->AddColumn(
            GatherColumn(*col.binding.column, src, col.name)));
        break;
      case Binding::Kind::kBuild:
        HETDB_RETURN_NOT_OK(output->AddColumn(GatherColumn(
            *col.binding.column, levels[col.binding.build_level], col.name)));
        break;
      case Binding::Kind::kComputed:
        HETDB_RETURN_NOT_OK(output->AddColumn(MaterializeComputed(
            bound.computed[col.binding.computed], col.name, src, levels)));
        break;
    }
  }
  return output;
}

Result<TablePtr> AggregateMatches(
    const BoundChain& bound, const std::vector<uint32_t>& src,
    const std::vector<std::vector<uint32_t>>& levels) {
  const AggregateNode& agg = *bound.aggregate;
  const size_t total = src.size();

  // Group discovery: first-seen group order over matches in ascending
  // order — the same order the unfused chain's intermediate table has.
  // Packed 64-bit keys when the composite fits; byte-encoded int64 keys
  // (string columns contribute their dictionary code, AggregateScalar's
  // encoding) otherwise.
  std::vector<uint32_t> representative;  // first match tuple per group
  std::vector<uint32_t> group_of(total);
  if (!PackedGroupDiscovery(bound, src, levels, &representative, &group_of)) {
    std::unordered_map<std::string, uint32_t> groups;
    std::string key;
    for (size_t t = 0; t < total; ++t) {
      key.clear();
      for (const Binding& b : bound.group_bindings) {
        const uint32_t row = RowOf(b, t, src, levels);
        int64_t encoded;
        if (b.column->type() == DataType::kString) {
          encoded = static_cast<const StringColumn&>(*b.column).code(row);
        } else {
          encoded = IntKeyAt(*b.column, row);
        }
        key.append(reinterpret_cast<const char*>(&encoded), sizeof(encoded));
      }
      auto [it, inserted] =
          groups.emplace(key, static_cast<uint32_t>(representative.size()));
      if (inserted) representative.push_back(static_cast<uint32_t>(t));
      group_of[t] = it->second;
    }
  }
  const size_t num_groups = representative.size();

  // Classify inputs: physical columns via the shared ClassifyAggInput
  // (identical typing + the same fatal on strings), computed expressions by
  // their Project output type.
  const size_t num_aggs = bound.agg_bindings.size();
  std::vector<AggInput> inputs(num_aggs);
  for (size_t a = 0; a < num_aggs; ++a) {
    const AggBinding& ab = bound.agg_bindings[a];
    if (ab.count_star) {
      inputs[a].kind = AggInput::Kind::kCountStar;
    } else if (ab.binding.kind == Binding::Kind::kComputed) {
      inputs[a].kind = bound.computed[ab.binding.computed].integer_result
                           ? AggInput::Kind::kInt64
                           : AggInput::Kind::kDouble;
    } else {
      inputs[a] = ClassifyAggInput(ab.binding.column, total);
    }
  }

  // One pass over the matches in ascending order: per-group double sums
  // accumulate in exactly the order both unfused backends fix.
  std::vector<std::vector<Acc>> accs(num_aggs, std::vector<Acc>(num_groups));
  for (size_t t = 0; t < total; ++t) {
    const uint32_t g = group_of[t];
    for (size_t a = 0; a < num_aggs; ++a) {
      const AggBinding& ab = bound.agg_bindings[a];
      Acc& acc = accs[a][g];
      if (ab.count_star) {
        ++acc.count;
        continue;
      }
      if (ab.binding.kind == Binding::Kind::kComputed) {
        const ComputedCol& cc = bound.computed[ab.binding.computed];
        const double left =
            NumericAt(*cc.left.column, RowOf(cc.left, t, src, levels));
        const double right =
            cc.expr.right_column.empty()
                ? cc.expr.right_constant
                : NumericAt(*cc.right.column, RowOf(cc.right, t, src, levels));
        const double v = ApplyArithmetic(cc.expr.op, left, right);
        if (cc.integer_result) {
          UpdateAccInt(static_cast<int64_t>(v), acc);
        } else {
          UpdateAccDouble(v, acc);
        }
        continue;
      }
      UpdateAcc(inputs[a], RowOf(ab.binding, t, src, levels), acc);
    }
  }

  auto output = std::make_shared<Table>(bound.output_name);
  const std::vector<std::string>& group_names = agg.group_by();
  for (size_t gi = 0; gi < bound.group_bindings.size(); ++gi) {
    const Binding& b = bound.group_bindings[gi];
    std::vector<uint32_t> rows(num_groups);
    for (size_t g = 0; g < num_groups; ++g) {
      rows[g] = RowOf(b, representative[g], src, levels);
    }
    HETDB_RETURN_NOT_OK(
        output->AddColumn(GatherColumn(*b.column, rows, group_names[gi])));
  }
  HETDB_RETURN_NOT_OK(AppendAggregateColumns(agg.aggregates(), inputs, accs,
                                             num_groups, output.get()));
  return output;
}

// ---------------------------------------------------------------------------
// Fused evaluation
// ---------------------------------------------------------------------------

Result<TablePtr> EvaluateBoundChain(const BoundChain& bound,
                                    const std::vector<TablePtr>& inputs,
                                    KernelStats& stats) {
  const Table& source = *inputs[0];
  const size_t n = source.num_rows();
  const size_t num_joins = bound.joins.size();

  std::vector<FusedJoinTable> tables;
  tables.reserve(num_joins);
  for (const BoundJoin& join : bound.joins) {
    tables.push_back(BuildJoinTable(*join.build_key, join.build_rows));
  }

  // Stage 1: morsel loop — compiled CNF keep-mask, survivors probe the join
  // levels straight out of the mask into per-morsel match buffers. No column
  // data moves; only row indices are written.
  const size_t morsel = ConfigMorselRows();
  const size_t num_morsels = n == 0 ? 0 : (n + morsel - 1) / morsel;
  const bool parallel = UseParallelBackend();
  const int max_workers = parallel ? MaxParallelWorkers(n, morsel) : 1;

  std::vector<std::vector<uint32_t>> morsel_src(num_morsels);
  std::vector<std::vector<std::vector<uint32_t>>> morsel_levels(num_morsels);
  std::vector<std::vector<uint8_t>> keep_scratch(max_workers);
  std::vector<std::vector<uint8_t>> dis_scratch(max_workers);
  std::vector<std::vector<uint32_t>> surv_scratch(max_workers);
  std::vector<std::vector<uint32_t>> cur_scratch(max_workers);

  auto body = [&](size_t begin, size_t end, int worker) {
    const size_t len = end - begin;
    const size_t m = begin / morsel;
    std::vector<uint8_t>& keep = keep_scratch[worker];
    std::vector<uint8_t>& dis = dis_scratch[worker];
    std::vector<uint32_t>& cur = cur_scratch[worker];
    if (keep.size() < morsel) keep.resize(morsel);
    if (dis.size() < morsel) dis.resize(morsel);
    cur.resize(num_joins);
    std::fill(keep.begin(), keep.begin() + len, uint8_t{1});
    for (const std::vector<CompiledAtom>& atoms : bound.conjuncts) {
      std::fill(dis.begin(), dis.begin() + len, uint8_t{0});
      for (const CompiledAtom& atom : atoms) {
        OrAtomInto(atom, begin, len, dis.data());
      }
      for (size_t i = 0; i < len; ++i) keep[i] &= dis[i];
    }
    // Branch-free survivor extraction (store-always, advance-by-mask): the
    // keep[] bits are effectively random at mid selectivities, so a
    // conditional skip in the probe loop would mispredict once per row.
    std::vector<uint32_t>& surv = surv_scratch[worker];
    if (surv.size() < morsel) surv.resize(morsel);
    size_t survivors = 0;
    for (size_t i = 0; i < len; ++i) {
      surv[survivors] = static_cast<uint32_t>(begin + i);
      survivors += keep[i];
    }
    if (survivors == 0) return;
    std::vector<uint32_t>& src_buf = morsel_src[m];
    std::vector<std::vector<uint32_t>>& lvl_buf = morsel_levels[m];
    lvl_buf.resize(num_joins);
    if (num_joins == 0) {
      src_buf.assign(surv.begin(), surv.begin() + survivors);
      return;
    }
    src_buf.reserve(survivors);
    for (std::vector<uint32_t>& buf : lvl_buf) buf.reserve(survivors);
    if (num_joins == 1) {
      // Flat single-level probe: a level-0 key is always source-bound, so
      // the chain walk inlines with no recursion and no dispatch.
      const BoundJoin& join = bound.joins[0];
      const FusedJoinTable& jt = tables[0];
      std::vector<uint32_t>& lvl0 = lvl_buf[0];
      for (size_t s = 0; s < survivors; ++s) {
        const uint32_t i = surv[s];
        const int64_t key = join.KeyAt(i);
        for (uint32_t e = jt.First(key); e != kNoEntry; e = jt.next[e]) {
          src_buf.push_back(i);
          lvl0.push_back(e);
        }
      }
      return;
    }
    for (size_t s = 0; s < survivors; ++s) {
      EmitMatches(bound, tables, 0, surv[s], cur.data(), &src_buf, &lvl_buf);
    }
  };

  int workers = 1;
  if (parallel) {
    workers = ParallelFor(n, morsel, body);
  } else {
    for (size_t m = 0; m < num_morsels; ++m) {
      const size_t begin = m * morsel;
      body(begin, std::min(n, begin + morsel), 0);
    }
  }
  RecordLoop(stats, n, morsel, workers);

  // Stage 2: prefix-sum concat of the per-morsel buffers — morsel order is
  // source-row order, so the global match list is ascending.
  std::vector<size_t> off(num_morsels + 1, 0);
  for (size_t m = 0; m < num_morsels; ++m) {
    off[m + 1] = off[m] + morsel_src[m].size();
  }
  const size_t total = off[num_morsels];
  std::vector<uint32_t> src_rows(total);
  std::vector<std::vector<uint32_t>> level_rows(
      num_joins, std::vector<uint32_t>(total));
  for (size_t m = 0; m < num_morsels; ++m) {
    if (morsel_src[m].empty()) continue;
    std::memcpy(src_rows.data() + off[m], morsel_src[m].data(),
                morsel_src[m].size() * sizeof(uint32_t));
    for (size_t j = 0; j < num_joins; ++j) {
      std::memcpy(level_rows[j].data() + off[m], morsel_levels[m][j].data(),
                  morsel_levels[m][j].size() * sizeof(uint32_t));
    }
  }

  // Stage 3: terminal — gather the output columns once, or fold the matches
  // straight into aggregation accumulators.
  if (bound.aggregate != nullptr) {
    return AggregateMatches(bound, src_rows, level_rows);
  }
  return MaterializeMatches(bound, src_rows, level_rows);
}

}  // namespace

// ---------------------------------------------------------------------------
// FusedPipelineNode
// ---------------------------------------------------------------------------

FusedPipelineNode::FusedPipelineNode(std::vector<PlanNodePtr> children,
                                     std::vector<PlanNodePtr> members)
    : PlanNode(PlanOp::kFusedPipeline, std::move(children)),
      members_(std::move(members)) {
  HETDB_CHECK(!members_.empty());
  for (const PlanNodePtr& member : members_) {
    HETDB_CHECK(member != nullptr);
    if (member->op() == PlanOp::kJoin) ++num_joins_;
  }
  HETDB_CHECK(this->children().size() == 1 + num_joins_);
}

OpClass FusedPipelineNode::op_class() const {
  if (num_joins_ > 0) return OpClass::kJoin;
  if (members_.back()->op() == PlanOp::kAggregate) return OpClass::kAggregate;
  return OpClass::kScan;
}

size_t FusedPipelineNode::IntermediateDeviceBytes(
    const std::vector<TablePtr>& inputs) const {
  // Only the per-join build hash tables stay resident while the fused morsel
  // loop streams the source: no flag arrays, no gathered intermediates, no
  // per-member result buffers (DESIGN.md §11).
  size_t bytes = 0;
  for (size_t j = 0; j < num_joins_; ++j) {
    if (1 + j < inputs.size() && inputs[1 + j] != nullptr) {
      bytes += 2 * inputs[1 + j]->data_bytes();
    }
  }
  return bytes;
}

std::string FusedPipelineNode::label() const {
  std::ostringstream os;
  os << "fused[";
  for (size_t i = 0; i < members_.size(); ++i) {
    if (i > 0) os << " -> ";
    os << members_[i]->label();
  }
  os << "]";
  return os.str();
}

Result<TablePtr> FusedPipelineNode::ReplayMembers(
    const std::vector<TablePtr>& inputs) const {
  TablePtr current = inputs[0];
  size_t next_build = 1;
  for (const PlanNodePtr& member : members_) {
    std::vector<TablePtr> member_inputs;
    if (member->op() == PlanOp::kJoin) {
      member_inputs = {inputs[next_build++], current};
    } else {
      member_inputs = {current};
    }
    HETDB_ASSIGN_OR_RETURN(current, member->ComputeResult(member_inputs));
  }
  return current;
}

Result<TablePtr> FusedPipelineNode::ComputeResult(
    const std::vector<TablePtr>& inputs) const {
  static KernelStats stats("fused_pipeline");
  KernelTimer timer(stats);
  HETDB_CHECK(inputs.size() == 1 + num_joins_);
  for (const TablePtr& input : inputs) {
    HETDB_CHECK(input != nullptr);
  }
  Result<BoundChain> bound = BindChain(members_, inputs);
  if (!bound.ok()) {
    // Shape the fused evaluator does not handle (or a genuine query error):
    // replay the members operator-at-a-time for exact unfused semantics.
    return ReplayMembers(inputs);
  }
  return EvaluateBoundChain(bound.value(), inputs, stats);
}

}  // namespace hetdb
