#ifndef HETDB_STORAGE_COLUMN_H_
#define HETDB_STORAGE_COLUMN_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/logging.h"
#include "common/status.h"

namespace hetdb {

/// Value types supported by the column store. Strings are always
/// dictionary-encoded (kString columns store int32 codes plus a dictionary),
/// which mirrors CoGaDB's compressed string columns and keeps device
/// operators working on fixed-width data.
enum class DataType { kInt32, kInt64, kDouble, kString };

const char* DataTypeToString(DataType type);

/// Width in bytes of one encoded value of `type` (strings count their code).
size_t DataTypeWidth(DataType type);

/// Base class of all columns.
///
/// A column is an immutable-after-load, named, typed vector of values. Every
/// column carries an *access counter* that the query processor bumps whenever
/// an operator reads the column; the data placement manager uses these
/// counters to decide which columns to pin on the co-processor (Section 3.2,
/// Algorithm 1 of the paper).
class Column {
 public:
  explicit Column(std::string name) : name_(std::move(name)) {}
  virtual ~Column() = default;

  Column(const Column&) = delete;
  Column& operator=(const Column&) = delete;

  const std::string& name() const { return name_; }
  virtual DataType type() const = 0;
  virtual size_t num_rows() const = 0;

  /// Bytes occupied by the value data (what a device cache entry costs).
  virtual size_t data_bytes() const = 0;

  /// Bytes after frame-of-reference bit-packing (what a cache entry costs
  /// when the engine compresses device-resident base data, Section 6.3 of
  /// the paper). Computed from the actual value range; numeric columns pack
  /// to ceil(log2(max-min+1)) bits per value, string columns pack their
  /// dictionary codes. Recomputed lazily after appends.
  virtual size_t compressed_bytes() const = 0;

  /// Called by operators each time this column is used as input. Updates
  /// both the frequency counter (LFU placement) and the global-sequence
  /// recency stamp (LRU placement).
  void RecordAccess() {
    access_count_.fetch_add(1, std::memory_order_relaxed);
    last_access_seq_.store(NextAccessSequence(), std::memory_order_relaxed);
  }
  uint64_t access_count() const {
    return access_count_.load(std::memory_order_relaxed);
  }
  /// Monotonic sequence number of the most recent access (0 = never).
  uint64_t last_access_seq() const {
    return last_access_seq_.load(std::memory_order_relaxed);
  }
  void ResetAccessCount() {
    access_count_.store(0, std::memory_order_relaxed);
    last_access_seq_.store(0, std::memory_order_relaxed);
  }

 private:
  static uint64_t NextAccessSequence() {
    static std::atomic<uint64_t> sequence{0};
    return sequence.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  std::string name_;
  std::atomic<uint64_t> access_count_{0};
  std::atomic<uint64_t> last_access_seq_{0};
};

using ColumnPtr = std::shared_ptr<Column>;

/// Fixed-width column of int32/int64/double values.
template <typename T>
class NumericColumn : public Column {
 public:
  explicit NumericColumn(std::string name, std::vector<T> values = {})
      : Column(std::move(name)), values_(std::move(values)) {}

  DataType type() const override;
  size_t num_rows() const override { return values_.size(); }
  size_t data_bytes() const override { return values_.size() * sizeof(T); }
  size_t compressed_bytes() const override;

  const std::vector<T>& values() const { return values_; }
  std::vector<T>& mutable_values() {
    compressed_bytes_cache_ = 0;
    return values_;
  }

  T value(size_t row) const { return values_[row]; }
  void Append(T v) {
    values_.push_back(v);
    compressed_bytes_cache_ = 0;
  }
  void Reserve(size_t n) { values_.reserve(n); }

 private:
  std::vector<T> values_;
  mutable size_t compressed_bytes_cache_ = 0;  // 0 = stale
};

using Int32Column = NumericColumn<int32_t>;
using Int64Column = NumericColumn<int64_t>;
using DoubleColumn = NumericColumn<double>;

/// Dictionary-encoded string column.
///
/// If the dictionary is built from a lexicographically sorted domain (the
/// HetDB generators always do this), codes are order-preserving and range
/// predicates (e.g. `p_brand1 between 'MFGR#2221' and 'MFGR#2228'`, SSB Q2.2)
/// can be evaluated directly on the int32 codes. `order_preserving()` reports
/// whether this property holds.
class StringColumn : public Column {
 public:
  explicit StringColumn(std::string name) : Column(std::move(name)) {}

  /// Creates a column over a fixed, sorted dictionary; codes appended later
  /// must index into this dictionary.
  static std::shared_ptr<StringColumn> FromDictionary(
      std::string name, std::vector<std::string> sorted_dictionary);

  DataType type() const override { return DataType::kString; }
  size_t num_rows() const override { return codes_.size(); }
  size_t data_bytes() const override {
    return codes_.size() * sizeof(int32_t) + dictionary_bytes_;
  }
  size_t compressed_bytes() const override;

  /// Appends a value, extending the dictionary when needed. Extending an
  /// initially-sorted dictionary out of order clears order_preserving().
  void Append(std::string_view value);
  /// Appends a pre-encoded code (must be a valid dictionary index).
  void AppendCode(int32_t code) { codes_.push_back(code); }
  void Reserve(size_t n) { codes_.reserve(n); }

  std::string_view value(size_t row) const { return dictionary_[codes_[row]]; }
  int32_t code(size_t row) const { return codes_[row]; }
  const std::vector<int32_t>& codes() const { return codes_; }
  std::vector<int32_t>& mutable_codes() { return codes_; }
  const std::vector<std::string>& dictionary() const { return dictionary_; }

  bool order_preserving() const { return order_preserving_; }

  /// Returns the code for `value`, or NotFound.
  Result<int32_t> CodeFor(std::string_view value) const;

  /// Returns the code of the smallest dictionary entry >= value (for range
  /// predicates on order-preserving dictionaries); dictionary size if none.
  int32_t LowerBoundCode(std::string_view value) const;
  /// Returns the code of the smallest dictionary entry > value.
  int32_t UpperBoundCode(std::string_view value) const;

 private:
  int32_t InternValue(std::string_view value);

  std::vector<int32_t> codes_;
  std::vector<std::string> dictionary_;
  std::unordered_map<std::string, int32_t> dictionary_index_;
  size_t dictionary_bytes_ = 0;
  bool order_preserving_ = true;
};

using StringColumnPtr = std::shared_ptr<StringColumn>;

/// Static DataType tag of each concrete column class, used by ColumnCast to
/// avoid RTTI on kernel hot paths.
template <typename ColumnT>
struct ColumnTypeTag;
template <>
struct ColumnTypeTag<Int32Column> {
  static constexpr DataType kType = DataType::kInt32;
};
template <>
struct ColumnTypeTag<Int64Column> {
  static constexpr DataType kType = DataType::kInt64;
};
template <>
struct ColumnTypeTag<DoubleColumn> {
  static constexpr DataType kType = DataType::kDouble;
};
template <>
struct ColumnTypeTag<StringColumn> {
  static constexpr DataType kType = DataType::kString;
};

/// Downcast helper with a fatal check on type mismatch (programming error).
///
/// The class hierarchy is closed (exactly one concrete column class per
/// DataType), so a type-tag compare plus static_cast replaces dynamic_cast:
/// this sits at the entry of every per-column kernel loop, where the RTTI
/// walk was measurable.
template <typename ColumnT>
const ColumnT& ColumnCast(const Column& column) {
  HETDB_CHECK(column.type() == ColumnTypeTag<ColumnT>::kType);
  return static_cast<const ColumnT&>(column);
}

template <typename ColumnT>
ColumnT& ColumnCast(Column& column) {
  HETDB_CHECK(column.type() == ColumnTypeTag<ColumnT>::kType);
  return static_cast<ColumnT&>(column);
}

}  // namespace hetdb

#endif  // HETDB_STORAGE_COLUMN_H_
