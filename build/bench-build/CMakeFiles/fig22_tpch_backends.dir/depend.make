# Empty dependencies file for fig22_tpch_backends.
# This may be replaced when dependencies are built.
