# Empty dependencies file for hype_test.
# This may be replaced when dependencies are built.
