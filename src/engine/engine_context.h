#ifndef HETDB_ENGINE_ENGINE_CONTEXT_H_
#define HETDB_ENGINE_ENGINE_CONTEXT_H_

#include <memory>

#include "cache/data_cache.h"
#include "common/config.h"
#include "fault/circuit_breaker.h"
#include "hype/cost_model.h"
#include "hype/load_tracker.h"
#include "hype/scheduler.h"
#include "sim/simulator.h"
#include "storage/database.h"
#include "telemetry/detector.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/telemetry.h"

namespace hetdb {

/// Owns the full runtime state of one HetDB instance: the simulated machine,
/// the device data cache, the HyPE optimizer state, and telemetry (metric
/// registry + workload counters; trace recording is process-global, see
/// telemetry/trace_recorder.h).
///
/// Benchmarks construct one EngineContext per experimental configuration;
/// executors and placement strategies all operate against it.
class EngineContext {
 public:
  EngineContext(const SystemConfig& config, DatabasePtr database,
                EvictionPolicy cache_policy = EvictionPolicy::kLfu)
      : simulator_(std::make_unique<Simulator>(config)),
        cache_(std::make_unique<DataCache>(config.device_cache_bytes,
                                           cache_policy, simulator_.get(),
                                           config.compress_device_cache)),
        cost_model_(std::make_unique<CostModel>(simulator_.get())),
        load_tracker_(std::make_unique<LoadTracker>()),
        scheduler_(std::make_unique<HypeScheduler>(
            cost_model_.get(), load_tracker_.get(), simulator_.get())),
        telemetry_(std::make_unique<Telemetry>()),
        flight_recorder_(std::make_unique<FlightRecorder>()),
        detector_(std::make_unique<ThrashingDetector>(
            ThrashingDetector::Options(), &telemetry_->registry(),
            flight_recorder_.get())),
        breaker_(std::make_unique<DeviceCircuitBreaker>(
            DeviceCircuitBreaker::Options(), &telemetry_->registry(),
            flight_recorder_.get())),
        database_(std::move(database)) {
    // Fault-injection counters surface in this context's metric exports, and
    // fault episodes land in the flight recorder's post-mortem history.
    simulator_->fault_injector().BindMetrics(&telemetry_->registry());
    simulator_->fault_injector().BindFlightRecorder(flight_recorder_.get());
  }

  EngineContext(const EngineContext&) = delete;
  EngineContext& operator=(const EngineContext&) = delete;

  Simulator& simulator() { return *simulator_; }
  DataCache& cache() { return *cache_; }
  CostModel& cost_model() { return *cost_model_; }
  LoadTracker& load_tracker() { return *load_tracker_; }
  HypeScheduler& scheduler() { return *scheduler_; }
  Telemetry& telemetry() { return *telemetry_; }
  /// Workload counters live on the telemetry bundle; `metrics()` remains as
  /// the established spelling at the recording sites.
  Telemetry& metrics() { return *telemetry_; }
  /// Abort-storm circuit breaker gating device placement and execution.
  DeviceCircuitBreaker& breaker() { return *breaker_; }
  /// Always-on ring buffer of recent query summaries and state transitions.
  FlightRecorder& flight_recorder() { return *flight_recorder_; }
  /// Live classifier of the paper's heap-contention / cache-thrashing modes.
  ThrashingDetector& detector() { return *detector_; }
  const DatabasePtr& database() const { return database_; }
  const SystemConfig& config() const { return simulator_->config(); }

  /// Feeds the thrashing detector one observation window from the engine's
  /// cumulative counters. The executors call this once per finished query.
  void NoteQueryFinished() {
    const DataCacheStats cache_stats = cache_->stats();
    ThrashingDetector::Sample sample;
    sample.cache_hits = static_cast<int64_t>(cache_stats.hits);
    sample.cache_misses = static_cast<int64_t>(cache_stats.misses);
    sample.cache_evictions = static_cast<int64_t>(cache_stats.evictions);
    sample.gpu_aborts =
        static_cast<int64_t>(telemetry_->gpu_operator_aborts());
    // Successes + aborts = device launches attempted.
    sample.gpu_attempts = sample.gpu_aborts +
                          static_cast<int64_t>(telemetry_->gpu_operators());
    sample.failed_allocations =
        static_cast<int64_t>(simulator_->device_heap().failed_allocations());
    sample.heap_used_bytes =
        static_cast<int64_t>(simulator_->device_heap().used());
    sample.heap_capacity_bytes =
        static_cast<int64_t>(simulator_->device_heap().capacity());
    detector_->Update(sample);
  }

  /// Clears all per-run statistics (bus, allocator, cache, metrics) while
  /// keeping cache contents and learned cost models.
  void ResetRunStats() {
    simulator_->bus().ResetStats();
    simulator_->device_heap().ResetStats();
    simulator_->fault_injector().ResetStats();
    cache_->ResetStats();
    telemetry_->Reset();
    detector_->Reset();
  }

 private:
  std::unique_ptr<Simulator> simulator_;
  std::unique_ptr<DataCache> cache_;
  std::unique_ptr<CostModel> cost_model_;
  std::unique_ptr<LoadTracker> load_tracker_;
  std::unique_ptr<HypeScheduler> scheduler_;
  std::unique_ptr<Telemetry> telemetry_;
  std::unique_ptr<FlightRecorder> flight_recorder_;  // after telemetry_
  std::unique_ptr<ThrashingDetector> detector_;      // after flight_recorder_
  std::unique_ptr<DeviceCircuitBreaker> breaker_;    // after flight_recorder_
  DatabasePtr database_;
};

}  // namespace hetdb

#endif  // HETDB_ENGINE_ENGINE_CONTEXT_H_
