file(REMOVE_RECURSE
  "../bench/fig02_cache_thrashing"
  "../bench/fig02_cache_thrashing.pdb"
  "CMakeFiles/fig02_cache_thrashing.dir/fig02_cache_thrashing.cpp.o"
  "CMakeFiles/fig02_cache_thrashing.dir/fig02_cache_thrashing.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_cache_thrashing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
