#include "sim/device_allocator.h"

namespace hetdb {

void DeviceAllocation::Release() {
  if (allocator_ != nullptr && bytes_ > 0) {
    allocator_->Free(bytes_);
    if (stats_ != nullptr) stats_->OnHeapFreed(static_cast<int64_t>(bytes_));
  }
  allocator_ = nullptr;
  bytes_ = 0;
  stats_ = nullptr;
}

Result<DeviceAllocation> DeviceAllocator::Allocate(size_t bytes,
                                                   const std::string& tag) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (fault_injector_ != nullptr && fault_injector_->enabled()) {
    const FaultDecision decision =
        fault_injector_->Decide(FaultSite::kDeviceAlloc, bytes);
    if (decision.fault()) {
      failed_allocations_.fetch_add(1, std::memory_order_relaxed);
      return decision.ToStatus("allocation of " + std::to_string(bytes) +
                               " bytes for " + tag);
    }
  }
  const size_t current = used_.load(std::memory_order_relaxed);
  if (bytes > capacity_ || current > capacity_ - bytes) {
    failed_allocations_.fetch_add(1, std::memory_order_relaxed);
    return Status::ResourceExhausted(
        "device heap exhausted: need " + std::to_string(bytes) + " bytes for " +
        tag + ", used " + std::to_string(current) + "/" +
        std::to_string(capacity_));
  }
  const size_t now = current + bytes;
  used_.store(now, std::memory_order_relaxed);
  if (now > peak_used_.load(std::memory_order_relaxed)) {
    peak_used_.store(now, std::memory_order_relaxed);
  }
  // Attribute to the query whose scope this thread is executing under. The
  // observed global usage is exact here because we still hold mutex_.
  QueryStatsPtr stats = QueryStatsScope::current_stats_shared();
  if (stats != nullptr) {
    stats->OnHeapAllocated(static_cast<int64_t>(bytes),
                           static_cast<int64_t>(now),
                           QueryStatsScope::current_node(), device_id_);
  }
  return DeviceAllocation(this, bytes, std::move(stats));
}

void DeviceAllocator::Free(size_t bytes) {
  used_.fetch_sub(bytes, std::memory_order_relaxed);
}

void DeviceAllocator::ResetStats() {
  failed_allocations_.store(0, std::memory_order_relaxed);
  peak_used_.store(used_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
}

}  // namespace hetdb
