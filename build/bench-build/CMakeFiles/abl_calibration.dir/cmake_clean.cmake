file(REMOVE_RECURSE
  "../bench/abl_calibration"
  "../bench/abl_calibration.pdb"
  "CMakeFiles/abl_calibration.dir/abl_calibration.cpp.o"
  "CMakeFiles/abl_calibration.dir/abl_calibration.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_calibration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
