# Empty compiler generated dependencies file for hetdb_hype.
# This may be replaced when dependencies are built.
