#!/usr/bin/env python3
"""Bench regression gate: compare a fresh kernel-benchmark run against the
committed baseline BENCH_kernels.json.

Absolute kernel times vary wildly across hosts (and CI runners), so the gate
compares *speedup ratios* — scalar median time / Parallel/8 median time per
kernel family (Filter, HashJoin, Aggregate) — which are what the morsel
parallelism work actually promises. A candidate fails when any family's
speedup drops below (baseline_speedup * (1 - tolerance)).

Usage:
  scripts/check_bench.py CANDIDATE.json [--baseline BENCH_kernels.json]
                         [--tolerance 0.5]

Exit code 0 = within tolerance, 1 = regression, 2 = malformed input.
"""

import argparse
import json
import sys


FAMILIES = ["Filter", "HashJoin", "Aggregate"]
PARALLEL_DOP = 8


def load_medians(path):
    """run_name -> median real_time for all *_median aggregate rows."""
    try:
        with open(path) as fp:
            doc = json.load(fp)
    except (OSError, json.JSONDecodeError) as error:
        print(f"error: cannot read {path}: {error}", file=sys.stderr)
        sys.exit(2)
    medians = {}
    for bench in doc.get("benchmarks", []):
        if bench.get("aggregate_name") != "median":
            continue
        medians[bench["run_name"]] = float(bench["real_time"])
    if not medians:
        print(f"error: {path} holds no median aggregate rows", file=sys.stderr)
        sys.exit(2)
    return medians


def family_speedup(medians, family):
    scalar = medians.get(f"BM_{family}Scalar")
    parallel = medians.get(f"BM_{family}Parallel/{PARALLEL_DOP}")
    if scalar is None or parallel is None or parallel <= 0:
        return None
    return scalar / parallel


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("candidate", help="fresh benchmark JSON to check")
    parser.add_argument("--baseline", default="BENCH_kernels.json",
                        help="committed baseline (default: BENCH_kernels.json)")
    parser.add_argument("--tolerance", type=float, default=0.5,
                        help="allowed relative speedup drop, 0..1 "
                             "(default 0.5 — CI runners are noisy)")
    args = parser.parse_args()

    baseline = load_medians(args.baseline)
    candidate = load_medians(args.candidate)

    failures = []
    print(f"{'family':<12}{'baseline':>10}{'candidate':>10}{'floor':>10}")
    for family in FAMILIES:
        base = family_speedup(baseline, family)
        cand = family_speedup(candidate, family)
        if base is None:
            print(f"{family:<12}{'n/a':>10}  (missing from baseline, skipped)")
            continue
        if cand is None:
            failures.append(f"{family}: missing from candidate run")
            print(f"{family:<12}{base:>10.2f}{'n/a':>10}")
            continue
        floor = base * (1.0 - args.tolerance)
        print(f"{family:<12}{base:>10.2f}{cand:>10.2f}{floor:>10.2f}")
        if cand < floor:
            failures.append(
                f"{family}: speedup {cand:.2f}x fell below floor "
                f"{floor:.2f}x (baseline {base:.2f}x, "
                f"tolerance {args.tolerance:.0%})")

    if failures:
        print("\nREGRESSION:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("\nOK: all kernel-family speedups within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
