#include "fault/brownout.h"

#include <algorithm>
#include <utility>

namespace hetdb {

const char* BrownoutLevelName(BrownoutLevel level) {
  switch (level) {
    case BrownoutLevel::kL0:
      return "L0";
    case BrownoutLevel::kL1:
      return "L1";
    case BrownoutLevel::kL2:
      return "L2";
    case BrownoutLevel::kL3:
      return "L3";
  }
  return "unknown";
}

BrownoutController::BrownoutController(const Options& options,
                                       int device_count,
                                       MetricRegistry* registry,
                                       FlightRecorder* recorder)
    : options_(options),
      device_count_(std::max(device_count, 1)),
      registry_(registry),
      recorder_(recorder),
      last_thrashing_(static_cast<size_t>(std::max(device_count, 1)), false) {
  if (registry_ != nullptr) registry_->GetGauge("brownout.level").Set(0);
}

void BrownoutController::SetAdmissionProbe(
    std::function<BrownoutAdmissionProbe()> probe) {
  std::lock_guard<std::mutex> lock(mutex_);
  probe_ = std::move(probe);
}

int BrownoutController::TargetLevelLocked(
    const BrownoutSignals& signals, double abort_ratio,
    const BrownoutAdmissionProbe& admission, double shed_rate) const {
  // Survival: every device is denying work, or a device is both tripped and
  // thrashing — the machine's co-processor tier is effectively down.
  if (signals.all_breakers_open ||
      (signals.any_breaker_open && signals.worst_thrash_state >= 2)) {
    return 3;
  }
  // Serious: confirmed thrashing, a tripped breaker, or a heap that is
  // pinned at capacity — L1's relief valves were not enough.
  if (signals.worst_thrash_state >= 2 || signals.any_breaker_open ||
      signals.heap_pressure >= options_.heap_l2 ||
      abort_ratio >= options_.abort_ratio_l2) {
    return 2;
  }
  // Early pressure from any subsystem: shed load pre-emptively by trimming
  // the footprint levers (DoP, multi-join fusion) before queries start
  // aborting.
  if (signals.worst_thrash_state >= 1 || signals.any_breaker_half_open ||
      signals.heap_pressure >= options_.heap_l1 ||
      abort_ratio >= options_.abort_ratio_l1 ||
      admission.queued >= options_.queue_depth_l1 ||
      shed_rate >= options_.shed_rate_l1) {
    return 1;
  }
  return 0;
}

void BrownoutController::PublishDeviceMaskLocked(
    const BrownoutSignals* signals) {
  if (signals != nullptr) {
    last_thrashing_.assign(static_cast<size_t>(device_count_), false);
    for (size_t d = 0;
         d < signals->device_thrashing.size() &&
         d < static_cast<size_t>(device_count_);
         ++d) {
      last_thrashing_[d] = signals->device_thrashing[d];
    }
  }
  const int level = level_.load(std::memory_order_relaxed);
  uint64_t mask = 0;
  if (level < 3) {
    for (int d = 0; d < device_count_ && d < 64; ++d) {
      mask |= 1ull << d;
    }
    if (level >= 2) {
      // Exclude devices currently flagged thrashing — unless that excludes
      // everything, in which case restricting *which* device is pointless
      // and the L2 template gate / L3 step carries the load instead.
      uint64_t healthy = mask;
      for (int d = 0; d < device_count_ && d < 64; ++d) {
        if (last_thrashing_[static_cast<size_t>(d)]) healthy &= ~(1ull << d);
      }
      if (healthy != 0) mask = healthy;
    }
  }
  device_mask_.store(mask, std::memory_order_relaxed);
}

void BrownoutController::TransitionLocked(int next) {
  const int prev = level_.load(std::memory_order_relaxed);
  if (next == prev) return;
  level_.store(next, std::memory_order_relaxed);
  ++transitions_;
  escalate_streak_ = 0;
  calm_streak_ = 0;
  const char* from = BrownoutLevelName(static_cast<BrownoutLevel>(prev));
  const char* to = BrownoutLevelName(static_cast<BrownoutLevel>(next));
  if (registry_ != nullptr) {
    registry_->GetGauge("brownout.level").Set(next);
    registry_->GetCounter(std::string("brownout.transitions.") + to)
        .Increment();
  }
  if (recorder_ != nullptr) {
    recorder_->RecordStateTransition("brownout", from, to);
    // Every level change is a post-mortem moment: freeze the signal history
    // that drove the decision (satellite: not only breaker trips dump).
    recorder_->AutoDump(std::string("brownout_") + from + "_" + to);
  }
}

BrownoutLevel BrownoutController::Update(const BrownoutSignals& signals) {
  // Pull the admission probe before taking our mutex: the probe reads the
  // admission controller's lock, and admission's hot path reads our atomics
  // — keeping the two mutexes un-nested removes the ordering question.
  BrownoutAdmissionProbe admission;
  {
    std::function<BrownoutAdmissionProbe()> probe;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      probe = probe_;
    }
    if (probe) admission = probe();
  }

  std::lock_guard<std::mutex> lock(mutex_);
  double abort_ratio = 0.0;
  double shed_rate = 0.0;
  if (has_previous_) {
    const int64_t attempts = signals.gpu_attempts - prev_gpu_attempts_;
    const int64_t aborts = signals.gpu_aborts - prev_gpu_aborts_;
    if (attempts >= options_.min_window_attempts && aborts > 0) {
      abort_ratio =
          static_cast<double>(aborts) / static_cast<double>(attempts);
    }
    const uint64_t offered = admission.offered - prev_offered_;
    const uint64_t shed = admission.shed - prev_shed_;
    if (offered > 0) {
      shed_rate = static_cast<double>(shed) / static_cast<double>(offered);
    }
  }
  prev_gpu_attempts_ = signals.gpu_attempts;
  prev_gpu_aborts_ = signals.gpu_aborts;
  prev_offered_ = admission.offered;
  prev_shed_ = admission.shed;
  has_previous_ = true;

  const int current = level_.load(std::memory_order_relaxed);
  const int target = TargetLevelLocked(signals, abort_ratio, admission,
                                       shed_rate);
  if (target > current) {
    calm_streak_ = 0;
    if (++escalate_streak_ >= options_.escalate_updates) {
      // One level at a time: give each restriction a window to take effect
      // before adding the next.
      TransitionLocked(current + 1);
    }
  } else if (target < current) {
    escalate_streak_ = 0;
    if (++calm_streak_ >= options_.calm_updates) {
      TransitionLocked(current - 1);
    }
  } else {
    escalate_streak_ = 0;
    calm_streak_ = 0;
  }
  PublishDeviceMaskLocked(&signals);
  return static_cast<BrownoutLevel>(level_.load(std::memory_order_relaxed));
}

int BrownoutController::DopCap() const {
  return level_.load(std::memory_order_relaxed) >= 1 ? options_.l1_dop_cap
                                                     : 0;
}

bool BrownoutController::AllowMultiJoinFusion() const {
  return level_.load(std::memory_order_relaxed) < 1;
}

bool BrownoutController::AllowCacheAdmission() const {
  return level_.load(std::memory_order_relaxed) < 2;
}

bool BrownoutController::DevicePlacementAllowed(int device) const {
  if (device < 0 || device >= 64) return false;
  return (device_mask_.load(std::memory_order_relaxed) &
          (1ull << device)) != 0;
}

void BrownoutController::NoteQuery(uint64_t fingerprint) {
  std::lock_guard<std::mutex> lock(template_mutex_);
  auto it = template_hits_.find(fingerprint);
  if (it != template_hits_.end()) {
    ++it->second;
    return;
  }
  if (template_hits_.size() < options_.max_templates) {
    template_hits_.emplace(fingerprint, 1);
  }
}

bool BrownoutController::AllowDeviceForTemplate(uint64_t fingerprint) const {
  const int level = level_.load(std::memory_order_relaxed);
  if (level < 2) return true;
  if (level >= 3) return false;
  std::lock_guard<std::mutex> lock(template_mutex_);
  auto it = template_hits_.find(fingerprint);
  return it != template_hits_.end() &&
         it->second >= options_.hot_template_min_hits;
}

void BrownoutController::NoteCpuPin() {
  if (registry_ != nullptr) {
    registry_->GetCounter("brownout.cpu_pins").Increment();
  }
}

uint64_t BrownoutController::transitions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return transitions_;
}

void BrownoutController::ForceLevel(BrownoutLevel level) {
  std::lock_guard<std::mutex> lock(mutex_);
  TransitionLocked(static_cast<int>(level));
  PublishDeviceMaskLocked(nullptr);
}

void BrownoutController::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  TransitionLocked(0);
  escalate_streak_ = 0;
  calm_streak_ = 0;
  has_previous_ = false;
  last_thrashing_.assign(static_cast<size_t>(device_count_), false);
  PublishDeviceMaskLocked(nullptr);
  std::lock_guard<std::mutex> tlock(template_mutex_);
  template_hits_.clear();
}

}  // namespace hetdb
