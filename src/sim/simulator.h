#ifndef HETDB_SIM_SIMULATOR_H_
#define HETDB_SIM_SIMULATOR_H_

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <vector>

#include "common/config.h"
#include "common/rng.h"
#include "common/status.h"
#include "fault/fault_injector.h"
#include "sim/device_allocator.h"
#include "sim/pcie_bus.h"
#include "sim/sim_clock.h"

namespace hetdb {

/// The two processor classes of the paper's heterogeneous machine.
enum class ProcessorKind { kCpu = 0, kGpu = 1 };

const char* ProcessorKindToString(ProcessorKind kind);

/// Operator cost classes, mapping to ThroughputTable entries.
enum class OpClass { kScan, kJoin, kAggregate, kSort, kProject, kMaterialize };

/// Simple counting semaphore (std::counting_semaphore needs a compile-time
/// ceiling; the CPU slot count is a runtime config value).
class Semaphore {
 public:
  explicit Semaphore(int count) : count_(count) {}

  void Acquire() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return count_ > 0; });
    --count_;
  }
  void Release() { Release(1); }

  /// Blocks until at least one permit is free, then takes up to `max_count`
  /// of the free permits and returns how many were taken. Used to model
  /// adaptive intra-operator parallelism: an idle machine gives a kernel all
  /// cores, a loaded machine one (Section 5.2 / Psaroudakis et al.).
  int AcquireUpTo(int max_count) {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return count_ > 0; });
    const int taken = std::min(count_, max_count);
    count_ -= taken;
    return taken;
  }

  void Release(int permits) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      count_ += permits;
    }
    cv_.notify_all();
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  int count_;
};

/// Bundles the simulated machine: host CPU slots, N co-processors (each a
/// heap allocator + kernel serialization + PCIe link + fault injector), and
/// an optional NVLink-style device-to-device path.
///
/// One Simulator instance represents one machine; every engine, cache, and
/// workload run is constructed over a Simulator. Timing semantics:
///
///  * `ChargeCompute(kCpu, ...)` occupies one of `cpu_workers` CPU slots for
///    the modeled kernel duration — the host has finitely many cores.
///  * `ChargeCompute(kGpu, ..., device)` serializes on that device's kernel
///    lock — kernels time-share *their* co-processor, while the *memory* of
///    concurrently running device operators stays allocated for their whole
///    lifetime. This combination is exactly what makes heap contention
///    (many operators holding heap while waiting) possible, as in the paper;
///    with N devices, kernels on different devices run concurrently, which
///    is the scale-out throughput mechanism (DESIGN.md §12).
///
/// The no-argument accessors (`device_heap()`, `bus()`, `fault_injector()`)
/// are device-0 conveniences kept for the single-device callers; every
/// multi-device-aware layer passes an explicit device index.
class Simulator {
 public:
  explicit Simulator(const SystemConfig& config);

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  const SystemConfig& config() const { return config_; }
  SimClock& clock() { return clock_; }
  int device_count() const { return static_cast<int>(devices_.size()); }

  DeviceAllocator& device_heap(int device) { return *devices_[Check(device)]->heap; }
  PcieBus& bus(int device) { return *devices_[Check(device)]->bus; }
  /// A device's fault injector; consulted by its heap allocator, its bus,
  /// and kernel launches bound to it. Disarmed by default. Per-device so
  /// chaos tests can kill exactly one device of N.
  FaultInjector& fault_injector(int device) {
    return *devices_[Check(device)]->fault_injector;
  }

  // Single-device conveniences (device 0).
  DeviceAllocator& device_heap() { return device_heap(0); }
  PcieBus& bus() { return bus(0); }
  FaultInjector& fault_injector() { return fault_injector(0); }

  /// Models executing one operator kernel of class `op_class` over
  /// `input_bytes` of data on `processor` (device `device` when kGpu).
  /// Blocks for the modeled duration (plus any queuing for a CPU slot / the
  /// device's kernel lock).
  void ChargeCompute(ProcessorKind processor, OpClass op_class,
                     size_t input_bytes, int device = 0);

  /// Moves `bytes` from device `from` to device `to`. With a dedicated D2D
  /// interconnect configured (`d2d_mbps > 0`) the copy serializes on that
  /// link and is counted in the d2d_* counters; otherwise it routes through
  /// the host, paying D2H on the source device's PCIe link followed by H2D
  /// on the destination's — each consulting that link's fault injector.
  Status TransferDeviceToDevice(size_t bytes, int from, int to);

  /// Modeled backoff before device/transfer retry `attempt` (0-based).
  /// Exponential ceiling `device_retry_backoff_micros * 2^attempt`; with
  /// `device_retry_jitter` each call draws uniformly in [0, ceiling) ("full
  /// jitter") from a per-Simulator RNG seeded by `retry_jitter_seed`, so
  /// concurrent sessions burned by one shared fault burst desynchronize
  /// instead of retrying in lockstep, while any fixed (config, call order)
  /// still reproduces bit-identical backoffs under tests.
  double RetryBackoffMicros(int attempt);

  /// Modeled kernel duration without executing it (for cost estimation).
  double EstimateComputeMicros(ProcessorKind processor, OpClass op_class,
                               size_t input_bytes) const;

  /// Modeled one-way host<->device transfer duration for `bytes`.
  double EstimateTransferMicros(size_t bytes) const;

  // Dedicated D2D link counters (zero when d2d_mbps == 0: host-routed
  // traffic shows up on the PCIe per-device counters instead).
  uint64_t d2d_bytes() const {
    return d2d_bytes_.load(std::memory_order_relaxed);
  }
  uint64_t d2d_transfer_count() const {
    return d2d_count_.load(std::memory_order_relaxed);
  }
  void ResetD2DStats() {
    d2d_bytes_.store(0, std::memory_order_relaxed);
    d2d_count_.store(0, std::memory_order_relaxed);
  }

 private:
  /// One simulated co-processor. Held by unique_ptr because the kernel
  /// mutex makes the unit immovable.
  struct Device {
    std::unique_ptr<FaultInjector> fault_injector;  // before heap/bus users
    std::unique_ptr<DeviceAllocator> heap;
    std::unique_ptr<PcieBus> bus;
    std::mutex kernel_mutex;
  };

  int Check(int device) const;
  double ThroughputMbps(ProcessorKind processor, OpClass op_class) const;

  SystemConfig config_;
  SimClock clock_;
  std::vector<std::unique_ptr<Device>> devices_;
  Semaphore cpu_slots_;
  std::mutex retry_rng_mutex_;
  Rng retry_rng_;
  std::mutex d2d_lane_mutex_;
  std::atomic<uint64_t> d2d_bytes_{0};
  std::atomic<uint64_t> d2d_count_{0};
};

using SimulatorPtr = std::shared_ptr<Simulator>;

}  // namespace hetdb

#endif  // HETDB_SIM_SIMULATOR_H_
