// Figure 15(a)/(b): host-to-device data transfer time of the SSB and TPC-H
// workloads vs scale factor. GPU-Only transfer time explodes once the
// working set exceeds the device cache; Data-Driven (alone and combined with
// chopping) saves the most IO.

#include "bench/bench_util.h"
#include "tpch/tpch_queries.h"

using namespace hetdb;
using namespace hetdb::bench;

namespace {

void RunSweep(const BenchArgs& args, bool ssb) {
  const std::vector<double> scale_factors =
      args.quick ? std::vector<double>{2, 5} : std::vector<double>{5, 15, 30};
  const std::vector<Strategy> strategies = {Strategy::kGpuOnly,
                                            Strategy::kChopping,
                                            Strategy::kDataDriven,
                                            Strategy::kDataDrivenChopping};
  std::vector<std::string> header = {"sf"};
  for (Strategy strategy : strategies) {
    header.push_back(std::string(StrategyToString(strategy)) + "_h2d[ms]");
  }
  PrintHeader(header);

  for (double sf : scale_factors) {
    DatabasePtr db;
    if (ssb) {
      SsbGeneratorOptions gen;
      args.ApplySeed(gen);
      gen.scale_factor = sf;
      db = GenerateSsbDatabase(gen);
    } else {
      TpchGeneratorOptions gen;
      args.ApplySeed(gen);
      gen.scale_factor = sf;
      db = GenerateTpchDatabase(gen);
    }
    PrintCell(static_cast<uint64_t>(sf));
    for (Strategy strategy : strategies) {
      WorkloadRunOptions options;
      options.repetitions = 1;
      options.warmup_repetitions = 1;
      const WorkloadRunResult result =
          RunPoint(PaperConfig(args.time_scale), db, strategy,
                   ssb ? SsbQueries() : TpchQueries(), options);
      PrintCell(result.h2d_transfer_millis);
    }
    EndRow();
  }
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv);
  Banner("Figure 15(a)", "SSB host-to-device transfer time vs scale factor");
  RunSweep(args, /*ssb=*/true);
  std::printf("\n");
  Banner("Figure 15(b)", "TPC-H host-to-device transfer time vs scale factor");
  RunSweep(args, /*ssb=*/false);
  return 0;
}
