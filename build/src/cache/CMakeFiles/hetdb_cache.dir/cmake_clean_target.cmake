file(REMOVE_RECURSE
  "libhetdb_cache.a"
)
