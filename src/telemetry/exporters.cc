#include "telemetry/exporters.h"

#include <cstdio>
#include <sstream>

namespace hetdb {

namespace {

void AppendJsonString(std::ostringstream& os, const std::string& text) {
  os << '"' << JsonEscape(text) << '"';
}

void AppendEvent(std::ostringstream& os, const TraceEvent& event) {
  os << "{\"name\":";
  AppendJsonString(os, event.name);
  os << ",\"cat\":";
  AppendJsonString(os, event.category);
  os << ",\"ph\":\"X\",\"ts\":" << event.ts_micros
     << ",\"dur\":" << event.dur_micros << ",\"pid\":1,\"tid\":" << event.tid;
  os << ",\"args\":{";
  bool first = true;
  auto emit = [&](const std::string& key, const std::string& value) {
    if (!first) os << ',';
    first = false;
    AppendJsonString(os, key);
    os << ':';
    AppendJsonString(os, value);
  };
  if (event.query_id != 0) emit("query", std::to_string(event.query_id));
  if (event.node_id != 0) emit("node", std::to_string(event.node_id));
  if (event.parent_id != 0) emit("parent", std::to_string(event.parent_id));
  for (const auto& [key, value] : event.args) emit(key, value);
  os << "}}";
}

}  // namespace

std::string JsonEscape(const std::string& text) {
  std::string escaped;
  escaped.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        escaped += "\\\"";
        break;
      case '\\':
        escaped += "\\\\";
        break;
      case '\n':
        escaped += "\\n";
        break;
      case '\r':
        escaped += "\\r";
        break;
      case '\t':
        escaped += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          escaped += buffer;
        } else {
          escaped += c;
        }
    }
  }
  return escaped;
}

std::string CsvEscape(const std::string& field) {
  const bool needs_quoting =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quoting) return field;
  std::string escaped;
  escaped.reserve(field.size() + 2);
  escaped += '"';
  for (const char c : field) {
    if (c == '"') escaped += '"';
    escaped += c;
  }
  escaped += '"';
  return escaped;
}

std::string ChromeTraceJson(const std::vector<TraceEvent>& events) {
  std::ostringstream os;
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  for (size_t i = 0; i < events.size(); ++i) {
    if (i > 0) os << ",\n";
    AppendEvent(os, events[i]);
  }
  os << "]}\n";
  return os.str();
}

Status WriteChromeTrace(const std::string& path,
                        const std::vector<TraceEvent>& events) {
  return WriteTextFile(path, ChromeTraceJson(events));
}

std::string MetricsJson(const MetricRegistry& registry) {
  std::ostringstream os;
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : registry.CounterValues()) {
    if (!first) os << ',';
    first = false;
    AppendJsonString(os, name);
    os << ':' << value;
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : registry.GaugeValues()) {
    if (!first) os << ',';
    first = false;
    AppendJsonString(os, name);
    os << ':' << value;
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, snapshot] : registry.HistogramSnapshots()) {
    if (!first) os << ',';
    first = false;
    AppendJsonString(os, name);
    os << ":{\"count\":" << snapshot.count << ",\"sum\":" << snapshot.sum
       << ",\"min\":" << snapshot.min << ",\"max\":" << snapshot.max
       << ",\"mean\":" << snapshot.mean << ",\"p50\":" << snapshot.p50
       << ",\"p95\":" << snapshot.p95 << ",\"p99\":" << snapshot.p99 << '}';
  }
  os << "}}\n";
  return os.str();
}

std::string MetricsCsv(const MetricRegistry& registry) {
  std::ostringstream os;
  os << "kind,name,count,sum,min,max,mean,p50,p95,p99\n";
  for (const auto& [name, value] : registry.CounterValues()) {
    os << "counter," << CsvEscape(name) << ",," << value << ",,,,,,\n";
  }
  for (const auto& [name, value] : registry.GaugeValues()) {
    os << "gauge," << CsvEscape(name) << ",," << value << ",,,,,,\n";
  }
  for (const auto& [name, snapshot] : registry.HistogramSnapshots()) {
    os << "histogram," << CsvEscape(name) << ',' << snapshot.count << ','
       << snapshot.sum
       << ',' << snapshot.min << ',' << snapshot.max << ',' << snapshot.mean
       << ',' << snapshot.p50 << ',' << snapshot.p95 << ',' << snapshot.p99
       << '\n';
  }
  return os.str();
}

Status WriteTextFile(const std::string& path, const std::string& content) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return Status::Internal("cannot open " + path + " for writing");
  }
  const size_t written = std::fwrite(content.data(), 1, content.size(), file);
  const bool ok = written == content.size() && std::fclose(file) == 0;
  if (!ok) return Status::Internal("short write to " + path);
  return Status::OK();
}

}  // namespace hetdb
