file(REMOVE_RECURSE
  "../bench/fig14_scale_tpch"
  "../bench/fig14_scale_tpch.pdb"
  "CMakeFiles/fig14_scale_tpch.dir/fig14_scale_tpch.cpp.o"
  "CMakeFiles/fig14_scale_tpch.dir/fig14_scale_tpch.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_scale_tpch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
