#include "common/logging.h"

namespace hetdb {

Logger& Logger::Global() {
  static Logger* logger = new Logger();
  return *logger;
}

void Logger::Log(LogLevel level, const std::string& message) {
  if (level < min_level_ && level != LogLevel::kFatal) return;
  const char* prefix = "";
  switch (level) {
    case LogLevel::kDebug:
      prefix = "[DEBUG] ";
      break;
    case LogLevel::kInfo:
      prefix = "[INFO] ";
      break;
    case LogLevel::kWarning:
      prefix = "[WARN] ";
      break;
    case LogLevel::kError:
      prefix = "[ERROR] ";
      break;
    case LogLevel::kFatal:
      prefix = "[FATAL] ";
      break;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  std::cerr << prefix << message << "\n";
}

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << file << ":" << line << ": ";
}

LogMessage::~LogMessage() {
  Logger::Global().Log(level_, stream_.str());
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace internal_logging

}  // namespace hetdb
