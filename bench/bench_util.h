#ifndef HETDB_BENCH_BENCH_UTIL_H_
#define HETDB_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/config.h"
#include "placement/strategy_runner.h"
#include "ssb/ssb_generator.h"
#include "telemetry/exporters.h"
#include "telemetry/trace_recorder.h"
#include "tpch/tpch_generator.h"
#include "workload/workload.h"

namespace hetdb::bench {

/// Destination of the --trace-out flag (process-wide; written at exit).
inline std::string& TraceOutPath() {
  static std::string path;
  return path;
}

/// Enables span recording and registers an atexit hook that exports the
/// whole process's trace as Chrome trace-event JSON (open the file in
/// https://ui.perfetto.dev or chrome://tracing).
inline void EnableTraceExportAtExit(const std::string& path) {
  TraceOutPath() = path;
  TraceRecorder::Global().SetEnabled(true);
  std::atexit([] {
    const std::vector<TraceEvent> events = TraceRecorder::Global().Snapshot();
    const Status status = WriteChromeTrace(TraceOutPath(), events);
    if (status.ok()) {
      std::fprintf(stderr, "# wrote %zu trace events to %s\n", events.size(),
                   TraceOutPath().c_str());
    } else {
      std::fprintf(stderr, "# trace export failed: %s\n",
                   status.ToString().c_str());
    }
  });
}

/// Command-line knobs shared by every figure benchmark:
///   --quick          halve repetitions and shrink sweeps (CI-friendly)
///   --full           paper-sized sweeps (slow)
///   --time-scale X   multiply all modeled durations (ratios unchanged)
///   --trace-out=FILE record spans and export a Perfetto-loadable
///                    Chrome trace-event JSON file at exit
///   --per-query      print the per-query resource breakdown (queue-wait vs
///                    execute time, retry/fallback counts) after each point
///   --seed N         override every RNG seed in the run — data generators
///                    and user-session jitter streams (0 = keep the baked-in
///                    defaults: SSB 42, TPC-H 1234, sessions 42)
///   --think-time MS  mean exponential per-session think time for the
///                    parallel-user benches (0 = closed loop, the default)
///   --fusion=on|off  enable/disable operator fusion (DESIGN.md §11) for the
///                    whole process — the fusion-ablation runs flip this
struct BenchArgs {
  bool quick = false;
  bool full = false;
  bool per_query = false;
  bool fusion = true;
  double time_scale = 1.0;
  uint64_t seed = 0;
  double think_time_ms = 0;
  std::string trace_out;

  static BenchArgs Parse(int argc, char** argv) {
    BenchArgs args;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--quick") == 0) args.quick = true;
      if (std::strcmp(argv[i], "--full") == 0) args.full = true;
      if (std::strcmp(argv[i], "--per-query") == 0) args.per_query = true;
      if (std::strcmp(argv[i], "--time-scale") == 0 && i + 1 < argc) {
        args.time_scale = std::atof(argv[++i]);
      }
      if (std::strncmp(argv[i], "--seed=", 7) == 0) {
        args.seed = std::strtoull(argv[i] + 7, nullptr, 10);
      } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
        args.seed = std::strtoull(argv[++i], nullptr, 10);
      }
      if (std::strcmp(argv[i], "--think-time") == 0 && i + 1 < argc) {
        args.think_time_ms = std::atof(argv[++i]);
      }
      if (std::strncmp(argv[i], "--trace-out=", 12) == 0) {
        args.trace_out = argv[i] + 12;
      } else if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
        args.trace_out = argv[++i];
      }
      if (std::strcmp(argv[i], "--fusion=off") == 0) args.fusion = false;
      if (std::strcmp(argv[i], "--fusion=on") == 0) args.fusion = true;
    }
    if (!args.trace_out.empty()) EnableTraceExportAtExit(args.trace_out);
    GlobalKernelConfig().fusion = args.fusion;
    return args;
  }

  /// Copies the --seed override into a generator-options struct (SSB or
  /// TPC-H); 0 keeps the generator's own default so existing baselines stay
  /// bit-identical.
  template <typename GeneratorOptions>
  void ApplySeed(GeneratorOptions& gen) const {
    if (seed != 0) gen.seed = seed;
  }

  /// Folds the session knobs (--seed, --think-time) into workload options.
  void ApplySessionKnobs(WorkloadRunOptions& options) const {
    if (seed != 0) options.seed = seed;
    options.think_time_ms = think_time_ms;
  }
};

/// The simulated machine of the paper's evaluation (Section 6.1), at the
/// 1/100 data scale of DESIGN.md: the 4 GB GTX 770 becomes a 40 MB device
/// (24 MB data cache + 16 MB heap), PCIe and kernel throughputs use the
/// calibration constants of common/config.h.
inline SystemConfig PaperConfig(double time_scale = 1.0) {
  SystemConfig config;
  config.device_memory_bytes = 40ull << 20;
  config.device_cache_bytes = 24ull << 20;
  config.simulate_time = true;
  // Modeled durations are amplified 10x so that the *real* kernel work
  // (which executes on the host to produce correct results, is identical for
  // every strategy, and serializes on small machines) stays a minor additive
  // term rather than masking the modeled differences. A pure scale factor on
  // all durations changes no ratio between strategies.
  config.time_scale = 10.0 * time_scale;
  return config;
}

/// Prints one experiment banner: which paper figure this regenerates and
/// with which fixed parameters.
inline void Banner(const std::string& figure, const std::string& description) {
  std::printf("# %s\n# %s\n#\n", figure.c_str(), description.c_str());
}

/// Fixed-width row printing for series tables.
inline void PrintHeader(const std::vector<std::string>& columns) {
  for (const std::string& column : columns) {
    std::printf("%-24s", column.c_str());
  }
  std::printf("\n");
}

inline void PrintCell(const std::string& value) {
  std::printf("%-24s", value.c_str());
}

inline void PrintCell(double value) { std::printf("%-24.2f", value); }

inline void PrintCell(uint64_t value) {
  std::printf("%-24llu", static_cast<unsigned long long>(value));
}

inline void EndRow() { std::printf("\n"); }

/// Formats bytes as mebibytes.
inline std::string Mib(size_t bytes) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.1f MiB",
                static_cast<double>(bytes) / (1 << 20));
  return buffer;
}

/// Runs one (strategy, workload) point against a fresh engine context.
inline WorkloadRunResult RunPoint(const SystemConfig& config,
                                  const DatabasePtr& db, Strategy strategy,
                                  const std::vector<NamedQuery>& queries,
                                  const WorkloadRunOptions& options,
                                  EvictionPolicy policy = EvictionPolicy::kLfu) {
  EngineContext ctx(config, db, policy);
  StrategyRunner runner(&ctx, strategy);
  return RunWorkload(runner, queries, options);
}

// --- Heap-contention experiment family (Figures 3, 7, 9, 12, 13) -----------

/// Machine for the Appendix B.2 parallel selection workload: the cache holds
/// the two filter columns (no thrashing), and the heap fits roughly seven
/// concurrent selection operators — the paper's n = M / (3.25 |C|) ~ 7
/// contention threshold (Section 3.4).
inline SystemConfig ContentionConfig(const DatabasePtr& db,
                                     double time_scale) {
  const size_t column_bytes =
      db->GetColumnByQualifiedName("lineorder.lo_discount")
          .value()
          ->data_bytes();
  SystemConfig config = PaperConfig(time_scale);
  config.device_cache_bytes = 3 * column_bytes;
  // The paper's contention threshold: the heap fits n = M / (3.25 |C|) ~ 7
  // concurrent selection operators (Section 3.4). Our selection's peak
  // per-query footprint (1.25x intermediates over both filter columns plus
  // the materialized output) matches 3.25x one column closely.
  config.device_memory_bytes =
      config.device_cache_bytes +
      static_cast<size_t>(7 * 3.25 * column_bytes);
  return config;
}

inline std::vector<int> UserSweep(const BenchArgs& args) {
  if (args.quick) return {1, 4, 8, 16};
  if (args.full) return {1, 2, 4, 6, 8, 10, 12, 16, 20};
  return {1, 2, 4, 8, 12, 16, 20};
}

/// Runs the B.2 workload for one strategy over the user sweep and prints the
/// chosen metric columns. `metrics` selects what to print per point.
enum class ContentionMetric { kWallMillis, kH2dMillis, kAborts, kWastedMillis };

inline void RunContentionSweep(const BenchArgs& args, const DatabasePtr& db,
                               const std::vector<Strategy>& strategies,
                               const std::vector<ContentionMetric>& metrics,
                               int total_queries) {
  const SystemConfig config = ContentionConfig(db, args.time_scale);
  std::vector<std::string> header = {"users"};
  for (Strategy strategy : strategies) {
    for (ContentionMetric metric : metrics) {
      std::string suffix;
      switch (metric) {
        case ContentionMetric::kWallMillis:
          suffix = "[ms]";
          break;
        case ContentionMetric::kH2dMillis:
          suffix = "_h2d[ms]";
          break;
        case ContentionMetric::kAborts:
          suffix = "_aborts";
          break;
        case ContentionMetric::kWastedMillis:
          suffix = "_wasted[ms]";
          break;
      }
      header.push_back(std::string(StrategyToString(strategy)) + suffix);
    }
  }
  PrintHeader(header);

  std::vector<std::string> per_query_lines;
  for (int users : UserSweep(args)) {
    PrintCell(static_cast<uint64_t>(users));
    for (Strategy strategy : strategies) {
      WorkloadRunOptions options;
      options.repetitions = total_queries;  // B.2 has one query per pass
      options.num_users = users;
      const WorkloadRunResult result = RunPoint(
          config, db, strategy, ParallelSelectionQueries(), options);
      if (args.per_query) {
        per_query_lines.push_back(
            "# users=" + std::to_string(users) + " strategy=" +
            StrategyToString(strategy) + "\n" + result.PerQueryToString());
      }
      for (ContentionMetric metric : metrics) {
        switch (metric) {
          case ContentionMetric::kWallMillis:
            PrintCell(result.wall_millis);
            break;
          case ContentionMetric::kH2dMillis:
            PrintCell(result.h2d_transfer_millis);
            break;
          case ContentionMetric::kAborts:
            PrintCell(result.gpu_aborts);
            break;
          case ContentionMetric::kWastedMillis:
            PrintCell(result.wasted_millis);
            break;
        }
      }
    }
    EndRow();
  }
  for (const std::string& line : per_query_lines) {
    std::printf("%s\n", line.c_str());
  }
}

}  // namespace hetdb::bench

#endif  // HETDB_BENCH_BENCH_UTIL_H_
