// Figure 19: host-to-device transfer time of the SSB and TPC-H workloads vs
// parallel users (SF 10). Chopping reduces IO significantly with increasing
// parallelism; the paper reports up to 48x (SSB) / 16x (TPC-H) savings for
// Data-Driven Chopping over GPU-Only.

#include "bench/bench_util.h"
#include "tpch/tpch_queries.h"

using namespace hetdb;
using namespace hetdb::bench;

namespace {

void RunSweep(const BenchArgs& args, bool ssb) {
  const double sf = args.quick ? 5 : 10;
  const std::vector<int> users =
      args.quick ? std::vector<int>{1, 8} : std::vector<int>{1, 8, 16, 20};
  const std::vector<Strategy> strategies = {Strategy::kGpuOnly,
                                            Strategy::kChopping,
                                            Strategy::kDataDrivenChopping};
  DatabasePtr db;
  if (ssb) {
    SsbGeneratorOptions gen;
    args.ApplySeed(gen);
    gen.scale_factor = sf;
    db = GenerateSsbDatabase(gen);
  } else {
    TpchGeneratorOptions gen;
    args.ApplySeed(gen);
    gen.scale_factor = sf;
    db = GenerateTpchDatabase(gen);
  }

  std::vector<std::string> header = {"users"};
  for (Strategy strategy : strategies) {
    header.push_back(std::string(StrategyToString(strategy)) + "_h2d[ms]");
  }
  PrintHeader(header);

  for (int user_count : users) {
    PrintCell(static_cast<uint64_t>(user_count));
    for (Strategy strategy : strategies) {
      WorkloadRunOptions options;
      options.repetitions = args.quick ? 1 : 2;
      options.num_users = user_count;
      const WorkloadRunResult result =
          RunPoint(PaperConfig(args.time_scale), db, strategy,
                   ssb ? SsbQueries() : TpchQueries(), options);
      PrintCell(result.h2d_transfer_millis);
    }
    EndRow();
  }
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv);
  Banner("Figure 19(a)", "SSB host-to-device transfer time vs users (SF 10)");
  RunSweep(args, /*ssb=*/true);
  std::printf("\n");
  Banner("Figure 19(b)", "TPC-H host-to-device transfer time vs users (SF 10)");
  RunSweep(args, /*ssb=*/false);
  return 0;
}
