// Ablation: device worker-pool size for query chopping. The pool size is
// chopping's single knob — the upper bound on concurrently running device
// operators (Section 5.2). Too small leaves latency on the table when the
// heap has room; too large re-creates heap contention. Run on the B.2
// parallel selection workload with 16 users.

#include "bench/bench_util.h"

using namespace hetdb;
using namespace hetdb::bench;

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv);
  const double sf = args.quick ? 5 : 10;
  const int total_queries = args.quick ? 24 : 48;

  SsbGeneratorOptions gen;
  args.ApplySeed(gen);
  gen.scale_factor = sf;
  DatabasePtr db = GenerateSsbDatabase(gen);

  Banner("Ablation: chopping pool size",
         "B.2 workload, 16 users; device heap fits ~7 concurrent selections");

  PrintHeader({"gpu_workers", "time[ms]", "aborts", "wasted[ms]"});
  for (int gpu_workers : {1, 2, 4, 8, 16, 32}) {
    SystemConfig config = ContentionConfig(db, args.time_scale);
    config.gpu_workers = gpu_workers;
    WorkloadRunOptions options;
    options.repetitions = total_queries;
    options.num_users = 16;
    const WorkloadRunResult result =
        RunPoint(config, db, Strategy::kDataDrivenChopping,
                 ParallelSelectionQueries(), options);
    PrintCell(static_cast<uint64_t>(gpu_workers));
    PrintCell(result.wall_millis);
    PrintCell(result.gpu_aborts);
    PrintCell(result.wasted_millis);
    EndRow();
  }
  return 0;
}
