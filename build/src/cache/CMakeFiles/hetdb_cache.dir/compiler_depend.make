# Empty compiler generated dependencies file for hetdb_cache.
# This may be replaced when dependencies are built.
