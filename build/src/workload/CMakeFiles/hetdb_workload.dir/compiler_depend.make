# Empty compiler generated dependencies file for hetdb_workload.
# This may be replaced when dependencies are built.
