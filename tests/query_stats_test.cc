// Per-query introspection tests: resource-attribution parity against the
// sim's global counters, EXPLAIN / EXPLAIN ANALYZE rendering, and the
// thrashing detector's reaction to a fig-2-style contention sweep.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "placement/strategy_runner.h"
#include "sql/explain.h"
#include "sql/planner.h"
#include "ssb/ssb_generator.h"
#include "ssb/ssb_queries.h"
#include "telemetry/detector.h"
#include "tests/test_util.h"
#include "workload/workload.h"

namespace hetdb {
namespace {

DatabasePtr SsbDb() {
  static DatabasePtr db = [] {
    SsbGeneratorOptions options;
    options.scale_factor = 0.1;  // 6,000 lineorder rows
    return GenerateSsbDatabase(options);
  }();
  return db;
}

size_t LineorderColumnBytes(const DatabasePtr& db) {
  return db->GetColumnByQualifiedName("lineorder.lo_discount")
      .value()
      ->data_bytes();
}

// -----------------------------------------------------------------------------
// Attribution parity: per-query counters must mirror the sim's globals
// -----------------------------------------------------------------------------

// Runs the serial-selection workload one query at a time under `strategy`
// and asserts that (a) the summed per-query PCIe bytes equal the bus's
// global byte counters and (b) the max per-query heap high-water mark
// equals the device allocator's peak — i.e. attribution loses nothing and
// invents nothing.
void CheckParity(Strategy strategy) {
  SCOPED_TRACE(StrategyToString(strategy));
  DatabasePtr db = SsbDb();
  SystemConfig config;
  config.simulate_time = false;
  // Cache two of the eight selection columns: every pass misses, transfers,
  // and evicts, so there is real PCIe and heap traffic to attribute.
  config.device_cache_bytes = 2 * LineorderColumnBytes(db);
  config.device_memory_bytes = 512ull << 10;
  EngineContext ctx(config, db);
  StrategyRunner runner(&ctx, strategy);

  const std::vector<NamedQuery> queries = SerialSelectionQueries();
  int64_t sum_h2d = 0;
  int64_t sum_d2h = 0;
  int64_t max_heap_hw = 0;
  for (int pass = 0; pass < 2; ++pass) {
    for (const NamedQuery& query : queries) {
      Result<PlanNodePtr> plan = query.builder(*db);
      ASSERT_TRUE(plan.ok()) << plan.status().ToString();
      QueryStatsPtr stats = MakeQueryStats(plan.value());
      stats->set_name(query.name);
      Result<TablePtr> result = runner.RunQuery(plan.value(), stats);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      EXPECT_TRUE(stats->finished());
      EXPECT_TRUE(stats->ok());
      sum_h2d += stats->h2d_bytes();
      sum_d2h += stats->d2h_bytes();
      max_heap_hw = std::max(max_heap_hw, stats->heap_high_water());
    }
  }

  PcieBus& bus = ctx.simulator().bus();
  EXPECT_EQ(sum_h2d, static_cast<int64_t>(bus.transferred_bytes(
                         TransferDirection::kHostToDevice)));
  EXPECT_EQ(sum_d2h, static_cast<int64_t>(bus.transferred_bytes(
                         TransferDirection::kDeviceToHost)));
  EXPECT_EQ(max_heap_hw,
            static_cast<int64_t>(ctx.simulator().device_heap().peak_used()));
}

TEST(QueryStatsParityTest, GpuOnly) { CheckParity(Strategy::kGpuOnly); }
TEST(QueryStatsParityTest, RunTime) { CheckParity(Strategy::kRunTime); }
TEST(QueryStatsParityTest, Chopping) { CheckParity(Strategy::kChopping); }
TEST(QueryStatsParityTest, DataDrivenChopping) {
  CheckParity(Strategy::kDataDrivenChopping);
}

TEST(QueryStatsParityTest, GpuOnlyActuallyMovesData) {
  // The parity assertions are vacuous if nothing transfers; prove the
  // GPU-Only configuration above produces real traffic and heap use.
  DatabasePtr db = SsbDb();
  SystemConfig config;
  config.simulate_time = false;
  config.device_cache_bytes = 2 * LineorderColumnBytes(db);
  config.device_memory_bytes = 512ull << 10;
  EngineContext ctx(config, db);
  StrategyRunner runner(&ctx, Strategy::kGpuOnly);
  const std::vector<NamedQuery> queries = SerialSelectionQueries();
  Result<PlanNodePtr> plan = queries[0].builder(*db);
  ASSERT_TRUE(plan.ok());
  QueryStatsPtr stats = MakeQueryStats(plan.value());
  ASSERT_TRUE(runner.RunQuery(plan.value(), stats).ok());
  EXPECT_GT(stats->h2d_bytes(), 0);
  EXPECT_GT(stats->heap_high_water(), 0);
  EXPECT_GT(stats->operators_run(), 0);
}

// -----------------------------------------------------------------------------
// EXPLAIN / EXPLAIN ANALYZE rendering
// -----------------------------------------------------------------------------

TEST(ExplainTest, PlanTreeRendersAllOperatorsIndented) {
  DatabasePtr db = SsbDb();
  Result<PlanNodePtr> plan = PlanSql(
      "SELECT d_year, sum(lo_revenue) AS revenue FROM lineorder, date "
      "WHERE lo_orderdate = d_datekey GROUP BY d_year ORDER BY d_year",
      *db);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();

  const std::string tree = RenderPlanTree(plan.value());
  // One line per operator, children indented under parents.
  EXPECT_EQ(static_cast<size_t>(std::count(tree.begin(), tree.end(), '\n')),
            CountPlanNodes(plan.value()));
  EXPECT_NE(tree.find("sort"), std::string::npos);
  EXPECT_NE(tree.find("aggregate"), std::string::npos);
  EXPECT_NE(tree.find("join"), std::string::npos);
  EXPECT_NE(tree.find("\n  "), std::string::npos);

  const std::string json = RenderPlanJson(plan.value());
  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\"op\":"), std::string::npos);
  EXPECT_NE(json.find("\"children\":["), std::string::npos);
}

TEST(ExplainTest, AnalyzeShowsPerOperatorResourceAttribution) {
  DatabasePtr db = SsbDb();
  SystemConfig config;
  config.simulate_time = false;
  config.device_cache_bytes = 256ull << 10;
  config.device_memory_bytes = 1ull << 20;
  EngineContext ctx(config, db);
  StrategyRunner runner(&ctx, Strategy::kGpuOnly);

  Result<NamedQuery> query = SsbQueryByName("Q1.1");
  ASSERT_TRUE(query.ok());
  Result<PlanNodePtr> plan = query.value().builder(*db);
  ASSERT_TRUE(plan.ok());
  QueryStatsPtr stats = MakeQueryStats(plan.value());
  stats->set_name("Q1.1");
  Result<TablePtr> result = runner.RunQuery(plan.value(), stats);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  const std::string text = stats->ToText();
  // Acceptance: per-operator rows, kernel time, placement, PCIe bytes, and
  // heap high-water all visible in the annotated tree.
  EXPECT_NE(text.find("rows="), std::string::npos) << text;
  EXPECT_NE(text.find("kernel_"), std::string::npos) << text;
  EXPECT_NE(text.find("[GPU"), std::string::npos) << text;
  EXPECT_NE(text.find("pcie(h2d="), std::string::npos) << text;
  EXPECT_NE(text.find("heap_hw="), std::string::npos) << text;
  EXPECT_NE(text.find("-- query"), std::string::npos) << text;
  EXPECT_NE(text.find("(Q1.1): ok"), std::string::npos) << text;

  const std::string json = stats->ToJson();
  EXPECT_NE(json.find("\"name\":\"Q1.1\""), std::string::npos);
  EXPECT_NE(json.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(json.find("\"nodes\":["), std::string::npos);
  EXPECT_NE(json.find("\"ran_on\":\"GPU\""), std::string::npos);
  EXPECT_NE(json.find("\"h2d_bytes\":"), std::string::npos);
}

TEST(ExplainTest, FailedQueryRendersErrorAndStatus) {
  QueryStats stats;
  stats.MarkSubmitted();
  stats.MarkFinished(false, "device lost");
  EXPECT_NE(stats.ToText().find("FAILED"), std::string::npos);
  EXPECT_NE(stats.ToText().find("device lost"), std::string::npos);
  EXPECT_NE(stats.ToJson().find("\"status\":\"error\""), std::string::npos);
  // First finish wins; a later contradictory call must not flip the result.
  stats.MarkFinished(true);
  EXPECT_FALSE(stats.ok());
}

// -----------------------------------------------------------------------------
// Thrashing detector: fig-2-style contention sweep
// -----------------------------------------------------------------------------

TEST(ThrashingDetectorSweepTest, CacheContentionFlipsThrashState) {
  DatabasePtr db = SsbDb();
  const size_t column_bytes = LineorderColumnBytes(db);
  SystemConfig config;
  config.simulate_time = false;
  // Figure 2's setup: the cache holds three of the eight selection columns,
  // so the interleaved workload evicts on (almost) every access.
  config.device_cache_bytes = 3 * column_bytes;
  config.device_memory_bytes =
      config.device_cache_bytes + static_cast<size_t>(10 * 3.25 * column_bytes);
  EngineContext ctx(config, db);
  StrategyRunner runner(&ctx, Strategy::kGpuOnly);

  ASSERT_EQ(ctx.detector().state(), ThrashingDetector::State::kCalm);
  const std::vector<NamedQuery> queries = SerialSelectionQueries();
  for (int pass = 0; pass < 3; ++pass) {
    for (const NamedQuery& query : queries) {
      Result<PlanNodePtr> plan = query.builder(*db);
      ASSERT_TRUE(plan.ok());
      ASSERT_TRUE(runner.RunQuery(plan.value()).ok());
    }
  }

  // The executors feed the detector after every query; sustained eviction
  // churn must have moved the state off calm and published the gauge.
  EXPECT_NE(ctx.detector().state(), ThrashingDetector::State::kCalm);
  EXPECT_GE(ctx.detector().transitions(), 1);
  EXPECT_GE(ctx.telemetry().registry().GetGauge("thrash.state").value(), 1);
  EXPECT_GE(ctx.detector().last_signals().eviction_churn, 0.5);
}

TEST(ThrashingDetectorSweepTest, RoomyCacheStaysCalm) {
  DatabasePtr db = SsbDb();
  SystemConfig config;
  config.simulate_time = false;
  // Control: everything fits — the same workload must not trip the detector.
  config.device_cache_bytes = 12 * LineorderColumnBytes(db);
  config.device_memory_bytes = config.device_cache_bytes + (1ull << 20);
  EngineContext ctx(config, db);
  StrategyRunner runner(&ctx, Strategy::kGpuOnly);

  const std::vector<NamedQuery> queries = SerialSelectionQueries();
  for (int pass = 0; pass < 3; ++pass) {
    for (const NamedQuery& query : queries) {
      Result<PlanNodePtr> plan = query.builder(*db);
      ASSERT_TRUE(plan.ok());
      ASSERT_TRUE(runner.RunQuery(plan.value()).ok());
    }
  }
  EXPECT_EQ(ctx.detector().state(), ThrashingDetector::State::kCalm);
  EXPECT_EQ(ctx.telemetry().registry().GetGauge("thrash.state").value(), 0);
}

// -----------------------------------------------------------------------------
// Flight-recorder integration: every query leaves a summary record
// -----------------------------------------------------------------------------

TEST(FlightRecorderIntegrationTest, QueriesLeaveSummaryRecords) {
  DatabasePtr db = MakeTinyDb();
  EngineContext ctx(TestConfig(), db);
  StrategyRunner runner(&ctx, Strategy::kCpuOnly);
  Result<PlanNodePtr> plan = PlanSql("SELECT v FROM fact WHERE v > 90", *db);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_TRUE(runner.RunQuery(plan.value()).ok());

  const std::vector<FlightRecord> records = ctx.flight_recorder().Snapshot();
  ASSERT_FALSE(records.empty());
  bool found_summary = false;
  for (const FlightRecord& record : records) {
    if (record.kind != FlightRecord::Kind::kQuerySummary) continue;
    found_summary = true;
    bool has_status = false;
    for (const auto& [key, value] : record.fields) {
      if (key == "status") {
        has_status = true;
        EXPECT_EQ(value, "ok");
      }
    }
    EXPECT_TRUE(has_status);
  }
  EXPECT_TRUE(found_summary);
}

}  // namespace
}  // namespace hetdb
