# Empty compiler generated dependencies file for hetdb_sim.
# This may be replaced when dependencies are built.
