#ifndef HETDB_COMMON_STATUS_H_
#define HETDB_COMMON_STATUS_H_

#include <cassert>
#include <memory>
#include <ostream>
#include <string>
#include <utility>
#include <variant>

namespace hetdb {

/// Machine-readable error categories used across the engine.
///
/// `kResourceExhausted` is load-bearing: it is the code returned by the
/// device heap allocator when a co-processor operator cannot obtain memory,
/// and the only code the execution engine treats as a recoverable operator
/// abort (the operator is restarted on the CPU, per Section 2.5.1 of the
/// paper). All other codes propagate as query failures.
/// `kUnavailable` marks a *transient* device fault (kernel hiccup, transfer
/// error): the engine retries the operator on the device with bounded
/// exponential backoff before falling back to the CPU. `kDeviceLost` marks a
/// *persistent* device fault (whole-device-offline episode): retrying on the
/// device is pointless, the engine falls back immediately and the device
/// circuit breaker counts it towards tripping. `kCancelled` is the clean
/// verdict for queries whose deadline expired, whose cancel token fired, or
/// that were in flight when their executor shut down.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kResourceExhausted,
  kInternal,
  kNotImplemented,
  kAborted,
  kUnavailable,
  kDeviceLost,
  kCancelled,
};

/// Returns a human-readable name for `code` (e.g. "ResourceExhausted").
const char* StatusCodeToString(StatusCode code);

/// Arrow/RocksDB-style status object. HetDB does not throw exceptions across
/// API boundaries; all fallible operations return `Status` or `Result<T>`.
///
/// The OK status carries no allocation; error statuses store a message.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeviceLost(std::string msg) {
    return Status(StatusCode::kDeviceLost, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// True iff this status is the recoverable device out-of-memory signal.
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }

  /// True iff this status is a transient device fault (retry may succeed).
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }

  /// True iff the device is persistently gone (retrying on it is pointless).
  bool IsDeviceLost() const { return code_ == StatusCode::kDeviceLost; }

  /// True iff the query was cancelled (token, deadline, or shutdown).
  bool IsCancelled() const { return code_ == StatusCode::kCancelled; }

  /// True for any status the engine treats as a device-side operator abort
  /// (recoverable by restarting the operator, possibly on the CPU): heap
  /// exhaustion, transient faults, and device loss. Everything else is a
  /// genuine query error and propagates.
  bool IsDeviceAbort() const {
    return IsResourceExhausted() || IsUnavailable() || IsDeviceLost();
  }

  /// Renders "OK" or "<Code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Result<T> holds either a value of type T or an error Status.
/// Accessing the value of an errored result aborts the process (programming
/// error); callers must check `ok()` first or use `RETURN_NOT_OK`-style
/// propagation.
template <typename T>
class Result {
 public:
  /// Intentionally implicit so `return value;` and `return status;` both work
  /// in functions returning Result<T>.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status)                          // NOLINT(runtime/explicit)
      : value_(std::move(status)) {
    assert(!std::get<Status>(value_).ok() &&
           "Result constructed from OK status carries no value");
  }

  bool ok() const { return std::holds_alternative<T>(value_); }

  const Status& status() const {
    static const Status kOk;
    if (ok()) return kOk;
    return std::get<Status>(value_);
  }

  T& value() & {
    assert(ok());
    return std::get<T>(value_);
  }
  const T& value() const& {
    assert(ok());
    return std::get<T>(value_);
  }
  T&& value() && {
    assert(ok());
    return std::move(std::get<T>(value_));
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  /// Moves the value out, or returns `fallback` on error.
  T ValueOr(T fallback) && {
    if (ok()) return std::move(std::get<T>(value_));
    return fallback;
  }

 private:
  std::variant<T, Status> value_;
};

// Propagation helpers. These are macros on purpose: they return early from
// the enclosing function, which cannot be expressed as a function.
#define HETDB_RETURN_NOT_OK(expr)                 \
  do {                                            \
    ::hetdb::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                    \
  } while (false)

#define HETDB_ASSIGN_OR_RETURN_IMPL(var, lhs, rexpr) \
  auto var = (rexpr);                                \
  if (!var.ok()) return var.status();                \
  lhs = std::move(var).value()

#define HETDB_CONCAT_INNER(x, y) x##y
#define HETDB_CONCAT(x, y) HETDB_CONCAT_INNER(x, y)

/// HETDB_ASSIGN_OR_RETURN(auto x, MakeX()); — assigns on success, propagates
/// the error status otherwise.
#define HETDB_ASSIGN_OR_RETURN(lhs, rexpr) \
  HETDB_ASSIGN_OR_RETURN_IMPL(HETDB_CONCAT(_result_, __LINE__), lhs, rexpr)

}  // namespace hetdb

#endif  // HETDB_COMMON_STATUS_H_
