file(REMOVE_RECURSE
  "../bench/fig22_tpch_backends"
  "../bench/fig22_tpch_backends.pdb"
  "CMakeFiles/fig22_tpch_backends.dir/fig22_tpch_backends.cpp.o"
  "CMakeFiles/fig22_tpch_backends.dir/fig22_tpch_backends.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig22_tpch_backends.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
