// Failure-injection and concurrency stress tests: the engine must produce
// bit-identical results under arbitrary device allocation failures and heavy
// multi-user load — the paper's fault-tolerance contract (Section 2.5.1).

#include <gtest/gtest.h>

#include "placement/strategy_runner.h"
#include "ssb/ssb_generator.h"
#include "tests/test_util.h"
#include "workload/workload.h"

namespace hetdb {
namespace {

DatabasePtr StressDb() {
  static DatabasePtr db = [] {
    SsbGeneratorOptions options;
    options.scale_factor = 0.1;
    return GenerateSsbDatabase(options);
  }();
  return db;
}

/// This suite stresses the *single-device* contention and fault paths the
/// paper studies; pin device_count so the machine shape stays fixed even if
/// the multi-device default ever changes (tests/multi_device_test.cc owns
/// the N-device behavior).
SystemConfig SingleDeviceConfig() {
  SystemConfig config = TestConfig();
  config.device_count = 1;
  return config;
}

/// Reference result computed once on the CPU.
TablePtr Reference(const std::string& query_name) {
  DatabasePtr db = StressDb();
  EngineContext ctx(SingleDeviceConfig(), db);
  StrategyRunner runner(&ctx, Strategy::kCpuOnly);
  Result<NamedQuery> query = SsbQueryByName(query_name);
  EXPECT_TRUE(query.ok());
  Result<PlanNodePtr> plan = query->builder(*db);
  EXPECT_TRUE(plan.ok());
  Result<TablePtr> result = runner.RunQuery(plan.value());
  EXPECT_TRUE(result.ok());
  return result.value();
}

/// Probability-of-failure sweep: every device allocation fails with
/// probability p; results must stay correct for every strategy.
class FailureRateTest : public ::testing::TestWithParam<int> {};

TEST_P(FailureRateTest, ResultsSurviveRandomAllocationFailures) {
  const double failure_rate = GetParam() / 100.0;
  DatabasePtr db = StressDb();
  TablePtr expected = Reference("Q2.1");

  for (Strategy strategy :
       {Strategy::kGpuOnly, Strategy::kRunTime, Strategy::kDataDrivenChopping}) {
    EngineContext ctx(SingleDeviceConfig(), db);
    StrategyRunner runner(&ctx, strategy);
    runner.RefreshDataPlacement();
    // Seeded per (rate, strategy) for reproducibility: the injector draws
    // all randomness from its own seeded Rng under its lock.
    FaultInjector& injector = ctx.simulator().fault_injector();
    injector.Reseed(GetParam() * 31 + static_cast<int>(strategy));
    injector.SetSchedule(
        FaultSite::kDeviceAlloc,
        FaultSchedule::WithProbability(FaultKind::kHeapExhausted,
                                       failure_rate));

    Result<NamedQuery> query = SsbQueryByName("Q2.1");
    ASSERT_TRUE(query.ok());
    for (int round = 0; round < 3; ++round) {
      Result<PlanNodePtr> plan = query->builder(*db);
      ASSERT_TRUE(plan.ok());
      Result<TablePtr> result = runner.RunQuery(plan.value());
      ASSERT_TRUE(result.ok()) << StrategyToString(strategy) << " p="
                               << failure_rate << ": "
                               << result.status().ToString();
      EXPECT_TRUE(TablesEqual(*expected, *result.value()))
          << StrategyToString(strategy) << " p=" << failure_rate;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(FailureRates, FailureRateTest,
                         ::testing::Values(0, 10, 50, 100));

TEST(StressTest, ManyUsersManyStrategiesProduceNoFailures) {
  DatabasePtr db = StressDb();
  SystemConfig config = SingleDeviceConfig();
  config.device_memory_bytes = 256 << 10;  // deliberately starved device
  config.device_cache_bytes = 128 << 10;
  for (Strategy strategy :
       {Strategy::kGpuOnly, Strategy::kChopping, Strategy::kDataDrivenChopping}) {
    EngineContext ctx(config, db);
    StrategyRunner runner(&ctx, strategy);
    WorkloadRunOptions options;
    options.repetitions = 4;
    options.num_users = 12;
    options.warmup_repetitions = 0;
    const WorkloadRunResult result = RunWorkload(runner, SsbQueries(), options);
    EXPECT_EQ(result.failed_queries, 0u) << StrategyToString(strategy);
    EXPECT_EQ(result.queries_run, 52u) << StrategyToString(strategy);
  }
}

TEST(StressTest, ChoppingExecutorSurvivesRapidSubmitCycles) {
  DatabasePtr db = StressDb();
  // Repeated construction/destruction of chopping executors with in-flight
  // queries (shutdown correctness).
  for (int cycle = 0; cycle < 10; ++cycle) {
    EngineContext ctx(SingleDeviceConfig(), db);
    StrategyRunner runner(&ctx, Strategy::kDataDrivenChopping);
    Result<NamedQuery> query = SsbQueryByName("Q1.1");
    ASSERT_TRUE(query.ok());
    Result<PlanNodePtr> plan = query->builder(*db);
    ASSERT_TRUE(plan.ok());
    ASSERT_TRUE(runner.RunQuery(plan.value()).ok());
  }
}

TEST(StressTest, InjectedFailuresAreCountedAsAborts) {
  // This test counts one abort per plan operator, so run the plan as-is:
  // fusion would collapse the chain into a single schedulable node (its
  // abort accounting is covered by tests/fused_pipeline_test.cc).
  const bool saved_fusion = GlobalKernelConfig().fusion;
  GlobalKernelConfig().fusion = false;
  DatabasePtr db = StressDb();
  EngineContext ctx(SingleDeviceConfig(), db);
  StrategyRunner runner(&ctx, Strategy::kGpuOnly);
  // Keep the breaker out of the arithmetic: a tripped breaker would
  // short-circuit later operators to the CPU without counting an abort.
  DeviceCircuitBreaker::Options no_trip;
  no_trip.min_samples = 1 << 20;
  ctx.breaker().Configure(no_trip);
  ctx.simulator().fault_injector().SetSchedule(
      FaultSite::kDeviceAlloc, FaultSchedule::Always(FaultKind::kHeapExhausted));
  Result<NamedQuery> query = SsbQueryByName("Q1.1");
  ASSERT_TRUE(query.ok());
  Result<PlanNodePtr> plan = query->builder(*db);
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE(runner.RunQuery(plan.value()).ok());
  // Scans acquire their inputs through the data cache (no heap allocation),
  // so they cannot abort; every other device-placed operator aborted once.
  size_t scans = 0;
  VisitPlanPostOrder(plan.value(), [&](const PlanNodePtr& node) {
    if (node->op() == PlanOp::kScan) ++scans;
  });
  EXPECT_EQ(ctx.metrics().gpu_operator_aborts(),
            CountPlanNodes(plan.value()) - scans);
  EXPECT_EQ(ctx.metrics().gpu_operators(), scans);
  GlobalKernelConfig().fusion = saved_fusion;
}

}  // namespace
}  // namespace hetdb
