file(REMOVE_RECURSE
  "CMakeFiles/hetdb_tpch.dir/tpch_generator.cc.o"
  "CMakeFiles/hetdb_tpch.dir/tpch_generator.cc.o.d"
  "CMakeFiles/hetdb_tpch.dir/tpch_queries.cc.o"
  "CMakeFiles/hetdb_tpch.dir/tpch_queries.cc.o.d"
  "libhetdb_tpch.a"
  "libhetdb_tpch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetdb_tpch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
