#ifndef HETDB_ENGINE_PIPELINE_BUILDER_H_
#define HETDB_ENGINE_PIPELINE_BUILDER_H_

#include "operators/plan_node.h"

namespace hetdb {

/// Plan-rewrite pass: greedily groups maximal fusable operator chains into
/// `FusedPipeline` nodes (DESIGN.md §11).
///
/// A chain grows downward from a candidate top node through Select and
/// Project members (via their only child) and Join members (via the probe
/// child; the build child becomes a separate input of the fused node). An
/// Aggregate may appear only as the chain's top member. The chain must
/// bottom out in a Scan and contain at least two members; a static
/// name-binding check (mirroring the runtime binder's rules) rejects chains
/// the fused evaluator would decline — e.g. filters on non-source columns
/// or probe keys on computed columns — so those fuse lower down instead.
///
/// The rewrite is structural only: it never changes results. Unchanged
/// subtrees are returned as the same node objects, so running the pass on an
/// already-fused plan is the identity (FusedPipeline nodes break chains).
///
/// `max_fused_joins` bounds the join members one fused pipeline may absorb
/// (-1 = unlimited). A chain over the bound is declined whole; the recursion
/// then fuses the shorter chains below it, so the plan degrades to several
/// smaller pipelines instead of one deep one. The brownout controller's L1
/// level uses `1` to disable *multi*-join fusion: deep fused pipelines hold
/// every build table on-device at once, exactly the footprint to shed first
/// under heap pressure.
PlanNodePtr FusePipelines(const PlanNodePtr& root, int max_fused_joins = -1);

class QueryStats;

/// Applies FusePipelines under the `KernelConfig::fusion` knob. Call this
/// before MakeQueryStats so per-node attribution follows the plan that will
/// actually execute. When `stats` was already registered against a
/// *different* plan, the rewrite is declined and `root` is returned
/// unchanged — adopting it would orphan the caller's per-node attribution.
/// `max_fused_joins` passes through to FusePipelines (brownout L1 sets 1).
PlanNodePtr OptimizePlan(const PlanNodePtr& root,
                         const QueryStats* stats = nullptr,
                         int max_fused_joins = -1);

}  // namespace hetdb

#endif  // HETDB_ENGINE_PIPELINE_BUILDER_H_
