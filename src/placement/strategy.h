#ifndef HETDB_PLACEMENT_STRATEGY_H_
#define HETDB_PLACEMENT_STRATEGY_H_

#include <string>

namespace hetdb {

/// The placement strategies compared in the paper's evaluation (Section 6.2):
///
///  * kCpuOnly       — baseline, never touches the device;
///  * kGpuOnly       — "GPU Preferred": every operator compile-time-placed on
///                     the device, CPU only after aborts (state of the art);
///  * kCriticalPath  — CoGaDB's default compile-time iterative-refinement
///                     cost optimizer (Appendix D);
///  * kDataDriven    — compile-time data-driven placement (Section 3);
///  * kRunTime       — run-time placement without concurrency limiting
///                     (Section 4);
///  * kChopping      — query chopping with operator-driven placement
///                     (Section 5.2);
///  * kDataDrivenChopping — the paper's combined contribution (Section 5.4).
enum class Strategy {
  kCpuOnly,
  kGpuOnly,
  kCriticalPath,
  kDataDriven,
  kRunTime,
  kChopping,
  kDataDrivenChopping,
};

const char* StrategyToString(Strategy strategy);

/// True for strategies that fix placement before execution.
bool IsCompileTimeStrategy(Strategy strategy);

/// True for strategies that bound device-operator concurrency by a worker
/// pool (chopping variants).
bool LimitsConcurrency(Strategy strategy);

/// All strategies, in the paper's usual presentation order.
inline constexpr Strategy kAllStrategies[] = {
    Strategy::kCpuOnly,      Strategy::kGpuOnly,
    Strategy::kCriticalPath, Strategy::kDataDriven,
    Strategy::kRunTime,      Strategy::kChopping,
    Strategy::kDataDrivenChopping,
};

}  // namespace hetdb

#endif  // HETDB_PLACEMENT_STRATEGY_H_
