# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("storage")
subdirs("sim")
subdirs("cache")
subdirs("hype")
subdirs("operators")
subdirs("engine")
subdirs("placement")
subdirs("ssb")
subdirs("tpch")
subdirs("workload")
subdirs("sql")
