// Figure 3: heap contention. The Appendix B.2 parallel selection workload
// (fixed total work, increasing parallel users) on a device whose heap fits
// ~7 concurrent selection operators. Under GPU-Only execution the workload
// slows down sharply past the threshold (the paper measures up to 6x) while
// the ideal system (CPU Only here, with constant total work) stays flat.

#include "bench/bench_util.h"

using namespace hetdb;
using namespace hetdb::bench;

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv);
  const double sf = args.quick ? 5 : 10;
  const int total_queries = args.quick ? 24 : (args.full ? 100 : 48);

  SsbGeneratorOptions gen;
  args.ApplySeed(gen);
  gen.scale_factor = sf;
  DatabasePtr db = GenerateSsbDatabase(gen);

  Banner("Figure 3",
         "Parallel selection workload (B.2), " +
             std::to_string(total_queries) +
             " queries total, GPU-Only placement; contention threshold ~7 "
             "users");

  RunContentionSweep(args, db, {Strategy::kGpuOnly, Strategy::kCpuOnly},
                     {ContentionMetric::kWallMillis}, total_queries);
  return 0;
}
