#include "cache/data_cache.h"

#include <algorithm>

#include "common/logging.h"
#include "telemetry/trace_recorder.h"

namespace hetdb {

const char* EvictionPolicyToString(EvictionPolicy policy) {
  switch (policy) {
    case EvictionPolicy::kLru:
      return "LRU";
    case EvictionPolicy::kLfu:
      return "LFU";
  }
  return "unknown";
}

DataCache::DataCache(size_t capacity_bytes, EvictionPolicy policy,
                     Simulator* simulator, bool compress_entries,
                     int device_id)
    : capacity_bytes_(capacity_bytes),
      policy_(policy),
      simulator_(simulator),
      compress_entries_(compress_entries),
      device_id_(device_id) {
  HETDB_CHECK(simulator_ != nullptr);
}

DataCache::~DataCache() = default;

void DataCache::SetAdmissionGate(std::function<bool()> gate) {
  std::lock_guard<std::mutex> lock(mutex_);
  admission_gate_ = std::move(gate);
}

void DataCache::Lease::Release() {
  if (cache_ != nullptr) {
    cache_->ReleaseLease(key_);
    cache_ = nullptr;
  }
}

void DataCache::ReleaseLease(const std::string& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(key);
  if (it == entries_.end()) return;
  Entry& entry = it->second;
  HETDB_CHECK(entry.ref_count > 0);
  --entry.ref_count;
  if (entry.ref_count == 0 && entry.pending_evict) {
    RemoveEntry(it);
    ++stats_.evictions;
  }
}

bool DataCache::IsCached(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(key);
  return it != entries_.end() && it->second.ready && !it->second.pending_evict;
}

std::optional<DataCache::Lease> DataCache::TryGet(const std::string& key) {
  std::unique_lock<std::mutex> lock(mutex_);
  auto it = entries_.find(key);
  if (it == entries_.end() || it->second.pending_evict) return std::nullopt;
  // Wait for a concurrent loader to finish the transfer. The entry vanishes
  // if that load's transfer faults, so re-find the key each wake instead of
  // holding a reference across the wait.
  load_cv_.wait(lock, [this, &key] {
    auto current = entries_.find(key);
    return current == entries_.end() || current->second.ready;
  });
  it = entries_.find(key);
  if (it == entries_.end() || it->second.pending_evict) return std::nullopt;
  Entry& entry = it->second;
  ++entry.ref_count;
  entry.last_access = ++access_clock_;
  ++entry.access_count;
  ++stats_.hits;
  return Lease(this, key);
}

DataCache::Access DataCache::RequireOnDevice(const ColumnPtr& column,
                                             const std::string& key) {
  const size_t bytes = EntryBytes(*column);
  // Loop: a waiter whose concurrent loader faulted (entry vanished) retries
  // the access as a fresh miss instead of dangling on the erased entry.
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      auto it = entries_.find(key);
      if (it != entries_.end() && !it->second.pending_evict) {
        // A wait on a concurrent loader still counts as a hit: the data
        // crosses the bus once, not once per waiter. The entry vanishes if
        // that load faults, so re-find the key instead of holding a
        // reference across the wait.
        load_cv_.wait(lock, [this, &key] {
          auto current = entries_.find(key);
          return current == entries_.end() || current->second.ready;
        });
        it = entries_.find(key);
        if (it == entries_.end()) continue;  // loader faulted: retry as miss
        if (!it->second.pending_evict) {
          Entry& entry = it->second;
          ++entry.ref_count;
          entry.last_access = ++access_clock_;
          ++entry.access_count;
          ++stats_.hits;
          Access access;
          access.hit = true;
          access.resident = true;
          access.lease = Lease(this, key);
          return access;
        }
        // Marked for eviction while we waited: treat as a miss below.
      }
      ++stats_.misses;
      const bool admit = !admission_gate_ || admission_gate_();
      if (admit && bytes <= capacity_bytes_ && EvictUntilFits(bytes)) {
        // Reserve the entry in "loading" state, transfer outside the lock.
        Entry entry;
        entry.column = column;
        entry.bytes = bytes;
        entry.ready = false;
        entry.ref_count = 1;
        entry.last_access = ++access_clock_;
        entry.access_count = 1;
        entries_[key] = std::move(entry);
        used_bytes_ += bytes;
        ++stats_.insertions;
      } else {
        // Transient: cannot be made resident; caller pays the transfer and
        // must keep the bytes in device heap for the operator's lifetime.
        lock.unlock();
        TraceSpan transient_span;
        if (TraceRecorder::enabled()) {
          transient_span.Begin(key, "cache");
          transient_span.AddArg("action", "transient");
          transient_span.AddArg("bytes", static_cast<int64_t>(bytes));
        }
        Status transfer_status =
            simulator_->bus(device_id_).Transfer(bytes, TransferDirection::kHostToDevice);
        Access access;
        access.hit = false;
        access.resident = false;
        if (!transfer_status.ok()) {
          std::lock_guard<std::mutex> stats_lock(mutex_);
          ++stats_.load_failures;
          access.status = std::move(transfer_status);
        }
        return access;
      }
    }
    // Perform the modeled PCIe transfer without holding the cache latch.
    TraceSpan admit_span;
    if (TraceRecorder::enabled()) {
      admit_span.Begin(key, "cache");
      admit_span.AddArg("action", "admit");
      admit_span.AddArg("bytes", static_cast<int64_t>(bytes));
    }
    Status transfer_status =
        simulator_->bus(device_id_).Transfer(bytes, TransferDirection::kHostToDevice);
    if (!transfer_status.ok()) {
      AbandonLoad(key);
      Access access;
      access.hit = false;
      access.resident = false;
      access.status = std::move(transfer_status);
      return access;
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      auto it = entries_.find(key);
      HETDB_CHECK(it != entries_.end());
      it->second.ready = true;
    }
    load_cv_.notify_all();
    Access access;
    access.hit = false;
    access.resident = true;
    access.lease = Lease(this, key);
    return access;
  }
}

void DataCache::AbandonLoad(const std::string& key) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.load_failures;
    auto it = entries_.find(key);
    if (it != entries_.end() && !it->second.ready) {
      used_bytes_ -= it->second.bytes;
      entries_.erase(it);
    }
  }
  load_cv_.notify_all();
}

bool DataCache::EvictUntilFits(size_t bytes) {
  if (bytes > capacity_bytes_) return false;
  while (used_bytes_ + bytes > capacity_bytes_) {
    auto victim = PickVictim();
    if (victim == entries_.end()) return false;
    RemoveEntry(victim);
    ++stats_.evictions;
  }
  return true;
}

std::unordered_map<std::string, DataCache::Entry>::iterator
DataCache::PickVictim() {
  auto best = entries_.end();
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    const Entry& entry = it->second;
    if (!entry.ready || entry.pinned || entry.ref_count > 0 ||
        entry.pending_evict) {
      continue;
    }
    if (best == entries_.end()) {
      best = it;
      continue;
    }
    const Entry& best_entry = best->second;
    const bool worse = policy_ == EvictionPolicy::kLru
                           ? entry.last_access < best_entry.last_access
                           : entry.access_count < best_entry.access_count;
    if (worse) best = it;
  }
  return best;
}

void DataCache::RemoveEntry(
    std::unordered_map<std::string, Entry>::iterator it) {
  if (TraceRecorder::enabled()) {
    RecordInstantEvent(it->first, "cache", /*query_id=*/0,
                       {{"action", "evict"},
                        {"bytes", std::to_string(it->second.bytes)}});
  }
  used_bytes_ -= it->second.bytes;
  entries_.erase(it);
}

void DataCache::RunPlacementJob(
    const std::vector<std::pair<std::string, ColumnPtr>>& columns) {
  TraceSpan job_span;
  if (TraceRecorder::enabled()) {
    job_span.Begin("placement job", "cache");
    job_span.AddArg("candidates", static_cast<int64_t>(columns.size()));
  }
  // Algorithm 1: K = columns sorted by access statistics descending (LFU:
  // frequency; LRU: recency — compared in Appendix E); fill the budget
  // greedily; evict cached \ selected; cache selected \ cached.
  std::vector<std::pair<std::string, ColumnPtr>> sorted = columns;
  if (policy_ == EvictionPolicy::kLfu) {
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const auto& a, const auto& b) {
                       return a.second->access_count() >
                              b.second->access_count();
                     });
  } else {
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const auto& a, const auto& b) {
                       return a.second->last_access_seq() >
                              b.second->last_access_seq();
                     });
  }

  std::vector<std::pair<std::string, ColumnPtr>> selected;
  size_t budget_used = 0;
  for (const auto& [key, column] : sorted) {
    if (column->access_count() == 0) continue;  // never used by any query
    const size_t bytes = EntryBytes(*column);
    if (budget_used + bytes > capacity_bytes_) continue;
    budget_used += bytes;
    selected.emplace_back(key, column);
  }

  std::vector<std::pair<std::string, ColumnPtr>> to_load;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.placement_job_runs;
    // Evict everything no longer selected (deferred while leased: running
    // queries continue, reference counters clean up afterwards).
    for (auto it = entries_.begin(); it != entries_.end();) {
      const bool keep = std::any_of(
          selected.begin(), selected.end(),
          [&](const auto& kv) { return kv.first == it->first; });
      if (keep) {
        it->second.pinned = true;
        ++it;
        continue;
      }
      if (it->second.ref_count > 0 || !it->second.ready) {
        it->second.pending_evict = true;
        ++it;
      } else {
        it = entries_.erase(it);
        // Recompute used bytes below; simpler than tracking here.
      }
    }
    // Recompute used bytes after bulk erase.
    used_bytes_ = 0;
    for (const auto& [key, entry] : entries_) used_bytes_ += entry.bytes;

    for (const auto& [key, column] : selected) {
      auto it = entries_.find(key);
      if (it != entries_.end()) {
        // Still present (possibly marked for eviction by an earlier job run
        // while leased): keep it and clear the eviction mark.
        it->second.pending_evict = false;
        it->second.pinned = true;
        continue;
      }
      const size_t bytes = EntryBytes(*column);
      if (used_bytes_ + bytes > capacity_bytes_) continue;  // leased leftovers
      Entry entry;
      entry.column = column;
      entry.bytes = bytes;
      entry.ready = false;
      entry.pinned = true;
      entry.access_count = column->access_count();
      entry.last_access = ++access_clock_;
      entries_[key] = std::move(entry);
      used_bytes_ += bytes;
      ++stats_.insertions;
      to_load.emplace_back(key, column);
    }
  }
  if (job_span.active()) {
    job_span.AddArg("selected", static_cast<int64_t>(selected.size()));
    job_span.AddArg("loaded", static_cast<int64_t>(to_load.size()));
  }
  // Transfers outside the latch; queries seeing "loading" entries wait on
  // the per-entry latch, everything else proceeds.
  for (const auto& [key, column] : to_load) {
    Status transfer_status = simulator_->bus(device_id_).Transfer(
        EntryBytes(*column), TransferDirection::kHostToDevice);
    if (!transfer_status.ok()) {
      // The column stays host-only this round; the next job run retries.
      AbandonLoad(key);
      continue;
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      auto it = entries_.find(key);
      if (it != entries_.end()) it->second.ready = true;
    }
    load_cv_.notify_all();
  }
}

Status DataCache::Pin(const ColumnPtr& column, const std::string& key) {
  const size_t bytes = EntryBytes(*column);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      it->second.pinned = true;
      it->second.pending_evict = false;
      return Status::OK();
    }
    if (!EvictUntilFits(bytes)) {
      return Status::ResourceExhausted("cannot pin " + key + ": " +
                                       std::to_string(bytes) +
                                       " bytes do not fit in cache");
    }
    Entry entry;
    entry.column = column;
    entry.bytes = bytes;
    entry.ready = false;
    entry.pinned = true;
    entry.last_access = ++access_clock_;
    entries_[key] = std::move(entry);
    used_bytes_ += bytes;
    ++stats_.insertions;
  }
  Status transfer_status =
      simulator_->bus(device_id_).Transfer(bytes, TransferDirection::kHostToDevice);
  if (!transfer_status.ok()) {
    AbandonLoad(key);
    return transfer_status;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(key);
    if (it != entries_.end()) it->second.ready = true;
  }
  load_cv_.notify_all();
  return Status::OK();
}

Status DataCache::AdmitMigrated(const ColumnPtr& column,
                                const std::string& key) {
  const size_t bytes = EntryBytes(*column);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      it->second.pinned = true;
      it->second.pending_evict = false;
      return Status::OK();
    }
    if (!EvictUntilFits(bytes)) {
      return Status::ResourceExhausted("cannot admit migrated " + key + ": " +
                                       std::to_string(bytes) +
                                       " bytes do not fit in cache");
    }
    Entry entry;
    entry.column = column;
    entry.bytes = bytes;
    entry.ready = true;  // bytes already on-device via the D2D path
    entry.pinned = true;
    entry.last_access = ++access_clock_;
    entries_[key] = std::move(entry);
    used_bytes_ += bytes;
    ++stats_.insertions;
  }
  load_cv_.notify_all();
  return Status::OK();
}

void DataCache::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.ref_count > 0 || !it->second.ready) {
      it->second.pending_evict = true;
      ++it;
    } else {
      it = entries_.erase(it);
    }
  }
  used_bytes_ = 0;
  for (const auto& [key, entry] : entries_) used_bytes_ += entry.bytes;
}

size_t DataCache::used_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return used_bytes_;
}

DataCacheStats DataCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void DataCache::ResetStats() {
  std::lock_guard<std::mutex> lock(mutex_);
  stats_ = DataCacheStats();
}

std::vector<std::pair<std::string, ColumnPtr>> DataCache::ResidentColumns()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, ColumnPtr>> resident;
  for (const auto& [key, entry] : entries_) {
    if (entry.ready && !entry.pending_evict) {
      resident.emplace_back(key, entry.column);
    }
  }
  std::sort(resident.begin(), resident.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return resident;
}

std::vector<std::string> DataCache::CachedKeys() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> keys;
  for (const auto& [key, entry] : entries_) {
    if (entry.ready && !entry.pending_evict) keys.push_back(key);
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

}  // namespace hetdb
