# Empty compiler generated dependencies file for fig18_users_ssb.
# This may be replaced when dependencies are built.
