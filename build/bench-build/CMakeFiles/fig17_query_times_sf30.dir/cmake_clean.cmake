file(REMOVE_RECURSE
  "../bench/fig17_query_times_sf30"
  "../bench/fig17_query_times_sf30.pdb"
  "CMakeFiles/fig17_query_times_sf30.dir/fig17_query_times_sf30.cpp.o"
  "CMakeFiles/fig17_query_times_sf30.dir/fig17_query_times_sf30.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_query_times_sf30.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
