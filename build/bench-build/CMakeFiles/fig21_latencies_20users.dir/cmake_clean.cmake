file(REMOVE_RECURSE
  "../bench/fig21_latencies_20users"
  "../bench/fig21_latencies_20users.pdb"
  "CMakeFiles/fig21_latencies_20users.dir/fig21_latencies_20users.cpp.o"
  "CMakeFiles/fig21_latencies_20users.dir/fig21_latencies_20users.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig21_latencies_20users.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
