#include "operators/plan_node.h"

#include <sstream>

#include "common/logging.h"

namespace hetdb {

const char* PlanOpToString(PlanOp op) {
  switch (op) {
    case PlanOp::kScan:
      return "scan";
    case PlanOp::kSelect:
      return "select";
    case PlanOp::kJoin:
      return "join";
    case PlanOp::kAggregate:
      return "aggregate";
    case PlanOp::kSort:
      return "sort";
    case PlanOp::kProject:
      return "project";
    case PlanOp::kLimit:
      return "limit";
    case PlanOp::kFusedPipeline:
      return "fused_pipeline";
  }
  return "?";
}

size_t PlanNode::InputBytes(const std::vector<TablePtr>& inputs) const {
  size_t bytes = 0;
  for (const TablePtr& input : inputs) {
    if (input != nullptr) bytes += input->data_bytes();
  }
  return bytes;
}

size_t PlanNode::IntermediateDeviceBytes(
    const std::vector<TablePtr>& inputs) const {
  (void)inputs;
  return 0;
}

std::string PlanNode::label() const { return PlanOpToString(op_); }

// --- ScanNode ---------------------------------------------------------------

ScanNode::ScanNode(TablePtr table, std::vector<std::string> columns)
    : PlanNode(PlanOp::kScan, {}),
      table_(std::move(table)),
      columns_(std::move(columns)) {
  HETDB_CHECK(table_ != nullptr);
  for (const std::string& name : columns_) {
    Result<ColumnPtr> column = table_->GetColumn(name);
    HETDB_CHECK(column.ok());
    base_columns_.emplace_back(table_->QualifiedName(name), column.value());
  }
}

Result<TablePtr> ScanNode::ComputeResult(
    const std::vector<TablePtr>& inputs) const {
  (void)inputs;
  auto output = std::make_shared<Table>(table_->name());
  for (const auto& [key, column] : base_columns_) {
    column->RecordAccess();
    HETDB_RETURN_NOT_OK(output->AddColumn(column));  // zero-copy alias
  }
  return output;
}

size_t ScanNode::InputBytes(const std::vector<TablePtr>& inputs) const {
  (void)inputs;
  size_t bytes = 0;
  for (const auto& [key, column] : base_columns_) bytes += column->data_bytes();
  return bytes;
}

size_t ScanNode::IntermediateDeviceBytes(
    const std::vector<TablePtr>& inputs) const {
  (void)inputs;
  return 0;
}

std::string ScanNode::label() const {
  std::ostringstream os;
  os << "scan(" << table_->name() << ": " << columns_.size() << " cols)";
  return os.str();
}

// --- SelectNode -------------------------------------------------------------

SelectNode::SelectNode(PlanNodePtr child, ConjunctiveFilter filter)
    : PlanNode(PlanOp::kSelect, {std::move(child)}),
      filter_(std::move(filter)) {}

Result<TablePtr> SelectNode::ComputeResult(
    const std::vector<TablePtr>& inputs) const {
  HETDB_CHECK(inputs.size() == 1 && inputs[0] != nullptr);
  HETDB_ASSIGN_OR_RETURN(std::vector<uint32_t> rows,
                         EvaluateFilter(*inputs[0], filter_));
  return GatherRows(*inputs[0], rows, "select");
}

size_t SelectNode::IntermediateDeviceBytes(
    const std::vector<TablePtr>& inputs) const {
  // Flag array + prefix sums: 1.25x the input (He et al. selection model;
  // with the input buffer and worst-case output this peaks at 3.25x).
  return InputBytes(inputs) + InputBytes(inputs) / 4;
}

std::string SelectNode::label() const {
  return "select(" + filter_.ToString() + ")";
}

// --- JoinNode ---------------------------------------------------------------

JoinNode::JoinNode(PlanNodePtr build, PlanNodePtr probe, std::string build_key,
                   std::string probe_key, JoinOutputSpec output_spec)
    : PlanNode(PlanOp::kJoin, {std::move(build), std::move(probe)}),
      build_key_(std::move(build_key)),
      probe_key_(std::move(probe_key)),
      output_spec_(std::move(output_spec)) {}

Result<TablePtr> JoinNode::ComputeResult(
    const std::vector<TablePtr>& inputs) const {
  HETDB_CHECK(inputs.size() == 2 && inputs[0] != nullptr &&
              inputs[1] != nullptr);
  return HashJoin(*inputs[0], build_key_, *inputs[1], probe_key_, output_spec_,
                  "join");
}

size_t JoinNode::IntermediateDeviceBytes(
    const std::vector<TablePtr>& inputs) const {
  // Hash table over the build side: ~2x the build input.
  HETDB_CHECK(inputs.size() == 2 && inputs[0] != nullptr);
  return 2 * inputs[0]->data_bytes();
}

std::string JoinNode::label() const {
  return "join(" + build_key_ + " = " + probe_key_ + ")";
}

// --- AggregateNode ----------------------------------------------------------

AggregateNode::AggregateNode(PlanNodePtr child,
                             std::vector<std::string> group_by,
                             std::vector<AggregateSpec> aggregates)
    : PlanNode(PlanOp::kAggregate, {std::move(child)}),
      group_by_(std::move(group_by)),
      aggregates_(std::move(aggregates)) {}

Result<TablePtr> AggregateNode::ComputeResult(
    const std::vector<TablePtr>& inputs) const {
  HETDB_CHECK(inputs.size() == 1 && inputs[0] != nullptr);
  return Aggregate(*inputs[0], group_by_, aggregates_, "aggregate");
}

size_t AggregateNode::IntermediateDeviceBytes(
    const std::vector<TablePtr>& inputs) const {
  // Group hash table; bounded by half the input.
  return InputBytes(inputs) / 2;
}

std::string AggregateNode::label() const {
  std::ostringstream os;
  os << "aggregate(";
  for (size_t i = 0; i < aggregates_.size(); ++i) {
    if (i > 0) os << ", ";
    os << AggregateFnToString(aggregates_[i].fn) << "("
       << aggregates_[i].input_column << ")";
  }
  if (!group_by_.empty()) {
    os << " by ";
    for (size_t i = 0; i < group_by_.size(); ++i) {
      if (i > 0) os << ",";
      os << group_by_[i];
    }
  }
  os << ")";
  return os.str();
}

// --- SortNode ---------------------------------------------------------------

SortNode::SortNode(PlanNodePtr child, std::vector<SortKey> keys)
    : PlanNode(PlanOp::kSort, {std::move(child)}), keys_(std::move(keys)) {}

Result<TablePtr> SortNode::ComputeResult(
    const std::vector<TablePtr>& inputs) const {
  HETDB_CHECK(inputs.size() == 1 && inputs[0] != nullptr);
  return Sort(*inputs[0], keys_, "sort");
}

size_t SortNode::IntermediateDeviceBytes(
    const std::vector<TablePtr>& inputs) const {
  // Index array + double buffer.
  return InputBytes(inputs);
}

std::string SortNode::label() const {
  std::ostringstream os;
  os << "sort(";
  for (size_t i = 0; i < keys_.size(); ++i) {
    if (i > 0) os << ", ";
    os << keys_[i].column << (keys_[i].ascending ? " asc" : " desc");
  }
  os << ")";
  return os.str();
}

// --- ProjectNode ------------------------------------------------------------

ProjectNode::ProjectNode(PlanNodePtr child,
                         std::vector<std::string> keep_columns,
                         std::vector<ArithmeticExpr> expressions)
    : PlanNode(PlanOp::kProject, {std::move(child)}),
      keep_columns_(std::move(keep_columns)),
      expressions_(std::move(expressions)) {}

Result<TablePtr> ProjectNode::ComputeResult(
    const std::vector<TablePtr>& inputs) const {
  HETDB_CHECK(inputs.size() == 1 && inputs[0] != nullptr);
  return Project(*inputs[0], keep_columns_, expressions_, "project");
}

std::string ProjectNode::label() const {
  std::ostringstream os;
  os << "project(" << keep_columns_.size() << " cols";
  for (const ArithmeticExpr& e : expressions_) os << ", " << e.output_name;
  os << ")";
  return os.str();
}

// --- LimitNode --------------------------------------------------------------

LimitNode::LimitNode(PlanNodePtr child, size_t limit)
    : PlanNode(PlanOp::kLimit, {std::move(child)}), limit_(limit) {}

Result<TablePtr> LimitNode::ComputeResult(
    const std::vector<TablePtr>& inputs) const {
  HETDB_CHECK(inputs.size() == 1 && inputs[0] != nullptr);
  return Limit(*inputs[0], limit_, "limit");
}

std::string LimitNode::label() const {
  return "limit(" + std::to_string(limit_) + ")";
}

// --- Traversal helpers ------------------------------------------------------

size_t CountPlanNodes(const PlanNodePtr& root) {
  size_t count = 0;
  VisitPlanPostOrder(root, [&count](const PlanNodePtr&) { ++count; });
  return count;
}

void VisitPlanPostOrder(const PlanNodePtr& root,
                        const std::function<void(const PlanNodePtr&)>& fn) {
  if (root == nullptr) return;
  for (const PlanNodePtr& child : root->children()) {
    VisitPlanPostOrder(child, fn);
  }
  fn(root);
}

namespace {

void RegisterPlanNodesImpl(QueryStats* stats, const PlanNodePtr& node,
                           const PlanNode* parent) {
  stats->AddNode(node.get(), parent, PlanOpToString(node->op()),
                 node->label());
  for (const PlanNodePtr& child : node->children()) {
    RegisterPlanNodesImpl(stats, child, node.get());
  }
}

}  // namespace

void RegisterPlanNodes(QueryStats* stats, const PlanNodePtr& root) {
  if (stats == nullptr || root == nullptr) return;
  RegisterPlanNodesImpl(stats, root, nullptr);
}

QueryStatsPtr MakeQueryStats(const PlanNodePtr& root) {
  auto stats = std::make_shared<QueryStats>();
  RegisterPlanNodes(stats.get(), root);
  return stats;
}

}  // namespace hetdb
