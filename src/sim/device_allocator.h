#ifndef HETDB_SIM_DEVICE_ALLOCATOR_H_
#define HETDB_SIM_DEVICE_ALLOCATOR_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

#include "common/status.h"
#include "fault/fault_injector.h"
#include "telemetry/query_stats.h"

namespace hetdb {

class DeviceAllocator;

/// RAII handle for a device heap allocation. Releasing (or destroying) the
/// handle returns the bytes to the allocator. Move-only.
///
/// When the allocation was made inside a QueryStatsScope it carries a
/// shared_ptr to that query's stats, so the free side stays attributable
/// even for allocations the data cache keeps alive long after the query
/// finished.
class DeviceAllocation {
 public:
  DeviceAllocation() = default;
  DeviceAllocation(DeviceAllocator* allocator, size_t bytes,
                   QueryStatsPtr stats = nullptr)
      : allocator_(allocator), bytes_(bytes), stats_(std::move(stats)) {}
  ~DeviceAllocation() { Release(); }

  DeviceAllocation(const DeviceAllocation&) = delete;
  DeviceAllocation& operator=(const DeviceAllocation&) = delete;
  DeviceAllocation(DeviceAllocation&& other) noexcept { *this = std::move(other); }
  DeviceAllocation& operator=(DeviceAllocation&& other) noexcept {
    if (this != &other) {
      Release();
      allocator_ = other.allocator_;
      bytes_ = other.bytes_;
      stats_ = std::move(other.stats_);
      other.allocator_ = nullptr;
      other.bytes_ = 0;
    }
    return *this;
  }

  size_t bytes() const { return bytes_; }
  bool valid() const { return allocator_ != nullptr; }

  /// Returns the bytes to the allocator early.
  void Release();

 private:
  DeviceAllocator* allocator_ = nullptr;
  size_t bytes_ = 0;
  QueryStatsPtr stats_;
};

/// Byte-exact accounting allocator for the co-processor's heap.
///
/// This models the scarce device memory that causes the paper's *heap
/// contention* effect: when concurrently running device operators together
/// request more than `capacity` bytes, `Allocate` fails with
/// ResourceExhausted, the operator aborts, and the engine restarts it on the
/// CPU (Section 2.2 / 2.5.1). Allocation is all-or-nothing and never waits:
/// the paper argues a wait-and-admit scheme would deadlock because operators
/// allocate in several steps while holding earlier allocations.
class DeviceAllocator {
 public:
  /// `fault_injector` (optional) is consulted on every allocation at the
  /// kDeviceAlloc site; it is how tests and chaos runs drive heap-exhaustion
  /// and device-loss failures deterministically. `device_id` identifies the
  /// device this heap belongs to, carried into per-query attribution.
  explicit DeviceAllocator(size_t capacity,
                           FaultInjector* fault_injector = nullptr,
                           int device_id = 0)
      : capacity_(capacity),
        fault_injector_(fault_injector),
        device_id_(device_id) {}

  DeviceAllocator(const DeviceAllocator&) = delete;
  DeviceAllocator& operator=(const DeviceAllocator&) = delete;

  /// Attempts to reserve `bytes`. Fails immediately (no queuing) when the
  /// remaining capacity is insufficient or the fault injector fires.
  Result<DeviceAllocation> Allocate(size_t bytes, const std::string& tag);

  size_t capacity() const { return capacity_; }
  int device_id() const { return device_id_; }
  size_t used() const { return used_.load(std::memory_order_relaxed); }
  size_t available() const {
    const size_t u = used();
    return u >= capacity_ ? 0 : capacity_ - u;
  }

  /// Statistics for Figure 13 (operator aborts) style reporting.
  uint64_t failed_allocations() const {
    return failed_allocations_.load(std::memory_order_relaxed);
  }
  size_t peak_used() const { return peak_used_.load(std::memory_order_relaxed); }
  void ResetStats();

 private:
  friend class DeviceAllocation;
  void Free(size_t bytes);

  const size_t capacity_;
  FaultInjector* fault_injector_;
  const int device_id_ = 0;
  std::atomic<size_t> used_{0};
  std::atomic<size_t> peak_used_{0};
  std::atomic<uint64_t> failed_allocations_{0};
  std::mutex mutex_;  // guards allocate/peak update
};

}  // namespace hetdb

#endif  // HETDB_SIM_DEVICE_ALLOCATOR_H_
