# Empty dependencies file for fig24_lru_lfu.
# This may be replaced when dependencies are built.
