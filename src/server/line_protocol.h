#ifndef HETDB_SERVER_LINE_PROTOCOL_H_
#define HETDB_SERVER_LINE_PROTOCOL_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "server/server.h"

namespace hetdb {

/// Knobs for the text front door.
struct LineProtocolOptions {
  /// Result rows streamed back per query (the rest is summarized by the
  /// ROWS header's total count).
  size_t max_result_rows = 100;
};

/// Minimal line-oriented text protocol over a stream socket — the "front
/// door" a remote client (or netcat) speaks to the serving layer. One
/// request or response per '\n'-terminated line:
///
///   client                          server
///   ------------------------------  -----------------------------------
///                                   HETDB 1 ready
///   HELLO tenant-a                  OK tenant tenant-a
///   DEADLINE 250                    OK deadline 250ms
///   QUERY select ... from ...       ROWS <sent> <total> <cols> <micros>
///                                   <tab-separated row> x sent
///                                   DONE
///   QUERY select bad sql            ERR <Code> <message>
///   BYE                             (connection closes)
///
/// Every QUERY goes through the same Session/admission path as in-process
/// clients: a shed query surfaces as `ERR ResourceExhausted shed: ...`.
///
/// Serve(fd) speaks the protocol over any connected stream fd (socketpair
/// in tests); Listen() opens a TCP listener with an accept loop and one
/// thread per connection.
class LineProtocolServer {
 public:
  explicit LineProtocolServer(Server* server, LineProtocolOptions options = {});
  ~LineProtocolServer();

  LineProtocolServer(const LineProtocolServer&) = delete;
  LineProtocolServer& operator=(const LineProtocolServer&) = delete;

  /// Serves one established connection until BYE/EOF/error. Blocking; takes
  /// ownership of `fd` (closes it on return).
  void Serve(int fd);

  /// Binds 127.0.0.1:`port` (0 = ephemeral, see port()) and starts the
  /// accept loop. Returns the bound port or an error.
  Result<uint16_t> Listen(uint16_t port);
  uint16_t port() const { return port_; }

  /// Stops accepting, closes the listener, and joins connection threads.
  /// Idempotent; the destructor calls it.
  void Stop();

 private:
  void AcceptLoop();

  Server* const server_;
  const LineProtocolOptions options_;

  std::atomic<bool> stopping_{false};
  std::atomic<int> listen_fd_{-1};
  uint16_t port_ = 0;
  std::thread accept_thread_;
  std::mutex threads_mutex_;
  std::vector<std::thread> connection_threads_;
};

}  // namespace hetdb

#endif  // HETDB_SERVER_LINE_PROTOCOL_H_
