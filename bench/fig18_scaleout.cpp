// Scale-out companion to Figure 18(a): the 16-user SSB workload (fixed total
// work) on a simulated machine with 1, 2, 4, and 8 co-processors. Each
// device brings its own heap, data cache, PCIe link, and kernel engine; the
// sharding policy spreads column homes and operator placements across them,
// so GPU-Only — which collapses under heap contention on one device —
// scales out instead of thrashing.
//
//   ./build/bench/fig18_scaleout                    # 1/2/4/8 devices
//   ./build/bench/fig18_scaleout --quick            # 1/2 devices, SF 5
//   ./build/bench/fig18_scaleout --devices 1,4      # explicit sweep
//   ./build/bench/fig18_scaleout --json out.json    # machine-readable

#include <cstring>

#include "bench/bench_util.h"

using namespace hetdb;
using namespace hetdb::bench;

namespace {

std::vector<int> ParseDeviceList(const std::string& spec) {
  std::vector<int> devices;
  size_t start = 0;
  while (start < spec.size()) {
    size_t comma = spec.find(',', start);
    if (comma == std::string::npos) comma = spec.size();
    const int n = std::atoi(spec.substr(start, comma - start).c_str());
    if (n > 0) devices.push_back(n);
    start = comma + 1;
  }
  return devices;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv);
  std::string json_out;
  std::vector<int> devices = args.quick ? std::vector<int>{1, 2}
                                        : std::vector<int>{1, 2, 4, 8};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_out = argv[++i];
    }
    if (std::strcmp(argv[i], "--devices") == 0 && i + 1 < argc) {
      const std::vector<int> parsed = ParseDeviceList(argv[++i]);
      if (!parsed.empty()) devices = parsed;
    }
  }

  const double sf = args.quick ? 5 : 10;
  const int reps = args.quick ? 2 : 4;
  const int users = 16;

  Banner("Figure 18 scale-out",
         "16-user SSB GPU-Only workload time vs device count (SF " +
             std::to_string(static_cast<int>(sf)) + ")");

  SsbGeneratorOptions gen;
  args.ApplySeed(gen);
  gen.scale_factor = sf;
  DatabasePtr db = GenerateSsbDatabase(gen);

  PrintHeader({"devices", "gpu_only[ms]", "speedup", "aborts", "failed",
               "gpu_ops", "h2d[MiB]"});

  std::string json =
      "{\n  \"bench\": \"fig18_scaleout\",\n  \"users\": " +
      std::to_string(users) + ",\n  \"points\": [\n";
  double base_millis = 0;
  bool first_point = true;
  for (const int device_count : devices) {
    SystemConfig config = PaperConfig(args.time_scale);
    config.device_count = device_count;

    WorkloadRunOptions options;
    options.repetitions = reps;
    options.num_users = users;
    options.warmup_repetitions = 1;
    // Warm-up leaves each query home's demand-cached working set in place —
    // that *is* the sharded steady state under query-home placement. The
    // placement-job refresh would re-shard to pure hash affinity and make
    // the first measured repetition re-pay every cross-home load.
    options.refresh_data_placement = false;
    args.ApplySessionKnobs(options);

    const WorkloadRunResult result =
        RunPoint(config, db, Strategy::kGpuOnly, SsbQueries(), options);
    if (base_millis == 0) base_millis = result.wall_millis;
    const double speedup =
        result.wall_millis > 0 ? base_millis / result.wall_millis : 0;

    PrintCell(static_cast<uint64_t>(device_count));
    PrintCell(result.wall_millis);
    PrintCell(speedup);
    PrintCell(result.gpu_aborts);
    PrintCell(result.failed_queries);
    PrintCell(result.gpu_operators);
    PrintCell(static_cast<double>(result.h2d_bytes) / (1 << 20));
    EndRow();

    if (!first_point) json += ",\n";
    first_point = false;
    json += "    {\"devices\": " + std::to_string(device_count) +
            ", \"users\": " + std::to_string(users) +
            ", \"result\": {\"wall_millis\": " +
            std::to_string(result.wall_millis) +
            ", \"speedup\": " + std::to_string(speedup) +
            ", \"gpu_aborts\": " + std::to_string(result.gpu_aborts) +
            ", \"failed_queries\": " + std::to_string(result.failed_queries) +
            ", \"queries_run\": " + std::to_string(result.queries_run) +
            ", \"gpu_operators\": " + std::to_string(result.gpu_operators) +
            ", \"cpu_operators\": " + std::to_string(result.cpu_operators) +
            ", \"h2d_bytes\": " + std::to_string(result.h2d_bytes) + "}}";
  }
  json += "\n  ]\n}\n";

  if (!json_out.empty()) {
    FILE* f = std::fopen(json_out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "error: cannot write %s\n", json_out.c_str());
      return 1;
    }
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("# JSON artifact written to %s\n", json_out.c_str());
  }
  return 0;
}
