file(REMOVE_RECURSE
  "libhetdb_operators.a"
)
