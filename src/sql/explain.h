#ifndef HETDB_SQL_EXPLAIN_H_
#define HETDB_SQL_EXPLAIN_H_

#include <string>

#include "operators/plan_node.h"

namespace hetdb {

/// Renders the physical plan as an indented operator tree (plain `EXPLAIN`):
///
///   sort(d_year)
///     aggregate(sum_revenue by d_year)
///       join(lo_orderdate = d_datekey)
///         ...
///
/// The post-execution annotated form (`EXPLAIN ANALYZE`) is rendered by
/// QueryStats::ToText()/ToJson() instead — it carries the measured
/// per-operator rows, kernel time, placement, PCIe bytes, and heap use.
std::string RenderPlanTree(const PlanNodePtr& root);

/// Same tree as a JSON object (`{"op":..,"label":..,"children":[...]}`) for
/// tooling that consumes EXPLAIN output programmatically.
std::string RenderPlanJson(const PlanNodePtr& root);

}  // namespace hetdb

#endif  // HETDB_SQL_EXPLAIN_H_
