// Google-benchmark microbenchmarks for the compute kernels and substrate
// primitives (real host performance, no simulation). These are not paper
// figures; they characterize the building blocks the simulator wraps.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "cache/data_cache.h"
#include "common/config.h"
#include "common/logging.h"
#include "common/parallel.h"
#include "engine/pipeline_builder.h"
#include "operators/kernels.h"
#include "operators/plan_node.h"
#include "sim/simulator.h"
#include "ssb/ssb_generator.h"
#include "telemetry/exporters.h"
#include "telemetry/trace_recorder.h"

namespace hetdb {
namespace {

DatabasePtr BenchDb() {
  static DatabasePtr db = [] {
    SsbGeneratorOptions options;
    options.scale_factor = 2.0;  // 120k lineorder rows
    return GenerateSsbDatabase(options);
  }();
  return db;
}

SystemConfig NoSimConfig() {
  SystemConfig config;
  config.simulate_time = false;
  return config;
}

/// Applies a kernel backend + worker count for one benchmark run and
/// restores the previous configuration afterwards. The DopBudget capacity is
/// raised to the requested count so the arena actually runs that wide.
class BackendGuard {
 public:
  BackendGuard(KernelBackend backend, int threads)
      : saved_(GlobalKernelConfig()),
        saved_capacity_(DopBudget::Global().capacity()) {
    GlobalKernelConfig().backend = backend;
    GlobalKernelConfig().max_dop = threads;
    DopBudget::Global().SetCapacity(threads);
  }
  ~BackendGuard() {
    GlobalKernelConfig() = saved_;
    DopBudget::Global().SetCapacity(saved_capacity_);
  }

 private:
  KernelConfig saved_;
  int saved_capacity_;
};

// The Scalar/Parallel pairs below measure the same operation on the two
// kernel backends; scripts/bench_kernels.sh records both and reports the
// speedup Parallel/threads:8 achieves over Scalar (BENCH_kernels.json).

void RunFilterBench(benchmark::State& state) {
  DatabasePtr db = BenchDb();
  TablePtr lineorder = db->GetTable("lineorder").value();
  const ConjunctiveFilter filter = ConjunctiveFilter::And(
      {Predicate::Between("lo_discount", int64_t{4}, int64_t{6}),
       Predicate::Between("lo_quantity", int64_t{26}, int64_t{35})});
  for (auto _ : state) {
    auto rows = EvaluateFilter(*lineorder, filter);
    benchmark::DoNotOptimize(rows);
  }
  state.SetBytesProcessed(state.iterations() * 2 * 4 *
                          static_cast<int64_t>(lineorder->num_rows()));
}

void BM_FilterScalar(benchmark::State& state) {
  BackendGuard guard(KernelBackend::kScalar, 1);
  RunFilterBench(state);
}
BENCHMARK(BM_FilterScalar);

void BM_FilterParallel(benchmark::State& state) {
  BackendGuard guard(KernelBackend::kMorselParallel,
                     static_cast<int>(state.range(0)));
  RunFilterBench(state);
}
BENCHMARK(BM_FilterParallel)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void RunHashJoinBench(benchmark::State& state) {
  DatabasePtr db = BenchDb();
  TablePtr lineorder = db->GetTable("lineorder").value();
  TablePtr supplier = db->GetTable("supplier").value();
  JoinOutputSpec spec;
  spec.build_columns = {"s_nation"};
  spec.probe_columns = {"lo_revenue"};
  for (auto _ : state) {
    auto joined = HashJoin(*supplier, "s_suppkey", *lineorder, "lo_suppkey",
                           spec, "j");
    benchmark::DoNotOptimize(joined);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(lineorder->num_rows()));
}

void BM_HashJoinScalar(benchmark::State& state) {
  BackendGuard guard(KernelBackend::kScalar, 1);
  RunHashJoinBench(state);
}
BENCHMARK(BM_HashJoinScalar);

void BM_HashJoinParallel(benchmark::State& state) {
  BackendGuard guard(KernelBackend::kMorselParallel,
                     static_cast<int>(state.range(0)));
  RunHashJoinBench(state);
}
BENCHMARK(BM_HashJoinParallel)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void RunAggregateBench(benchmark::State& state) {
  DatabasePtr db = BenchDb();
  TablePtr lineorder = db->GetTable("lineorder").value();
  for (auto _ : state) {
    auto result = Aggregate(*lineorder, {"lo_discount"},
                            {{AggregateFn::kSum, "lo_revenue", "rev"}}, "a");
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(lineorder->num_rows()));
}

void BM_AggregateScalar(benchmark::State& state) {
  BackendGuard guard(KernelBackend::kScalar, 1);
  RunAggregateBench(state);
}
BENCHMARK(BM_AggregateScalar);

void BM_AggregateParallel(benchmark::State& state) {
  BackendGuard guard(KernelBackend::kMorselParallel,
                     static_cast<int>(state.range(0)));
  RunAggregateBench(state);
}
BENCHMARK(BM_AggregateParallel)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// --- Operator fusion ---------------------------------------------------------
// BM_PipelineUnfused / BM_PipelineFused run the same filter -> join-probe ->
// aggregate chain operator-at-a-time (full intermediate materialization
// after every member) and as one fused pipeline (selection vectors + match
// tuples, zero intermediates). scripts/check_bench.py gates on the
// unfused/fused ratio. A mildly selective filter (~50%) keeps the
// intermediates large, which is the workload fusion is for.

PlanNodePtr PipelinePlan(const DatabasePtr& db) {
  PlanNodePtr scan = std::make_shared<ScanNode>(
      db->GetTable("lineorder").value(),
      std::vector<std::string>{"lo_suppkey", "lo_quantity", "lo_revenue"});
  PlanNodePtr select = std::make_shared<SelectNode>(
      std::move(scan), ConjunctiveFilter::And({Predicate::Between(
                           "lo_quantity", int64_t{14}, int64_t{37})}));
  PlanNodePtr dim = std::make_shared<ScanNode>(
      db->GetTable("supplier").value(),
      std::vector<std::string>{"s_suppkey", "s_nation"});
  JoinOutputSpec spec;
  spec.build_columns = {"s_nation"};
  spec.probe_columns = {"lo_revenue"};
  PlanNodePtr join = std::make_shared<JoinNode>(
      std::move(dim), std::move(select), "s_suppkey", "lo_suppkey", spec);
  return std::make_shared<AggregateNode>(
      std::move(join), std::vector<std::string>{"s_nation"},
      std::vector<AggregateSpec>{{AggregateFn::kSum, "lo_revenue", "rev"}});
}

/// Operator-at-a-time execution of a plan tree: exactly what the query
/// executor does per node, minus placement/telemetry (kernel time only).
TablePtr ExecutePlanTree(const PlanNodePtr& node) {
  std::vector<TablePtr> inputs;
  inputs.reserve(node->children().size());
  for (const PlanNodePtr& child : node->children()) {
    inputs.push_back(ExecutePlanTree(child));
  }
  auto result = node->ComputeResult(inputs);
  HETDB_CHECK(result.ok());
  return result.value();
}

void RunPipelineBench(benchmark::State& state, bool fusion) {
  DatabasePtr db = BenchDb();
  GlobalKernelConfig().fusion = fusion;
  PlanNodePtr plan = PipelinePlan(db);
  if (fusion) plan = FusePipelines(plan);
  const size_t rows = db->GetTable("lineorder").value()->num_rows();
  for (auto _ : state) {
    TablePtr result = ExecutePlanTree(plan);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(rows));
}

void BM_PipelineUnfused(benchmark::State& state) {
  BackendGuard guard(KernelBackend::kMorselParallel,
                     static_cast<int>(state.range(0)));
  RunPipelineBench(state, /*fusion=*/false);
}
BENCHMARK(BM_PipelineUnfused)->Arg(1)->Arg(8);

void BM_PipelineFused(benchmark::State& state) {
  BackendGuard guard(KernelBackend::kMorselParallel,
                     static_cast<int>(state.range(0)));
  RunPipelineBench(state, /*fusion=*/true);
}
BENCHMARK(BM_PipelineFused)->Arg(1)->Arg(8);

void BM_Sort(benchmark::State& state) {
  DatabasePtr db = BenchDb();
  TablePtr customer = db->GetTable("customer").value();
  for (auto _ : state) {
    auto result = Sort(*customer, {{"c_city", true}, {"c_custkey", false}},
                       "s");
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(customer->num_rows()));
}
BENCHMARK(BM_Sort);

void BM_DeviceAllocator(benchmark::State& state) {
  DeviceAllocator allocator(1ull << 30);
  for (auto _ : state) {
    auto a = allocator.Allocate(4096, "x");
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_DeviceAllocator);

void BM_CacheHit(benchmark::State& state) {
  Simulator sim(NoSimConfig());
  DataCache cache(1ull << 20, EvictionPolicy::kLfu, &sim);
  auto column = std::make_shared<Int32Column>(
      "c", std::vector<int32_t>(1024, 1));
  { auto warm = cache.RequireOnDevice(column, "t.c"); }
  for (auto _ : state) {
    auto access = cache.RequireOnDevice(column, "t.c");
    benchmark::DoNotOptimize(access);
  }
}
BENCHMARK(BM_CacheHit);

// --- Telemetry overhead ------------------------------------------------------
// The acceptance bar for the telemetry subsystem: a *disabled* instrumented
// site is one relaxed atomic load — nanoseconds, i.e. <2% on any kernel.

void BM_TraceSiteDisabled(benchmark::State& state) {
  TraceRecorder::Global().SetEnabled(false);
  for (auto _ : state) {
    TraceSpan span;
    if (TraceRecorder::enabled()) {
      span.Begin("bench span", "bench");
    }
    benchmark::DoNotOptimize(&span);
  }
}
BENCHMARK(BM_TraceSiteDisabled);

void BM_TraceSiteEnabled(benchmark::State& state) {
  TraceRecorder::Global().SetEnabled(true);
  for (auto _ : state) {
    TraceSpan span;
    if (TraceRecorder::enabled()) {
      span.Begin("bench span", "bench");
    }
    benchmark::DoNotOptimize(&span);
  }
  TraceRecorder::Global().SetEnabled(false);
  TraceRecorder::Global().Clear();
}
BENCHMARK(BM_TraceSiteEnabled);

}  // namespace
}  // namespace hetdb

// Custom main instead of BENCHMARK_MAIN(): peel off --trace-out=FILE (the
// flag every bench binary supports) before google-benchmark rejects it as
// unrecognized.
int main(int argc, char** argv) {
  std::vector<char*> kept;
  std::string trace_out;
  for (int i = 0; i < argc; ++i) {
    if (std::strncmp(argv[i], "--trace-out=", 12) == 0) {
      trace_out = argv[i] + 12;
    } else if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      trace_out = argv[++i];
    } else {
      kept.push_back(argv[i]);
    }
  }
  if (!trace_out.empty()) {
    static std::string path = trace_out;
    hetdb::TraceRecorder::Global().SetEnabled(true);
    std::atexit([] {
      const auto events = hetdb::TraceRecorder::Global().Snapshot();
      (void)hetdb::WriteChromeTrace(path, events);
      std::fprintf(stderr, "# wrote %zu trace events to %s\n", events.size(),
                   path.c_str());
    });
  }
  int kept_argc = static_cast<int>(kept.size());
  benchmark::Initialize(&kept_argc, kept.data());
  if (benchmark::ReportUnrecognizedArguments(kept_argc, kept.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
