#include "server/server.h"

#include <utility>

#include "common/logging.h"
#include "engine/pipeline_builder.h"
#include "sql/planner.h"
#include "telemetry/telemetry.h"

namespace hetdb {

namespace {

int ResolveDispatchers(const ServerOptions& options) {
  if (options.dispatchers > 0) return options.dispatchers;
  return options.admission.max_concurrency;
}

/// Breaker severity for admission: open is worse than half-open is worse
/// than closed. (The enum's numeric order is kClosed < kOpen < kHalfOpen,
/// so std::max over raw values would rank half-open above open.)
int BreakerSeverity(DeviceCircuitBreaker::State state) {
  switch (state) {
    case DeviceCircuitBreaker::State::kClosed:
      return 0;
    case DeviceCircuitBreaker::State::kHalfOpen:
      return 1;
    case DeviceCircuitBreaker::State::kOpen:
      return 2;
  }
  return 0;
}

std::function<GovernorSignals()> MakeEngineSignals(EngineContext* ctx) {
  return [ctx] {
    // Admission throttles on the worst device: one thrashing or tripped
    // device is enough reason to slow intake, even if its siblings are calm.
    GovernorSignals signals;
    signals.thrash = ctx->detector(0).state();
    signals.breaker = ctx->breaker(0).state();
    for (int d = 1; d < ctx->device_count(); ++d) {
      const ThrashingDetector::State thrash = ctx->detector(d).state();
      if (static_cast<int>(thrash) > static_cast<int>(signals.thrash)) {
        signals.thrash = thrash;  // calm < pressure < thrashing, in order
      }
      const DeviceCircuitBreaker::State breaker = ctx->breaker(d).state();
      if (BreakerSeverity(breaker) > BreakerSeverity(signals.breaker)) {
        signals.breaker = breaker;
      }
    }
    signals.brownout_level = ctx->brownout().level_int();
    return signals;
  };
}

}  // namespace

Server::Server(EngineContext* ctx, ServerOptions options)
    : ctx_(ctx),
      options_(std::move(options)),
      runner_(ctx, options_.strategy),
      hedge_runner_(ctx, Strategy::kCpuOnly),
      admission_(options_.admission, &ctx->telemetry().registry(),
                 &ctx->flight_recorder(),
                 options_.governor_follows_engine ? MakeEngineSignals(ctx)
                                                  : nullptr) {
  // The brownout controller reads admission state (queue depth, shed rate)
  // as one of its escalation signals — the serving layer is where overload
  // becomes visible first.
  ctx_->brownout().SetAdmissionProbe([this] {
    BrownoutAdmissionProbe probe;
    probe.queued = static_cast<int>(admission_.queued());
    probe.in_flight = admission_.in_flight();
    probe.offered = admission_.offered();
    probe.shed = admission_.shed_total();
    return probe;
  });
  const int dispatchers = ResolveDispatchers(options_);
  dispatchers_.reserve(dispatchers);
  for (int i = 0; i < dispatchers; ++i) {
    dispatchers_.emplace_back([this] { DispatcherLoop(); });
  }
}

Server::~Server() { Shutdown(); }

void Server::RegisterTenant(const TenantSpec& spec) {
  admission_.RegisterTenant(spec);
}

SessionPtr Server::OpenSession(const std::string& tenant) {
  return SessionPtr(new Session(this, tenant));
}

std::future<Result<TablePtr>> Server::Submit(const std::string& tenant,
                                             PlanNodePtr plan,
                                             SubmitOptions options) {
  // Fuse before stats registration so per-node attribution (and the plan
  // the dispatcher executes) follow the rewritten shape. Declined when the
  // caller pre-registered stats against the unfused plan. Brownout L1+
  // caps fusion at single-join chains (see pipeline_builder.h).
  plan = OptimizePlan(
      plan, options.stats.get(),
      ctx_->brownout().AllowMultiJoinFusion() ? -1 : 1);
  auto query = std::make_unique<QueuedQuery>();
  query->tenant = tenant;
  query->cost = options.cost;
  query->controls.cancel = options.cancel;
  query->controls.deadline = options.deadline;
  if (options.stats != nullptr) {
    query->controls.stats = std::move(options.stats);
    RegisterPlanNodes(query->controls.stats.get(), plan);
  } else {
    query->controls.stats = MakeQueryStats(plan);
  }
  QueryStats& stats = *query->controls.stats;
  if (stats.query_id() == 0) stats.set_query_id(Telemetry::NextQueryId());
  if (!options.name.empty()) stats.set_name(options.name);
  query->plan = std::move(plan);
  std::future<Result<TablePtr>> future = query->promise.get_future();
  admission_.Offer(std::move(query));
  return future;
}

void Server::DispatcherLoop() {
  for (;;) {
    QueuedQueryPtr query = admission_.Take();
    if (query == nullptr) return;
    const auto started = std::chrono::steady_clock::now();
    // Capture what hedging classification needs before RunQuery consumes
    // the controls.
    const CancelToken cancel = query->controls.cancel;
    const QueryStatsPtr stats = query->controls.stats;
    Result<TablePtr> result =
        runner_.RunQuery(query->plan, std::move(query->controls));
    if (!result.ok() && options_.hedge_cpu_replay) {
      // Hedge only engine-side deaths: a watchdog kill (fired through the
      // same cancel token a client would use — WasKilled disambiguates) or
      // a device-side abort that escaped the executor's own CPU fallback.
      // Client cancels stay cancelled; deadline misses stay missed (the
      // admission layer already classified them); shed queries never reach
      // this loop.
      const uint64_t query_id = stats != nullptr ? stats->query_id() : 0;
      const bool watchdog_killed = ctx_->watchdog().WasKilled(query_id);
      const bool client_cancel = !watchdog_killed && cancel.cancelled();
      const StatusCode code = result.status().code();
      const bool device_abort = code == StatusCode::kDeviceLost ||
                                code == StatusCode::kUnavailable ||
                                code == StatusCode::kAborted;
      if (!client_cancel && (watchdog_killed || device_abort)) {
        const std::string name =
            stats != nullptr ? stats->name() : std::string();
        result = HedgeReplay(query->plan, name, query_id,
                             watchdog_killed ? "watchdog_kill"
                                             : StatusCodeToString(code));
      }
    }
    const int64_t service_micros =
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - started)
            .count();
    const bool ok = result.ok();
    query->promise.set_value(std::move(result));
    admission_.OnComplete(ok, service_micros);
  }
}

Result<TablePtr> Server::HedgeReplay(const PlanNodePtr& plan,
                                     const std::string& name,
                                     uint64_t query_id,
                                     const std::string& reason) {
  hedge_attempts_.fetch_add(1, std::memory_order_relaxed);
  ctx_->telemetry().registry().GetCounter("server.hedge_attempts").Increment();
  QueryControls controls;
  controls.stats = MakeQueryStats(plan);
  controls.stats->set_name(name.empty() ? "hedge" : name + ".hedge");
  if (options_.hedge_budget_ms > 0) {
    controls.deadline = std::chrono::steady_clock::now() +
                        std::chrono::microseconds(static_cast<int64_t>(
                            options_.hedge_budget_ms * 1000.0));
  }
  Result<TablePtr> replay = hedge_runner_.RunQuery(plan, std::move(controls));
  if (replay.ok()) {
    hedge_successes_.fetch_add(1, std::memory_order_relaxed);
    ctx_->telemetry()
        .registry()
        .GetCounter("server.hedge_successes")
        .Increment();
  }
  ctx_->flight_recorder().RecordStateTransition(
      "server.hedge", "q" + std::to_string(query_id) + ":" + reason,
      replay.ok() ? "success" : "failed:" + replay.status().ToString());
  return replay;
}

void Server::Shutdown() {
  // Drop the admission probe first: after Shutdown the controller must not
  // call back into a half-destroyed server.
  ctx_->brownout().SetAdmissionProbe(nullptr);
  admission_.Stop();
  for (std::thread& thread : dispatchers_) {
    if (thread.joinable()) thread.join();
  }
  dispatchers_.clear();
}

// --- Session --------------------------------------------------------------

std::future<Result<TablePtr>> Session::Submit(PlanNodePtr plan,
                                              SubmitOptions options) {
  return server_->Submit(tenant_, std::move(plan), std::move(options));
}

std::future<Result<TablePtr>> Session::SubmitSql(const std::string& sql,
                                                 SubmitOptions options) {
  Result<PlanNodePtr> plan = PlanSql(sql, *server_->ctx().database());
  if (!plan.ok()) {
    std::promise<Result<TablePtr>> failed;
    failed.set_value(plan.status());
    return failed.get_future();
  }
  return Submit(std::move(plan).value(), std::move(options));
}

Result<TablePtr> Session::Execute(PlanNodePtr plan, SubmitOptions options) {
  return Submit(std::move(plan), std::move(options)).get();
}

Result<TablePtr> Session::ExecuteSql(const std::string& sql,
                                     SubmitOptions options) {
  return SubmitSql(sql, std::move(options)).get();
}

}  // namespace hetdb
