#include "telemetry/histogram.h"

#include <algorithm>
#include <bit>
#include <cmath>

namespace hetdb {

namespace {

constexpr int kSubBucketShift = 4;  // log2(kSubBuckets)

}  // namespace

int Histogram::BucketIndex(int64_t value) {
  if (value < kSubBuckets) return value < 0 ? 0 : static_cast<int>(value);
  const uint64_t v = static_cast<uint64_t>(value);
  const int exponent = 63 - std::countl_zero(v);  // >= kSubBucketShift
  const int sub = static_cast<int>((v >> (exponent - kSubBucketShift)) &
                                   (kSubBuckets - 1));
  return (exponent - kSubBucketShift) * kSubBuckets + kSubBuckets + sub;
}

int64_t Histogram::BucketLowerBound(int index) {
  if (index < kSubBuckets) return index;
  const int exponent = (index - kSubBuckets) / kSubBuckets + kSubBucketShift;
  const int sub = (index - kSubBuckets) % kSubBuckets;
  return static_cast<int64_t>(kSubBuckets + sub) << (exponent - kSubBucketShift);
}

int64_t Histogram::BucketUpperBound(int index) {
  if (index < kSubBuckets) return index + 1;
  const int exponent = (index - kSubBuckets) / kSubBuckets + kSubBucketShift;
  return BucketLowerBound(index) + (int64_t{1} << (exponent - kSubBucketShift));
}

void Histogram::Record(int64_t value) {
  if (value < 0) value = 0;
  buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  int64_t seen_min = min_.load(std::memory_order_relaxed);
  while (value < seen_min &&
         !min_.compare_exchange_weak(seen_min, value,
                                     std::memory_order_relaxed)) {
  }
  int64_t seen_max = max_.load(std::memory_order_relaxed);
  while (value > seen_max &&
         !max_.compare_exchange_weak(seen_max, value,
                                     std::memory_order_relaxed)) {
  }
}

int64_t Histogram::min() const {
  const int64_t value = min_.load(std::memory_order_relaxed);
  return value == INT64_MAX ? 0 : value;
}

double Histogram::mean() const {
  const uint64_t n = count();
  return n == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(n);
}

int64_t Histogram::Percentile(double p) const {
  const uint64_t n = count();
  if (n == 0) return 0;
  p = std::clamp(p, 0.0, 100.0);
  if (p == 100.0) return max();  // the maximum is tracked exactly
  const uint64_t target = std::max<uint64_t>(
      1, static_cast<uint64_t>(std::ceil(p / 100.0 * static_cast<double>(n))));
  uint64_t cumulative = 0;
  for (int index = 0; index < kBucketCount; ++index) {
    cumulative += buckets_[index].load(std::memory_order_relaxed);
    if (cumulative >= target) {
      const int64_t midpoint =
          (BucketLowerBound(index) + BucketUpperBound(index) - 1) / 2;
      return std::clamp(midpoint, min(), max());
    }
  }
  return max();
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snapshot;
  snapshot.count = count();
  snapshot.sum = sum();
  snapshot.min = min();
  snapshot.max = max();
  snapshot.mean = mean();
  snapshot.p50 = Percentile(50);
  snapshot.p95 = Percentile(95);
  snapshot.p99 = Percentile(99);
  return snapshot;
}

void Histogram::Reset() {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(INT64_MAX, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

}  // namespace hetdb
