# Empty compiler generated dependencies file for custom_table.
# This may be replaced when dependencies are built.
