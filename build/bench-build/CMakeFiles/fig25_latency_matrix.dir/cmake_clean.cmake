file(REMOVE_RECURSE
  "../bench/fig25_latency_matrix"
  "../bench/fig25_latency_matrix.pdb"
  "CMakeFiles/fig25_latency_matrix.dir/fig25_latency_matrix.cpp.o"
  "CMakeFiles/fig25_latency_matrix.dir/fig25_latency_matrix.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig25_latency_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
