#include "workload/user_sim.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>
#include <vector>

namespace hetdb {

double SampleThinkTimeMs(Rng& rng, double mean_ms) {
  if (mean_ms <= 0) return 0;
  // Inverse-transform exponential; clamp the uniform away from 0 so a
  // pathological draw cannot produce an unbounded sleep.
  const double u = std::max(rng.NextDouble(), 1e-12);
  return -mean_ms * std::log(u);
}

void RunUserLoops(const UserLoopOptions& options, const UserLoopBody& body) {
  const int num_users = std::max(1, options.num_users);
  std::vector<std::thread> sessions;
  sessions.reserve(num_users);
  for (int user = 0; user < num_users; ++user) {
    sessions.emplace_back([&options, &body, user] {
      Rng rng(options.seed + static_cast<uint64_t>(user));
      while (body(user, rng)) {
        if (options.think_time_ms > 0) {
          const double think_ms = SampleThinkTimeMs(rng, options.think_time_ms);
          std::this_thread::sleep_for(
              std::chrono::duration<double, std::milli>(think_ms));
        }
      }
    });
  }
  for (std::thread& session : sessions) session.join();
}

}  // namespace hetdb
