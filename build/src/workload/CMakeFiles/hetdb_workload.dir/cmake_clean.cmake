file(REMOVE_RECURSE
  "CMakeFiles/hetdb_workload.dir/workload.cc.o"
  "CMakeFiles/hetdb_workload.dir/workload.cc.o.d"
  "libhetdb_workload.a"
  "libhetdb_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetdb_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
