#include "sql/parser.h"

#include "sql/lexer.h"

namespace hetdb {

namespace {

std::string AggName(AggregateFn fn) { return AggregateFnToString(fn); }

/// Recursive-descent parser over the token stream.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<SelectStatement> Parse() {
    SelectStatement statement;
    HETDB_RETURN_NOT_OK(ExpectKeyword("SELECT"));
    HETDB_RETURN_NOT_OK(ParseSelectList(&statement));
    HETDB_RETURN_NOT_OK(ExpectKeyword("FROM"));
    HETDB_RETURN_NOT_OK(ParseTableList(&statement));
    if (AcceptKeyword("WHERE")) {
      HETDB_RETURN_NOT_OK(ParseWhere(&statement));
    }
    if (AcceptKeyword("GROUP")) {
      HETDB_RETURN_NOT_OK(ExpectKeyword("BY"));
      HETDB_RETURN_NOT_OK(ParseColumnList(&statement.group_by));
    }
    if (AcceptKeyword("ORDER")) {
      HETDB_RETURN_NOT_OK(ExpectKeyword("BY"));
      HETDB_RETURN_NOT_OK(ParseOrderBy(&statement));
    }
    if (AcceptKeyword("LIMIT")) {
      if (Peek().kind != TokenKind::kInteger) {
        return Error("expected integer after LIMIT");
      }
      statement.limit = static_cast<size_t>(Next().int_value);
    }
    (void)AcceptSymbol(";");
    if (Peek().kind != TokenKind::kEnd) {
      return Error("unexpected trailing input");
    }
    return statement;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    const size_t index = std::min(position_ + ahead, tokens_.size() - 1);
    return tokens_[index];
  }
  const Token& Next() { return tokens_[std::min(position_++, tokens_.size() - 1)]; }

  bool AcceptKeyword(const char* word) {
    if (Peek().IsKeyword(word)) {
      ++position_;
      return true;
    }
    return false;
  }
  bool AcceptSymbol(const char* symbol) {
    if (Peek().IsSymbol(symbol)) {
      ++position_;
      return true;
    }
    return false;
  }
  Status ExpectKeyword(const char* word) {
    if (!AcceptKeyword(word)) {
      return Error(std::string("expected ") + word);
    }
    return Status::OK();
  }
  Status ExpectSymbol(const char* symbol) {
    if (!AcceptSymbol(symbol)) {
      return Error(std::string("expected '") + symbol + "'");
    }
    return Status::OK();
  }
  Status Error(const std::string& message) const {
    return Status::InvalidArgument(message + " at position " +
                                   std::to_string(Peek().position) +
                                   " (near '" + Peek().text + "')");
  }

  /// Identifier, with optional "table." qualifier stripped.
  Result<std::string> ParseColumnName() {
    if (Peek().kind != TokenKind::kIdentifier) {
      return Error("expected column name");
    }
    std::string name = Next().text;
    if (AcceptSymbol(".")) {
      if (Peek().kind != TokenKind::kIdentifier) {
        return Error("expected column after '.'");
      }
      name = Next().text;  // column names are globally unique in HetDB
    }
    return name;
  }

  Result<std::optional<ArithmeticExpr::Op>> ParseArithOp() {
    if (AcceptSymbol("*")) return std::optional(ArithmeticExpr::Op::kMul);
    if (AcceptSymbol("+")) return std::optional(ArithmeticExpr::Op::kAdd);
    if (AcceptSymbol("-")) return std::optional(ArithmeticExpr::Op::kSub);
    if (AcceptSymbol("/")) return std::optional(ArithmeticExpr::Op::kDiv);
    return std::optional<ArithmeticExpr::Op>();
  }

  /// column [op (column | number)]
  Result<SqlExpr> ParseExpr() {
    SqlExpr expr;
    HETDB_ASSIGN_OR_RETURN(expr.column, ParseColumnName());
    HETDB_ASSIGN_OR_RETURN(std::optional<ArithmeticExpr::Op> op,
                           ParseArithOp());
    if (!op.has_value()) return expr;
    expr.has_arithmetic = true;
    expr.op = *op;
    if (Peek().kind == TokenKind::kInteger) {
      expr.rhs_is_constant = true;
      expr.rhs_constant = static_cast<double>(Next().int_value);
    } else if (Peek().kind == TokenKind::kFloat) {
      expr.rhs_is_constant = true;
      expr.rhs_constant = Next().float_value;
    } else {
      HETDB_ASSIGN_OR_RETURN(expr.rhs_column, ParseColumnName());
    }
    return expr;
  }

  Result<std::optional<AggregateFn>> ParseAggregateFn() {
    if (AcceptKeyword("SUM")) return std::optional(AggregateFn::kSum);
    if (AcceptKeyword("COUNT")) return std::optional(AggregateFn::kCount);
    if (AcceptKeyword("MIN")) return std::optional(AggregateFn::kMin);
    if (AcceptKeyword("MAX")) return std::optional(AggregateFn::kMax);
    if (AcceptKeyword("AVG")) return std::optional(AggregateFn::kAvg);
    return std::optional<AggregateFn>();
  }

  Status ParseSelectList(SelectStatement* statement) {
    do {
      SelectItem item;
      HETDB_ASSIGN_OR_RETURN(std::optional<AggregateFn> fn,
                             ParseAggregateFn());
      if (fn.has_value()) {
        item.kind = SelectItem::Kind::kAggregate;
        item.fn = *fn;
        HETDB_RETURN_NOT_OK(ExpectSymbol("("));
        if (*fn == AggregateFn::kCount && AcceptSymbol("*")) {
          // COUNT(*): empty argument.
        } else {
          HETDB_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        }
        HETDB_RETURN_NOT_OK(ExpectSymbol(")"));
      } else {
        item.kind = SelectItem::Kind::kExpression;
        HETDB_ASSIGN_OR_RETURN(item.expr, ParseExpr());
      }
      if (AcceptKeyword("AS")) {
        if (Peek().kind != TokenKind::kIdentifier) {
          return Error("expected alias after AS");
        }
        item.alias = Next().text;
      }
      statement->items.push_back(std::move(item));
    } while (AcceptSymbol(","));
    return Status::OK();
  }

  Status ParseTableList(SelectStatement* statement) {
    do {
      if (Peek().kind != TokenKind::kIdentifier) {
        return Error("expected table name");
      }
      statement->tables.push_back(Next().text);
    } while (AcceptSymbol(","));
    return Status::OK();
  }

  Result<Value> ParseLiteral() {
    const Token& token = Peek();
    switch (token.kind) {
      case TokenKind::kInteger:
        return Value(Next().int_value);
      case TokenKind::kFloat:
        return Value(Next().float_value);
      case TokenKind::kString:
        return Value(Next().text);
      default:
        return Error("expected literal");
    }
  }

  Status ParseWhere(SelectStatement* statement) {
    do {
      SqlPredicate predicate;
      HETDB_ASSIGN_OR_RETURN(predicate.column, ParseColumnName());
      if (AcceptKeyword("BETWEEN")) {
        predicate.kind = SqlPredicate::Kind::kBetween;
        HETDB_ASSIGN_OR_RETURN(predicate.value, ParseLiteral());
        HETDB_RETURN_NOT_OK(ExpectKeyword("AND"));
        HETDB_ASSIGN_OR_RETURN(predicate.value2, ParseLiteral());
      } else if (AcceptKeyword("IN")) {
        predicate.kind = SqlPredicate::Kind::kIn;
        HETDB_RETURN_NOT_OK(ExpectSymbol("("));
        do {
          HETDB_ASSIGN_OR_RETURN(Value value, ParseLiteral());
          predicate.in_list.push_back(std::move(value));
        } while (AcceptSymbol(","));
        HETDB_RETURN_NOT_OK(ExpectSymbol(")"));
      } else {
        CompareOp op;
        if (AcceptSymbol("=")) {
          op = CompareOp::kEq;
        } else if (AcceptSymbol("<>")) {
          op = CompareOp::kNe;
        } else if (AcceptSymbol("<=")) {
          op = CompareOp::kLe;
        } else if (AcceptSymbol(">=")) {
          op = CompareOp::kGe;
        } else if (AcceptSymbol("<")) {
          op = CompareOp::kLt;
        } else if (AcceptSymbol(">")) {
          op = CompareOp::kGt;
        } else {
          return Error("expected comparison operator");
        }
        if (Peek().kind == TokenKind::kIdentifier) {
          if (op != CompareOp::kEq) {
            return Error("column-to-column predicates support only '='");
          }
          predicate.kind = SqlPredicate::Kind::kColumnEq;
          HETDB_ASSIGN_OR_RETURN(predicate.rhs_column, ParseColumnName());
        } else {
          predicate.kind = SqlPredicate::Kind::kCompare;
          predicate.op = op;
          HETDB_ASSIGN_OR_RETURN(predicate.value, ParseLiteral());
        }
      }
      statement->where.push_back(std::move(predicate));
    } while (AcceptKeyword("AND"));
    return Status::OK();
  }

  Status ParseColumnList(std::vector<std::string>* columns) {
    do {
      HETDB_ASSIGN_OR_RETURN(std::string name, ParseColumnName());
      columns->push_back(std::move(name));
    } while (AcceptSymbol(","));
    return Status::OK();
  }

  Status ParseOrderBy(SelectStatement* statement) {
    do {
      SortKey key;
      HETDB_ASSIGN_OR_RETURN(key.column, ParseColumnName());
      if (AcceptKeyword("DESC")) {
        key.ascending = false;
      } else {
        (void)AcceptKeyword("ASC");
      }
      statement->order_by.push_back(std::move(key));
    } while (AcceptSymbol(","));
    return Status::OK();
  }

  std::vector<Token> tokens_;
  size_t position_ = 0;
};

}  // namespace

std::string SelectItem::OutputName() const {
  if (!alias.empty()) return alias;
  if (kind == Kind::kAggregate) {
    if (expr.column.empty()) return std::string(AggName(fn)) + "_all";
    return std::string(AggName(fn)) + "_" + expr.column;
  }
  if (expr.has_arithmetic) return expr.column + "_expr";
  return expr.column;
}

Result<SelectStatement> ParseSelect(const std::string& sql) {
  HETDB_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser parser(std::move(tokens));
  return parser.Parse();
}

Result<SqlStatement> ParseStatement(const std::string& sql) {
  HETDB_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  SqlStatement statement;
  size_t skip = 0;
  if (!tokens.empty() && tokens[0].IsKeyword("EXPLAIN")) {
    skip = 1;
    statement.explain = ExplainMode::kPlan;
    if (tokens.size() > 1 && tokens[1].IsKeyword("ANALYZE")) {
      skip = 2;
      statement.explain = ExplainMode::kAnalyze;
    }
  }
  tokens.erase(tokens.begin(),
               tokens.begin() + static_cast<std::ptrdiff_t>(skip));
  Parser parser(std::move(tokens));
  HETDB_ASSIGN_OR_RETURN(statement.select, parser.Parse());
  return statement;
}

}  // namespace hetdb
