// Availability-under-chaos benchmark (fig26): 16 closed-loop SSB users drive
// the serving front-end while a scripted chaos timeline (ScenarioOrchestrator)
// walks the machine through device loss, a PCIe/kernel latency storm, and a
// device-heap squeeze, then lets it recover.
//
// The point under test is *coordinated graceful degradation*: the brownout
// controller steps its ladder (L0..L3) on the same signals the local
// defenses use, the stuck-query watchdog kills anything wedged, the serving
// layer hedges engine-side deaths onto the CPU-only path, and the system
// returns to L0 with its pre-episode tail latency once the chaos ends.
// Reported per phase: goodput, abort/shed counts, p99, brownout level; plus
// a recovery summary (time back to L0 + baseline-comparable p99, stranded
// queries, leaked device heap).
//
//   ./build/bench/fig26_availability                 # default timeline
//   ./build/bench/fig26_availability --quick         # CI smoke (short phases)
//   ./build/bench/fig26_availability --json out.json # machine-readable
//
// Gate: scripts/check_bench.py --availability out.json
//
// Shared flags (see bench_util.h): --quick --seed N --time-scale X

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "fault/scenario.h"
#include "server/traffic.h"

using namespace hetdb;
using namespace hetdb::bench;

namespace {

struct AvailArgs {
  BenchArgs base;
  double phase_s = 4.0;          // measured window per timeline phase
  double recovery_window_s = 1.5;  // recovery probe window
  int max_recovery_windows = 10;
  double recovery_p99_factor = 3.0;  // p99 <= factor * baseline counts as
                                     // recovered (plus brownout back at L0)
  int sessions = 16;
  double think_time_ms = 50.0;
  double deadline_ms = 1000.0;
  std::string json_out;
};

AvailArgs ParseAvailArgs(int argc, char** argv) {
  AvailArgs args;
  args.base = BenchArgs::Parse(argc, argv);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--phase" && i + 1 < argc) args.phase_s = std::atof(argv[++i]);
    if (arg == "--sessions" && i + 1 < argc) {
      args.sessions = std::atoi(argv[++i]);
    }
    if (arg == "--deadline-ms" && i + 1 < argc) {
      args.deadline_ms = std::atof(argv[++i]);
    }
    if (arg == "--json" && i + 1 < argc) args.json_out = argv[++i];
  }
  if (args.base.quick) {
    args.phase_s = std::min(args.phase_s, 2.0);
    args.recovery_window_s = 1.0;
    args.max_recovery_windows = 8;
  }
  return args;
}

/// The scripted failure timeline, in the scenario DSL so the bench also
/// exercises the parser. Episodes are stepped manually at phase boundaries
/// (start/duration fields are documentation here).
const char* kTimeline = R"(# fig26 chaos timeline (manually stepped)
at 0.0s for 4.0s device-loss device=1 name=dev1_down
at 0.0s for 4.0s latency-storm p=0.5 factor=8 name=pcie_storm
at 0.0s for 4.0s heap-squeeze p=0.6 name=heap_squeeze
)";

/// One measured phase of the run, flattened for the JSON gate.
struct PhaseResult {
  std::string name;
  double duration_s = 0;
  uint64_t offered = 0;
  uint64_t completed = 0;
  uint64_t shed = 0;
  uint64_t missed = 0;
  uint64_t failed = 0;
  double goodput_qps = 0;
  double p99_ms = 0;
  int brownout_level_end = 0;
  uint64_t watchdog_fires_cum = 0;
  uint64_t hedge_attempts_cum = 0;
  uint64_t hedge_successes_cum = 0;
};

std::string PhaseJson(const PhaseResult& p) {
  char buffer[640];
  std::snprintf(
      buffer, sizeof(buffer),
      "    {\"name\": \"%s\", \"duration_s\": %.2f, \"offered\": %llu, "
      "\"completed\": %llu, \"shed\": %llu, \"missed\": %llu, "
      "\"failed\": %llu, \"goodput_qps\": %.3f, \"p99_ms\": %.3f, "
      "\"brownout_level_end\": %d, \"watchdog_fires\": %llu, "
      "\"hedge_attempts\": %llu, \"hedge_successes\": %llu}",
      p.name.c_str(), p.duration_s, static_cast<unsigned long long>(p.offered),
      static_cast<unsigned long long>(p.completed),
      static_cast<unsigned long long>(p.shed),
      static_cast<unsigned long long>(p.missed),
      static_cast<unsigned long long>(p.failed), p.goodput_qps, p.p99_ms,
      p.brownout_level_end,
      static_cast<unsigned long long>(p.watchdog_fires_cum),
      static_cast<unsigned long long>(p.hedge_attempts_cum),
      static_cast<unsigned long long>(p.hedge_successes_cum));
  return buffer;
}

}  // namespace

int main(int argc, char** argv) {
  const AvailArgs args = ParseAvailArgs(argc, argv);
  const double sf = args.base.quick ? 0.2 : 0.5;

  Banner("fig26_availability",
         "availability under scripted chaos: " +
             std::to_string(args.sessions) +
             " closed-loop SSB users, 2 devices, timeline "
             "device-loss -> latency-storm -> heap-squeeze -> recovery");

  SsbGeneratorOptions gen;
  args.base.ApplySeed(gen);
  gen.scale_factor = sf;
  const DatabasePtr db = GenerateSsbDatabase(gen);
  const std::vector<NamedQuery> queries = SsbQueries();

  SystemConfig config = PaperConfig(args.base.time_scale);
  config.device_count = 2;
  EngineContext ctx(config, db);

  ServerOptions server_options;
  server_options.admission.max_concurrency = 16;
  server_options.admission.initial_concurrency = 8;
  Server server(&ctx, server_options);

  // Chaos timeline + hooks mirroring device loss into the placement layer,
  // exactly what an operator's device-loss runbook would do.
  ChaosScenario scenario = ChaosScenario::Parse(kTimeline).value();
  ScenarioOrchestrator::Hooks hooks;
  hooks.on_device_lost = [&](int device) {
    ctx.sharding().MarkDeviceLost(device);
    ctx.sharding().RebalanceAway(device, /*source_reachable=*/false);
  };
  hooks.on_device_restored = [&](int device) {
    ctx.sharding().MarkDeviceRestored(device);
  };
  std::vector<FaultInjector*> injectors;
  for (int d = 0; d < ctx.device_count(); ++d) {
    injectors.push_back(&ctx.simulator().fault_injector(d));
  }
  ScenarioOrchestrator chaos(scenario, injectors, &ctx.telemetry().registry(),
                             &ctx.flight_recorder(), hooks);

  // Warm cost models + data placement so the baseline phase measures a
  // trained engine (same protocol as the other serving benches).
  {
    SessionPtr warm = server.OpenSession("warmup");
    for (const NamedQuery& query : queries) {
      warm->Execute(query.builder(*db).value());
    }
    server.runner().RefreshDataPlacement();
    ctx.ResetRunStats();
  }

  TenantTraffic tenant;
  tenant.name = "users";
  tenant.mix = queries;
  tenant.deadline_ms = args.deadline_ms;
  tenant.sessions = args.sessions;
  tenant.think_time_ms = args.think_time_ms;

  TrafficOptions traffic;
  traffic.mode = TrafficOptions::Mode::kClosedLoop;
  traffic.duration_s = args.phase_s;
  traffic.seed = args.base.seed != 0 ? args.base.seed : 42;

  std::vector<PhaseResult> phases;
  auto run_phase = [&](const std::string& name, double duration_s,
                       int episode) {
    traffic.duration_s = duration_s;
    if (episode >= 0) chaos.ApplyEpisode(static_cast<size_t>(episode));
    const TrafficResult result = RunTraffic(server, {tenant}, traffic);
    if (episode >= 0) chaos.EndEpisode(static_cast<size_t>(episode));
    PhaseResult phase;
    phase.name = name;
    phase.duration_s = duration_s;
    phase.offered = result.offered;
    phase.completed = result.completed;
    phase.shed = result.shed;
    phase.missed = result.missed;
    phase.failed = result.failed;
    phase.goodput_qps = result.goodput_qps;
    for (const TenantTrafficResult& tr : result.tenants) {
      phase.p99_ms = std::max(phase.p99_ms, tr.p99_ms);
    }
    phase.brownout_level_end = ctx.brownout().level_int();
    phase.watchdog_fires_cum = ctx.watchdog().fires();
    phase.hedge_attempts_cum = server.hedge_attempts();
    phase.hedge_successes_cum = server.hedge_successes();
    phases.push_back(phase);
    PrintCell(phase.name);
    PrintCell(phase.offered);
    PrintCell(phase.goodput_qps);
    PrintCell(phase.p99_ms);
    PrintCell(static_cast<uint64_t>(phase.shed + phase.missed + phase.failed));
    PrintCell("L" + std::to_string(phase.brownout_level_end));
    PrintCell(phase.hedge_attempts_cum);
    PrintCell(phase.watchdog_fires_cum);
    EndRow();
    return phase;
  };

  PrintHeader({"phase", "offered", "goodput[qps]", "p99[ms]", "not_served",
               "brownout", "hedges", "wd_fires"});

  const PhaseResult baseline = run_phase("baseline", args.phase_s, -1);
  run_phase("device_loss", args.phase_s, 0);
  run_phase("latency_storm", args.phase_s, 1);
  run_phase("heap_squeeze", args.phase_s, 2);

  // Recovery: probe in short windows until the ladder is back at L0 and the
  // p99 is comparable to the pre-episode baseline, or the window budget
  // runs out. The placement job re-shards the restored device first, as the
  // restore runbook would.
  server.runner().RefreshDataPlacement();
  bool recovered = false;
  double recovery_time_s = 0;
  for (int window = 0; window < args.max_recovery_windows && !recovered;
       ++window) {
    const PhaseResult probe = run_phase(
        "recovery_" + std::to_string(window + 1), args.recovery_window_s, -1);
    recovery_time_s += args.recovery_window_s;
    const bool p99_ok =
        baseline.p99_ms <= 0 ||
        probe.p99_ms <= args.recovery_p99_factor * baseline.p99_ms;
    recovered = probe.brownout_level_end == 0 && p99_ok &&
                probe.completed > 0;
  }

  // Stranded-work audit: every future the closed loop issued has resolved
  // by construction; beyond that, nothing may still be under watch and the
  // device heaps must be fully released.
  const size_t stranded = ctx.watchdog().active();
  size_t heap_used = 0;
  for (int d = 0; d < ctx.device_count(); ++d) {
    heap_used += ctx.simulator().device_heap(d).used();
  }
  const int final_level = ctx.brownout().level_int();

  std::printf(
      "# recovered=%s recovery_time_s=%.1f stranded=%zu heap_used=%zu "
      "final_level=L%d brownout_transitions=%llu\n",
      recovered ? "yes" : "no", recovery_time_s, stranded, heap_used,
      final_level,
      static_cast<unsigned long long>(ctx.brownout().transitions()));

  std::string json = "{\n  \"bench\": \"fig26_availability\",\n";
  json += "  \"phases\": [\n";
  for (size_t i = 0; i < phases.size(); ++i) {
    json += PhaseJson(phases[i]);
    json += i + 1 < phases.size() ? ",\n" : "\n";
  }
  json += "  ],\n  \"summary\": {\n";
  char summary[512];
  std::snprintf(
      summary, sizeof(summary),
      "    \"recovered\": %s,\n    \"recovery_time_s\": %.2f,\n"
      "    \"stranded_queries\": %zu,\n    \"heap_used_after_drain\": %zu,\n"
      "    \"final_brownout_level\": %d,\n    \"brownout_transitions\": "
      "%llu,\n    \"watchdog_fires\": %llu,\n    \"hedge_attempts\": %llu,\n"
      "    \"hedge_successes\": %llu\n",
      recovered ? "true" : "false", recovery_time_s, stranded, heap_used,
      final_level, static_cast<unsigned long long>(ctx.brownout().transitions()),
      static_cast<unsigned long long>(ctx.watchdog().fires()),
      static_cast<unsigned long long>(server.hedge_attempts()),
      static_cast<unsigned long long>(server.hedge_successes()));
  json += summary;
  json += "  }\n}\n";

  if (!args.json_out.empty()) {
    FILE* f = std::fopen(args.json_out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "error: cannot write %s\n", args.json_out.c_str());
      return 1;
    }
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("# wrote %s\n", args.json_out.c_str());
  }
  return 0;
}
