#ifndef HETDB_ENGINE_OPERATOR_EXECUTOR_H_
#define HETDB_ENGINE_OPERATOR_EXECUTOR_H_

#include <functional>
#include <vector>

#include "cache/data_cache.h"
#include "engine/engine_context.h"
#include "operators/plan_node.h"
#include "sim/device_allocator.h"
#include "sim/simulator.h"

namespace hetdb {

/// Materialized output of one executed operator, together with the resources
/// that keep it device-resident (cache leases for base columns, heap
/// allocations for transient inputs and intermediate results).
///
/// The executor keeps a child's OperatorResult alive until its parent has
/// consumed it, then drops it — releasing device memory and cache pins.
struct OperatorResult {
  TablePtr table;
  /// Where the data lives. kGpu means the authoritative copy is on the
  /// device (a CPU consumer must pay a device-to-host transfer) — except for
  /// base data, which always also exists in host memory.
  ProcessorKind location = ProcessorKind::kCpu;
  /// True for scan outputs: base columns always have a host copy, so a CPU
  /// consumer never pays a transfer even if the scan ran on the device.
  bool base_data = false;
  /// Device holding the bytes when `location == kGpu` (leases/allocations
  /// below belong to it). Meaningless for host-resident results.
  int device = 0;

  std::vector<DataCache::Lease> cache_leases;
  std::vector<DeviceAllocation> device_allocations;

  size_t table_bytes() const { return table == nullptr ? 0 : table->data_bytes(); }

  /// Drops device residency (allocations + leases), keeping the host table.
  void ReleaseDeviceResources() {
    device_allocations.clear();
    cache_leases.clear();
  }
};

/// Executes `node` on `processor` over the children's results.
///
/// CPU path: if a child result lives on the device (and is not base data),
/// pays the device-to-host transfer; then runs the kernel and charges CPU
/// time through the simulator.
///
/// Device path (in order, mirroring Section 4.1 — "operators typically start
/// with the allocation of memory for their input data and data structures"):
///   1. acquire inputs — cache lookup/insert for base columns (scans),
///      heap allocation + host-to-device transfer for host-resident inputs;
///   2. allocate intermediate data structures from the device heap;
///   3. run the kernel, charging device time;
///   4. allocate the result buffer (actual result size).
/// Any failing allocation aborts the operator with ResourceExhausted; the
/// elapsed time up to the abort is recorded as *wasted time* and all partial
/// allocations are rolled back. The caller decides how to recover (the
/// engine's fallback restarts the operator on the CPU, Section 2.5.1).
/// `device` selects which co-processor a kGpu execution binds to (heap,
/// cache, PCIe link, kernel lock, fault injector). Device-resident inputs
/// living on *another* device are migrated over the D2D path (dedicated
/// link or host-staged); host/base inputs pay H2D on `device`'s own link.
Result<OperatorResult> ExecuteOperator(const PlanNode& node,
                                       const std::vector<OperatorResult*>& inputs,
                                       ProcessorKind processor,
                                       EngineContext& ctx, int device = 0);

/// ExecuteOperator with the engine's full fault handling:
///
///  * the device circuit breaker is consulted first — while it is open the
///    operator short-circuits to the CPU without touching the device;
///  * a *transient* device fault (Unavailable) retries on the device up to
///    `SystemConfig::device_retry_limit` times, charging exponential modeled
///    backoff between attempts;
///  * a *persistent* abort (ResourceExhausted — the paper's heap-contention
///    abort, Section 2.5.1 — or DeviceLost) restarts the operator on the CPU
///    immediately; already-computed child results are preserved;
///  * any non-device-abort error propagates unchanged.
///
/// Every admitted device attempt reports its outcome to the breaker.
/// Returns the result together with the processor that finally ran it.
struct ExecutedOperator {
  OperatorResult result;
  ProcessorKind ran_on = ProcessorKind::kCpu;
  bool aborted = false;  ///< true if the device attempt failed and fell back
};
Result<ExecutedOperator> ExecuteWithFallback(
    const PlanNode& node, const std::vector<OperatorResult*>& inputs,
    ProcessorKind processor, EngineContext& ctx, int device = 0);

/// Runs one bus transfer, retrying transient faults (Unavailable) up to
/// `SystemConfig::transfer_retry_limit` times with exponential modeled
/// backoff. For device-to-host result copy-backs, whose only recovery is the
/// wire itself. Persistent faults return the clean non-OK status.
Status TransferWithRetry(size_t bytes, TransferDirection direction,
                         EngineContext& ctx, int device = 0);

}  // namespace hetdb

#endif  // HETDB_ENGINE_OPERATOR_EXECUTOR_H_
