// Figure 5: data-driven operator placement removes the cache-thrashing
// degradation of Figure 2. Same B.1 selection workload and buffer sweep, now
// comparing operator-driven placement (GPU Only), Data-Driven placement, and
// the CPU-only baseline. Data-Driven approaches the hot-cache optimum as the
// buffer grows and never exceeds the CPU-only time.

#include "bench/bench_util.h"

using namespace hetdb;
using namespace hetdb::bench;

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv);
  const double sf = args.quick ? 5 : 10;
  const int reps = args.quick ? 4 : 8;

  SsbGeneratorOptions gen;
  args.ApplySeed(gen);
  gen.scale_factor = sf;
  DatabasePtr db = GenerateSsbDatabase(gen);

  size_t working_set = 0;
  for (const char* column : kSsbSelectionColumns) {
    working_set += db->GetColumnByQualifiedName(std::string("lineorder.") +
                                                column)
                       .value()
                       ->data_bytes();
  }

  Banner("Figure 5",
         "Serial selection workload (B.1) with data-driven placement; "
         "working set " + Mib(working_set));

  PrintHeader({"buffer[MiB]", "cpu_only[ms]", "gpu_only[ms]",
               "data_driven[ms]"});
  for (int step = 0; step <= 9; ++step) {
    SystemConfig config = PaperConfig(args.time_scale);
    config.device_cache_bytes = working_set * step / 8;
    config.device_memory_bytes = config.device_cache_bytes + (16ull << 20);

    WorkloadRunOptions operator_driven;
    operator_driven.repetitions = reps;
    operator_driven.refresh_data_placement = false;  // demand caching
    WorkloadRunOptions data_driven;
    data_driven.repetitions = reps;
    data_driven.refresh_data_placement = true;  // Algorithm-1 managed cache

    const WorkloadRunResult cpu =
        RunPoint(config, db, Strategy::kCpuOnly, SerialSelectionQueries(),
                 operator_driven);
    const WorkloadRunResult gpu =
        RunPoint(config, db, Strategy::kGpuOnly, SerialSelectionQueries(),
                 operator_driven, EvictionPolicy::kLru);
    const WorkloadRunResult dd =
        RunPoint(config, db, Strategy::kDataDriven, SerialSelectionQueries(),
                 data_driven);

    PrintCell(static_cast<double>(config.device_cache_bytes) / (1 << 20));
    PrintCell(cpu.wall_millis);
    PrintCell(gpu.wall_millis);
    PrintCell(dd.wall_millis);
    EndRow();
  }
  return 0;
}
