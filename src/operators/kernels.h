#ifndef HETDB_OPERATORS_KERNELS_H_
#define HETDB_OPERATORS_KERNELS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "operators/expression.h"
#include "storage/table.h"

namespace hetdb {

/// Pure, processor-agnostic compute kernels.
///
/// Every physical operator (CPU or simulated-device variant) executes one of
/// these kernels for its actual result; the engine layers timing, transfer,
/// and device-memory behaviour around them. Keeping the kernels shared
/// guarantees that all placement strategies produce bit-identical results —
/// the simulator substitutes *timing*, never correctness (DESIGN.md §5).

/// Evaluates a CNF filter and returns the indices of qualifying rows, in
/// ascending order.
Result<std::vector<uint32_t>> EvaluateFilter(const Table& input,
                                             const ConjunctiveFilter& filter);

/// Materializes `rows` of `input` into a new table named `name`.
Result<TablePtr> GatherRows(const Table& input,
                            const std::vector<uint32_t>& rows,
                            const std::string& name);

/// Columns each side of a join contributes to the output. When the alias
/// vectors are non-empty they must parallel the column lists and give the
/// output column names (needed when both sides expose a same-named column,
/// e.g. the two `n_name` roles in TPC-H Q7).
struct JoinOutputSpec {
  std::vector<std::string> build_columns;
  std::vector<std::string> probe_columns;
  std::vector<std::string> build_aliases;
  std::vector<std::string> probe_aliases;
};

/// Equi hash join: builds on `build` (typically the smaller / dimension
/// side), probes with `probe`. Keys must be int32 or int64 columns.
/// Duplicate build keys are supported.
Result<TablePtr> HashJoin(const Table& build, const std::string& build_key,
                          const Table& probe, const std::string& probe_key,
                          const JoinOutputSpec& output_spec,
                          const std::string& name);

/// Hash group-by aggregation. With empty `group_by` produces a single row.
Result<TablePtr> Aggregate(const Table& input,
                           const std::vector<std::string>& group_by,
                           const std::vector<AggregateSpec>& aggregates,
                           const std::string& name);

/// Multi-key stable sort.
Result<TablePtr> Sort(const Table& input, const std::vector<SortKey>& keys,
                      const std::string& name);

/// Keeps `keep_columns` (zero-copy alias) and appends one computed column per
/// arithmetic expression.
Result<TablePtr> Project(const Table& input,
                         const std::vector<std::string>& keep_columns,
                         const std::vector<ArithmeticExpr>& expressions,
                         const std::string& name);

/// First `n` rows.
Result<TablePtr> Limit(const Table& input, size_t n, const std::string& name);

/// Bytes of the input actually touched by a filter (the filter's referenced
/// columns), used for cost accounting.
size_t FilterInputBytes(const Table& input, const ConjunctiveFilter& filter);

}  // namespace hetdb

#endif  // HETDB_OPERATORS_KERNELS_H_
