file(REMOVE_RECURSE
  "libhetdb_sql.a"
)
