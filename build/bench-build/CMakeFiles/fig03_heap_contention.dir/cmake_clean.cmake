file(REMOVE_RECURSE
  "../bench/fig03_heap_contention"
  "../bench/fig03_heap_contention.pdb"
  "CMakeFiles/fig03_heap_contention.dir/fig03_heap_contention.cpp.o"
  "CMakeFiles/fig03_heap_contention.dir/fig03_heap_contention.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_heap_contention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
