#include "server/traffic.h"

#include <atomic>
#include <chrono>
#include <cmath>
#include <sstream>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "engine/pipeline_builder.h"
#include "telemetry/histogram.h"
#include "workload/user_sim.h"

namespace hetdb {

namespace {

constexpr const char* kShedPrefix = "shed: ";

bool IsShed(const Status& status) {
  return status.IsResourceExhausted() &&
         status.message().rfind(kShedPrefix, 0) == 0;
}

/// Outcome accumulator one tenant's submitters record into (lock-free).
struct TenantAccum {
  std::atomic<uint64_t> offered{0};
  std::atomic<uint64_t> completed{0};
  std::atomic<uint64_t> shed{0};
  std::atomic<uint64_t> missed{0};
  std::atomic<uint64_t> failed{0};
  Histogram latency_micros;

  void RecordOutcome(const Result<TablePtr>& result,
                     const QueryStatsPtr& stats) {
    if (result.ok()) {
      completed.fetch_add(1, std::memory_order_relaxed);
      latency_micros.Record(stats->wall_micros());
    } else if (IsShed(result.status())) {
      shed.fetch_add(1, std::memory_order_relaxed);
    } else if (result.status().IsCancelled()) {
      missed.fetch_add(1, std::memory_order_relaxed);
    } else {
      failed.fetch_add(1, std::memory_order_relaxed);
    }
  }
};

/// One submitted-but-unharvested open-loop query.
struct Pending {
  std::future<Result<TablePtr>> future;
  QueryStatsPtr stats;
};

SubmitOptions MakeSubmitOptions(const TenantTraffic& tenant,
                                const NamedQuery& query,
                                QueryStatsPtr stats) {
  SubmitOptions options;
  options.stats = std::move(stats);
  options.name = query.name;
  if (tenant.deadline_ms > 0) {
    options.deadline = std::chrono::steady_clock::now() +
                       std::chrono::microseconds(static_cast<int64_t>(
                           tenant.deadline_ms * 1000.0));
  }
  return options;
}

/// Open loop: arrivals follow a Poisson process at tenant.arrival_qps,
/// independent of completions — a slow server just accumulates backlog
/// (which is exactly what admission control is there to absorb).
void RunOpenLoopTenant(Server& server, const TenantTraffic& tenant,
                       const TrafficOptions& options, uint64_t seed,
                       TenantAccum& accum) {
  if (tenant.arrival_qps <= 0 || tenant.mix.empty()) return;
  const Database& db = *server.ctx().database();
  SessionPtr session = server.OpenSession(tenant.name);
  Rng rng(seed);
  std::vector<Pending> pending;
  const auto start = std::chrono::steady_clock::now();
  const auto end =
      start + std::chrono::microseconds(
                  static_cast<int64_t>(options.duration_s * 1e6));
  auto next_arrival = start;
  for (;;) {
    const double mean_gap_us = 1e6 / tenant.arrival_qps;
    const double u = std::max(rng.NextDouble(), 1e-12);
    next_arrival += std::chrono::microseconds(
        static_cast<int64_t>(-mean_gap_us * std::log(u)));
    if (next_arrival >= end) break;
    std::this_thread::sleep_until(next_arrival);

    const NamedQuery& query =
        tenant.mix[static_cast<size_t>(rng.Uniform(
            0, static_cast<int64_t>(tenant.mix.size()) - 1))];
    Result<PlanNodePtr> plan = query.builder(db);
    if (!plan.ok()) {
      accum.offered.fetch_add(1, std::memory_order_relaxed);
      accum.failed.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    // Fuse before registering stats so Server::Submit keeps the rewrite
    // (it declines fusion when stats are bound to a different plan). Must
    // match Submit's brownout fusion cap or the shapes diverge and the
    // rewrite is declined.
    plan.value() = OptimizePlan(
        plan.value(), nullptr,
        server.ctx().brownout().AllowMultiJoinFusion() ? -1 : 1);
    QueryStatsPtr stats = MakeQueryStats(plan.value());
    accum.offered.fetch_add(1, std::memory_order_relaxed);
    Pending p;
    p.stats = stats;
    p.future = session->Submit(std::move(plan).value(),
                               MakeSubmitOptions(tenant, query, stats));
    pending.push_back(std::move(p));
  }
  // Drain: everything offered resolves — completed, shed, missed, or failed.
  for (Pending& p : pending) {
    accum.RecordOutcome(p.future.get(), p.stats);
  }
}

/// Closed loop: `sessions` users per tenant, each waiting for its own query
/// before thinking and issuing the next (the paper's Section 6 protocol,
/// driven through the serving layer).
void RunClosedLoopTenant(Server& server, const TenantTraffic& tenant,
                         const TrafficOptions& options, uint64_t seed,
                         TenantAccum& accum) {
  if (tenant.sessions <= 0 || tenant.mix.empty()) return;
  const Database& db = *server.ctx().database();
  const auto end = std::chrono::steady_clock::now() +
                   std::chrono::microseconds(
                       static_cast<int64_t>(options.duration_s * 1e6));

  UserLoopOptions loop;
  loop.num_users = tenant.sessions;
  loop.think_time_ms = tenant.think_time_ms;
  loop.seed = seed;
  RunUserLoops(loop, [&](int /*user*/, Rng& rng) {
    if (std::chrono::steady_clock::now() >= end) return false;
    SessionPtr session = server.OpenSession(tenant.name);
    const NamedQuery& query =
        tenant.mix[static_cast<size_t>(rng.Uniform(
            0, static_cast<int64_t>(tenant.mix.size()) - 1))];
    Result<PlanNodePtr> plan = query.builder(db);
    if (!plan.ok()) {
      accum.offered.fetch_add(1, std::memory_order_relaxed);
      accum.failed.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    plan.value() = OptimizePlan(
        plan.value(), nullptr,
        server.ctx().brownout().AllowMultiJoinFusion() ? -1 : 1);
    QueryStatsPtr stats = MakeQueryStats(plan.value());
    accum.offered.fetch_add(1, std::memory_order_relaxed);
    Result<TablePtr> result = session->Execute(
        std::move(plan).value(), MakeSubmitOptions(tenant, query, stats));
    accum.RecordOutcome(result, stats);
    return true;
  });
}

double JainFairness(const std::vector<double>& values) {
  double sum = 0, sum_sq = 0;
  size_t n = 0;
  for (double v : values) {
    sum += v;
    sum_sq += v * v;
    n++;
  }
  if (n == 0 || sum_sq == 0) return 0;
  return (sum * sum) / (static_cast<double>(n) * sum_sq);
}

}  // namespace

TrafficResult RunTraffic(Server& server,
                         const std::vector<TenantTraffic>& tenants,
                         const TrafficOptions& options) {
  for (const TenantTraffic& tenant : tenants) {
    TenantSpec spec;
    spec.name = tenant.name;
    spec.weight = tenant.weight;
    spec.max_queue = tenant.max_queue;
    server.RegisterTenant(spec);
  }

  std::vector<TenantAccum> accums(tenants.size());
  std::vector<std::thread> drivers;
  drivers.reserve(tenants.size());
  const auto start = std::chrono::steady_clock::now();
  for (size_t i = 0; i < tenants.size(); ++i) {
    // Decorrelate tenant streams; RunUserLoops further offsets per user.
    const uint64_t seed = options.seed + 1000003 * (i + 1);
    drivers.emplace_back([&, i, seed] {
      if (options.mode == TrafficOptions::Mode::kOpenLoop) {
        RunOpenLoopTenant(server, tenants[i], options, seed, accums[i]);
      } else {
        RunClosedLoopTenant(server, tenants[i], options, seed, accums[i]);
      }
    });
  }
  for (std::thread& driver : drivers) driver.join();
  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  TrafficResult result;
  result.duration_s = elapsed_s;
  std::vector<double> goodputs;
  for (size_t i = 0; i < tenants.size(); ++i) {
    const TenantAccum& accum = accums[i];
    TenantTrafficResult tr;
    tr.tenant = tenants[i].name;
    tr.offered = accum.offered.load();
    tr.completed = accum.completed.load();
    tr.shed = accum.shed.load();
    tr.missed = accum.missed.load();
    tr.failed = accum.failed.load();
    tr.goodput_qps = elapsed_s > 0 ? tr.completed / elapsed_s : 0;
    const HistogramSnapshot snap = accum.latency_micros.Snapshot();
    if (snap.count > 0) {
      tr.mean_ms = snap.mean / 1000.0;
      tr.p50_ms = static_cast<double>(snap.p50) / 1000.0;
      tr.p95_ms = static_cast<double>(snap.p95) / 1000.0;
      tr.p99_ms = static_cast<double>(snap.p99) / 1000.0;
      tr.max_ms = static_cast<double>(snap.max) / 1000.0;
    }
    result.offered += tr.offered;
    result.completed += tr.completed;
    result.shed += tr.shed;
    result.missed += tr.missed;
    result.failed += tr.failed;
    goodputs.push_back(tr.goodput_qps);
    result.tenants.push_back(std::move(tr));
  }
  result.shed_rate =
      result.offered > 0
          ? static_cast<double>(result.shed) / result.offered
          : 0;
  result.goodput_qps = elapsed_s > 0 ? result.completed / elapsed_s : 0;
  result.fairness = JainFairness(goodputs);
  return result;
}

std::string TrafficResult::ToString() const {
  std::ostringstream os;
  os << "duration=" << duration_s << "s offered=" << offered
     << " completed=" << completed << " shed=" << shed << " missed=" << missed
     << " failed=" << failed << " goodput=" << goodput_qps
     << "qps shed_rate=" << shed_rate << " fairness=" << fairness;
  for (const TenantTrafficResult& tr : tenants) {
    os << "\n  " << tr.tenant << ": offered=" << tr.offered
       << " completed=" << tr.completed << " shed=" << tr.shed
       << " missed=" << tr.missed << " failed=" << tr.failed
       << " goodput=" << tr.goodput_qps << "qps p50=" << tr.p50_ms
       << "ms p95=" << tr.p95_ms << "ms p99=" << tr.p99_ms << "ms";
  }
  return os.str();
}

std::string TrafficResult::ToJson() const {
  std::ostringstream os;
  os << "{\n";
  os << "  \"duration_s\": " << duration_s << ",\n";
  os << "  \"offered\": " << offered << ",\n";
  os << "  \"completed\": " << completed << ",\n";
  os << "  \"shed\": " << shed << ",\n";
  os << "  \"missed\": " << missed << ",\n";
  os << "  \"failed\": " << failed << ",\n";
  os << "  \"shed_rate\": " << shed_rate << ",\n";
  os << "  \"goodput_qps\": " << goodput_qps << ",\n";
  os << "  \"fairness\": " << fairness << ",\n";
  os << "  \"tenants\": [\n";
  for (size_t i = 0; i < tenants.size(); ++i) {
    const TenantTrafficResult& tr = tenants[i];
    os << "    {\"tenant\": \"" << tr.tenant << "\", \"offered\": "
       << tr.offered << ", \"completed\": " << tr.completed
       << ", \"shed\": " << tr.shed << ", \"missed\": " << tr.missed
       << ", \"failed\": " << tr.failed << ", \"goodput_qps\": "
       << tr.goodput_qps << ", \"mean_ms\": " << tr.mean_ms
       << ", \"p50_ms\": " << tr.p50_ms << ", \"p95_ms\": " << tr.p95_ms
       << ", \"p99_ms\": " << tr.p99_ms << ", \"max_ms\": " << tr.max_ms
       << "}" << (i + 1 < tenants.size() ? "," : "") << "\n";
  }
  os << "  ]\n";
  os << "}\n";
  return os.str();
}

}  // namespace hetdb
