# Empty dependencies file for hetdb_tpch.
# This may be replaced when dependencies are built.
