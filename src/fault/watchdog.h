#ifndef HETDB_FAULT_WATCHDOG_H_
#define HETDB_FAULT_WATCHDOG_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "common/cancellation.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/metric_registry.h"
#include "telemetry/query_stats.h"

namespace hetdb {

/// Stuck-query watchdog (DESIGN.md §13).
///
/// The executor's cancellation and deadline checks run at *scheduling
/// boundaries* — a query whose next boundary never arrives (a task wedged
/// behind a dead device's kernel lock, a fault-injection pathology, a bug)
/// hangs forever, holding its DoP token, its heap, and its caller's future.
/// The watchdog is the backstop: a scanner thread samples every in-flight
/// query's *progress fingerprint* (operators run, executor time, transfers
/// — all already maintained by QueryStats) and requests cancellation when
///
///   - the fingerprint has not changed for `stall_micros`, or
///   - the query has a deadline and is now `deadline_multiple` budgets past
///     its submission (the executor should have cancelled it at the
///     deadline; being *multiples* past it means checkpoints stopped), or
///   - it exceeded `max_runtime_micros` (when set).
///
/// Firing is a cancellation *request* through the query's own CancelToken —
/// the executor's existing cancel path does the actual unwinding, so a
/// watchdog kill leaves the same clean state as a client cancel (promise
/// settled, device intermediates released). Each fire is counted, flight-
/// recorded, and auto-dumps the ring; `WasKilled(query_id)` lets the serving
/// layer distinguish a watchdog kill from a client cancel and hedge the
/// query CPU-side instead of surfacing an error.
///
/// The scanner thread starts lazily on the first Register and joins in the
/// destructor. `CheckNow()` runs one scan synchronously for deterministic
/// tests (usable with scan_period_micros = 0 to keep the thread parked).
class StuckQueryWatchdog {
 public:
  struct Options {
    bool enabled = true;
    /// Scanner wake-up period. 0 = never scan in the background (tests
    /// drive CheckNow() instead).
    uint64_t scan_period_micros = 100'000;
    /// Zero progress for this long = stuck. Generous by default: queue wait
    /// behind a loaded executor also shows no progress, and killing a
    /// merely-slow query is worse than killing a stuck one late.
    uint64_t stall_micros = 10'000'000;
    /// Kill a deadlined query once now >= submit + multiple * budget.
    double deadline_multiple = 4.0;
    /// Absolute runtime ceiling; 0 disables.
    uint64_t max_runtime_micros = 0;
  };

  StuckQueryWatchdog(const Options& options,
                     MetricRegistry* registry = nullptr,
                     FlightRecorder* recorder = nullptr);
  ~StuckQueryWatchdog();

  StuckQueryWatchdog(const StuckQueryWatchdog&) = delete;
  StuckQueryWatchdog& operator=(const StuckQueryWatchdog&) = delete;

  /// Puts a query under watch. `deadline` is ignored unless `has_deadline`.
  /// `stats` must outlive the watch (it is held by shared_ptr). No-op when
  /// disabled.
  void Register(uint64_t query_id, QueryStatsPtr stats, CancelToken cancel,
                std::chrono::steady_clock::time_point deadline,
                bool has_deadline);
  /// Removes a query from watch (idempotent; unknown ids are fine).
  void Deregister(uint64_t query_id);

  /// Runs one scan pass synchronously (tests, or callers that want a scan
  /// at a known point). Safe concurrently with the scanner thread.
  void CheckNow();

  /// Whether the watchdog fired on this query id. Survives Deregister (the
  /// serving layer checks *after* the future settles); bounded history.
  bool WasKilled(uint64_t query_id) const;

  uint64_t fires() const { return fires_.load(std::memory_order_relaxed); }
  size_t active() const;

 private:
  struct Watch {
    QueryStatsPtr stats;
    CancelToken cancel;
    std::chrono::steady_clock::time_point registered_at;
    std::chrono::steady_clock::time_point deadline;
    bool has_deadline = false;
    // Last observed progress fingerprint.
    int64_t last_ops = -1;
    int64_t last_run_micros = -1;
    int64_t last_transfers = -1;
    std::chrono::steady_clock::time_point last_progress;
  };

  void ScanLoop();
  void Scan(std::chrono::steady_clock::time_point now);
  void EnsureThreadLocked();

  const Options options_;
  MetricRegistry* const registry_;
  FlightRecorder* const recorder_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
  bool thread_started_ = false;
  std::thread thread_;
  std::unordered_map<uint64_t, Watch> watches_;
  std::unordered_set<uint64_t> killed_;
  std::deque<uint64_t> killed_order_;  // bounds killed_
  std::atomic<uint64_t> fires_{0};
};

}  // namespace hetdb

#endif  // HETDB_FAULT_WATCHDOG_H_
