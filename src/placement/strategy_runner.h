#ifndef HETDB_PLACEMENT_STRATEGY_RUNNER_H_
#define HETDB_PLACEMENT_STRATEGY_RUNNER_H_

#include <memory>

#include "engine/chopping_executor.h"
#include "engine/engine_context.h"
#include "engine/query_executor.h"
#include "placement/strategy.h"

namespace hetdb {

/// Executes queries under one named placement strategy.
///
/// Thread-safe: user-session threads share one runner, which is essential
/// for the chopping strategies — their single worker-thread pool *is* the
/// concurrency bound across all concurrent queries.
class StrategyRunner {
 public:
  StrategyRunner(EngineContext* ctx, Strategy strategy);

  StrategyRunner(const StrategyRunner&) = delete;
  StrategyRunner& operator=(const StrategyRunner&) = delete;

  /// Runs one query to completion and returns the host-resident result.
  Result<TablePtr> RunQuery(const PlanNodePtr& root);

  /// Same, attributing resources to `stats` (EXPLAIN ANALYZE, per-query
  /// workload breakdowns). Register the plan's nodes first with
  /// MakeQueryStats(root), or pass an empty QueryStats and the executor
  /// registers them itself. To get fused execution *and* per-node stats,
  /// call OptimizePlan(root) before MakeQueryStats — stats registered
  /// against the unfused plan make the runner decline the fusion rewrite.
  Result<TablePtr> RunQuery(const PlanNodePtr& root, QueryStatsPtr stats);

  /// Full-control variant (server/session path): cancel token, deadline, and
  /// stats all flow through. Chopping strategies honour cancel/deadline at
  /// every operator boundary; compile-time strategies check them before
  /// execution starts (their operator-at-a-time executor has no mid-flight
  /// checkpoints).
  Result<TablePtr> RunQuery(const PlanNodePtr& root, QueryControls controls);

  /// The chopping executor behind this runner, or nullptr for compile-time
  /// strategies. Exposes queue-depth load signals to admission governors.
  const ChoppingExecutor* chopping_executor() const { return chopping_.get(); }

  Strategy strategy() const { return strategy_; }
  EngineContext& ctx() { return *ctx_; }

  /// Runs the Algorithm-1 data placement job over all base columns of the
  /// context's database. Call after warm-up (or periodically) for the
  /// data-driven strategies; a no-op for operator-driven ones is harmless.
  void RefreshDataPlacement();

 private:
  /// Worker-pool size used to emulate *unbounded* device concurrency for the
  /// plain run-time strategy (Section 4 has no concurrency limiting).
  static constexpr int kUnboundedWorkers = 64;

  EngineContext* ctx_;
  Strategy strategy_;
  std::unique_ptr<ChoppingExecutor> chopping_;
  RuntimePlacer placer_;
};

}  // namespace hetdb

#endif  // HETDB_PLACEMENT_STRATEGY_RUNNER_H_
