#ifndef HETDB_TELEMETRY_EXPORTERS_H_
#define HETDB_TELEMETRY_EXPORTERS_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "telemetry/metric_registry.h"
#include "telemetry/trace_recorder.h"

namespace hetdb {

/// Serializes events as Chrome trace-event JSON (the object form with a
/// `traceEvents` array of phase-`X` complete events), loadable in Perfetto
/// (https://ui.perfetto.dev) and chrome://tracing.
std::string ChromeTraceJson(const std::vector<TraceEvent>& events);

/// Writes `ChromeTraceJson(events)` to `path`.
Status WriteChromeTrace(const std::string& path,
                        const std::vector<TraceEvent>& events);

/// Metrics snapshot as a JSON object:
///   {"counters": {...}, "gauges": {...},
///    "histograms": {name: {count, sum, min, max, mean, p50, p95, p99}}}
std::string MetricsJson(const MetricRegistry& registry);

/// Metrics snapshot as CSV rows: kind,name,count,sum,min,max,mean,p50,p95,p99
/// (counters/gauges fill only the sum column).
std::string MetricsCsv(const MetricRegistry& registry);

/// Writes `content` to `path`, atomically truncating any previous content.
Status WriteTextFile(const std::string& path, const std::string& content);

/// Escapes a string for embedding in a JSON string literal (no quotes added).
std::string JsonEscape(const std::string& text);

/// RFC 4180 CSV field escaping: fields containing commas, quotes, or
/// newlines are wrapped in double quotes with inner quotes doubled; all
/// other fields pass through unchanged.
std::string CsvEscape(const std::string& field);

}  // namespace hetdb

#endif  // HETDB_TELEMETRY_EXPORTERS_H_
