#include "tpch/tpch_generator.h"

#include <algorithm>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"

namespace hetdb {

namespace {

const char* const kRegions[5] = {"AFRICA", "AMERICA", "ASIA", "EUROPE",
                                 "MIDDLE EAST"};

struct NationInfo {
  const char* name;
  int region;
};

// Sorted by name; region indices follow TPC-H.
const NationInfo kNations[25] = {
    {"ALGERIA", 0},       {"ARGENTINA", 1}, {"BRAZIL", 1},
    {"CANADA", 1},        {"CHINA", 2},     {"EGYPT", 4},
    {"ETHIOPIA", 0},      {"FRANCE", 3},    {"GERMANY", 3},
    {"INDIA", 2},         {"INDONESIA", 2}, {"IRAN", 4},
    {"IRAQ", 4},          {"JAPAN", 2},     {"JORDAN", 4},
    {"KENYA", 0},         {"MOROCCO", 0},   {"MOZAMBIQUE", 0},
    {"PERU", 1},          {"ROMANIA", 3},   {"RUSSIA", 3},
    {"SAUDI ARABIA", 4},  {"UNITED KINGDOM", 3},
    {"UNITED STATES", 1}, {"VIETNAM", 2},
};

const char* const kMktSegments[5] = {"AUTOMOBILE", "BUILDING", "FURNITURE",
                                     "HOUSEHOLD", "MACHINERY"};
const char* const kOrderPriorities[5] = {"1-URGENT", "2-HIGH", "3-MEDIUM",
                                         "4-NOT SPECIFIED", "5-LOW"};
// Third syllable of p_type (TPC-H types end in one of these).
const char* const kPartTypes3[5] = {"BRASS", "COPPER", "NICKEL", "STEEL",
                                    "TIN"};

bool IsLeapYear(int year) {
  return (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
}

int DaysInMonth(int year, int month) {
  static const int kDays[12] = {31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31};
  if (month == 2 && IsLeapYear(year)) return 29;
  return kDays[month - 1];
}

/// yyyymmdd for every day 1992-01-01 .. 1998-12-31; date arithmetic is index
/// arithmetic over this calendar.
std::vector<int32_t> BuildCalendar() {
  std::vector<int32_t> days;
  for (int y = 1992; y <= 1998; ++y) {
    for (int m = 1; m <= 12; ++m) {
      for (int d = 1; d <= DaysInMonth(y, m); ++d) {
        days.push_back(y * 10000 + m * 100 + d);
      }
    }
  }
  return days;
}

}  // namespace

TpchSizes ComputeTpchSizes(const TpchGeneratorOptions& options) {
  const double sf = std::max(options.scale_factor, 0.01);
  TpchSizes sizes;
  sizes.supplier = std::max<int64_t>(10, static_cast<int64_t>(sf * 100));
  sizes.customer = std::max<int64_t>(30, static_cast<int64_t>(sf * 1500));
  sizes.part = std::max<int64_t>(40, static_cast<int64_t>(sf * 2000));
  sizes.partsupp = sizes.part * 4;
  sizes.orders = std::max<int64_t>(50, static_cast<int64_t>(
                                           sf * options.orders_rows_per_sf));
  sizes.lineitem_max = sizes.orders * 7;
  return sizes;
}

DatabasePtr GenerateTpchDatabase(const TpchGeneratorOptions& options) {
  const TpchSizes sizes = ComputeTpchSizes(options);
  auto database = std::make_shared<Database>();
  Rng rng(options.seed);
  const std::vector<int32_t> calendar = BuildCalendar();
  const int64_t num_days = static_cast<int64_t>(calendar.size());

  std::vector<std::string> region_dict(kRegions, kRegions + 5);
  std::vector<std::string> nation_dict;
  for (const NationInfo& nation : kNations) nation_dict.push_back(nation.name);

  // --- region ------------------------------------------------------------------
  {
    auto table = std::make_shared<Table>("region");
    std::vector<int32_t> key = {0, 1, 2, 3, 4};
    HETDB_CHECK_OK(table->AddColumn(
        std::make_shared<Int32Column>("r_regionkey", std::move(key))));
    auto name = StringColumn::FromDictionary("r_name", region_dict);
    for (int32_t i = 0; i < 5; ++i) name->AppendCode(i);
    HETDB_CHECK_OK(table->AddColumn(std::move(name)));
    HETDB_CHECK_OK(database->AddTable(std::move(table)));
  }

  // --- nation ------------------------------------------------------------------
  {
    auto table = std::make_shared<Table>("nation");
    std::vector<int32_t> key(25), regionkey(25);
    auto name = StringColumn::FromDictionary("n_name", nation_dict);
    for (int32_t i = 0; i < 25; ++i) {
      key[i] = i;
      regionkey[i] = kNations[i].region;
      name->AppendCode(i);
    }
    HETDB_CHECK_OK(table->AddColumn(
        std::make_shared<Int32Column>("n_nationkey", std::move(key))));
    HETDB_CHECK_OK(table->AddColumn(std::move(name)));
    HETDB_CHECK_OK(table->AddColumn(
        std::make_shared<Int32Column>("n_regionkey", std::move(regionkey))));
    HETDB_CHECK_OK(database->AddTable(std::move(table)));
  }

  // --- supplier ----------------------------------------------------------------
  {
    const int64_t rows = sizes.supplier;
    auto table = std::make_shared<Table>("supplier");
    std::vector<int32_t> key(rows), nationkey(rows), acctbal(rows);
    for (int64_t i = 0; i < rows; ++i) {
      key[i] = static_cast<int32_t>(i + 1);
      nationkey[i] = static_cast<int32_t>(rng.Uniform(0, 24));
      acctbal[i] = static_cast<int32_t>(rng.Uniform(-99999, 999999));
    }
    HETDB_CHECK_OK(table->AddColumn(
        std::make_shared<Int32Column>("s_suppkey", std::move(key))));
    HETDB_CHECK_OK(table->AddColumn(
        std::make_shared<Int32Column>("s_nationkey", std::move(nationkey))));
    HETDB_CHECK_OK(table->AddColumn(
        std::make_shared<Int32Column>("s_acctbal", std::move(acctbal))));
    HETDB_CHECK_OK(database->AddTable(std::move(table)));
  }

  // --- customer ----------------------------------------------------------------
  {
    const int64_t rows = sizes.customer;
    auto table = std::make_shared<Table>("customer");
    std::vector<int32_t> key(rows), nationkey(rows);
    std::vector<int32_t> segment(rows);
    for (int64_t i = 0; i < rows; ++i) {
      key[i] = static_cast<int32_t>(i + 1);
      nationkey[i] = static_cast<int32_t>(rng.Uniform(0, 24));
      segment[i] = static_cast<int32_t>(rng.Uniform(0, 4));
    }
    HETDB_CHECK_OK(table->AddColumn(
        std::make_shared<Int32Column>("c_custkey", std::move(key))));
    HETDB_CHECK_OK(table->AddColumn(
        std::make_shared<Int32Column>("c_nationkey", std::move(nationkey))));
    std::vector<std::string> segment_dict(kMktSegments, kMktSegments + 5);
    auto seg = StringColumn::FromDictionary("c_mktsegment", segment_dict);
    for (int64_t i = 0; i < rows; ++i) seg->AppendCode(segment[i]);
    HETDB_CHECK_OK(table->AddColumn(std::move(seg)));
    HETDB_CHECK_OK(database->AddTable(std::move(table)));
  }

  // --- part --------------------------------------------------------------------
  {
    const int64_t rows = sizes.part;
    auto table = std::make_shared<Table>("part");
    std::vector<int32_t> key(rows), size(rows), type3(rows);
    for (int64_t i = 0; i < rows; ++i) {
      key[i] = static_cast<int32_t>(i + 1);
      size[i] = static_cast<int32_t>(rng.Uniform(1, 50));
      type3[i] = static_cast<int32_t>(rng.Uniform(0, 4));
    }
    HETDB_CHECK_OK(table->AddColumn(
        std::make_shared<Int32Column>("p_partkey", std::move(key))));
    HETDB_CHECK_OK(table->AddColumn(
        std::make_shared<Int32Column>("p_size", std::move(size))));
    std::vector<std::string> type_dict(kPartTypes3, kPartTypes3 + 5);
    auto type_col = StringColumn::FromDictionary("p_type3", type_dict);
    for (int64_t i = 0; i < rows; ++i) type_col->AppendCode(type3[i]);
    HETDB_CHECK_OK(table->AddColumn(std::move(type_col)));
    HETDB_CHECK_OK(database->AddTable(std::move(table)));
  }

  // --- partsupp ----------------------------------------------------------------
  {
    const int64_t rows = sizes.partsupp;
    auto table = std::make_shared<Table>("partsupp");
    std::vector<int32_t> partkey(rows), suppkey(rows), supplycost(rows),
        availqty(rows);
    for (int64_t i = 0; i < rows; ++i) {
      partkey[i] = static_cast<int32_t>(i / 4 + 1);
      suppkey[i] = static_cast<int32_t>(rng.Uniform(1, sizes.supplier));
      supplycost[i] = static_cast<int32_t>(rng.Uniform(100, 99999));
      availqty[i] = static_cast<int32_t>(rng.Uniform(1, 9999));
    }
    HETDB_CHECK_OK(table->AddColumn(
        std::make_shared<Int32Column>("ps_partkey", std::move(partkey))));
    HETDB_CHECK_OK(table->AddColumn(
        std::make_shared<Int32Column>("ps_suppkey", std::move(suppkey))));
    HETDB_CHECK_OK(table->AddColumn(
        std::make_shared<Int32Column>("ps_supplycost", std::move(supplycost))));
    HETDB_CHECK_OK(table->AddColumn(
        std::make_shared<Int32Column>("ps_availqty", std::move(availqty))));
    HETDB_CHECK_OK(database->AddTable(std::move(table)));
  }

  // --- orders + lineitem ---------------------------------------------------------
  {
    const int64_t order_rows = sizes.orders;
    auto orders = std::make_shared<Table>("orders");
    auto lineitem = std::make_shared<Table>("lineitem");

    std::vector<int32_t> o_key(order_rows), o_custkey(order_rows),
        o_orderdate(order_rows), o_shippriority(order_rows);
    std::vector<int32_t> o_priority(order_rows);

    std::vector<int32_t> l_orderkey, l_partkey, l_suppkey, l_quantity,
        l_extendedprice, l_discount, l_tax, l_shipdate, l_commitdate,
        l_receiptdate, l_shipyear;

    for (int64_t i = 0; i < order_rows; ++i) {
      o_key[i] = static_cast<int32_t>(i + 1);
      o_custkey[i] = static_cast<int32_t>(rng.Uniform(1, sizes.customer));
      const int64_t order_day = rng.Uniform(0, num_days - 122);
      o_orderdate[i] = calendar[order_day];
      o_shippriority[i] = 0;
      o_priority[i] = static_cast<int32_t>(rng.Uniform(0, 4));

      const int64_t lines = rng.Uniform(1, 7);
      for (int64_t l = 0; l < lines; ++l) {
        l_orderkey.push_back(o_key[i]);
        l_partkey.push_back(static_cast<int32_t>(rng.Uniform(1, sizes.part)));
        l_suppkey.push_back(
            static_cast<int32_t>(rng.Uniform(1, sizes.supplier)));
        const int32_t qty = static_cast<int32_t>(rng.Uniform(1, 50));
        l_quantity.push_back(qty);
        l_extendedprice.push_back(
            static_cast<int32_t>(rng.Uniform(900, 10000)) * qty);
        l_discount.push_back(static_cast<int32_t>(rng.Uniform(0, 10)));
        l_tax.push_back(static_cast<int32_t>(rng.Uniform(0, 8)));
        const int64_t ship_day =
            std::min<int64_t>(order_day + rng.Uniform(1, 121), num_days - 1);
        const int64_t commit_day =
            std::min<int64_t>(order_day + rng.Uniform(30, 90), num_days - 1);
        const int64_t receipt_day =
            std::min<int64_t>(ship_day + rng.Uniform(1, 30), num_days - 1);
        l_shipdate.push_back(calendar[ship_day]);
        l_commitdate.push_back(calendar[commit_day]);
        l_receiptdate.push_back(calendar[receipt_day]);
        l_shipyear.push_back(calendar[ship_day] / 10000);
      }
    }

    HETDB_CHECK_OK(orders->AddColumn(
        std::make_shared<Int32Column>("o_orderkey", std::move(o_key))));
    HETDB_CHECK_OK(orders->AddColumn(
        std::make_shared<Int32Column>("o_custkey", std::move(o_custkey))));
    HETDB_CHECK_OK(orders->AddColumn(
        std::make_shared<Int32Column>("o_orderdate", std::move(o_orderdate))));
    HETDB_CHECK_OK(orders->AddColumn(std::make_shared<Int32Column>(
        "o_shippriority", std::move(o_shippriority))));
    std::vector<std::string> priority_dict(kOrderPriorities,
                                           kOrderPriorities + 5);
    auto priority =
        StringColumn::FromDictionary("o_orderpriority", priority_dict);
    for (int32_t code : o_priority) priority->AppendCode(code);
    HETDB_CHECK_OK(orders->AddColumn(std::move(priority)));
    HETDB_CHECK_OK(database->AddTable(std::move(orders)));

    auto add32 = [&](const char* name, std::vector<int32_t> values) {
      HETDB_CHECK_OK(lineitem->AddColumn(
          std::make_shared<Int32Column>(name, std::move(values))));
    };
    add32("l_orderkey", std::move(l_orderkey));
    add32("l_partkey", std::move(l_partkey));
    add32("l_suppkey", std::move(l_suppkey));
    add32("l_quantity", std::move(l_quantity));
    add32("l_extendedprice", std::move(l_extendedprice));
    add32("l_discount", std::move(l_discount));
    add32("l_tax", std::move(l_tax));
    add32("l_shipdate", std::move(l_shipdate));
    add32("l_commitdate", std::move(l_commitdate));
    add32("l_receiptdate", std::move(l_receiptdate));
    add32("l_shipyear", std::move(l_shipyear));
    HETDB_CHECK_OK(database->AddTable(std::move(lineitem)));
  }

  return database;
}

}  // namespace hetdb
