file(REMOVE_RECURSE
  "../bench/fig24_lru_lfu"
  "../bench/fig24_lru_lfu.pdb"
  "CMakeFiles/fig24_lru_lfu.dir/fig24_lru_lfu.cpp.o"
  "CMakeFiles/fig24_lru_lfu.dir/fig24_lru_lfu.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig24_lru_lfu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
