file(REMOVE_RECURSE
  "CMakeFiles/ssb_test.dir/ssb_test.cc.o"
  "CMakeFiles/ssb_test.dir/ssb_test.cc.o.d"
  "ssb_test"
  "ssb_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
