// Placement explorer: prints the physical plan of an SSB query and shows
// which processor each operator is assigned to under every compile-time
// placement strategy, for a cold and a warm device cache. Demonstrates the
// plan API, the data placement manager, and the placement heuristics.
//
//   ./build/examples/placement_explorer [query-name]   (default Q2.1)

#include <cstdio>
#include <string>

#include "placement/compile_time.h"
#include "placement/strategy_runner.h"
#include "ssb/ssb_generator.h"
#include "ssb/ssb_queries.h"

using namespace hetdb;

namespace {

void PrintPlacedPlan(const PlanNodePtr& node, const PlacementMap& placement,
                     int depth) {
  auto it = placement.find(node.get());
  const char* where =
      it == placement.end()
          ? "?"
          : ProcessorKindToString(it->second);
  std::printf("  %*s[%s] %s\n", depth * 2, "", where, node->label().c_str());
  for (const PlanNodePtr& child : node->children()) {
    PrintPlacedPlan(child, placement, depth + 1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::string query_name = argc > 1 ? argv[1] : "Q2.1";

  SsbGeneratorOptions gen;
  gen.scale_factor = 1.0;
  DatabasePtr db = GenerateSsbDatabase(gen);

  Result<NamedQuery> query = SsbQueryByName(query_name);
  if (!query.ok()) {
    std::fprintf(stderr, "%s\n", query.status().ToString().c_str());
    return 1;
  }

  SystemConfig config;
  config.simulate_time = false;  // interactive exploration, no sleeps
  config.device_memory_bytes = 8ull << 20;
  config.device_cache_bytes = 4ull << 20;
  EngineContext ctx(config, db);

  Result<PlanNodePtr> plan = query->builder(*db);
  if (!plan.ok()) return 1;
  std::printf("SSB %s: %zu operators\n\n", query_name.c_str(),
              CountPlanNodes(plan.value()));

  std::printf("--- cold device cache ---\n");
  std::printf("Data-Driven (everything stays on the CPU):\n");
  PrintPlacedPlan(plan.value(), PlaceDataDriven(plan.value(), ctx), 1);

  // Warm up: run the query once (collects access statistics and trains the
  // cost models), then let the Algorithm-1 placement job fill the cache.
  StrategyRunner runner(&ctx, Strategy::kCpuOnly);
  HETDB_CHECK_OK(runner.RunQuery(plan.value()).status());
  runner.RefreshDataPlacement();

  std::printf("\n--- after the data placement job (cache %.1f/%.1f MiB) ---\n",
              ctx.cache().used_bytes() / 1048576.0,
              ctx.cache().capacity_bytes() / 1048576.0);
  for (const std::string& key : ctx.cache().CachedKeys()) {
    std::printf("  cached: %s\n", key.c_str());
  }

  std::printf("\nData-Driven (chains from cached leaves):\n");
  PrintPlacedPlan(plan.value(), PlaceDataDriven(plan.value(), ctx), 1);
  std::printf("\nCritical Path (cost-based):\n");
  PrintPlacedPlan(plan.value(), PlaceCriticalPath(plan.value(), ctx), 1);
  std::printf("\nGPU Preferred:\n");
  PrintPlacedPlan(plan.value(), PlaceGpuOnly(plan.value()), 1);
  return 0;
}
