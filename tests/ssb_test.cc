#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "placement/strategy_runner.h"
#include "ssb/ssb_generator.h"
#include "ssb/ssb_queries.h"
#include "tests/test_util.h"

namespace hetdb {
namespace {

SsbGeneratorOptions SmallSsb() {
  SsbGeneratorOptions options;
  options.scale_factor = 0.2;  // 12,000 lineorder rows: fast but non-trivial
  return options;
}

class SsbTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { db_ = GenerateSsbDatabase(SmallSsb()); }
  static void TearDownTestSuite() { db_.reset(); }

  static DatabasePtr db_;
};

DatabasePtr SsbTest::db_;

TEST_F(SsbTest, SchemaIsComplete) {
  for (const char* table : {"lineorder", "customer", "supplier", "part",
                            "date"}) {
    EXPECT_TRUE(db_->HasTable(table)) << table;
  }
  TablePtr lineorder = db_->GetTable("lineorder").value();
  for (const char* column :
       {"lo_orderkey", "lo_custkey", "lo_partkey", "lo_suppkey",
        "lo_orderdate", "lo_quantity", "lo_extendedprice", "lo_ordtotalprice",
        "lo_discount", "lo_revenue", "lo_supplycost", "lo_tax",
        "lo_shippriority", "lo_shipmode"}) {
    EXPECT_TRUE(lineorder->HasColumn(column)) << column;
  }
}

TEST_F(SsbTest, SizesMatchScaleFactor) {
  const SsbSizes sizes = ComputeSsbSizes(SmallSsb());
  EXPECT_EQ(db_->GetTable("lineorder").value()->num_rows(),
            static_cast<size_t>(sizes.lineorder));
  EXPECT_EQ(db_->GetTable("date").value()->num_rows(), 2557u);  // 1992-1998
  EXPECT_EQ(sizes.lineorder, 12000);
}

TEST_F(SsbTest, GenerationIsDeterministic) {
  DatabasePtr other = GenerateSsbDatabase(SmallSsb());
  TablePtr a = db_->GetTable("lineorder").value();
  TablePtr b = other->GetTable("lineorder").value();
  EXPECT_TRUE(TablesEqual(*a, *b));
  DatabasePtr different_seed;
  {
    SsbGeneratorOptions options = SmallSsb();
    options.seed = 7;
    different_seed = GenerateSsbDatabase(options);
  }
  EXPECT_FALSE(TablesEqual(
      *db_->GetTable("customer").value(),
      *different_seed->GetTable("customer").value()));
}

TEST_F(SsbTest, ForeignKeysAreValid) {
  TablePtr lineorder = db_->GetTable("lineorder").value();
  const auto& custkey = ColumnCast<Int32Column>(
                            *lineorder->GetColumn("lo_custkey").value())
                            .values();
  const int32_t max_cust =
      static_cast<int32_t>(db_->GetTable("customer").value()->num_rows());
  for (int32_t k : custkey) {
    ASSERT_GE(k, 1);
    ASSERT_LE(k, max_cust);
  }
  // Order dates reference real date keys.
  std::unordered_set<int32_t> datekeys;
  const auto& dk = ColumnCast<Int32Column>(
                       *db_->GetTable("date").value()->GetColumn("d_datekey").value())
                       .values();
  datekeys.insert(dk.begin(), dk.end());
  const auto& orderdate = ColumnCast<Int32Column>(
                              *lineorder->GetColumn("lo_orderdate").value())
                              .values();
  for (int32_t d : orderdate) ASSERT_TRUE(datekeys.count(d) > 0) << d;
}

TEST_F(SsbTest, ValueDomainsFollowSpec) {
  TablePtr lineorder = db_->GetTable("lineorder").value();
  const auto& discount = ColumnCast<Int32Column>(
                             *lineorder->GetColumn("lo_discount").value())
                             .values();
  const auto& quantity = ColumnCast<Int32Column>(
                             *lineorder->GetColumn("lo_quantity").value())
                             .values();
  int discount_1_3 = 0;
  for (size_t i = 0; i < discount.size(); ++i) {
    ASSERT_GE(discount[i], 0);
    ASSERT_LE(discount[i], 10);
    ASSERT_GE(quantity[i], 1);
    ASSERT_LE(quantity[i], 50);
    if (discount[i] >= 1 && discount[i] <= 3) ++discount_1_3;
  }
  // Q1.1's discount predicate selects ~3/11 of rows.
  const double fraction = static_cast<double>(discount_1_3) / discount.size();
  EXPECT_NEAR(fraction, 3.0 / 11.0, 0.02);
}

TEST_F(SsbTest, GeographyHierarchyIsConsistent) {
  TablePtr customer = db_->GetTable("customer").value();
  const auto& city =
      ColumnCast<StringColumn>(*customer->GetColumn("c_city").value());
  const auto& nation =
      ColumnCast<StringColumn>(*customer->GetColumn("c_nation").value());
  for (size_t i = 0; i < customer->num_rows(); ++i) {
    // City is the nation truncated/padded to 9 chars plus a digit.
    std::string prefix(nation.value(i).substr(0, 9));
    prefix.resize(9, ' ');
    EXPECT_EQ(city.value(i).substr(0, 9), prefix);
  }
  // The Q3.3 cities exist.
  EXPECT_TRUE(city.CodeFor("UNITED KI1").ok() ||
              ColumnCast<StringColumn>(
                  *db_->GetTable("supplier").value()->GetColumn("s_city").value())
                  .CodeFor("UNITED KI1")
                  .ok());
}

TEST_F(SsbTest, DateDimensionIsACalendar) {
  TablePtr date = db_->GetTable("date").value();
  const auto& year =
      ColumnCast<Int32Column>(*date->GetColumn("d_year").value()).values();
  const auto& ymn = ColumnCast<Int32Column>(
                        *date->GetColumn("d_yearmonthnum").value())
                        .values();
  std::set<int32_t> years(year.begin(), year.end());
  EXPECT_EQ(years.size(), 7u);
  EXPECT_EQ(*years.begin(), 1992);
  EXPECT_EQ(*years.rbegin(), 1998);
  for (size_t i = 0; i < year.size(); ++i) {
    EXPECT_EQ(ymn[i] / 100, year[i]);
  }
  const auto& ym = ColumnCast<StringColumn>(*date->GetColumn("d_yearmonth").value());
  EXPECT_TRUE(ym.CodeFor("Dec1997").ok());  // used by Q3.4
}

TEST_F(SsbTest, AllQueriesAreRegistered) {
  EXPECT_EQ(SsbQueries().size(), 13u);
  EXPECT_TRUE(SsbQueryByName("Q3.3").ok());
  EXPECT_EQ(SsbQueryByName("Q9.9").status().code(), StatusCode::kNotFound);
}

/// Every SSB query must run and produce non-empty, strategy-independent
/// results.
class SsbQueryTest : public ::testing::TestWithParam<std::string> {};

TEST_P(SsbQueryTest, ProducesConsistentNonEmptyResults) {
  static DatabasePtr db = GenerateSsbDatabase(SmallSsb());
  Result<NamedQuery> query = SsbQueryByName(GetParam());
  ASSERT_TRUE(query.ok());

  TablePtr reference;
  for (Strategy strategy :
       {Strategy::kCpuOnly, Strategy::kGpuOnly, Strategy::kDataDrivenChopping}) {
    EngineContext ctx(TestConfig(), db);
    StrategyRunner runner(&ctx, strategy);
    runner.RefreshDataPlacement();
    Result<PlanNodePtr> plan = query->builder(*db);
    ASSERT_TRUE(plan.ok());
    Result<TablePtr> result = runner.RunQuery(plan.value());
    ASSERT_TRUE(result.ok())
        << GetParam() << " under " << StrategyToString(strategy) << ": "
        << result.status().ToString();
    // The city-pair queries Q3.3/Q3.4 (two cities on both dimensions, ~1e-4
    // combined dimension selectivity) are legitimately empty at the tiny
    // test scale factor; all other queries must produce rows.
    if (GetParam() != "Q3.3" && GetParam() != "Q3.4") {
      EXPECT_GT(result.value()->num_rows(), 0u)
          << GetParam() << " under " << StrategyToString(strategy);
    }
    if (reference == nullptr) {
      reference = result.value();
    } else {
      EXPECT_TRUE(TablesEqual(*reference, *result.value()))
          << GetParam() << " differs under " << StrategyToString(strategy);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllSsbQueries, SsbQueryTest,
                         ::testing::Values("Q1.1", "Q1.2", "Q1.3", "Q2.1",
                                           "Q2.2", "Q2.3", "Q3.1", "Q3.2",
                                           "Q3.3", "Q3.4", "Q4.1", "Q4.2",
                                           "Q4.3"),
                         [](const auto& info) {
                           std::string name = info.param;
                           name.erase(name.find('.'), 1);
                           return name;
                         });

}  // namespace
}  // namespace hetdb
