// Graceful-degradation components in isolation (DESIGN.md §13): the
// brownout ladder's hysteresis and policy gates, the chaos-scenario DSL,
// the stuck-query watchdog, the breaker's wall-clock cooldown floor, and
// jittered retry backoff. Engine-level integration of the same machinery
// lives in chaos_test.cc and bench/fig26_availability.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "common/cancellation.h"
#include "common/config.h"
#include "fault/brownout.h"
#include "fault/circuit_breaker.h"
#include "fault/fault_injector.h"
#include "fault/scenario.h"
#include "fault/watchdog.h"
#include "sim/simulator.h"
#include "telemetry/metric_registry.h"
#include "telemetry/query_stats.h"
#include "tests/test_util.h"

namespace hetdb {
namespace {

// ---------------------------------------------------------------------------
// Brownout ladder
// ---------------------------------------------------------------------------

BrownoutController::Options FastBrownout() {
  BrownoutController::Options options;
  options.escalate_updates = 2;
  options.calm_updates = 2;
  options.hot_template_min_hits = 2;
  return options;
}

BrownoutSignals CalmSignals() { return BrownoutSignals{}; }

TEST(BrownoutTest, HysteresisNeedsAStreakBothWays) {
  BrownoutController brownout(FastBrownout(), /*device_count=*/1);
  EXPECT_EQ(brownout.level(), BrownoutLevel::kL0);
  EXPECT_EQ(brownout.DopCap(), 0);
  EXPECT_TRUE(brownout.AllowMultiJoinFusion());

  BrownoutSignals pressure;
  pressure.heap_pressure = 0.95;  // >= heap_l1, < heap_l2 -> target L1
  // One noisy window must not flip the system.
  EXPECT_EQ(brownout.Update(pressure), BrownoutLevel::kL0);
  EXPECT_EQ(brownout.Update(pressure), BrownoutLevel::kL1);
  EXPECT_EQ(brownout.DopCap(), FastBrownout().l1_dop_cap);
  EXPECT_FALSE(brownout.AllowMultiJoinFusion());
  EXPECT_TRUE(brownout.AllowCacheAdmission());  // that's an L2 restriction
  EXPECT_TRUE(brownout.DevicePlacementAllowed(0));

  // Recovery likewise requires sustained calm.
  EXPECT_EQ(brownout.Update(CalmSignals()), BrownoutLevel::kL1);
  EXPECT_EQ(brownout.Update(CalmSignals()), BrownoutLevel::kL0);
  EXPECT_EQ(brownout.DopCap(), 0);
  EXPECT_EQ(brownout.transitions(), 2u);
}

TEST(BrownoutTest, EscalatesOneLevelPerDecisionUpToSurvival) {
  BrownoutController::Options options = FastBrownout();
  options.escalate_updates = 1;
  MetricRegistry registry;
  BrownoutController brownout(options, /*device_count=*/2, &registry);

  BrownoutSignals dire;
  dire.all_breakers_open = true;  // target L3 from the start
  // One level at a time: each restriction gets a window to take effect.
  EXPECT_EQ(brownout.Update(dire), BrownoutLevel::kL1);
  EXPECT_EQ(brownout.Update(dire), BrownoutLevel::kL2);
  EXPECT_FALSE(brownout.AllowCacheAdmission());
  EXPECT_EQ(brownout.Update(dire), BrownoutLevel::kL3);
  EXPECT_EQ(brownout.Update(dire), BrownoutLevel::kL3);  // pinned at the top

  // L3 = CPU-only survival: nothing places on any device, hot or not.
  EXPECT_FALSE(brownout.DevicePlacementAllowed(0));
  EXPECT_FALSE(brownout.DevicePlacementAllowed(1));
  EXPECT_FALSE(brownout.AllowDeviceForTemplate(1234));
  EXPECT_EQ(registry.GetGauge("brownout.level").value(), 3);
  EXPECT_EQ(registry.GetCounter("brownout.transitions.L3").value(), 1);
}

TEST(BrownoutTest, L2AdmitsOnlyHotTemplates) {
  BrownoutController brownout(FastBrownout(), /*device_count=*/1);
  const uint64_t hot = 0xabcu, cold = 0xdefu;
  brownout.NoteQuery(hot);
  brownout.NoteQuery(hot);  // hot_template_min_hits = 2
  brownout.NoteQuery(cold);

  // L0/L1: every template may use the device.
  EXPECT_TRUE(brownout.AllowDeviceForTemplate(cold));
  brownout.ForceLevel(BrownoutLevel::kL2);
  EXPECT_TRUE(brownout.AllowDeviceForTemplate(hot));
  EXPECT_FALSE(brownout.AllowDeviceForTemplate(cold));
  EXPECT_FALSE(brownout.AllowDeviceForTemplate(0x999u));  // never seen
  brownout.ForceLevel(BrownoutLevel::kL3);
  EXPECT_FALSE(brownout.AllowDeviceForTemplate(hot));

  brownout.Reset();
  EXPECT_EQ(brownout.level(), BrownoutLevel::kL0);
  brownout.ForceLevel(BrownoutLevel::kL2);
  // Reset cleared the hotness map: everything is cold again.
  EXPECT_FALSE(brownout.AllowDeviceForTemplate(hot));
}

TEST(BrownoutTest, L2BenchesThrashingDeviceUnlessAllThrash) {
  BrownoutController::Options options = FastBrownout();
  options.escalate_updates = 1;
  BrownoutController brownout(options, /*device_count=*/2);

  BrownoutSignals signals;
  signals.worst_thrash_state = 2;  // target L2
  signals.device_thrashing = {true, false};
  EXPECT_EQ(brownout.Update(signals), BrownoutLevel::kL1);
  EXPECT_EQ(brownout.Update(signals), BrownoutLevel::kL2);
  EXPECT_FALSE(brownout.DevicePlacementAllowed(0));
  EXPECT_TRUE(brownout.DevicePlacementAllowed(1));

  // When every device thrashes, excluding all of them is pointless — the
  // L2 template gate carries the restriction instead.
  signals.device_thrashing = {true, true};
  brownout.Update(signals);
  EXPECT_TRUE(brownout.DevicePlacementAllowed(0));
  EXPECT_TRUE(brownout.DevicePlacementAllowed(1));
}

TEST(BrownoutTest, AdmissionProbeFeedsQueueAndShedSignals) {
  BrownoutController::Options options = FastBrownout();
  options.escalate_updates = 1;
  BrownoutController brownout(options, /*device_count=*/1);
  std::atomic<int> queued{0};
  brownout.SetAdmissionProbe([&queued] {
    BrownoutAdmissionProbe probe;
    probe.queued = queued.load();
    return probe;
  });
  // Shallow queue: calm.
  EXPECT_EQ(brownout.Update(CalmSignals()), BrownoutLevel::kL0);
  // Deep queue alone (>= queue_depth_l1) is an L1 signal.
  queued.store(options.queue_depth_l1);
  EXPECT_EQ(brownout.Update(CalmSignals()), BrownoutLevel::kL1);
  brownout.SetAdmissionProbe(nullptr);  // probe gone: signal disappears
  EXPECT_EQ(brownout.Update(CalmSignals()), BrownoutLevel::kL1);
  EXPECT_EQ(brownout.Update(CalmSignals()), BrownoutLevel::kL0);
}

// ---------------------------------------------------------------------------
// Chaos-scenario DSL and orchestrator
// ---------------------------------------------------------------------------

TEST(ScenarioTest, ParsesTimelineAndRoundTrips) {
  const std::string text =
      "# failure timeline\n"
      "\n"
      "at 1.0s for 2.0s device-loss device=1 name=dev1_down\n"
      "at 4.0s for 1.5s latency-storm p=0.5 factor=8 name=pcie_storm\n"
      "at 6.0s for 1.0s heap-squeeze p=0.7 min-bytes=65536\n";
  Result<ChaosScenario> scenario = ChaosScenario::Parse(text);
  ASSERT_TRUE(scenario.ok()) << scenario.status().ToString();
  ASSERT_EQ(scenario->episodes.size(), 3u);
  const ChaosEpisode& loss = scenario->episodes[0];
  EXPECT_DOUBLE_EQ(loss.start_s, 1.0);
  EXPECT_DOUBLE_EQ(loss.duration_s, 2.0);
  EXPECT_EQ(loss.kind, ChaosEpisodeKind::kDeviceLoss);
  EXPECT_EQ(loss.device, 1);
  EXPECT_EQ(loss.name, "dev1_down");
  const ChaosEpisode& storm = scenario->episodes[1];
  EXPECT_EQ(storm.kind, ChaosEpisodeKind::kLatencyStorm);
  EXPECT_DOUBLE_EQ(storm.probability, 0.5);
  EXPECT_DOUBLE_EQ(storm.latency_factor, 8.0);
  EXPECT_EQ(storm.device, -1);  // default: every device
  const ChaosEpisode& squeeze = scenario->episodes[2];
  EXPECT_EQ(squeeze.kind, ChaosEpisodeKind::kHeapSqueeze);
  EXPECT_EQ(squeeze.min_bytes, 65536u);

  // ToString -> Parse is the identity on the fields that matter.
  Result<ChaosScenario> reparsed = ChaosScenario::Parse(scenario->ToString());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  ASSERT_EQ(reparsed->episodes.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(reparsed->episodes[i].kind, scenario->episodes[i].kind) << i;
    EXPECT_DOUBLE_EQ(reparsed->episodes[i].start_s,
                     scenario->episodes[i].start_s)
        << i;
    EXPECT_DOUBLE_EQ(reparsed->episodes[i].duration_s,
                     scenario->episodes[i].duration_s)
        << i;
    EXPECT_EQ(reparsed->episodes[i].device, scenario->episodes[i].device) << i;
  }
}

TEST(ScenarioTest, RejectsMalformedLines) {
  EXPECT_FALSE(ChaosScenario::Parse("at 1.0s device-loss").ok());
  EXPECT_FALSE(ChaosScenario::Parse("at 1.0s for 2.0s meteor-strike").ok());
  EXPECT_FALSE(
      ChaosScenario::Parse("at 1.0s for 2.0s device-loss bogus=1").ok());
  EXPECT_FALSE(ChaosScenario::Parse("at x for 2.0s device-loss").ok());
}

TEST(ScenarioTest, ManualSteppingAppliesComposesAndRestores) {
  Result<ChaosScenario> scenario = ChaosScenario::Parse(
      "at 0.0s for 1.0s device-loss device=0 name=down\n"
      "at 0.0s for 2.0s heap-squeeze device=0 p=1.0 min-bytes=100\n");
  ASSERT_TRUE(scenario.ok());
  FaultInjector injector(7);
  int lost = 0, restored = 0;
  ScenarioOrchestrator::Hooks hooks;
  hooks.on_device_lost = [&lost](int) { ++lost; };
  hooks.on_device_restored = [&restored](int) { ++restored; };
  ScenarioOrchestrator orchestrator(std::move(scenario).value(), {&injector},
                                    nullptr, nullptr, hooks);

  orchestrator.ApplyEpisode(0);
  orchestrator.ApplyEpisode(0);  // idempotent
  EXPECT_EQ(lost, 1);
  EXPECT_EQ(orchestrator.active_episodes(), 1);
  EXPECT_EQ(injector.Decide(FaultSite::kKernel).kind, FaultKind::kDeviceLost);

  // Overlap: squeeze joins the loss; ending the loss must not clobber it.
  orchestrator.ApplyEpisode(1);
  orchestrator.EndEpisode(0);
  EXPECT_EQ(restored, 1);
  EXPECT_EQ(orchestrator.active_episodes(), 1);
  EXPECT_EQ(injector.Decide(FaultSite::kKernel).kind, FaultKind::kNone);
  EXPECT_EQ(injector.Decide(FaultSite::kDeviceAlloc, 4096).kind,
            FaultKind::kHeapExhausted);
  EXPECT_EQ(injector.Decide(FaultSite::kDeviceAlloc, 50).kind,
            FaultKind::kNone);  // below min-bytes

  orchestrator.EndEpisode(1);
  EXPECT_EQ(orchestrator.active_episodes(), 0);
  EXPECT_EQ(injector.Decide(FaultSite::kDeviceAlloc, 4096).kind,
            FaultKind::kNone);
}

// ---------------------------------------------------------------------------
// Stuck-query watchdog
// ---------------------------------------------------------------------------

/// Watchdog options for deterministic tests: background scanner parked
/// (scan_period 0); the test drives CheckNow().
StuckQueryWatchdog::Options ManualWatchdog() {
  StuckQueryWatchdog::Options options;
  options.scan_period_micros = 0;
  return options;
}

TEST(WatchdogTest, StallKillsThroughTheQuerysOwnToken) {
  StuckQueryWatchdog::Options options = ManualWatchdog();
  options.stall_micros = 250'000;
  options.deadline_multiple = 0;
  MetricRegistry registry;
  StuckQueryWatchdog watchdog(options, &registry);

  QueryStatsPtr stats = std::make_shared<QueryStats>();
  CancelToken cancel = CancelToken::Create();
  watchdog.Register(/*query_id=*/7, stats, cancel, {}, /*has_deadline=*/false);
  EXPECT_EQ(watchdog.active(), 1u);

  // Steady progress defers the stall clock indefinitely.
  for (int i = 0; i < 3; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    stats->OnRun(1000, nullptr);
    watchdog.CheckNow();
    ASSERT_FALSE(cancel.cancelled()) << "iteration " << i;
  }

  // Progress stops; once stall_micros elapse the watchdog fires.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  watchdog.CheckNow();
  EXPECT_TRUE(cancel.cancelled());
  EXPECT_EQ(watchdog.fires(), 1u);
  EXPECT_TRUE(watchdog.WasKilled(7));
  EXPECT_EQ(registry.GetCounter("watchdog.fires.stall").value(), 1);

  // A second scan must not double-fire, and the kill verdict survives
  // Deregister (the serving layer checks after the future settles).
  watchdog.CheckNow();
  EXPECT_EQ(watchdog.fires(), 1u);
  watchdog.Deregister(7);
  EXPECT_EQ(watchdog.active(), 0u);
  EXPECT_TRUE(watchdog.WasKilled(7));
}

TEST(WatchdogTest, DeadlineMultipleKillsEvenWithProgress) {
  StuckQueryWatchdog::Options options = ManualWatchdog();
  options.stall_micros = 0;  // isolate the deadline-multiple trigger
  options.deadline_multiple = 2.0;
  MetricRegistry registry;
  StuckQueryWatchdog watchdog(options, &registry);

  QueryStatsPtr stats = std::make_shared<QueryStats>();
  CancelToken cancel = CancelToken::Create();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(10);
  watchdog.Register(9, stats, cancel, deadline, /*has_deadline=*/true);
  watchdog.CheckNow();
  EXPECT_FALSE(cancel.cancelled());  // still inside the budget

  // A query can be *making* progress and still be multiples past its
  // deadline — the executor's own deadline checkpoints have clearly
  // stopped firing, so the watchdog steps in.
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  stats->OnRun(1000, nullptr);
  watchdog.CheckNow();
  EXPECT_TRUE(cancel.cancelled());
  EXPECT_TRUE(watchdog.WasKilled(9));
  EXPECT_EQ(registry.GetCounter("watchdog.fires.deadline_multiple").value(),
            1);
}

TEST(WatchdogTest, DisabledOrInertTokenNeverWatches) {
  StuckQueryWatchdog::Options disabled = ManualWatchdog();
  disabled.enabled = false;
  StuckQueryWatchdog off(disabled);
  off.Register(1, std::make_shared<QueryStats>(), CancelToken::Create(), {},
               false);
  EXPECT_EQ(off.active(), 0u);

  // A default-constructed token cannot be cancelled; watching it would be
  // a fire with no effect.
  StuckQueryWatchdog watchdog(ManualWatchdog());
  watchdog.Register(2, std::make_shared<QueryStats>(), CancelToken(), {},
                    false);
  EXPECT_EQ(watchdog.active(), 0u);
  EXPECT_FALSE(watchdog.WasKilled(2));
}

// ---------------------------------------------------------------------------
// Breaker wall-clock cooldown floor
// ---------------------------------------------------------------------------

DeviceCircuitBreaker::Options TrippyBreaker() {
  DeviceCircuitBreaker::Options options;
  options.window = 8;
  options.min_samples = 4;
  options.trip_ratio = 0.5;
  return options;
}

TEST(BreakerCooldownTest, WallClockFloorHalfOpensAnIdleBreaker) {
  DeviceCircuitBreaker::Options options = TrippyBreaker();
  options.cooldown_denials = 1'000'000;  // unreachable: only time can act
  options.cooldown_micros = 5'000;
  DeviceCircuitBreaker breaker(options);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(breaker.AllowDevice());
    breaker.RecordDeviceAbort();
  }
  ASSERT_EQ(breaker.state(), DeviceCircuitBreaker::State::kOpen);
  // Inside the floor: still denied.
  EXPECT_FALSE(breaker.AllowDevice());
  EXPECT_EQ(breaker.state(), DeviceCircuitBreaker::State::kOpen);

  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  // The floor elapsed with *no* traffic at all — the next peek half-opens
  // the breaker instead of wedging it open forever.
  EXPECT_TRUE(breaker.device_available());
  EXPECT_EQ(breaker.state(), DeviceCircuitBreaker::State::kHalfOpen);
  ASSERT_TRUE(breaker.AllowDevice());  // admitted as a probe
  breaker.RecordDeviceSuccess();
  ASSERT_TRUE(breaker.AllowDevice());
  breaker.RecordDeviceSuccess();
  EXPECT_EQ(breaker.state(), DeviceCircuitBreaker::State::kClosed);
}

TEST(BreakerCooldownTest, ZeroFloorKeepsPureDenialCountedCooldown) {
  DeviceCircuitBreaker::Options options = TrippyBreaker();
  options.cooldown_denials = 4;
  options.cooldown_micros = 0;  // floor disabled: deterministic test mode
  DeviceCircuitBreaker breaker(options);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(breaker.AllowDevice());
    breaker.RecordDeviceAbort();
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  // Time alone must not half-open it; only the counted denials do.
  EXPECT_FALSE(breaker.AllowDevice());
  EXPECT_EQ(breaker.state(), DeviceCircuitBreaker::State::kOpen);
  for (int i = 0; i < 3; ++i) EXPECT_FALSE(breaker.AllowDevice());
  EXPECT_EQ(breaker.state(), DeviceCircuitBreaker::State::kHalfOpen);
}

// ---------------------------------------------------------------------------
// Jittered retry backoff
// ---------------------------------------------------------------------------

TEST(RetryJitterTest, SeededJitterIsReproducibleAndBounded) {
  SystemConfig config = TestConfig();
  config.device_retry_backoff_micros = 50.0;
  Simulator a(config), b(config);
  for (int attempt = 0; attempt < 6; ++attempt) {
    const double ceiling = 50.0 * static_cast<double>(1 << attempt);
    const double va = a.RetryBackoffMicros(attempt);
    // Full jitter: uniform in [0, ceiling), same seed -> same draw.
    EXPECT_GE(va, 0.0);
    EXPECT_LT(va, ceiling);
    EXPECT_DOUBLE_EQ(va, b.RetryBackoffMicros(attempt)) << attempt;
  }

  // A different seed decorrelates the sequences (synchronized retry storms
  // are exactly what the jitter exists to break up).
  config.retry_jitter_seed = 0x0ddba11u;
  Simulator c(config);
  bool any_different = false;
  for (int attempt = 0; attempt < 6; ++attempt) {
    if (a.RetryBackoffMicros(attempt) != c.RetryBackoffMicros(attempt)) {
      any_different = true;
    }
  }
  EXPECT_TRUE(any_different);
}

TEST(RetryJitterTest, JitterOffYieldsDeterministicExponential) {
  SystemConfig config = TestConfig();
  config.device_retry_backoff_micros = 50.0;
  config.device_retry_jitter = false;
  Simulator sim(config);
  EXPECT_DOUBLE_EQ(sim.RetryBackoffMicros(0), 50.0);
  EXPECT_DOUBLE_EQ(sim.RetryBackoffMicros(1), 100.0);
  EXPECT_DOUBLE_EQ(sim.RetryBackoffMicros(3), 400.0);
  EXPECT_DOUBLE_EQ(sim.RetryBackoffMicros(3), 400.0);  // no hidden state
}

}  // namespace
}  // namespace hetdb
