file(REMOVE_RECURSE
  "libhetdb_placement.a"
)
