#include "server/server.h"

#include <utility>

#include "common/logging.h"
#include "engine/pipeline_builder.h"
#include "sql/planner.h"
#include "telemetry/telemetry.h"

namespace hetdb {

namespace {

int ResolveDispatchers(const ServerOptions& options) {
  if (options.dispatchers > 0) return options.dispatchers;
  return options.admission.max_concurrency;
}

/// Breaker severity for admission: open is worse than half-open is worse
/// than closed. (The enum's numeric order is kClosed < kOpen < kHalfOpen,
/// so std::max over raw values would rank half-open above open.)
int BreakerSeverity(DeviceCircuitBreaker::State state) {
  switch (state) {
    case DeviceCircuitBreaker::State::kClosed:
      return 0;
    case DeviceCircuitBreaker::State::kHalfOpen:
      return 1;
    case DeviceCircuitBreaker::State::kOpen:
      return 2;
  }
  return 0;
}

std::function<GovernorSignals()> MakeEngineSignals(EngineContext* ctx) {
  return [ctx] {
    // Admission throttles on the worst device: one thrashing or tripped
    // device is enough reason to slow intake, even if its siblings are calm.
    GovernorSignals signals;
    signals.thrash = ctx->detector(0).state();
    signals.breaker = ctx->breaker(0).state();
    for (int d = 1; d < ctx->device_count(); ++d) {
      const ThrashingDetector::State thrash = ctx->detector(d).state();
      if (static_cast<int>(thrash) > static_cast<int>(signals.thrash)) {
        signals.thrash = thrash;  // calm < pressure < thrashing, in order
      }
      const DeviceCircuitBreaker::State breaker = ctx->breaker(d).state();
      if (BreakerSeverity(breaker) > BreakerSeverity(signals.breaker)) {
        signals.breaker = breaker;
      }
    }
    return signals;
  };
}

}  // namespace

Server::Server(EngineContext* ctx, ServerOptions options)
    : ctx_(ctx),
      options_(std::move(options)),
      runner_(ctx, options_.strategy),
      admission_(options_.admission, &ctx->telemetry().registry(),
                 &ctx->flight_recorder(),
                 options_.governor_follows_engine ? MakeEngineSignals(ctx)
                                                  : nullptr) {
  const int dispatchers = ResolveDispatchers(options_);
  dispatchers_.reserve(dispatchers);
  for (int i = 0; i < dispatchers; ++i) {
    dispatchers_.emplace_back([this] { DispatcherLoop(); });
  }
}

Server::~Server() { Shutdown(); }

void Server::RegisterTenant(const TenantSpec& spec) {
  admission_.RegisterTenant(spec);
}

SessionPtr Server::OpenSession(const std::string& tenant) {
  return SessionPtr(new Session(this, tenant));
}

std::future<Result<TablePtr>> Server::Submit(const std::string& tenant,
                                             PlanNodePtr plan,
                                             SubmitOptions options) {
  // Fuse before stats registration so per-node attribution (and the plan
  // the dispatcher executes) follow the rewritten shape. Declined when the
  // caller pre-registered stats against the unfused plan.
  plan = OptimizePlan(plan, options.stats.get());
  auto query = std::make_unique<QueuedQuery>();
  query->tenant = tenant;
  query->cost = options.cost;
  query->controls.cancel = options.cancel;
  query->controls.deadline = options.deadline;
  if (options.stats != nullptr) {
    query->controls.stats = std::move(options.stats);
    RegisterPlanNodes(query->controls.stats.get(), plan);
  } else {
    query->controls.stats = MakeQueryStats(plan);
  }
  QueryStats& stats = *query->controls.stats;
  if (stats.query_id() == 0) stats.set_query_id(Telemetry::NextQueryId());
  if (!options.name.empty()) stats.set_name(options.name);
  query->plan = std::move(plan);
  std::future<Result<TablePtr>> future = query->promise.get_future();
  admission_.Offer(std::move(query));
  return future;
}

void Server::DispatcherLoop() {
  for (;;) {
    QueuedQueryPtr query = admission_.Take();
    if (query == nullptr) return;
    const auto started = std::chrono::steady_clock::now();
    Result<TablePtr> result =
        runner_.RunQuery(query->plan, std::move(query->controls));
    const int64_t service_micros =
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - started)
            .count();
    const bool ok = result.ok();
    query->promise.set_value(std::move(result));
    admission_.OnComplete(ok, service_micros);
  }
}

void Server::Shutdown() {
  admission_.Stop();
  for (std::thread& thread : dispatchers_) {
    if (thread.joinable()) thread.join();
  }
  dispatchers_.clear();
}

// --- Session --------------------------------------------------------------

std::future<Result<TablePtr>> Session::Submit(PlanNodePtr plan,
                                              SubmitOptions options) {
  return server_->Submit(tenant_, std::move(plan), std::move(options));
}

std::future<Result<TablePtr>> Session::SubmitSql(const std::string& sql,
                                                 SubmitOptions options) {
  Result<PlanNodePtr> plan = PlanSql(sql, *server_->ctx().database());
  if (!plan.ok()) {
    std::promise<Result<TablePtr>> failed;
    failed.set_value(plan.status());
    return failed.get_future();
  }
  return Submit(std::move(plan).value(), std::move(options));
}

Result<TablePtr> Session::Execute(PlanNodePtr plan, SubmitOptions options) {
  return Submit(std::move(plan), std::move(options)).get();
}

Result<TablePtr> Session::ExecuteSql(const std::string& sql,
                                     SubmitOptions options) {
  return SubmitSql(sql, std::move(options)).get();
}

}  // namespace hetdb
