#include "fault/scenario.h"

#include <algorithm>
#include <cstdlib>
#include <sstream>
#include <utility>

namespace hetdb {

namespace {
/// Long enough to outlast any run; episodes end by re-deriving schedules,
/// not by draining the counter.
constexpr int kOfflineForever = 1 << 30;
}  // namespace

const char* ChaosEpisodeKindName(ChaosEpisodeKind kind) {
  switch (kind) {
    case ChaosEpisodeKind::kDeviceLoss:
      return "device-loss";
    case ChaosEpisodeKind::kLatencyStorm:
      return "latency-storm";
    case ChaosEpisodeKind::kHeapSqueeze:
      return "heap-squeeze";
  }
  return "unknown";
}

Result<ChaosScenario> ChaosScenario::Parse(const std::string& text) {
  auto fail = [](int line_no, const std::string& what) {
    return Status::InvalidArgument("scenario line " + std::to_string(line_no) +
                                   ": " + what);
  };
  auto parse_seconds = [](const std::string& token, double* out) {
    if (token.size() < 2 || token.back() != 's') return false;
    char* end = nullptr;
    *out = std::strtod(token.c_str(), &end);
    return end == token.c_str() + token.size() - 1 && *out >= 0;
  };

  ChaosScenario scenario;
  std::istringstream stream(text);
  std::string line;
  int line_no = 0;
  while (std::getline(stream, line)) {
    ++line_no;
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream tokens_in(line);
    std::vector<std::string> tokens;
    std::string token;
    while (tokens_in >> token) tokens.push_back(token);
    if (tokens.empty()) continue;
    if (tokens.size() < 5 || tokens[0] != "at" || tokens[2] != "for") {
      return fail(line_no, "expected 'at <t>s for <d>s <kind> [key=value...]'");
    }
    ChaosEpisode episode;
    if (!parse_seconds(tokens[1], &episode.start_s)) {
      return fail(line_no, "bad start time '" + tokens[1] + "'");
    }
    if (!parse_seconds(tokens[3], &episode.duration_s)) {
      return fail(line_no, "bad duration '" + tokens[3] + "'");
    }
    if (tokens[4] == "device-loss") {
      episode.kind = ChaosEpisodeKind::kDeviceLoss;
    } else if (tokens[4] == "latency-storm") {
      episode.kind = ChaosEpisodeKind::kLatencyStorm;
    } else if (tokens[4] == "heap-squeeze") {
      episode.kind = ChaosEpisodeKind::kHeapSqueeze;
    } else {
      return fail(line_no, "unknown episode kind '" + tokens[4] + "'");
    }
    for (size_t i = 5; i < tokens.size(); ++i) {
      const size_t eq = tokens[i].find('=');
      if (eq == std::string::npos) {
        return fail(line_no, "expected key=value, got '" + tokens[i] + "'");
      }
      const std::string key = tokens[i].substr(0, eq);
      const std::string value = tokens[i].substr(eq + 1);
      if (key == "device") {
        episode.device = std::atoi(value.c_str());
      } else if (key == "p") {
        episode.probability = std::atof(value.c_str());
        if (episode.probability < 0 || episode.probability > 1) {
          return fail(line_no, "p out of [0,1]: '" + value + "'");
        }
      } else if (key == "factor") {
        episode.latency_factor = std::atof(value.c_str());
        if (episode.latency_factor < 1) {
          return fail(line_no, "factor must be >= 1: '" + value + "'");
        }
      } else if (key == "min-bytes") {
        episode.min_bytes =
            static_cast<size_t>(std::strtoull(value.c_str(), nullptr, 10));
      } else if (key == "name") {
        episode.name = value;
      } else {
        return fail(line_no, "unknown key '" + key + "'");
      }
    }
    scenario.episodes.push_back(std::move(episode));
  }
  return scenario;
}

std::string ChaosScenario::ToString() const {
  std::ostringstream out;
  for (const ChaosEpisode& episode : episodes) {
    out << "at " << episode.start_s << "s for " << episode.duration_s << "s "
        << ChaosEpisodeKindName(episode.kind) << " device=" << episode.device;
    if (episode.kind != ChaosEpisodeKind::kDeviceLoss) {
      out << " p=" << episode.probability;
    }
    if (episode.kind == ChaosEpisodeKind::kLatencyStorm) {
      out << " factor=" << episode.latency_factor;
    }
    if (episode.kind == ChaosEpisodeKind::kHeapSqueeze &&
        episode.min_bytes > 0) {
      out << " min-bytes=" << episode.min_bytes;
    }
    if (!episode.name.empty()) out << " name=" << episode.name;
    out << "\n";
  }
  return out.str();
}

ScenarioOrchestrator::ScenarioOrchestrator(
    ChaosScenario scenario, std::vector<FaultInjector*> injectors,
    MetricRegistry* registry, FlightRecorder* recorder, Hooks hooks)
    : scenario_(std::move(scenario)),
      injectors_(std::move(injectors)),
      registry_(registry),
      recorder_(recorder),
      hooks_(std::move(hooks)),
      applied_(scenario_.episodes.size(), false),
      ended_(scenario_.episodes.size(), false) {}

ScenarioOrchestrator::~ScenarioOrchestrator() { Stop(); }

std::vector<int> ScenarioOrchestrator::VictimDevices(
    const ChaosEpisode& episode) const {
  std::vector<int> victims;
  const int n = static_cast<int>(injectors_.size());
  if (episode.device < 0) {
    for (int d = 0; d < n; ++d) victims.push_back(d);
  } else if (episode.device < n) {
    victims.push_back(episode.device);
  }
  return victims;
}

void ScenarioOrchestrator::ReapplyDeviceLocked(int device) {
  FaultInjector* injector = injectors_[static_cast<size_t>(device)];
  injector->ClearAll();
  for (size_t i = 0; i < scenario_.episodes.size(); ++i) {
    if (!applied_[i] || ended_[i]) continue;
    const ChaosEpisode& episode = scenario_.episodes[i];
    if (episode.device >= 0 && episode.device != device) continue;
    switch (episode.kind) {
      case ChaosEpisodeKind::kDeviceLoss:
        injector->ForceOffline(kOfflineForever);
        break;
      case ChaosEpisodeKind::kLatencyStorm: {
        FaultSchedule storm = FaultSchedule::WithProbability(
            FaultKind::kLatencySpike, episode.probability);
        storm.latency_factor = episode.latency_factor;
        injector->SetSchedule(FaultSite::kTransfer, storm);
        injector->SetSchedule(FaultSite::kKernel, storm);
        break;
      }
      case ChaosEpisodeKind::kHeapSqueeze: {
        FaultSchedule squeeze = FaultSchedule::WithProbability(
            FaultKind::kHeapExhausted, episode.probability);
        squeeze.min_bytes = episode.min_bytes;
        injector->SetSchedule(FaultSite::kDeviceAlloc, squeeze);
        break;
      }
    }
  }
}

void ScenarioOrchestrator::ApplyEpisode(size_t index) {
  if (index >= scenario_.episodes.size()) return;
  const ChaosEpisode& episode = scenario_.episodes[index];
  std::vector<int> victims;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (applied_[index]) return;
    applied_[index] = true;
    victims = VictimDevices(episode);
    for (const int device : victims) ReapplyDeviceLocked(device);
  }
  if (registry_ != nullptr) {
    registry_->GetCounter("scenario.episodes_started").Increment();
  }
  if (recorder_ != nullptr) {
    recorder_->RecordFault(
        "scenario",
        {{"event", "start"},
         {"kind", ChaosEpisodeKindName(episode.kind)},
         {"name", episode.name},
         {"device", std::to_string(episode.device)}});
  }
  if (episode.kind == ChaosEpisodeKind::kDeviceLoss && hooks_.on_device_lost) {
    for (const int device : victims) hooks_.on_device_lost(device);
  }
}

void ScenarioOrchestrator::EndEpisode(size_t index) {
  if (index >= scenario_.episodes.size()) return;
  const ChaosEpisode& episode = scenario_.episodes[index];
  std::vector<int> victims;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!applied_[index] || ended_[index]) return;
    ended_[index] = true;
    victims = VictimDevices(episode);
    for (const int device : victims) ReapplyDeviceLocked(device);
  }
  if (registry_ != nullptr) {
    registry_->GetCounter("scenario.episodes_ended").Increment();
  }
  if (recorder_ != nullptr) {
    recorder_->RecordFault(
        "scenario",
        {{"event", "end"},
         {"kind", ChaosEpisodeKindName(episode.kind)},
         {"name", episode.name},
         {"device", std::to_string(episode.device)}});
  }
  if (episode.kind == ChaosEpisodeKind::kDeviceLoss &&
      hooks_.on_device_restored) {
    for (const int device : victims) hooks_.on_device_restored(device);
  }
}

int ScenarioOrchestrator::active_episodes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  int active = 0;
  for (size_t i = 0; i < applied_.size(); ++i) {
    if (applied_[i] && !ended_[i]) ++active;
  }
  return active;
}

void ScenarioOrchestrator::Start(double time_scale) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (thread_.joinable()) return;
  stop_ = false;
  thread_ = std::thread([this, time_scale] { TimelineLoop(time_scale); });
}

void ScenarioOrchestrator::Stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!thread_.joinable() && !stop_) {
      // Never started; still end anything manually applied below.
    }
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  for (size_t i = 0; i < scenario_.episodes.size(); ++i) EndEpisode(i);
}

void ScenarioOrchestrator::TimelineLoop(double time_scale) {
  struct Event {
    double at_s;
    size_t index;
    bool is_start;
  };
  std::vector<Event> events;
  for (size_t i = 0; i < scenario_.episodes.size(); ++i) {
    const ChaosEpisode& episode = scenario_.episodes[i];
    events.push_back({episode.start_s, i, true});
    events.push_back({episode.start_s + episode.duration_s, i, false});
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const Event& a, const Event& b) {
                     if (a.at_s != b.at_s) return a.at_s < b.at_s;
                     // Ends before starts at the same instant.
                     return !a.is_start && b.is_start;
                   });
  const auto epoch = std::chrono::steady_clock::now();
  for (const Event& event : events) {
    const auto when =
        epoch + std::chrono::microseconds(static_cast<int64_t>(
                    event.at_s * time_scale * 1'000'000.0));
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait_until(lock, when, [this] { return stop_; });
      if (stop_) return;
    }
    if (event.is_start) {
      ApplyEpisode(event.index);
    } else {
      EndEpisode(event.index);
    }
  }
}

}  // namespace hetdb
