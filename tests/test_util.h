#ifndef HETDB_TESTS_TEST_UTIL_H_
#define HETDB_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "common/config.h"
#include "storage/database.h"

namespace hetdb {

/// Deep equality of two tables: same column names, types, and values (exact
/// for integers/strings, 1e-9-relative for doubles). Used to verify that
/// every placement strategy computes bit-identical query results.
inline ::testing::AssertionResult TablesEqual(const Table& a, const Table& b) {
  if (a.num_columns() != b.num_columns()) {
    return ::testing::AssertionFailure()
           << "column count " << a.num_columns() << " vs " << b.num_columns();
  }
  if (a.num_rows() != b.num_rows()) {
    return ::testing::AssertionFailure()
           << "row count " << a.num_rows() << " vs " << b.num_rows();
  }
  for (size_t c = 0; c < a.num_columns(); ++c) {
    const Column& ca = *a.columns()[c];
    const Column& cb = *b.columns()[c];
    if (ca.name() != cb.name()) {
      return ::testing::AssertionFailure()
             << "column " << c << " name " << ca.name() << " vs " << cb.name();
    }
    if (ca.type() != cb.type()) {
      return ::testing::AssertionFailure()
             << "column " << ca.name() << " type mismatch";
    }
    for (size_t r = 0; r < a.num_rows(); ++r) {
      bool equal = true;
      std::string va, vb;
      switch (ca.type()) {
        case DataType::kInt32: {
          const auto x = static_cast<const Int32Column&>(ca).value(r);
          const auto y = static_cast<const Int32Column&>(cb).value(r);
          equal = x == y;
          va = std::to_string(x);
          vb = std::to_string(y);
          break;
        }
        case DataType::kInt64: {
          const auto x = static_cast<const Int64Column&>(ca).value(r);
          const auto y = static_cast<const Int64Column&>(cb).value(r);
          equal = x == y;
          va = std::to_string(x);
          vb = std::to_string(y);
          break;
        }
        case DataType::kDouble: {
          const double x = static_cast<const DoubleColumn&>(ca).value(r);
          const double y = static_cast<const DoubleColumn&>(cb).value(r);
          const double scale = std::max({std::abs(x), std::abs(y), 1.0});
          equal = std::abs(x - y) <= 1e-9 * scale;
          va = std::to_string(x);
          vb = std::to_string(y);
          break;
        }
        case DataType::kString: {
          const auto x = static_cast<const StringColumn&>(ca).value(r);
          const auto y = static_cast<const StringColumn&>(cb).value(r);
          equal = x == y;
          va = std::string(x);
          vb = std::string(y);
          break;
        }
      }
      if (!equal) {
        return ::testing::AssertionFailure()
               << "column " << ca.name() << " row " << r << ": " << va
               << " vs " << vb;
      }
    }
  }
  return ::testing::AssertionSuccess();
}

/// Tiny star-shaped database for engine tests: fact(fk, v) x 1000 rows,
/// dim(key, name) x 10 rows.
inline DatabasePtr MakeTinyDb() {
  auto db = std::make_shared<Database>();
  auto fact = std::make_shared<Table>("fact");
  std::vector<int32_t> fk(1000), v(1000);
  for (int i = 0; i < 1000; ++i) {
    fk[i] = i % 10 + 1;
    v[i] = i % 97;
  }
  EXPECT_TRUE(
      fact->AddColumn(std::make_shared<Int32Column>("fk", std::move(fk))).ok());
  EXPECT_TRUE(
      fact->AddColumn(std::make_shared<Int32Column>("v", std::move(v))).ok());
  EXPECT_TRUE(db->AddTable(fact).ok());

  auto dim = std::make_shared<Table>("dim");
  std::vector<int32_t> key(10);
  auto name = StringColumn::FromDictionary(
      "name", {"d0", "d1", "d2", "d3", "d4", "d5", "d6", "d7", "d8", "d9"});
  for (int i = 0; i < 10; ++i) {
    key[i] = i + 1;
    name->AppendCode(i);
  }
  EXPECT_TRUE(
      dim->AddColumn(std::make_shared<Int32Column>("key", std::move(key))).ok());
  EXPECT_TRUE(dim->AddColumn(std::move(name)).ok());
  EXPECT_TRUE(db->AddTable(dim).ok());
  return db;
}

/// Engine configuration for unit tests: no sleeps, roomy device.
inline SystemConfig TestConfig() {
  SystemConfig config;
  config.simulate_time = false;
  config.device_memory_bytes = 1ull << 20;
  config.device_cache_bytes = 512ull << 10;
  return config;
}

}  // namespace hetdb

#endif  // HETDB_TESTS_TEST_UTIL_H_
