// Figure 9: run-time operator placement reduces the contention penalty by up
// to 2x (aborted operators' successors stay on the CPU instead of paying
// transfers back to the device), but without a concurrency limit it is still
// well above the optimum.

#include "bench/bench_util.h"

using namespace hetdb;
using namespace hetdb::bench;

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv);
  const double sf = args.quick ? 5 : 10;
  const int total_queries = args.quick ? 24 : 48;

  SsbGeneratorOptions gen;
  args.ApplySeed(gen);
  gen.scale_factor = sf;
  DatabasePtr db = GenerateSsbDatabase(gen);

  Banner("Figure 9",
         "Parallel selection workload (B.2): run-time placement without "
         "concurrency limiting vs compile-time GPU-Only");

  RunContentionSweep(args, db,
                     {Strategy::kRunTime, Strategy::kGpuOnly,
                      Strategy::kCpuOnly},
                     {ContentionMetric::kWallMillis}, total_queries);
  return 0;
}
