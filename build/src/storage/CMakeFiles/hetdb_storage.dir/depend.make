# Empty dependencies file for hetdb_storage.
# This may be replaced when dependencies are built.
