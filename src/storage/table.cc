#include "storage/table.h"

namespace hetdb {

Status Table::AddColumn(ColumnPtr column) {
  if (column == nullptr) {
    return Status::InvalidArgument("null column");
  }
  if (column_index_.count(column->name()) > 0) {
    return Status::AlreadyExists("column '" + column->name() +
                                 "' already exists in table " + name_);
  }
  if (!columns_.empty() && column->num_rows() != num_rows()) {
    return Status::InvalidArgument(
        "column '" + column->name() + "' has " +
        std::to_string(column->num_rows()) + " rows, table " + name_ +
        " has " + std::to_string(num_rows()));
  }
  column_index_[column->name()] = columns_.size();
  columns_.push_back(std::move(column));
  return Status::OK();
}

Result<ColumnPtr> Table::GetColumn(const std::string& name) const {
  auto it = column_index_.find(name);
  if (it == column_index_.end()) {
    return Status::NotFound("no column '" + name + "' in table " + name_);
  }
  return columns_[it->second];
}

bool Table::HasColumn(const std::string& name) const {
  return column_index_.count(name) > 0;
}

size_t Table::data_bytes() const {
  size_t total = 0;
  for (const auto& column : columns_) total += column->data_bytes();
  return total;
}

}  // namespace hetdb
