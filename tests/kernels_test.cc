#include <gtest/gtest.h>

#include "operators/kernels.h"

namespace hetdb {
namespace {

TablePtr MakeTable() {
  auto table = std::make_shared<Table>("t");
  EXPECT_TRUE(table
                  ->AddColumn(std::make_shared<Int32Column>(
                      "i32", std::vector<int32_t>{5, 3, 8, 3, 1}))
                  .ok());
  EXPECT_TRUE(table
                  ->AddColumn(std::make_shared<Int64Column>(
                      "i64", std::vector<int64_t>{50, 30, 80, 30, 10}))
                  .ok());
  EXPECT_TRUE(table
                  ->AddColumn(std::make_shared<DoubleColumn>(
                      "f64", std::vector<double>{0.5, 0.3, 0.8, 0.3, 0.1}))
                  .ok());
  auto str = StringColumn::FromDictionary("str", {"apple", "banana", "pear"});
  for (int32_t code : {1, 0, 2, 0, 1}) str->AppendCode(code);
  EXPECT_TRUE(table->AddColumn(std::move(str)).ok());
  return table;
}

std::vector<uint32_t> Filter(const Table& table, Predicate p) {
  auto rows = EvaluateFilter(table, ConjunctiveFilter::And({std::move(p)}));
  EXPECT_TRUE(rows.ok());
  return rows.value();
}

using Rows = std::vector<uint32_t>;

TEST(FilterTest, Int32ComparisonOperators) {
  TablePtr t = MakeTable();
  EXPECT_EQ(Filter(*t, Predicate::Eq("i32", int64_t{3})), (Rows{1, 3}));
  EXPECT_EQ(Filter(*t, Predicate::Ne("i32", int64_t{3})), (Rows{0, 2, 4}));
  EXPECT_EQ(Filter(*t, Predicate::Lt("i32", int64_t{4})), (Rows{1, 3, 4}));
  EXPECT_EQ(Filter(*t, Predicate::Le("i32", int64_t{3})), (Rows{1, 3, 4}));
  EXPECT_EQ(Filter(*t, Predicate::Gt("i32", int64_t{5})), (Rows{2}));
  EXPECT_EQ(Filter(*t, Predicate::Ge("i32", int64_t{5})), (Rows{0, 2}));
  EXPECT_EQ(Filter(*t, Predicate::Between("i32", int64_t{3}, int64_t{5})),
            (Rows{0, 1, 3}));
}

TEST(FilterTest, Int64AndDoubleColumns) {
  TablePtr t = MakeTable();
  EXPECT_EQ(Filter(*t, Predicate::Ge("i64", int64_t{50})), (Rows{0, 2}));
  EXPECT_EQ(Filter(*t, Predicate::Lt("f64", 0.4)), (Rows{1, 3, 4}));
  EXPECT_EQ(Filter(*t, Predicate::Between("f64", 0.25, 0.55)), (Rows{0, 1, 3}));
}

TEST(FilterTest, StringEqualityAndInequality) {
  TablePtr t = MakeTable();
  EXPECT_EQ(Filter(*t, Predicate::Eq("str", "banana")), (Rows{0, 4}));
  EXPECT_EQ(Filter(*t, Predicate::Ne("str", "banana")), (Rows{1, 2, 3}));
  // Constant not in the dictionary.
  EXPECT_EQ(Filter(*t, Predicate::Eq("str", "grape")), (Rows{}));
  EXPECT_EQ(Filter(*t, Predicate::Ne("str", "grape")), (Rows{0, 1, 2, 3, 4}));
}

TEST(FilterTest, StringRangesViaDictionaryCodes) {
  TablePtr t = MakeTable();
  EXPECT_EQ(Filter(*t, Predicate::Lt("str", "banana")), (Rows{1, 3}));
  EXPECT_EQ(Filter(*t, Predicate::Le("str", "banana")), (Rows{0, 1, 3, 4}));
  EXPECT_EQ(Filter(*t, Predicate::Gt("str", "banana")), (Rows{2}));
  EXPECT_EQ(Filter(*t, Predicate::Ge("str", "banana")), (Rows{0, 2, 4}));
  EXPECT_EQ(Filter(*t, Predicate::Between("str", "apple", "banana")),
            (Rows{0, 1, 3, 4}));
  // Bounds that are not dictionary members still work (lexicographic).
  EXPECT_EQ(Filter(*t, Predicate::Between("str", "b", "c")), (Rows{0, 4}));
}

TEST(FilterTest, ConjunctionAndDisjunction) {
  TablePtr t = MakeTable();
  ConjunctiveFilter cnf;
  cnf.conjuncts.push_back(Disjunction{Predicate::Eq("i32", int64_t{3}),
                                      Predicate::Eq("i32", int64_t{8})});
  cnf.conjuncts.push_back(Disjunction(Predicate::Ge("i64", int64_t{30})));
  auto rows = EvaluateFilter(*t, cnf);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows.value(), (Rows{1, 2, 3}));
}

TEST(FilterTest, EmptyFilterSelectsEverything) {
  TablePtr t = MakeTable();
  auto rows = EvaluateFilter(*t, ConjunctiveFilter{});
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows.value().size(), 5u);
}

TEST(FilterTest, ErrorsAreReported) {
  TablePtr t = MakeTable();
  auto missing = EvaluateFilter(
      *t, ConjunctiveFilter::And({Predicate::Eq("nope", int64_t{1})}));
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
  auto type_mismatch = EvaluateFilter(
      *t, ConjunctiveFilter::And({Predicate::Eq("str", int64_t{1})}));
  EXPECT_EQ(type_mismatch.status().code(), StatusCode::kInvalidArgument);
  auto numeric_vs_string = EvaluateFilter(
      *t, ConjunctiveFilter::And({Predicate::Eq("i32", "three")}));
  EXPECT_EQ(numeric_vs_string.status().code(), StatusCode::kInvalidArgument);
}

TEST(GatherTest, GathersAllColumnTypes) {
  TablePtr t = MakeTable();
  auto out = GatherRows(*t, {4, 0}, "g");
  ASSERT_TRUE(out.ok());
  const Table& g = *out.value();
  EXPECT_EQ(g.num_rows(), 2u);
  EXPECT_EQ(ColumnCast<Int32Column>(*g.GetColumn("i32").value()).value(0), 1);
  EXPECT_EQ(ColumnCast<Int64Column>(*g.GetColumn("i64").value()).value(1), 50);
  EXPECT_EQ(ColumnCast<DoubleColumn>(*g.GetColumn("f64").value()).value(0), 0.1);
  EXPECT_EQ(ColumnCast<StringColumn>(*g.GetColumn("str").value()).value(1),
            "banana");
}

TablePtr MakeDim() {
  auto dim = std::make_shared<Table>("dim");
  EXPECT_TRUE(dim->AddColumn(std::make_shared<Int32Column>(
                                 "key", std::vector<int32_t>{1, 2, 3}))
                  .ok());
  auto name = StringColumn::FromDictionary("name", {"one", "three", "two"});
  name->AppendCode(0);  // key 1 -> one
  name->AppendCode(2);  // key 2 -> two
  name->AppendCode(1);  // key 3 -> three
  EXPECT_TRUE(dim->AddColumn(std::move(name)).ok());
  return dim;
}

TablePtr MakeFact() {
  auto fact = std::make_shared<Table>("fact");
  EXPECT_TRUE(fact->AddColumn(std::make_shared<Int32Column>(
                                  "fk", std::vector<int32_t>{2, 9, 1, 2, 3}))
                  .ok());
  EXPECT_TRUE(fact->AddColumn(
                      std::make_shared<Int32Column>(
                          "measure", std::vector<int32_t>{10, 20, 30, 40, 50}))
                  .ok());
  return fact;
}

TEST(HashJoinTest, PkFkJoin) {
  TablePtr dim = MakeDim(), fact = MakeFact();
  JoinOutputSpec spec;
  spec.build_columns = {"name"};
  spec.probe_columns = {"measure"};
  auto out = HashJoin(*dim, "key", *fact, "fk", spec, "j");
  ASSERT_TRUE(out.ok());
  const Table& j = *out.value();
  ASSERT_EQ(j.num_rows(), 4u);  // fk=9 has no match
  const auto& name = ColumnCast<StringColumn>(*j.GetColumn("name").value());
  const auto& measure = ColumnCast<Int32Column>(*j.GetColumn("measure").value());
  EXPECT_EQ(name.value(0), "two");
  EXPECT_EQ(measure.value(0), 10);
  EXPECT_EQ(name.value(1), "one");
  EXPECT_EQ(measure.value(1), 30);
  EXPECT_EQ(name.value(3), "three");
  EXPECT_EQ(measure.value(3), 50);
}

TEST(HashJoinTest, DuplicateBuildKeys) {
  auto build = std::make_shared<Table>("b");
  ASSERT_TRUE(build
                  ->AddColumn(std::make_shared<Int32Column>(
                      "key", std::vector<int32_t>{1, 1, 2}))
                  .ok());
  ASSERT_TRUE(build
                  ->AddColumn(std::make_shared<Int32Column>(
                      "v", std::vector<int32_t>{100, 200, 300}))
                  .ok());
  auto probe = std::make_shared<Table>("p");
  ASSERT_TRUE(probe
                  ->AddColumn(std::make_shared<Int32Column>(
                      "key", std::vector<int32_t>{1, 2}))
                  .ok());
  JoinOutputSpec spec;
  spec.build_columns = {"v"};
  spec.probe_columns = {"key"};
  auto out = HashJoin(*build, "key", *probe, "key", spec, "j");
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value()->num_rows(), 3u);  // key 1 matches twice
}

TEST(HashJoinTest, AliasesRenameOutputs) {
  TablePtr dim = MakeDim(), fact = MakeFact();
  JoinOutputSpec spec;
  spec.build_columns = {"name", "key"};
  spec.probe_columns = {"measure"};
  spec.build_aliases = {"dim_name", "dim_key"};
  auto out = HashJoin(*dim, "key", *fact, "fk", spec, "j");
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out.value()->HasColumn("dim_name"));
  EXPECT_TRUE(out.value()->HasColumn("dim_key"));
  EXPECT_FALSE(out.value()->HasColumn("name"));
}

TEST(HashJoinTest, RejectsNonIntegerKeys) {
  TablePtr dim = MakeDim(), fact = MakeFact();
  JoinOutputSpec spec;
  auto out = HashJoin(*dim, "name", *fact, "fk", spec, "j");
  EXPECT_EQ(out.status().code(), StatusCode::kInvalidArgument);
}

TEST(HashJoinTest, EmptyProbeYieldsEmptyOutput) {
  TablePtr dim = MakeDim();
  auto probe = std::make_shared<Table>("p");
  ASSERT_TRUE(probe->AddColumn(std::make_shared<Int32Column>("fk")).ok());
  JoinOutputSpec spec;
  spec.build_columns = {"name"};
  auto out = HashJoin(*dim, "key", *probe, "fk", spec, "j");
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value()->num_rows(), 0u);
}

TEST(AggregateTest, UngroupedAggregates) {
  TablePtr t = MakeTable();
  auto out =
      Aggregate(*t, {},
                {{AggregateFn::kSum, "i32", "s"},
                 {AggregateFn::kCount, "", "n"},
                 {AggregateFn::kMin, "i32", "lo"},
                 {AggregateFn::kMax, "i32", "hi"},
                 {AggregateFn::kAvg, "i32", "avg"}},
                "a");
  ASSERT_TRUE(out.ok());
  const Table& a = *out.value();
  ASSERT_EQ(a.num_rows(), 1u);
  EXPECT_EQ(ColumnCast<Int64Column>(*a.GetColumn("s").value()).value(0), 20);
  EXPECT_EQ(ColumnCast<Int64Column>(*a.GetColumn("n").value()).value(0), 5);
  EXPECT_EQ(ColumnCast<Int64Column>(*a.GetColumn("lo").value()).value(0), 1);
  EXPECT_EQ(ColumnCast<Int64Column>(*a.GetColumn("hi").value()).value(0), 8);
  EXPECT_DOUBLE_EQ(ColumnCast<DoubleColumn>(*a.GetColumn("avg").value()).value(0),
                   4.0);
}

TEST(AggregateTest, GroupByStringColumn) {
  TablePtr t = MakeTable();
  auto out = Aggregate(*t, {"str"}, {{AggregateFn::kSum, "i32", "s"}}, "a");
  ASSERT_TRUE(out.ok());
  const Table& a = *out.value();
  ASSERT_EQ(a.num_rows(), 3u);  // banana, apple, pear in first-seen order
  const auto& keys = ColumnCast<StringColumn>(*a.GetColumn("str").value());
  const auto& sums = ColumnCast<Int64Column>(*a.GetColumn("s").value());
  EXPECT_EQ(keys.value(0), "banana");
  EXPECT_EQ(sums.value(0), 5 + 1);
  EXPECT_EQ(keys.value(1), "apple");
  EXPECT_EQ(sums.value(1), 3 + 3);
  EXPECT_EQ(keys.value(2), "pear");
  EXPECT_EQ(sums.value(2), 8);
}

TEST(AggregateTest, MultiColumnGroupBy) {
  auto t = std::make_shared<Table>("t");
  ASSERT_TRUE(t->AddColumn(std::make_shared<Int32Column>(
                               "g1", std::vector<int32_t>{1, 1, 2, 1}))
                  .ok());
  ASSERT_TRUE(t->AddColumn(std::make_shared<Int32Column>(
                               "g2", std::vector<int32_t>{1, 2, 1, 1}))
                  .ok());
  ASSERT_TRUE(t->AddColumn(std::make_shared<Int32Column>(
                               "v", std::vector<int32_t>{10, 20, 30, 40}))
                  .ok());
  auto out = Aggregate(*t, {"g1", "g2"}, {{AggregateFn::kSum, "v", "s"}}, "a");
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out.value()->num_rows(), 3u);
  const auto& sums = ColumnCast<Int64Column>(*out.value()->GetColumn("s").value());
  EXPECT_EQ(sums.value(0), 50);  // (1,1)
  EXPECT_EQ(sums.value(1), 20);  // (1,2)
  EXPECT_EQ(sums.value(2), 30);  // (2,1)
}

TEST(AggregateTest, DoubleInputsYieldDoubleSums) {
  TablePtr t = MakeTable();
  auto out = Aggregate(*t, {}, {{AggregateFn::kSum, "f64", "s"}}, "a");
  ASSERT_TRUE(out.ok());
  EXPECT_DOUBLE_EQ(
      ColumnCast<DoubleColumn>(*out.value()->GetColumn("s").value()).value(0),
      2.0);
}

TEST(AggregateTest, EmptyInputProducesNoGroups) {
  auto t = std::make_shared<Table>("t");
  ASSERT_TRUE(t->AddColumn(std::make_shared<Int32Column>("v")).ok());
  auto out = Aggregate(*t, {"v"}, {{AggregateFn::kSum, "v", "s"}}, "a");
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value()->num_rows(), 0u);
}

TEST(SortTest, SingleKeyAscendingDescending) {
  TablePtr t = MakeTable();
  auto asc = Sort(*t, {{"i32", true}}, "s");
  ASSERT_TRUE(asc.ok());
  const auto& av = ColumnCast<Int32Column>(*asc.value()->GetColumn("i32").value());
  EXPECT_EQ(av.values(), (std::vector<int32_t>{1, 3, 3, 5, 8}));
  auto desc = Sort(*t, {{"i32", false}}, "s");
  ASSERT_TRUE(desc.ok());
  const auto& dv =
      ColumnCast<Int32Column>(*desc.value()->GetColumn("i32").value());
  EXPECT_EQ(dv.values(), (std::vector<int32_t>{8, 5, 3, 3, 1}));
}

TEST(SortTest, MultiKeyWithStringTieBreak) {
  TablePtr t = MakeTable();
  // i32 has a tie at 3 (rows 1 and 3, strings "apple"/"apple"); add f64 as
  // final tie break to make the expectation exact: stable sort keeps input
  // order for full ties.
  auto out = Sort(*t, {{"i32", true}, {"str", true}}, "s");
  ASSERT_TRUE(out.ok());
  const auto& v = ColumnCast<Int32Column>(*out.value()->GetColumn("i32").value());
  EXPECT_EQ(v.values(), (std::vector<int32_t>{1, 3, 3, 5, 8}));
  const auto& s = ColumnCast<StringColumn>(*out.value()->GetColumn("str").value());
  EXPECT_EQ(s.value(0), "banana");
  EXPECT_EQ(s.value(1), "apple");
  EXPECT_EQ(s.value(2), "apple");
}

TEST(SortTest, SortsByStringKey) {
  TablePtr t = MakeTable();
  auto out = Sort(*t, {{"str", true}}, "s");
  ASSERT_TRUE(out.ok());
  const auto& s = ColumnCast<StringColumn>(*out.value()->GetColumn("str").value());
  EXPECT_EQ(s.value(0), "apple");
  EXPECT_EQ(s.value(4), "pear");
}

TEST(ProjectTest, AliasesAndArithmetic) {
  TablePtr t = MakeTable();
  auto out = Project(
      *t, {"str"},
      {ArithmeticExpr::ColumnOp("sum", ArithmeticExpr::Op::kAdd, "i32", "i64"),
       ArithmeticExpr::ConstantOp("half", ArithmeticExpr::Op::kDiv, "i32", 2),
       ArithmeticExpr::ConstantMinusColumn("inv", 10, "i32")},
      "p");
  ASSERT_TRUE(out.ok());
  const Table& p = *out.value();
  EXPECT_EQ(p.num_columns(), 4u);
  const auto& sum = ColumnCast<Int64Column>(*p.GetColumn("sum").value());
  EXPECT_EQ(sum.value(0), 55);
  const auto& half = ColumnCast<DoubleColumn>(*p.GetColumn("half").value());
  EXPECT_DOUBLE_EQ(half.value(2), 4.0);
  const auto& inv = ColumnCast<Int64Column>(*p.GetColumn("inv").value());
  EXPECT_EQ(inv.value(0), 5);
  EXPECT_EQ(inv.value(2), 2);
}

TEST(ProjectTest, KeepAliasesShareData) {
  TablePtr t = MakeTable();
  auto out = Project(*t, {"i32"}, {}, "p");
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value()->GetColumn("i32").value().get(),
            t->GetColumn("i32").value().get());
}

TEST(ProjectTest, DoublePropagates) {
  TablePtr t = MakeTable();
  auto out = Project(*t, {},
                     {ArithmeticExpr::ColumnOp(
                         "x", ArithmeticExpr::Op::kMul, "i32", "f64")},
                     "p");
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value()->GetColumn("x").value()->type(), DataType::kDouble);
}

TEST(LimitTest, TakesFirstRows) {
  TablePtr t = MakeTable();
  auto out = Limit(*t, 2, "l");
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value()->num_rows(), 2u);
  auto all = Limit(*t, 100, "l");
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all.value()->num_rows(), 5u);
}

TEST(FilterInputBytesTest, SumsReferencedColumns) {
  TablePtr t = MakeTable();
  ConjunctiveFilter cnf = ConjunctiveFilter::And(
      {Predicate::Eq("i32", int64_t{1}), Predicate::Eq("i64", int64_t{1})});
  EXPECT_EQ(FilterInputBytes(*t, cnf), 5 * 4 + 5 * 8u);
}

}  // namespace
}  // namespace hetdb
