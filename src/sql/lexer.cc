#include "sql/lexer.h"

#include <algorithm>
#include <cctype>
#include <unordered_set>

namespace hetdb {

namespace {

const std::unordered_set<std::string>& Keywords() {
  static const auto* keywords = new std::unordered_set<std::string>{
      "SELECT", "FROM",  "WHERE",  "GROUP", "BY",    "ORDER",  "LIMIT",
      "AND",    "OR",    "AS",     "ASC",   "DESC",  "BETWEEN", "IN",
      "SUM",    "COUNT", "MIN",    "MAX",   "AVG",   "NOT",
      "EXPLAIN", "ANALYZE",
  };
  return *keywords;
}

bool IsIdentifierStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentifierChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

Result<std::vector<Token>> Tokenize(const std::string& sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = sql.size();
  while (i < n) {
    const char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    Token token;
    token.position = i;

    if (IsIdentifierStart(c)) {
      size_t j = i;
      while (j < n && IsIdentifierChar(sql[j])) ++j;
      std::string word = sql.substr(i, j - i);
      std::string upper = word;
      std::transform(upper.begin(), upper.end(), upper.begin(), ::toupper);
      if (Keywords().count(upper) > 0) {
        token.kind = TokenKind::kKeyword;
        token.text = upper;
      } else {
        token.kind = TokenKind::kIdentifier;
        token.text = word;
      }
      i = j;
    } else if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t j = i;
      bool is_float = false;
      while (j < n && (std::isdigit(static_cast<unsigned char>(sql[j])) ||
                       sql[j] == '.')) {
        if (sql[j] == '.') {
          // "1.5" is a float; "t.c" never starts with a digit.
          if (is_float) break;
          is_float = true;
        }
        ++j;
      }
      const std::string spelling = sql.substr(i, j - i);
      token.text = spelling;
      if (is_float) {
        token.kind = TokenKind::kFloat;
        token.float_value = std::stod(spelling);
      } else {
        token.kind = TokenKind::kInteger;
        token.int_value = std::stoll(spelling);
      }
      i = j;
    } else if (c == '\'') {
      size_t j = i + 1;
      std::string value;
      while (j < n && sql[j] != '\'') value.push_back(sql[j++]);
      if (j >= n) {
        return Status::InvalidArgument(
            "unterminated string literal at position " + std::to_string(i));
      }
      token.kind = TokenKind::kString;
      token.text = value;
      i = j + 1;
    } else {
      // Two-character comparison symbols first.
      if (i + 1 < n) {
        const std::string two = sql.substr(i, 2);
        if (two == "<=" || two == ">=" || two == "<>" || two == "!=") {
          token.kind = TokenKind::kSymbol;
          token.text = two == "!=" ? "<>" : two;
          tokens.push_back(token);
          i += 2;
          continue;
        }
      }
      static const std::string kSingles = "(),*.=<>+-/;";
      if (kSingles.find(c) == std::string::npos) {
        return Status::InvalidArgument("unexpected character '" +
                                       std::string(1, c) + "' at position " +
                                       std::to_string(i));
      }
      token.kind = TokenKind::kSymbol;
      token.text = std::string(1, c);
      ++i;
    }
    tokens.push_back(token);
  }
  Token end;
  end.kind = TokenKind::kEnd;
  end.position = n;
  tokens.push_back(end);
  return tokens;
}

}  // namespace hetdb
