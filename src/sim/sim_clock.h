#ifndef HETDB_SIM_SIM_CLOCK_H_
#define HETDB_SIM_SIM_CLOCK_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>

namespace hetdb {

/// Realizes modeled durations as wall-clock time.
///
/// The co-processor simulator computes how long an operation *would* take on
/// the modeled hardware (device kernel, PCIe transfer, CPU kernel) and asks
/// the clock to make that duration pass. In simulation mode the calling
/// thread sleeps; threads sleeping concurrently therefore model concurrent
/// hardware, and wall-clock measurements of the engine equal modeled time.
/// With simulation disabled (unit tests) durations are only accumulated.
class SimClock {
 public:
  SimClock(bool simulate, double time_scale)
      : simulate_(simulate), time_scale_(time_scale) {}

  /// Lets `micros` microseconds of modeled time pass (scaled by the
  /// configured time_scale). Thread-safe.
  void Charge(double micros) {
    if (micros <= 0) return;
    total_charged_micros_.fetch_add(static_cast<int64_t>(micros),
                                    std::memory_order_relaxed);
    if (!simulate_) return;
    const double scaled = micros * time_scale_;
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::micro>(scaled));
  }

  bool simulate() const { return simulate_; }
  double time_scale() const { return time_scale_; }

  /// Sum of all modeled durations charged so far (unscaled), across threads.
  int64_t total_charged_micros() const {
    return total_charged_micros_.load(std::memory_order_relaxed);
  }

 private:
  bool simulate_;
  double time_scale_;
  std::atomic<int64_t> total_charged_micros_{0};
};

}  // namespace hetdb

#endif  // HETDB_SIM_SIM_CLOCK_H_
