#ifndef HETDB_HYPE_LOAD_TRACKER_H_
#define HETDB_HYPE_LOAD_TRACKER_H_

#include <atomic>
#include <cstdint>

#include "sim/simulator.h"

namespace hetdb {

/// Tracks the estimated completion time of each processor's ready queue.
///
/// The paper's chopping executor "keeps track of the load on each processor
/// by estimating the completion time of each processor's ready queue"
/// (Section 5.2). Operators add their cost estimate when enqueued and remove
/// it when they finish; the scheduler prefers the processor whose queue
/// drains first.
class LoadTracker {
 public:
  LoadTracker() = default;

  LoadTracker(const LoadTracker&) = delete;
  LoadTracker& operator=(const LoadTracker&) = delete;

  void AddPending(ProcessorKind processor, double estimated_micros) {
    pending_micros_[Index(processor)].fetch_add(
        static_cast<int64_t>(estimated_micros), std::memory_order_relaxed);
  }

  void RemovePending(ProcessorKind processor, double estimated_micros) {
    pending_micros_[Index(processor)].fetch_sub(
        static_cast<int64_t>(estimated_micros), std::memory_order_relaxed);
  }

  /// Estimated microseconds until the processor's queue drains.
  double PendingMicros(ProcessorKind processor) const {
    const int64_t value =
        pending_micros_[Index(processor)].load(std::memory_order_relaxed);
    return value > 0 ? static_cast<double>(value) : 0.0;
  }

  void Reset() {
    pending_micros_[0].store(0, std::memory_order_relaxed);
    pending_micros_[1].store(0, std::memory_order_relaxed);
  }

 private:
  static int Index(ProcessorKind processor) {
    return static_cast<int>(processor);
  }

  std::atomic<int64_t> pending_micros_[2] = {};
};

}  // namespace hetdb

#endif  // HETDB_HYPE_LOAD_TRACKER_H_
