// Figure 17: per-query execution times of selected SSB queries for a single
// user at scale factor 30 (working set well beyond the device cache).
// Expected shape: GPU-Only slows every query down; Critical Path matches
// CPU-Only; Data-Driven Chopping helps most on the high-selectivity queries
// (Q2.3, Q3.4, Q4.3 — small intermediate results, cheap switch-back).

#include "bench/bench_util.h"

using namespace hetdb;
using namespace hetdb::bench;

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv);
  const double sf = args.quick ? 10 : 30;
  const std::vector<std::string> query_names = {"Q1.1", "Q2.1", "Q2.3",
                                                "Q3.1", "Q3.4", "Q4.1",
                                                "Q4.3"};
  const std::vector<Strategy> strategies = {
      Strategy::kCpuOnly, Strategy::kGpuOnly, Strategy::kCriticalPath,
      Strategy::kDataDrivenChopping};

  Banner("Figure 17",
         "Selected SSB query times, single user, SF " +
             std::to_string(static_cast<int>(sf)));

  SsbGeneratorOptions gen;
  args.ApplySeed(gen);
  gen.scale_factor = sf;
  DatabasePtr db = GenerateSsbDatabase(gen);

  std::vector<NamedQuery> queries;
  for (const std::string& name : query_names) {
    Result<NamedQuery> query = SsbQueryByName(name);
    HETDB_CHECK(query.ok());
    queries.push_back(std::move(query).value());
  }

  std::vector<std::string> header = {"query"};
  for (Strategy strategy : strategies) {
    header.push_back(std::string(StrategyToString(strategy)) + "[ms]");
  }
  PrintHeader(header);

  // One workload run per strategy; per-query latencies from the driver.
  std::vector<WorkloadRunResult> results;
  for (Strategy strategy : strategies) {
    WorkloadRunOptions options;
    options.repetitions = 1;
    options.warmup_repetitions = 1;
    results.push_back(RunPoint(PaperConfig(args.time_scale), db, strategy,
                               queries, options));
  }
  for (const std::string& name : query_names) {
    PrintCell(name);
    for (const WorkloadRunResult& result : results) {
      auto it = result.latency_ms_by_query.find(name);
      PrintCell(it != result.latency_ms_by_query.end() ? it->second : -1.0);
    }
    EndRow();
  }
  return 0;
}
