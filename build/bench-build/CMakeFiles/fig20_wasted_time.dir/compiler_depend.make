# Empty compiler generated dependencies file for fig20_wasted_time.
# This may be replaced when dependencies are built.
