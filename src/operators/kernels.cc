#include "operators/kernels.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <unordered_map>

#include "common/logging.h"

namespace hetdb {

namespace {

// ---------------------------------------------------------------------------
// Predicate evaluation
// ---------------------------------------------------------------------------

template <typename T, typename U>
bool CompareValues(T lhs, CompareOp op, U rhs, U rhs2) {
  switch (op) {
    case CompareOp::kEq:
      return lhs == rhs;
    case CompareOp::kNe:
      return lhs != rhs;
    case CompareOp::kLt:
      return lhs < rhs;
    case CompareOp::kLe:
      return lhs <= rhs;
    case CompareOp::kGt:
      return lhs > rhs;
    case CompareOp::kGe:
      return lhs >= rhs;
    case CompareOp::kBetween:
      return lhs >= rhs && lhs <= rhs2;
  }
  return false;
}

Result<double> ValueAsDouble(const Value& value) {
  if (std::holds_alternative<int64_t>(value)) {
    return static_cast<double>(std::get<int64_t>(value));
  }
  if (std::holds_alternative<double>(value)) return std::get<double>(value);
  return Status::InvalidArgument("expected numeric constant, got string");
}

Result<int64_t> ValueAsInt64(const Value& value) {
  if (std::holds_alternative<int64_t>(value)) return std::get<int64_t>(value);
  if (std::holds_alternative<double>(value)) {
    return static_cast<int64_t>(std::get<double>(value));
  }
  return Status::InvalidArgument("expected numeric constant, got string");
}

/// Ors the rows matching `atom` into `mask`.
Status EvalAtomInto(const Table& input, const Predicate& atom,
                    std::vector<uint8_t>* mask) {
  HETDB_ASSIGN_OR_RETURN(ColumnPtr column, input.GetColumn(atom.column));
  const size_t n = column->num_rows();

  switch (column->type()) {
    case DataType::kInt32: {
      const auto& values = static_cast<const Int32Column&>(*column).values();
      HETDB_ASSIGN_OR_RETURN(int64_t rhs, ValueAsInt64(atom.value));
      int64_t rhs2 = 0;
      if (atom.op == CompareOp::kBetween) {
        HETDB_ASSIGN_OR_RETURN(rhs2, ValueAsInt64(atom.value2));
      }
      for (size_t i = 0; i < n; ++i) {
        if (CompareValues<int64_t>(values[i], atom.op, rhs, rhs2)) {
          (*mask)[i] = 1;
        }
      }
      return Status::OK();
    }
    case DataType::kInt64: {
      const auto& values = static_cast<const Int64Column&>(*column).values();
      HETDB_ASSIGN_OR_RETURN(int64_t rhs, ValueAsInt64(atom.value));
      int64_t rhs2 = 0;
      if (atom.op == CompareOp::kBetween) {
        HETDB_ASSIGN_OR_RETURN(rhs2, ValueAsInt64(atom.value2));
      }
      for (size_t i = 0; i < n; ++i) {
        if (CompareValues<int64_t>(values[i], atom.op, rhs, rhs2)) {
          (*mask)[i] = 1;
        }
      }
      return Status::OK();
    }
    case DataType::kDouble: {
      const auto& values = static_cast<const DoubleColumn&>(*column).values();
      HETDB_ASSIGN_OR_RETURN(double rhs, ValueAsDouble(atom.value));
      double rhs2 = 0;
      if (atom.op == CompareOp::kBetween) {
        HETDB_ASSIGN_OR_RETURN(rhs2, ValueAsDouble(atom.value2));
      }
      for (size_t i = 0; i < n; ++i) {
        if (CompareValues<double>(values[i], atom.op, rhs, rhs2)) {
          (*mask)[i] = 1;
        }
      }
      return Status::OK();
    }
    case DataType::kString: {
      const auto& str = static_cast<const StringColumn&>(*column);
      if (!std::holds_alternative<std::string>(atom.value)) {
        return Status::InvalidArgument("string column '" + atom.column +
                                       "' compared with numeric constant");
      }
      const std::string& rhs = std::get<std::string>(atom.value);
      const auto& codes = str.codes();
      // Translate the string predicate into an equivalent predicate over
      // dictionary codes. Equality works on any dictionary; range predicates
      // need an order-preserving one.
      if (atom.op == CompareOp::kEq || atom.op == CompareOp::kNe) {
        Result<int32_t> code = str.CodeFor(rhs);
        if (!code.ok()) {
          // Constant not in the dictionary: Eq matches nothing, Ne all rows.
          if (atom.op == CompareOp::kNe) {
            std::fill(mask->begin(), mask->end(), 1);
          }
          return Status::OK();
        }
        const int32_t target = code.value();
        if (atom.op == CompareOp::kEq) {
          for (size_t i = 0; i < n; ++i) {
            if (codes[i] == target) (*mask)[i] = 1;
          }
        } else {
          for (size_t i = 0; i < n; ++i) {
            if (codes[i] != target) (*mask)[i] = 1;
          }
        }
        return Status::OK();
      }
      if (!str.order_preserving()) {
        return Status::InvalidArgument(
            "range predicate on non-order-preserving dictionary column '" +
            atom.column + "'");
      }
      // Half-open bounds over codes: [lower_bound(x), upper_bound(y)).
      int32_t lo = 0;
      int32_t hi = static_cast<int32_t>(str.dictionary().size());
      switch (atom.op) {
        case CompareOp::kLt:
          hi = str.LowerBoundCode(rhs);
          break;
        case CompareOp::kLe:
          hi = str.UpperBoundCode(rhs);
          break;
        case CompareOp::kGt:
          lo = str.UpperBoundCode(rhs);
          break;
        case CompareOp::kGe:
          lo = str.LowerBoundCode(rhs);
          break;
        case CompareOp::kBetween: {
          if (!std::holds_alternative<std::string>(atom.value2)) {
            return Status::InvalidArgument("between on string column '" +
                                           atom.column +
                                           "' needs string bounds");
          }
          lo = str.LowerBoundCode(rhs);
          hi = str.UpperBoundCode(std::get<std::string>(atom.value2));
          break;
        }
        default:
          return Status::Internal("unhandled string compare op");
      }
      for (size_t i = 0; i < n; ++i) {
        if (codes[i] >= lo && codes[i] < hi) (*mask)[i] = 1;
      }
      return Status::OK();
    }
  }
  return Status::Internal("unhandled column type");
}

/// Reads an integer join key; fatal if the column is not integer-typed.
int64_t IntKeyAt(const Column& column, size_t row) {
  if (column.type() == DataType::kInt32) {
    return static_cast<const Int32Column&>(column).value(row);
  }
  HETDB_CHECK(column.type() == DataType::kInt64);
  return static_cast<const Int64Column&>(column).value(row);
}

/// Copies `rows` of `source` into a fresh column. The output is named
/// `name_override` when non-empty, `source.name()` otherwise.
ColumnPtr GatherColumn(const Column& source, const std::vector<uint32_t>& rows,
                       const std::string& name_override = "") {
  const std::string& name =
      name_override.empty() ? source.name() : name_override;
  switch (source.type()) {
    case DataType::kInt32: {
      const auto& values = static_cast<const Int32Column&>(source).values();
      std::vector<int32_t> out;
      out.reserve(rows.size());
      for (uint32_t r : rows) out.push_back(values[r]);
      return std::make_shared<Int32Column>(name, std::move(out));
    }
    case DataType::kInt64: {
      const auto& values = static_cast<const Int64Column&>(source).values();
      std::vector<int64_t> out;
      out.reserve(rows.size());
      for (uint32_t r : rows) out.push_back(values[r]);
      return std::make_shared<Int64Column>(name, std::move(out));
    }
    case DataType::kDouble: {
      const auto& values = static_cast<const DoubleColumn&>(source).values();
      std::vector<double> out;
      out.reserve(rows.size());
      for (uint32_t r : rows) out.push_back(values[r]);
      return std::make_shared<DoubleColumn>(name, std::move(out));
    }
    case DataType::kString: {
      const auto& str = static_cast<const StringColumn&>(source);
      auto out = StringColumn::FromDictionary(name, str.dictionary());
      out->Reserve(rows.size());
      for (uint32_t r : rows) out->AppendCode(str.code(r));
      return out;
    }
  }
  return nullptr;
}

/// Reads a numeric column value as double (fatal on string columns).
double NumericAt(const Column& column, size_t row) {
  switch (column.type()) {
    case DataType::kInt32:
      return static_cast<const Int32Column&>(column).value(row);
    case DataType::kInt64:
      return static_cast<double>(
          static_cast<const Int64Column&>(column).value(row));
    case DataType::kDouble:
      return static_cast<const DoubleColumn&>(column).value(row);
    case DataType::kString:
      HETDB_LOG(Fatal) << "numeric access on string column " << column.name();
  }
  return 0;
}

}  // namespace

Result<std::vector<uint32_t>> EvaluateFilter(const Table& input,
                                             const ConjunctiveFilter& filter) {
  const size_t n = input.num_rows();
  std::vector<uint8_t> result(n, 1);
  std::vector<uint8_t> disjunct(n, 0);
  for (const Disjunction& disjunction : filter.conjuncts) {
    std::fill(disjunct.begin(), disjunct.end(), 0);
    for (const Predicate& atom : disjunction.atoms) {
      HETDB_RETURN_NOT_OK(EvalAtomInto(input, atom, &disjunct));
    }
    for (size_t i = 0; i < n; ++i) result[i] &= disjunct[i];
  }
  std::vector<uint32_t> rows;
  for (size_t i = 0; i < n; ++i) {
    if (result[i]) rows.push_back(static_cast<uint32_t>(i));
  }
  return rows;
}

Result<TablePtr> GatherRows(const Table& input,
                            const std::vector<uint32_t>& rows,
                            const std::string& name) {
  auto output = std::make_shared<Table>(name);
  for (const ColumnPtr& column : input.columns()) {
    ColumnPtr gathered = GatherColumn(*column, rows);
    if (gathered == nullptr) return Status::Internal("gather failed");
    HETDB_RETURN_NOT_OK(output->AddColumn(std::move(gathered)));
  }
  return output;
}

Result<TablePtr> HashJoin(const Table& build, const std::string& build_key,
                          const Table& probe, const std::string& probe_key,
                          const JoinOutputSpec& output_spec,
                          const std::string& name) {
  HETDB_ASSIGN_OR_RETURN(ColumnPtr build_key_col, build.GetColumn(build_key));
  HETDB_ASSIGN_OR_RETURN(ColumnPtr probe_key_col, probe.GetColumn(probe_key));
  if (build_key_col->type() != DataType::kInt32 &&
      build_key_col->type() != DataType::kInt64) {
    return Status::InvalidArgument("join key '" + build_key +
                                   "' must be integer");
  }

  // Build phase. Dimension keys are usually unique, but duplicates are
  // supported via the overflow vector.
  const size_t build_rows = build.num_rows();
  std::unordered_map<int64_t, uint32_t> first_match;
  std::unordered_map<int64_t, std::vector<uint32_t>> overflow;
  first_match.reserve(build_rows * 2);
  for (size_t i = 0; i < build_rows; ++i) {
    const int64_t key = IntKeyAt(*build_key_col, i);
    auto [it, inserted] =
        first_match.emplace(key, static_cast<uint32_t>(i));
    if (!inserted) overflow[key].push_back(static_cast<uint32_t>(i));
  }

  // Probe phase: collect matching row pairs.
  const size_t probe_rows = probe.num_rows();
  std::vector<uint32_t> build_matches;
  std::vector<uint32_t> probe_matches;
  for (size_t i = 0; i < probe_rows; ++i) {
    const int64_t key = IntKeyAt(*probe_key_col, i);
    auto it = first_match.find(key);
    if (it == first_match.end()) continue;
    build_matches.push_back(it->second);
    probe_matches.push_back(static_cast<uint32_t>(i));
    auto ov = overflow.find(key);
    if (ov != overflow.end()) {
      for (uint32_t extra : ov->second) {
        build_matches.push_back(extra);
        probe_matches.push_back(static_cast<uint32_t>(i));
      }
    }
  }

  // Materialize requested output columns.
  if (!output_spec.build_aliases.empty() &&
      output_spec.build_aliases.size() != output_spec.build_columns.size()) {
    return Status::InvalidArgument("build_aliases size mismatch");
  }
  if (!output_spec.probe_aliases.empty() &&
      output_spec.probe_aliases.size() != output_spec.probe_columns.size()) {
    return Status::InvalidArgument("probe_aliases size mismatch");
  }
  auto output = std::make_shared<Table>(name);
  for (size_t i = 0; i < output_spec.build_columns.size(); ++i) {
    HETDB_ASSIGN_OR_RETURN(ColumnPtr column,
                           build.GetColumn(output_spec.build_columns[i]));
    const std::string& alias = output_spec.build_aliases.empty()
                                   ? output_spec.build_columns[i]
                                   : output_spec.build_aliases[i];
    HETDB_RETURN_NOT_OK(
        output->AddColumn(GatherColumn(*column, build_matches, alias)));
  }
  for (size_t i = 0; i < output_spec.probe_columns.size(); ++i) {
    HETDB_ASSIGN_OR_RETURN(ColumnPtr column,
                           probe.GetColumn(output_spec.probe_columns[i]));
    const std::string& alias = output_spec.probe_aliases.empty()
                                   ? output_spec.probe_columns[i]
                                   : output_spec.probe_aliases[i];
    HETDB_RETURN_NOT_OK(
        output->AddColumn(GatherColumn(*column, probe_matches, alias)));
  }
  return output;
}

Result<TablePtr> Aggregate(const Table& input,
                           const std::vector<std::string>& group_by,
                           const std::vector<AggregateSpec>& aggregates,
                           const std::string& name) {
  const size_t n = input.num_rows();

  std::vector<ColumnPtr> group_cols;
  for (const std::string& col_name : group_by) {
    HETDB_ASSIGN_OR_RETURN(ColumnPtr column, input.GetColumn(col_name));
    group_cols.push_back(std::move(column));
  }
  std::vector<ColumnPtr> agg_inputs;
  for (const AggregateSpec& spec : aggregates) {
    if (spec.fn == AggregateFn::kCount && spec.input_column.empty()) {
      agg_inputs.push_back(nullptr);  // COUNT(*)
      continue;
    }
    HETDB_ASSIGN_OR_RETURN(ColumnPtr column, input.GetColumn(spec.input_column));
    agg_inputs.push_back(std::move(column));
  }

  // Encode the composite group key as raw bytes.
  std::unordered_map<std::string, uint32_t> groups;
  std::vector<uint32_t> representative_row;  // one input row per group
  std::vector<uint32_t> group_of_row(n);
  std::string key;
  for (size_t i = 0; i < n; ++i) {
    key.clear();
    for (const ColumnPtr& column : group_cols) {
      int64_t encoded;
      if (column->type() == DataType::kString) {
        encoded = static_cast<const StringColumn&>(*column).code(i);
      } else {
        encoded = IntKeyAt(*column, i);
      }
      key.append(reinterpret_cast<const char*>(&encoded), sizeof(encoded));
    }
    auto [it, inserted] =
        groups.emplace(key, static_cast<uint32_t>(representative_row.size()));
    if (inserted) representative_row.push_back(static_cast<uint32_t>(i));
    group_of_row[i] = it->second;
  }
  const size_t num_groups = representative_row.size();

  // Accumulate.
  struct Accumulator {
    double sum = 0;
    int64_t count = 0;
    double min = std::numeric_limits<double>::infinity();
    double max = -std::numeric_limits<double>::infinity();
  };
  std::vector<std::vector<Accumulator>> accs(
      aggregates.size(), std::vector<Accumulator>(num_groups));
  for (size_t a = 0; a < aggregates.size(); ++a) {
    const ColumnPtr& column = agg_inputs[a];
    auto& acc = accs[a];
    if (column == nullptr) {  // COUNT(*)
      for (size_t i = 0; i < n; ++i) ++acc[group_of_row[i]].count;
      continue;
    }
    for (size_t i = 0; i < n; ++i) {
      const double v = NumericAt(*column, i);
      Accumulator& slot = acc[group_of_row[i]];
      slot.sum += v;
      ++slot.count;
      slot.min = std::min(slot.min, v);
      slot.max = std::max(slot.max, v);
    }
  }

  // Materialize output: group columns then aggregate columns.
  auto output = std::make_shared<Table>(name);
  for (const ColumnPtr& column : group_cols) {
    HETDB_RETURN_NOT_OK(
        output->AddColumn(GatherColumn(*column, representative_row)));
  }
  for (size_t a = 0; a < aggregates.size(); ++a) {
    const AggregateSpec& spec = aggregates[a];
    const ColumnPtr& in = agg_inputs[a];
    const bool integer_input =
        in != nullptr && (in->type() == DataType::kInt32 ||
                          in->type() == DataType::kInt64);
    const auto& acc = accs[a];
    auto value_of = [&](size_t g) -> double {
      switch (spec.fn) {
        case AggregateFn::kSum:
          return acc[g].sum;
        case AggregateFn::kCount:
          return static_cast<double>(acc[g].count);
        case AggregateFn::kMin:
          return acc[g].count > 0 ? acc[g].min : 0;
        case AggregateFn::kMax:
          return acc[g].count > 0 ? acc[g].max : 0;
        case AggregateFn::kAvg:
          return acc[g].count > 0 ? acc[g].sum / acc[g].count : 0;
      }
      return 0;
    };
    const bool integer_output =
        spec.fn == AggregateFn::kCount ||
        (integer_input && spec.fn != AggregateFn::kAvg);
    if (integer_output) {
      std::vector<int64_t> values(num_groups);
      for (size_t g = 0; g < num_groups; ++g) {
        values[g] = static_cast<int64_t>(std::llround(value_of(g)));
      }
      HETDB_RETURN_NOT_OK(output->AddColumn(
          std::make_shared<Int64Column>(spec.output_name, std::move(values))));
    } else {
      std::vector<double> values(num_groups);
      for (size_t g = 0; g < num_groups; ++g) values[g] = value_of(g);
      HETDB_RETURN_NOT_OK(output->AddColumn(
          std::make_shared<DoubleColumn>(spec.output_name, std::move(values))));
    }
  }
  return output;
}

Result<TablePtr> Sort(const Table& input, const std::vector<SortKey>& keys,
                      const std::string& name) {
  const size_t n = input.num_rows();
  std::vector<ColumnPtr> key_cols;
  for (const SortKey& key : keys) {
    HETDB_ASSIGN_OR_RETURN(ColumnPtr column, input.GetColumn(key.column));
    key_cols.push_back(std::move(column));
  }

  std::vector<uint32_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = static_cast<uint32_t>(i);

  auto compare_at = [&](const Column& column, uint32_t a,
                        uint32_t b) -> int {
    if (column.type() == DataType::kString) {
      const auto& str = static_cast<const StringColumn&>(column);
      // Order-preserving dictionaries allow comparing codes directly.
      if (str.order_preserving()) {
        const int32_t ca = str.code(a), cb = str.code(b);
        return ca < cb ? -1 : (ca > cb ? 1 : 0);
      }
      const auto va = str.value(a), vb = str.value(b);
      return va < vb ? -1 : (va > vb ? 1 : 0);
    }
    const double va = NumericAt(column, a), vb = NumericAt(column, b);
    return va < vb ? -1 : (va > vb ? 1 : 0);
  };

  std::stable_sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    for (size_t k = 0; k < key_cols.size(); ++k) {
      const int cmp = compare_at(*key_cols[k], a, b);
      if (cmp != 0) return keys[k].ascending ? cmp < 0 : cmp > 0;
    }
    return false;
  });

  return GatherRows(input, order, name);
}

Result<TablePtr> Project(const Table& input,
                         const std::vector<std::string>& keep_columns,
                         const std::vector<ArithmeticExpr>& expressions,
                         const std::string& name) {
  auto output = std::make_shared<Table>(name);
  for (const std::string& col_name : keep_columns) {
    HETDB_ASSIGN_OR_RETURN(ColumnPtr column, input.GetColumn(col_name));
    HETDB_RETURN_NOT_OK(output->AddColumn(column));  // zero-copy alias
  }
  const size_t n = input.num_rows();
  for (const ArithmeticExpr& expr : expressions) {
    HETDB_ASSIGN_OR_RETURN(ColumnPtr left, input.GetColumn(expr.left_column));
    ColumnPtr right;
    if (!expr.right_column.empty()) {
      HETDB_ASSIGN_OR_RETURN(right, input.GetColumn(expr.right_column));
    }
    const bool integer_result =
        expr.op != ArithmeticExpr::Op::kDiv &&
        left->type() != DataType::kDouble &&
        (right == nullptr
             ? expr.right_constant == std::floor(expr.right_constant)
             : right->type() != DataType::kDouble);
    auto apply = [&](double a, double b) -> double {
      switch (expr.op) {
        case ArithmeticExpr::Op::kAdd:
          return a + b;
        case ArithmeticExpr::Op::kSub:
          return a - b;
        case ArithmeticExpr::Op::kMul:
          return a * b;
        case ArithmeticExpr::Op::kDiv:
          return b == 0 ? 0 : a / b;
        case ArithmeticExpr::Op::kRsub:
          return b - a;
      }
      return 0;
    };
    if (integer_result) {
      std::vector<int64_t> values(n);
      for (size_t i = 0; i < n; ++i) {
        const double b =
            right != nullptr ? NumericAt(*right, i) : expr.right_constant;
        values[i] = static_cast<int64_t>(apply(NumericAt(*left, i), b));
      }
      HETDB_RETURN_NOT_OK(output->AddColumn(
          std::make_shared<Int64Column>(expr.output_name, std::move(values))));
    } else {
      std::vector<double> values(n);
      for (size_t i = 0; i < n; ++i) {
        const double b =
            right != nullptr ? NumericAt(*right, i) : expr.right_constant;
        values[i] = apply(NumericAt(*left, i), b);
      }
      HETDB_RETURN_NOT_OK(output->AddColumn(std::make_shared<DoubleColumn>(
          expr.output_name, std::move(values))));
    }
  }
  return output;
}

Result<TablePtr> Limit(const Table& input, size_t n, const std::string& name) {
  const size_t take = std::min(n, input.num_rows());
  std::vector<uint32_t> rows(take);
  for (size_t i = 0; i < take; ++i) rows[i] = static_cast<uint32_t>(i);
  return GatherRows(input, rows, name);
}

size_t FilterInputBytes(const Table& input, const ConjunctiveFilter& filter) {
  size_t bytes = 0;
  for (const Disjunction& disjunction : filter.conjuncts) {
    for (const Predicate& atom : disjunction.atoms) {
      Result<ColumnPtr> column = input.GetColumn(atom.column);
      if (column.ok()) bytes += column.value()->data_bytes();
    }
  }
  return bytes;
}

}  // namespace hetdb
