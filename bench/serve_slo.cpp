// SLO-driven serving benchmark: drives multi-tenant traffic through the
// admission-controlled serving front-end and reports tail latency, goodput,
// shed rate, and cross-tenant fairness as offered load sweeps past capacity.
//
// The point under test is *graceful degradation*: past saturation an
// unprotected system's latency grows without bound (every admitted query
// queues behind an ever-longer backlog), while the admission controller
// sheds the unmeetable fraction at the front door so the p99 of what it
// *does* admit stays flat.
//
//   ./build/bench/serve_slo                    # open-loop sweep (default)
//   ./build/bench/serve_slo --mode closed      # sessions + think time
//   ./build/bench/serve_slo --rate 30 --deadline-ms 600 --duration 10
//   ./build/bench/serve_slo --tpch             # TPC-H mixes instead of SSB
//   ./build/bench/serve_slo --split-mix        # asymmetric per-tenant mixes
//   ./build/bench/serve_slo --json out.json    # machine-readable artifact
//
// Shared flags (see bench_util.h): --quick --seed N --time-scale X

#include <cstdio>
#include <string>
#include <tuple>
#include <vector>

#include "bench/bench_util.h"
#include "server/traffic.h"
#include "tpch/tpch_queries.h"

using namespace hetdb;
using namespace hetdb::bench;

namespace {

struct ServeArgs {
  BenchArgs base;
  std::string mode = "open";
  double duration_s = 5.0;
  double rate_qps = 60.0;      // per tenant, at load multiplier 1.0
  double deadline_ms = 110.0;  // per-query SLO budget
  int sessions = 8;            // per tenant (closed loop)
  bool tpch = false;
  bool split_mix = false;
  std::string json_out;
  std::vector<double> load_multipliers = {0.25, 1.0, 4.0};
};

ServeArgs ParseServeArgs(int argc, char** argv) {
  ServeArgs args;
  args.base = BenchArgs::Parse(argc, argv);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--mode" && i + 1 < argc) args.mode = argv[++i];
    if (arg == "--duration" && i + 1 < argc) args.duration_s = std::atof(argv[++i]);
    if (arg == "--rate" && i + 1 < argc) args.rate_qps = std::atof(argv[++i]);
    if (arg == "--deadline-ms" && i + 1 < argc) {
      args.deadline_ms = std::atof(argv[++i]);
    }
    if (arg == "--sessions" && i + 1 < argc) args.sessions = std::atoi(argv[++i]);
    if (arg == "--tpch") args.tpch = true;
    if (arg == "--split-mix") args.split_mix = true;
    if (arg == "--json" && i + 1 < argc) args.json_out = argv[++i];
  }
  if (args.base.quick) {
    args.duration_s = std::min(args.duration_s, 3.0);
  }
  return args;
}

/// --split-mix: tenant-a gets the first half of the query set (SSB Q1/Q2
/// families: selection/cheap-join heavy), tenant-b the second half (Q3/Q4
/// families: join/aggregate heavy) — an asymmetric-demand variant where the
/// tenants ask for structurally different work. The default gives both
/// tenants the identical full mix, which makes the fairness column a clean
/// WDRR check: equal weights over an equal offered distribution must yield
/// per-tenant goodput within a few percent.
std::pair<std::vector<NamedQuery>, std::vector<NamedQuery>> SplitMix(
    std::vector<NamedQuery> queries) {
  const size_t half = queries.size() / 2;
  std::vector<NamedQuery> first(queries.begin(), queries.begin() + half);
  std::vector<NamedQuery> second(queries.begin() + half, queries.end());
  return {std::move(first), std::move(second)};
}

}  // namespace

int main(int argc, char** argv) {
  const ServeArgs args = ParseServeArgs(argc, argv);
  const double sf = args.base.quick ? 0.5 : 1.0;

  Banner("serve_slo",
         std::string("SLO traffic bench: 2 tenants, ") + args.mode +
             "-loop, " + (args.tpch ? "TPC-H" : "SSB") + " SF " +
             std::to_string(sf) + ", deadline " +
             std::to_string(static_cast<int>(args.deadline_ms)) + "ms");

  DatabasePtr db;
  std::vector<NamedQuery> queries;
  if (args.tpch) {
    TpchGeneratorOptions gen;
    args.base.ApplySeed(gen);
    gen.scale_factor = sf;
    db = GenerateTpchDatabase(gen);
    queries = TpchQueries();
  } else {
    SsbGeneratorOptions gen;
    args.base.ApplySeed(gen);
    gen.scale_factor = sf;
    db = GenerateSsbDatabase(gen);
    queries = SsbQueries();
  }
  std::vector<NamedQuery> mix_a = queries;
  std::vector<NamedQuery> mix_b = std::move(queries);
  if (args.split_mix) {
    std::tie(mix_a, mix_b) = SplitMix(std::move(mix_a));
  }

  const SystemConfig config = PaperConfig(args.base.time_scale);
  const uint64_t seed = args.base.seed != 0 ? args.base.seed : 42;

  PrintHeader({"load", "offered", "goodput[qps]", "shed_rate", "p50[ms]",
               "p99[ms]", "fairness", "limit_end"});

  std::string json = "{\n  \"bench\": \"serve_slo\",\n  \"mode\": \"" +
                     args.mode + "\",\n  \"points\": [\n";
  bool first_point = true;

  for (double load : args.load_multipliers) {
    // Fresh engine + server per point so governor state, caches, and EWMA
    // estimates from a previous (possibly overloaded) point don't leak in.
    EngineContext ctx(config, db);
    ServerOptions server_options;
    server_options.admission.max_concurrency = 16;
    server_options.admission.initial_concurrency = 8;
    Server server(&ctx, server_options);

    // Warm the cost models and data placement exactly like the workload
    // benches do, so the measured phase sees a trained engine.
    {
      SessionPtr warm = server.OpenSession("warmup");
      for (const NamedQuery& query : mix_a) {
        warm->Execute(query.builder(*db).value());
      }
      for (const NamedQuery& query : mix_b) {
        warm->Execute(query.builder(*db).value());
      }
      server.runner().RefreshDataPlacement();
      ctx.ResetRunStats();
    }

    TenantTraffic tenant_a;
    tenant_a.name = "tenant-a";
    tenant_a.mix = mix_a;
    tenant_a.deadline_ms = args.deadline_ms;
    TenantTraffic tenant_b;
    tenant_b.name = "tenant-b";
    tenant_b.mix = mix_b;
    tenant_b.deadline_ms = args.deadline_ms;

    TrafficOptions traffic;
    traffic.duration_s = args.duration_s;
    traffic.seed = seed;
    if (args.mode == "closed") {
      traffic.mode = TrafficOptions::Mode::kClosedLoop;
      tenant_a.sessions = static_cast<int>(args.sessions * load + 0.5);
      tenant_b.sessions = tenant_a.sessions;
      tenant_a.think_time_ms = 100;
      tenant_b.think_time_ms = 100;
    } else {
      traffic.mode = TrafficOptions::Mode::kOpenLoop;
      tenant_a.arrival_qps = args.rate_qps * load;
      tenant_b.arrival_qps = tenant_a.arrival_qps;
    }

    const TrafficResult result =
        RunTraffic(server, {tenant_a, tenant_b}, traffic);

    double p50 = 0, p99 = 0;
    for (const TenantTrafficResult& tr : result.tenants) {
      p50 = std::max(p50, tr.p50_ms);
      p99 = std::max(p99, tr.p99_ms);
    }
    PrintCell(load);
    PrintCell(result.offered);
    PrintCell(result.goodput_qps);
    PrintCell(result.shed_rate);
    PrintCell(p50);
    PrintCell(p99);
    PrintCell(result.fairness);
    PrintCell(static_cast<uint64_t>(server.admission().concurrency_limit()));
    EndRow();

    if (!first_point) json += ",\n";
    first_point = false;
    json += "    {\"load_multiplier\": " + std::to_string(load) +
            ", \"result\": " + result.ToJson() + "    }";
  }
  json += "\n  ]\n}\n";

  if (!args.json_out.empty()) {
    FILE* f = std::fopen(args.json_out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "error: cannot write %s\n", args.json_out.c_str());
      return 1;
    }
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("# wrote %s\n", args.json_out.c_str());
  }
  return 0;
}
