#include <gtest/gtest.h>

#include "placement/compile_time.h"
#include "placement/runtime.h"
#include "placement/strategy_runner.h"
#include "tests/test_util.h"

namespace hetdb {
namespace {

class PlacementTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = MakeTinyDb();
    ctx_ = std::make_unique<EngineContext>(TestConfig(), db_);
  }

  PlanNodePtr SimplePlan() {
    PlanNodePtr scan = std::make_shared<ScanNode>(
        db_->GetTable("fact").value(), std::vector<std::string>{"fk", "v"});
    PlanNodePtr select = std::make_shared<SelectNode>(
        std::move(scan),
        ConjunctiveFilter::And({Predicate::Lt("v", int64_t{50})}));
    PlanNodePtr dim_scan = std::make_shared<ScanNode>(
        db_->GetTable("dim").value(), std::vector<std::string>{"key", "name"});
    JoinOutputSpec spec;
    spec.build_columns = {"name"};
    spec.probe_columns = {"v"};
    return std::make_shared<JoinNode>(std::move(dim_scan), std::move(select),
                                      "key", "fk", spec);
  }

  DatabasePtr db_;
  std::unique_ptr<EngineContext> ctx_;
};

TEST_F(PlacementTest, CpuOnlyAndGpuOnlyCoverAllNodes) {
  PlanNodePtr plan = SimplePlan();
  const size_t nodes = CountPlanNodes(plan);
  PlacementMap cpu = PlaceCpuOnly(plan);
  PlacementMap gpu = PlaceGpuOnly(plan);
  EXPECT_EQ(cpu.size(), nodes);
  EXPECT_EQ(gpu.size(), nodes);
  for (const auto& [node, kind] : cpu) EXPECT_EQ(kind, ProcessorKind::kCpu);
  for (const auto& [node, kind] : gpu) EXPECT_EQ(kind, ProcessorKind::kGpu);
}

TEST_F(PlacementTest, DataDrivenFollowsCacheContents) {
  PlanNodePtr plan = SimplePlan();
  // Nothing cached: everything on the CPU.
  PlacementMap cold = PlaceDataDriven(plan, *ctx_);
  for (const auto& [node, kind] : cold) EXPECT_EQ(kind, ProcessorKind::kCpu);

  // Cache all base columns: the whole chain moves to the device.
  for (const TablePtr& table : db_->tables()) {
    for (const ColumnPtr& column : table->columns()) {
      ASSERT_TRUE(
          ctx_->cache().Pin(column, table->QualifiedName(column->name())).ok());
    }
  }
  PlacementMap hot = PlaceDataDriven(plan, *ctx_);
  for (const auto& [node, kind] : hot) EXPECT_EQ(kind, ProcessorKind::kGpu);
}

TEST_F(PlacementTest, DataDrivenStopsChainAtUncachedInput) {
  PlanNodePtr plan = SimplePlan();
  // Cache only the dim table: the dim scan runs on the device, but the join
  // (whose fact-side child is on the CPU) and everything above stay on CPU.
  TablePtr dim = db_->GetTable("dim").value();
  for (const ColumnPtr& column : dim->columns()) {
    ASSERT_TRUE(
        ctx_->cache().Pin(column, dim->QualifiedName(column->name())).ok());
  }
  PlacementMap placement = PlaceDataDriven(plan, *ctx_);
  const PlanNode* join = plan.get();
  const PlanNode* dim_scan = plan->children()[0].get();
  const PlanNode* select = plan->children()[1].get();
  EXPECT_EQ(placement[dim_scan], ProcessorKind::kGpu);
  EXPECT_EQ(placement[select], ProcessorKind::kCpu);
  EXPECT_EQ(placement[join], ProcessorKind::kCpu);
}

TEST_F(PlacementTest, CriticalPathUsesDeviceWhenCheaper) {
  // Warm the cache so device execution needs no transfers; the estimator
  // should then move at least the leaves to the device.
  for (const TablePtr& table : db_->tables()) {
    for (const ColumnPtr& column : table->columns()) {
      ASSERT_TRUE(
          ctx_->cache().Pin(column, table->QualifiedName(column->name())).ok());
    }
  }
  PlanNodePtr plan = SimplePlan();
  PlacementMap placement = PlaceCriticalPath(plan, *ctx_);
  int gpu_nodes = 0;
  for (const auto& [node, kind] : placement) {
    if (kind == ProcessorKind::kGpu) ++gpu_nodes;
  }
  EXPECT_GT(gpu_nodes, 0);
}

TEST_F(PlacementTest, CriticalPathChainRule) {
  PlanNodePtr plan = SimplePlan();
  PlacementMap placement = PlaceCriticalPath(plan, *ctx_);
  // Invariant: a non-leaf node is on the device only if all children are.
  VisitPlanPostOrder(plan, [&](const PlanNodePtr& node) {
    if (node->children().empty()) return;
    if (placement[node.get()] == ProcessorKind::kGpu) {
      for (const PlanNodePtr& child : node->children()) {
        EXPECT_EQ(placement[child.get()], ProcessorKind::kGpu);
      }
    }
  });
}

TEST_F(PlacementTest, EstimatorPrefersCheaperPlans) {
  PlanNodePtr plan = SimplePlan();
  const double cpu_cost =
      EstimatePlanResponseMicros(plan, PlaceCpuOnly(plan), *ctx_);
  EXPECT_GT(cpu_cost, 0);
  // Critical path never produces a plan estimated worse than pure CPU.
  PlacementMap best = PlaceCriticalPath(plan, *ctx_);
  EXPECT_LE(EstimatePlanResponseMicros(plan, best, *ctx_), cpu_cost);
}

TEST_F(PlacementTest, HypePlacerRespectsHeapCapacity) {
  SystemConfig config = TestConfig();
  config.device_memory_bytes = 3 << 10;  // 3 KB device
  config.device_cache_bytes = 1 << 10;
  EngineContext tiny_ctx(config, db_);
  PlanNodePtr scan = std::make_shared<ScanNode>(
      db_->GetTable("fact").value(), std::vector<std::string>{"fk", "v"});
  RuntimePlacer placer = MakeHypePlacer();
  // 8 KB of input can never fit the 2 KB heap: CPU, no matter the costs.
  EXPECT_EQ(placer(*scan, {}, tiny_ctx), ProcessorKind::kCpu);
}

TEST_F(PlacementTest, StrategyRunnerExecutesAllStrategies) {
  TablePtr expected;
  for (Strategy strategy : kAllStrategies) {
    EngineContext ctx(TestConfig(), db_);
    StrategyRunner runner(&ctx, strategy);
    runner.RefreshDataPlacement();
    auto result = runner.RunQuery(SimplePlan());
    ASSERT_TRUE(result.ok()) << StrategyToString(strategy);
    if (expected == nullptr) {
      expected = result.value();
    } else {
      EXPECT_TRUE(TablesEqual(*expected, *result.value()))
          << StrategyToString(strategy);
    }
  }
}

TEST_F(PlacementTest, StrategyMetadataIsConsistent) {
  EXPECT_TRUE(IsCompileTimeStrategy(Strategy::kCpuOnly));
  EXPECT_TRUE(IsCompileTimeStrategy(Strategy::kDataDriven));
  EXPECT_FALSE(IsCompileTimeStrategy(Strategy::kChopping));
  EXPECT_FALSE(IsCompileTimeStrategy(Strategy::kRunTime));
  EXPECT_TRUE(LimitsConcurrency(Strategy::kChopping));
  EXPECT_TRUE(LimitsConcurrency(Strategy::kDataDrivenChopping));
  EXPECT_FALSE(LimitsConcurrency(Strategy::kRunTime));
  EXPECT_FALSE(LimitsConcurrency(Strategy::kGpuOnly));
  for (Strategy strategy : kAllStrategies) {
    EXPECT_STRNE(StrategyToString(strategy), "unknown");
  }
}

TEST_F(PlacementTest, RefreshDataPlacementFillsCache) {
  StrategyRunner runner(ctx_.get(), Strategy::kDataDriven);
  // Simulate workload access: bump fact columns.
  TablePtr fact = db_->GetTable("fact").value();
  for (const ColumnPtr& column : fact->columns()) {
    for (int i = 0; i < 5; ++i) column->RecordAccess();
  }
  runner.RefreshDataPlacement();
  EXPECT_TRUE(ctx_->cache().IsCached("fact.fk"));
  EXPECT_TRUE(ctx_->cache().IsCached("fact.v"));
}

}  // namespace
}  // namespace hetdb
