#ifndef HETDB_FAULT_SCENARIO_H_
#define HETDB_FAULT_SCENARIO_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "fault/fault_injector.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/metric_registry.h"

namespace hetdb {

/// One scripted failure episode in a chaos timeline.
enum class ChaosEpisodeKind {
  /// The device falls off the bus: every injector consultation returns
  /// DeviceLost until the episode ends.
  kDeviceLoss,
  /// Transfers and kernels succeed but take `latency_factor` times their
  /// modeled duration with probability `probability` per event.
  kLatencyStorm,
  /// Device allocations of at least `min_bytes` fail with ResourceExhausted
  /// with probability `probability` — scripted heap contention on top of
  /// whatever the workload itself causes.
  kHeapSqueeze,
};

const char* ChaosEpisodeKindName(ChaosEpisodeKind kind);

struct ChaosEpisode {
  double start_s = 0.0;
  double duration_s = 0.0;
  ChaosEpisodeKind kind = ChaosEpisodeKind::kDeviceLoss;
  /// Victim device, or -1 for every device.
  int device = -1;
  double probability = 1.0;
  double latency_factor = 8.0;
  size_t min_bytes = 0;
  std::string name;  ///< optional label for records/reports
};

/// A declarative chaos timeline: episodes over a run's wall clock.
///
/// Text DSL, one episode per line (blank lines and `#` comments skipped):
///
///   at <start>s for <duration>s <kind> [key=value ...]
///
/// where <kind> is `device-loss`, `latency-storm`, or `heap-squeeze` and
/// the keys are `device=<n|-1>`, `p=<0..1>`, `factor=<x>`,
/// `min-bytes=<n>`, `name=<label>`. Example:
///
///   at 1.0s for 2.0s device-loss device=1 name=dev1_down
///   at 4.0s for 1.5s heap-squeeze p=0.7 min-bytes=65536
struct ChaosScenario {
  std::vector<ChaosEpisode> episodes;

  static Result<ChaosScenario> Parse(const std::string& text);
  std::string ToString() const;
};

/// Drives a ChaosScenario against a machine's fault injectors.
///
/// Two modes:
///  * `Start()`/`Stop()` — a timer thread applies and ends episodes at
///    their scripted wall-clock offsets (offsets scale by `time_scale`).
///  * `ApplyEpisode(i)` / `EndEpisode(i)` — the caller steps the timeline
///    manually at known points (deterministic benches and tests).
///
/// Overlapping episodes on one device compose: ending one re-applies the
/// schedules of the episodes still active on that device (the injector
/// holds one schedule per site, so re-derivation is the simple way to keep
/// "end" from clobbering a concurrent episode).
///
/// Hooks let the caller mirror device-loss into layers above this library
/// (sharding rebalance, cache drop) without this library linking them.
class ScenarioOrchestrator {
 public:
  struct Hooks {
    /// Called when a device-loss episode starts / ends on `device`.
    std::function<void(int device)> on_device_lost;
    std::function<void(int device)> on_device_restored;
  };

  ScenarioOrchestrator(ChaosScenario scenario,
                       std::vector<FaultInjector*> injectors,
                       MetricRegistry* registry = nullptr,
                       FlightRecorder* recorder = nullptr,
                       Hooks hooks = {});
  ~ScenarioOrchestrator();

  ScenarioOrchestrator(const ScenarioOrchestrator&) = delete;
  ScenarioOrchestrator& operator=(const ScenarioOrchestrator&) = delete;

  /// Launches the timeline thread. `time_scale` multiplies every scripted
  /// offset (0.5 = twice as fast).
  void Start(double time_scale = 1.0);
  /// Ends the timeline: joins the thread and ends every active episode.
  void Stop();

  /// Manual stepping (idempotent per episode).
  void ApplyEpisode(size_t index);
  void EndEpisode(size_t index);

  const ChaosScenario& scenario() const { return scenario_; }
  /// Episodes currently active.
  int active_episodes() const;

 private:
  void TimelineLoop(double time_scale);
  void ApplyLocked(size_t index);
  void EndLocked(size_t index);
  /// Recomputes the injector schedules on `device` from the episodes still
  /// active there (caller holds mutex_).
  void ReapplyDeviceLocked(int device);
  std::vector<int> VictimDevices(const ChaosEpisode& episode) const;

  const ChaosScenario scenario_;
  const std::vector<FaultInjector*> injectors_;
  MetricRegistry* const registry_;
  FlightRecorder* const recorder_;
  const Hooks hooks_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
  std::vector<bool> applied_;
  std::vector<bool> ended_;
};

}  // namespace hetdb

#endif  // HETDB_FAULT_SCENARIO_H_
