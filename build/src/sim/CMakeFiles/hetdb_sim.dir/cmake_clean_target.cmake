file(REMOVE_RECURSE
  "libhetdb_sim.a"
)
