// Figure 14(a): average SSB workload execution time (all 13 queries) as the
// database scale factor grows, for the six placement strategies of Section
// 6.2. Expected shape: GPU-Only falls behind once the working set exceeds
// the device cache (~SF 15 at the 24 MiB cache); Data-Driven Chopping is
// never worse than CPU-Only and fastest overall.

#include "bench/bench_util.h"

using namespace hetdb;
using namespace hetdb::bench;

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv);
  const std::vector<double> scale_factors =
      args.quick ? std::vector<double>{2, 5}
                 : (args.full ? std::vector<double>{5, 10, 15, 20, 25, 30}
                              : std::vector<double>{5, 10, 20, 30});
  const std::vector<Strategy> strategies = {
      Strategy::kCpuOnly,      Strategy::kGpuOnly,
      Strategy::kCriticalPath, Strategy::kDataDriven,
      Strategy::kChopping,     Strategy::kDataDrivenChopping};

  Banner("Figure 14(a)",
         "SSB workload (Q1.1-Q4.3) execution time vs scale factor; device "
         "cache 24 MiB, heap 16 MiB");

  std::vector<std::string> header = {"sf"};
  for (Strategy strategy : strategies) {
    header.push_back(std::string(StrategyToString(strategy)) + "[ms]");
  }
  PrintHeader(header);

  for (double sf : scale_factors) {
    SsbGeneratorOptions gen;
    args.ApplySeed(gen);
    gen.scale_factor = sf;
    DatabasePtr db = GenerateSsbDatabase(gen);

    PrintCell(static_cast<uint64_t>(sf));
    for (Strategy strategy : strategies) {
      WorkloadRunOptions options;
      options.repetitions = 1;
      options.warmup_repetitions = 1;
      const WorkloadRunResult result =
          RunPoint(PaperConfig(args.time_scale), db, strategy, SsbQueries(),
                   options);
      PrintCell(result.wall_millis);
    }
    EndRow();
  }
  return 0;
}
