// run_query: execute one SSB query and print a checksum of its result.
//
// The CI fusion smoke runs the same query with --fusion=off and --fusion=on
// and diffs the stdout lines — operator fusion must be invisible in results
// (DESIGN.md §11). Informational output (timing, heap footprint) goes to
// stderr so stdout stays diff-stable.
//
// Usage:
//   run_query [--query Q2.1] [--fusion=on|off] [--sf 0.2]
//             [--strategy cpu|gpu|chopping]

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/config.h"
#include "placement/strategy_runner.h"
#include "ssb/ssb_generator.h"
#include "ssb/ssb_queries.h"

namespace hetdb {
namespace {

// FNV-1a over the result's raw value storage, column by column.
class Fnv1a {
 public:
  void Bytes(const void* data, size_t size) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < size; ++i) {
      hash_ ^= p[i];
      hash_ *= 1099511628211ull;
    }
  }
  void String(const std::string& s) { Bytes(s.data(), s.size()); }
  uint64_t value() const { return hash_; }

 private:
  uint64_t hash_ = 14695981039346656037ull;
};

uint64_t ChecksumTable(const Table& table) {
  Fnv1a hash;
  for (const ColumnPtr& column : table.columns()) {
    hash.String(column->name());
    switch (column->type()) {
      case DataType::kInt32: {
        const auto& values = ColumnCast<Int32Column>(*column).values();
        hash.Bytes(values.data(), values.size() * sizeof(int32_t));
        break;
      }
      case DataType::kInt64: {
        const auto& values = ColumnCast<Int64Column>(*column).values();
        hash.Bytes(values.data(), values.size() * sizeof(int64_t));
        break;
      }
      case DataType::kDouble: {
        const auto& values = ColumnCast<DoubleColumn>(*column).values();
        hash.Bytes(values.data(), values.size() * sizeof(double));
        break;
      }
      case DataType::kString: {
        const auto& strings = ColumnCast<StringColumn>(*column);
        hash.Bytes(strings.codes().data(),
                   strings.codes().size() * sizeof(int32_t));
        for (const std::string& entry : strings.dictionary()) {
          hash.String(entry);
        }
        break;
      }
    }
  }
  return hash.value();
}

int Run(int argc, char** argv) {
  std::string query_name = "Q2.1";
  std::string strategy_name = "gpu";
  double scale_factor = 0.2;
  bool fusion = true;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* prefix) -> const char* {
      return arg.c_str() + std::strlen(prefix);
    };
    if (arg.rfind("--query=", 0) == 0) {
      query_name = value("--query=");
    } else if (arg == "--query" && i + 1 < argc) {
      query_name = argv[++i];
    } else if (arg.rfind("--fusion=", 0) == 0) {
      fusion = std::string(value("--fusion=")) == "on";
    } else if (arg.rfind("--sf=", 0) == 0) {
      scale_factor = std::atof(value("--sf="));
    } else if (arg == "--sf" && i + 1 < argc) {
      scale_factor = std::atof(argv[++i]);
    } else if (arg.rfind("--strategy=", 0) == 0) {
      strategy_name = value("--strategy=");
    } else if (arg == "--strategy" && i + 1 < argc) {
      strategy_name = argv[++i];
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return 2;
    }
  }

  Strategy strategy = Strategy::kGpuOnly;
  if (strategy_name == "cpu") {
    strategy = Strategy::kCpuOnly;
  } else if (strategy_name == "gpu") {
    strategy = Strategy::kGpuOnly;
  } else if (strategy_name == "chopping") {
    strategy = Strategy::kDataDrivenChopping;
  } else {
    std::fprintf(stderr, "unknown strategy: %s\n", strategy_name.c_str());
    return 2;
  }

  GlobalKernelConfig().fusion = fusion;

  SsbGeneratorOptions options;
  options.scale_factor = scale_factor;
  DatabasePtr db = GenerateSsbDatabase(options);

  SystemConfig config;
  config.simulate_time = false;
  EngineContext ctx(config, db);
  StrategyRunner runner(&ctx, strategy);
  runner.RefreshDataPlacement();

  Result<NamedQuery> query = SsbQueryByName(query_name);
  if (!query.ok()) {
    std::fprintf(stderr, "%s\n", query.status().ToString().c_str());
    return 2;
  }
  Result<PlanNodePtr> plan = query->builder(*db);
  if (!plan.ok()) {
    std::fprintf(stderr, "%s\n", plan.status().ToString().c_str());
    return 2;
  }
  QueryStatsPtr stats = std::make_shared<QueryStats>();
  Result<TablePtr> result = runner.RunQuery(plan.value(), stats);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }

  std::fprintf(stderr, "# %s strategy=%s fusion=%s heap_high_water=%lld\n",
               query_name.c_str(), strategy_name.c_str(),
               fusion ? "on" : "off",
               static_cast<long long>(stats->heap_high_water()));
  // stdout: stable across fusion on/off — the CI smoke diffs it.
  std::printf("%s rows=%zu cols=%zu checksum=%016llx\n", query_name.c_str(),
              result.value()->num_rows(), result.value()->num_columns(),
              static_cast<unsigned long long>(ChecksumTable(*result.value())));
  return 0;
}

}  // namespace
}  // namespace hetdb

int main(int argc, char** argv) { return hetdb::Run(argc, argv); }
