file(REMOVE_RECURSE
  "CMakeFiles/hetdb_sim.dir/device_allocator.cc.o"
  "CMakeFiles/hetdb_sim.dir/device_allocator.cc.o.d"
  "CMakeFiles/hetdb_sim.dir/pcie_bus.cc.o"
  "CMakeFiles/hetdb_sim.dir/pcie_bus.cc.o.d"
  "CMakeFiles/hetdb_sim.dir/simulator.cc.o"
  "CMakeFiles/hetdb_sim.dir/simulator.cc.o.d"
  "libhetdb_sim.a"
  "libhetdb_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetdb_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
