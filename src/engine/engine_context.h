#ifndef HETDB_ENGINE_ENGINE_CONTEXT_H_
#define HETDB_ENGINE_ENGINE_CONTEXT_H_

#include <memory>
#include <string>
#include <vector>

#include <algorithm>

#include "cache/data_cache.h"
#include "common/config.h"
#include "fault/brownout.h"
#include "fault/circuit_breaker.h"
#include "fault/watchdog.h"
#include "hype/cost_model.h"
#include "hype/load_tracker.h"
#include "hype/scheduler.h"
#include "placement/sharding.h"
#include "sim/simulator.h"
#include "storage/database.h"
#include "telemetry/detector.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/telemetry.h"

namespace hetdb {

/// Owns the full runtime state of one HetDB instance: the simulated machine,
/// the per-device data caches / circuit breakers / thrashing detectors, the
/// device sharding policy, the HyPE optimizer state, and telemetry (metric
/// registry + workload counters; trace recording is process-global, see
/// telemetry/trace_recorder.h).
///
/// Benchmarks construct one EngineContext per experimental configuration;
/// executors and placement strategies all operate against it. The no-arg
/// `cache()` / `breaker()` / `detector()` accessors return device 0's unit,
/// which on the default single-device machine is the whole story — the
/// multi-device-aware layers index explicitly.
class EngineContext {
 public:
  EngineContext(const SystemConfig& config, DatabasePtr database,
                EvictionPolicy cache_policy = EvictionPolicy::kLfu)
      : simulator_(std::make_unique<Simulator>(config)),
        cost_model_(std::make_unique<CostModel>(simulator_.get())),
        load_tracker_(std::make_unique<LoadTracker>()),
        scheduler_(std::make_unique<HypeScheduler>(
            cost_model_.get(), load_tracker_.get(), simulator_.get())),
        telemetry_(std::make_unique<Telemetry>()),
        flight_recorder_(std::make_unique<FlightRecorder>()),
        database_(std::move(database)) {
    const int devices = simulator_->device_count();
    caches_.reserve(static_cast<size_t>(devices));
    detectors_.reserve(static_cast<size_t>(devices));
    breakers_.reserve(static_cast<size_t>(devices));
    for (int d = 0; d < devices; ++d) {
      // Device 0 keeps the legacy un-prefixed metric names, so the
      // single-device dashboards/tests are byte-identical to before.
      const std::string prefix =
          d == 0 ? "" : "device" + std::to_string(d) + ".";
      caches_.push_back(std::make_unique<DataCache>(
          config.device_cache_bytes, cache_policy, simulator_.get(),
          config.compress_device_cache, d));
      detectors_.push_back(std::make_unique<ThrashingDetector>(
          ThrashingDetector::Options(), &telemetry_->registry(),
          flight_recorder_.get(), prefix));
      breakers_.push_back(std::make_unique<DeviceCircuitBreaker>(
          DeviceCircuitBreaker::Options(), &telemetry_->registry(),
          flight_recorder_.get(), prefix));
      // Fault-injection counters surface in this context's metric exports,
      // and fault episodes land in the flight recorder's history.
      simulator_->fault_injector(d).BindMetrics(&telemetry_->registry());
      simulator_->fault_injector(d).BindFlightRecorder(flight_recorder_.get());
    }
    std::vector<DataCache*> cache_ptrs;
    std::vector<DeviceCircuitBreaker*> breaker_ptrs;
    for (int d = 0; d < devices; ++d) {
      cache_ptrs.push_back(caches_[static_cast<size_t>(d)].get());
      breaker_ptrs.push_back(breakers_[static_cast<size_t>(d)].get());
    }
    sharding_ = std::make_unique<DeviceShardingPolicy>(
        simulator_.get(), std::move(cache_ptrs), std::move(breaker_ptrs));
    brownout_ = std::make_unique<BrownoutController>(
        BrownoutController::Options(), devices, &telemetry_->registry(),
        flight_recorder_.get());
    watchdog_ = std::make_unique<StuckQueryWatchdog>(
        StuckQueryWatchdog::Options(), &telemetry_->registry(),
        flight_recorder_.get());
    // Degradation hooks: at L2+ cache misses stop demand-inserting, and the
    // placement layer skips devices the controller benched (all of them at
    // L3). Both gates are lock-free atomic reads on the controller.
    for (int d = 0; d < devices; ++d) {
      caches_[static_cast<size_t>(d)]->SetAdmissionGate(
          [this] { return brownout_->AllowCacheAdmission(); });
    }
    sharding_->SetDeviceGate(
        [this](int device) { return brownout_->DevicePlacementAllowed(device); });
  }

  EngineContext(const EngineContext&) = delete;
  EngineContext& operator=(const EngineContext&) = delete;

  Simulator& simulator() { return *simulator_; }
  int device_count() const { return simulator_->device_count(); }
  DataCache& cache(int device = 0) {
    return *caches_[static_cast<size_t>(device)];
  }
  CostModel& cost_model() { return *cost_model_; }
  LoadTracker& load_tracker() { return *load_tracker_; }
  HypeScheduler& scheduler() { return *scheduler_; }
  Telemetry& telemetry() { return *telemetry_; }
  /// Workload counters live on the telemetry bundle; `metrics()` remains as
  /// the established spelling at the recording sites.
  Telemetry& metrics() { return *telemetry_; }
  /// Abort-storm circuit breaker gating placement/execution on `device`.
  DeviceCircuitBreaker& breaker(int device = 0) {
    return *breakers_[static_cast<size_t>(device)];
  }
  /// Always-on ring buffer of recent query summaries and state transitions.
  FlightRecorder& flight_recorder() { return *flight_recorder_; }
  /// Live classifier of the paper's heap-contention / cache-thrashing modes
  /// on `device`.
  ThrashingDetector& detector(int device = 0) {
    return *detectors_[static_cast<size_t>(device)];
  }
  /// Column affinity, operator->device placement, and loss rebalancing.
  DeviceShardingPolicy& sharding() { return *sharding_; }
  /// Coordinated graceful-degradation ladder (DESIGN.md §13).
  BrownoutController& brownout() { return *brownout_; }
  /// Stuck-query backstop: progress-stall / deadline-multiple killer.
  StuckQueryWatchdog& watchdog() { return *watchdog_; }
  const DatabasePtr& database() const { return database_; }
  const SystemConfig& config() const { return simulator_->config(); }

  /// True while at least one device is live with a non-open breaker — the
  /// any-device generalization the run-time placers gate on.
  bool AnyDeviceAvailable() {
    for (int d = 0; d < device_count(); ++d) {
      if (sharding_->IsLive(d) && breakers_[static_cast<size_t>(d)]
              ->device_available()) {
        return true;
      }
    }
    return false;
  }

  /// True iff `key` is resident in any device's data cache (data-driven
  /// placement test, generalized over the sharded caches).
  bool IsCachedOnAnyDevice(const std::string& key) const {
    for (const auto& cache : caches_) {
      if (cache->IsCached(key)) return true;
    }
    return false;
  }

  /// Feeds each device's thrashing detector — and the brownout controller —
  /// one observation window from the engine's cumulative counters. The
  /// executors call this once per finished query.
  void NoteQueryFinished() {
    const int devices = device_count();
    BrownoutSignals signals;
    signals.device_thrashing.resize(static_cast<size_t>(devices), false);
    int open_breakers = 0;
    for (int d = 0; d < devices; ++d) {
      const DataCacheStats cache_stats =
          caches_[static_cast<size_t>(d)]->stats();
      ThrashingDetector::Sample sample;
      sample.cache_hits = static_cast<int64_t>(cache_stats.hits);
      sample.cache_misses = static_cast<int64_t>(cache_stats.misses);
      sample.cache_evictions = static_cast<int64_t>(cache_stats.evictions);
      sample.gpu_aborts =
          static_cast<int64_t>(telemetry_->gpu_operator_aborts(d));
      // Successes + aborts = device launches attempted.
      sample.gpu_attempts =
          sample.gpu_aborts +
          static_cast<int64_t>(telemetry_->gpu_operators(d));
      sample.failed_allocations = static_cast<int64_t>(
          simulator_->device_heap(d).failed_allocations());
      sample.heap_used_bytes =
          static_cast<int64_t>(simulator_->device_heap(d).used());
      sample.heap_capacity_bytes =
          static_cast<int64_t>(simulator_->device_heap(d).capacity());
      const ThrashingDetector::State thrash =
          detectors_[static_cast<size_t>(d)]->Update(sample);

      signals.worst_thrash_state =
          std::max(signals.worst_thrash_state, static_cast<int>(thrash));
      signals.device_thrashing[static_cast<size_t>(d)] =
          thrash == ThrashingDetector::State::kThrashing;
      // device_available() (not state()) on purpose: the peek advances the
      // breaker's open-state cooldown, so a device the brownout pinned away
      // from all traffic (L3) still half-opens once its wall-clock floor
      // elapses — this sampling path is what keeps recovery live when no
      // placement ever consults the breaker.
      DeviceCircuitBreaker& breaker = *breakers_[static_cast<size_t>(d)];
      if (!breaker.device_available()) {
        ++open_breakers;
        signals.any_breaker_open = true;
      } else if (breaker.state() == DeviceCircuitBreaker::State::kHalfOpen) {
        signals.any_breaker_half_open = true;
      }
      if (sample.heap_capacity_bytes > 0) {
        signals.heap_pressure = std::max(
            signals.heap_pressure,
            static_cast<double>(sample.heap_used_bytes) /
                static_cast<double>(sample.heap_capacity_bytes));
      }
      signals.gpu_attempts += sample.gpu_attempts;
      signals.gpu_aborts += sample.gpu_aborts;
    }
    signals.all_breakers_open = open_breakers == devices;
    brownout_->Update(signals);
  }

  /// Clears all per-run statistics (buses, allocators, caches, metrics)
  /// while keeping cache contents and learned cost models.
  void ResetRunStats() {
    for (int d = 0; d < device_count(); ++d) {
      simulator_->bus(d).ResetStats();
      simulator_->device_heap(d).ResetStats();
      simulator_->fault_injector(d).ResetStats();
      caches_[static_cast<size_t>(d)]->ResetStats();
      detectors_[static_cast<size_t>(d)]->Reset();
    }
    simulator_->ResetD2DStats();
    telemetry_->Reset();
  }

 private:
  std::unique_ptr<Simulator> simulator_;
  std::vector<std::unique_ptr<DataCache>> caches_;
  std::unique_ptr<CostModel> cost_model_;
  std::unique_ptr<LoadTracker> load_tracker_;
  std::unique_ptr<HypeScheduler> scheduler_;
  std::unique_ptr<Telemetry> telemetry_;
  std::unique_ptr<FlightRecorder> flight_recorder_;  // after telemetry_
  std::vector<std::unique_ptr<ThrashingDetector>> detectors_;  // after recorder
  std::vector<std::unique_ptr<DeviceCircuitBreaker>> breakers_;
  std::unique_ptr<DeviceShardingPolicy> sharding_;  // after caches/breakers
  /// After sharding_/caches_ (their gates point here) and after telemetry_/
  /// flight_recorder_ (metrics and dumps on transitions).
  std::unique_ptr<BrownoutController> brownout_;
  std::unique_ptr<StuckQueryWatchdog> watchdog_;  // joins its thread first
  DatabasePtr database_;
};

}  // namespace hetdb

#endif  // HETDB_ENGINE_ENGINE_CONTEXT_H_
