// Figure 13: number of aborted device operators in the B.2 parallel
// selection workload. Compile-time operator-driven placement aborts most;
// run-time placement reduces aborts by relieving the heap after each abort;
// chopping's concurrency bound nearly eliminates them.

#include "bench/bench_util.h"

using namespace hetdb;
using namespace hetdb::bench;

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv);
  const double sf = args.quick ? 5 : 10;
  const int total_queries = args.quick ? 24 : 48;

  SsbGeneratorOptions gen;
  args.ApplySeed(gen);
  gen.scale_factor = sf;
  DatabasePtr db = GenerateSsbDatabase(gen);

  Banner("Figure 13",
         "Aborted device operators in the B.2 workload, by strategy");

  RunContentionSweep(args, db,
                     {Strategy::kGpuOnly, Strategy::kRunTime,
                      Strategy::kChopping, Strategy::kDataDrivenChopping},
                     {ContentionMetric::kAborts}, total_queries);
  return 0;
}
