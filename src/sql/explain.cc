#include "sql/explain.h"

#include <sstream>

#include "operators/fused_pipeline.h"
#include "telemetry/exporters.h"

namespace hetdb {

namespace {

void Indent(int depth, std::ostream& os) {
  for (int i = 0; i < depth; ++i) os << "  ";
}

void RenderTextNode(const PlanNodePtr& node, int depth, std::ostream& os) {
  Indent(depth, os);
  if (node->op() == PlanOp::kFusedPipeline) {
    // Render the fused group with its member operators indented underneath
    // (top-down, the reading order of the rest of the tree) marked with '·'
    // so they are not mistaken for plan children.
    const auto& fused = static_cast<const FusedPipelineNode&>(*node);
    os << "fused_pipeline (" << fused.members().size() << " ops)\n";
    const auto& members = fused.members();
    for (auto it = members.rbegin(); it != members.rend(); ++it) {
      Indent(depth + 1, os);
      os << "· " << (*it)->label() << '\n';
    }
  } else {
    os << node->label() << '\n';
  }
  for (const PlanNodePtr& child : node->children()) {
    RenderTextNode(child, depth + 1, os);
  }
}

void RenderJsonNode(const PlanNodePtr& node, std::ostream& os) {
  os << "{\"op\":\"" << PlanOpToString(node->op()) << "\",\"label\":\""
     << JsonEscape(node->label()) << "\"";
  if (node->op() == PlanOp::kFusedPipeline) {
    const auto& fused = static_cast<const FusedPipelineNode&>(*node);
    os << ",\"members\":[";
    const auto& members = fused.members();
    bool first = true;
    for (auto it = members.rbegin(); it != members.rend(); ++it) {
      if (!first) os << ',';
      first = false;
      os << "{\"op\":\"" << PlanOpToString((*it)->op()) << "\",\"label\":\""
         << JsonEscape((*it)->label()) << "\"}";
    }
    os << ']';
  }
  os << ",\"children\":[";
  bool first = true;
  for (const PlanNodePtr& child : node->children()) {
    if (!first) os << ',';
    first = false;
    RenderJsonNode(child, os);
  }
  os << "]}";
}

}  // namespace

std::string RenderPlanTree(const PlanNodePtr& root) {
  std::ostringstream os;
  RenderTextNode(root, 0, os);
  return os.str();
}

std::string RenderPlanJson(const PlanNodePtr& root) {
  std::ostringstream os;
  RenderJsonNode(root, os);
  return os.str();
}

}  // namespace hetdb
