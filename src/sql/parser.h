#ifndef HETDB_SQL_PARSER_H_
#define HETDB_SQL_PARSER_H_

#include <string>

#include "common/status.h"
#include "sql/ast.h"

namespace hetdb {

/// Parses one SELECT statement of the supported SQL subset (see ast.h).
/// Qualified column names ("lineorder.lo_discount") are accepted and
/// reduced to their column part — HetDB column names are globally unique.
Result<SelectStatement> ParseSelect(const std::string& sql);

/// Introspection prefix of a statement: none (plain SELECT), `EXPLAIN`
/// (render the plan without running it), `EXPLAIN ANALYZE` (run the query
/// and annotate the plan with per-operator resource attribution).
enum class ExplainMode {
  kNone,
  kPlan,
  kAnalyze,
};

/// A full statement: optional EXPLAIN [ANALYZE] prefix plus the SELECT.
struct SqlStatement {
  ExplainMode explain = ExplainMode::kNone;
  SelectStatement select;
};

/// Parses `[EXPLAIN [ANALYZE]] SELECT ...`.
Result<SqlStatement> ParseStatement(const std::string& sql);

}  // namespace hetdb

#endif  // HETDB_SQL_PARSER_H_
