#include "sim/simulator.h"

#include "common/logging.h"
#include "telemetry/query_stats.h"

namespace hetdb {

const char* ProcessorKindToString(ProcessorKind kind) {
  switch (kind) {
    case ProcessorKind::kCpu:
      return "CPU";
    case ProcessorKind::kGpu:
      return "GPU";
  }
  return "unknown";
}

Simulator::Simulator(const SystemConfig& config)
    : config_(config),
      clock_(config.simulate_time, config.time_scale),
      cpu_slots_(config.cpu_workers),
      retry_rng_(config.retry_jitter_seed) {
  HETDB_CHECK(config.cpu_workers > 0);
  HETDB_CHECK(config.pcie_mbps > 0);
  HETDB_CHECK(config.device_count > 0);
  devices_.reserve(static_cast<size_t>(config.device_count));
  for (int d = 0; d < config.device_count; ++d) {
    auto device = std::make_unique<Device>();
    device->fault_injector = std::make_unique<FaultInjector>();
    device->heap = std::make_unique<DeviceAllocator>(
        config.device_heap_bytes(), device->fault_injector.get(), d);
    device->bus = std::make_unique<PcieBus>(
        config.pcie_mbps, config.pcie_sync_efficiency, &clock_,
        device->fault_injector.get(), d);
    devices_.push_back(std::move(device));
  }
}

double Simulator::RetryBackoffMicros(int attempt) {
  const double ceiling =
      config_.device_retry_backoff_micros * static_cast<double>(1ull << attempt);
  if (!config_.device_retry_jitter) return ceiling;
  std::lock_guard<std::mutex> lock(retry_rng_mutex_);
  return retry_rng_.NextDouble() * ceiling;
}

int Simulator::Check(int device) const {
  HETDB_CHECK(device >= 0 && device < static_cast<int>(devices_.size()));
  return device;
}

double Simulator::ThroughputMbps(ProcessorKind processor,
                                 OpClass op_class) const {
  const ThroughputTable& table = processor == ProcessorKind::kCpu
                                     ? config_.cpu_throughput
                                     : config_.gpu_throughput;
  switch (op_class) {
    case OpClass::kScan:
      return table.scan_mbps;
    case OpClass::kJoin:
      return table.join_mbps;
    case OpClass::kAggregate:
      return table.aggregate_mbps;
    case OpClass::kSort:
      return table.sort_mbps;
    case OpClass::kProject:
      return table.project_mbps;
    case OpClass::kMaterialize:
      return table.materialize_mbps;
  }
  return table.scan_mbps;
}

double Simulator::EstimateComputeMicros(ProcessorKind processor,
                                        OpClass op_class,
                                        size_t input_bytes) const {
  // bytes / (MB/s) == microseconds.
  return static_cast<double>(input_bytes) / ThroughputMbps(processor, op_class);
}

double Simulator::EstimateTransferMicros(size_t bytes) const {
  return static_cast<double>(bytes) / config_.pcie_mbps;
}

void Simulator::ChargeCompute(ProcessorKind processor, OpClass op_class,
                              size_t input_bytes, int device) {
  const double micros = EstimateComputeMicros(processor, op_class, input_bytes);
  if (processor == ProcessorKind::kGpu) {
    std::lock_guard<std::mutex> lock(devices_[Check(device)]->kernel_mutex);
    clock_.Charge(micros);
  } else {
    // Intra-operator parallelism: the kernel runs on every currently idle
    // core; under high inter-operator concurrency each operator gets one.
    const int slots = cpu_slots_.AcquireUpTo(config_.cpu_workers);
    clock_.Charge(micros / slots);
    cpu_slots_.Release(slots);
  }
}

Status Simulator::TransferDeviceToDevice(size_t bytes, int from, int to) {
  Check(from);
  Check(to);
  if (bytes == 0 || from == to) return Status::OK();
  if (config_.d2d_mbps > 0) {
    const double micros = static_cast<double>(bytes) / config_.d2d_mbps;
    {
      std::lock_guard<std::mutex> lock(d2d_lane_mutex_);
      clock_.Charge(micros);
    }
    d2d_bytes_.fetch_add(bytes, std::memory_order_relaxed);
    d2d_count_.fetch_add(1, std::memory_order_relaxed);
    if (QueryStats* stats = QueryStatsScope::current_stats()) {
      stats->OnD2DTransfer(static_cast<int64_t>(bytes),
                           static_cast<int64_t>(micros));
    }
    return Status::OK();
  }
  // No dedicated interconnect: stage through host memory. Both hops consult
  // their own link's fault injector, so a dying source or destination device
  // fails the migration with the right status.
  Status down = bus(from).Transfer(bytes, TransferDirection::kDeviceToHost);
  if (!down.ok()) return down;
  return bus(to).Transfer(bytes, TransferDirection::kHostToDevice);
}

}  // namespace hetdb
