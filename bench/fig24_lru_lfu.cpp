// Figure 24 (Appendix E): LRU vs LFU data placement under the Data-Driven
// strategy for an interleaved SSB workload, with the device cache swept from
// 0% to ~110% of the working set. The paper's finding: the placement policy
// itself barely matters — the gain comes from the data-driven strategy;
// execution time improves monotonically until the working set fits, with no
// slowdown when nothing fits.

#include "bench/bench_util.h"

using namespace hetdb;
using namespace hetdb::bench;

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv);
  const double sf = args.quick ? 2 : 10;

  SsbGeneratorOptions gen;
  args.ApplySeed(gen);
  gen.scale_factor = sf;
  DatabasePtr db = GenerateSsbDatabase(gen);

  // Working set: every base column the 13 SSB queries reference.
  WorkloadRunOptions probe_options;
  probe_options.repetitions = 1;

  Banner("Figure 24",
         "Interleaved SSB workload under Data-Driven placement, LRU vs LFU "
         "background policy, cache swept 0..110% of device memory");

  PrintHeader({"cache[MiB]", "lru[ms]", "lfu[ms]"});
  for (int step = 0; step <= 8; ++step) {
    SystemConfig config = PaperConfig(args.time_scale);
    config.device_cache_bytes =
        static_cast<size_t>(config.device_memory_bytes) * step / 7;
    if (config.device_cache_bytes >= config.device_memory_bytes) {
      // Keep a minimal heap so device operators can still run.
      config.device_memory_bytes = config.device_cache_bytes + (8ull << 20);
    }
    WorkloadRunOptions options;
    options.repetitions = args.quick ? 1 : 2;

    const WorkloadRunResult lru =
        RunPoint(config, db, Strategy::kDataDriven, SsbQueries(), options,
                 EvictionPolicy::kLru);
    const WorkloadRunResult lfu =
        RunPoint(config, db, Strategy::kDataDriven, SsbQueries(), options,
                 EvictionPolicy::kLfu);
    PrintCell(static_cast<double>(config.device_cache_bytes) / (1 << 20));
    PrintCell(lru.wall_millis);
    PrintCell(lfu.wall_millis);
    EndRow();
  }
  return 0;
}
