file(REMOVE_RECURSE
  "../bench/fig19_transfer_users"
  "../bench/fig19_transfer_users.pdb"
  "CMakeFiles/fig19_transfer_users.dir/fig19_transfer_users.cpp.o"
  "CMakeFiles/fig19_transfer_users.dir/fig19_transfer_users.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_transfer_users.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
