# Empty compiler generated dependencies file for fig02_cache_thrashing.
# This may be replaced when dependencies are built.
