#include "sim/pcie_bus.h"

#include "telemetry/query_stats.h"
#include "telemetry/trace_recorder.h"

namespace hetdb {

Status PcieBus::Transfer(size_t bytes, TransferDirection direction,
                         bool asynchronous) {
  if (bytes == 0) return Status::OK();
  const double effective_mbps =
      asynchronous ? bandwidth_mbps_ : bandwidth_mbps_ * sync_efficiency_;
  // bytes / (MB/s) == microseconds, since 1 MB/s == 1 byte/us.
  double micros = static_cast<double>(bytes) / effective_mbps;
  const int lane = Index(direction);

  FaultDecision fault;
  if (fault_injector_ != nullptr && fault_injector_->enabled()) {
    fault = fault_injector_->Decide(FaultSite::kTransfer, bytes);
    if (fault.kind == FaultKind::kDeviceLost) {
      // The device fell off the bus: the transfer never starts.
      failed_transfers_.fetch_add(1, std::memory_order_relaxed);
      return fault.ToStatus("PCIe transfer of " + std::to_string(bytes) +
                            " bytes");
    }
    if (fault.kind == FaultKind::kLatencySpike) {
      micros *= fault.latency_factor;
    }
  }

  // Transfer span: total duration covers lane queuing + the modeled copy;
  // the queue_wait_us arg separates the two (Figures 6/15/19 diagnose
  // exactly this split).
  TraceSpan span;
  int64_t wait_start_micros = 0;
  if (TraceRecorder::enabled()) {
    span.Begin(direction == TransferDirection::kHostToDevice ? "H2D transfer"
                                                             : "D2H transfer",
               "transfer");
    wait_start_micros = TraceRecorder::Global().NowMicros();
  }
  {
    std::lock_guard<std::mutex> lock(lane_mutex_[lane]);
    if (span.active()) {
      span.AddArg("queue_wait_us",
                  TraceRecorder::Global().NowMicros() - wait_start_micros);
    }
    if (fault.kind == FaultKind::kTransient) {
      // The copy dies partway: half the modeled duration is wasted on the
      // lane, nothing arrives.
      clock_->Charge(micros / 2);
    } else {
      clock_->Charge(micros);
    }
  }
  if (fault.kind == FaultKind::kTransient) {
    if (span.active()) {
      span.AddArg("bytes", static_cast<int64_t>(bytes));
      span.AddArg("error", "injected transient transfer fault");
    }
    failed_transfers_.fetch_add(1, std::memory_order_relaxed);
    return fault.ToStatus("PCIe transfer of " + std::to_string(bytes) +
                          " bytes");
  }
  if (span.active()) {
    span.AddArg("bytes", static_cast<int64_t>(bytes));
    span.AddArg("modeled_us", static_cast<int64_t>(micros));
    span.AddArg("mode", asynchronous ? "async" : "sync");
    if (fault.kind == FaultKind::kLatencySpike) {
      span.AddArg("latency_spike",
                  static_cast<int64_t>(fault.latency_factor));
    }
  }
  bytes_[lane].fetch_add(bytes, std::memory_order_relaxed);
  micros_[lane].fetch_add(static_cast<int64_t>(micros),
                          std::memory_order_relaxed);
  count_[lane].fetch_add(1, std::memory_order_relaxed);
  // Per-query attribution mirrors the global counters above exactly: only
  // successful transfers are charged, on the same thread and lane index.
  if (QueryStats* stats = QueryStatsScope::current_stats()) {
    stats->OnTransfer(lane, static_cast<int64_t>(bytes),
                      static_cast<int64_t>(micros),
                      QueryStatsScope::current_node(), device_id_);
  }
  return Status::OK();
}

void PcieBus::ResetStats() {
  for (int lane = 0; lane < 2; ++lane) {
    bytes_[lane].store(0, std::memory_order_relaxed);
    micros_[lane].store(0, std::memory_order_relaxed);
    count_[lane].store(0, std::memory_order_relaxed);
  }
  failed_transfers_.store(0, std::memory_order_relaxed);
}

}  // namespace hetdb
