#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "server/admission.h"
#include "server/line_protocol.h"
#include "server/server.h"
#include "server/traffic.h"
#include "sql/planner.h"
#include "ssb/ssb_generator.h"
#include "tests/test_util.h"

namespace hetdb {
namespace {

DatabasePtr SmallSsbDb() {
  SsbGeneratorOptions options;
  options.scale_factor = 0.1;  // 6,000 lineorder rows
  return GenerateSsbDatabase(options);
}

// --- AdmissionController unit tests (no engine) ----------------------------

QueuedQueryPtr MakeBareQuery(const std::string& tenant, double cost = 1.0) {
  auto query = std::make_unique<QueuedQuery>();
  query->tenant = tenant;
  query->cost = cost;
  query->controls.stats = std::make_shared<QueryStats>();
  return query;
}

TEST(AdmissionControllerTest, WdrrHonorsWeights) {
  AdmissionOptions options;
  options.max_concurrency = 1;
  options.initial_concurrency = 1;
  AdmissionController admission(options);
  admission.RegisterTenant({"heavy", /*weight=*/3.0, 1024});
  admission.RegisterTenant({"light", /*weight=*/1.0, 1024});

  // Backlog both tenants before dispatching anything.
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(admission.Offer(MakeBareQuery("heavy")));
    ASSERT_TRUE(admission.Offer(MakeBareQuery("light")));
  }

  // Drain one-at-a-time; over the first 8 dispatches the 3:1 weights must
  // show (WDRR quantization allows one query of slack).
  int heavy = 0, light = 0;
  std::vector<QueuedQueryPtr> taken;
  for (int i = 0; i < 8; ++i) {
    QueuedQueryPtr query = admission.Take();
    ASSERT_NE(query, nullptr);
    (query->tenant == "heavy" ? heavy : light)++;
    taken.push_back(std::move(query));
    admission.OnComplete(/*ok=*/true, /*service_micros=*/1000);
  }
  EXPECT_GE(heavy, 5) << "heavy=" << heavy << " light=" << light;
  EXPECT_GE(light, 1) << "weighted fairness must not starve the light tenant";

  admission.Stop();
  for (QueuedQueryPtr& query : taken) {
    query->promise.set_value(Status::Cancelled("test teardown"));
  }
}

TEST(AdmissionControllerTest, ShedsWhenTenantQueueFull) {
  AdmissionOptions options;
  options.max_concurrency = 1;
  options.initial_concurrency = 1;
  AdmissionController admission(options);
  admission.RegisterTenant({"t", 1.0, /*max_queue=*/2});

  ASSERT_TRUE(admission.Offer(MakeBareQuery("t")));
  ASSERT_TRUE(admission.Offer(MakeBareQuery("t")));
  QueuedQueryPtr overflow = MakeBareQuery("t");
  QueryStatsPtr stats = overflow->controls.stats;
  std::future<Result<TablePtr>> future = overflow->promise.get_future();
  EXPECT_FALSE(admission.Offer(std::move(overflow)));

  const Result<TablePtr> result = future.get();
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsResourceExhausted());
  EXPECT_EQ(result.status().message().rfind("shed: ", 0), 0u);
  EXPECT_TRUE(stats->shed());
  EXPECT_TRUE(stats->finished());
  EXPECT_FALSE(stats->ok());
  EXPECT_EQ(admission.shed_total(), 1u);
}

TEST(AdmissionControllerTest, ShedsUnmeetableDeadlineAtAdmission) {
  AdmissionOptions options;
  options.initial_service_micros = 50'000;  // EWMA bootstrap: 50ms/query
  AdmissionController admission(options);

  QueuedQueryPtr query = MakeBareQuery("t");
  query->controls.deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(1);
  std::future<Result<TablePtr>> future = query->promise.get_future();
  EXPECT_FALSE(admission.Offer(std::move(query)));
  const Result<TablePtr> result = future.get();
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsResourceExhausted());

  // A generous deadline is admitted.
  QueuedQueryPtr ok_query = MakeBareQuery("t");
  ok_query->controls.deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  EXPECT_TRUE(admission.Offer(std::move(ok_query)));
  admission.Stop();
}

TEST(AdmissionControllerTest, EwmaFedOnlyBySuccessfulCompletions) {
  AdmissionOptions options;
  options.initial_service_micros = 1000.0;
  AdmissionController admission(options);
  ASSERT_TRUE(admission.Offer(MakeBareQuery("t")));
  ASSERT_TRUE(admission.Offer(MakeBareQuery("t")));

  std::vector<QueuedQueryPtr> taken;
  taken.push_back(admission.Take());
  ASSERT_NE(taken.back(), nullptr);
  // A deadline-cancelled query reports service >= its whole budget; if that
  // sample fed the EWMA, the estimate could wedge above every arrival's
  // budget — and with everything shed, nothing completes to pull it back.
  admission.OnComplete(/*ok=*/false, /*service_micros=*/10'000'000);
  EXPECT_DOUBLE_EQ(admission.ewma_service_micros(), 1000.0);

  taken.push_back(admission.Take());
  ASSERT_NE(taken.back(), nullptr);
  admission.OnComplete(/*ok=*/true, /*service_micros=*/2000);
  EXPECT_GT(admission.ewma_service_micros(), 1000.0);

  admission.Stop();
  for (QueuedQueryPtr& query : taken) {
    query->promise.set_value(Status::Cancelled("test teardown"));
  }
}

TEST(AdmissionControllerTest, ShedEstimateUsesArrivingTenantsOwnQueue) {
  AdmissionOptions options;
  options.max_concurrency = 8;
  options.initial_concurrency = 8;
  options.initial_service_micros = 10'000;  // 10ms/query
  AdmissionController admission(options);
  admission.RegisterTenant({"bulk", 1.0, 1024});
  admission.RegisterTenant({"latency", 1.0, 1024});

  // No dispatcher runs, so bulk piles up a 32-deep backlog (no deadlines).
  for (int i = 0; i < 32; ++i) {
    ASSERT_TRUE(admission.Offer(MakeBareQuery("bulk")));
  }

  // A 40ms budget is meetable from latency's empty lane (one service time),
  // but not from behind bulk's own backlog. A global backlog estimate would
  // wrongly shed the latency tenant too — the starvation mode where
  // whichever tenant holds the backlog keeps every dispatch slot.
  QueuedQueryPtr fast = MakeBareQuery("latency");
  fast->controls.deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(40);
  EXPECT_TRUE(admission.Offer(std::move(fast)));

  QueuedQueryPtr slow = MakeBareQuery("bulk");
  slow->controls.deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(40);
  EXPECT_FALSE(admission.Offer(std::move(slow)));

  admission.Stop();
}

TEST(AdmissionControllerTest, ExpiredInQueueFlushedAsShedAtDispatch) {
  AdmissionOptions options;
  options.max_concurrency = 1;
  options.initial_concurrency = 1;
  AdmissionController admission(options);

  QueuedQueryPtr doomed = MakeBareQuery("t");
  doomed->controls.deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(30);
  QueryStatsPtr doomed_stats = doomed->controls.stats;
  std::future<Result<TablePtr>> doomed_future = doomed->promise.get_future();
  ASSERT_TRUE(admission.Offer(std::move(doomed)));
  ASSERT_TRUE(admission.Offer(MakeBareQuery("t")));  // live, no deadline

  std::this_thread::sleep_for(std::chrono::milliseconds(60));

  // Take() must flush the expired head (shed, no slot, no deficit charge)
  // and hand out the live query behind it.
  QueuedQueryPtr got = admission.Take();
  ASSERT_NE(got, nullptr);
  EXPECT_FALSE(got->controls.has_deadline());

  const Result<TablePtr> result = doomed_future.get();
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsResourceExhausted());
  EXPECT_TRUE(doomed_stats->shed());

  admission.OnComplete(/*ok=*/true, /*service_micros=*/1000);
  admission.Stop();
  got->promise.set_value(Status::Cancelled("test teardown"));
}

TEST(AdmissionControllerTest, CancelledWhileQueuedIsCancelledNotShed) {
  AdmissionOptions options;
  AdmissionController admission(options);

  QueuedQueryPtr query = MakeBareQuery("t");
  CancelToken cancel = CancelToken::Create();
  query->controls.cancel = cancel;
  QueryStatsPtr stats = query->controls.stats;
  std::future<Result<TablePtr>> future = query->promise.get_future();
  ASSERT_TRUE(admission.Offer(std::move(query)));
  cancel.RequestCancel();

  // Take() must settle the cancelled query internally and keep blocking, so
  // probe it with a second, live query behind the cancelled one.
  ASSERT_TRUE(admission.Offer(MakeBareQuery("t")));
  QueuedQueryPtr taken = admission.Take();
  ASSERT_NE(taken, nullptr);
  EXPECT_FALSE(taken->controls.cancel.cancelled());

  const Result<TablePtr> result = future.get();
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCancelled());
  EXPECT_FALSE(stats->shed()) << "client cancellation is not load shedding";
  EXPECT_TRUE(stats->finished());

  admission.OnComplete(true, 1000);
  admission.Stop();
  taken->promise.set_value(Status::Cancelled("test teardown"));
}

TEST(AdmissionControllerTest, GovernorAimdFollowsInjectedSignals) {
  GovernorSignals signals;  // mutated by the test between completions
  AdmissionOptions options;
  options.min_concurrency = 1;
  options.max_concurrency = 8;
  options.initial_concurrency = 8;
  options.governor_period = 1;  // adjust on every completion
  AdmissionController admission(options, nullptr, nullptr,
                                [&signals] { return signals; });

  auto run_one = [&admission] {
    ASSERT_TRUE(admission.Offer(MakeBareQuery("t")));
    QueuedQueryPtr query = admission.Take();
    ASSERT_NE(query, nullptr);
    query->promise.set_value(Status::Cancelled("test"));
    admission.OnComplete(true, 1000);
  };

  // Thrashing halves: 8 -> 4 -> 2 -> 1 -> 1 (min-clamped).
  signals.thrash = ThrashingDetector::State::kThrashing;
  run_one();
  EXPECT_EQ(admission.concurrency_limit(), 4);
  run_one();
  EXPECT_EQ(admission.concurrency_limit(), 2);
  run_one();
  EXPECT_EQ(admission.concurrency_limit(), 1);
  run_one();
  EXPECT_EQ(admission.concurrency_limit(), 1);

  // Calm grows additively: 1 -> 2 -> 3.
  signals.thrash = ThrashingDetector::State::kCalm;
  run_one();
  EXPECT_EQ(admission.concurrency_limit(), 2);
  run_one();
  EXPECT_EQ(admission.concurrency_limit(), 3);

  // Pressure (and a half-open breaker) back off by one.
  signals.thrash = ThrashingDetector::State::kPressure;
  run_one();
  EXPECT_EQ(admission.concurrency_limit(), 2);
  signals.thrash = ThrashingDetector::State::kCalm;
  signals.breaker = DeviceCircuitBreaker::State::kHalfOpen;
  run_one();
  EXPECT_EQ(admission.concurrency_limit(), 1);

  // An open breaker halves even when the detector reads calm.
  signals.breaker = DeviceCircuitBreaker::State::kOpen;
  signals.thrash = ThrashingDetector::State::kCalm;
  for (int i = 0; i < 3; ++i) {
    signals.breaker = DeviceCircuitBreaker::State::kClosed;
    run_one();  // grow a bit first
  }
  EXPECT_EQ(admission.concurrency_limit(), 4);
  signals.breaker = DeviceCircuitBreaker::State::kOpen;
  run_one();
  EXPECT_EQ(admission.concurrency_limit(), 2);
}

TEST(AdmissionControllerTest, StopShedsBacklogAndWakesTakers) {
  AdmissionOptions options;
  AdmissionController admission(options);
  QueuedQueryPtr query = MakeBareQuery("t");
  std::future<Result<TablePtr>> future = query->promise.get_future();

  std::thread taker([&admission] {
    // First Take gets the queued query; settle and wait for shutdown.
    QueuedQueryPtr taken = admission.Take();
    if (taken != nullptr) {
      taken->promise.set_value(Status::Cancelled("test"));
      admission.OnComplete(true, 100);
      taken = admission.Take();
    }
    EXPECT_EQ(taken, nullptr);
  });
  ASSERT_TRUE(admission.Offer(std::move(query)));
  future.wait();
  admission.Stop();
  taker.join();

  // Offers after Stop are shed immediately.
  QueuedQueryPtr late = MakeBareQuery("t");
  std::future<Result<TablePtr>> late_future = late->promise.get_future();
  EXPECT_FALSE(admission.Offer(std::move(late)));
  EXPECT_TRUE(late_future.get().status().IsResourceExhausted());
}

// --- End-to-end server tests (engine + sessions) ---------------------------

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = SmallSsbDb();
    ctx_ = std::make_unique<EngineContext>(TestConfig(), db_);
  }

  DatabasePtr db_;
  std::unique_ptr<EngineContext> ctx_;
};

TEST_F(ServerTest, SessionMatchesDirectExecution) {
  constexpr const char* kSql =
      "SELECT d_year, sum(lo_revenue) AS revenue FROM lineorder, date "
      "WHERE lo_orderdate = d_datekey GROUP BY d_year ORDER BY d_year";

  Server server(ctx_.get());
  SessionPtr session = server.OpenSession("parity");
  Result<TablePtr> served = session->ExecuteSql(kSql);
  ASSERT_TRUE(served.ok()) << served.status().ToString();

  EngineContext direct_ctx(TestConfig(), db_);
  StrategyRunner direct(&direct_ctx, Strategy::kDataDrivenChopping);
  Result<PlanNodePtr> plan = PlanSql(kSql, *db_);
  ASSERT_TRUE(plan.ok());
  Result<TablePtr> expected = direct.RunQuery(plan.value());
  ASSERT_TRUE(expected.ok());

  EXPECT_TRUE(TablesEqual(*served.value(), *expected.value()));
}

TEST_F(ServerTest, ShedAtAdmissionTouchesNoDeviceResources) {
  ServerOptions options;
  options.admission.initial_service_micros = 1'000'000;  // 1s estimate
  Server server(ctx_.get(), options);
  SessionPtr session = server.OpenSession("slo");

  const uint64_t gpu_ops_before = ctx_->metrics().gpu_operators();
  const uint64_t heap_allocs_before =
      ctx_->simulator().device_heap().failed_allocations();

  Result<PlanNodePtr> plan =
      PlanSql("SELECT sum(lo_revenue) AS r FROM lineorder", *db_);
  ASSERT_TRUE(plan.ok());
  QueryStatsPtr stats = MakeQueryStats(plan.value());
  SubmitOptions submit;
  submit.stats = stats;
  // 1ms budget against a 1s estimate: unmeetable, must shed at admission.
  submit.deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(1);
  Result<TablePtr> result = session->Execute(plan.value(), submit);

  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsResourceExhausted());
  EXPECT_EQ(result.status().message().rfind("shed: ", 0), 0u);
  EXPECT_TRUE(stats->shed());
  EXPECT_TRUE(stats->finished());
  // Rejected before execution: no operator ran, no device activity, and all
  // node-level counters stayed untouched.
  EXPECT_EQ(ctx_->metrics().gpu_operators(), gpu_ops_before);
  EXPECT_EQ(ctx_->simulator().device_heap().failed_allocations(),
            heap_allocs_before);
  for (const auto& node : stats->nodes()) {
    EXPECT_EQ(node->run_micros.load(), 0);
  }
  // The flight recorder kept the shed outcome for post-mortems.
  bool found_shed_record = false;
  for (const FlightRecord& record : ctx_->flight_recorder().Snapshot()) {
    for (const auto& [key, value] : record.fields) {
      if (key == "status" && value == "shed") found_shed_record = true;
    }
  }
  EXPECT_TRUE(found_shed_record);
}

TEST_F(ServerTest, QueuedQueryCancelledBeforeDispatchIsCancelled) {
  ServerOptions options;
  options.admission.max_concurrency = 1;
  options.admission.initial_concurrency = 1;
  options.dispatchers = 1;
  options.governor_follows_engine = false;
  Server server(ctx_.get(), options);
  SessionPtr session = server.OpenSession("cancel");

  Result<PlanNodePtr> plan =
      PlanSql("SELECT sum(lo_revenue) AS r FROM lineorder", *db_);
  ASSERT_TRUE(plan.ok());

  CancelToken cancel = CancelToken::Create();
  cancel.RequestCancel();  // dead on arrival: cancelled while queued
  SubmitOptions submit;
  submit.cancel = cancel;
  QueryStatsPtr stats = MakeQueryStats(plan.value());
  submit.stats = stats;
  Result<TablePtr> result = session->Execute(plan.value(), submit);

  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCancelled());
  EXPECT_FALSE(stats->shed());
  EXPECT_TRUE(stats->finished());
  for (const auto& node : stats->nodes()) {
    EXPECT_EQ(node->run_micros.load(), 0);
  }
}

TEST_F(ServerTest, ConcurrentSessionsAllComplete) {
  Server server(ctx_.get());
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5;
  std::atomic<int> ok_count{0};
  std::vector<std::thread> clients;
  clients.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&server, &ok_count, t] {
      SessionPtr session =
          server.OpenSession("tenant-" + std::to_string(t % 2));
      for (int i = 0; i < kPerThread; ++i) {
        Result<TablePtr> result = session->ExecuteSql(
            "SELECT count(lo_revenue) AS n FROM lineorder");
        if (result.ok()) ok_count.fetch_add(1);
      }
    });
  }
  for (std::thread& client : clients) client.join();
  EXPECT_EQ(ok_count.load(), kThreads * kPerThread);
}

TEST_F(ServerTest, TrafficDriverClosedLoopCompletesQueries) {
  Server server(ctx_.get());
  TenantTraffic tenant;
  tenant.name = "closed";
  tenant.sessions = 2;
  tenant.think_time_ms = 1;
  tenant.mix = {{"count", [](const Database& db) -> Result<PlanNodePtr> {
                   return PlanSql(
                       "SELECT count(lo_revenue) AS n FROM lineorder", db);
                 }}};
  TrafficOptions options;
  options.mode = TrafficOptions::Mode::kClosedLoop;
  options.duration_s = 0.5;
  const TrafficResult result = RunTraffic(server, {tenant}, options);
  EXPECT_GT(result.offered, 0u);
  EXPECT_EQ(result.completed, result.offered);
  EXPECT_EQ(result.shed, 0u);
  ASSERT_EQ(result.tenants.size(), 1u);
  EXPECT_GT(result.tenants[0].p50_ms, 0.0);
  EXPECT_FALSE(result.ToJson().empty());
}

TEST_F(ServerTest, LineProtocolOverSocketpair) {
  Server server(ctx_.get());
  LineProtocolServer front_door(&server);

  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  std::thread serving([&front_door, &fds] { front_door.Serve(fds[0]); });

  const int client = fds[1];
  std::string buffered;
  auto read_line = [&]() -> std::string {
    for (;;) {
      const size_t newline = buffered.find('\n');
      if (newline != std::string::npos) {
        std::string line = buffered.substr(0, newline);
        buffered.erase(0, newline + 1);
        return line;
      }
      char chunk[1024];
      const ssize_t n = ::read(client, chunk, sizeof(chunk));
      if (n <= 0) return "";
      buffered.append(chunk, static_cast<size_t>(n));
    }
  };
  auto send = [&](const std::string& line) {
    ASSERT_EQ(::write(client, line.data(), line.size()),
              static_cast<ssize_t>(line.size()));
  };

  EXPECT_EQ(read_line(), "HETDB 1 ready");

  send("HELLO tenant-x\n");
  EXPECT_EQ(read_line(), "OK tenant tenant-x");

  send("QUERY SELECT count(lo_revenue) AS n FROM lineorder\n");
  const std::string header = read_line();
  ASSERT_EQ(header.rfind("ROWS 1 1 1 ", 0), 0u) << header;
  const std::string row = read_line();
  EXPECT_FALSE(row.empty());
  EXPECT_EQ(read_line(), "DONE");

  send("QUERY SELECT nonsense FROM nowhere\n");
  const std::string error = read_line();
  EXPECT_EQ(error.rfind("ERR ", 0), 0u) << error;

  send("BYE\n");
  serving.join();
  ::close(client);
}

TEST_F(ServerTest, LineProtocolOverTcp) {
  Server server(ctx_.get());
  LineProtocolServer front_door(&server);
  Result<uint16_t> port = front_door.Listen(0);
  ASSERT_TRUE(port.ok()) << port.status().ToString();
  EXPECT_GT(port.value(), 0);
  // Lifecycle check: stop with no connections must not hang or leak.
  front_door.Stop();
}

}  // namespace
}  // namespace hetdb
