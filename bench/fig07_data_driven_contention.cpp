// Figure 7: Data-Driven placement alone does NOT solve heap contention —
// with the filter columns cached, data-driven placement happily sends every
// user's operators to the device, and their accumulated heap footprint still
// exceeds capacity.

#include "bench/bench_util.h"

using namespace hetdb;
using namespace hetdb::bench;

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv);
  const double sf = args.quick ? 5 : 10;
  const int total_queries = args.quick ? 24 : 48;

  SsbGeneratorOptions gen;
  args.ApplySeed(gen);
  gen.scale_factor = sf;
  DatabasePtr db = GenerateSsbDatabase(gen);

  Banner("Figure 7",
         "Parallel selection workload (B.2) under compile-time Data-Driven "
         "placement: same degradation as operator-driven placement");

  RunContentionSweep(args, db, {Strategy::kDataDriven, Strategy::kGpuOnly},
                     {ContentionMetric::kWallMillis}, total_queries);
  return 0;
}
