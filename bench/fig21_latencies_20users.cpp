// Figure 21: per-query latency of selected SSB queries with 20 parallel
// users (SF 10), including the GPU-Only + single-query admission-control
// baseline (Wang et al. style). Chopping matches or beats admission control
// on most queries; Data-Driven Chopping accelerates the high-selectivity
// queries most.

#include "bench/bench_util.h"

using namespace hetdb;
using namespace hetdb::bench;

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv);
  const double sf = args.quick ? 5 : 10;
  const int users = args.quick ? 8 : 20;
  const std::vector<std::string> query_names = {"Q1.1", "Q1.3", "Q2.1",
                                                "Q2.3", "Q3.1", "Q3.4",
                                                "Q4.1", "Q4.3"};

  Banner("Figure 21",
         "Per-query latency, " + std::to_string(users) +
             " users, SF " + std::to_string(static_cast<int>(sf)) +
             "; 'Admission' = GPU Only with one query admitted at a time");

  SsbGeneratorOptions gen;
  args.ApplySeed(gen);
  gen.scale_factor = sf;
  DatabasePtr db = GenerateSsbDatabase(gen);

  struct Mode {
    std::string label;
    Strategy strategy;
    int admission_limit;
  };
  const std::vector<Mode> modes = {
      {"GPU Only", Strategy::kGpuOnly, 0},
      {"Admission", Strategy::kGpuOnly, 1},
      {"Chopping", Strategy::kChopping, 0},
      {"DD Chopping", Strategy::kDataDrivenChopping, 0},
  };

  std::vector<WorkloadRunResult> results;
  for (const Mode& mode : modes) {
    WorkloadRunOptions options;
    // Enough samples per query template that the p95 column reflects an
    // actual tail instead of collapsing onto the mean.
    options.repetitions = args.quick ? 2 : 5;
    options.num_users = users;
    options.admission_limit = mode.admission_limit;
    args.ApplySessionKnobs(options);
    results.push_back(RunPoint(PaperConfig(args.time_scale), db, mode.strategy,
                               SsbQueries(), options));
  }

  // Mean and p95 per strategy: the paper's point is precisely that the
  // robust strategies tame the *tail*, not just the average.
  std::vector<std::string> header = {"query"};
  for (const Mode& mode : modes) {
    header.push_back(mode.label + "[ms]");
    header.push_back(mode.label + "_p95[ms]");
  }
  PrintHeader(header);
  for (const std::string& name : query_names) {
    PrintCell(name);
    for (const WorkloadRunResult& result : results) {
      auto it = result.latency_stats_by_query.find(name);
      const bool found = it != result.latency_stats_by_query.end();
      PrintCell(found ? it->second.mean_ms : -1.0);
      PrintCell(found ? it->second.p95_ms : -1.0);
    }
    EndRow();
  }
  if (args.per_query) {
    for (size_t i = 0; i < modes.size(); ++i) {
      std::printf("# %s\n%s\n", modes[i].label.c_str(),
                  results[i].PerQueryToString().c_str());
    }
  }
  return 0;
}
