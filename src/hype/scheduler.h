#ifndef HETDB_HYPE_SCHEDULER_H_
#define HETDB_HYPE_SCHEDULER_H_

#include <cstddef>

#include "hype/cost_model.h"
#include "hype/load_tracker.h"
#include "sim/simulator.h"

namespace hetdb {

/// Load-aware operator placement decision (HyPE's tactical optimizer).
///
/// Given an operator's cost class, input size, and how many of its input
/// bytes would have to cross the bus if it ran on the device, computes the
/// response-time-optimal processor:
///
///   cost(CPU) = est_kernel(CPU) + queued(CPU) + transfer(device-resident in)
///   cost(GPU) = est_kernel(GPU) + queued(GPU) + transfer(host-resident in)
///
/// Because run-time placement happens when all inputs are materialized,
/// `input_bytes` is exact — the paper's key argument for why chopping makes
/// cost models accurate (Section 5.2).
class HypeScheduler {
 public:
  HypeScheduler(CostModel* cost_model, LoadTracker* load_tracker,
                Simulator* simulator)
      : cost_model_(cost_model),
        load_tracker_(load_tracker),
        simulator_(simulator) {}

  HypeScheduler(const HypeScheduler&) = delete;
  HypeScheduler& operator=(const HypeScheduler&) = delete;

  /// Picks the processor with the lower estimated completion time.
  /// `bytes_to_transfer_if_gpu` — input bytes not already device-resident;
  /// `bytes_to_transfer_if_cpu` — device-resident intermediate inputs that a
  /// CPU placement would have to copy back over the bus.
  ProcessorKind ChooseProcessor(OpClass op_class, size_t input_bytes,
                                size_t bytes_to_transfer_if_gpu,
                                size_t bytes_to_transfer_if_cpu = 0) const {
    const double cpu_cost =
        cost_model_->EstimateMicros(ProcessorKind::kCpu, op_class,
                                    input_bytes) +
        load_tracker_->PendingMicros(ProcessorKind::kCpu) +
        simulator_->EstimateTransferMicros(bytes_to_transfer_if_cpu);
    const double gpu_cost =
        cost_model_->EstimateMicros(ProcessorKind::kGpu, op_class,
                                    input_bytes) +
        load_tracker_->PendingMicros(ProcessorKind::kGpu) +
        simulator_->EstimateTransferMicros(bytes_to_transfer_if_gpu);
    return gpu_cost < cpu_cost ? ProcessorKind::kGpu : ProcessorKind::kCpu;
  }

  CostModel* cost_model() const { return cost_model_; }
  LoadTracker* load_tracker() const { return load_tracker_; }

 private:
  CostModel* cost_model_;
  LoadTracker* load_tracker_;
  Simulator* simulator_;
};

}  // namespace hetdb

#endif  // HETDB_HYPE_SCHEDULER_H_
