#ifndef HETDB_SERVER_ADMISSION_H_
#define HETDB_SERVER_ADMISSION_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "engine/chopping_executor.h"
#include "fault/circuit_breaker.h"
#include "operators/plan_node.h"
#include "telemetry/detector.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/metric_registry.h"

namespace hetdb {

/// One tenant of the serving front-end: a name, a weighted-fair-queueing
/// weight, and a bound on its admission queue (overflow is shed).
struct TenantSpec {
  std::string name;
  double weight = 1.0;
  size_t max_queue = 1024;
};

/// Engine-health signals the concurrency governor steers by. Sampled from
/// the thrashing detector and the device circuit breaker — the PR-6/PR-5
/// instruments that already classify the paper's overload failure modes.
struct GovernorSignals {
  ThrashingDetector::State thrash = ThrashingDetector::State::kCalm;
  DeviceCircuitBreaker::State breaker = DeviceCircuitBreaker::State::kClosed;
  /// Brownout ladder level (0 = normal .. 3 = survival). L2+ throttles like
  /// thrashing (halve), L1 like pressure (decrement) — intake slows in step
  /// with the engine-side degradation instead of fighting it.
  int brownout_level = 0;
};

/// A query waiting for admission: the plan, its lifecycle controls (cancel
/// token, deadline, stats — QueryControls is the same struct the executor
/// consumes), and the promise the serving layer settles with the outcome.
struct QueuedQuery {
  std::string tenant;
  PlanNodePtr plan;
  QueryControls controls;
  std::promise<Result<TablePtr>> promise;
  std::chrono::steady_clock::time_point enqueued_at{};
  /// WDRR cost units. 1.0 = fair by query count; a cost model estimate
  /// turns the scheduler into fair-by-work.
  double cost = 1.0;
};
using QueuedQueryPtr = std::unique_ptr<QueuedQuery>;

struct AdmissionOptions {
  /// Concurrency-limit governor bounds (queries in flight, not operators —
  /// the chopping pools bound operators). AIMD between min and max.
  int min_concurrency = 1;
  int max_concurrency = 32;
  int initial_concurrency = 8;
  /// WDRR quantum credited to a tenant per scheduling round, in cost units.
  double wdrr_quantum = 1.0;
  /// Completions between governor adjustments (lower = more reactive).
  int governor_period = 4;
  /// Shed queries whose deadline cannot be met by the queue-wait + service
  /// estimate, instead of letting them time out mid-flight.
  bool shed_unmeetable = true;
  /// EWMA smoothing for the service-time estimate the shed test uses.
  double ewma_alpha = 0.2;
  /// Bootstrap service-time estimate before any query completed.
  double initial_service_micros = 1000.0;
  /// Multiplier on the estimated sojourn in the shed test. Values above 1
  /// shed marginal queries that would finish right at the deadline edge;
  /// under overload those edge admits tend to burn service and then miss
  /// mid-flight, so a margin trades a higher shed rate for higher goodput.
  double slo_safety_factor = 1.0;
};

/// Central admission controller of the serving front-end.
///
/// Three cooperating mechanisms, all under one mutex:
///
///  * **Per-tenant fair queueing** — weighted deficit round-robin over
///    per-tenant FIFO queues: each round a tenant's deficit grows by
///    `quantum * weight` and it may dispatch queries until the deficit is
///    spent, so a tenant flooding the front door cannot starve the others
///    (its surplus just queues and eventually sheds against its own bound).
///  * **Concurrency-limit governor** — an AIMD limit on queries in flight,
///    steered by the thrashing detector and device circuit breaker: calm
///    grows the limit by one, heap pressure (or a half-open breaker) shrinks
///    it by one, thrashing or an open breaker halves it. This closes the
///    paper's loop one level up: the detector that recognizes fig-2/fig-5
///    collapse now throttles the *source* of the load.
///  * **Load shedding** — a query is rejected at admission (promise settled
///    with ResourceExhausted, stats marked with the `shed` outcome) when its
///    tenant queue is full or when its QueryControls deadline cannot be met
///    by the current queue-wait + EWMA service estimate. A shed query never
///    reaches an executor, so it holds no device resources by construction.
///
/// Thread-safe. Dispatcher threads loop on Take()/OnComplete(); any thread
/// may Offer().
class AdmissionController {
 public:
  /// `signals` supplies governor inputs (typically reading the engine's
  /// detector + breaker); when empty the governor sees permanent calm.
  /// `registry`/`recorder` (optional) receive admission metrics and
  /// state-transition / shed records.
  AdmissionController(const AdmissionOptions& options,
                      MetricRegistry* registry = nullptr,
                      FlightRecorder* recorder = nullptr,
                      std::function<GovernorSignals()> signals = {});
  ~AdmissionController();

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// Registers (or re-weights) a tenant. Unknown tenants encountered by
  /// Offer() are auto-registered with weight 1.
  void RegisterTenant(const TenantSpec& spec);

  /// Queues the query, or sheds it (settling its promise and marking its
  /// stats `shed`). Returns true when queued.
  bool Offer(QueuedQueryPtr query);

  /// Blocks until a query is dispatched under the WDRR policy and an
  /// in-flight slot below the governor limit is held, or Stop() was called
  /// (returns nullptr). Queries found cancelled or past-deadline at
  /// dispatch are settled internally and never returned. Call OnComplete()
  /// exactly once per non-null Take().
  QueuedQueryPtr Take();

  /// Releases the in-flight slot of a Take()n query, feeds the service-time
  /// EWMA, and periodically lets the governor adjust the concurrency limit.
  void OnComplete(bool ok, int64_t service_micros);

  /// Wakes all Take() waiters with nullptr and sheds every queued query
  /// ("server shutting down"). Idempotent.
  void Stop();

  int concurrency_limit() const;
  int in_flight() const;
  size_t queued() const;
  double ewma_service_micros() const;
  uint64_t offered() const {
    return offered_.load(std::memory_order_relaxed);
  }
  uint64_t shed_total() const {
    return shed_total_.load(std::memory_order_relaxed);
  }

  /// Sheds `query` outside the controller (the server uses this for
  /// dispatch-time rejections): marks stats shed, settles the promise with
  /// ResourceExhausted("shed: ..."), records telemetry.
  void Shed(QueuedQuery& query, const std::string& reason);

 private:
  struct TenantState {
    TenantSpec spec;
    std::deque<QueuedQueryPtr> queue;
    double deficit = 0;
    bool active = false;   ///< present in the round-robin ring
    bool charged = false;  ///< received its quantum for the current visit
    Counter* admitted = nullptr;
    Counter* shed = nullptr;
    Counter* completed = nullptr;
  };

  TenantState& TenantLocked(const std::string& name);
  void ShedLocked(QueuedQuery& query, const std::string& reason);
  void DeactivateLocked(TenantState* tenant);
  void AdjustLimitLocked();
  /// Queue-wait + service estimate for a query `tenant` offers, micros.
  double EstimatedLatencyLocked(const TenantState& tenant) const;
  void PublishDepthLocked();

  const AdmissionOptions options_;
  MetricRegistry* const registry_;
  FlightRecorder* const recorder_;
  const std::function<GovernorSignals()> signals_;

  mutable std::mutex mutex_;
  std::condition_variable dispatch_cv_;
  std::map<std::string, TenantState> tenants_;
  std::deque<TenantState*> round_robin_;
  size_t queued_ = 0;
  int in_flight_ = 0;
  int limit_ = 0;
  double ewma_service_micros_ = 0;
  int completions_since_adjust_ = 0;
  // Atomic so the brownout controller's admission probe can read them
  // without taking this controller's mutex (writes stay mutex-guarded).
  std::atomic<uint64_t> offered_{0};
  std::atomic<uint64_t> shed_total_{0};
  bool stopped_ = false;

  // Registry-backed (optional) instruments, resolved once.
  Counter* offered_counter_ = nullptr;
  Counter* admitted_counter_ = nullptr;
  Counter* shed_counter_ = nullptr;
  Counter* completed_counter_ = nullptr;
  Counter* failed_counter_ = nullptr;
  Gauge* limit_gauge_ = nullptr;
  Gauge* depth_gauge_ = nullptr;
  Gauge* in_flight_gauge_ = nullptr;
};

}  // namespace hetdb

#endif  // HETDB_SERVER_ADMISSION_H_
