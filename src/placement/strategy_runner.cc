#include "placement/strategy_runner.h"

#include "common/config.h"
#include "common/logging.h"
#include "engine/pipeline_builder.h"
#include "placement/compile_time.h"
#include "placement/runtime.h"

namespace hetdb {

const char* StrategyToString(Strategy strategy) {
  switch (strategy) {
    case Strategy::kCpuOnly:
      return "CPU Only";
    case Strategy::kGpuOnly:
      return "GPU Only";
    case Strategy::kCriticalPath:
      return "Critical Path";
    case Strategy::kDataDriven:
      return "Data-Driven";
    case Strategy::kRunTime:
      return "Run-Time";
    case Strategy::kChopping:
      return "Chopping";
    case Strategy::kDataDrivenChopping:
      return "Data-Driven Chopping";
  }
  return "unknown";
}

bool IsCompileTimeStrategy(Strategy strategy) {
  switch (strategy) {
    case Strategy::kCpuOnly:
    case Strategy::kGpuOnly:
    case Strategy::kCriticalPath:
    case Strategy::kDataDriven:
      return true;
    case Strategy::kRunTime:
    case Strategy::kChopping:
    case Strategy::kDataDrivenChopping:
      return false;
  }
  return true;
}

bool LimitsConcurrency(Strategy strategy) {
  return strategy == Strategy::kChopping ||
         strategy == Strategy::kDataDrivenChopping;
}

StrategyRunner::StrategyRunner(EngineContext* ctx, Strategy strategy)
    : ctx_(ctx), strategy_(strategy) {
  HETDB_CHECK(ctx_ != nullptr);
  switch (strategy_) {
    case Strategy::kRunTime:
      // Run-time placement without concurrency limiting: a pool large enough
      // to never be the bottleneck.
      chopping_ = std::make_unique<ChoppingExecutor>(ctx_, kUnboundedWorkers,
                                                     kUnboundedWorkers);
      placer_ = MakeHypePlacer();
      break;
    case Strategy::kChopping:
      chopping_ = std::make_unique<ChoppingExecutor>(
          ctx_, ctx_->config().cpu_workers, ctx_->config().gpu_workers);
      placer_ = MakeHypePlacer();
      break;
    case Strategy::kDataDrivenChopping:
      chopping_ = std::make_unique<ChoppingExecutor>(
          ctx_, ctx_->config().cpu_workers, ctx_->config().gpu_workers);
      placer_ = MakeDataDrivenPlacer();
      break;
    default:
      break;  // compile-time strategies need no executor state
  }
}

Result<TablePtr> StrategyRunner::RunQuery(const PlanNodePtr& root) {
  return RunQuery(root, nullptr);
}

Result<TablePtr> StrategyRunner::RunQuery(const PlanNodePtr& root,
                                          QueryStatsPtr stats) {
  QueryControls controls;
  controls.stats = std::move(stats);
  return RunQuery(root, std::move(controls));
}

Result<TablePtr> StrategyRunner::RunQuery(const PlanNodePtr& root,
                                          QueryControls controls) {
  // Pipeline fusion (DESIGN.md §11): rewrite fusable chains into
  // FusedPipeline nodes unless disabled. OptimizePlan declines the rewrite
  // when the caller registered stats against a different (unfused) plan —
  // callers that want fused attribution fuse before MakeQueryStats. Under
  // brownout L1+ deep pipelines stop fusing (single-join chains only): a
  // multi-join fused pipeline holds every build table on-device at once,
  // the first footprint to shed under heap pressure.
  const int max_fused_joins =
      ctx_->brownout().AllowMultiJoinFusion() ? -1 : 1;
  PlanNodePtr plan = OptimizePlan(root, controls.stats.get(), max_fused_joins);
  if (chopping_ != nullptr) {
    return chopping_->ExecuteQuery(plan, placer_, std::move(controls));
  }
  // Compile-time path: the operator-at-a-time executor has no mid-flight
  // checkpoints, so honour the controls where we can — before starting.
  if (controls.cancel.cancelled()) {
    return Status::Cancelled("query cancelled by client");
  }
  if (controls.has_deadline() &&
      std::chrono::steady_clock::now() >= controls.deadline) {
    return Status::Cancelled("query deadline exceeded");
  }
  QueryStatsPtr stats = std::move(controls.stats);
  PlacementMap placement;
  switch (strategy_) {
    case Strategy::kCpuOnly:
      placement = PlaceCpuOnly(plan);
      break;
    case Strategy::kGpuOnly:
      placement = PlaceGpuOnly(plan);
      break;
    case Strategy::kCriticalPath:
      placement = PlaceCriticalPath(plan, *ctx_);
      break;
    case Strategy::kDataDriven:
      placement = PlaceDataDriven(plan, *ctx_);
      break;
    default:
      return Status::Internal("runtime strategy without executor");
  }
  QueryExecutor executor(ctx_);
  return executor.Execute(plan, placement, std::move(stats));
}

void StrategyRunner::RefreshDataPlacement() {
  // Shard the candidate set by column affinity: each device's placement job
  // (Algorithm 1) sees only the columns the sharding policy homes on it, so
  // the N caches hold disjoint working sets instead of N hot-set copies.
  std::vector<std::vector<std::pair<std::string, ColumnPtr>>> shards(
      static_cast<size_t>(ctx_->device_count()));
  for (const TablePtr& table : ctx_->database()->tables()) {
    for (const ColumnPtr& column : table->columns()) {
      std::string key = table->QualifiedName(column->name());
      const int home = ctx_->sharding().AffinityDevice(key);
      if (home < 0) continue;  // no live device: nothing to place
      shards[static_cast<size_t>(home)].emplace_back(std::move(key), column);
    }
  }
  for (int d = 0; d < ctx_->device_count(); ++d) {
    if (!ctx_->sharding().IsLive(d)) continue;
    ctx_->cache(d).RunPlacementJob(shards[static_cast<size_t>(d)]);
  }
}

}  // namespace hetdb
