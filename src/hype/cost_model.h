#ifndef HETDB_HYPE_COST_MODEL_H_
#define HETDB_HYPE_COST_MODEL_H_

#include <array>
#include <cstdint>
#include <mutex>

#include "sim/simulator.h"

namespace hetdb {

/// HyPE-style learned cost model (Breß et al., "Efficient co-processor
/// utilization in database query processing").
///
/// For every (processor, operator-class) pair the model maintains an
/// online least-squares fit  cost_us = a + b * input_bytes  over observed
/// executions. Until a pair has seen `kMinObservations` samples the model
/// answers with the simulator's analytical estimate (the hardware-oblivious
/// bootstrap), after which learned estimates take over. This mirrors HyPE's
/// design: no hardware profile is required up front, the engine learns the
/// machine while processing queries.
class CostModel {
 public:
  explicit CostModel(Simulator* simulator) : simulator_(simulator) {}

  CostModel(const CostModel&) = delete;
  CostModel& operator=(const CostModel&) = delete;

  /// Estimated kernel duration in microseconds.
  double EstimateMicros(ProcessorKind processor, OpClass op_class,
                        size_t input_bytes) const;

  /// Records an observed execution for online learning.
  void Observe(ProcessorKind processor, OpClass op_class, size_t input_bytes,
               double micros);

  /// Number of observations for a pair (diagnostics/tests).
  uint64_t ObservationCount(ProcessorKind processor, OpClass op_class) const;

  static constexpr int kMinObservations = 5;

 private:
  struct Fit {
    // Running sums for least squares on (x = bytes, y = micros).
    double n = 0, sum_x = 0, sum_y = 0, sum_xx = 0, sum_xy = 0;

    bool Ready() const { return n >= kMinObservations; }
    /// Slope/intercept of the fitted line; falls back to the mean when the
    /// inputs are degenerate (all x equal).
    void Line(double* a, double* b) const;
  };

  static constexpr int kNumProcessors = 2;
  static constexpr int kNumOpClasses = 6;

  static int Index(ProcessorKind processor, OpClass op_class) {
    return static_cast<int>(processor) * kNumOpClasses +
           static_cast<int>(op_class);
  }

  Simulator* simulator_;
  mutable std::mutex mutex_;
  std::array<Fit, kNumProcessors * kNumOpClasses> fits_;
};

}  // namespace hetdb

#endif  // HETDB_HYPE_COST_MODEL_H_
