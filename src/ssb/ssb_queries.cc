#include "ssb/ssb_queries.h"

#include <utility>

#include "common/logging.h"

namespace hetdb {

namespace {

using Builder = std::function<Result<PlanNodePtr>(const Database&)>;

Result<PlanNodePtr> Scan(const Database& db, const std::string& table,
                         std::vector<std::string> columns) {
  HETDB_ASSIGN_OR_RETURN(TablePtr t, db.GetTable(table));
  return PlanNodePtr(std::make_shared<ScanNode>(t, std::move(columns)));
}

PlanNodePtr Select(PlanNodePtr child, ConjunctiveFilter filter) {
  return std::make_shared<SelectNode>(std::move(child), std::move(filter));
}

PlanNodePtr Join(PlanNodePtr build, PlanNodePtr probe, std::string build_key,
                 std::string probe_key, std::vector<std::string> build_out,
                 std::vector<std::string> probe_out) {
  JoinOutputSpec spec;
  spec.build_columns = std::move(build_out);
  spec.probe_columns = std::move(probe_out);
  return std::make_shared<JoinNode>(std::move(build), std::move(probe),
                                    std::move(build_key), std::move(probe_key),
                                    std::move(spec));
}

PlanNodePtr Agg(PlanNodePtr child, std::vector<std::string> group_by,
                std::vector<AggregateSpec> aggs) {
  return std::make_shared<AggregateNode>(std::move(child), std::move(group_by),
                                         std::move(aggs));
}

PlanNodePtr OrderBy(PlanNodePtr child, std::vector<SortKey> keys) {
  return std::make_shared<SortNode>(std::move(child), std::move(keys));
}

AggregateSpec Sum(std::string input, std::string output) {
  return AggregateSpec{AggregateFn::kSum, std::move(input), std::move(output)};
}

// --- Flight 1: fact-table range selections over one date-dimension join -----

/// Shared shape of Q1.1–Q1.3: filtered date build side, filtered lineorder
/// probe side, revenue = sum(lo_extendedprice * lo_discount).
Result<PlanNodePtr> BuildQ1(const Database& db, ConjunctiveFilter date_filter,
                            ConjunctiveFilter fact_filter,
                            std::vector<std::string> date_columns) {
  HETDB_ASSIGN_OR_RETURN(PlanNodePtr date, Scan(db, "date", date_columns));
  PlanNodePtr date_f = Select(std::move(date), std::move(date_filter));
  HETDB_ASSIGN_OR_RETURN(
      PlanNodePtr lo,
      Scan(db, "lineorder",
           {"lo_orderdate", "lo_quantity", "lo_discount", "lo_extendedprice"}));
  PlanNodePtr lo_f = Select(std::move(lo), std::move(fact_filter));
  PlanNodePtr joined =
      Join(std::move(date_f), std::move(lo_f), "d_datekey", "lo_orderdate",
           /*build_out=*/{}, /*probe_out=*/{"lo_extendedprice", "lo_discount"});
  PlanNodePtr projected = std::make_shared<ProjectNode>(
      std::move(joined), std::vector<std::string>{},
      std::vector<ArithmeticExpr>{ArithmeticExpr::ColumnOp(
          "lo_rev", ArithmeticExpr::Op::kMul, "lo_extendedprice",
          "lo_discount")});
  return Agg(std::move(projected), {}, {Sum("lo_rev", "revenue")});
}

Result<PlanNodePtr> Q11(const Database& db) {
  return BuildQ1(
      db, ConjunctiveFilter::And({Predicate::Eq("d_year", int64_t{1993})}),
      ConjunctiveFilter::And(
          {Predicate::Between("lo_discount", int64_t{1}, int64_t{3}),
           Predicate::Lt("lo_quantity", int64_t{25})}),
      {"d_datekey", "d_year"});
}

Result<PlanNodePtr> Q12(const Database& db) {
  return BuildQ1(
      db,
      ConjunctiveFilter::And({Predicate::Eq("d_yearmonthnum", int64_t{199401})}),
      ConjunctiveFilter::And(
          {Predicate::Between("lo_discount", int64_t{4}, int64_t{6}),
           Predicate::Between("lo_quantity", int64_t{26}, int64_t{35})}),
      {"d_datekey", "d_yearmonthnum"});
}

Result<PlanNodePtr> Q13(const Database& db) {
  return BuildQ1(
      db,
      ConjunctiveFilter::And({Predicate::Eq("d_weeknuminyear", int64_t{6}),
                              Predicate::Eq("d_year", int64_t{1994})}),
      ConjunctiveFilter::And(
          {Predicate::Between("lo_discount", int64_t{5}, int64_t{7}),
           Predicate::Between("lo_quantity", int64_t{26}, int64_t{35})}),
      {"d_datekey", "d_year", "d_weeknuminyear"});
}

// --- Flight 2: part/supplier drill-down --------------------------------------

Result<PlanNodePtr> BuildQ2(const Database& db, Predicate part_predicate,
                            const std::string& part_filter_column,
                            const std::string& supplier_region) {
  HETDB_ASSIGN_OR_RETURN(
      PlanNodePtr part,
      Scan(db, "part",
           part_filter_column == "p_brand1"
               ? std::vector<std::string>{"p_partkey", "p_brand1"}
               : std::vector<std::string>{"p_partkey", part_filter_column,
                                          "p_brand1"}));
  PlanNodePtr part_f =
      Select(std::move(part), ConjunctiveFilter::And({std::move(part_predicate)}));
  HETDB_ASSIGN_OR_RETURN(PlanNodePtr supp,
                         Scan(db, "supplier", {"s_suppkey", "s_region"}));
  PlanNodePtr supp_f = Select(
      std::move(supp),
      ConjunctiveFilter::And({Predicate::Eq("s_region", supplier_region)}));
  HETDB_ASSIGN_OR_RETURN(
      PlanNodePtr lo,
      Scan(db, "lineorder",
           {"lo_partkey", "lo_suppkey", "lo_orderdate", "lo_revenue"}));
  PlanNodePtr j1 =
      Join(std::move(part_f), std::move(lo), "p_partkey", "lo_partkey",
           {"p_brand1"}, {"lo_suppkey", "lo_orderdate", "lo_revenue"});
  PlanNodePtr j2 = Join(std::move(supp_f), std::move(j1), "s_suppkey",
                        "lo_suppkey", {}, {"p_brand1", "lo_orderdate",
                                           "lo_revenue"});
  HETDB_ASSIGN_OR_RETURN(PlanNodePtr date,
                         Scan(db, "date", {"d_datekey", "d_year"}));
  PlanNodePtr j3 = Join(std::move(date), std::move(j2), "d_datekey",
                        "lo_orderdate", {"d_year"}, {"p_brand1", "lo_revenue"});
  PlanNodePtr agg = Agg(std::move(j3), {"d_year", "p_brand1"},
                        {Sum("lo_revenue", "revenue")});
  return OrderBy(std::move(agg), {{"d_year", true}, {"p_brand1", true}});
}

Result<PlanNodePtr> Q21(const Database& db) {
  return BuildQ2(db, Predicate::Eq("p_category", "MFGR#12"), "p_category",
                 "AMERICA");
}

Result<PlanNodePtr> Q22(const Database& db) {
  return BuildQ2(db, Predicate::Between("p_brand1", "MFGR#2221", "MFGR#2228"),
                 "p_brand1", "ASIA");
}

Result<PlanNodePtr> Q23(const Database& db) {
  return BuildQ2(db, Predicate::Eq("p_brand1", "MFGR#2239"), "p_brand1",
                 "EUROPE");
}

// --- Flight 3: customer/supplier geography drill-down ------------------------

Result<PlanNodePtr> BuildQ3(const Database& db,
                            const std::string& geo_column_prefix,
                            ConjunctiveFilter customer_filter,
                            ConjunctiveFilter supplier_filter,
                            ConjunctiveFilter date_filter,
                            std::vector<std::string> date_columns) {
  // geo_column_prefix selects the grouping granularity: "nation" or "city".
  const std::string c_geo = "c_" + geo_column_prefix;
  const std::string s_geo = "s_" + geo_column_prefix;

  HETDB_ASSIGN_OR_RETURN(
      PlanNodePtr cust,
      Scan(db, "customer",
           customer_filter.conjuncts[0].atoms[0].column == c_geo
               ? std::vector<std::string>{"c_custkey", c_geo}
               : std::vector<std::string>{
                     "c_custkey", customer_filter.conjuncts[0].atoms[0].column,
                     c_geo}));
  PlanNodePtr cust_f = Select(std::move(cust), std::move(customer_filter));
  HETDB_ASSIGN_OR_RETURN(
      PlanNodePtr supp,
      Scan(db, "supplier",
           supplier_filter.conjuncts[0].atoms[0].column == s_geo
               ? std::vector<std::string>{"s_suppkey", s_geo}
               : std::vector<std::string>{
                     "s_suppkey", supplier_filter.conjuncts[0].atoms[0].column,
                     s_geo}));
  PlanNodePtr supp_f = Select(std::move(supp), std::move(supplier_filter));
  HETDB_ASSIGN_OR_RETURN(PlanNodePtr date, Scan(db, "date", date_columns));
  PlanNodePtr date_f = Select(std::move(date), std::move(date_filter));

  HETDB_ASSIGN_OR_RETURN(
      PlanNodePtr lo,
      Scan(db, "lineorder",
           {"lo_custkey", "lo_suppkey", "lo_orderdate", "lo_revenue"}));
  PlanNodePtr j1 =
      Join(std::move(cust_f), std::move(lo), "c_custkey", "lo_custkey",
           {c_geo}, {"lo_suppkey", "lo_orderdate", "lo_revenue"});
  PlanNodePtr j2 =
      Join(std::move(supp_f), std::move(j1), "s_suppkey", "lo_suppkey",
           {s_geo}, {c_geo, "lo_orderdate", "lo_revenue"});
  PlanNodePtr j3 =
      Join(std::move(date_f), std::move(j2), "d_datekey", "lo_orderdate",
           {"d_year"}, {c_geo, s_geo, "lo_revenue"});
  PlanNodePtr agg = Agg(std::move(j3), {c_geo, s_geo, "d_year"},
                        {Sum("lo_revenue", "revenue")});
  return OrderBy(std::move(agg), {{"d_year", true}, {"revenue", false}});
}

Result<PlanNodePtr> Q31(const Database& db) {
  return BuildQ3(
      db, "nation",
      ConjunctiveFilter::And({Predicate::Eq("c_region", "ASIA")}),
      ConjunctiveFilter::And({Predicate::Eq("s_region", "ASIA")}),
      ConjunctiveFilter::And(
          {Predicate::Between("d_year", int64_t{1992}, int64_t{1997})}),
      {"d_datekey", "d_year"});
}

Result<PlanNodePtr> Q32(const Database& db) {
  return BuildQ3(
      db, "city",
      ConjunctiveFilter::And({Predicate::Eq("c_nation", "UNITED STATES")}),
      ConjunctiveFilter::And({Predicate::Eq("s_nation", "UNITED STATES")}),
      ConjunctiveFilter::And(
          {Predicate::Between("d_year", int64_t{1992}, int64_t{1997})}),
      {"d_datekey", "d_year"});
}

ConjunctiveFilter CityPairFilter(const std::string& column) {
  ConjunctiveFilter filter;
  filter.conjuncts.push_back(Disjunction{
      Predicate::Eq(column, "UNITED KI1"), Predicate::Eq(column, "UNITED KI5")});
  return filter;
}

Result<PlanNodePtr> Q33(const Database& db) {
  return BuildQ3(
      db, "city", CityPairFilter("c_city"), CityPairFilter("s_city"),
      ConjunctiveFilter::And(
          {Predicate::Between("d_year", int64_t{1992}, int64_t{1997})}),
      {"d_datekey", "d_year"});
}

Result<PlanNodePtr> Q34(const Database& db) {
  return BuildQ3(
      db, "city", CityPairFilter("c_city"), CityPairFilter("s_city"),
      ConjunctiveFilter::And({Predicate::Eq("d_yearmonth", "Dec1997")}),
      {"d_datekey", "d_year", "d_yearmonth"});
}

// --- Flight 4: profit drill-down ---------------------------------------------

Result<PlanNodePtr> BuildQ4(const Database& db,
                            ConjunctiveFilter customer_filter,
                            std::vector<std::string> customer_columns,
                            ConjunctiveFilter supplier_filter,
                            std::vector<std::string> supplier_columns,
                            ConjunctiveFilter part_filter,
                            std::vector<std::string> part_columns,
                            ConjunctiveFilter date_filter,
                            std::vector<std::string> group_by,
                            std::vector<std::string> carry_customer,
                            std::vector<std::string> carry_supplier,
                            std::vector<std::string> carry_part) {
  HETDB_ASSIGN_OR_RETURN(PlanNodePtr cust,
                         Scan(db, "customer", customer_columns));
  PlanNodePtr cust_f = Select(std::move(cust), std::move(customer_filter));
  HETDB_ASSIGN_OR_RETURN(PlanNodePtr supp,
                         Scan(db, "supplier", supplier_columns));
  PlanNodePtr supp_f = Select(std::move(supp), std::move(supplier_filter));
  HETDB_ASSIGN_OR_RETURN(PlanNodePtr part, Scan(db, "part", part_columns));
  PlanNodePtr part_f = Select(std::move(part), std::move(part_filter));
  HETDB_ASSIGN_OR_RETURN(PlanNodePtr date,
                         Scan(db, "date", {"d_datekey", "d_year"}));
  PlanNodePtr date_side = std::move(date);
  if (!date_filter.empty()) {
    date_side = Select(std::move(date_side), std::move(date_filter));
  }

  HETDB_ASSIGN_OR_RETURN(
      PlanNodePtr lo,
      Scan(db, "lineorder",
           {"lo_custkey", "lo_suppkey", "lo_partkey", "lo_orderdate",
            "lo_revenue", "lo_supplycost"}));

  std::vector<std::string> carry = {"lo_suppkey", "lo_partkey", "lo_orderdate",
                                    "lo_revenue", "lo_supplycost"};
  PlanNodePtr j1 = Join(std::move(cust_f), std::move(lo), "c_custkey",
                        "lo_custkey", carry_customer, carry);

  std::vector<std::string> carry2 = carry_customer;
  carry2.insert(carry2.end(), {"lo_partkey", "lo_orderdate", "lo_revenue",
                               "lo_supplycost"});
  PlanNodePtr j2 = Join(std::move(supp_f), std::move(j1), "s_suppkey",
                        "lo_suppkey", carry_supplier, carry2);

  std::vector<std::string> carry3 = carry_customer;
  carry3.insert(carry3.end(), carry_supplier.begin(), carry_supplier.end());
  carry3.insert(carry3.end(), {"lo_orderdate", "lo_revenue", "lo_supplycost"});
  PlanNodePtr j3 = Join(std::move(part_f), std::move(j2), "p_partkey",
                        "lo_partkey", carry_part, carry3);

  std::vector<std::string> carry4 = carry_customer;
  carry4.insert(carry4.end(), carry_supplier.begin(), carry_supplier.end());
  carry4.insert(carry4.end(), carry_part.begin(), carry_part.end());
  carry4.insert(carry4.end(), {"lo_revenue", "lo_supplycost"});
  PlanNodePtr j4 = Join(std::move(date_side), std::move(j3), "d_datekey",
                        "lo_orderdate", {"d_year"}, carry4);

  std::vector<std::string> keep = group_by;
  PlanNodePtr projected = std::make_shared<ProjectNode>(
      std::move(j4), std::move(keep),
      std::vector<ArithmeticExpr>{ArithmeticExpr::ColumnOp(
          "lo_profit", ArithmeticExpr::Op::kSub, "lo_revenue",
          "lo_supplycost")});
  PlanNodePtr agg =
      Agg(std::move(projected), group_by, {Sum("lo_profit", "profit")});
  std::vector<SortKey> order;
  for (const std::string& g : group_by) order.push_back({g, true});
  return OrderBy(std::move(agg), std::move(order));
}

Result<PlanNodePtr> Q41(const Database& db) {
  ConjunctiveFilter mfgr;
  mfgr.conjuncts.push_back(Disjunction{Predicate::Eq("p_mfgr", "MFGR#1"),
                                       Predicate::Eq("p_mfgr", "MFGR#2")});
  return BuildQ4(
      db, ConjunctiveFilter::And({Predicate::Eq("c_region", "AMERICA")}),
      {"c_custkey", "c_region", "c_nation"},
      ConjunctiveFilter::And({Predicate::Eq("s_region", "AMERICA")}),
      {"s_suppkey", "s_region"}, std::move(mfgr), {"p_partkey", "p_mfgr"},
      ConjunctiveFilter{}, {"d_year", "c_nation"}, {"c_nation"}, {}, {});
}

Result<PlanNodePtr> Q42(const Database& db) {
  ConjunctiveFilter mfgr;
  mfgr.conjuncts.push_back(Disjunction{Predicate::Eq("p_mfgr", "MFGR#1"),
                                       Predicate::Eq("p_mfgr", "MFGR#2")});
  ConjunctiveFilter years;
  years.conjuncts.push_back(Disjunction{
      Predicate::Eq("d_year", int64_t{1997}), Predicate::Eq("d_year", int64_t{1998})});
  return BuildQ4(
      db, ConjunctiveFilter::And({Predicate::Eq("c_region", "AMERICA")}),
      {"c_custkey", "c_region"},
      ConjunctiveFilter::And({Predicate::Eq("s_region", "AMERICA")}),
      {"s_suppkey", "s_region", "s_nation"}, std::move(mfgr),
      {"p_partkey", "p_mfgr", "p_category"}, std::move(years),
      {"d_year", "s_nation", "p_category"}, {}, {"s_nation"}, {"p_category"});
}

Result<PlanNodePtr> Q43(const Database& db) {
  ConjunctiveFilter years;
  years.conjuncts.push_back(Disjunction{
      Predicate::Eq("d_year", int64_t{1997}), Predicate::Eq("d_year", int64_t{1998})});
  return BuildQ4(
      db, ConjunctiveFilter::And({Predicate::Eq("c_region", "AMERICA")}),
      {"c_custkey", "c_region"},
      ConjunctiveFilter::And({Predicate::Eq("s_nation", "UNITED STATES")}),
      {"s_suppkey", "s_nation", "s_city"},
      ConjunctiveFilter::And({Predicate::Eq("p_category", "MFGR#14")}),
      {"p_partkey", "p_category", "p_brand1"}, std::move(years),
      {"d_year", "s_city", "p_brand1"}, {}, {"s_city"}, {"p_brand1"});
}

}  // namespace

std::vector<NamedQuery> SsbQueries() {
  return {
      {"Q1.1", Q11}, {"Q1.2", Q12}, {"Q1.3", Q13}, {"Q2.1", Q21},
      {"Q2.2", Q22}, {"Q2.3", Q23}, {"Q3.1", Q31}, {"Q3.2", Q32},
      {"Q3.3", Q33}, {"Q3.4", Q34}, {"Q4.1", Q41}, {"Q4.2", Q42},
      {"Q4.3", Q43},
  };
}

Result<NamedQuery> SsbQueryByName(const std::string& name) {
  for (NamedQuery& query : SsbQueries()) {
    if (query.name == name) return query;
  }
  return Status::NotFound("no SSB query named '" + name + "'");
}

}  // namespace hetdb
