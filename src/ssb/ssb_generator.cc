#include "ssb/ssb_generator.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"

namespace hetdb {

namespace {

// TPC-H / SSB geography: 5 regions x 5 nations x 10 cities.
const char* const kRegions[5] = {"AFRICA", "AMERICA", "ASIA", "EUROPE",
                                 "MIDDLE EAST"};

struct NationInfo {
  const char* name;
  int region;  // index into kRegions
};

const NationInfo kNations[25] = {
    {"ALGERIA", 0},        {"ARGENTINA", 1}, {"BRAZIL", 1},
    {"CANADA", 1},         {"CHINA", 2},     {"EGYPT", 4},
    {"ETHIOPIA", 0},       {"FRANCE", 3},    {"GERMANY", 3},
    {"INDIA", 2},          {"INDONESIA", 2}, {"IRAN", 4},
    {"IRAQ", 4},           {"JAPAN", 2},     {"JORDAN", 4},
    {"KENYA", 0},          {"MOROCCO", 0},   {"MOZAMBIQUE", 0},
    {"PERU", 1},           {"ROMANIA", 3},   {"RUSSIA", 3},
    {"SAUDI ARABIA", 4},   {"UNITED KINGDOM", 3},
    {"UNITED STATES", 1},  {"VIETNAM", 2},
};

const char* const kShipModes[7] = {"AIR",     "FOB",  "MAIL", "RAIL",
                                   "REG AIR", "SHIP", "TRUCK"};
const char* const kOrderPriorities[5] = {"1-URGENT", "2-HIGH", "3-MEDIUM",
                                         "4-NOT SPECIFIED", "5-LOW"};
const char* const kMktSegments[5] = {"AUTOMOBILE", "BUILDING", "FURNITURE",
                                     "HOUSEHOLD", "MACHINERY"};
const char* const kMonthNames[12] = {"Jan", "Feb", "Mar", "Apr", "May", "Jun",
                                     "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"};

/// SSB city: the nation name truncated/padded to 9 characters plus one
/// digit, e.g. "UNITED KI1".
std::string CityName(int nation, int digit) {
  std::string name = kNations[nation].name;
  name.resize(9, ' ');
  name += static_cast<char>('0' + digit);
  return name;
}

std::vector<std::string> SortedUnique(std::vector<std::string> values) {
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  return values;
}

bool IsLeapYear(int year) {
  return (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
}

int DaysInMonth(int year, int month) {
  static const int kDays[12] = {31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31};
  if (month == 2 && IsLeapYear(year)) return 29;
  return kDays[month - 1];
}

/// Adds a dictionary-encoded string column where codes are produced by `fn`.
template <typename CodeFn>
Status AddStringColumn(Table* table, const std::string& name,
                       std::vector<std::string> sorted_dictionary, int64_t rows,
                       CodeFn fn) {
  auto column = StringColumn::FromDictionary(name, std::move(sorted_dictionary));
  column->Reserve(rows);
  for (int64_t i = 0; i < rows; ++i) column->AppendCode(fn(i));
  return table->AddColumn(std::move(column));
}

}  // namespace

const char* const kSsbSelectionColumns[8] = {
    "lo_quantity",      "lo_discount", "lo_shippriority", "lo_extendedprice",
    "lo_ordtotalprice", "lo_revenue",  "lo_supplycost",   "lo_tax"};

SsbSizes ComputeSsbSizes(const SsbGeneratorOptions& options) {
  const double sf = std::max(options.scale_factor, 0.01);
  SsbSizes sizes;
  sizes.lineorder =
      static_cast<int64_t>(sf * options.lineorder_rows_per_sf);
  // Paper-scale SSB would be customer 30k*SF and supplier 2k*SF; dividing
  // those by our 1/100 data scale would leave fewer than one supplier per
  // city, emptying the flight-3/4 query results. Dimensions are therefore
  // scaled by only 1/10 — they are small either way (the working set is
  // dominated by lineorder), and per-city cardinalities stay realistic.
  sizes.customer = std::max<int64_t>(300, static_cast<int64_t>(sf * 3000));
  sizes.supplier = std::max<int64_t>(100, static_cast<int64_t>(sf * 1000));
  const double log_sf = sf > 1 ? std::floor(std::log2(sf)) : 0;
  sizes.part = static_cast<int64_t>(2000 * (1 + log_sf));
  sizes.date = 0;
  for (int year = 1992; year <= 1998; ++year) {
    sizes.date += IsLeapYear(year) ? 366 : 365;
  }
  return sizes;
}

DatabasePtr GenerateSsbDatabase(const SsbGeneratorOptions& options) {
  const SsbSizes sizes = ComputeSsbSizes(options);
  auto database = std::make_shared<Database>();
  Rng rng(options.seed);

  // --- Dictionaries ----------------------------------------------------------
  std::vector<std::string> region_dict(kRegions, kRegions + 5);
  std::vector<std::string> nation_dict;
  for (const NationInfo& nation : kNations) nation_dict.push_back(nation.name);
  // kNations is sorted by name; region/nation dicts are order-preserving.
  std::vector<std::string> city_dict;
  for (int nation = 0; nation < 25; ++nation) {
    for (int digit = 0; digit < 10; ++digit) {
      city_dict.push_back(CityName(nation, digit));
    }
  }
  city_dict = SortedUnique(std::move(city_dict));
  HETDB_CHECK(city_dict.size() == 250);

  std::vector<std::string> mfgr_dict, category_dict, brand_dict;
  for (int m = 1; m <= 5; ++m) {
    mfgr_dict.push_back("MFGR#" + std::to_string(m));
    for (int c = 1; c <= 5; ++c) {
      category_dict.push_back("MFGR#" + std::to_string(m) + std::to_string(c));
      for (int b = 1; b <= 40; ++b) {
        brand_dict.push_back("MFGR#" + std::to_string(m) + std::to_string(c) +
                             std::to_string(b));
      }
    }
  }
  mfgr_dict = SortedUnique(std::move(mfgr_dict));
  category_dict = SortedUnique(std::move(category_dict));
  brand_dict = SortedUnique(std::move(brand_dict));

  // Map (mfgr 0..4, cat 0..4, brand 0..39) to the sorted brand code.
  auto brand_code = [&](int m, int c, int b) {
    const std::string name = "MFGR#" + std::to_string(m + 1) +
                             std::to_string(c + 1) + std::to_string(b + 1);
    auto it = std::lower_bound(brand_dict.begin(), brand_dict.end(), name);
    return static_cast<int32_t>(it - brand_dict.begin());
  };
  auto category_code = [&](int m, int c) {
    const std::string name =
        "MFGR#" + std::to_string(m + 1) + std::to_string(c + 1);
    auto it = std::lower_bound(category_dict.begin(), category_dict.end(), name);
    return static_cast<int32_t>(it - category_dict.begin());
  };

  // City index (nation * 10 + digit) -> sorted city code, and geography maps.
  std::vector<int32_t> city_code(250);
  std::vector<int32_t> city_to_nation_code(250);
  std::vector<int32_t> city_to_region_code(250);
  for (int nation = 0; nation < 25; ++nation) {
    for (int digit = 0; digit < 10; ++digit) {
      const std::string name = CityName(nation, digit);
      auto it = std::lower_bound(city_dict.begin(), city_dict.end(), name);
      const int idx = nation * 10 + digit;
      city_code[idx] = static_cast<int32_t>(it - city_dict.begin());
      city_to_nation_code[idx] = static_cast<int32_t>(nation);
      city_to_region_code[idx] =
          static_cast<int32_t>(kNations[nation].region);
    }
  }

  // --- date ------------------------------------------------------------------
  {
    auto table = std::make_shared<Table>("date");
    std::vector<int32_t> datekey, year, yearmonthnum, weeknuminyear, month;
    std::vector<int32_t> yearmonth_codes;
    std::vector<std::string> yearmonth_dict;
    for (int y = 1992; y <= 1998; ++y) {
      for (int m = 1; m <= 12; ++m) {
        yearmonth_dict.push_back(std::string(kMonthNames[m - 1]) +
                                 std::to_string(y));
      }
    }
    yearmonth_dict = SortedUnique(std::move(yearmonth_dict));
    auto yearmonth_code = [&](int y, int m) {
      const std::string name =
          std::string(kMonthNames[m - 1]) + std::to_string(y);
      auto it =
          std::lower_bound(yearmonth_dict.begin(), yearmonth_dict.end(), name);
      return static_cast<int32_t>(it - yearmonth_dict.begin());
    };
    for (int y = 1992; y <= 1998; ++y) {
      int day_of_year = 0;
      for (int m = 1; m <= 12; ++m) {
        for (int d = 1; d <= DaysInMonth(y, m); ++d) {
          ++day_of_year;
          datekey.push_back(y * 10000 + m * 100 + d);
          year.push_back(y);
          yearmonthnum.push_back(y * 100 + m);
          weeknuminyear.push_back((day_of_year - 1) / 7 + 1);
          month.push_back(m);
          yearmonth_codes.push_back(yearmonth_code(y, m));
        }
      }
    }
    HETDB_CHECK(static_cast<int64_t>(datekey.size()) == sizes.date);
    HETDB_CHECK_OK(table->AddColumn(
        std::make_shared<Int32Column>("d_datekey", std::move(datekey))));
    HETDB_CHECK_OK(table->AddColumn(
        std::make_shared<Int32Column>("d_year", std::move(year))));
    HETDB_CHECK_OK(table->AddColumn(std::make_shared<Int32Column>(
        "d_yearmonthnum", std::move(yearmonthnum))));
    HETDB_CHECK_OK(table->AddColumn(std::make_shared<Int32Column>(
        "d_weeknuminyear", std::move(weeknuminyear))));
    HETDB_CHECK_OK(table->AddColumn(
        std::make_shared<Int32Column>("d_month", std::move(month))));
    auto ym = StringColumn::FromDictionary("d_yearmonth", yearmonth_dict);
    for (int32_t code : yearmonth_codes) ym->AppendCode(code);
    HETDB_CHECK_OK(table->AddColumn(std::move(ym)));
    HETDB_CHECK_OK(database->AddTable(std::move(table)));
  }

  // --- customer ----------------------------------------------------------------
  {
    const int64_t rows = sizes.customer;
    auto table = std::make_shared<Table>("customer");
    std::vector<int32_t> custkey(rows);
    std::vector<int32_t> city_idx(rows);
    for (int64_t i = 0; i < rows; ++i) {
      custkey[i] = static_cast<int32_t>(i + 1);
      city_idx[i] = static_cast<int32_t>(rng.Uniform(0, 249));
    }
    HETDB_CHECK_OK(table->AddColumn(
        std::make_shared<Int32Column>("c_custkey", std::move(custkey))));
    HETDB_CHECK_OK(AddStringColumn(table.get(), "c_city", city_dict, rows,
                                   [&](int64_t i) { return city_code[city_idx[i]]; }));
    HETDB_CHECK_OK(AddStringColumn(
        table.get(), "c_nation", nation_dict, rows,
        [&](int64_t i) { return city_to_nation_code[city_idx[i]]; }));
    HETDB_CHECK_OK(AddStringColumn(
        table.get(), "c_region", region_dict, rows,
        [&](int64_t i) { return city_to_region_code[city_idx[i]]; }));
    std::vector<std::string> segment_dict(kMktSegments, kMktSegments + 5);
    HETDB_CHECK_OK(AddStringColumn(
        table.get(), "c_mktsegment", segment_dict, rows,
        [&](int64_t) { return static_cast<int32_t>(rng.Uniform(0, 4)); }));
    HETDB_CHECK_OK(database->AddTable(std::move(table)));
  }

  // --- supplier ----------------------------------------------------------------
  {
    const int64_t rows = sizes.supplier;
    auto table = std::make_shared<Table>("supplier");
    std::vector<int32_t> suppkey(rows);
    std::vector<int32_t> city_idx(rows);
    for (int64_t i = 0; i < rows; ++i) {
      suppkey[i] = static_cast<int32_t>(i + 1);
      city_idx[i] = static_cast<int32_t>(rng.Uniform(0, 249));
    }
    HETDB_CHECK_OK(table->AddColumn(
        std::make_shared<Int32Column>("s_suppkey", std::move(suppkey))));
    HETDB_CHECK_OK(AddStringColumn(table.get(), "s_city", city_dict, rows,
                                   [&](int64_t i) { return city_code[city_idx[i]]; }));
    HETDB_CHECK_OK(AddStringColumn(
        table.get(), "s_nation", nation_dict, rows,
        [&](int64_t i) { return city_to_nation_code[city_idx[i]]; }));
    HETDB_CHECK_OK(AddStringColumn(
        table.get(), "s_region", region_dict, rows,
        [&](int64_t i) { return city_to_region_code[city_idx[i]]; }));
    HETDB_CHECK_OK(database->AddTable(std::move(table)));
  }

  // --- part --------------------------------------------------------------------
  {
    const int64_t rows = sizes.part;
    auto table = std::make_shared<Table>("part");
    std::vector<int32_t> partkey(rows), size(rows);
    std::vector<int32_t> mfgr_idx(rows), cat_idx(rows), brand_idx(rows);
    for (int64_t i = 0; i < rows; ++i) {
      partkey[i] = static_cast<int32_t>(i + 1);
      mfgr_idx[i] = static_cast<int32_t>(rng.Uniform(0, 4));
      cat_idx[i] = static_cast<int32_t>(rng.Uniform(0, 4));
      brand_idx[i] = static_cast<int32_t>(rng.Uniform(0, 39));
      size[i] = static_cast<int32_t>(rng.Uniform(1, 50));
    }
    HETDB_CHECK_OK(table->AddColumn(
        std::make_shared<Int32Column>("p_partkey", std::move(partkey))));
    HETDB_CHECK_OK(AddStringColumn(
        table.get(), "p_mfgr", mfgr_dict, rows, [&](int64_t i) {
          return static_cast<int32_t>(mfgr_idx[i]);  // mfgr dict is sorted 1..5
        }));
    HETDB_CHECK_OK(AddStringColumn(
        table.get(), "p_category", category_dict, rows,
        [&](int64_t i) { return category_code(mfgr_idx[i], cat_idx[i]); }));
    HETDB_CHECK_OK(AddStringColumn(
        table.get(), "p_brand1", brand_dict, rows, [&](int64_t i) {
          return brand_code(mfgr_idx[i], cat_idx[i], brand_idx[i]);
        }));
    HETDB_CHECK_OK(table->AddColumn(
        std::make_shared<Int32Column>("p_size", std::move(size))));
    HETDB_CHECK_OK(database->AddTable(std::move(table)));
  }

  // --- lineorder -----------------------------------------------------------------
  {
    const int64_t rows = sizes.lineorder;
    auto table = std::make_shared<Table>("lineorder");
    Result<TablePtr> date_table = database->GetTable("date");
    HETDB_CHECK(date_table.ok());
    const auto& datekeys = static_cast<const Int32Column&>(
                               *date_table.value()->columns()[0])
                               .values();

    std::vector<int32_t> orderkey(rows), linenumber(rows), custkey(rows),
        partkey(rows), suppkey(rows), orderdate(rows), quantity(rows),
        extendedprice(rows), ordtotalprice(rows), discount(rows),
        revenue(rows), supplycost(rows), tax(rows), commitdate(rows),
        shippriority(rows);
    std::vector<int32_t> shipmode_codes(rows);

    for (int64_t i = 0; i < rows; ++i) {
      orderkey[i] = static_cast<int32_t>(i / 7 + 1);
      linenumber[i] = static_cast<int32_t>(i % 7 + 1);
      custkey[i] = static_cast<int32_t>(rng.Uniform(1, sizes.customer));
      partkey[i] = static_cast<int32_t>(rng.Uniform(1, sizes.part));
      suppkey[i] = static_cast<int32_t>(rng.Uniform(1, sizes.supplier));
      orderdate[i] = datekeys[rng.Uniform(0, sizes.date - 1)];
      commitdate[i] = datekeys[rng.Uniform(0, sizes.date - 1)];
      quantity[i] = static_cast<int32_t>(rng.Uniform(1, 50));
      discount[i] = static_cast<int32_t>(rng.Uniform(0, 10));
      tax[i] = static_cast<int32_t>(rng.Uniform(0, 8));
      const int32_t price = static_cast<int32_t>(rng.Uniform(90000, 110000));
      extendedprice[i] = price * quantity[i] / 10;
      ordtotalprice[i] = static_cast<int32_t>(rng.Uniform(1000, 500000));
      revenue[i] = extendedprice[i] * (100 - discount[i]) / 100;
      supplycost[i] = price * 6 / 10;
      // Constant, as in TPC-H: the B.1 micro-workload predicate
      // "lo_shippriority > 0" then selects no rows, like the other seven
      // Listing-1 predicates (the workload measures scans, not results).
      shippriority[i] = 0;
      shipmode_codes[i] = static_cast<int32_t>(rng.Uniform(0, 6));
    }

    auto add32 = [&](const char* name, std::vector<int32_t> values) {
      HETDB_CHECK_OK(table->AddColumn(
          std::make_shared<Int32Column>(name, std::move(values))));
    };
    add32("lo_orderkey", std::move(orderkey));
    add32("lo_linenumber", std::move(linenumber));
    add32("lo_custkey", std::move(custkey));
    add32("lo_partkey", std::move(partkey));
    add32("lo_suppkey", std::move(suppkey));
    add32("lo_orderdate", std::move(orderdate));
    add32("lo_quantity", std::move(quantity));
    add32("lo_extendedprice", std::move(extendedprice));
    add32("lo_ordtotalprice", std::move(ordtotalprice));
    add32("lo_discount", std::move(discount));
    add32("lo_revenue", std::move(revenue));
    add32("lo_supplycost", std::move(supplycost));
    add32("lo_tax", std::move(tax));
    add32("lo_commitdate", std::move(commitdate));
    add32("lo_shippriority", std::move(shippriority));
    std::vector<std::string> shipmode_dict(kShipModes, kShipModes + 7);
    HETDB_CHECK_OK(AddStringColumn(table.get(), "lo_shipmode", shipmode_dict,
                                   rows,
                                   [&](int64_t i) { return shipmode_codes[i]; }));
    HETDB_CHECK_OK(database->AddTable(std::move(table)));
  }

  return database;
}

}  // namespace hetdb
