# Empty dependencies file for fig14_scale_ssb.
# This may be replaced when dependencies are built.
