#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <random>
#include <thread>
#include <vector>

#include "telemetry/exporters.h"
#include "telemetry/histogram.h"
#include "telemetry/metric_registry.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace_recorder.h"

namespace hetdb {
namespace {

// ---------------------------------------------------------------------------
// Minimal JSON validator: full recursive-descent parse (structure only), so
// the Chrome-trace golden-shape test genuinely checks "valid JSON", not just
// substring presence.
class JsonValidator {
 public:
  explicit JsonValidator(const std::string& text) : text_(text) {}

  bool Validate() {
    SkipSpace();
    if (!ParseValue()) return false;
    SkipSpace();
    return position_ == text_.size();
  }

 private:
  bool ParseValue() {
    if (position_ >= text_.size()) return false;
    switch (text_[position_]) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"':
        return ParseString();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return ParseNumber();
    }
  }

  bool ParseObject() {
    ++position_;  // '{'
    SkipSpace();
    if (Peek() == '}') {
      ++position_;
      return true;
    }
    while (true) {
      SkipSpace();
      if (!ParseString()) return false;
      SkipSpace();
      if (Peek() != ':') return false;
      ++position_;
      SkipSpace();
      if (!ParseValue()) return false;
      SkipSpace();
      if (Peek() == ',') {
        ++position_;
        continue;
      }
      if (Peek() == '}') {
        ++position_;
        return true;
      }
      return false;
    }
  }

  bool ParseArray() {
    ++position_;  // '['
    SkipSpace();
    if (Peek() == ']') {
      ++position_;
      return true;
    }
    while (true) {
      SkipSpace();
      if (!ParseValue()) return false;
      SkipSpace();
      if (Peek() == ',') {
        ++position_;
        continue;
      }
      if (Peek() == ']') {
        ++position_;
        return true;
      }
      return false;
    }
  }

  bool ParseString() {
    if (Peek() != '"') return false;
    ++position_;
    while (position_ < text_.size()) {
      const char c = text_[position_];
      if (c == '\\') {
        position_ += 2;
        continue;
      }
      if (c == '"') {
        ++position_;
        return true;
      }
      ++position_;
    }
    return false;
  }

  bool ParseNumber() {
    const size_t start = position_;
    if (Peek() == '-') ++position_;
    while (position_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[position_])) ||
            text_[position_] == '.' || text_[position_] == 'e' ||
            text_[position_] == 'E' || text_[position_] == '+' ||
            text_[position_] == '-')) {
      ++position_;
    }
    return position_ > start;
  }

  bool Literal(const char* word) {
    const size_t length = std::string(word).size();
    if (text_.compare(position_, length, word) != 0) return false;
    position_ += length;
    return true;
  }

  char Peek() const { return position_ < text_.size() ? text_[position_] : 0; }
  void SkipSpace() {
    while (position_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[position_]))) {
      ++position_;
    }
  }

  const std::string& text_;
  size_t position_ = 0;
};

// Isolates each test from spans other tests (or the process) recorded.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TraceRecorder::Global().Clear();
    TraceRecorder::Global().SetEnabled(true);
  }
  void TearDown() override {
    TraceRecorder::Global().SetEnabled(false);
    TraceRecorder::Global().Clear();
  }
};

// --- Histogram --------------------------------------------------------------

TEST(HistogramTest, SmallValuesAreExact) {
  Histogram histogram;
  for (int value = 0; value < 16; ++value) histogram.Record(value);
  EXPECT_EQ(histogram.count(), 16u);
  EXPECT_EQ(histogram.min(), 0);
  EXPECT_EQ(histogram.max(), 15);
  EXPECT_EQ(histogram.sum(), 120);
  // Below kSubBuckets every value has its own bucket: percentiles are exact.
  EXPECT_EQ(histogram.Percentile(50), 7);
  EXPECT_EQ(histogram.Percentile(100), 15);
}

TEST(HistogramTest, UniformDistributionPercentiles) {
  Histogram histogram;
  for (int value = 1; value <= 10000; ++value) histogram.Record(value);
  EXPECT_EQ(histogram.count(), 10000u);
  EXPECT_DOUBLE_EQ(histogram.mean(), 5000.5);
  // Log-linear buckets with 16 sub-buckets per octave: <= ~6% quantization.
  EXPECT_NEAR(histogram.Percentile(50), 5000, 5000 * 0.07);
  EXPECT_NEAR(histogram.Percentile(95), 9500, 9500 * 0.07);
  EXPECT_NEAR(histogram.Percentile(99), 9900, 9900 * 0.07);
  EXPECT_EQ(histogram.max(), 10000);
  // p100 clamps to the exact max.
  EXPECT_EQ(histogram.Percentile(100), 10000);
}

TEST(HistogramTest, ConstantDistribution) {
  Histogram histogram;
  for (int i = 0; i < 1000; ++i) histogram.Record(777);
  EXPECT_EQ(histogram.min(), 777);
  EXPECT_EQ(histogram.max(), 777);
  for (const double p : {1.0, 50.0, 95.0, 99.0, 100.0}) {
    // Every sample in one bucket, clamped to [min, max]: exact.
    EXPECT_EQ(histogram.Percentile(p), 777) << "p=" << p;
  }
}

TEST(HistogramTest, SkewedTailDistribution) {
  // 99 fast samples at ~1ms and one 100x outlier: p50 stays at the body,
  // p99.5+/max capture the tail (the Figure 21 shape).
  Histogram histogram;
  for (int i = 0; i < 99; ++i) histogram.Record(1000);
  histogram.Record(100000);
  EXPECT_NEAR(histogram.Percentile(50), 1000, 1000 * 0.07);
  EXPECT_EQ(histogram.max(), 100000);
  EXPECT_NEAR(histogram.Percentile(99), 1000, 1000 * 0.07);
  EXPECT_EQ(histogram.Percentile(100), 100000);
}

TEST(HistogramTest, NegativeClampsToZeroAndResetClears) {
  Histogram histogram;
  histogram.Record(-5);
  EXPECT_EQ(histogram.count(), 1u);
  EXPECT_EQ(histogram.min(), 0);
  histogram.Reset();
  EXPECT_EQ(histogram.count(), 0u);
  EXPECT_EQ(histogram.min(), 0);
  EXPECT_EQ(histogram.max(), 0);
  EXPECT_EQ(histogram.Percentile(50), 0);
}

TEST(HistogramTest, BucketBoundsAreContiguous) {
  for (int index = 0; index < Histogram::kBucketCount - 1; ++index) {
    EXPECT_EQ(Histogram::BucketUpperBound(index),
              Histogram::BucketLowerBound(index + 1))
        << "at index " << index;
  }
  // Round-trip: every bucket's lower bound maps back to that bucket.
  for (int index = 0; index < 600; ++index) {
    EXPECT_EQ(Histogram::BucketIndex(Histogram::BucketLowerBound(index)),
              index);
  }
}

TEST(HistogramTest, ConcurrentRecordingLosesNothing) {
  Histogram histogram;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram, t] {
      std::mt19937 rng(t);
      for (int i = 0; i < kPerThread; ++i) {
        histogram.Record(rng() % 100000);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(histogram.count(), uint64_t{kThreads} * kPerThread);
  uint64_t reconstructed = 0;
  for (const double p : {50.0, 95.0, 99.0}) {
    EXPECT_GT(histogram.Percentile(p), 0);
  }
  (void)reconstructed;
}

// --- MetricRegistry ---------------------------------------------------------

TEST(MetricRegistryTest, SameNameReturnsSameInstrument) {
  MetricRegistry registry;
  Counter& a = registry.GetCounter("x");
  Counter& b = registry.GetCounter("x");
  EXPECT_EQ(&a, &b);
  a.Increment(3);
  EXPECT_EQ(b.value(), 3);
  Histogram& h1 = registry.GetHistogram("h");
  Histogram& h2 = registry.GetHistogram("h");
  EXPECT_EQ(&h1, &h2);
}

TEST(MetricRegistryTest, ResetZeroesButKeepsInstruments) {
  MetricRegistry registry;
  Counter& counter = registry.GetCounter("c");
  Gauge& gauge = registry.GetGauge("g");
  Histogram& histogram = registry.GetHistogram("h");
  counter.Increment(7);
  gauge.Set(42);
  histogram.Record(100);
  registry.Reset();
  EXPECT_EQ(counter.value(), 0);
  EXPECT_EQ(gauge.value(), 0);
  EXPECT_EQ(histogram.count(), 0u);
  // Cached references stay valid and usable after Reset.
  counter.Increment();
  EXPECT_EQ(registry.GetCounter("c").value(), 1);
}

TEST(MetricRegistryTest, SnapshotsAreSortedByName) {
  MetricRegistry registry;
  registry.GetCounter("b").Increment();
  registry.GetCounter("a").Increment();
  const auto values = registry.CounterValues();
  ASSERT_EQ(values.size(), 2u);
  EXPECT_EQ(values[0].first, "a");
  EXPECT_EQ(values[1].first, "b");
}

TEST(TelemetryTest, WorkloadCountersRoundTrip) {
  Telemetry telemetry;
  telemetry.RecordOperator(/*on_gpu=*/true);
  telemetry.RecordOperator(/*on_gpu=*/false);
  telemetry.RecordOperator(/*on_gpu=*/false);
  telemetry.RecordGpuAbort(1500);
  telemetry.RecordQueryDone();
  EXPECT_EQ(telemetry.gpu_operators(), 1u);
  EXPECT_EQ(telemetry.cpu_operators(), 2u);
  EXPECT_EQ(telemetry.gpu_operator_aborts(), 1u);
  EXPECT_EQ(telemetry.wasted_micros(), 1500);
  EXPECT_EQ(telemetry.queries_completed(), 1u);
  // The counters are ordinary registry metrics, visible to exporters.
  EXPECT_EQ(telemetry.registry().GetCounter("engine.gpu_operators").value(), 1);
  telemetry.Reset();
  EXPECT_EQ(telemetry.gpu_operators(), 0u);
  EXPECT_EQ(telemetry.wasted_micros(), 0);
}

TEST(TelemetryTest, QueryIdsAreUnique) {
  const uint64_t first = Telemetry::NextQueryId();
  const uint64_t second = Telemetry::NextQueryId();
  EXPECT_LT(first, second);
}

// --- TraceRecorder / TraceSpan ----------------------------------------------

TEST_F(TraceTest, DisabledSpanRecordsNothing) {
  TraceRecorder::Global().SetEnabled(false);
  {
    TraceSpan span;
    if (TraceRecorder::enabled()) span.Begin("never", "test");
    EXPECT_FALSE(span.active());
  }
  EXPECT_TRUE(TraceRecorder::Global().Snapshot().empty());
}

TEST_F(TraceTest, SpanNestingAndOrdering) {
  {
    TraceSpan outer("outer", "test");
    {
      TraceSpan inner("inner", "test");
    }
  }
  const std::vector<TraceEvent> events = TraceRecorder::Global().Snapshot();
  ASSERT_EQ(events.size(), 2u);
  // Snapshot is ordered by start time.
  EXPECT_LE(events[0].ts_micros, events[1].ts_micros);
  const TraceEvent& outer =
      events[0].name == "outer" ? events[0] : events[1];
  const TraceEvent& inner =
      events[0].name == "inner" ? events[0] : events[1];
  ASSERT_EQ(outer.name, "outer");
  ASSERT_EQ(inner.name, "inner");
  // The inner span nests inside the outer on the timeline.
  EXPECT_GE(inner.ts_micros, outer.ts_micros);
  EXPECT_LE(inner.ts_micros + inner.dur_micros,
            outer.ts_micros + outer.dur_micros);
  // Same thread, same recorder-assigned tid.
  EXPECT_EQ(outer.tid, inner.tid);
}

TEST_F(TraceTest, SpanCarriesIdsAndArgs) {
  {
    TraceSpan span;
    span.Begin("op", "operator");
    span.SetQuery(7);
    span.SetNode(100, 50);
    span.AddArg("processor", "GPU");
    span.AddArg("bytes", int64_t{4096});
  }
  const std::vector<TraceEvent> events = TraceRecorder::Global().Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].query_id, 7u);
  EXPECT_EQ(events[0].node_id, 100u);
  EXPECT_EQ(events[0].parent_id, 50u);
  ASSERT_EQ(events[0].args.size(), 2u);
  EXPECT_EQ(events[0].args[0].first, "processor");
  EXPECT_EQ(events[0].args[0].second, "GPU");
  EXPECT_EQ(events[0].args[1].second, "4096");
}

TEST_F(TraceTest, ConcurrentRecordingFromManyThreads) {
  constexpr int kThreads = 8;
  constexpr int kSpansPerThread = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        TraceSpan span;
        if (TraceRecorder::enabled()) {
          span.Begin("concurrent", "test");
          span.AddArg("i", int64_t{i});
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const std::vector<TraceEvent> events = TraceRecorder::Global().Snapshot();
  EXPECT_EQ(events.size(), size_t{kThreads} * kSpansPerThread);
  EXPECT_GE(TraceRecorder::Global().thread_count(), size_t{kThreads});
  // Snapshot is globally ordered by start timestamp.
  EXPECT_TRUE(std::is_sorted(events.begin(), events.end(),
                             [](const TraceEvent& a, const TraceEvent& b) {
                               return a.ts_micros < b.ts_micros;
                             }));
}

TEST_F(TraceTest, ClearDropsEvents) {
  {
    TraceSpan span("x", "test");
  }
  EXPECT_EQ(TraceRecorder::Global().Snapshot().size(), 1u);
  TraceRecorder::Global().Clear();
  EXPECT_TRUE(TraceRecorder::Global().Snapshot().empty());
}

// --- Exporters --------------------------------------------------------------

TEST_F(TraceTest, ChromeTraceExportIsValidJsonWithRequiredFields) {
  {
    TraceSpan span;
    span.Begin("SELECT \"quoted\"\nname", "operator");  // escaping required
    span.SetQuery(3);
    span.AddArg("processor", "GPU");
  }
  RecordInstantEvent("place scan", "placement", 3, {{"processor", "CPU"}});
  const std::vector<TraceEvent> events = TraceRecorder::Global().Snapshot();
  ASSERT_EQ(events.size(), 2u);
  const std::string json = ChromeTraceJson(events);

  JsonValidator validator(json);
  EXPECT_TRUE(validator.Validate()) << json;

  // Golden-shape: the traceEvents array and one ph/ts/dur/pid/tid per event.
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  size_t events_found = 0;
  for (size_t at = json.find("\"ph\":\"X\""); at != std::string::npos;
       at = json.find("\"ph\":\"X\"", at + 1)) {
    ++events_found;
  }
  EXPECT_EQ(events_found, events.size());
  EXPECT_NE(json.find("\"ts\":"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":"), std::string::npos);
  EXPECT_NE(json.find("\"pid\":"), std::string::npos);
  EXPECT_NE(json.find("\"tid\":"), std::string::npos);
  // The quote and newline in the span name were escaped.
  EXPECT_NE(json.find("SELECT \\\"quoted\\\"\\nname"), std::string::npos);
}

TEST_F(TraceTest, ChromeTraceExportRoundTripsThroughFile) {
  {
    TraceSpan span("file span", "test");
  }
  const std::string path = ::testing::TempDir() + "/hetdb_trace_test.json";
  const Status status =
      WriteChromeTrace(path, TraceRecorder::Global().Snapshot());
  ASSERT_TRUE(status.ok()) << status.ToString();
  std::FILE* file = std::fopen(path.c_str(), "r");
  ASSERT_NE(file, nullptr);
  std::string content;
  char buffer[4096];
  size_t read = 0;
  while ((read = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    content.append(buffer, read);
  }
  std::fclose(file);
  JsonValidator validator(content);
  EXPECT_TRUE(validator.Validate());
  EXPECT_NE(content.find("file span"), std::string::npos);
}

TEST(ExportersTest, MetricsJsonIsValidAndComplete) {
  MetricRegistry registry;
  registry.GetCounter("engine.gpu_operators").Increment(5);
  registry.GetGauge("cache.used_bytes").Set(1024);
  Histogram& histogram = registry.GetHistogram("workload.latency_us.Q1.1");
  for (int i = 1; i <= 100; ++i) histogram.Record(i * 10);

  const std::string json = MetricsJson(registry);
  JsonValidator validator(json);
  EXPECT_TRUE(validator.Validate()) << json;
  EXPECT_NE(json.find("\"engine.gpu_operators\":5"), std::string::npos);
  EXPECT_NE(json.find("\"cache.used_bytes\":1024"), std::string::npos);
  EXPECT_NE(json.find("\"workload.latency_us.Q1.1\""), std::string::npos);
  EXPECT_NE(json.find("\"p95\":"), std::string::npos);

  const std::string csv = MetricsCsv(registry);
  EXPECT_NE(csv.find("kind,name,count,sum,min,max,mean,p50,p95,p99"),
            std::string::npos);
  EXPECT_NE(csv.find("counter,engine.gpu_operators"), std::string::npos);
  EXPECT_NE(csv.find("histogram,workload.latency_us.Q1.1,100"),
            std::string::npos);
}

}  // namespace
}  // namespace hetdb
