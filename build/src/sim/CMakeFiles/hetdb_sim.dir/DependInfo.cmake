
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/device_allocator.cc" "src/sim/CMakeFiles/hetdb_sim.dir/device_allocator.cc.o" "gcc" "src/sim/CMakeFiles/hetdb_sim.dir/device_allocator.cc.o.d"
  "/root/repo/src/sim/pcie_bus.cc" "src/sim/CMakeFiles/hetdb_sim.dir/pcie_bus.cc.o" "gcc" "src/sim/CMakeFiles/hetdb_sim.dir/pcie_bus.cc.o.d"
  "/root/repo/src/sim/simulator.cc" "src/sim/CMakeFiles/hetdb_sim.dir/simulator.cc.o" "gcc" "src/sim/CMakeFiles/hetdb_sim.dir/simulator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hetdb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
