#ifndef HETDB_FAULT_CIRCUIT_BREAKER_H_
#define HETDB_FAULT_CIRCUIT_BREAKER_H_

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "telemetry/flight_recorder.h"
#include "telemetry/metric_registry.h"

namespace hetdb {

/// Abort-storm detector for the co-processor.
///
/// The paper shows that under heap contention a device operator's abort is
/// not an isolated event: once the heap is oversubscribed, *most* device
/// operators abort, each paying the wasted start-to-abort time of Figure 20
/// before restarting on the CPU. The breaker turns that pattern into a
/// cheap, global decision: when the recent device abort ratio crosses a
/// threshold, stop *sending* operators to the device at all (trip to
/// CPU-only), then probe cautiously (half-open) and restore full device
/// placement once probes succeed.
///
/// States:
///
///   kClosed   — normal operation; device attempts are admitted and their
///               outcomes recorded in a sliding window. When the window has
///               >= min_samples outcomes and the abort ratio reaches
///               trip_ratio, the breaker opens.
///   kOpen     — every AllowDevice() is denied (operators run CPU-only).
///               After cooldown_denials denials — or once cooldown_micros of
///               wall time have elapsed since the trip, whichever comes
///               first — the breaker half-opens. The denial count keeps the
///               state machine deterministic under the no-sleep unit test
///               configuration; the wall-clock floor keeps an *idle* device
///               from staying open forever when there is no traffic to count
///               (the first request after the floor elapses is admitted as a
///               probe).
///   kHalfOpen — up to half_open_probes concurrent device attempts are
///               admitted. probes_to_close successes close the breaker; any
///               abort re-opens it.
///
/// A DeviceLost abort trips the breaker immediately regardless of the
/// window — one "device fell off the bus" is enough.
///
/// Thread-safe; every transition is counted and mirrored into bound metrics
/// (`breaker.state` gauge, `breaker.trips` / `breaker.denials` /
/// `breaker.transitions` counters).
class DeviceCircuitBreaker {
 public:
  enum class State { kClosed = 0, kOpen = 1, kHalfOpen = 2 };

  struct Options {
    /// Sliding window of recent device-attempt outcomes.
    int window = 32;
    /// Outcomes needed in the window before the trip test applies.
    int min_samples = 12;
    /// Abort ratio in the window that trips the breaker.
    double trip_ratio = 0.6;
    /// Denied device requests in kOpen before probing (half-open).
    int cooldown_denials = 16;
    /// Wall-clock floor on the open-state cooldown: once this much time has
    /// passed since the trip, the next request half-opens the breaker even
    /// if fewer than cooldown_denials requests arrived meanwhile. 0 disables
    /// the floor (pure request-counted cooldown, for deterministic tests).
    uint64_t cooldown_micros = 250'000;
    /// Concurrent device probes admitted while half-open.
    int half_open_probes = 2;
    /// Probe successes needed to close again.
    int probes_to_close = 2;
  };

  DeviceCircuitBreaker();  // default options, no metrics
  /// `recorder` (optional) receives every state transition; a trip to kOpen
  /// additionally triggers an automatic flight-recorder dump so the ring's
  /// history around the abort storm is preserved. `metric_prefix` is
  /// prepended to every exported metric name — empty for device 0 (the
  /// legacy single-device names), "deviceN." for later devices.
  explicit DeviceCircuitBreaker(const Options& options,
                                MetricRegistry* registry = nullptr,
                                FlightRecorder* recorder = nullptr,
                                std::string metric_prefix = "");

  DeviceCircuitBreaker(const DeviceCircuitBreaker&) = delete;
  DeviceCircuitBreaker& operator=(const DeviceCircuitBreaker&) = delete;

  /// Replaces the options and resets to kClosed (tests reconfigure windows).
  void Configure(const Options& options);

  /// Gate consulted by ExecuteWithFallback before a device attempt. Denials
  /// while open advance the cooldown; admissions while half-open consume
  /// probe slots. Exactly one RecordDevice{Success,Abort} must follow every
  /// admitted attempt.
  bool AllowDevice();

  /// Non-consuming peek for run-time placers: false only while the breaker
  /// is open (placing on the device would be denied at execution anyway).
  /// Also advances the open-state cooldown so a placer-only workload cannot
  /// wedge the breaker open forever.
  bool device_available();

  void RecordDeviceSuccess();
  void RecordDeviceAbort(bool device_lost = false);

  State state() const;
  uint64_t trips() const;
  uint64_t denials() const;

  /// Back to kClosed with an empty window.
  void Reset();

 private:
  void TransitionLocked(State next);
  void DenyLocked();
  /// Half-opens an open breaker whose wall-clock cooldown floor has elapsed.
  void MaybeCooldownLocked();

  mutable std::mutex mutex_;
  Options options_;
  State state_ = State::kClosed;
  std::vector<bool> window_;  // ring buffer; true = abort
  int window_next_ = 0;
  int window_count_ = 0;
  int window_aborts_ = 0;
  int cooldown_denials_seen_ = 0;
  std::chrono::steady_clock::time_point opened_at_{};
  int probes_inflight_ = 0;
  int probe_successes_ = 0;
  uint64_t trips_ = 0;
  uint64_t denials_ = 0;
  MetricRegistry* registry_ = nullptr;
  FlightRecorder* recorder_ = nullptr;
  std::string metric_prefix_;
};

const char* BreakerStateToString(DeviceCircuitBreaker::State state);

}  // namespace hetdb

#endif  // HETDB_FAULT_CIRCUIT_BREAKER_H_
