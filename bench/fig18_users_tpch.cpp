// Figure 18(b): TPC-H workload execution time (SF 10, fixed total work) with
// a growing number of parallel users.

#include "bench/bench_util.h"
#include "tpch/tpch_queries.h"

using namespace hetdb;
using namespace hetdb::bench;

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv);
  const double sf = args.quick ? 5 : 10;
  const int reps = args.quick ? 1 : 2;
  const std::vector<int> users =
      args.quick ? std::vector<int>{1, 8} : std::vector<int>{1, 4, 8, 16, 20};
  const std::vector<Strategy> strategies = {
      Strategy::kCpuOnly,      Strategy::kGpuOnly,
      Strategy::kCriticalPath, Strategy::kDataDriven,
      Strategy::kChopping,     Strategy::kDataDrivenChopping};

  Banner("Figure 18(b)",
         "TPC-H workload time vs parallel users (SF " +
             std::to_string(static_cast<int>(sf)) + ")");

  TpchGeneratorOptions gen;
  args.ApplySeed(gen);
  gen.scale_factor = sf;
  DatabasePtr db = GenerateTpchDatabase(gen);

  std::vector<std::string> header = {"users"};
  for (Strategy strategy : strategies) {
    header.push_back(std::string(StrategyToString(strategy)) + "[ms]");
  }
  PrintHeader(header);

  for (int user_count : users) {
    PrintCell(static_cast<uint64_t>(user_count));
    for (Strategy strategy : strategies) {
      WorkloadRunOptions options;
      options.repetitions = reps;
      options.num_users = user_count;
      args.ApplySessionKnobs(options);
      options.warmup_repetitions = 1;
      const WorkloadRunResult result = RunPoint(
          PaperConfig(args.time_scale), db, strategy, TpchQueries(), options);
      PrintCell(result.wall_millis);
    }
    EndRow();
  }
  return 0;
}
