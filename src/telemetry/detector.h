#ifndef HETDB_TELEMETRY_DETECTOR_H_
#define HETDB_TELEMETRY_DETECTOR_H_

#include <cstdint>
#include <mutex>
#include <string>

namespace hetdb {

class FlightRecorder;
class MetricRegistry;

/// Detects the paper's fig-2/fig-5 failure mode — device-heap contention and
/// cache thrashing collapsing co-processor throughput — *while it happens*,
/// from derived signals over counters the engine already maintains.
///
/// The engine feeds the detector one cumulative `Sample` per finished query
/// (see EngineContext::NoteQueryFinished); the detector windows consecutive
/// samples into deltas and computes three signals:
///
///   - heap pressure:    device-heap bytes in use / capacity, or any failed
///                       device allocations in the window
///   - eviction churn:   cache evictions per cache access in the window
///                       (a hot working set evicts ~nothing; thrashing
///                       re-loads and evicts on almost every access)
///   - abort ratio:      GPU operator aborts / GPU operator attempts
///
/// Signal counts above thresholds map to a state — kCalm (0 signals),
/// kPressure (1), kThrashing (>= 2 or abort storm) — with streak-based
/// hysteresis so one noisy window cannot flip the state back and forth.
/// State is published as the `thrash.state` gauge (its numeric value),
/// `thrash.transitions` counter, a trace instant event, and a flight-recorder
/// state transition, so EXPLAIN ANALYZE consumers, traces, and post-mortem
/// dumps all see the same classification.
class ThrashingDetector {
 public:
  enum class State { kCalm = 0, kPressure = 1, kThrashing = 2 };

  struct Options {
    /// Fraction of device heap in use above which the heap signal fires.
    double heap_pressure_threshold = 0.9;
    /// Cache evictions per access above which the churn signal fires.
    double eviction_churn_threshold = 0.5;
    /// GPU aborts per GPU attempt above which the abort signal fires.
    double abort_ratio_threshold = 0.25;
    /// Consecutive qualifying windows before escalating the state.
    int escalate_updates = 2;
    /// Consecutive calm windows before de-escalating.
    int calm_updates = 3;
    /// Suppress the churn signal until this many *cumulative* cache
    /// accesses have been observed (cold start — the first loads of a
    /// working set always evict whatever was resident).
    int64_t min_cache_accesses = 4;
  };

  /// Cumulative engine counters at one observation point. The detector
  /// differences consecutive samples itself; callers just read the current
  /// totals (cache stats, workload counters, allocator state).
  struct Sample {
    int64_t cache_hits = 0;
    int64_t cache_misses = 0;
    int64_t cache_evictions = 0;
    int64_t gpu_aborts = 0;        ///< cumulative GPU operator aborts
    int64_t gpu_attempts = 0;      ///< cumulative GPU operator attempts
    int64_t failed_allocations = 0;
    int64_t heap_used_bytes = 0;   ///< instantaneous
    int64_t heap_capacity_bytes = 0;
  };

  /// Derived per-window signals, exposed for tests and EXPLAIN output.
  struct Signals {
    double heap_pressure = 0;
    double eviction_churn = 0;
    double abort_ratio = 0;
    bool heap_signal = false;
    bool churn_signal = false;
    bool abort_signal = false;
  };

  /// `metric_prefix` is prepended to every exported metric name — empty
  /// for device 0 (the legacy single-device names), "deviceN." for later
  /// devices.
  ThrashingDetector(const Options& options, MetricRegistry* registry,
                    FlightRecorder* recorder, std::string metric_prefix = "");

  ThrashingDetector(const ThrashingDetector&) = delete;
  ThrashingDetector& operator=(const ThrashingDetector&) = delete;

  /// Ingests one observation window (deltas vs. the previous call) and
  /// returns the (possibly updated) state. Thread-safe.
  State Update(const Sample& sample);

  State state() const;
  /// Signals computed by the most recent Update().
  Signals last_signals() const;
  int64_t transitions() const;

  /// Forgets sample history and returns to kCalm (measurement-phase resets).
  void Reset();

  static const char* StateName(State state);

 private:
  void TransitionLocked(State next);

  const Options options_;
  MetricRegistry* const registry_;
  FlightRecorder* const recorder_;
  const std::string metric_prefix_;

  mutable std::mutex mutex_;
  State state_ = State::kCalm;
  Sample previous_{};
  bool has_previous_ = false;
  Signals last_signals_{};
  int escalate_streak_ = 0;
  int calm_streak_ = 0;
  int64_t transitions_ = 0;
};

}  // namespace hetdb

#endif  // HETDB_TELEMETRY_DETECTOR_H_
