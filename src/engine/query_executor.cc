#include "engine/query_executor.h"

#include <future>
#include <utility>
#include <vector>

#include "common/stopwatch.h"
#include "telemetry/trace_recorder.h"

namespace hetdb {

Result<TablePtr> QueryExecutor::Execute(const PlanNodePtr& root,
                                        const PlacementMap& placement,
                                        QueryStatsPtr stats) {
  query_id_ = Telemetry::NextQueryId();
  stats_ = stats != nullptr ? std::move(stats) : std::make_shared<QueryStats>();
  if (stats_->nodes().empty()) RegisterPlanNodes(stats_.get(), root);
  stats_->set_query_id(query_id_);
  stats_->MarkSubmitted();
  home_device_ = ctx_->sharding().QueryHomeDevice(*root);

  Result<TablePtr> outcome = [&]() -> Result<TablePtr> {
    HETDB_ASSIGN_OR_RETURN(OperatorResult result,
                           ExecuteNode(root, placement, /*parent=*/nullptr));
    // If the final result still lives on the device, the user receives it on
    // the host: pay the copy-back (attributed to the query, no node).
    if (result.location == ProcessorKind::kGpu && !result.base_data) {
      QueryStatsScope scope(stats_, nullptr);
      HETDB_RETURN_NOT_OK(TransferWithRetry(result.table_bytes(),
                                            TransferDirection::kDeviceToHost,
                                            *ctx_, result.device));
      result.ReleaseDeviceResources();
    }
    return result.table;
  }();

  if (outcome.ok()) {
    ctx_->metrics().RecordQueryDone();
    stats_->MarkFinished(/*ok=*/true);
  } else {
    stats_->MarkFinished(/*ok=*/false, outcome.status().ToString());
  }
  ctx_->flight_recorder().RecordQuerySummary(query_id_, stats_->name(),
                                             stats_->SummaryFields());
  ctx_->NoteQueryFinished();
  stats_ = nullptr;
  return outcome;
}

Result<OperatorResult> QueryExecutor::ExecuteNode(
    const PlanNodePtr& node, const PlacementMap& placement,
    const PlanNode* parent) {
  const auto& children = node->children();
  std::vector<OperatorResult> child_results;
  child_results.reserve(children.size());

  if (children.size() <= 1) {
    for (const PlanNodePtr& child : children) {
      HETDB_ASSIGN_OR_RETURN(OperatorResult r,
                             ExecuteNode(child, placement, node.get()));
      child_results.push_back(std::move(r));
    }
  } else {
    // Inter-operator parallelism: binary operators evaluate both subtrees
    // concurrently.
    std::vector<std::future<Result<OperatorResult>>> futures;
    futures.reserve(children.size());
    for (const PlanNodePtr& child : children) {
      futures.push_back(std::async(std::launch::async, [this, &child,
                                                        &placement, &node] {
        return ExecuteNode(child, placement, node.get());
      }));
    }
    Status first_error;
    for (auto& future : futures) {
      Result<OperatorResult> r = future.get();
      if (!r.ok() && first_error.ok()) first_error = r.status();
      if (r.ok()) child_results.push_back(std::move(r).value());
    }
    if (!first_error.ok()) return first_error;
  }

  std::vector<OperatorResult*> inputs;
  inputs.reserve(child_results.size());
  for (OperatorResult& r : child_results) inputs.push_back(&r);

  auto it = placement.find(node.get());
  ProcessorKind processor =
      it != placement.end() ? it->second : ProcessorKind::kCpu;

  // The compile-time map fixes CPU vs device; *which* device is a run-time
  // sharding decision (inputs' residency is only known now). No admittable
  // device demotes the operator to the CPU, like a breaker short-circuit.
  int device = 0;
  if (processor == ProcessorKind::kGpu) {
    std::vector<std::string> input_keys;
    if (node->op() == PlanOp::kScan) {
      const auto& scan = static_cast<const ScanNode&>(*node);
      input_keys.reserve(scan.base_columns().size());
      for (const auto& [key, column] : scan.base_columns()) {
        input_keys.push_back(key);
      }
    }
    std::vector<std::pair<int, size_t>> resident_inputs;
    for (OperatorResult* input : inputs) {
      if (input->location == ProcessorKind::kGpu) {
        resident_inputs.emplace_back(input->device, input->table_bytes());
      }
    }
    size_t input_bytes = 0;
    for (OperatorResult* input : inputs) input_bytes += input->table_bytes();
    const int picked = ctx_->sharding().PickDevice(
        input_keys, resident_inputs, input_bytes, home_device_);
    if (picked < 0) {
      // No device admits work (breakers open or devices lost): the same
      // short-circuit ExecuteWithFallback would take, decided one layer
      // earlier — count it under the same metric.
      ctx_->metrics()
          .registry()
          .GetCounter("breaker.short_circuits")
          .Increment();
      processor = ProcessorKind::kCpu;
    } else {
      device = picked;
    }
  }

  // Attribute this operator's transfers, allocations, and cache loads.
  NodeStats* node_stats = stats_->Find(node.get());
  QueryStatsScope stats_scope(stats_, node_stats);

  TraceSpan span;
  if (TraceRecorder::enabled()) {
    span.Begin(node->label(), "operator");
    span.SetQuery(query_id_);
    span.SetNode(reinterpret_cast<uint64_t>(node.get()),
                 reinterpret_cast<uint64_t>(parent));
    span.AddArg("requested", ProcessorKindToString(processor));
  }
  Stopwatch run_watch;
  Result<ExecutedOperator> attempt =
      ExecuteWithFallback(*node, inputs, processor, *ctx_, device);
  stats_->OnRun(static_cast<int64_t>(run_watch.ElapsedMicros()), node_stats);
  if (!attempt.ok()) {
    if (span.active()) span.AddArg("error", attempt.status().ToString());
    return attempt.status();
  }
  ExecutedOperator executed = std::move(attempt).value();
  if (span.active()) {
    span.AddArg("processor", ProcessorKindToString(executed.ran_on));
    if (executed.aborted) span.AddArg("cpu_retry", "true");
  }
  // child_results go out of scope here, releasing device residency of the
  // consumed inputs.
  return std::move(executed.result);
}

}  // namespace hetdb
