# Empty dependencies file for fig03_heap_contention.
# This may be replaced when dependencies are built.
