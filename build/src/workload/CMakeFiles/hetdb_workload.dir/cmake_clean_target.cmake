file(REMOVE_RECURSE
  "libhetdb_workload.a"
)
