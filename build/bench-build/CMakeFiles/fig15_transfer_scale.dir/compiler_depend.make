# Empty compiler generated dependencies file for fig15_transfer_scale.
# This may be replaced when dependencies are built.
