#include <gtest/gtest.h>

#include "placement/strategy_runner.h"
#include "sql/lexer.h"
#include "sql/planner.h"
#include "sql/parser.h"
#include "ssb/ssb_generator.h"
#include "ssb/ssb_queries.h"
#include "tests/test_util.h"

namespace hetdb {
namespace {

// --- Lexer -------------------------------------------------------------------

TEST(LexerTest, TokenizesKeywordsIdentifiersAndLiterals) {
  auto tokens = Tokenize("SELECT lo_revenue FROM lineorder WHERE x >= 1.5");
  ASSERT_TRUE(tokens.ok());
  const auto& t = tokens.value();
  ASSERT_EQ(t.size(), 9u);  // incl. end token
  EXPECT_TRUE(t[0].IsKeyword("SELECT"));
  EXPECT_EQ(t[1].kind, TokenKind::kIdentifier);
  EXPECT_EQ(t[1].text, "lo_revenue");
  EXPECT_TRUE(t[2].IsKeyword("FROM"));
  EXPECT_TRUE(t[4].IsKeyword("WHERE"));
  EXPECT_TRUE(t[6].IsSymbol(">="));
  EXPECT_EQ(t[7].kind, TokenKind::kFloat);
  EXPECT_DOUBLE_EQ(t[7].float_value, 1.5);
  EXPECT_EQ(t[8].kind, TokenKind::kEnd);
}

TEST(LexerTest, KeywordsAreCaseInsensitive) {
  auto tokens = Tokenize("select From wHeRe");
  ASSERT_TRUE(tokens.ok());
  EXPECT_TRUE(tokens.value()[0].IsKeyword("SELECT"));
  EXPECT_TRUE(tokens.value()[1].IsKeyword("FROM"));
  EXPECT_TRUE(tokens.value()[2].IsKeyword("WHERE"));
}

TEST(LexerTest, StringLiteralsAndErrors) {
  auto ok = Tokenize("WHERE c = 'MFGR#12'");
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value()[3].kind, TokenKind::kString);
  EXPECT_EQ(ok.value()[3].text, "MFGR#12");
  EXPECT_EQ(Tokenize("'oops").status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Tokenize("a ? b").status().code(), StatusCode::kInvalidArgument);
}

TEST(LexerTest, TwoCharSymbols) {
  auto tokens = Tokenize("a <> b != c <= d >= e");
  ASSERT_TRUE(tokens.ok());
  EXPECT_TRUE(tokens.value()[1].IsSymbol("<>"));
  EXPECT_TRUE(tokens.value()[3].IsSymbol("<>"));  // != normalizes to <>
  EXPECT_TRUE(tokens.value()[5].IsSymbol("<="));
  EXPECT_TRUE(tokens.value()[7].IsSymbol(">="));
}

// --- Parser ------------------------------------------------------------------

TEST(ParserTest, ParsesFullStatement) {
  auto parsed = ParseSelect(
      "SELECT d_year, sum(lo_extendedprice * lo_discount) AS revenue "
      "FROM lineorder, date "
      "WHERE lo_orderdate = d_datekey AND d_year = 1993 "
      "AND lo_discount BETWEEN 1 AND 3 AND lo_quantity < 25 "
      "GROUP BY d_year ORDER BY revenue DESC LIMIT 10");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  const SelectStatement& stmt = parsed.value();
  ASSERT_EQ(stmt.items.size(), 2u);
  EXPECT_EQ(stmt.items[0].kind, SelectItem::Kind::kExpression);
  EXPECT_EQ(stmt.items[1].kind, SelectItem::Kind::kAggregate);
  EXPECT_EQ(stmt.items[1].fn, AggregateFn::kSum);
  EXPECT_TRUE(stmt.items[1].expr.has_arithmetic);
  EXPECT_EQ(stmt.items[1].OutputName(), "revenue");
  ASSERT_EQ(stmt.tables.size(), 2u);
  ASSERT_EQ(stmt.where.size(), 4u);
  EXPECT_EQ(stmt.where[0].kind, SqlPredicate::Kind::kColumnEq);
  EXPECT_EQ(stmt.where[2].kind, SqlPredicate::Kind::kBetween);
  ASSERT_EQ(stmt.group_by.size(), 1u);
  ASSERT_EQ(stmt.order_by.size(), 1u);
  EXPECT_FALSE(stmt.order_by[0].ascending);
  EXPECT_EQ(stmt.limit, 10u);
}

TEST(ParserTest, ParsesCountStarAndInList) {
  auto parsed = ParseSelect(
      "SELECT c_city, count(*) FROM customer "
      "WHERE c_city IN ('UNITED KI1', 'UNITED KI5') GROUP BY c_city");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed.value().items[1].fn, AggregateFn::kCount);
  EXPECT_TRUE(parsed.value().items[1].expr.column.empty());
  ASSERT_EQ(parsed.value().where.size(), 1u);
  EXPECT_EQ(parsed.value().where[0].kind, SqlPredicate::Kind::kIn);
  EXPECT_EQ(parsed.value().where[0].in_list.size(), 2u);
}

TEST(ParserTest, QualifiedNamesAreAccepted) {
  auto parsed = ParseSelect(
      "SELECT lineorder.lo_revenue FROM lineorder WHERE lineorder.lo_tax > 5");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed.value().items[0].expr.column, "lo_revenue");
  EXPECT_EQ(parsed.value().where[0].column, "lo_tax");
}

TEST(ParserTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseSelect("SELECT FROM t").ok());
  EXPECT_FALSE(ParseSelect("SELECT a").ok());
  EXPECT_FALSE(ParseSelect("SELECT a FROM t WHERE").ok());
  EXPECT_FALSE(ParseSelect("SELECT a FROM t LIMIT x").ok());
  EXPECT_FALSE(ParseSelect("SELECT a FROM t nonsense").ok());
  EXPECT_FALSE(ParseSelect("SELECT sum(a FROM t").ok());
}

TEST(ParserTest, ParseStatementWithoutExplainIsPlain) {
  auto parsed = ParseStatement("SELECT lo_revenue FROM lineorder");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed.value().explain, ExplainMode::kNone);
  ASSERT_EQ(parsed.value().select.items.size(), 1u);
  EXPECT_EQ(parsed.value().select.items[0].expr.column, "lo_revenue");
}

TEST(ParserTest, ParseStatementRecognizesExplain) {
  auto parsed = ParseStatement(
      "EXPLAIN SELECT lo_revenue FROM lineorder WHERE lo_tax > 5");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed.value().explain, ExplainMode::kPlan);
  // The wrapped select parses the same as the bare statement.
  ASSERT_EQ(parsed.value().select.where.size(), 1u);
  EXPECT_EQ(parsed.value().select.where[0].column, "lo_tax");
}

TEST(ParserTest, ParseStatementRecognizesExplainAnalyze) {
  auto parsed = ParseStatement(
      "explain analyze select lo_revenue from lineorder");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed.value().explain, ExplainMode::kAnalyze);
  EXPECT_EQ(parsed.value().select.items[0].expr.column, "lo_revenue");
}

TEST(ParserTest, ParseStatementRejectsBareExplain) {
  EXPECT_FALSE(ParseStatement("EXPLAIN").ok());
  EXPECT_FALSE(ParseStatement("EXPLAIN ANALYZE").ok());
  EXPECT_FALSE(ParseStatement("EXPLAIN nonsense").ok());
}

// --- Planner + end-to-end ------------------------------------------------------

class SqlEndToEndTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SsbGeneratorOptions options;
    options.scale_factor = 0.2;
    db_ = GenerateSsbDatabase(options);
  }
  static void TearDownTestSuite() { db_.reset(); }

  TablePtr Run(const std::string& sql) {
    Result<PlanNodePtr> plan = PlanSql(sql, *db_);
    EXPECT_TRUE(plan.ok()) << sql << ": " << plan.status();
    if (!plan.ok()) return nullptr;
    EngineContext ctx(TestConfig(), db_);
    StrategyRunner runner(&ctx, Strategy::kDataDrivenChopping);
    Result<TablePtr> result = runner.RunQuery(plan.value());
    EXPECT_TRUE(result.ok()) << sql << ": " << result.status();
    return result.ok() ? result.value() : nullptr;
  }

  static DatabasePtr db_;
};

DatabasePtr SqlEndToEndTest::db_;

TEST_F(SqlEndToEndTest, SingleTableAggregation) {
  TablePtr result = Run(
      "SELECT sum(lo_revenue) AS total, count(*) AS n FROM lineorder "
      "WHERE lo_discount BETWEEN 4 AND 6");
  ASSERT_NE(result, nullptr);
  ASSERT_EQ(result->num_rows(), 1u);
  // Scalar reference.
  TablePtr lineorder = db_->GetTable("lineorder").value();
  const auto& discount = ColumnCast<Int32Column>(
                             *lineorder->GetColumn("lo_discount").value())
                             .values();
  const auto& revenue = ColumnCast<Int32Column>(
                            *lineorder->GetColumn("lo_revenue").value())
                            .values();
  int64_t total = 0, n = 0;
  for (size_t i = 0; i < discount.size(); ++i) {
    if (discount[i] >= 4 && discount[i] <= 6) {
      total += revenue[i];
      ++n;
    }
  }
  EXPECT_EQ(ColumnCast<Int64Column>(*result->GetColumn("total").value()).value(0),
            total);
  EXPECT_EQ(ColumnCast<Int64Column>(*result->GetColumn("n").value()).value(0),
            n);
}

TEST_F(SqlEndToEndTest, SqlQ11MatchesHandBuiltPlan) {
  TablePtr sql_result = Run(
      "SELECT sum(lo_extendedprice * lo_discount) AS revenue "
      "FROM lineorder, date "
      "WHERE lo_orderdate = d_datekey AND d_year = 1993 "
      "AND lo_discount BETWEEN 1 AND 3 AND lo_quantity < 25");
  ASSERT_NE(sql_result, nullptr);

  Result<NamedQuery> q11 = SsbQueryByName("Q1.1");
  ASSERT_TRUE(q11.ok());
  Result<PlanNodePtr> plan = q11->builder(*db_);
  ASSERT_TRUE(plan.ok());
  EngineContext ctx(TestConfig(), db_);
  StrategyRunner runner(&ctx, Strategy::kCpuOnly);
  Result<TablePtr> reference = runner.RunQuery(plan.value());
  ASSERT_TRUE(reference.ok());

  ASSERT_EQ(sql_result->num_rows(), reference.value()->num_rows());
  EXPECT_EQ(ColumnCast<Int64Column>(*sql_result->GetColumn("revenue").value())
                .value(0),
            ColumnCast<Int64Column>(
                *reference.value()->GetColumn("revenue").value())
                .value(0));
}

TEST_F(SqlEndToEndTest, MultiJoinGroupByOrderBy) {
  TablePtr result = Run(
      "SELECT c_nation, d_year, sum(lo_revenue) AS revenue "
      "FROM customer, lineorder, date "
      "WHERE lo_custkey = c_custkey AND lo_orderdate = d_datekey "
      "AND c_region = 'ASIA' AND d_year BETWEEN 1992 AND 1994 "
      "GROUP BY c_nation, d_year ORDER BY d_year, revenue DESC LIMIT 20");
  ASSERT_NE(result, nullptr);
  EXPECT_GT(result->num_rows(), 0u);
  EXPECT_LE(result->num_rows(), 20u);
  // Ordered by year ascending.
  const auto& years =
      ColumnCast<Int32Column>(*result->GetColumn("d_year").value()).values();
  for (size_t i = 1; i < years.size(); ++i) ASSERT_LE(years[i - 1], years[i]);
}

TEST_F(SqlEndToEndTest, ProjectionWithArithmetic) {
  TablePtr result = Run(
      "SELECT lo_orderkey, lo_extendedprice * lo_discount AS charge "
      "FROM lineorder WHERE lo_quantity < 3 ORDER BY charge DESC LIMIT 5");
  ASSERT_NE(result, nullptr);
  ASSERT_LE(result->num_rows(), 5u);
  ASSERT_TRUE(result->HasColumn("charge"));
  const auto& charge =
      ColumnCast<Int64Column>(*result->GetColumn("charge").value()).values();
  for (size_t i = 1; i < charge.size(); ++i) ASSERT_GE(charge[i - 1], charge[i]);
}

TEST_F(SqlEndToEndTest, PlannerErrors) {
  EXPECT_EQ(PlanSql("SELECT nope FROM lineorder", *db_).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(PlanSql("SELECT lo_revenue FROM lineorder, customer", *db_)
                .status()
                .code(),
            StatusCode::kInvalidArgument);  // no join predicate
  EXPECT_EQ(PlanSql("SELECT lo_revenue, sum(lo_tax) FROM lineorder", *db_)
                .status()
                .code(),
            StatusCode::kInvalidArgument);  // non-grouped plain column
  EXPECT_EQ(PlanSql("SELECT lo_revenue FROM nosuch", *db_).status().code(),
            StatusCode::kNotFound);
}

TEST_F(SqlEndToEndTest, SameTableColumnEqualityIsResidualFilter) {
  TablePtr result = Run(
      "SELECT count(*) AS n FROM lineorder WHERE lo_orderdate = lo_commitdate");
  ASSERT_NE(result, nullptr);
  // Scalar reference.
  TablePtr lineorder = db_->GetTable("lineorder").value();
  const auto& od = ColumnCast<Int32Column>(
                       *lineorder->GetColumn("lo_orderdate").value())
                       .values();
  const auto& cd = ColumnCast<Int32Column>(
                       *lineorder->GetColumn("lo_commitdate").value())
                       .values();
  int64_t expected = 0;
  for (size_t i = 0; i < od.size(); ++i) {
    if (od[i] == cd[i]) ++expected;
  }
  EXPECT_EQ(ColumnCast<Int64Column>(*result->GetColumn("n").value()).value(0),
            expected);
}

}  // namespace
}  // namespace hetdb
