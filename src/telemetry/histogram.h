#ifndef HETDB_TELEMETRY_HISTOGRAM_H_
#define HETDB_TELEMETRY_HISTOGRAM_H_

#include <atomic>
#include <cstdint>

namespace hetdb {

/// Point-in-time summary of a Histogram (see Histogram::Snapshot).
struct HistogramSnapshot {
  uint64_t count = 0;
  int64_t sum = 0;
  int64_t min = 0;
  int64_t max = 0;
  double mean = 0;
  int64_t p50 = 0;
  int64_t p95 = 0;
  int64_t p99 = 0;
};

/// Lock-free log-linear histogram for non-negative integer samples
/// (latencies in microseconds, byte counts, ...).
///
/// Buckets: values below 16 are exact; above that, each power of two is
/// split into 16 linear sub-buckets, so the quantization error of any
/// percentile estimate is bounded by 1/16 ≈ 6% of the value (the paper's
/// tail-latency comparisons, Figure 21, need ~10% resolution). `count`,
/// `sum`, `min`, `max` — and therefore `mean` — are exact.
///
/// All mutation is relaxed-atomic: concurrent `Record` calls from any number
/// of threads are safe and never block, which is what lets workload session
/// threads share per-query histograms without a latch.
class Histogram {
 public:
  static constexpr int kSubBuckets = 16;  // linear sub-buckets per octave
  static constexpr int kBucketCount = 960;

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  /// Records one sample. Negative values clamp to zero.
  void Record(int64_t value);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  int64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Smallest / largest recorded sample; 0 when empty.
  int64_t min() const;
  int64_t max() const { return max_.load(std::memory_order_relaxed); }
  /// Exact arithmetic mean (sum/count); 0 when empty.
  double mean() const;

  /// Approximate percentile, `p` in [0, 100]. Returns the midpoint of the
  /// bucket holding the p-th sample, clamped to [min, max]; 0 when empty.
  int64_t Percentile(double p) const;

  HistogramSnapshot Snapshot() const;

  /// Zeroes all state. Not linearizable against concurrent Record calls;
  /// call between measurement phases.
  void Reset();

  /// Bucket index for `value` (exposed for tests).
  static int BucketIndex(int64_t value);
  /// Inclusive lower bound of bucket `index` (exposed for tests).
  static int64_t BucketLowerBound(int index);
  /// Exclusive upper bound of bucket `index` (exposed for tests).
  static int64_t BucketUpperBound(int index);

 private:
  std::atomic<uint64_t> buckets_[kBucketCount] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<int64_t> sum_{0};
  std::atomic<int64_t> min_{INT64_MAX};
  std::atomic<int64_t> max_{0};
};

}  // namespace hetdb

#endif  // HETDB_TELEMETRY_HISTOGRAM_H_
