// Tests for operator fusion (DESIGN.md §11): the FusePipelines plan rewrite
// and the FusedPipeline kernel. The core invariant mirrors the parallel
// kernel suite — fusion substitutes *execution shape*, never results: every
// fused plan must produce byte-identical output to the unfused plan, across
// backends, worker counts, and adversarial inputs. Also checks the fusion
// win itself: strictly lower simulated device-heap high-water for a fused
// SSB query.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/config.h"
#include "common/parallel.h"
#include "engine/pipeline_builder.h"
#include "operators/fused_pipeline.h"
#include "placement/strategy_runner.h"
#include "ssb/ssb_generator.h"
#include "ssb/ssb_queries.h"
#include "tests/test_util.h"

namespace hetdb {
namespace {

// ---------------------------------------------------------------------------
// Scope guards (same idiom as parallel_kernels_test.cc)
// ---------------------------------------------------------------------------

/// Applies a kernel backend + DoP + fusion configuration for one scope.
class KernelScope {
 public:
  KernelScope(KernelBackend backend, int threads, size_t morsel_rows,
              bool fusion)
      : saved_(GlobalKernelConfig()),
        saved_capacity_(DopBudget::Global().capacity()) {
    GlobalKernelConfig().backend = backend;
    GlobalKernelConfig().max_dop = threads;
    GlobalKernelConfig().morsel_rows = morsel_rows;
    GlobalKernelConfig().fusion = fusion;
    DopBudget::Global().SetCapacity(threads);
  }
  ~KernelScope() {
    GlobalKernelConfig() = saved_;
    DopBudget::Global().SetCapacity(saved_capacity_);
  }

 private:
  KernelConfig saved_;
  int saved_capacity_;
};

std::vector<int> ThreadCounts() {
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  return {1, 2, 7, hw > 0 ? hw : 4};
}

/// Byte-identical comparison of raw value storage (doubles compared
/// bitwise: the fused aggregate must reproduce the unfused accumulation
/// order exactly, not just to rounding).
template <typename T>
void ExpectBitIdenticalValues(const std::vector<T>& a, const std::vector<T>& b,
                              const std::string& col) {
  ASSERT_EQ(a.size(), b.size()) << "row count of column " << col;
  if (!a.empty()) {
    EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(T)), 0)
        << "bytes of column " << col;
  }
}

void ExpectBitIdenticalTables(const TablePtr& ta, const TablePtr& tb) {
  ASSERT_NE(ta, nullptr);
  ASSERT_NE(tb, nullptr);
  ASSERT_EQ(ta->num_columns(), tb->num_columns());
  ASSERT_EQ(ta->num_rows(), tb->num_rows());
  for (size_t c = 0; c < ta->num_columns(); ++c) {
    const Column& ca = *ta->columns()[c];
    const Column& cb = *tb->columns()[c];
    EXPECT_EQ(ca.name(), cb.name());
    ASSERT_EQ(ca.type(), cb.type()) << "type of column " << ca.name();
    switch (ca.type()) {
      case DataType::kInt32:
        ExpectBitIdenticalValues(static_cast<const Int32Column&>(ca).values(),
                                 static_cast<const Int32Column&>(cb).values(),
                                 ca.name());
        break;
      case DataType::kInt64:
        ExpectBitIdenticalValues(static_cast<const Int64Column&>(ca).values(),
                                 static_cast<const Int64Column&>(cb).values(),
                                 ca.name());
        break;
      case DataType::kDouble:
        ExpectBitIdenticalValues(static_cast<const DoubleColumn&>(ca).values(),
                                 static_cast<const DoubleColumn&>(cb).values(),
                                 ca.name());
        break;
      case DataType::kString: {
        const auto& sa = static_cast<const StringColumn&>(ca);
        const auto& sb = static_cast<const StringColumn&>(cb);
        EXPECT_EQ(sa.dictionary(), sb.dictionary())
            << "dictionary of column " << ca.name();
        ExpectBitIdenticalValues(sa.codes(), sb.codes(), ca.name());
        break;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Plan helpers
// ---------------------------------------------------------------------------

size_t CountFusedNodes(const PlanNodePtr& root) {
  size_t count = 0;
  VisitPlanPostOrder(root, [&count](const PlanNodePtr& node) {
    if (node->op() == PlanOp::kFusedPipeline) ++count;
  });
  return count;
}

/// Runs `plan` under the given strategy twice — fusion off then on — and
/// asserts byte-identical results. Returns the fused result.
TablePtr ExpectFusionParity(const DatabasePtr& db, const PlanNodePtr& plan,
                            Strategy strategy, KernelBackend backend,
                            int threads, size_t morsel_rows = 256) {
  TablePtr unfused;
  {
    KernelScope scope(backend, threads, morsel_rows, /*fusion=*/false);
    EngineContext ctx(TestConfig(), db);
    StrategyRunner runner(&ctx, strategy);
    Result<TablePtr> result = runner.RunQuery(plan);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    if (!result.ok()) return nullptr;
    unfused = result.value();
  }
  TablePtr fused;
  {
    KernelScope scope(backend, threads, morsel_rows, /*fusion=*/true);
    EngineContext ctx(TestConfig(), db);
    StrategyRunner runner(&ctx, strategy);
    Result<TablePtr> result = runner.RunQuery(plan);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    if (!result.ok()) return nullptr;
    fused = result.value();
  }
  ExpectBitIdenticalTables(unfused, fused);
  return fused;
}

class FusedPipelineTest : public ::testing::Test {
 protected:
  void SetUp() override { db_ = MakeTinyDb(); }

  PlanNodePtr ScanFact(std::vector<std::string> columns = {"fk", "v"}) {
    return std::make_shared<ScanNode>(db_->GetTable("fact").value(),
                                      std::move(columns));
  }

  PlanNodePtr ScanDim() {
    return std::make_shared<ScanNode>(db_->GetTable("dim").value(),
                                      std::vector<std::string>{"key", "name"});
  }

  /// select(lo < v < hi) -> join dim -> sum(v), count(*) by name.
  PlanNodePtr StarPlan(int64_t lo = 10, int64_t hi = 60) {
    PlanNodePtr select = std::make_shared<SelectNode>(
        ScanFact(), ConjunctiveFilter::And({Predicate::Gt("v", lo),
                                            Predicate::Lt("v", hi)}));
    JoinOutputSpec spec;
    spec.build_columns = {"name"};
    spec.probe_columns = {"v"};
    PlanNodePtr join = std::make_shared<JoinNode>(
        ScanDim(), std::move(select), "key", "fk", spec);
    return std::make_shared<AggregateNode>(
        std::move(join), std::vector<std::string>{"name"},
        std::vector<AggregateSpec>{{AggregateFn::kSum, "v", "total"},
                                   {AggregateFn::kCount, "", "n"}});
  }

  DatabasePtr db_;
};

// ---------------------------------------------------------------------------
// Rewrite structure
// ---------------------------------------------------------------------------

TEST_F(FusedPipelineTest, RewriteFusesFilterProbeAggregateChain) {
  PlanNodePtr plan = StarPlan();
  PlanNodePtr fused = FusePipelines(plan);
  ASSERT_EQ(fused->op(), PlanOp::kFusedPipeline);
  const auto& node = static_cast<const FusedPipelineNode&>(*fused);
  ASSERT_EQ(node.members().size(), 3u);  // select, join, aggregate bottom-up
  EXPECT_EQ(node.members()[0]->op(), PlanOp::kSelect);
  EXPECT_EQ(node.members()[1]->op(), PlanOp::kJoin);
  EXPECT_EQ(node.members()[2]->op(), PlanOp::kAggregate);
  EXPECT_EQ(node.num_joins(), 1u);
  // Children: fact scan (source) + dim scan (build).
  ASSERT_EQ(fused->children().size(), 2u);
  EXPECT_EQ(fused->children()[0]->op(), PlanOp::kScan);
  EXPECT_EQ(fused->children()[1]->op(), PlanOp::kScan);
}

TEST_F(FusedPipelineTest, RewriteIsIdempotent) {
  PlanNodePtr once = FusePipelines(StarPlan());
  PlanNodePtr twice = FusePipelines(once);
  EXPECT_EQ(once, twice);  // same node, not a re-wrapped copy
}

TEST_F(FusedPipelineTest, SortBreaksThePipeline) {
  PlanNodePtr sorted = std::make_shared<SortNode>(
      StarPlan(), std::vector<SortKey>{{"name", true}});
  PlanNodePtr fused = FusePipelines(sorted);
  ASSERT_EQ(fused->op(), PlanOp::kSort);
  EXPECT_EQ(fused->children()[0]->op(), PlanOp::kFusedPipeline);
  EXPECT_EQ(CountFusedNodes(fused), 1u);
}

TEST_F(FusedPipelineTest, SingleOperatorChainsAreNotFused) {
  // select -> scan alone is left as-is (fusing one member buys nothing).
  PlanNodePtr select = std::make_shared<SelectNode>(
      ScanFact(), ConjunctiveFilter::And({Predicate::Lt("v", int64_t{50})}));
  EXPECT_EQ(CountFusedNodes(FusePipelines(select)), 0u);
}

TEST_F(FusedPipelineTest, MidChainAggregateBreaksThePipeline) {
  // aggregate below a select is a pipeline breaker: the select chain above
  // it must not swallow the aggregate.
  PlanNodePtr agg = std::make_shared<AggregateNode>(
      std::make_shared<SelectNode>(
          ScanFact(),
          ConjunctiveFilter::And({Predicate::Lt("v", int64_t{90})})),
      std::vector<std::string>{"fk"},
      std::vector<AggregateSpec>{{AggregateFn::kSum, "v", "total"}});
  PlanNodePtr select_above = std::make_shared<SelectNode>(
      agg, ConjunctiveFilter::And({Predicate::Gt("total", int64_t{0})}));
  PlanNodePtr fused = FusePipelines(select_above);
  // The top select alone is not a chain; the bottom select+aggregate is.
  ASSERT_EQ(fused->op(), PlanOp::kSelect);
  EXPECT_EQ(fused->children()[0]->op(), PlanOp::kFusedPipeline);
}

TEST_F(FusedPipelineTest, BuildSidesAreRewrittenRecursively) {
  // A fusable select chain on the *build* side must fuse independently.
  PlanNodePtr build = std::make_shared<SelectNode>(
      std::make_shared<SelectNode>(
          ScanDim(),
          ConjunctiveFilter::And({Predicate::Gt("key", int64_t{2})})),
      ConjunctiveFilter::And({Predicate::Lt("key", int64_t{9})}));
  JoinOutputSpec spec;
  spec.build_columns = {"name"};
  spec.probe_columns = {"v"};
  PlanNodePtr join = std::make_shared<JoinNode>(
      build, ScanFact(), "key", "fk", spec);
  PlanNodePtr fused = FusePipelines(join);
  // join->scan(probe) is itself a 1-member "chain" — too short; but the join
  // with its probe scan forms a 1-join chain of size 1... the join alone
  // does not fuse (size < 2), so the root stays a join with a fused build.
  ASSERT_EQ(fused->op(), PlanOp::kJoin);
  EXPECT_EQ(fused->children()[0]->op(), PlanOp::kFusedPipeline);
}

// ---------------------------------------------------------------------------
// Parity: fused vs unfused, across strategies / backends / DoP
// ---------------------------------------------------------------------------

TEST_F(FusedPipelineTest, StarQueryParityAcrossDop) {
  for (KernelBackend backend :
       {KernelBackend::kScalar, KernelBackend::kMorselParallel}) {
    for (int threads : ThreadCounts()) {
      ExpectFusionParity(db_, StarPlan(), Strategy::kCpuOnly, backend,
                         threads);
      if (backend == KernelBackend::kMorselParallel) {
        ExpectFusionParity(db_, StarPlan(), Strategy::kDataDrivenChopping,
                           backend, threads);
      }
    }
  }
}

TEST_F(FusedPipelineTest, FilterOnlyChainParity) {
  // select -> select -> scan, no join, no aggregate: materializing terminal.
  PlanNodePtr plan = std::make_shared<SelectNode>(
      std::make_shared<SelectNode>(
          ScanFact(),
          ConjunctiveFilter::And({Predicate::Gt("v", int64_t{20})})),
      ConjunctiveFilter::And({Predicate::Lt("v", int64_t{70})}));
  ASSERT_EQ(CountFusedNodes(FusePipelines(plan)), 1u);
  TablePtr fused = ExpectFusionParity(db_, plan, Strategy::kCpuOnly,
                                      KernelBackend::kMorselParallel, 2);
  ASSERT_NE(fused, nullptr);
  EXPECT_GT(fused->num_rows(), 0u);
}

TEST_F(FusedPipelineTest, AllPassAndAllFailPredicates) {
  for (auto [lo, hi] : std::vector<std::pair<int64_t, int64_t>>{
           {-1, 1000},  // all pass
           {500, 400},  // all fail -> empty pipeline output
       }) {
    PlanNodePtr plan = StarPlan(lo, hi);
    for (int threads : {1, 7}) {
      TablePtr fused = ExpectFusionParity(db_, plan, Strategy::kCpuOnly,
                                          KernelBackend::kMorselParallel, threads);
      ASSERT_NE(fused, nullptr);
      if (lo > hi) {
        EXPECT_EQ(fused->num_rows(), 0u);
      }
    }
  }
}

TEST_F(FusedPipelineTest, EmptySourceTable) {
  auto db = std::make_shared<Database>();
  auto fact = std::make_shared<Table>("fact");
  ASSERT_TRUE(fact->AddColumn(std::make_shared<Int32Column>(
                                  "fk", std::vector<int32_t>{}))
                  .ok());
  ASSERT_TRUE(
      fact->AddColumn(std::make_shared<Int32Column>("v", std::vector<int32_t>{}))
          .ok());
  ASSERT_TRUE(db->AddTable(fact).ok());
  auto dim = std::make_shared<Table>("dim");
  ASSERT_TRUE(dim->AddColumn(std::make_shared<Int32Column>(
                                 "key", std::vector<int32_t>{1, 2}))
                  .ok());
  auto name = StringColumn::FromDictionary("name", {"a", "b"});
  name->AppendCode(0);
  name->AppendCode(1);
  ASSERT_TRUE(dim->AddColumn(std::move(name)).ok());
  ASSERT_TRUE(db->AddTable(dim).ok());

  PlanNodePtr select = std::make_shared<SelectNode>(
      std::make_shared<ScanNode>(db->GetTable("fact").value(),
                                 std::vector<std::string>{"fk", "v"}),
      ConjunctiveFilter::And({Predicate::Lt("v", int64_t{50})}));
  JoinOutputSpec spec;
  spec.build_columns = {"name"};
  spec.probe_columns = {"v"};
  PlanNodePtr join = std::make_shared<JoinNode>(
      std::make_shared<ScanNode>(db->GetTable("dim").value(),
                                 std::vector<std::string>{"key", "name"}),
      std::move(select), "key", "fk", spec);
  TablePtr fused = ExpectFusionParity(db, join, Strategy::kCpuOnly,
                                      KernelBackend::kMorselParallel, 2);
  ASSERT_NE(fused, nullptr);
  EXPECT_EQ(fused->num_rows(), 0u);
}

TEST_F(FusedPipelineTest, NoMatchProbesAndDuplicateBuildKeys) {
  // Build side with duplicate keys (1:N matches) plus keys that never match.
  auto db = std::make_shared<Database>();
  auto fact = std::make_shared<Table>("fact");
  std::vector<int32_t> fk, v;
  for (int i = 0; i < 500; ++i) {
    fk.push_back(i % 20);  // keys 0..19; build only covers 3..7
    v.push_back(i % 13);
  }
  ASSERT_TRUE(
      fact->AddColumn(std::make_shared<Int32Column>("fk", std::move(fk))).ok());
  ASSERT_TRUE(
      fact->AddColumn(std::make_shared<Int32Column>("v", std::move(v))).ok());
  ASSERT_TRUE(db->AddTable(fact).ok());
  auto dim = std::make_shared<Table>("dim");
  // Duplicate keys: 3,3,4,5,5,5,6,7 — each probe hit fans out.
  std::vector<int32_t> key{3, 3, 4, 5, 5, 5, 6, 7};
  std::vector<int32_t> weight{1, 2, 3, 4, 5, 6, 7, 8};
  ASSERT_TRUE(
      dim->AddColumn(std::make_shared<Int32Column>("key", std::move(key))).ok());
  ASSERT_TRUE(dim->AddColumn(std::make_shared<Int32Column>("weight",
                                                           std::move(weight)))
                  .ok());
  ASSERT_TRUE(db->AddTable(dim).ok());

  PlanNodePtr select = std::make_shared<SelectNode>(
      std::make_shared<ScanNode>(db->GetTable("fact").value(),
                                 std::vector<std::string>{"fk", "v"}),
      ConjunctiveFilter::And({Predicate::Gt("v", int64_t{1})}));
  JoinOutputSpec spec;
  spec.build_columns = {"weight"};
  spec.build_aliases = {"w"};
  spec.probe_columns = {"v", "fk"};
  PlanNodePtr join = std::make_shared<JoinNode>(
      std::make_shared<ScanNode>(db->GetTable("dim").value(),
                                 std::vector<std::string>{"key", "weight"}),
      std::move(select), "key", "fk", spec);
  PlanNodePtr agg = std::make_shared<AggregateNode>(
      std::move(join), std::vector<std::string>{"fk"},
      std::vector<AggregateSpec>{{AggregateFn::kSum, "w", "wsum"},
                                 {AggregateFn::kMax, "v", "vmax"}});
  for (int threads : ThreadCounts()) {
    TablePtr fused = ExpectFusionParity(db, agg, Strategy::kCpuOnly,
                                        KernelBackend::kMorselParallel, threads);
    ASSERT_NE(fused, nullptr);
    EXPECT_EQ(fused->num_rows(), 5u);  // probe keys 3..7 survive
  }
}

TEST_F(FusedPipelineTest, ProjectWithComputedColumnsParity) {
  // select -> project(computed) -> aggregate over the computed column.
  PlanNodePtr select = std::make_shared<SelectNode>(
      ScanFact(), ConjunctiveFilter::And({Predicate::Lt("v", int64_t{80})}));
  PlanNodePtr project = std::make_shared<ProjectNode>(
      std::move(select), std::vector<std::string>{"fk"},
      std::vector<ArithmeticExpr>{ArithmeticExpr::ColumnOp(
          "vw", ArithmeticExpr::Op::kMul, "v", "fk")});
  PlanNodePtr agg = std::make_shared<AggregateNode>(
      std::move(project), std::vector<std::string>{"fk"},
      std::vector<AggregateSpec>{{AggregateFn::kSum, "vw", "total"}});
  ASSERT_EQ(CountFusedNodes(FusePipelines(agg)), 1u);
  for (int threads : {1, 2, 7}) {
    ExpectFusionParity(db_, agg, Strategy::kCpuOnly, KernelBackend::kMorselParallel,
                       threads);
  }
}

TEST_F(FusedPipelineTest, SsbQueriesParityAllStrategies) {
  SsbGeneratorOptions options;
  options.scale_factor = 0.2;
  static DatabasePtr ssb = GenerateSsbDatabase(options);
  for (const NamedQuery& query : SsbQueries()) {
    Result<PlanNodePtr> plan = query.builder(*ssb);
    ASSERT_TRUE(plan.ok()) << query.name;
    for (Strategy strategy : {Strategy::kCpuOnly, Strategy::kGpuOnly,
                              Strategy::kDataDrivenChopping}) {
      ExpectFusionParity(ssb, plan.value(), strategy,
                         KernelBackend::kMorselParallel, 2, /*morsel_rows=*/4096);
    }
  }
}

// ---------------------------------------------------------------------------
// The fusion win: lower simulated device-heap footprint
// ---------------------------------------------------------------------------

// Q1.1 is the clear footprint win: a filter->project->aggregate chain over
// the fact table with no join builds, so the fused pipeline allocates no
// intermediates at all. (Multi-join queries trade differently: fusion keeps
// every build table resident at once but drops the per-member
// intermediates — see the fig16 fusion-ablation table.)
TEST_F(FusedPipelineTest, FusedSsbQueryHasStrictlyLowerHeapHighWater) {
  SsbGeneratorOptions options;
  options.scale_factor = 0.2;
  DatabasePtr ssb = GenerateSsbDatabase(options);
  Result<NamedQuery> query = SsbQueryByName("Q1.1");
  ASSERT_TRUE(query.ok());

  auto run = [&](bool fusion) -> int64_t {
    KernelScope scope(KernelBackend::kMorselParallel, 2, 4096, fusion);
    EngineContext ctx(TestConfig(), ssb);
    StrategyRunner runner(&ctx, Strategy::kGpuOnly);
    Result<PlanNodePtr> plan = query->builder(*ssb);
    EXPECT_TRUE(plan.ok());
    QueryStatsPtr stats = std::make_shared<QueryStats>();
    Result<TablePtr> result = runner.RunQuery(plan.value(), stats);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return stats->heap_high_water();
  };

  const int64_t unfused = run(false);
  const int64_t fused = run(true);
  EXPECT_GT(unfused, 0);
  EXPECT_GT(fused, 0);
  EXPECT_LT(fused, unfused)
      << "fused heap high-water must be strictly lower";
}

TEST_F(FusedPipelineTest, FusedNodeChargesOnlyBuildTables) {
  PlanNodePtr fused = FusePipelines(StarPlan());
  ASSERT_EQ(fused->op(), PlanOp::kFusedPipeline);
  TablePtr fact = db_->GetTable("fact").value();
  TablePtr dim = db_->GetTable("dim").value();
  // The fused node charges 2x the build input bytes — and nothing for the
  // (much larger) source input.
  const size_t bytes = fused->IntermediateDeviceBytes({fact, dim});
  EXPECT_EQ(bytes, 2 * dim->data_bytes());
  // The unfused select alone would charge input + input/4 on fact.
  PlanNodePtr select = std::make_shared<SelectNode>(
      ScanFact(), ConjunctiveFilter::And({Predicate::Lt("v", int64_t{50})}));
  EXPECT_GT(select->IntermediateDeviceBytes({fact}), bytes);
}

// ---------------------------------------------------------------------------
// Stats attribution and EXPLAIN integration
// ---------------------------------------------------------------------------

TEST_F(FusedPipelineTest, StatsRegisteredAgainstFusedPlanAreAttributed) {
  KernelScope scope(KernelBackend::kMorselParallel, 2, 256, /*fusion=*/true);
  EngineContext ctx(TestConfig(), db_);
  StrategyRunner runner(&ctx, Strategy::kCpuOnly);
  PlanNodePtr fused = FusePipelines(StarPlan());
  QueryStatsPtr stats = MakeQueryStats(fused);
  ASSERT_TRUE(runner.RunQuery(fused, stats).ok());
  NodeStats* node = stats->Find(fused.get());
  ASSERT_NE(node, nullptr);
  EXPECT_EQ(node->op, "fused_pipeline");
  EXPECT_GE(node->rows_in.load(), 0);
  EXPECT_GE(node->rows_out.load(), 0);
}

TEST_F(FusedPipelineTest, StatsOnUnfusedPlanDisableAdoption) {
  // Caller registered stats against the raw plan: the runner must keep the
  // unfused plan rather than orphan the attribution.
  KernelScope scope(KernelBackend::kMorselParallel, 2, 256, /*fusion=*/true);
  EngineContext ctx(TestConfig(), db_);
  StrategyRunner runner(&ctx, Strategy::kCpuOnly);
  PlanNodePtr plan = StarPlan();
  QueryStatsPtr stats = MakeQueryStats(plan);
  ASSERT_TRUE(runner.RunQuery(plan, stats).ok());
  NodeStats* root = stats->Find(plan.get());
  ASSERT_NE(root, nullptr);
  EXPECT_GE(root->rows_out.load(), 0);  // the raw plan actually ran
}

TEST_F(FusedPipelineTest, StaticValidationDeclinesUnknownColumns) {
  // A select on a column the scan does not provide: the rewrite must leave
  // the chain unfused, and both paths report the same error.
  PlanNodePtr bad_select = std::make_shared<SelectNode>(
      ScanFact({"fk", "v"}),
      ConjunctiveFilter::And({Predicate::Lt("missing", int64_t{5})}));
  PlanNodePtr agg = std::make_shared<AggregateNode>(
      bad_select, std::vector<std::string>{"fk"},
      std::vector<AggregateSpec>{{AggregateFn::kSum, "v", "total"}});
  EXPECT_EQ(CountFusedNodes(FusePipelines(agg)), 0u);
  Status unfused_status, fused_status;
  {
    KernelScope scope(KernelBackend::kMorselParallel, 2, 256, /*fusion=*/false);
    EngineContext ctx(TestConfig(), db_);
    StrategyRunner runner(&ctx, Strategy::kCpuOnly);
    unfused_status = runner.RunQuery(agg).status();
  }
  {
    KernelScope scope(KernelBackend::kMorselParallel, 2, 256, /*fusion=*/true);
    EngineContext ctx(TestConfig(), db_);
    StrategyRunner runner(&ctx, Strategy::kCpuOnly);
    fused_status = runner.RunQuery(agg).status();
  }
  EXPECT_FALSE(unfused_status.ok());
  EXPECT_FALSE(fused_status.ok());
  EXPECT_EQ(unfused_status.code(), fused_status.code());
}

TEST_F(FusedPipelineTest, RuntimeReplayPreservesQueryErrors) {
  // The build child's columns are unknowable statically, so a join whose
  // output spec names a column missing from the build table *does* fuse —
  // runtime binding then declines, and the member-replay fallback must
  // surface the exact error the unfused join kernel reports.
  JoinOutputSpec spec;
  spec.build_columns = {"no_such_column"};
  spec.probe_columns = {"v"};
  PlanNodePtr join = std::make_shared<JoinNode>(
      ScanDim(),
      std::make_shared<SelectNode>(
          ScanFact(),
          ConjunctiveFilter::And({Predicate::Lt("v", int64_t{50})})),
      "key", "fk", spec);
  PlanNodePtr fused_plan = FusePipelines(join);
  ASSERT_EQ(CountFusedNodes(fused_plan), 1u);  // fuses, replays at runtime
  Status unfused_status, fused_status;
  {
    KernelScope scope(KernelBackend::kMorselParallel, 2, 256, /*fusion=*/false);
    EngineContext ctx(TestConfig(), db_);
    StrategyRunner runner(&ctx, Strategy::kCpuOnly);
    unfused_status = runner.RunQuery(join).status();
  }
  {
    KernelScope scope(KernelBackend::kMorselParallel, 2, 256, /*fusion=*/true);
    EngineContext ctx(TestConfig(), db_);
    StrategyRunner runner(&ctx, Strategy::kCpuOnly);
    fused_status = runner.RunQuery(join).status();
  }
  EXPECT_FALSE(unfused_status.ok());
  EXPECT_FALSE(fused_status.ok());
  EXPECT_EQ(unfused_status.code(), fused_status.code());
}

}  // namespace
}  // namespace hetdb
