#ifndef HETDB_COMMON_CANCELLATION_H_
#define HETDB_COMMON_CANCELLATION_H_

#include <atomic>
#include <memory>

namespace hetdb {

/// Cooperative cancellation handle shared between a query's submitter and the
/// executor running it. Copies observe the same underlying flag; a
/// default-constructed token is inert (never cancelled, RequestCancel is a
/// no-op), so APIs can take a token by value without forcing every caller to
/// allocate one.
///
/// Cancellation is a *request*: the executor checks the token at scheduling
/// and run-time boundaries and fails the query with Status::Cancelled; an
/// operator already inside a kernel finishes (and its result is dropped).
class CancelToken {
 public:
  CancelToken() = default;

  /// Makes a live token whose copies share one cancellation flag.
  static CancelToken Create() {
    CancelToken token;
    token.flag_ = std::make_shared<std::atomic<bool>>(false);
    return token;
  }

  void RequestCancel() {
    if (flag_ != nullptr) flag_->store(true, std::memory_order_release);
  }

  bool cancelled() const {
    return flag_ != nullptr && flag_->load(std::memory_order_acquire);
  }

  /// False for the inert default-constructed token.
  bool cancellable() const { return flag_ != nullptr; }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

}  // namespace hetdb

#endif  // HETDB_COMMON_CANCELLATION_H_
