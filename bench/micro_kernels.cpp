// Google-benchmark microbenchmarks for the compute kernels and substrate
// primitives (real host performance, no simulation). These are not paper
// figures; they characterize the building blocks the simulator wraps.

#include <benchmark/benchmark.h>

#include "cache/data_cache.h"
#include "operators/kernels.h"
#include "sim/simulator.h"
#include "ssb/ssb_generator.h"

namespace hetdb {
namespace {

DatabasePtr BenchDb() {
  static DatabasePtr db = [] {
    SsbGeneratorOptions options;
    options.scale_factor = 2.0;  // 120k lineorder rows
    return GenerateSsbDatabase(options);
  }();
  return db;
}

SystemConfig NoSimConfig() {
  SystemConfig config;
  config.simulate_time = false;
  return config;
}

void BM_Filter(benchmark::State& state) {
  DatabasePtr db = BenchDb();
  TablePtr lineorder = db->GetTable("lineorder").value();
  const ConjunctiveFilter filter = ConjunctiveFilter::And(
      {Predicate::Between("lo_discount", int64_t{4}, int64_t{6}),
       Predicate::Between("lo_quantity", int64_t{26}, int64_t{35})});
  for (auto _ : state) {
    auto rows = EvaluateFilter(*lineorder, filter);
    benchmark::DoNotOptimize(rows);
  }
  state.SetBytesProcessed(state.iterations() * 2 * 4 *
                          static_cast<int64_t>(lineorder->num_rows()));
}
BENCHMARK(BM_Filter);

void BM_HashJoin(benchmark::State& state) {
  DatabasePtr db = BenchDb();
  TablePtr lineorder = db->GetTable("lineorder").value();
  TablePtr supplier = db->GetTable("supplier").value();
  JoinOutputSpec spec;
  spec.build_columns = {"s_nation"};
  spec.probe_columns = {"lo_revenue"};
  for (auto _ : state) {
    auto joined = HashJoin(*supplier, "s_suppkey", *lineorder, "lo_suppkey",
                           spec, "j");
    benchmark::DoNotOptimize(joined);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(lineorder->num_rows()));
}
BENCHMARK(BM_HashJoin);

void BM_Aggregate(benchmark::State& state) {
  DatabasePtr db = BenchDb();
  TablePtr lineorder = db->GetTable("lineorder").value();
  for (auto _ : state) {
    auto result = Aggregate(*lineorder, {"lo_discount"},
                            {{AggregateFn::kSum, "lo_revenue", "rev"}}, "a");
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(lineorder->num_rows()));
}
BENCHMARK(BM_Aggregate);

void BM_Sort(benchmark::State& state) {
  DatabasePtr db = BenchDb();
  TablePtr customer = db->GetTable("customer").value();
  for (auto _ : state) {
    auto result = Sort(*customer, {{"c_city", true}, {"c_custkey", false}},
                       "s");
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(customer->num_rows()));
}
BENCHMARK(BM_Sort);

void BM_DeviceAllocator(benchmark::State& state) {
  DeviceAllocator allocator(1ull << 30);
  for (auto _ : state) {
    auto a = allocator.Allocate(4096, "x");
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_DeviceAllocator);

void BM_CacheHit(benchmark::State& state) {
  Simulator sim(NoSimConfig());
  DataCache cache(1ull << 20, EvictionPolicy::kLfu, &sim);
  auto column = std::make_shared<Int32Column>(
      "c", std::vector<int32_t>(1024, 1));
  { auto warm = cache.RequireOnDevice(column, "t.c"); }
  for (auto _ : state) {
    auto access = cache.RequireOnDevice(column, "t.c");
    benchmark::DoNotOptimize(access);
  }
}
BENCHMARK(BM_CacheHit);

}  // namespace
}  // namespace hetdb

BENCHMARK_MAIN();
