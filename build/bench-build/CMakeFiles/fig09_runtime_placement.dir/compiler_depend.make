# Empty compiler generated dependencies file for fig09_runtime_placement.
# This may be replaced when dependencies are built.
