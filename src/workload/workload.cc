#include "workload/workload.h"

#include <atomic>
#include <mutex>
#include <sstream>
#include <thread>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "engine/pipeline_builder.h"
#include "telemetry/histogram.h"
#include "workload/user_sim.h"

namespace hetdb {

std::string WorkloadRunResult::ToString() const {
  std::ostringstream os;
  os << "wall=" << wall_millis << "ms h2d=" << h2d_transfer_millis
     << "ms d2h=" << d2h_transfer_millis << "ms aborts=" << gpu_aborts
     << " wasted=" << wasted_millis << "ms gpu_ops=" << gpu_operators
     << " cpu_ops=" << cpu_operators << " queries=" << queries_run;
  if (failed_queries > 0) os << " FAILED=" << failed_queries;
  for (const auto& [name, stats] : latency_stats_by_query) {
    os << "\n  " << name << ": n=" << stats.count << " mean=" << stats.mean_ms
       << "ms p50=" << stats.p50_ms << "ms p95=" << stats.p95_ms
       << "ms p99=" << stats.p99_ms << "ms max=" << stats.max_ms << "ms";
  }
  return os.str();
}

std::string WorkloadRunResult::PerQueryToString() const {
  std::ostringstream os;
  os << "per-query breakdown (mean per execution):";
  for (const auto& [name, stats] : latency_stats_by_query) {
    os << "\n  " << name << ": n=" << stats.count
       << " latency=" << stats.mean_ms << "ms queue_wait="
       << stats.queue_wait_ms << "ms execute=" << stats.execute_ms
       << "ms retries=" << stats.device_retries
       << " cpu_fallbacks=" << stats.cpu_fallbacks;
  }
  return os.str();
}

WorkloadRunResult RunWorkload(StrategyRunner& runner,
                              const std::vector<NamedQuery>& queries,
                              const WorkloadRunOptions& options) {
  EngineContext& ctx = runner.ctx();
  const Database& db = *ctx.database();

  // --- Warm-up phase ---------------------------------------------------------
  for (int rep = 0; rep < options.warmup_repetitions; ++rep) {
    for (const NamedQuery& query : queries) {
      Result<PlanNodePtr> plan = query.builder(db);
      HETDB_CHECK(plan.ok());
      Result<TablePtr> result = runner.RunQuery(plan.value());
      if (!result.ok()) {
        HETDB_LOG(Warning) << "warm-up query " << query.name
                           << " failed: " << result.status().ToString();
      }
    }
  }
  if (options.refresh_data_placement) {
    runner.RefreshDataPlacement();
  }
  ctx.ResetRunStats();

  // --- Measurement phase -----------------------------------------------------
  // Fixed total work: queries x repetitions, handed out through a shared
  // index so user threads stay busy until the workload is drained.
  std::vector<const NamedQuery*> tasks;
  for (int rep = 0; rep < options.repetitions; ++rep) {
    for (const NamedQuery& query : queries) tasks.push_back(&query);
  }
  std::atomic<size_t> next_task{0};
  Semaphore admission(options.admission_limit > 0 ? options.admission_limit
                                                  : 1 << 20);

  // Per-query-name latency histograms, shared by all session threads
  // (recording is lock-free). Looked up once here so the session loop never
  // touches the registry mutex.
  std::map<std::string, Histogram*> latency_histograms;
  for (const NamedQuery& query : queries) {
    latency_histograms[query.name] = &ctx.telemetry().registry().GetHistogram(
        "workload.latency_us." + query.name);
  }

  // Per-query-name resource accumulators, fed by the attribution layer
  // (QueryStats). Populated before the threads start, updated lock-free.
  struct ResourceAccum {
    std::atomic<int64_t> queue_wait_micros{0};
    std::atomic<int64_t> run_micros{0};
    std::atomic<int64_t> device_retries{0};
    std::atomic<int64_t> cpu_fallbacks{0};
  };
  std::map<std::string, ResourceAccum> resource_accums;
  for (const NamedQuery& query : queries) resource_accums[query.name];

  const int num_users = std::max(1, options.num_users);
  std::vector<uint64_t> session_failed(num_users, 0);

  UserLoopOptions loop_options;
  loop_options.num_users = num_users;
  loop_options.think_time_ms = options.think_time_ms;
  loop_options.seed = options.seed;

  Stopwatch workload_watch;
  RunUserLoops(loop_options, [&](int user, Rng& /*rng*/) {
    const size_t index = next_task.fetch_add(1, std::memory_order_relaxed);
    if (index >= tasks.size()) return false;
    const NamedQuery& query = *tasks[index];
    Result<PlanNodePtr> plan = query.builder(db);
    if (!plan.ok()) {
      ++session_failed[user];
      return true;
    }
    admission.Acquire();
    // Fuse before registering stats so attribution (and the run itself)
    // follow the plan the runner will execute.
    plan.value() = OptimizePlan(plan.value());
    QueryStatsPtr stats = MakeQueryStats(plan.value());
    stats->set_name(query.name);
    Stopwatch latency;
    Result<TablePtr> result = runner.RunQuery(plan.value(), stats);
    const int64_t micros = latency.ElapsedMicros();
    admission.Release();
    if (!result.ok()) {
      ++session_failed[user];
      return true;
    }
    latency_histograms.at(query.name)->Record(micros);
    ResourceAccum& accum = resource_accums.at(query.name);
    accum.queue_wait_micros.fetch_add(stats->queue_wait_micros(),
                                      std::memory_order_relaxed);
    accum.run_micros.fetch_add(stats->run_micros(),
                               std::memory_order_relaxed);
    accum.device_retries.fetch_add(stats->device_retries(),
                                   std::memory_order_relaxed);
    accum.cpu_fallbacks.fetch_add(stats->cpu_fallbacks(),
                                  std::memory_order_relaxed);
    return true;
  });

  // --- Collect metrics ---------------------------------------------------------
  WorkloadRunResult result;
  result.wall_millis = workload_watch.ElapsedMillis();
  // Bus counters record modeled (unscaled) durations; scale them to the same
  // wall-clock units as wall_millis. Summed over every device's PCIe link.
  const double scale =
      ctx.config().simulate_time ? ctx.config().time_scale : 1.0;
  for (int d = 0; d < ctx.device_count(); ++d) {
    PcieBus& bus = ctx.simulator().bus(d);
    result.h2d_transfer_millis +=
        bus.transfer_micros(TransferDirection::kHostToDevice) * scale / 1000.0;
    result.d2h_transfer_millis +=
        bus.transfer_micros(TransferDirection::kDeviceToHost) * scale / 1000.0;
    result.h2d_bytes += bus.transferred_bytes(TransferDirection::kHostToDevice);
    result.d2h_bytes += bus.transferred_bytes(TransferDirection::kDeviceToHost);
  }
  result.gpu_aborts = ctx.metrics().gpu_operator_aborts();
  result.wasted_millis = ctx.metrics().wasted_micros() / 1000.0;
  result.cpu_operators = ctx.metrics().cpu_operators();
  result.gpu_operators = ctx.metrics().gpu_operators();
  result.queries_run = ctx.metrics().queries_completed();

  for (const uint64_t failed : session_failed) {
    result.failed_queries += failed;
  }
  for (const auto& [name, histogram] : latency_histograms) {
    const HistogramSnapshot snapshot = histogram->Snapshot();
    if (snapshot.count == 0) continue;
    QueryLatencyStats stats;
    stats.count = snapshot.count;
    stats.mean_ms = snapshot.mean / 1000.0;
    stats.p50_ms = static_cast<double>(snapshot.p50) / 1000.0;
    stats.p95_ms = static_cast<double>(snapshot.p95) / 1000.0;
    stats.p99_ms = static_cast<double>(snapshot.p99) / 1000.0;
    stats.max_ms = static_cast<double>(snapshot.max) / 1000.0;
    const ResourceAccum& accum = resource_accums.at(name);
    const double n = static_cast<double>(snapshot.count);
    stats.queue_wait_ms =
        static_cast<double>(accum.queue_wait_micros.load()) / n / 1000.0;
    stats.execute_ms =
        static_cast<double>(accum.run_micros.load()) / n / 1000.0;
    stats.device_retries =
        static_cast<uint64_t>(accum.device_retries.load());
    stats.cpu_fallbacks = static_cast<uint64_t>(accum.cpu_fallbacks.load());
    result.latency_stats_by_query[name] = stats;
    result.latency_ms_by_query[name] = stats.mean_ms;
  }
  return result;
}

std::vector<NamedQuery> SerialSelectionQueries() {
  // Appendix B.1 (Listing 1): eight selections, each filtering a different
  // lineorder measure column, executed interleaved so an LRU cache one
  // column short always evicts the column the next query needs.
  auto lt1 = [](const char* c) { return Predicate::Lt(c, int64_t{1}); };
  auto gt10 = [](const char* c) { return Predicate::Gt(c, int64_t{10}); };
  auto gt0 = [](const char* c) { return Predicate::Gt(c, int64_t{0}); };
  auto lt100 = [](const char* c) { return Predicate::Lt(c, int64_t{100}); };
  auto lt1000 = [](const char* c) { return Predicate::Lt(c, int64_t{1000}); };

  const std::vector<std::pair<const char*, Predicate>> specs = {
      {"lo_quantity", lt1("lo_quantity")},
      {"lo_discount", gt10("lo_discount")},
      {"lo_shippriority", gt0("lo_shippriority")},
      {"lo_extendedprice", lt100("lo_extendedprice")},
      {"lo_ordtotalprice", lt100("lo_ordtotalprice")},
      {"lo_revenue", lt1000("lo_revenue")},
      {"lo_supplycost", lt1000("lo_supplycost")},
      {"lo_tax", gt10("lo_tax")},
  };

  std::vector<NamedQuery> queries;
  for (const auto& [column, predicate] : specs) {
    const std::string name = std::string("sel(") + column + ")";
    const std::string col = column;
    const Predicate pred = predicate;
    queries.push_back(NamedQuery{
        name, [col, pred](const Database& db) -> Result<PlanNodePtr> {
          HETDB_ASSIGN_OR_RETURN(TablePtr lineorder, db.GetTable("lineorder"));
          PlanNodePtr scan = std::make_shared<ScanNode>(
              lineorder, std::vector<std::string>{col});
          return PlanNodePtr(std::make_shared<SelectNode>(
              std::move(scan), ConjunctiveFilter::And({pred})));
        }});
  }
  return queries;
}

std::vector<NamedQuery> ParallelSelectionQueries() {
  // Appendix B.2 (Listing 2): derived from SSB Q1.1; four consecutive
  // operators (scan, two selections, count) over two cache-resident columns.
  NamedQuery query{
      "psel", [](const Database& db) -> Result<PlanNodePtr> {
        HETDB_ASSIGN_OR_RETURN(TablePtr lineorder, db.GetTable("lineorder"));
        PlanNodePtr scan = std::make_shared<ScanNode>(
            lineorder, std::vector<std::string>{"lo_discount", "lo_quantity"});
        PlanNodePtr s1 = std::make_shared<SelectNode>(
            std::move(scan),
            ConjunctiveFilter::And(
                {Predicate::Between("lo_discount", int64_t{4}, int64_t{6})}));
        PlanNodePtr s2 = std::make_shared<SelectNode>(
            std::move(s1),
            ConjunctiveFilter::And(
                {Predicate::Between("lo_quantity", int64_t{26}, int64_t{35})}));
        return PlanNodePtr(std::make_shared<AggregateNode>(
            std::move(s2), std::vector<std::string>{},
            std::vector<AggregateSpec>{
                AggregateSpec{AggregateFn::kCount, "", "matches"}}));
      }};
  return {query};
}

}  // namespace hetdb
