#ifndef HETDB_FAULT_FAULT_INJECTOR_H_
#define HETDB_FAULT_FAULT_INJECTOR_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

#include "common/rng.h"
#include "common/status.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/metric_registry.h"

namespace hetdb {

/// Instrumented points in the engine where device faults can strike.
///
///  * kDeviceAlloc — a device heap allocation (DeviceAllocator::Allocate);
///  * kKernel      — a device kernel launch (ExecuteOperator's device path);
///  * kTransfer    — a PCIe transfer in either direction (PcieBus::Transfer).
enum class FaultSite { kDeviceAlloc = 0, kKernel = 1, kTransfer = 2 };

inline constexpr int kNumFaultSites = 3;

const char* FaultSiteToString(FaultSite site);

/// What goes wrong when a fault fires.
///
///  * kHeapExhausted — the allocation fails with ResourceExhausted, exactly
///    like genuine heap contention (the paper's Figure 3/13 abort);
///  * kTransient     — a transient device fault (kernel hiccup, transfer CRC
///    error): the operation fails with Unavailable; a retry may succeed;
///  * kDeviceLost    — the device is gone: the operation fails with
///    DeviceLost; retrying on the device is pointless;
///  * kLatencySpike  — the operation succeeds but takes `latency_factor`
///    times its modeled duration (PCIe congestion, thermal throttling).
enum class FaultKind {
  kNone = 0,
  kHeapExhausted,
  kTransient,
  kDeviceLost,
  kLatencySpike,
};

const char* FaultKindToString(FaultKind kind);

/// Per-site fault schedule. A site with `kind == kNone` or
/// `probability == 0` never faults.
struct FaultSchedule {
  FaultKind kind = FaultKind::kNone;
  /// Per-event Bernoulli probability that a fault (or burst of faults)
  /// starts at this event.
  double probability = 0.0;
  /// Stop after this many injected faults; 0 means unlimited. Lets tests
  /// model a device that misbehaves for a while and then recovers.
  uint64_t max_faults = 0;
  /// Once triggered, this many *consecutive* events at the site fault
  /// (models correlated failures, e.g. a failing DIMM). Default 1: faults
  /// are independent.
  int burst_length = 1;
  /// Only events of at least this many bytes are eligible (0 = all). Lets
  /// tests target big allocations while letting bookkeeping ones through.
  size_t min_bytes = 0;
  /// Duration multiplier applied by kLatencySpike faults.
  double latency_factor = 8.0;

  static FaultSchedule Always(FaultKind kind) {
    FaultSchedule schedule;
    schedule.kind = kind;
    schedule.probability = 1.0;
    return schedule;
  }
  static FaultSchedule FirstN(FaultKind kind, uint64_t n) {
    FaultSchedule schedule = Always(kind);
    schedule.max_faults = n;
    return schedule;
  }
  static FaultSchedule WithProbability(FaultKind kind, double p) {
    FaultSchedule schedule;
    schedule.kind = kind;
    schedule.probability = p;
    return schedule;
  }
};

/// Whole-device-offline episodes: with `start_probability` per event (any
/// site), the device goes offline for the next `duration_events` injector
/// consultations — every site returns kDeviceLost until the episode drains.
struct OfflineSchedule {
  double start_probability = 0.0;
  int duration_events = 0;
};

/// The injector's verdict for one event.
struct FaultDecision {
  FaultKind kind = FaultKind::kNone;
  double latency_factor = 1.0;

  /// True iff the operation must fail (latency spikes succeed, just slower).
  bool fault() const {
    return kind != FaultKind::kNone && kind != FaultKind::kLatencySpike;
  }

  /// The Status the faulted operation reports, `context` naming the victim.
  Status ToStatus(const std::string& context) const;
};

/// Deterministic, seed-driven fault injector for the simulated device.
///
/// One injector is owned by each Simulator and consulted by the device heap
/// allocator, the PCIe bus, and the operator executor's kernel launches.
/// All randomness comes from one seeded Rng consumed under a lock, so a
/// given (seed, schedule, execution order) triple replays the same fault
/// sequence — the chaos tests rely on this for reproducible shrinkage.
///
/// With no schedule armed, `enabled()` is a single relaxed atomic load and
/// every site hook returns immediately: a fault-free build pays no
/// measurable overhead (the acceptance bar for BENCH_kernels.json).
class FaultInjector {
 public:
  explicit FaultInjector(uint64_t seed = 0x7e7db0f417ull) : rng_(seed) {}

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Re-seeds the Rng (schedules and counters are untouched).
  void Reseed(uint64_t seed);

  /// Installs (or replaces) the schedule for one site. A default-constructed
  /// schedule disarms the site.
  void SetSchedule(FaultSite site, const FaultSchedule& schedule);

  /// Arms probabilistic whole-device-offline episodes.
  void SetOfflineSchedule(const OfflineSchedule& schedule);

  /// Forces the device offline for the next `duration_events` consultations
  /// (deterministic episode, independent of the Rng).
  void ForceOffline(int duration_events);

  /// Disarms every site, offline episodes included.
  void ClearAll();

  /// Fast-path check: true iff any schedule is armed. Sites gate their
  /// Decide call on this so the disabled injector stays off the hot path.
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Consults the schedules for one event of `bytes` at `site`.
  FaultDecision Decide(FaultSite site, size_t bytes = 0);

  /// Faults injected at `site` of `kind` so far.
  uint64_t faults_injected(FaultSite site, FaultKind kind) const;
  uint64_t total_faults() const {
    return total_faults_.load(std::memory_order_relaxed);
  }
  /// True while an offline episode is draining.
  bool offline() const;

  /// Mirrors fault counts into `registry` as
  /// `fault.injected.<site>.<kind>` counters (pass nullptr to detach).
  void BindMetrics(MetricRegistry* registry);

  /// Mirrors fault *escalations* — device-offline episode starts — into the
  /// flight recorder, each triggering an automatic dump (pass nullptr to
  /// detach).
  void BindFlightRecorder(FlightRecorder* recorder);

  void ResetStats();

 private:
  static constexpr int kNumKinds = 5;  // including kNone slot (unused)

  void RefreshEnabled();  // caller holds mutex_
  void CountFault(FaultSite site, FaultKind kind);  // caller holds mutex_
  /// Records an offline-episode start and auto-dumps; caller holds mutex_.
  void NoteOfflineEpisodeLocked(const char* origin, int duration_events);

  mutable std::mutex mutex_;
  std::atomic<bool> enabled_{false};
  Rng rng_;
  FaultSchedule schedules_[kNumFaultSites];
  uint64_t faults_by_site_[kNumFaultSites] = {};
  int burst_remaining_[kNumFaultSites] = {};
  OfflineSchedule offline_schedule_;
  int offline_remaining_ = 0;
  std::atomic<uint64_t> total_faults_{0};
  std::atomic<uint64_t> counts_[kNumFaultSites][kNumKinds] = {};
  MetricRegistry* registry_ = nullptr;
  FlightRecorder* recorder_ = nullptr;
};

}  // namespace hetdb

#endif  // HETDB_FAULT_FAULT_INJECTOR_H_
