#ifndef HETDB_SERVER_TRAFFIC_H_
#define HETDB_SERVER_TRAFFIC_H_

#include <string>
#include <vector>

#include "server/server.h"
#include "ssb/ssb_queries.h"

namespace hetdb {

/// One tenant's offered load in a traffic run.
struct TenantTraffic {
  std::string name;
  /// WDRR weight at the admission controller.
  double weight = 1.0;
  /// Query mix, sampled uniformly per request from the tenant's stream.
  std::vector<NamedQuery> mix;
  /// Per-query SLO budget; admission sheds requests it cannot meet.
  /// 0 = best effort (no deadline).
  double deadline_ms = 0;
  /// Admission-queue bound (TenantSpec::max_queue). A tight bound keeps the
  /// pre-warmup arrival burst from building a backlog that takes seconds of
  /// the measured window to drain.
  size_t max_queue = 64;

  // --- open-loop mode ---
  /// Poisson arrival rate, queries/second. Arrivals keep coming whether or
  /// not earlier queries finished — the load that exposes overload collapse.
  double arrival_qps = 0;

  // --- closed-loop mode ---
  /// Concurrent sessions; each waits for its query, thinks, repeats.
  int sessions = 0;
  /// Mean exponential think time per session, milliseconds.
  double think_time_ms = 0;
};

struct TrafficOptions {
  enum class Mode {
    kOpenLoop,   ///< Poisson arrivals at arrival_qps per tenant
    kClosedLoop  ///< sessions x think-time loops per tenant
  };
  Mode mode = Mode::kOpenLoop;
  /// Offered-load phase length, seconds (late queries still drain after).
  double duration_s = 5.0;
  /// Seed for all arrival/mix sampling streams (reproducible runs).
  uint64_t seed = 42;
};

/// Per-tenant outcome of a traffic run. Latencies are client-visible
/// (admission queue wait included) and cover *admitted, successful* queries
/// — shed and failed requests appear in the counts, not the percentiles.
struct TenantTrafficResult {
  std::string tenant;
  uint64_t offered = 0;
  uint64_t completed = 0;  ///< finished OK (within deadline when one was set)
  uint64_t shed = 0;       ///< rejected at admission
  uint64_t missed = 0;     ///< cancelled mid-flight (deadline/client)
  uint64_t failed = 0;     ///< other errors
  double goodput_qps = 0;  ///< completed / duration
  double mean_ms = 0;
  double p50_ms = 0;
  double p95_ms = 0;
  double p99_ms = 0;
  double max_ms = 0;
};

struct TrafficResult {
  double duration_s = 0;
  std::vector<TenantTrafficResult> tenants;
  uint64_t offered = 0;
  uint64_t completed = 0;
  uint64_t shed = 0;
  uint64_t missed = 0;
  uint64_t failed = 0;
  double shed_rate = 0;     ///< shed / offered
  double goodput_qps = 0;   ///< total completed / duration
  /// Jain's fairness index over per-tenant goodput: 1 = perfectly even,
  /// 1/n = one tenant got everything. Only meaningful under equal weights.
  double fairness = 0;

  std::string ToString() const;
  /// One JSON object (pretty-printed) for scripts/check_bench.py and CI.
  std::string ToJson() const;
};

/// Drives the offered load of `tenants` at `server` for the configured
/// duration, then drains in-flight queries and aggregates outcomes.
/// Registers each tenant's WDRR weight with the server's admission
/// controller. Deterministic given (seed, mode, tenant specs) up to thread
/// scheduling of the engine itself.
TrafficResult RunTraffic(Server& server,
                         const std::vector<TenantTraffic>& tenants,
                         const TrafficOptions& options);

}  // namespace hetdb

#endif  // HETDB_SERVER_TRAFFIC_H_
