#ifndef HETDB_TPCH_TPCH_GENERATOR_H_
#define HETDB_TPCH_TPCH_GENERATOR_H_

#include <cstdint>

#include "storage/database.h"

namespace hetdb {

/// Deterministic TPC-H data generator for the query subset Q2–Q7 evaluated
/// in the paper (Appendix C.2).
///
/// Scale: as with SSB, one HetDB scale-factor unit is 1/100 of a paper scale
/// factor (SF 10 -> 600,000 lineitem rows). Simplifications, mirroring the
/// paper's own modifications ("advanced capabilities such as ... substring
/// functions are not in our scope"):
///
///  * monetary values are integer cents (exact arithmetic on all backends);
///  * `p_type3` stores the third syllable of p_type so Q2's
///    "p_type like '%BRASS'" becomes an equality predicate;
///  * `l_shipyear` materializes year(l_shipdate) for Q7's GROUP BY.
struct TpchGeneratorOptions {
  double scale_factor = 1.0;
  uint64_t seed = 1234;
  /// Orders per scale-factor unit; lineitem averages 4 rows per order.
  int64_t orders_rows_per_sf = 15000;
};

struct TpchSizes {
  int64_t region = 5;
  int64_t nation = 25;
  int64_t supplier = 0;
  int64_t customer = 0;
  int64_t part = 0;
  int64_t partsupp = 0;
  int64_t orders = 0;
  int64_t lineitem_max = 0;  ///< upper bound; actual count is data-dependent
};
TpchSizes ComputeTpchSizes(const TpchGeneratorOptions& options);

/// Generates the eight TPC-H tables into a fresh database.
DatabasePtr GenerateTpchDatabase(const TpchGeneratorOptions& options);

}  // namespace hetdb

#endif  // HETDB_TPCH_TPCH_GENERATOR_H_
