#include <gtest/gtest.h>

#include <unordered_set>

#include "placement/strategy_runner.h"
#include "tests/test_util.h"
#include "tpch/tpch_generator.h"
#include "tpch/tpch_queries.h"

namespace hetdb {
namespace {

TpchGeneratorOptions SmallTpch() {
  TpchGeneratorOptions options;
  options.scale_factor = 0.2;  // 3,000 orders, ~12,000 lineitem rows
  return options;
}

class TpchTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { db_ = GenerateTpchDatabase(SmallTpch()); }
  static void TearDownTestSuite() { db_.reset(); }
  static DatabasePtr db_;
};

DatabasePtr TpchTest::db_;

TEST_F(TpchTest, SchemaIsComplete) {
  for (const char* table : {"region", "nation", "supplier", "customer", "part",
                            "partsupp", "orders", "lineitem"}) {
    EXPECT_TRUE(db_->HasTable(table)) << table;
  }
  EXPECT_EQ(db_->GetTable("region").value()->num_rows(), 5u);
  EXPECT_EQ(db_->GetTable("nation").value()->num_rows(), 25u);
}

TEST_F(TpchTest, GenerationIsDeterministic) {
  DatabasePtr other = GenerateTpchDatabase(SmallTpch());
  EXPECT_TRUE(TablesEqual(*db_->GetTable("lineitem").value(),
                          *other->GetTable("lineitem").value()));
}

TEST_F(TpchTest, LineitemReferencesOrders) {
  TablePtr lineitem = db_->GetTable("lineitem").value();
  TablePtr orders = db_->GetTable("orders").value();
  const auto& l_orderkey =
      ColumnCast<Int32Column>(*lineitem->GetColumn("l_orderkey").value())
          .values();
  const int32_t max_order = static_cast<int32_t>(orders->num_rows());
  for (int32_t k : l_orderkey) {
    ASSERT_GE(k, 1);
    ASSERT_LE(k, max_order);
  }
  // Every order has at least one lineitem (generator invariant).
  std::unordered_set<int32_t> seen(l_orderkey.begin(), l_orderkey.end());
  EXPECT_EQ(seen.size(), static_cast<size_t>(max_order));
}

TEST_F(TpchTest, DatesAreOrderedPerLine) {
  TablePtr lineitem = db_->GetTable("lineitem").value();
  const auto& ship =
      ColumnCast<Int32Column>(*lineitem->GetColumn("l_shipdate").value())
          .values();
  const auto& receipt =
      ColumnCast<Int32Column>(*lineitem->GetColumn("l_receiptdate").value())
          .values();
  const auto& shipyear =
      ColumnCast<Int32Column>(*lineitem->GetColumn("l_shipyear").value())
          .values();
  for (size_t i = 0; i < ship.size(); ++i) {
    ASSERT_LE(ship[i], receipt[i]);
    ASSERT_EQ(shipyear[i], ship[i] / 10000);
  }
}

TEST_F(TpchTest, NationRegionMappingIsValid) {
  TablePtr nation = db_->GetTable("nation").value();
  const auto& regionkey =
      ColumnCast<Int32Column>(*nation->GetColumn("n_regionkey").value())
          .values();
  int per_region[5] = {0, 0, 0, 0, 0};
  for (int32_t r : regionkey) {
    ASSERT_GE(r, 0);
    ASSERT_LE(r, 4);
    ++per_region[r];
  }
  for (int count : per_region) EXPECT_EQ(count, 5);  // 5 nations per region
}

TEST_F(TpchTest, AllQueriesAreRegistered) {
  EXPECT_EQ(TpchQueries().size(), 6u);
  EXPECT_TRUE(TpchQueryByName("Q5").ok());
  EXPECT_EQ(TpchQueryByName("Q1").status().code(), StatusCode::kNotFound);
}

class TpchQueryTest : public ::testing::TestWithParam<std::string> {};

TEST_P(TpchQueryTest, ProducesConsistentNonEmptyResults) {
  static DatabasePtr db = GenerateTpchDatabase(SmallTpch());
  Result<NamedQuery> query = TpchQueryByName(GetParam());
  ASSERT_TRUE(query.ok());

  TablePtr reference;
  for (Strategy strategy :
       {Strategy::kCpuOnly, Strategy::kGpuOnly, Strategy::kDataDrivenChopping}) {
    EngineContext ctx(TestConfig(), db);
    StrategyRunner runner(&ctx, strategy);
    runner.RefreshDataPlacement();
    Result<PlanNodePtr> plan = query->builder(*db);
    ASSERT_TRUE(plan.ok());
    Result<TablePtr> result = runner.RunQuery(plan.value());
    ASSERT_TRUE(result.ok())
        << GetParam() << " under " << StrategyToString(strategy) << ": "
        << result.status().ToString();
    EXPECT_GT(result.value()->num_rows(), 0u)
        << GetParam() << " under " << StrategyToString(strategy);
    if (reference == nullptr) {
      reference = result.value();
    } else {
      EXPECT_TRUE(TablesEqual(*reference, *result.value()))
          << GetParam() << " differs under " << StrategyToString(strategy);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllTpchQueries, TpchQueryTest,
                         ::testing::Values("Q2", "Q3", "Q4", "Q5", "Q6", "Q7"));

/// Semantic spot-check of Q6 against a direct scalar computation.
TEST_F(TpchTest, Q6MatchesScalarReference) {
  TablePtr lineitem = db_->GetTable("lineitem").value();
  const auto& shipdate =
      ColumnCast<Int32Column>(*lineitem->GetColumn("l_shipdate").value())
          .values();
  const auto& discount =
      ColumnCast<Int32Column>(*lineitem->GetColumn("l_discount").value())
          .values();
  const auto& quantity =
      ColumnCast<Int32Column>(*lineitem->GetColumn("l_quantity").value())
          .values();
  const auto& price =
      ColumnCast<Int32Column>(*lineitem->GetColumn("l_extendedprice").value())
          .values();
  int64_t expected = 0;
  for (size_t i = 0; i < shipdate.size(); ++i) {
    if (shipdate[i] >= 19940101 && shipdate[i] <= 19941231 &&
        discount[i] >= 5 && discount[i] <= 7 && quantity[i] < 24) {
      expected += static_cast<int64_t>(price[i]) * discount[i];
    }
  }
  EngineContext ctx(TestConfig(), db_);
  StrategyRunner runner(&ctx, Strategy::kCpuOnly);
  Result<NamedQuery> q6 = TpchQueryByName("Q6");
  ASSERT_TRUE(q6.ok());
  Result<PlanNodePtr> plan = q6->builder(*db_);
  ASSERT_TRUE(plan.ok());
  Result<TablePtr> result = runner.RunQuery(plan.value());
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value()->num_rows(), 1u);
  EXPECT_EQ(ColumnCast<Int64Column>(
                *result.value()->GetColumn("revenue").value())
                .value(0),
            expected);
}

}  // namespace
}  // namespace hetdb
