# Empty compiler generated dependencies file for abl_pool_size.
# This may be replaced when dependencies are built.
