file(REMOVE_RECURSE
  "CMakeFiles/multi_user_robustness.dir/multi_user_robustness.cpp.o"
  "CMakeFiles/multi_user_robustness.dir/multi_user_robustness.cpp.o.d"
  "multi_user_robustness"
  "multi_user_robustness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_user_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
