#include <gtest/gtest.h>

#include "storage/database.h"

namespace hetdb {
namespace {

TEST(ColumnTest, NumericColumnBasics) {
  Int32Column column("c", {1, 2, 3});
  EXPECT_EQ(column.type(), DataType::kInt32);
  EXPECT_EQ(column.num_rows(), 3u);
  EXPECT_EQ(column.data_bytes(), 12u);
  EXPECT_EQ(column.value(1), 2);
  column.Append(4);
  EXPECT_EQ(column.num_rows(), 4u);
}

TEST(ColumnTest, TypesReportCorrectWidths) {
  EXPECT_EQ(DataTypeWidth(DataType::kInt32), 4u);
  EXPECT_EQ(DataTypeWidth(DataType::kInt64), 8u);
  EXPECT_EQ(DataTypeWidth(DataType::kDouble), 8u);
  EXPECT_EQ(DataTypeWidth(DataType::kString), 4u);
  EXPECT_EQ(Int64Column("x").type(), DataType::kInt64);
  EXPECT_EQ(DoubleColumn("x").type(), DataType::kDouble);
}

TEST(ColumnTest, AccessCounterIncrements) {
  Int32Column column("c");
  EXPECT_EQ(column.access_count(), 0u);
  column.RecordAccess();
  column.RecordAccess();
  EXPECT_EQ(column.access_count(), 2u);
  column.ResetAccessCount();
  EXPECT_EQ(column.access_count(), 0u);
}

TEST(StringColumnTest, AppendBuildsDictionary) {
  StringColumn column("s");
  column.Append("b");
  column.Append("a");
  column.Append("b");
  EXPECT_EQ(column.num_rows(), 3u);
  EXPECT_EQ(column.value(0), "b");
  EXPECT_EQ(column.value(1), "a");
  EXPECT_EQ(column.code(0), column.code(2));
  // "a" arrived after "b": insertion order breaks code ordering.
  EXPECT_FALSE(column.order_preserving());
}

TEST(StringColumnTest, SortedDictionaryIsOrderPreserving) {
  auto column = StringColumn::FromDictionary("s", {"apple", "banana", "pear"});
  column->AppendCode(2);
  column->AppendCode(0);
  EXPECT_TRUE(column->order_preserving());
  EXPECT_EQ(column->value(0), "pear");
  EXPECT_EQ(column->CodeFor("banana").value(), 1);
  EXPECT_EQ(column->CodeFor("grape").status().code(), StatusCode::kNotFound);
}

TEST(StringColumnTest, BoundCodesMatchLexicographicOrder) {
  auto column =
      StringColumn::FromDictionary("s", {"MFGR#12", "MFGR#13", "MFGR#22"});
  EXPECT_EQ(column->LowerBoundCode("MFGR#13"), 1);
  EXPECT_EQ(column->UpperBoundCode("MFGR#13"), 2);
  EXPECT_EQ(column->LowerBoundCode("A"), 0);
  EXPECT_EQ(column->UpperBoundCode("Z"), 3);
}

TEST(StringColumnTest, DataBytesIncludesCodesAndDictionary) {
  auto column = StringColumn::FromDictionary("s", {"ab", "cd"});
  column->AppendCode(0);
  column->AppendCode(1);
  EXPECT_EQ(column->data_bytes(), 2 * sizeof(int32_t) + 4);
}

TEST(TableTest, AddAndGetColumns) {
  Table table("t");
  ASSERT_TRUE(table.AddColumn(std::make_shared<Int32Column>(
                                  "a", std::vector<int32_t>{1, 2}))
                  .ok());
  ASSERT_TRUE(table.AddColumn(std::make_shared<Int32Column>(
                                  "b", std::vector<int32_t>{3, 4}))
                  .ok());
  EXPECT_EQ(table.num_rows(), 2u);
  EXPECT_EQ(table.num_columns(), 2u);
  EXPECT_TRUE(table.HasColumn("a"));
  EXPECT_FALSE(table.HasColumn("z"));
  EXPECT_EQ(table.GetColumn("b").value()->name(), "b");
  EXPECT_EQ(table.GetColumn("z").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(table.data_bytes(), 16u);
  EXPECT_EQ(table.QualifiedName("a"), "t.a");
}

TEST(TableTest, RejectsDuplicateAndMismatchedColumns) {
  Table table("t");
  ASSERT_TRUE(table.AddColumn(std::make_shared<Int32Column>(
                                  "a", std::vector<int32_t>{1, 2}))
                  .ok());
  EXPECT_EQ(table.AddColumn(std::make_shared<Int32Column>("a")).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(table
                .AddColumn(std::make_shared<Int32Column>(
                    "c", std::vector<int32_t>{1, 2, 3}))
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(table.AddColumn(nullptr).code(), StatusCode::kInvalidArgument);
}

TEST(DatabaseTest, CatalogOperations) {
  Database db;
  auto table = std::make_shared<Table>("t");
  ASSERT_TRUE(table
                  ->AddColumn(std::make_shared<Int32Column>(
                      "a", std::vector<int32_t>{1}))
                  .ok());
  ASSERT_TRUE(db.AddTable(table).ok());
  EXPECT_TRUE(db.HasTable("t"));
  EXPECT_EQ(db.AddTable(table).code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(db.GetTable("t").value()->name(), "t");
  EXPECT_EQ(db.GetTable("x").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(db.GetColumnByQualifiedName("t.a").value()->name(), "a");
  EXPECT_EQ(db.GetColumnByQualifiedName("t.z").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(db.GetColumnByQualifiedName("bogus").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(db.TotalBytes(), 4u);
}

TEST(DatabaseTest, ResetAccessCounters) {
  Database db;
  auto table = std::make_shared<Table>("t");
  auto column = std::make_shared<Int32Column>("a", std::vector<int32_t>{1});
  ASSERT_TRUE(table->AddColumn(column).ok());
  ASSERT_TRUE(db.AddTable(table).ok());
  column->RecordAccess();
  EXPECT_EQ(column->access_count(), 1u);
  db.ResetAccessCounters();
  EXPECT_EQ(column->access_count(), 0u);
}

}  // namespace
}  // namespace hetdb
