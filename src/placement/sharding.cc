#include "placement/sharding.h"

#include <algorithm>
#include <functional>

#include "common/logging.h"
#include "operators/plan_node.h"

namespace hetdb {

DeviceShardingPolicy::DeviceShardingPolicy(
    Simulator* simulator, std::vector<DataCache*> caches,
    std::vector<DeviceCircuitBreaker*> breakers)
    : simulator_(simulator),
      caches_(std::move(caches)),
      breakers_(std::move(breakers)) {
  HETDB_CHECK(simulator_ != nullptr);
  HETDB_CHECK(!caches_.empty());
  HETDB_CHECK(caches_.size() == breakers_.size());
  live_.assign(caches_.size(), true);
}

bool DeviceShardingPolicy::IsLive(int device) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return device >= 0 && device < static_cast<int>(live_.size()) &&
         live_[static_cast<size_t>(device)];
}

std::vector<int> DeviceShardingPolicy::LiveDevices() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<int> out;
  for (int d = 0; d < static_cast<int>(live_.size()); ++d) {
    if (live_[static_cast<size_t>(d)]) out.push_back(d);
  }
  return out;
}

int DeviceShardingPolicy::AffinityDevice(const std::string& key) const {
  const std::vector<int> live = LiveDevices();
  if (live.empty()) return -1;
  const size_t hash = std::hash<std::string>{}(key);
  return live[hash % live.size()];
}

int DeviceShardingPolicy::QueryHomeDevice(const PlanNode& root) const {
  // The query's base-column footprint — every base column any of its scans
  // reads — fingerprints the query *template*: two SSB flights (and even
  // two queries within a flight) differ in at least one filter or carry
  // column. Hashing the footprint therefore spreads the 13 SSB templates
  // near-uniformly over the devices, where hashing any single anchor
  // column would pile entire flights onto one device (flights 3 and 4 all
  // scan lo_custkey first). Fused-pipeline nodes keep their source scan as
  // children()[0], so a plain child walk sees every scan of the plan.
  size_t fingerprint = 0;
  bool any = false;
  const std::function<void(const PlanNode&)> walk = [&](const PlanNode& node) {
    if (node.op() == PlanOp::kScan) {
      const auto& scan = static_cast<const ScanNode&>(node);
      for (const auto& [key, column] : scan.base_columns()) {
        any = true;
        // Deterministic order-sensitive mix (walk order is plan order).
        fingerprint =
            fingerprint * 1099511628211ull + std::hash<std::string>{}(key);
      }
    }
    for (const PlanNodePtr& child : node.children()) walk(*child);
  };
  walk(root);
  if (!any) return -1;
  const std::vector<int> live = LiveDevices();
  if (live.empty()) return -1;
  return live[fingerprint % live.size()];
}

int DeviceShardingPolicy::PickDevice(
    const std::vector<std::string>& input_keys,
    const std::vector<std::pair<int, size_t>>& resident_inputs,
    size_t estimated_heap_bytes, int preferred_device) const {
  (void)estimated_heap_bytes;
  // Candidates: live devices whose breaker admits work right now. The
  // breaker peek also advances open-state cooldown, which is what lets a
  // tripped device eventually half-open under a placement-only load. The
  // brownout gate (when installed) prunes devices policy has benched.
  std::function<bool(int)> gate;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    gate = device_gate_;
  }
  std::vector<int> candidates;
  for (const int d : LiveDevices()) {
    if (gate && !gate(d)) continue;
    if (breakers_[static_cast<size_t>(d)]->device_available()) {
      candidates.push_back(d);
    }
  }
  if (candidates.empty()) return -1;
  if (candidates.size() == 1) return candidates[0];

  // Score: resident input *bytes* dominate — a foreign input costs a
  // migration proportional to its size, so a join runs where its big side
  // lives and only the small side crosses devices. Cached base columns add
  // a constant (a cold scan costs an H2D load).
  int best = -1;
  int64_t best_score = -1;
  size_t best_free = 0;
  for (const int d : candidates) {
    int64_t score = 0;
    for (const auto& [input_device, bytes] : resident_inputs) {
      if (input_device == d) {
        score += 2 + static_cast<int64_t>(bytes / 1024);
      }
    }
    for (const std::string& key : input_keys) {
      if (caches_[static_cast<size_t>(d)]->IsCached(key)) score += 2;
    }
    // The query-home bonus outranks cached-column pull (a small column
    // re-loads once and demand-caches on the home) but yields to resident
    // inputs ≥64 KiB (migrating those is what the bonus exists to avoid).
    if (d == preferred_device) score += 64;
    const size_t free = simulator_->device_heap(d).available();
    if (score > best_score || (score == best_score && free > best_free)) {
      best = d;
      best_score = score;
      best_free = free;
    }
  }
  if (best_score > 0) return best;

  // Nothing resident anywhere. Scans go to their first column's affinity
  // home (builds the sharded working set); everything else round-robins so
  // join builds and fused-pipeline heaps spread across the devices.
  if (!input_keys.empty()) {
    const size_t hash = std::hash<std::string>{}(input_keys.front());
    return candidates[hash % candidates.size()];
  }
  const uint64_t tick =
      spread_clock_.fetch_add(1, std::memory_order_relaxed);
  return candidates[tick % candidates.size()];
}

void DeviceShardingPolicy::SetDeviceGate(std::function<bool(int)> gate) {
  std::lock_guard<std::mutex> lock(mutex_);
  device_gate_ = std::move(gate);
}

void DeviceShardingPolicy::MarkDeviceLost(int device) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (device >= 0 && device < static_cast<int>(live_.size())) {
    live_[static_cast<size_t>(device)] = false;
  }
}

void DeviceShardingPolicy::MarkDeviceRestored(int device) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (device >= 0 && device < static_cast<int>(live_.size())) {
    live_[static_cast<size_t>(device)] = true;
  }
}

int DeviceShardingPolicy::RebalanceAway(int device, bool source_reachable) {
  if (device < 0 || device >= device_count()) return 0;
  DataCache& source = *caches_[static_cast<size_t>(device)];
  const auto resident = source.ResidentColumns();
  int moved = 0;
  for (const auto& [key, column] : resident) {
    const int target = AffinityDevice(key);
    if (target < 0 || target == device) continue;
    DataCache& destination = *caches_[static_cast<size_t>(target)];
    if (destination.IsCached(key)) {
      ++moved;  // survivor already holds its shard of the key
      continue;
    }
    const size_t bytes = destination.EntryBytes(*column);
    if (source_reachable) {
      // Breaker trip with the device still on the bus: move the cached
      // bytes directly, charging the D2D path (dedicated link, or
      // D2H + H2D through the host without one).
      if (!simulator_->TransferDeviceToDevice(bytes, device, target).ok()) {
        continue;
      }
      if (destination.AdmitMigrated(column, key).ok()) ++moved;
    } else {
      // Device memory is gone: the survivor re-loads from the host copy
      // over its own PCIe link.
      if (destination.Pin(column, key).ok()) ++moved;
    }
  }
  // Either way the source's entries are no longer usable for placement.
  source.Clear();
  return moved;
}

}  // namespace hetdb
