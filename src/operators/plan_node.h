#ifndef HETDB_OPERATORS_PLAN_NODE_H_
#define HETDB_OPERATORS_PLAN_NODE_H_

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "operators/expression.h"
#include "operators/kernels.h"
#include "sim/simulator.h"
#include "storage/table.h"
#include "telemetry/query_stats.h"

namespace hetdb {

/// Logical operator kinds of the physical plan tree.
enum class PlanOp {
  kScan,
  kSelect,
  kJoin,
  kAggregate,
  kSort,
  kProject,
  kLimit,
  kFusedPipeline,
};

const char* PlanOpToString(PlanOp op);

class PlanNode;
using PlanNodePtr = std::shared_ptr<PlanNode>;

/// A node of the operator-at-a-time physical query plan.
///
/// Nodes are immutable descriptions: the kernel to run, the children whose
/// materialized outputs it consumes, and cost-model hooks. All execution
/// state (placement, intermediate results, device allocations) lives in the
/// engine's per-execution structures, so one plan can be executed many times
/// and concurrently.
class PlanNode {
 public:
  PlanNode(PlanOp op, std::vector<PlanNodePtr> children)
      : op_(op), children_(std::move(children)) {}
  virtual ~PlanNode() = default;

  PlanNode(const PlanNode&) = delete;
  PlanNode& operator=(const PlanNode&) = delete;

  PlanOp op() const { return op_; }
  const std::vector<PlanNodePtr>& children() const { return children_; }

  /// Cost class used to pick the throughput-table entry.
  virtual OpClass op_class() const = 0;

  /// Runs the kernel on host-resident inputs (one per child, in order) and
  /// returns the materialized result. Never sleeps and never touches device
  /// state; the engine wraps it with timing/allocation behaviour.
  virtual Result<TablePtr> ComputeResult(
      const std::vector<TablePtr>& inputs) const = 0;

  /// Bytes of input this operator consumes (drives modeled kernel duration).
  virtual size_t InputBytes(const std::vector<TablePtr>& inputs) const;

  /// Device-heap bytes of intermediate data structures the device variant
  /// allocates *before* the kernel runs (hash tables, flag arrays, ...).
  /// The result buffer is allocated separately after the kernel, when the
  /// actual result size is known — the paper's multi-step allocation.
  virtual size_t IntermediateDeviceBytes(
      const std::vector<TablePtr>& inputs) const;

  /// Short human-readable description, e.g. "select(lo_discount > 10)".
  virtual std::string label() const;

  size_t num_children() const { return children_.size(); }

 private:
  PlanOp op_;
  std::vector<PlanNodePtr> children_;
};

/// Leaf: produces (a column subset of) a base table. The engine treats scans
/// specially — on the device they acquire columns through the data cache
/// rather than running a kernel.
class ScanNode : public PlanNode {
 public:
  ScanNode(TablePtr table, std::vector<std::string> columns);

  OpClass op_class() const override { return OpClass::kScan; }
  Result<TablePtr> ComputeResult(
      const std::vector<TablePtr>& inputs) const override;
  size_t InputBytes(const std::vector<TablePtr>& inputs) const override;
  size_t IntermediateDeviceBytes(
      const std::vector<TablePtr>& inputs) const override;
  std::string label() const override;

  const TablePtr& table() const { return table_; }
  const std::vector<std::string>& columns() const { return columns_; }

  /// Resolved base columns with their cache keys ("<table>.<column>").
  const std::vector<std::pair<std::string, ColumnPtr>>& base_columns() const {
    return base_columns_;
  }

 private:
  TablePtr table_;
  std::vector<std::string> columns_;
  std::vector<std::pair<std::string, ColumnPtr>> base_columns_;
};

/// CNF filter. The device variant's peak footprint follows the paper's
/// GPU-selection model: input + 1.25x intermediates + worst-case output
/// = 3.25x the input size (Section 3.4).
class SelectNode : public PlanNode {
 public:
  SelectNode(PlanNodePtr child, ConjunctiveFilter filter);

  OpClass op_class() const override { return OpClass::kScan; }
  Result<TablePtr> ComputeResult(
      const std::vector<TablePtr>& inputs) const override;
  size_t IntermediateDeviceBytes(
      const std::vector<TablePtr>& inputs) const override;
  std::string label() const override;

  const ConjunctiveFilter& filter() const { return filter_; }

 private:
  ConjunctiveFilter filter_;
};

/// Equi hash join; child 0 is the build side, child 1 the probe side.
class JoinNode : public PlanNode {
 public:
  JoinNode(PlanNodePtr build, PlanNodePtr probe, std::string build_key,
           std::string probe_key, JoinOutputSpec output_spec);

  OpClass op_class() const override { return OpClass::kJoin; }
  Result<TablePtr> ComputeResult(
      const std::vector<TablePtr>& inputs) const override;
  size_t IntermediateDeviceBytes(
      const std::vector<TablePtr>& inputs) const override;
  std::string label() const override;

  const std::string& build_key() const { return build_key_; }
  const std::string& probe_key() const { return probe_key_; }
  const JoinOutputSpec& output_spec() const { return output_spec_; }

 private:
  std::string build_key_;
  std::string probe_key_;
  JoinOutputSpec output_spec_;
};

/// Hash group-by aggregation.
class AggregateNode : public PlanNode {
 public:
  AggregateNode(PlanNodePtr child, std::vector<std::string> group_by,
                std::vector<AggregateSpec> aggregates);

  OpClass op_class() const override { return OpClass::kAggregate; }
  Result<TablePtr> ComputeResult(
      const std::vector<TablePtr>& inputs) const override;
  size_t IntermediateDeviceBytes(
      const std::vector<TablePtr>& inputs) const override;
  std::string label() const override;

  const std::vector<std::string>& group_by() const { return group_by_; }
  const std::vector<AggregateSpec>& aggregates() const { return aggregates_; }

 private:
  std::vector<std::string> group_by_;
  std::vector<AggregateSpec> aggregates_;
};

/// Multi-key sort.
class SortNode : public PlanNode {
 public:
  SortNode(PlanNodePtr child, std::vector<SortKey> keys);

  OpClass op_class() const override { return OpClass::kSort; }
  Result<TablePtr> ComputeResult(
      const std::vector<TablePtr>& inputs) const override;
  size_t IntermediateDeviceBytes(
      const std::vector<TablePtr>& inputs) const override;
  std::string label() const override;

  const std::vector<SortKey>& keys() const { return keys_; }

 private:
  std::vector<SortKey> keys_;
};

/// Column pruning plus computed arithmetic columns.
class ProjectNode : public PlanNode {
 public:
  ProjectNode(PlanNodePtr child, std::vector<std::string> keep_columns,
              std::vector<ArithmeticExpr> expressions);

  OpClass op_class() const override { return OpClass::kProject; }
  Result<TablePtr> ComputeResult(
      const std::vector<TablePtr>& inputs) const override;
  std::string label() const override;

  const std::vector<std::string>& keep_columns() const { return keep_columns_; }
  const std::vector<ArithmeticExpr>& expressions() const {
    return expressions_;
  }

 private:
  std::vector<std::string> keep_columns_;
  std::vector<ArithmeticExpr> expressions_;
};

/// First-n rows (ORDER BY ... LIMIT n tail of a query).
class LimitNode : public PlanNode {
 public:
  LimitNode(PlanNodePtr child, size_t limit);

  OpClass op_class() const override { return OpClass::kMaterialize; }
  Result<TablePtr> ComputeResult(
      const std::vector<TablePtr>& inputs) const override;
  std::string label() const override;

  size_t limit() const { return limit_; }

 private:
  size_t limit_;
};

/// Counts the operators in a plan tree.
size_t CountPlanNodes(const PlanNodePtr& root);

/// Post-order traversal (children before parents).
void VisitPlanPostOrder(const PlanNodePtr& root,
                        const std::function<void(const PlanNodePtr&)>& fn);

/// Registers every node of `root` in `stats`, pre-order (parents before
/// children), keyed by node address; attribution sites then find their slot
/// with `stats->Find(node.get())`.
void RegisterPlanNodes(QueryStats* stats, const PlanNodePtr& root);

/// Fresh QueryStats with `root`'s nodes registered — the executors call this
/// when the caller did not supply stats of its own.
QueryStatsPtr MakeQueryStats(const PlanNodePtr& root);

}  // namespace hetdb

#endif  // HETDB_OPERATORS_PLAN_NODE_H_
