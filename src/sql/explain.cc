#include "sql/explain.h"

#include <sstream>

#include "telemetry/exporters.h"

namespace hetdb {

namespace {

void RenderTextNode(const PlanNodePtr& node, int depth, std::ostream& os) {
  for (int i = 0; i < depth; ++i) os << "  ";
  os << node->label() << '\n';
  for (const PlanNodePtr& child : node->children()) {
    RenderTextNode(child, depth + 1, os);
  }
}

void RenderJsonNode(const PlanNodePtr& node, std::ostream& os) {
  os << "{\"op\":\"" << PlanOpToString(node->op()) << "\",\"label\":\""
     << JsonEscape(node->label()) << "\",\"children\":[";
  bool first = true;
  for (const PlanNodePtr& child : node->children()) {
    if (!first) os << ',';
    first = false;
    RenderJsonNode(child, os);
  }
  os << "]}";
}

}  // namespace

std::string RenderPlanTree(const PlanNodePtr& root) {
  std::ostringstream os;
  RenderTextNode(root, 0, os);
  return os.str();
}

std::string RenderPlanJson(const PlanNodePtr& root) {
  std::ostringstream os;
  RenderJsonNode(root, os);
  return os.str();
}

}  // namespace hetdb
