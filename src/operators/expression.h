#ifndef HETDB_OPERATORS_EXPRESSION_H_
#define HETDB_OPERATORS_EXPRESSION_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/status.h"

namespace hetdb {

/// A literal constant in a predicate. Dates are encoded as int64 yyyymmdd.
using Value = std::variant<int64_t, double, std::string>;

std::string ValueToString(const Value& value);

/// Comparison operators for scan/selection predicates.
enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe, kBetween };

const char* CompareOpToString(CompareOp op);

/// One atomic predicate: `column <op> value` or
/// `column between value and value2` (inclusive on both ends, as in SQL).
struct Predicate {
  std::string column;
  CompareOp op = CompareOp::kEq;
  Value value;
  Value value2;  // only used by kBetween

  static Predicate Eq(std::string column, Value v) {
    return {std::move(column), CompareOp::kEq, std::move(v), {}};
  }
  static Predicate Ne(std::string column, Value v) {
    return {std::move(column), CompareOp::kNe, std::move(v), {}};
  }
  static Predicate Lt(std::string column, Value v) {
    return {std::move(column), CompareOp::kLt, std::move(v), {}};
  }
  static Predicate Le(std::string column, Value v) {
    return {std::move(column), CompareOp::kLe, std::move(v), {}};
  }
  static Predicate Gt(std::string column, Value v) {
    return {std::move(column), CompareOp::kGt, std::move(v), {}};
  }
  static Predicate Ge(std::string column, Value v) {
    return {std::move(column), CompareOp::kGe, std::move(v), {}};
  }
  static Predicate Between(std::string column, Value lo, Value hi) {
    return {std::move(column), CompareOp::kBetween, std::move(lo),
            std::move(hi)};
  }

  std::string ToString() const;
};

/// A disjunction of atoms, e.g. `(c_city = 'A' OR c_city = 'B')` (SSB Q3.3).
struct Disjunction {
  std::vector<Predicate> atoms;

  Disjunction() = default;
  Disjunction(std::initializer_list<Predicate> list) : atoms(list) {}
  explicit Disjunction(Predicate p) { atoms.push_back(std::move(p)); }

  std::string ToString() const;
};

/// Conjunctive normal form filter condition: AND over OR-groups. This covers
/// every filter in the SSB and the supported TPC-H subset.
struct ConjunctiveFilter {
  std::vector<Disjunction> conjuncts;

  ConjunctiveFilter() = default;
  ConjunctiveFilter(std::initializer_list<Disjunction> list)
      : conjuncts(list) {}

  /// Convenience: AND of simple atoms.
  static ConjunctiveFilter And(std::vector<Predicate> predicates) {
    ConjunctiveFilter filter;
    for (auto& p : predicates) {
      filter.conjuncts.emplace_back(Disjunction(std::move(p)));
    }
    return filter;
  }

  bool empty() const { return conjuncts.empty(); }
  std::string ToString() const;
};

/// Binary arithmetic over two columns or a column and a constant, producing
/// a new column (e.g. `lo_extendedprice * lo_discount` for SSB Q1 revenue).
struct ArithmeticExpr {
  /// kRsub computes `right - left` (constant-minus-column, e.g.
  /// `100 - l_discount` in the TPC-H revenue expression).
  enum class Op { kAdd, kSub, kMul, kDiv, kRsub };

  std::string output_name;
  Op op = Op::kMul;
  std::string left_column;
  std::string right_column;  // empty => use right_constant
  double right_constant = 0.0;

  static ArithmeticExpr ColumnOp(std::string output, Op op, std::string left,
                                 std::string right) {
    ArithmeticExpr e;
    e.output_name = std::move(output);
    e.op = op;
    e.left_column = std::move(left);
    e.right_column = std::move(right);
    return e;
  }
  static ArithmeticExpr ConstantOp(std::string output, Op op, std::string left,
                                   double constant) {
    ArithmeticExpr e;
    e.output_name = std::move(output);
    e.op = op;
    e.left_column = std::move(left);
    e.right_constant = constant;
    return e;
  }
  /// output = constant - column.
  static ArithmeticExpr ConstantMinusColumn(std::string output, double constant,
                                            std::string column) {
    return ConstantOp(std::move(output), Op::kRsub, std::move(column),
                      constant);
  }
};

/// Aggregate functions supported by the group-by operator.
enum class AggregateFn { kSum, kCount, kMin, kMax, kAvg };

const char* AggregateFnToString(AggregateFn fn);

/// One aggregate: `fn(input_column) AS output_name`. For kCount the input
/// column may be empty (COUNT(*)).
struct AggregateSpec {
  AggregateFn fn = AggregateFn::kSum;
  std::string input_column;
  std::string output_name;
};

/// One ORDER BY key.
struct SortKey {
  std::string column;
  bool ascending = true;
};

}  // namespace hetdb

#endif  // HETDB_OPERATORS_EXPRESSION_H_
