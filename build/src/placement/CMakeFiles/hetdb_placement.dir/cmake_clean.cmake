file(REMOVE_RECURSE
  "CMakeFiles/hetdb_placement.dir/compile_time.cc.o"
  "CMakeFiles/hetdb_placement.dir/compile_time.cc.o.d"
  "CMakeFiles/hetdb_placement.dir/runtime.cc.o"
  "CMakeFiles/hetdb_placement.dir/runtime.cc.o.d"
  "CMakeFiles/hetdb_placement.dir/strategy_runner.cc.o"
  "CMakeFiles/hetdb_placement.dir/strategy_runner.cc.o.d"
  "libhetdb_placement.a"
  "libhetdb_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetdb_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
