#ifndef HETDB_WORKLOAD_USER_SIM_H_
#define HETDB_WORKLOAD_USER_SIM_H_

#include <cstdint>
#include <functional>

#include "common/rng.h"

namespace hetdb {

/// Shared shape of every multi-user experiment in the repo: N concurrent
/// session threads, each looping "do one piece of work, then think". The
/// workload runner, the figure-18/21 parallel-user benches, and the serving
/// bench's closed-loop mode all drive their sessions through this one
/// helper instead of hand-rolling the thread/think/jitter loop.
struct UserLoopOptions {
  int num_users = 1;
  /// Mean think time between a session's queries, milliseconds. 0 = closed
  /// loop at full speed (the paper's Section 6 protocol).
  double think_time_ms = 0;
  /// Seed for the per-user jitter streams; user `u` gets Rng(seed + u), so
  /// runs are reproducible and users are decorrelated.
  uint64_t seed = 42;
};

/// The per-iteration body: one unit of work for session `user`. `rng` is the
/// session's private deterministic stream (for query-mix sampling etc.).
/// Return false to end this session's loop.
using UserLoopBody = std::function<bool(int user, Rng& rng)>;

/// Spawns `options.num_users` session threads, each repeatedly invoking
/// `body` until it returns false, sleeping an exponentially distributed
/// think time (mean `think_time_ms`) between invocations. Joins all
/// sessions before returning. `body` runs concurrently across users — it
/// must be thread-safe.
void RunUserLoops(const UserLoopOptions& options, const UserLoopBody& body);

/// One exponential think-time draw (mean `mean_ms`), for callers that pace
/// sessions themselves. Returns 0 when mean_ms <= 0.
double SampleThinkTimeMs(Rng& rng, double mean_ms);

}  // namespace hetdb

#endif  // HETDB_WORKLOAD_USER_SIM_H_
