#include "storage/column.h"

#include <algorithm>
#include <type_traits>

namespace hetdb {

const char* DataTypeToString(DataType type) {
  switch (type) {
    case DataType::kInt32:
      return "int32";
    case DataType::kInt64:
      return "int64";
    case DataType::kDouble:
      return "double";
    case DataType::kString:
      return "string";
  }
  return "unknown";
}

size_t DataTypeWidth(DataType type) {
  switch (type) {
    case DataType::kInt32:
      return 4;
    case DataType::kInt64:
      return 8;
    case DataType::kDouble:
      return 8;
    case DataType::kString:
      return 4;  // dictionary code
  }
  return 0;
}

template <>
DataType NumericColumn<int32_t>::type() const {
  return DataType::kInt32;
}
template <>
DataType NumericColumn<int64_t>::type() const {
  return DataType::kInt64;
}
template <>
DataType NumericColumn<double>::type() const {
  return DataType::kDouble;
}

namespace {

/// Bits needed for frame-of-reference packing of values in [lo, hi].
int BitsForRange(uint64_t range) {
  int bits = 0;
  while (range > 0) {
    range >>= 1;
    ++bits;
  }
  return bits == 0 ? 1 : bits;
}

size_t PackedBytes(size_t rows, int bits) {
  return (rows * static_cast<size_t>(bits) + 7) / 8 + 16;  // +header
}

}  // namespace

template <typename T>
size_t NumericColumn<T>::compressed_bytes() const {
  if (compressed_bytes_cache_ != 0) return compressed_bytes_cache_;
  if (values_.empty()) return compressed_bytes_cache_ = 16;
  if constexpr (std::is_floating_point_v<T>) {
    // Doubles are not FOR-packed; assume a modest 2:1 byte-level scheme.
    return compressed_bytes_cache_ = data_bytes() / 2 + 16;
  } else {
    const auto [lo, hi] = std::minmax_element(values_.begin(), values_.end());
    const uint64_t range =
        static_cast<uint64_t>(static_cast<int64_t>(*hi) -
                              static_cast<int64_t>(*lo));
    return compressed_bytes_cache_ =
               PackedBytes(values_.size(), BitsForRange(range));
  }
}

template class NumericColumn<int32_t>;
template class NumericColumn<int64_t>;
template class NumericColumn<double>;

size_t StringColumn::compressed_bytes() const {
  const int bits =
      BitsForRange(dictionary_.empty() ? 0 : dictionary_.size() - 1);
  return PackedBytes(codes_.size(), bits) + dictionary_bytes_;
}

std::shared_ptr<StringColumn> StringColumn::FromDictionary(
    std::string name, std::vector<std::string> sorted_dictionary) {
  auto column = std::make_shared<StringColumn>(std::move(name));
  column->dictionary_ = std::move(sorted_dictionary);
  column->order_preserving_ =
      std::is_sorted(column->dictionary_.begin(), column->dictionary_.end());
  for (size_t i = 0; i < column->dictionary_.size(); ++i) {
    column->dictionary_index_[column->dictionary_[i]] =
        static_cast<int32_t>(i);
    column->dictionary_bytes_ += column->dictionary_[i].size();
  }
  return column;
}

void StringColumn::Append(std::string_view value) {
  codes_.push_back(InternValue(value));
}

int32_t StringColumn::InternValue(std::string_view value) {
  auto it = dictionary_index_.find(std::string(value));
  if (it != dictionary_index_.end()) return it->second;
  const int32_t code = static_cast<int32_t>(dictionary_.size());
  if (!dictionary_.empty() && value < dictionary_.back()) {
    order_preserving_ = false;
  }
  dictionary_.emplace_back(value);
  dictionary_index_.emplace(dictionary_.back(), code);
  dictionary_bytes_ += value.size();
  return code;
}

Result<int32_t> StringColumn::CodeFor(std::string_view value) const {
  auto it = dictionary_index_.find(std::string(value));
  if (it == dictionary_index_.end()) {
    return Status::NotFound("no dictionary entry for '" + std::string(value) +
                            "' in column " + name());
  }
  return it->second;
}

int32_t StringColumn::LowerBoundCode(std::string_view value) const {
  HETDB_CHECK(order_preserving_);
  auto it = std::lower_bound(dictionary_.begin(), dictionary_.end(), value);
  return static_cast<int32_t>(it - dictionary_.begin());
}

int32_t StringColumn::UpperBoundCode(std::string_view value) const {
  HETDB_CHECK(order_preserving_);
  auto it = std::upper_bound(dictionary_.begin(), dictionary_.end(), value);
  return static_cast<int32_t>(it - dictionary_.begin());
}

}  // namespace hetdb
