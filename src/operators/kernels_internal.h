#ifndef HETDB_OPERATORS_KERNELS_INTERNAL_H_
#define HETDB_OPERATORS_KERNELS_INTERNAL_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/stopwatch.h"
#include "operators/expression.h"
#include "storage/table.h"
#include "telemetry/telemetry.h"

namespace hetdb {
namespace kernel_internal {

/// Building blocks shared between the per-operator kernels (`kernels.cc`)
/// and the fused pipeline kernel (`fused_pipeline.cc`). Bit-identical
/// results across the scalar, morsel-parallel, and fused paths hinge on all
/// three using the same predicate compilation, value coercions, accumulator
/// updates, and output typing rules — so those live here exactly once.
/// Everything in this namespace is an implementation detail of the operator
/// layer; engine and above use the public kernels in `kernels.h`.

constexpr uint32_t kNoEntry = std::numeric_limits<uint32_t>::max();

/// True when GlobalKernelConfig() selects the morsel-parallel backend.
bool UseParallelBackend();

/// GlobalKernelConfig().morsel_rows, clamped to at least 1.
size_t ConfigMorselRows();

/// splitmix64 finalizer: full-avalanche 64-bit mix. Top bits pick the join
/// partition, low bits the hash-table slot, so the two are independent.
inline uint64_t MixHash(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

template <typename T, typename U>
bool CompareValues(T lhs, CompareOp op, U rhs, U rhs2) {
  switch (op) {
    case CompareOp::kEq:
      return lhs == rhs;
    case CompareOp::kNe:
      return lhs != rhs;
    case CompareOp::kLt:
      return lhs < rhs;
    case CompareOp::kLe:
      return lhs <= rhs;
    case CompareOp::kGt:
      return lhs > rhs;
    case CompareOp::kGe:
      return lhs >= rhs;
    case CompareOp::kBetween:
      return lhs >= rhs && lhs <= rhs2;
  }
  return false;
}

Result<double> ValueAsDouble(const Value& value);
Result<int64_t> ValueAsInt64(const Value& value);

/// Reads an integer join key; fatal if the column is not integer-typed.
int64_t IntKeyAt(const Column& column, size_t row);

/// Reads a numeric column value as double (fatal on string columns).
double NumericAt(const Column& column, size_t row);

/// Copies `rows` of `source` into a fresh column. The output is named
/// `name_override` when non-empty, `source.name()` otherwise.
ColumnPtr GatherColumn(const Column& source, const std::vector<uint32_t>& rows,
                       const std::string& name_override = "");

// ---------------------------------------------------------------------------
// Telemetry
// ---------------------------------------------------------------------------

/// Handles into GlobalKernelMetrics() for one kernel, resolved once (the
/// registry lookup takes a lock; the handles themselves are lock-free).
struct KernelStats {
  Histogram* latency_us;
  Histogram* dop;
  Counter* invocations;
  Counter* morsels;

  explicit KernelStats(const std::string& kernel) {
    MetricRegistry& registry = GlobalKernelMetrics();
    latency_us = &registry.GetHistogram("kernel." + kernel + ".latency_us");
    dop = &registry.GetHistogram("kernel." + kernel + ".dop");
    invocations = &registry.GetCounter("kernel." + kernel + ".invocations");
    morsels = &registry.GetCounter("kernel." + kernel + ".morsels");
  }
};

/// Counts one invocation and records its wall time on destruction.
class KernelTimer {
 public:
  explicit KernelTimer(KernelStats& stats) : stats_(stats) {
    stats_.invocations->Increment();
  }
  ~KernelTimer() { stats_.latency_us->Record(watch_.ElapsedMicros()); }
  KernelTimer(const KernelTimer&) = delete;
  KernelTimer& operator=(const KernelTimer&) = delete;

 private:
  KernelStats& stats_;
  Stopwatch watch_;
};

/// Records one morsel loop: how many morsels it covered and the worker count
/// ParallelFor actually achieved (the degree of parallelism).
void RecordLoop(KernelStats& stats, size_t total, size_t morsel_rows,
                int workers);

// ---------------------------------------------------------------------------
// Compiled predicates
// ---------------------------------------------------------------------------

/// One predicate atom lowered to raw pointers and resolved constants, so the
/// morsel loop evaluates it branch-free (no variant access, no dictionary
/// lookups, no per-row type dispatch).
struct CompiledAtom {
  enum class Kind {
    kInt32Cmp,   ///< int32 column vs int64 constant(s)
    kInt64Cmp,   ///< int64 column vs int64 constant(s)
    kDoubleCmp,  ///< double column vs double constant(s)
    kCodeEq,     ///< string codes == clo
    kCodeNe,     ///< string codes != clo
    kCodeRange,  ///< string codes in [clo, chi)
    kAllRows,    ///< matches every row (Ne of an absent constant)
    kNoRows,     ///< matches no row (Eq of an absent constant)
  };
  Kind kind = Kind::kNoRows;
  CompareOp op = CompareOp::kEq;
  const int32_t* i32 = nullptr;
  const int64_t* i64 = nullptr;
  const double* f64 = nullptr;
  const int32_t* codes = nullptr;
  int64_t ilo = 0, ihi = 0;
  double dlo = 0, dhi = 0;
  int32_t clo = 0, chi = 0;
};

/// Lowers `atom` against `input`. Mirrors the scalar backend exactly: same
/// column lookup, same constant coercions, and the same error statuses in
/// the same order, so all backends fail identically.
Result<CompiledAtom> CompileAtom(const Table& input, const Predicate& atom);

/// Ors `atom` over rows [begin, begin+len) into the morsel-local `out`.
void OrAtomInto(const CompiledAtom& atom, size_t begin, size_t len,
                uint8_t* out);

// ---------------------------------------------------------------------------
// Aggregation accumulators
// ---------------------------------------------------------------------------

/// One aggregate input lowered to a typed pointer.
struct AggInput {
  enum class Kind { kCountStar, kInt32, kInt64, kDouble };
  Kind kind = Kind::kCountStar;
  const int32_t* i32 = nullptr;
  const int64_t* i64 = nullptr;
  const double* f64 = nullptr;
};

AggInput ClassifyAggInput(const ColumnPtr& column, size_t num_rows);

/// Typed accumulator shared by all backends. Integer inputs accumulate in
/// int64 (exact, order-insensitive); double inputs accumulate in double, so
/// the result depends only on the per-group row order — which every backend
/// fixes as ascending input row.
struct Acc {
  int64_t isum = 0;
  double dsum = 0;
  int64_t count = 0;
  int64_t imin = std::numeric_limits<int64_t>::max();
  int64_t imax = std::numeric_limits<int64_t>::min();
  double dmin = std::numeric_limits<double>::infinity();
  double dmax = -std::numeric_limits<double>::infinity();
};

inline void UpdateAcc(const AggInput& input, size_t row, Acc& acc) {
  switch (input.kind) {
    case AggInput::Kind::kCountStar:
      ++acc.count;
      return;
    case AggInput::Kind::kInt32: {
      const int64_t v = input.i32[row];
      acc.isum += v;
      ++acc.count;
      acc.imin = std::min(acc.imin, v);
      acc.imax = std::max(acc.imax, v);
      return;
    }
    case AggInput::Kind::kInt64: {
      const int64_t v = input.i64[row];
      acc.isum += v;
      ++acc.count;
      acc.imin = std::min(acc.imin, v);
      acc.imax = std::max(acc.imax, v);
      return;
    }
    case AggInput::Kind::kDouble: {
      const double v = input.f64[row];
      acc.dsum += v;
      ++acc.count;
      acc.dmin = std::min(acc.dmin, v);
      acc.dmax = std::max(acc.dmax, v);
      return;
    }
  }
}

/// Integer-valued accumulator update (the kInt64 branch of UpdateAcc with
/// the value supplied directly) — used when the input value is computed on
/// the fly instead of read from a materialized column.
inline void UpdateAccInt(int64_t v, Acc& acc) {
  acc.isum += v;
  ++acc.count;
  acc.imin = std::min(acc.imin, v);
  acc.imax = std::max(acc.imax, v);
}

/// Double-valued accumulator update (the kDouble branch of UpdateAcc).
inline void UpdateAccDouble(double v, Acc& acc) {
  acc.dsum += v;
  ++acc.count;
  acc.dmin = std::min(acc.dmin, v);
  acc.dmax = std::max(acc.dmax, v);
}

/// Converts accumulators to output columns; shared so all backends apply
/// the identical typing rules (COUNT and integer SUM/MIN/MAX stay int64,
/// AVG and double inputs produce doubles). Only `inputs[i].kind` is read.
Status AppendAggregateColumns(const std::vector<AggregateSpec>& aggregates,
                              const std::vector<AggInput>& inputs,
                              const std::vector<std::vector<Acc>>& accs,
                              size_t num_groups, Table* output);

}  // namespace kernel_internal
}  // namespace hetdb

#endif  // HETDB_OPERATORS_KERNELS_INTERNAL_H_
