# Empty dependencies file for fig21_latencies_20users.
# This may be replaced when dependencies are built.
