# Empty dependencies file for fig14_scale_tpch.
# This may be replaced when dependencies are built.
