// Figure 1: impact of execution strategy on SSB Q3.3 (scale factor 20).
// CPU-only vs. device with cold cache (all inputs cross the bus) vs. device
// with hot cache. The paper reports the hot device ~2.5x faster than the CPU
// and the cold device ~3x slower.

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "ssb/ssb_queries.h"

using namespace hetdb;
using namespace hetdb::bench;

namespace {

double MeasureQueryMillis(StrategyRunner& runner, const NamedQuery& query,
                          const Database& db) {
  Result<PlanNodePtr> plan = query.builder(db);
  HETDB_CHECK(plan.ok());
  Stopwatch watch;
  Result<TablePtr> result = runner.RunQuery(plan.value());
  HETDB_CHECK(result.ok());
  return watch.ElapsedMillis();
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv);
  const double sf = args.quick ? 10 : 20;

  Banner("Figure 1",
         "SSB Q3.3 at SF " + std::to_string(static_cast<int>(sf)) +
             ": CPU vs GPU (cold cache) vs GPU (hot cache)");

  SsbGeneratorOptions gen;
  args.ApplySeed(gen);
  gen.scale_factor = sf;
  DatabasePtr db = GenerateSsbDatabase(gen);
  const SystemConfig config = PaperConfig(args.time_scale);
  Result<NamedQuery> query = SsbQueryByName("Q3.3");
  HETDB_CHECK(query.ok());

  PrintHeader({"execution", "time[ms]", "h2d[ms]"});

  {
    EngineContext ctx(config, db);
    StrategyRunner runner(&ctx, Strategy::kCpuOnly);
    const double ms = MeasureQueryMillis(runner, query.value(), *db);
    PrintCell("CPU");
    PrintCell(ms);
    PrintCell(0.0);
    EndRow();
  }
  {
    // Cold cache: fresh context, first device execution pays every transfer.
    EngineContext ctx(config, db);
    StrategyRunner runner(&ctx, Strategy::kGpuOnly);
    const double ms = MeasureQueryMillis(runner, query.value(), *db);
    PrintCell("GPU (cold cache)");
    PrintCell(ms);
    PrintCell(ctx.simulator().bus().transfer_micros(
                  TransferDirection::kHostToDevice) *
              config.time_scale / 1000.0);
    EndRow();
  }
  {
    // Hot cache: one warm-up execution loads the cache, then measure.
    EngineContext ctx(config, db);
    StrategyRunner runner(&ctx, Strategy::kGpuOnly);
    MeasureQueryMillis(runner, query.value(), *db);
    ctx.ResetRunStats();
    const double ms = MeasureQueryMillis(runner, query.value(), *db);
    PrintCell("GPU (hot cache)");
    PrintCell(ms);
    PrintCell(ctx.simulator().bus().transfer_micros(
                  TransferDirection::kHostToDevice) *
              config.time_scale / 1000.0);
    EndRow();
  }
  return 0;
}
