# Empty compiler generated dependencies file for fig05_data_driven_thrashing.
# This may be replaced when dependencies are built.
