#include "telemetry/detector.h"

#include <algorithm>
#include <utility>

#include "telemetry/flight_recorder.h"
#include "telemetry/metric_registry.h"
#include "telemetry/trace_recorder.h"

namespace hetdb {

const char* ThrashingDetector::StateName(State state) {
  switch (state) {
    case State::kCalm:
      return "calm";
    case State::kPressure:
      return "pressure";
    case State::kThrashing:
      return "thrashing";
  }
  return "unknown";
}

ThrashingDetector::ThrashingDetector(const Options& options,
                                     MetricRegistry* registry,
                                     FlightRecorder* recorder,
                                     std::string metric_prefix)
    : options_(options),
      registry_(registry),
      recorder_(recorder),
      metric_prefix_(std::move(metric_prefix)) {
  if (registry_ != nullptr) {
    registry_->GetGauge(metric_prefix_ + "thrash.state").Set(0);
  }
}

ThrashingDetector::State ThrashingDetector::Update(const Sample& sample) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!has_previous_) {
    previous_ = sample;
    has_previous_ = true;
    return state_;
  }

  const int64_t d_hits = sample.cache_hits - previous_.cache_hits;
  const int64_t d_misses = sample.cache_misses - previous_.cache_misses;
  const int64_t d_evictions =
      sample.cache_evictions - previous_.cache_evictions;
  const int64_t d_aborts = sample.gpu_aborts - previous_.gpu_aborts;
  const int64_t d_attempts = sample.gpu_attempts - previous_.gpu_attempts;
  const int64_t d_failed_allocs =
      sample.failed_allocations - previous_.failed_allocations;
  previous_ = sample;

  Signals signals;
  if (sample.heap_capacity_bytes > 0) {
    signals.heap_pressure = static_cast<double>(sample.heap_used_bytes) /
                            static_cast<double>(sample.heap_capacity_bytes);
  }
  const int64_t accesses = d_hits + d_misses;
  if (accesses > 0) {
    signals.eviction_churn =
        static_cast<double>(d_evictions) / static_cast<double>(accesses);
  }
  if (d_attempts > 0) {
    signals.abort_ratio =
        static_cast<double>(d_aborts) / static_cast<double>(d_attempts);
  }
  signals.heap_signal = signals.heap_pressure >=
                            options_.heap_pressure_threshold ||
                        d_failed_allocs > 0;
  // Cold-start gate on *cumulative* accesses: per-window counts can be tiny
  // (the fig-2 workload touches one column per query), but churn across those
  // small windows is exactly the thrashing pattern to catch.
  const int64_t total_accesses = sample.cache_hits + sample.cache_misses;
  signals.churn_signal = accesses > 0 &&
                         total_accesses >= options_.min_cache_accesses &&
                         signals.eviction_churn >=
                             options_.eviction_churn_threshold;
  signals.abort_signal =
      d_attempts > 0 && signals.abort_ratio >= options_.abort_ratio_threshold;
  last_signals_ = signals;

  const int firing = (signals.heap_signal ? 1 : 0) +
                     (signals.churn_signal ? 1 : 0) +
                     (signals.abort_signal ? 1 : 0);
  State observed = State::kCalm;
  if (firing >= 2 || signals.abort_signal) {
    observed = State::kThrashing;
  } else if (firing == 1) {
    observed = State::kPressure;
  }

  // Streak hysteresis: escalate only after `escalate_updates` consecutive
  // windows at or above a higher state; de-escalate (one level at a time)
  // only after `calm_updates` consecutive windows strictly below the
  // current state.
  if (observed > state_) {
    calm_streak_ = 0;
    if (++escalate_streak_ >= options_.escalate_updates) {
      TransitionLocked(observed);
      escalate_streak_ = 0;
    }
  } else if (observed < state_) {
    escalate_streak_ = 0;
    if (++calm_streak_ >= options_.calm_updates) {
      TransitionLocked(static_cast<State>(static_cast<int>(state_) - 1));
      calm_streak_ = 0;
    }
  } else {
    escalate_streak_ = 0;
    calm_streak_ = 0;
  }
  return state_;
}

void ThrashingDetector::TransitionLocked(State next) {
  const State prev = state_;
  state_ = next;
  ++transitions_;
  if (registry_ != nullptr) {
    registry_->GetGauge(metric_prefix_ + "thrash.state").Set(static_cast<int64_t>(next));
    registry_->GetCounter(metric_prefix_ + "thrash.transitions").Increment();
  }
  if (recorder_ != nullptr) {
    recorder_->RecordStateTransition(metric_prefix_ + "thrash_detector", StateName(prev),
                                     StateName(next));
  }
  if (TraceRecorder::enabled()) {
    RecordInstantEvent(metric_prefix_ + "thrash.state", "engine", 0,
                       {{"from", StateName(prev)}, {"to", StateName(next)}});
  }
}

ThrashingDetector::State ThrashingDetector::state() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return state_;
}

ThrashingDetector::Signals ThrashingDetector::last_signals() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return last_signals_;
}

int64_t ThrashingDetector::transitions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return transitions_;
}

void ThrashingDetector::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  state_ = State::kCalm;
  has_previous_ = false;
  previous_ = Sample{};
  last_signals_ = Signals{};
  escalate_streak_ = 0;
  calm_streak_ = 0;
  if (registry_ != nullptr) {
    registry_->GetGauge(metric_prefix_ + "thrash.state").Set(0);
  }
}

}  // namespace hetdb
