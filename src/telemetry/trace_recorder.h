#ifndef HETDB_TELEMETRY_TRACE_RECORDER_H_
#define HETDB_TELEMETRY_TRACE_RECORDER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace hetdb {

/// One completed trace span ("complete" event, Chrome trace phase `X`).
/// Timestamps are microseconds since the recorder's epoch (process start of
/// tracing), shared across threads so spans align on one timeline.
struct TraceEvent {
  std::string name;            ///< operator label, "H2D transfer", ...
  const char* category = "";   ///< "operator", "transfer", "cache",
                               ///< "placement", "query"
  int64_t ts_micros = 0;       ///< start, relative to the recorder epoch
  int64_t dur_micros = 0;      ///< wall-clock duration (0 for instants)
  uint32_t tid = 0;            ///< recorder-assigned stable thread id
  uint64_t query_id = 0;       ///< engine-global query number (0 = none)
  uint64_t node_id = 0;        ///< plan-node identity (operator spans)
  uint64_t parent_id = 0;      ///< parent plan-node identity (0 = root)
  std::vector<std::pair<std::string, std::string>> args;
};

/// Process-global span recorder with per-thread buffers.
///
/// Disabled (the default), an instrumented site costs exactly one relaxed
/// atomic load — no clock read, no allocation, no lock. Enabled, each span
/// is appended to the recording thread's own buffer under that buffer's
/// (uncontended) mutex; `Snapshot` merges all buffers into one
/// timestamp-ordered event list for export.
///
/// The recorder is global rather than per-EngineContext because spans are
/// emitted from layers that have no context pointer (the PCIe bus, the data
/// cache internals) and because one trace of a whole benchmark process —
/// covering every context it creates — is exactly what Perfetto-style
/// analysis wants.
class TraceRecorder {
 public:
  static TraceRecorder& Global();

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// The one-branch fast path every instrumented site checks first.
  static bool enabled() { return enabled_.load(std::memory_order_relaxed); }
  void SetEnabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }

  /// Microseconds since the recorder epoch (monotonic, thread-safe).
  int64_t NowMicros() const;

  /// Appends a finished event to the calling thread's buffer, stamping its
  /// thread id. Safe from any thread; never blocks on other recorders.
  void Record(TraceEvent event);

  /// Copies every buffered event, merged and sorted by start timestamp.
  std::vector<TraceEvent> Snapshot() const;

  /// Drops all buffered events (thread buffers stay registered).
  void Clear();

  /// Number of threads that have recorded at least one event.
  size_t thread_count() const;

 private:
  struct ThreadBuffer {
    mutable std::mutex mutex;
    std::vector<TraceEvent> events;
    uint32_t tid = 0;
  };

  TraceRecorder();
  ThreadBuffer& LocalBuffer();

  static std::atomic<bool> enabled_;

  const std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mutex_;  // guards buffers_ registration list
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_;
  uint32_t next_tid_ = 1;
};

/// RAII guard emitting one complete span to the global recorder.
///
/// Cheap-when-disabled usage at a hot site:
///
///     TraceSpan span;
///     if (TraceRecorder::enabled()) {
///       span.Begin(node.label(), "operator");   // clock read + strings
///       span.SetQuery(query_id);
///     }
///     ... work ...
///     if (span.active()) span.AddArg("processor", "GPU");
///     // destructor records the event
///
/// The default constructor and the destructor of an inactive span do no
/// work, so the disabled cost is the single `enabled()` branch.
class TraceSpan {
 public:
  TraceSpan() = default;
  /// Convenience for static-name sites: begins immediately iff enabled.
  TraceSpan(const char* name, const char* category) {
    if (TraceRecorder::enabled()) Begin(name, category);
  }
  ~TraceSpan() { End(); }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  void Begin(std::string name, const char* category);
  /// Stamps the duration and records the event; idempotent.
  void End();

  bool active() const { return active_; }
  void SetQuery(uint64_t query_id) {
    if (active_) event_.query_id = query_id;
  }
  void SetNode(uint64_t node_id, uint64_t parent_id) {
    if (active_) {
      event_.node_id = node_id;
      event_.parent_id = parent_id;
    }
  }
  void AddArg(std::string key, std::string value);
  void AddArg(std::string key, int64_t value);

 private:
  bool active_ = false;
  TraceEvent event_;
};

/// Records a zero-duration event (placement decisions, cache evictions).
/// Call only after checking `TraceRecorder::enabled()`.
void RecordInstantEvent(
    std::string name, const char* category, uint64_t query_id = 0,
    std::vector<std::pair<std::string, std::string>> args = {});

}  // namespace hetdb

#endif  // HETDB_TELEMETRY_TRACE_RECORDER_H_
