#ifndef HETDB_TELEMETRY_TELEMETRY_H_
#define HETDB_TELEMETRY_TELEMETRY_H_

#include <cstdint>
#include <string>

#include "telemetry/metric_registry.h"
#include "telemetry/trace_recorder.h"

namespace hetdb {

/// Per-EngineContext telemetry bundle: a MetricRegistry for counters,
/// gauges, and histograms, plus typed recorders for the engine's core
/// workload counters (the former `WorkloadMetrics`, now backed by named
/// registry counters so they appear in metrics exports alongside everything
/// else).
///
/// Tracing is process-global (`TraceRecorder::Global()`) — see
/// trace_recorder.h for why — so `Telemetry` only exposes it for
/// convenience; metrics are per-context and reset per workload run. These
/// back the paper's evaluation:
///
///  * `engine.gpu_operator_aborts` — Figure 13 (aborted device operators);
///  * `engine.wasted_micros` — Figure 20: operator start to abort, summed
///    over aborted device operators;
///  * `workload.latency_us.<query>` histograms — Figures 17, 21, 25 (tails);
///  * transfer time/bytes are read from the PcieBus (Figures 6, 15, 19).
class Telemetry {
 public:
  Telemetry();
  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  MetricRegistry& registry() { return registry_; }
  const MetricRegistry& registry() const { return registry_; }
  static TraceRecorder& recorder() { return TraceRecorder::Global(); }

  /// Engine-global monotonically increasing query number, used to stamp
  /// trace spans of one query's operators with a shared id.
  static uint64_t NextQueryId();

  // --- Workload counter API (drop-in for the former WorkloadMetrics) -------
  /// `device` keys the per-device breakdown counters; the aggregate
  /// counters above always advance too, so single-device readers see
  /// unchanged totals.
  void RecordGpuAbort(int64_t wasted_micros, int device = 0) {
    gpu_operator_aborts_->Increment();
    wasted_micros_->Increment(wasted_micros);
    DeviceCounter("engine.gpu_operator_aborts", device).Increment();
  }
  void RecordOperator(bool on_gpu, int device = 0) {
    (on_gpu ? gpu_operators_ : cpu_operators_)->Increment();
    if (on_gpu) DeviceCounter("engine.gpu_operators", device).Increment();
  }
  void RecordQueryDone() { queries_completed_->Increment(); }

  uint64_t gpu_operator_aborts() const {
    return static_cast<uint64_t>(gpu_operator_aborts_->value());
  }
  int64_t wasted_micros() const { return wasted_micros_->value(); }
  uint64_t cpu_operators() const {
    return static_cast<uint64_t>(cpu_operators_->value());
  }
  uint64_t gpu_operators() const {
    return static_cast<uint64_t>(gpu_operators_->value());
  }
  uint64_t queries_completed() const {
    return static_cast<uint64_t>(queries_completed_->value());
  }

  // Per-device breakdowns (device 0 of a single-device machine matches the
  // aggregates above).
  uint64_t gpu_operators(int device) {
    return static_cast<uint64_t>(
        DeviceCounter("engine.gpu_operators", device).value());
  }
  uint64_t gpu_operator_aborts(int device) {
    return static_cast<uint64_t>(
        DeviceCounter("engine.gpu_operator_aborts", device).value());
  }

  /// Zeroes every metric in the registry (per-run reset).
  void Reset() { registry_.Reset(); }

 private:
  Counter& DeviceCounter(const char* base, int device) {
    return registry_.GetCounter(std::string(base) + ".device" +
                                std::to_string(device));
  }

  MetricRegistry registry_;
  // Cached so the hot recording paths skip the registry map lookup.
  Counter* gpu_operator_aborts_;
  Counter* wasted_micros_;
  Counter* cpu_operators_;
  Counter* gpu_operators_;
  Counter* queries_completed_;
};

/// Process-global registry for the compute kernels' own metrics
/// (`kernel.<name>.latency_us` histograms, `kernel.<name>.morsels` /
/// `.invocations` counters, `kernel.<name>.dop` histograms). The kernels are
/// context-free — every executor and placement strategy shares them — so,
/// like the trace recorder, their instrumentation cannot live on a
/// per-EngineContext registry. Never destroyed (kernels may run during
/// static teardown of benchmarks).
MetricRegistry& GlobalKernelMetrics();

}  // namespace hetdb

#endif  // HETDB_TELEMETRY_TELEMETRY_H_
