// Property-based tests: randomized inputs checked against independent
// scalar reference implementations, parameterized over seeds.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "common/rng.h"
#include "operators/kernels.h"
#include "placement/strategy_runner.h"
#include "tests/test_util.h"

namespace hetdb {
namespace {

/// Random table with an int32 key column (small domain, duplicates), an
/// int32 value column, a double column, and a small-domain string column.
TablePtr RandomTable(uint64_t seed, size_t rows) {
  Rng rng(seed);
  auto table = std::make_shared<Table>("t");
  std::vector<int32_t> key(rows), value(rows);
  std::vector<double> weight(rows);
  auto label = StringColumn::FromDictionary(
      "label", {"alpha", "beta", "gamma", "delta"});
  for (size_t i = 0; i < rows; ++i) {
    key[i] = static_cast<int32_t>(rng.Uniform(0, 20));
    value[i] = static_cast<int32_t>(rng.Uniform(-100, 100));
    weight[i] = rng.NextDouble() * 10;
    label->AppendCode(static_cast<int32_t>(rng.Uniform(0, 3)));
  }
  EXPECT_TRUE(
      table->AddColumn(std::make_shared<Int32Column>("key", std::move(key)))
          .ok());
  EXPECT_TRUE(
      table->AddColumn(std::make_shared<Int32Column>("value", std::move(value)))
          .ok());
  EXPECT_TRUE(table
                  ->AddColumn(std::make_shared<DoubleColumn>(
                      "weight", std::move(weight)))
                  .ok());
  EXPECT_TRUE(table->AddColumn(std::move(label)).ok());
  return table;
}

class SeededTest : public ::testing::TestWithParam<uint64_t> {};

/// Filters match a row-at-a-time reference evaluation for random CNFs.
TEST_P(SeededTest, FilterMatchesScalarReference) {
  Rng rng(GetParam() * 7919 + 13);
  TablePtr table = RandomTable(GetParam(), 500);
  const auto& key =
      ColumnCast<Int32Column>(*table->GetColumn("key").value()).values();
  const auto& value =
      ColumnCast<Int32Column>(*table->GetColumn("value").value()).values();

  for (int round = 0; round < 20; ++round) {
    const int64_t k_lo = rng.Uniform(-2, 22), k_hi = k_lo + rng.Uniform(0, 10);
    const int64_t v_cut = rng.Uniform(-120, 120);
    ConjunctiveFilter filter;
    filter.conjuncts.push_back(
        Disjunction(Predicate::Between("key", k_lo, k_hi)));
    filter.conjuncts.push_back(
        Disjunction{Predicate::Lt("value", v_cut),
                    Predicate::Eq("key", int64_t{3})});
    auto rows = EvaluateFilter(*table, filter);
    ASSERT_TRUE(rows.ok());
    std::vector<uint32_t> expected;
    for (size_t i = 0; i < key.size(); ++i) {
      const bool c1 = key[i] >= k_lo && key[i] <= k_hi;
      const bool c2 = value[i] < v_cut || key[i] == 3;
      if (c1 && c2) expected.push_back(static_cast<uint32_t>(i));
    }
    ASSERT_EQ(rows.value(), expected) << "round " << round;
  }
}

/// Hash join row count equals the nested-loop count; every output pair has
/// equal keys.
TEST_P(SeededTest, JoinMatchesNestedLoopReference) {
  TablePtr build = RandomTable(GetParam(), 60);
  TablePtr probe = RandomTable(GetParam() + 1000, 200);
  JoinOutputSpec spec;
  spec.build_columns = {"key", "value"};
  spec.probe_columns = {"key", "value"};
  spec.build_aliases = {"bk", "bv"};
  spec.probe_aliases = {"pk", "pv"};
  auto joined = HashJoin(*build, "key", *probe, "key", spec, "j");
  ASSERT_TRUE(joined.ok());

  const auto& bkeys =
      ColumnCast<Int32Column>(*build->GetColumn("key").value()).values();
  const auto& pkeys =
      ColumnCast<Int32Column>(*probe->GetColumn("key").value()).values();
  size_t expected_rows = 0;
  for (int32_t b : bkeys) {
    for (int32_t p : pkeys) {
      if (b == p) ++expected_rows;
    }
  }
  EXPECT_EQ(joined.value()->num_rows(), expected_rows);
  const auto& bk =
      ColumnCast<Int32Column>(*joined.value()->GetColumn("bk").value());
  const auto& pk =
      ColumnCast<Int32Column>(*joined.value()->GetColumn("pk").value());
  for (size_t i = 0; i < joined.value()->num_rows(); ++i) {
    ASSERT_EQ(bk.value(i), pk.value(i));
  }
}

/// Group sums add up to the ungrouped total; counts add up to row count.
TEST_P(SeededTest, AggregationIsConsistent) {
  TablePtr table = RandomTable(GetParam(), 777);
  auto grouped = Aggregate(*table, {"label"},
                           {{AggregateFn::kSum, "value", "s"},
                            {AggregateFn::kCount, "", "n"},
                            {AggregateFn::kMin, "value", "lo"},
                            {AggregateFn::kMax, "value", "hi"}},
                           "g");
  ASSERT_TRUE(grouped.ok());
  auto total = Aggregate(*table, {}, {{AggregateFn::kSum, "value", "s"}}, "t");
  ASSERT_TRUE(total.ok());

  const auto& sums =
      ColumnCast<Int64Column>(*grouped.value()->GetColumn("s").value());
  const auto& counts =
      ColumnCast<Int64Column>(*grouped.value()->GetColumn("n").value());
  const auto& lows =
      ColumnCast<Int64Column>(*grouped.value()->GetColumn("lo").value());
  const auto& highs =
      ColumnCast<Int64Column>(*grouped.value()->GetColumn("hi").value());
  int64_t sum_of_sums = 0, sum_of_counts = 0;
  for (size_t g = 0; g < grouped.value()->num_rows(); ++g) {
    sum_of_sums += sums.value(g);
    sum_of_counts += counts.value(g);
    ASSERT_LE(lows.value(g), highs.value(g));
    ASSERT_GE(counts.value(g), 1);
  }
  EXPECT_EQ(sum_of_counts, 777);
  EXPECT_EQ(sum_of_sums,
            ColumnCast<Int64Column>(*total.value()->GetColumn("s").value())
                .value(0));
}

/// Sorting produces an ordered permutation of the input.
TEST_P(SeededTest, SortIsAnOrderedPermutation) {
  TablePtr table = RandomTable(GetParam(), 300);
  auto sorted = Sort(*table, {{"label", true}, {"value", false}}, "s");
  ASSERT_TRUE(sorted.ok());
  ASSERT_EQ(sorted.value()->num_rows(), 300u);

  const auto& label =
      ColumnCast<StringColumn>(*sorted.value()->GetColumn("label").value());
  const auto& value =
      ColumnCast<Int32Column>(*sorted.value()->GetColumn("value").value());
  for (size_t i = 1; i < 300; ++i) {
    const auto prev = label.value(i - 1), curr = label.value(i);
    ASSERT_LE(prev, curr);
    if (prev == curr) ASSERT_GE(value.value(i - 1), value.value(i));
  }
  // Permutation: multiset of values preserved.
  auto multiset_of = [](const Int32Column& column) {
    std::map<int32_t, int> counts;
    for (int32_t v : column.values()) ++counts[v];
    return counts;
  };
  EXPECT_EQ(multiset_of(value),
            multiset_of(ColumnCast<Int32Column>(
                *table->GetColumn("value").value())));
}

/// Projection arithmetic matches scalar arithmetic.
TEST_P(SeededTest, ProjectionMatchesScalarReference) {
  TablePtr table = RandomTable(GetParam(), 250);
  auto projected = Project(
      *table, {},
      {ArithmeticExpr::ColumnOp("vw", ArithmeticExpr::Op::kMul, "value",
                                "weight"),
       ArithmeticExpr::ConstantMinusColumn("inv", 50, "value"),
       ArithmeticExpr::ConstantOp("shift", ArithmeticExpr::Op::kAdd, "value",
                                  7)},
      "p");
  ASSERT_TRUE(projected.ok());
  const auto& value =
      ColumnCast<Int32Column>(*table->GetColumn("value").value()).values();
  const auto& weight =
      ColumnCast<DoubleColumn>(*table->GetColumn("weight").value()).values();
  const auto& vw =
      ColumnCast<DoubleColumn>(*projected.value()->GetColumn("vw").value());
  const auto& inv =
      ColumnCast<Int64Column>(*projected.value()->GetColumn("inv").value());
  const auto& shift =
      ColumnCast<Int64Column>(*projected.value()->GetColumn("shift").value());
  for (size_t i = 0; i < 250; ++i) {
    ASSERT_DOUBLE_EQ(vw.value(i), value[i] * weight[i]);
    ASSERT_EQ(inv.value(i), 50 - value[i]);
    ASSERT_EQ(shift.value(i), value[i] + 7);
  }
}

/// Filter-then-gather equals gather-then-filter on the selected rows
/// (selection pushdown soundness).
TEST_P(SeededTest, FilterCommutesWithGather) {
  TablePtr table = RandomTable(GetParam(), 400);
  ConjunctiveFilter filter =
      ConjunctiveFilter::And({Predicate::Ge("value", int64_t{0})});
  auto rows = EvaluateFilter(*table, filter);
  ASSERT_TRUE(rows.ok());
  auto filtered = GatherRows(*table, rows.value(), "f");
  ASSERT_TRUE(filtered.ok());
  // Re-filtering the filtered table selects everything.
  auto rows2 = EvaluateFilter(*filtered.value(), filter);
  ASSERT_TRUE(rows2.ok());
  EXPECT_EQ(rows2.value().size(), filtered.value()->num_rows());
}

// ---------------------------------------------------------------------------
// Randomized plans on randomized N-device machines vs the CPU reference
// ---------------------------------------------------------------------------

#if defined(__SANITIZE_THREAD__)
#define HETDB_UNDER_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define HETDB_UNDER_TSAN 1
#endif
#endif

/// Plans per seed: each plan spins up fresh engine contexts (the chopping
/// strategies start device worker pools), which TSan instruments heavily —
/// trim the volume there, keep the seed coverage.
#ifdef HETDB_UNDER_TSAN
constexpr int kRandomPlans = 2;
#else
constexpr int kRandomPlans = 5;
#endif

/// Random star-schema database: fact(fk, v) with duplicate foreign keys,
/// dim(key, name) with 16 members. Row count varies with the seed.
DatabasePtr RandomStarDb(uint64_t seed) {
  Rng rng(seed ^ 0x5eedf00dULL);
  auto db = std::make_shared<Database>();
  const size_t rows = static_cast<size_t>(400 + rng.Uniform(0, 600));
  auto fact = std::make_shared<Table>("fact");
  std::vector<int32_t> fk(rows), v(rows);
  for (size_t i = 0; i < rows; ++i) {
    fk[i] = static_cast<int32_t>(rng.Uniform(1, 16));
    v[i] = static_cast<int32_t>(rng.Uniform(-500, 500));
  }
  EXPECT_TRUE(
      fact->AddColumn(std::make_shared<Int32Column>("fk", std::move(fk))).ok());
  EXPECT_TRUE(
      fact->AddColumn(std::make_shared<Int32Column>("v", std::move(v))).ok());
  EXPECT_TRUE(db->AddTable(fact).ok());

  auto dim = std::make_shared<Table>("dim");
  std::vector<int32_t> key(16);
  std::vector<std::string> labels;
  for (int i = 0; i < 16; ++i) labels.push_back("d" + std::to_string(i));
  auto name = StringColumn::FromDictionary("name", labels);
  for (int i = 0; i < 16; ++i) {
    key[i] = i + 1;
    name->AppendCode(i);
  }
  EXPECT_TRUE(
      dim->AddColumn(std::make_shared<Int32Column>("key", std::move(key))).ok());
  EXPECT_TRUE(dim->AddColumn(std::move(name)).ok());
  EXPECT_TRUE(db->AddTable(dim).ok());
  return db;
}

/// Random plan over the star schema: scan, then an independent coin flip for
/// a selection, a dimension join, and an aggregation. Every shape ends in a
/// sort imposing a total order on the output values, so cross-device
/// comparison is insensitive to execution-order permutations.
PlanNodePtr RandomPlan(const DatabasePtr& db, uint64_t seed) {
  Rng rng(seed);
  PlanNodePtr node = std::make_shared<ScanNode>(
      db->GetTable("fact").value(), std::vector<std::string>{"fk", "v"});
  if (rng.Uniform(0, 2) == 0) {
    const int64_t cut = rng.Uniform(-500, 500);
    node = std::make_shared<SelectNode>(
        std::move(node), ConjunctiveFilter::And({Predicate::Lt("v", cut)}));
  }
  bool joined = false;
  if (rng.Uniform(0, 2) == 0) {
    joined = true;
    PlanNodePtr dim_scan = std::make_shared<ScanNode>(
        db->GetTable("dim").value(), std::vector<std::string>{"key", "name"});
    JoinOutputSpec spec;
    spec.build_columns = {"name"};
    spec.probe_columns = {"fk", "v"};
    node = std::make_shared<JoinNode>(std::move(dim_scan), std::move(node),
                                      "key", "fk", spec);
  }
  if (rng.Uniform(0, 2) == 0) {
    const std::string group = joined ? "name" : "fk";
    node = std::make_shared<AggregateNode>(
        std::move(node), std::vector<std::string>{group},
        std::vector<AggregateSpec>{{AggregateFn::kSum, "v", "total"},
                                   {AggregateFn::kCount, "", "n"}});
    return std::make_shared<SortNode>(std::move(node),
                                      std::vector<SortKey>{{group, true}});
  }
  std::vector<SortKey> keys;
  if (joined) keys.push_back({"name", true});
  keys.push_back({"fk", true});
  keys.push_back({"v", true});
  return std::make_shared<SortNode>(std::move(node), std::move(keys));
}

/// The multi-device contract as a property: for random star-schema data and
/// random plan shapes, every placement strategy on every machine size
/// returns exactly the scalar CPU reference result.
TEST_P(SeededTest, RandomPlansMatchCpuReferenceOnAnyDeviceCount) {
  const uint64_t seed = GetParam();
  DatabasePtr db = RandomStarDb(seed);

  SystemConfig reference_config = TestConfig();
  reference_config.device_count = 1;
  for (int plan_index = 0; plan_index < kRandomPlans; ++plan_index) {
    const uint64_t plan_seed =
        seed * 1000003ULL + static_cast<uint64_t>(plan_index);
    TablePtr expected;
    {
      EngineContext ctx(reference_config, db);
      StrategyRunner runner(&ctx, Strategy::kCpuOnly);
      Result<TablePtr> result = runner.RunQuery(RandomPlan(db, plan_seed));
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      expected = result.value();
    }
    // Machine size derived from the seed: anything from 2 to 8 devices.
    const int devices =
        2 + static_cast<int>((seed + static_cast<uint64_t>(plan_index)) % 7);
    SystemConfig config = TestConfig();
    config.device_count = devices;
    for (Strategy strategy : {Strategy::kGpuOnly, Strategy::kRunTime,
                              Strategy::kDataDrivenChopping}) {
      EngineContext ctx(config, db);
      StrategyRunner runner(&ctx, strategy);
      runner.RefreshDataPlacement();
      Result<TablePtr> result = runner.RunQuery(RandomPlan(db, plan_seed));
      ASSERT_TRUE(result.ok())
          << StrategyToString(strategy) << " x" << devices << " plan "
          << plan_index << ": " << result.status().ToString();
      EXPECT_TRUE(TablesEqual(*expected, *result.value()))
          << StrategyToString(strategy) << " x" << devices << " plan "
          << plan_index;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace hetdb
