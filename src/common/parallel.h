#ifndef HETDB_COMMON_PARALLEL_H_
#define HETDB_COMMON_PARALLEL_H_

#include <atomic>
#include <cstddef>
#include <functional>

namespace hetdb {

/// Process-global degree-of-parallelism token budget.
///
/// Both sources of host parallelism — the ChoppingExecutor's per-processor
/// worker pools (inter-operator) and the morsel scheduler's kernel helpers
/// (intra-operator) — draw from this one pool so their sum never
/// oversubscribes the machine: an idle system gives one big kernel every
/// core, while a loaded chopping pool starves kernels down to their calling
/// thread. Acquisition never blocks; a caller that gets fewer tokens than
/// requested simply runs with less parallelism (the calling thread always
/// participates, so forward progress never depends on tokens).
class DopBudget {
 public:
  /// Capacity defaults to std::thread::hardware_concurrency().
  static DopBudget& Global();

  explicit DopBudget(int capacity);

  /// Resizes the pool. Outstanding tokens are honoured: shrinking below the
  /// number of tokens currently held lets the pool drain naturally.
  void SetCapacity(int capacity);
  int capacity() const { return capacity_.load(std::memory_order_relaxed); }
  int available() const { return available_.load(std::memory_order_relaxed); }

  /// Takes up to `want` tokens without blocking; returns how many were taken.
  int TryAcquire(int want);
  void Release(int count);

  /// RAII holder for zero-or-one token (used by executor worker threads
  /// while they run an operator).
  class Token {
   public:
    Token() = default;
    explicit Token(DopBudget* budget)
        : budget_(budget), held_(budget->TryAcquire(1) == 1) {}
    ~Token() { Reset(); }
    Token(Token&& other) noexcept
        : budget_(other.budget_), held_(other.held_) {
      other.held_ = false;
    }
    Token& operator=(Token&& other) noexcept {
      if (this != &other) {
        Reset();
        budget_ = other.budget_;
        held_ = other.held_;
        other.held_ = false;
      }
      return *this;
    }
    Token(const Token&) = delete;
    Token& operator=(const Token&) = delete;
    bool held() const { return held_; }

   private:
    void Reset() {
      if (held_) budget_->Release(1);
      held_ = false;
    }
    DopBudget* budget_ = nullptr;
    bool held_ = false;
  };

 private:
  std::atomic<int> capacity_;
  std::atomic<int> available_;
};

/// Body of a morsel loop: processes rows [begin, end). `worker` is a dense
/// index in [0, dop) unique to this invocation — kernels use it to address
/// per-worker scratch buffers. Worker 0 is always the calling thread.
using MorselFn = std::function<void(size_t begin, size_t end, int worker)>;

/// Runs `fn` over [0, total) in morsels of `morsel_rows` rows.
///
/// The range is split into one contiguous shard per worker; each worker
/// drains its own shard morsel-by-morsel (atomic cursor) and then steals
/// morsels from the other shards' cursors — the classic morsel-driven
/// work-stealing loop, keeping a worker's accesses contiguous until load
/// imbalance actually materializes. Helper threads come from a lazily grown
/// process-global arena and are admitted only up to the tokens obtainable
/// from DopBudget::Global(); the calling thread always participates, so the
/// call completes even when the budget is exhausted.
///
/// `max_dop` caps the workers for this call; 0 uses
/// GlobalKernelConfig().max_dop (which in turn defaults to the budget's
/// capacity). Returns the number of workers that participated (>= 1).
///
/// Every morsel is processed exactly once, and `fn` invocations for
/// different morsels may run concurrently — the caller must ensure disjoint
/// writes. All writes made by `fn` are visible to the caller on return.
/// Invocations are always morsel-aligned: `begin` is a multiple of
/// `morsel_rows` and `end - begin <= morsel_rows`, so `begin / morsel_rows`
/// is a stable morsel index kernels can key per-morsel state on.
int ParallelFor(size_t total, size_t morsel_rows, const MorselFn& fn,
                int max_dop = 0);

/// Upper bound on the worker count a ParallelFor over `total` rows could use
/// (same clamping as ParallelFor, ignoring current token availability).
/// Kernels size per-worker scratch with this before starting the loop.
int MaxParallelWorkers(size_t total, size_t morsel_rows, int max_dop = 0);

/// Thread-local DoP ceiling, applied on top of whatever `max_dop` /
/// GlobalKernelConfig() resolve to, for every ParallelFor issued by this
/// thread while the scope is open. Lets a supervisor (the brownout
/// controller's L1 level) throttle one query's intra-operator parallelism
/// without mutating the process-global kernel config under other queries.
/// Nests: the innermost scope's cap wins only if it is tighter.
class ScopedDopCap {
 public:
  explicit ScopedDopCap(int cap);
  ~ScopedDopCap();
  ScopedDopCap(const ScopedDopCap&) = delete;
  ScopedDopCap& operator=(const ScopedDopCap&) = delete;

  /// The cap active on this thread; 0 means uncapped.
  static int current();

 private:
  int previous_;
};

}  // namespace hetdb

#endif  // HETDB_COMMON_PARALLEL_H_
