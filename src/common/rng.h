#ifndef HETDB_COMMON_RNG_H_
#define HETDB_COMMON_RNG_H_

#include <cstdint>
#include <limits>

namespace hetdb {

/// Deterministic, seedable 64-bit PRNG (xorshift128+ seeded via splitmix64).
///
/// Used by the SSB/TPC-H data generators and the property-based tests so that
/// every run of the benchmark suite operates on bit-identical databases.
/// std::mt19937 would also be deterministic, but its state is large and its
/// distributions are not guaranteed identical across standard libraries;
/// this generator is fully self-contained.
class Rng {
 public:
  explicit Rng(uint64_t seed) { Seed(seed); }

  void Seed(uint64_t seed) {
    // splitmix64 to spread a (possibly small) seed over the full state.
    auto next = [&seed]() {
      seed += 0x9e3779b97f4a7c15ULL;
      uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      return z ^ (z >> 31);
    };
    s0_ = next();
    s1_ = next();
    if (s0_ == 0 && s1_ == 0) s1_ = 1;  // all-zero state is absorbing
  }

  /// Uniform over the full 64-bit range.
  uint64_t Next() {
    uint64_t x = s0_;
    const uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t Uniform(int64_t lo, int64_t hi) {
    const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    if (span == 0) return static_cast<int64_t>(Next());  // full range
    return lo + static_cast<int64_t>(Next() % span);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli draw with probability p of returning true.
  bool NextBool(double p) { return NextDouble() < p; }

 private:
  uint64_t s0_ = 0;
  uint64_t s1_ = 0;
};

}  // namespace hetdb

#endif  // HETDB_COMMON_RNG_H_
