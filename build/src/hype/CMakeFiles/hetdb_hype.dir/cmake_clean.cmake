file(REMOVE_RECURSE
  "CMakeFiles/hetdb_hype.dir/cost_model.cc.o"
  "CMakeFiles/hetdb_hype.dir/cost_model.cc.o.d"
  "libhetdb_hype.a"
  "libhetdb_hype.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetdb_hype.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
