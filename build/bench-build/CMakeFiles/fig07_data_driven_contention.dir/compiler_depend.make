# Empty compiler generated dependencies file for fig07_data_driven_contention.
# This may be replaced when dependencies are built.
