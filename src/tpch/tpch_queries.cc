#include "tpch/tpch_queries.h"

#include <utility>

#include "common/logging.h"

namespace hetdb {

namespace {

Result<PlanNodePtr> Scan(const Database& db, const std::string& table,
                         std::vector<std::string> columns) {
  HETDB_ASSIGN_OR_RETURN(TablePtr t, db.GetTable(table));
  return PlanNodePtr(std::make_shared<ScanNode>(t, std::move(columns)));
}

PlanNodePtr Select(PlanNodePtr child, ConjunctiveFilter filter) {
  return std::make_shared<SelectNode>(std::move(child), std::move(filter));
}

PlanNodePtr Join(PlanNodePtr build, PlanNodePtr probe, std::string build_key,
                 std::string probe_key, JoinOutputSpec spec) {
  return std::make_shared<JoinNode>(std::move(build), std::move(probe),
                                    std::move(build_key), std::move(probe_key),
                                    std::move(spec));
}

PlanNodePtr Project(PlanNodePtr child, std::vector<std::string> keep,
                    std::vector<ArithmeticExpr> exprs) {
  return std::make_shared<ProjectNode>(std::move(child), std::move(keep),
                                       std::move(exprs));
}

PlanNodePtr Agg(PlanNodePtr child, std::vector<std::string> group_by,
                std::vector<AggregateSpec> aggs) {
  return std::make_shared<AggregateNode>(std::move(child), std::move(group_by),
                                         std::move(aggs));
}

PlanNodePtr OrderBy(PlanNodePtr child, std::vector<SortKey> keys) {
  return std::make_shared<SortNode>(std::move(child), std::move(keys));
}

PlanNodePtr Limit(PlanNodePtr child, size_t n) {
  return std::make_shared<LimitNode>(std::move(child), n);
}

JoinOutputSpec Out(std::vector<std::string> build,
                   std::vector<std::string> probe,
                   std::vector<std::string> build_aliases = {},
                   std::vector<std::string> probe_aliases = {}) {
  JoinOutputSpec spec;
  spec.build_columns = std::move(build);
  spec.probe_columns = std::move(probe);
  spec.build_aliases = std::move(build_aliases);
  spec.probe_aliases = std::move(probe_aliases);
  return spec;
}

AggregateSpec Sum(std::string input, std::string output) {
  return AggregateSpec{AggregateFn::kSum, std::move(input), std::move(output)};
}

AggregateSpec CountAll(std::string output) {
  return AggregateSpec{AggregateFn::kCount, "", std::move(output)};
}

/// revenue = l_extendedprice * (100 - l_discount): two stacked projections
/// (the second references the first's output). Keeps `carry` columns.
PlanNodePtr RevenueExpr(PlanNodePtr child, std::vector<std::string> carry,
                        const std::string& output_name) {
  std::vector<std::string> keep1 = carry;
  keep1.push_back("l_extendedprice");
  PlanNodePtr p1 = Project(
      std::move(child), std::move(keep1),
      {ArithmeticExpr::ConstantMinusColumn("disc100", 100, "l_discount")});
  return Project(std::move(p1), std::move(carry),
                 {ArithmeticExpr::ColumnOp(output_name,
                                           ArithmeticExpr::Op::kMul,
                                           "l_extendedprice", "disc100")});
}

// --- Q2: minimum-cost supplier -------------------------------------------------

/// Candidate rows: (ps_partkey, ps_supplycost, s_acctbal, n_name) for
/// European suppliers of size-15 BRASS parts.
Result<PlanNodePtr> Q2Candidates(const Database& db) {
  HETDB_ASSIGN_OR_RETURN(PlanNodePtr region,
                         Scan(db, "region", {"r_regionkey", "r_name"}));
  PlanNodePtr region_f = Select(
      std::move(region), ConjunctiveFilter::And({Predicate::Eq("r_name",
                                                               "EUROPE")}));
  HETDB_ASSIGN_OR_RETURN(
      PlanNodePtr nation,
      Scan(db, "nation", {"n_nationkey", "n_name", "n_regionkey"}));
  PlanNodePtr jn = Join(std::move(region_f), std::move(nation), "r_regionkey",
                        "n_regionkey", Out({}, {"n_nationkey", "n_name"}));
  HETDB_ASSIGN_OR_RETURN(
      PlanNodePtr supplier,
      Scan(db, "supplier", {"s_suppkey", "s_nationkey", "s_acctbal"}));
  PlanNodePtr js =
      Join(std::move(jn), std::move(supplier), "n_nationkey", "s_nationkey",
           Out({"n_name"}, {"s_suppkey", "s_acctbal"}));
  HETDB_ASSIGN_OR_RETURN(
      PlanNodePtr partsupp,
      Scan(db, "partsupp", {"ps_partkey", "ps_suppkey", "ps_supplycost"}));
  PlanNodePtr jps = Join(std::move(js), std::move(partsupp), "s_suppkey",
                         "ps_suppkey",
                         Out({"n_name", "s_acctbal"},
                             {"ps_partkey", "ps_supplycost"}));
  HETDB_ASSIGN_OR_RETURN(PlanNodePtr part,
                         Scan(db, "part", {"p_partkey", "p_size", "p_type3"}));
  PlanNodePtr part_f = Select(
      std::move(part),
      ConjunctiveFilter::And({Predicate::Eq("p_size", int64_t{15}),
                              Predicate::Eq("p_type3", "BRASS")}));
  return Join(std::move(part_f), std::move(jps), "p_partkey", "ps_partkey",
              Out({}, {"n_name", "s_acctbal", "ps_partkey", "ps_supplycost"}));
}

Result<PlanNodePtr> Q2(const Database& db) {
  // Aggregate side: min supplycost per part, over a duplicate candidate tree
  // (plans are trees, not DAGs; the duplication is documented in the header).
  HETDB_ASSIGN_OR_RETURN(PlanNodePtr cand_for_min, Q2Candidates(db));
  PlanNodePtr min_agg =
      Agg(std::move(cand_for_min), {"ps_partkey"},
          {AggregateSpec{AggregateFn::kMin, "ps_supplycost", "min_sc"}});
  PlanNodePtr min_key1 =
      Project(std::move(min_agg), {"min_sc"},
              {ArithmeticExpr::ConstantOp("kb", ArithmeticExpr::Op::kMul,
                                          "ps_partkey", 100000)});
  PlanNodePtr min_keyed =
      Project(std::move(min_key1), {},
              {ArithmeticExpr::ColumnOp("minkey", ArithmeticExpr::Op::kAdd,
                                        "kb", "min_sc")});

  HETDB_ASSIGN_OR_RETURN(PlanNodePtr candidates, Q2Candidates(db));
  PlanNodePtr cand_key1 =
      Project(std::move(candidates),
              {"n_name", "s_acctbal", "ps_partkey", "ps_supplycost"},
              {ArithmeticExpr::ConstantOp("kb2", ArithmeticExpr::Op::kMul,
                                          "ps_partkey", 100000)});
  PlanNodePtr cand_keyed =
      Project(std::move(cand_key1), {"n_name", "s_acctbal", "ps_partkey"},
              {ArithmeticExpr::ColumnOp("candkey", ArithmeticExpr::Op::kAdd,
                                        "kb2", "ps_supplycost")});

  PlanNodePtr joined =
      Join(std::move(min_keyed), std::move(cand_keyed), "minkey", "candkey",
           Out({}, {"s_acctbal", "n_name", "ps_partkey"}));
  PlanNodePtr sorted =
      OrderBy(std::move(joined),
              {{"s_acctbal", false}, {"n_name", true}, {"ps_partkey", true}});
  return Limit(std::move(sorted), 100);
}

// --- Q3: shipping priority ------------------------------------------------------

Result<PlanNodePtr> Q3(const Database& db) {
  HETDB_ASSIGN_OR_RETURN(PlanNodePtr customer,
                         Scan(db, "customer", {"c_custkey", "c_mktsegment"}));
  PlanNodePtr customer_f =
      Select(std::move(customer),
             ConjunctiveFilter::And({Predicate::Eq("c_mktsegment",
                                                   "BUILDING")}));
  HETDB_ASSIGN_OR_RETURN(
      PlanNodePtr orders,
      Scan(db, "orders",
           {"o_orderkey", "o_custkey", "o_orderdate", "o_shippriority"}));
  PlanNodePtr orders_f = Select(
      std::move(orders),
      ConjunctiveFilter::And({Predicate::Lt("o_orderdate", int64_t{19950315})}));
  PlanNodePtr j1 =
      Join(std::move(customer_f), std::move(orders_f), "c_custkey",
           "o_custkey", Out({}, {"o_orderkey", "o_orderdate",
                                 "o_shippriority"}));
  HETDB_ASSIGN_OR_RETURN(
      PlanNodePtr lineitem,
      Scan(db, "lineitem",
           {"l_orderkey", "l_extendedprice", "l_discount", "l_shipdate"}));
  PlanNodePtr lineitem_f = Select(
      std::move(lineitem),
      ConjunctiveFilter::And({Predicate::Gt("l_shipdate", int64_t{19950315})}));
  PlanNodePtr j2 =
      Join(std::move(j1), std::move(lineitem_f), "o_orderkey", "l_orderkey",
           Out({"o_orderkey", "o_orderdate", "o_shippriority"},
               {"l_extendedprice", "l_discount"}));
  PlanNodePtr rev = RevenueExpr(
      std::move(j2), {"o_orderkey", "o_orderdate", "o_shippriority"}, "rev");
  PlanNodePtr agg = Agg(std::move(rev),
                        {"o_orderkey", "o_orderdate", "o_shippriority"},
                        {Sum("rev", "revenue")});
  PlanNodePtr sorted =
      OrderBy(std::move(agg), {{"revenue", false}, {"o_orderdate", true}});
  return Limit(std::move(sorted), 10);
}

// --- Q4: order priority checking -------------------------------------------------

Result<PlanNodePtr> Q4(const Database& db) {
  HETDB_ASSIGN_OR_RETURN(
      PlanNodePtr lineitem,
      Scan(db, "lineitem", {"l_orderkey", "l_commitdate", "l_receiptdate"}));
  // EXISTS(l_commitdate < l_receiptdate): cross-column compare via projected
  // difference, then dedup order keys with a group-by (semi-join rewrite).
  PlanNodePtr late = Project(
      std::move(lineitem), {"l_orderkey"},
      {ArithmeticExpr::ColumnOp("late_days", ArithmeticExpr::Op::kSub,
                                "l_receiptdate", "l_commitdate")});
  PlanNodePtr late_f = Select(
      std::move(late),
      ConjunctiveFilter::And({Predicate::Gt("late_days", int64_t{0})}));
  PlanNodePtr keys = Agg(std::move(late_f), {"l_orderkey"},
                         {CountAll("late_lines")});
  HETDB_ASSIGN_OR_RETURN(
      PlanNodePtr orders,
      Scan(db, "orders", {"o_orderkey", "o_orderdate", "o_orderpriority"}));
  PlanNodePtr orders_f =
      Select(std::move(orders),
             ConjunctiveFilter::And({Predicate::Between(
                 "o_orderdate", int64_t{19930701}, int64_t{19930930})}));
  PlanNodePtr joined = Join(std::move(keys), std::move(orders_f), "l_orderkey",
                            "o_orderkey", Out({}, {"o_orderpriority"}));
  PlanNodePtr agg = Agg(std::move(joined), {"o_orderpriority"},
                        {CountAll("order_count")});
  return OrderBy(std::move(agg), {{"o_orderpriority", true}});
}

// --- Q5: local supplier volume ----------------------------------------------------

Result<PlanNodePtr> Q5(const Database& db) {
  HETDB_ASSIGN_OR_RETURN(PlanNodePtr region,
                         Scan(db, "region", {"r_regionkey", "r_name"}));
  PlanNodePtr region_f = Select(
      std::move(region), ConjunctiveFilter::And({Predicate::Eq("r_name",
                                                               "ASIA")}));
  HETDB_ASSIGN_OR_RETURN(
      PlanNodePtr nation,
      Scan(db, "nation", {"n_nationkey", "n_name", "n_regionkey"}));
  PlanNodePtr jn = Join(std::move(region_f), std::move(nation), "r_regionkey",
                        "n_regionkey", Out({}, {"n_nationkey", "n_name"}));
  HETDB_ASSIGN_OR_RETURN(PlanNodePtr customer,
                         Scan(db, "customer", {"c_custkey", "c_nationkey"}));
  PlanNodePtr jc =
      Join(std::move(jn), std::move(customer), "n_nationkey", "c_nationkey",
           Out({"n_nationkey", "n_name"}, {"c_custkey"}));
  HETDB_ASSIGN_OR_RETURN(
      PlanNodePtr orders,
      Scan(db, "orders", {"o_orderkey", "o_custkey", "o_orderdate"}));
  PlanNodePtr orders_f =
      Select(std::move(orders),
             ConjunctiveFilter::And({Predicate::Between(
                 "o_orderdate", int64_t{19940101}, int64_t{19941231})}));
  PlanNodePtr jo =
      Join(std::move(jc), std::move(orders_f), "c_custkey", "o_custkey",
           Out({"n_nationkey", "n_name"}, {"o_orderkey"}));
  HETDB_ASSIGN_OR_RETURN(
      PlanNodePtr lineitem,
      Scan(db, "lineitem",
           {"l_orderkey", "l_suppkey", "l_extendedprice", "l_discount"}));
  PlanNodePtr jl =
      Join(std::move(jo), std::move(lineitem), "o_orderkey", "l_orderkey",
           Out({"n_nationkey", "n_name"},
               {"l_suppkey", "l_extendedprice", "l_discount"}));
  HETDB_ASSIGN_OR_RETURN(PlanNodePtr supplier,
                         Scan(db, "supplier", {"s_suppkey", "s_nationkey"}));
  PlanNodePtr js =
      Join(std::move(supplier), std::move(jl), "s_suppkey", "l_suppkey",
           Out({"s_nationkey"},
               {"n_nationkey", "n_name", "l_extendedprice", "l_discount"}));
  // Enforce the "local supplier" condition c_nationkey == s_nationkey.
  PlanNodePtr diff = Project(
      std::move(js), {"n_name", "l_extendedprice", "l_discount"},
      {ArithmeticExpr::ColumnOp("nkdiff", ArithmeticExpr::Op::kSub,
                                "s_nationkey", "n_nationkey")});
  PlanNodePtr local = Select(
      std::move(diff),
      ConjunctiveFilter::And({Predicate::Eq("nkdiff", int64_t{0})}));
  PlanNodePtr rev = RevenueExpr(std::move(local), {"n_name"}, "rev");
  PlanNodePtr agg = Agg(std::move(rev), {"n_name"}, {Sum("rev", "revenue")});
  return OrderBy(std::move(agg), {{"revenue", false}});
}

// --- Q6: forecasting revenue change ------------------------------------------------

Result<PlanNodePtr> Q6(const Database& db) {
  HETDB_ASSIGN_OR_RETURN(
      PlanNodePtr lineitem,
      Scan(db, "lineitem",
           {"l_shipdate", "l_discount", "l_quantity", "l_extendedprice"}));
  PlanNodePtr filtered =
      Select(std::move(lineitem),
             ConjunctiveFilter::And(
                 {Predicate::Between("l_shipdate", int64_t{19940101},
                                     int64_t{19941231}),
                  Predicate::Between("l_discount", int64_t{5}, int64_t{7}),
                  Predicate::Lt("l_quantity", int64_t{24})}));
  PlanNodePtr rev = Project(
      std::move(filtered), {},
      {ArithmeticExpr::ColumnOp("rev", ArithmeticExpr::Op::kMul,
                                "l_extendedprice", "l_discount")});
  return Agg(std::move(rev), {}, {Sum("rev", "revenue")});
}

// --- Q7: volume shipping -------------------------------------------------------------

ConjunctiveFilter NationPairFilter() {
  ConjunctiveFilter filter;
  filter.conjuncts.push_back(Disjunction{Predicate::Eq("n_name", "FRANCE"),
                                         Predicate::Eq("n_name", "GERMANY")});
  return filter;
}

Result<PlanNodePtr> Q7(const Database& db) {
  // Supplier side.
  HETDB_ASSIGN_OR_RETURN(PlanNodePtr n1,
                         Scan(db, "nation", {"n_nationkey", "n_name"}));
  PlanNodePtr n1_f = Select(std::move(n1), NationPairFilter());
  HETDB_ASSIGN_OR_RETURN(PlanNodePtr supplier,
                         Scan(db, "supplier", {"s_suppkey", "s_nationkey"}));
  PlanNodePtr jn1 =
      Join(std::move(n1_f), std::move(supplier), "n_nationkey", "s_nationkey",
           Out({"n_name", "n_nationkey"}, {"s_suppkey"},
               {"supp_nation", "supp_nkey"}, {}));
  HETDB_ASSIGN_OR_RETURN(
      PlanNodePtr lineitem,
      Scan(db, "lineitem", {"l_orderkey", "l_suppkey", "l_shipdate",
                            "l_shipyear", "l_extendedprice", "l_discount"}));
  PlanNodePtr lineitem_f =
      Select(std::move(lineitem),
             ConjunctiveFilter::And({Predicate::Between(
                 "l_shipdate", int64_t{19950101}, int64_t{19961231})}));
  PlanNodePtr jl =
      Join(std::move(jn1), std::move(lineitem_f), "s_suppkey", "l_suppkey",
           Out({"supp_nation", "supp_nkey"},
               {"l_orderkey", "l_shipyear", "l_extendedprice", "l_discount"}));

  // Customer side.
  HETDB_ASSIGN_OR_RETURN(PlanNodePtr n2,
                         Scan(db, "nation", {"n_nationkey", "n_name"}));
  PlanNodePtr n2_f = Select(std::move(n2), NationPairFilter());
  HETDB_ASSIGN_OR_RETURN(PlanNodePtr customer,
                         Scan(db, "customer", {"c_custkey", "c_nationkey"}));
  PlanNodePtr jn2 =
      Join(std::move(n2_f), std::move(customer), "n_nationkey", "c_nationkey",
           Out({"n_name", "n_nationkey"}, {"c_custkey"},
               {"cust_nation", "cust_nkey"}, {}));
  HETDB_ASSIGN_OR_RETURN(PlanNodePtr orders,
                         Scan(db, "orders", {"o_orderkey", "o_custkey"}));
  PlanNodePtr jo =
      Join(std::move(jn2), std::move(orders), "c_custkey", "o_custkey",
           Out({"cust_nation", "cust_nkey"}, {"o_orderkey"}));

  PlanNodePtr joined =
      Join(std::move(jo), std::move(jl), "o_orderkey", "l_orderkey",
           Out({"cust_nation", "cust_nkey"},
               {"supp_nation", "supp_nkey", "l_shipyear", "l_extendedprice",
                "l_discount"}));
  // (FRANCE, GERMANY) or (GERMANY, FRANCE): both sides already restricted to
  // the pair, so it remains to exclude equal nations.
  PlanNodePtr diff = Project(
      std::move(joined),
      {"supp_nation", "cust_nation", "l_shipyear", "l_extendedprice",
       "l_discount"},
      {ArithmeticExpr::ColumnOp("nkdiff", ArithmeticExpr::Op::kSub,
                                "supp_nkey", "cust_nkey")});
  PlanNodePtr pairs = Select(
      std::move(diff),
      ConjunctiveFilter::And({Predicate::Ne("nkdiff", int64_t{0})}));
  PlanNodePtr rev = RevenueExpr(
      std::move(pairs), {"supp_nation", "cust_nation", "l_shipyear"}, "volume");
  PlanNodePtr agg = Agg(std::move(rev),
                        {"supp_nation", "cust_nation", "l_shipyear"},
                        {Sum("volume", "revenue")});
  return OrderBy(std::move(agg), {{"supp_nation", true},
                                  {"cust_nation", true},
                                  {"l_shipyear", true}});
}

}  // namespace

std::vector<NamedQuery> TpchQueries() {
  return {
      {"Q2", Q2}, {"Q3", Q3}, {"Q4", Q4}, {"Q5", Q5}, {"Q6", Q6}, {"Q7", Q7},
  };
}

Result<NamedQuery> TpchQueryByName(const std::string& name) {
  for (NamedQuery& query : TpchQueries()) {
    if (query.name == name) return query;
  }
  return Status::NotFound("no TPC-H query named '" + name + "'");
}

}  // namespace hetdb
