#ifndef HETDB_SSB_SSB_QUERIES_H_
#define HETDB_SSB_SSB_QUERIES_H_

#include <functional>
#include <string>
#include <vector>

#include "operators/plan_node.h"
#include "storage/database.h"

namespace hetdb {

/// A benchmark query: name plus a plan builder. Builders create a fresh plan
/// tree per call, so concurrent user sessions never share execution state.
struct NamedQuery {
  std::string name;
  std::function<Result<PlanNodePtr>(const Database& db)> builder;
};

/// All 13 SSB queries (Q1.1–Q4.3) as physical plan builders, following the
/// O'Neil specification: flight 1 filters the fact table directly, flights
/// 2–4 join 2–4 dimension tables with increasingly selective predicates.
std::vector<NamedQuery> SsbQueries();

/// Looks up one SSB query by name ("Q1.1" ... "Q4.3").
Result<NamedQuery> SsbQueryByName(const std::string& name);

}  // namespace hetdb

#endif  // HETDB_SSB_SSB_QUERIES_H_
