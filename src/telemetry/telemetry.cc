#include "telemetry/telemetry.h"

#include <atomic>

namespace hetdb {

Telemetry::Telemetry()
    : gpu_operator_aborts_(&registry_.GetCounter("engine.gpu_operator_aborts")),
      wasted_micros_(&registry_.GetCounter("engine.wasted_micros")),
      cpu_operators_(&registry_.GetCounter("engine.cpu_operators")),
      gpu_operators_(&registry_.GetCounter("engine.gpu_operators")),
      queries_completed_(&registry_.GetCounter("engine.queries_completed")) {}

uint64_t Telemetry::NextQueryId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

MetricRegistry& GlobalKernelMetrics() {
  static MetricRegistry* registry = new MetricRegistry();
  return *registry;
}

}  // namespace hetdb
