file(REMOVE_RECURSE
  "../bench/fig05_data_driven_thrashing"
  "../bench/fig05_data_driven_thrashing.pdb"
  "CMakeFiles/fig05_data_driven_thrashing.dir/fig05_data_driven_thrashing.cpp.o"
  "CMakeFiles/fig05_data_driven_thrashing.dir/fig05_data_driven_thrashing.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_data_driven_thrashing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
