file(REMOVE_RECURSE
  "../bench/fig09_runtime_placement"
  "../bench/fig09_runtime_placement.pdb"
  "CMakeFiles/fig09_runtime_placement.dir/fig09_runtime_placement.cpp.o"
  "CMakeFiles/fig09_runtime_placement.dir/fig09_runtime_placement.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_runtime_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
