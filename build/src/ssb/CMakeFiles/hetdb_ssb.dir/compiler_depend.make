# Empty compiler generated dependencies file for hetdb_ssb.
# This may be replaced when dependencies are built.
