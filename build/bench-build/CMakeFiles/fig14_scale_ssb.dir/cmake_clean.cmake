file(REMOVE_RECURSE
  "../bench/fig14_scale_ssb"
  "../bench/fig14_scale_ssb.pdb"
  "CMakeFiles/fig14_scale_ssb.dir/fig14_scale_ssb.cpp.o"
  "CMakeFiles/fig14_scale_ssb.dir/fig14_scale_ssb.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_scale_ssb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
