# Empty dependencies file for multi_user_robustness.
# This may be replaced when dependencies are built.
