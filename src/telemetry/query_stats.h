#ifndef HETDB_TELEMETRY_QUERY_STATS_H_
#define HETDB_TELEMETRY_QUERY_STATS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace hetdb {

class QueryStats;
using QueryStatsPtr = std::shared_ptr<QueryStats>;

/// Per-plan-node slice of one query's resource consumption.
///
/// Identity fields (`index`, `parent`, `label`, `op`) are fixed at
/// registration, before execution starts; everything else is a relaxed
/// atomic so chopping workers can attribute concurrently without a latch.
/// Processors are stored as ints (0 = CPU, 1 = GPU, -1 = never ran) so this
/// header stays free of engine/sim dependencies — it is included from the
/// PCIe bus and the device allocator, which sit *below* the operator layer.
struct NodeStats {
  int index = 0;    ///< position in QueryStats::nodes() (pre-order)
  int parent = -1;  ///< parent's index; -1 for the root
  std::string label;
  std::string op;  ///< operator kind ("scan", "join", ...)

  std::atomic<int64_t> rows_in{-1};   ///< -1 until the operator ran
  std::atomic<int64_t> rows_out{-1};
  std::atomic<int64_t> cpu_kernel_micros{0};  ///< modeled kernel time
  std::atomic<int64_t> gpu_kernel_micros{0};
  std::atomic<int64_t> h2d_bytes{0};
  std::atomic<int64_t> d2h_bytes{0};
  std::atomic<int64_t> transfers{0};
  std::atomic<int64_t> cache_hits{0};
  std::atomic<int64_t> cache_misses{0};
  std::atomic<int64_t> device_alloc_bytes{0};  ///< total bytes allocated
  /// Peak *global* device-heap usage observed at this operator's allocation
  /// points (a per-operator view of the heap pressure it ran under).
  std::atomic<int64_t> heap_high_water{0};
  std::atomic<int64_t> queue_wait_micros{0};  ///< ready -> picked up
  std::atomic<int64_t> run_micros{0};         ///< wall time executing
  std::atomic<int64_t> attempts{0};        ///< executions incl. retries (chops)
  std::atomic<int64_t> device_retries{0};  ///< transient-fault device retries
  std::atomic<int64_t> cpu_fallbacks{0};   ///< device abort -> CPU restart
  std::atomic<int> requested{-1};  ///< processor the placer chose
  std::atomic<int> ran_on{-1};     ///< processor that finally ran it
  /// Device the operator finally ran on (-1 for CPU / never ran). Stored as
  /// an int for the same layering reason as `ran_on`.
  std::atomic<int> device{-1};
};

/// Resource attribution for one query execution: per-plan-node NodeStats
/// plus query-level aggregates for the costs that are attributed below the
/// operator layer (PCIe bytes, device-heap high-water mark).
///
/// Lifecycle: nodes are registered single-threaded before execution (one per
/// plan operator, pre-order, keyed by the plan node's address); during
/// execution any number of threads record through the atomic counters; after
/// execution the object is read-only. QueryStats is always held by
/// shared_ptr: device allocations attributed to a query (including ones the
/// data cache keeps alive past query end) capture the shared_ptr, so the
/// free-side hook never observes a dangling object.
///
/// Per-query PCIe bytes and heap usage mirror the sim's global counters
/// exactly: transfer bytes are attributed only when the bus counts them
/// (successful transfers), and heap_high_water records the *global* heap
/// usage at the query's allocation points, captured under the allocator's
/// own mutex. Since the allocator's peak can only move at an allocation,
/// for serially executed queries summed per-query bytes equal the bus
/// totals and the max per-query high-water mark equals the allocator's peak
/// (asserted by the parity tests).
class QueryStats {
 public:
  /// Upper bound on per-device counter slots. Device indices at or above
  /// this clamp into the last slot (never expected in practice; the
  /// simulator models single-digit device counts).
  static constexpr int kMaxDevices = 16;

  QueryStats() = default;
  QueryStats(const QueryStats&) = delete;
  QueryStats& operator=(const QueryStats&) = delete;

  // --- Registration (before execution, single-threaded) --------------------
  /// Registers one plan node. `key` is the node's address (any stable
  /// pointer); `parent_key` must have been registered first (nullptr for the
  /// root). Returns the stats slot for attribution.
  NodeStats* AddNode(const void* key, const void* parent_key, std::string op,
                     std::string label);
  /// The slot registered for `key`, or nullptr.
  NodeStats* Find(const void* key) const;
  const std::vector<std::unique_ptr<NodeStats>>& nodes() const {
    return nodes_;
  }

  void set_query_id(uint64_t id) { query_id_ = id; }
  uint64_t query_id() const { return query_id_; }
  void set_name(std::string name) { name_ = std::move(name); }
  const std::string& name() const { return name_; }

  /// Stamps the submission time (queue-wait and wall-time baseline).
  /// Idempotent (first call wins), so a session layer can stamp a query at
  /// admission-queue entry and the executor's own MarkSubmitted keeps that
  /// earlier baseline — wall time then covers the full client-visible span.
  void MarkSubmitted();
  bool submitted() const {
    return submitted_ != std::chrono::steady_clock::time_point{};
  }
  /// Stamps completion; idempotent (first call wins).
  void MarkFinished(bool ok, const std::string& error = "");
  /// Marks the query rejected at admission (load shedding): finished,
  /// not-ok, with the distinguished `shed` outcome. A shed query never
  /// started, so it must hold no device resources. Idempotent.
  void MarkShed(const std::string& reason);
  bool finished() const { return finished_.load(std::memory_order_acquire); }
  bool ok() const { return ok_.load(std::memory_order_relaxed); }
  bool shed() const { return shed_.load(std::memory_order_relaxed); }
  const std::string& error() const { return error_; }
  /// Submission -> completion wall time (so far, if not finished).
  int64_t wall_micros() const;

  // --- Attribution entry points (thread-safe) ------------------------------
  /// One successful bus transfer. `direction` uses the bus's lane index
  /// (0 = host-to-device, 1 = device-to-host). `node` may be null (e.g. the
  /// final result copy-back, attributed to the query only). `device` is the
  /// PCIe link's device id, feeding the per-device breakdown.
  void OnTransfer(int direction, int64_t bytes, int64_t micros,
                  NodeStats* node, int device = 0);
  /// One successful device-heap allocation of `bytes`, with that allocator's
  /// *device-global* used bytes right after it. Called under the allocator's
  /// mutex, so the observed high-water mark is exact with respect to that
  /// allocator's peak.
  void OnHeapAllocated(int64_t bytes, int64_t global_used_after,
                       NodeStats* node, int device = 0);
  /// One transfer over the dedicated device-to-device interconnect (only
  /// when the machine has one; host-routed D2D shows up as a D2H + H2D pair
  /// on the per-device counters instead).
  void OnD2DTransfer(int64_t bytes, int64_t micros);
  void OnHeapFreed(int64_t bytes);
  void OnCacheAccess(bool hit, NodeStats* node);
  void OnQueueWait(int64_t micros, NodeStats* node);
  void OnRun(int64_t micros, NodeStats* node);

  // --- Query-level aggregates ----------------------------------------------
  int64_t h2d_bytes() const {
    return h2d_bytes_.load(std::memory_order_relaxed);
  }
  int64_t d2h_bytes() const {
    return d2h_bytes_.load(std::memory_order_relaxed);
  }
  int64_t transfer_micros() const {
    return transfer_micros_.load(std::memory_order_relaxed);
  }
  int64_t transfers() const {
    return transfers_.load(std::memory_order_relaxed);
  }
  /// Device-heap bytes this query allocated and has not yet freed (bytes
  /// still held at the end are cache-resident columns it loaded).
  int64_t heap_bytes_held() const {
    return heap_current_.load(std::memory_order_relaxed);
  }
  /// Peak global device-heap usage observed at this query's allocations.
  int64_t heap_high_water() const {
    return heap_high_water_.load(std::memory_order_relaxed);
  }
  int64_t cache_hits() const {
    return cache_hits_.load(std::memory_order_relaxed);
  }
  int64_t cache_misses() const {
    return cache_misses_.load(std::memory_order_relaxed);
  }
  int64_t queue_wait_micros() const {
    return queue_wait_micros_.load(std::memory_order_relaxed);
  }
  int64_t run_micros() const {
    return run_micros_.load(std::memory_order_relaxed);
  }

  // --- Per-device breakdowns (device index clamped to kMaxDevices) ---------
  int64_t h2d_bytes(int device) const {
    return h2d_bytes_by_device_[Clamp(device)].load(std::memory_order_relaxed);
  }
  int64_t d2h_bytes(int device) const {
    return d2h_bytes_by_device_[Clamp(device)].load(std::memory_order_relaxed);
  }
  /// Total device-heap bytes this query allocated on `device` (freed or not).
  int64_t device_alloc_bytes(int device) const {
    return alloc_bytes_by_device_[Clamp(device)].load(
        std::memory_order_relaxed);
  }
  /// Peak device-global heap usage observed at this query's allocations on
  /// `device` (the per-device slice of heap_high_water()).
  int64_t device_heap_high_water(int device) const {
    return heap_hw_by_device_[Clamp(device)].load(std::memory_order_relaxed);
  }
  int64_t d2d_bytes() const {
    return d2d_bytes_.load(std::memory_order_relaxed);
  }

  // Summed over nodes (recorded by the operator executor per node).
  int64_t device_retries() const;
  int64_t cpu_fallbacks() const;
  int64_t operators_run() const;

  // --- Rendering -----------------------------------------------------------
  /// EXPLAIN ANALYZE text tree: one line per operator (indented by depth)
  /// with rows, kernel time per backend, placement, PCIe bytes, cache
  /// hits/misses, heap high-water, retries/fallbacks, and queue-wait vs run
  /// time, followed by a query-level summary line.
  std::string ToText() const;
  /// Deterministic JSON for tooling: fixed field order, nodes in
  /// registration (pre-order) order.
  std::string ToJson() const;
  /// Flat key/value summary (deterministic order) for flight-recorder
  /// query-summary records.
  std::vector<std::pair<std::string, std::string>> SummaryFields() const;

 private:
  static int Clamp(int device) {
    if (device < 0) return 0;
    return device < kMaxDevices ? device : kMaxDevices - 1;
  }

  std::vector<std::unique_ptr<NodeStats>> nodes_;
  std::unordered_map<const void*, NodeStats*> index_;
  uint64_t query_id_ = 0;
  std::string name_;
  std::string error_;

  std::chrono::steady_clock::time_point submitted_{};
  std::atomic<int64_t> finish_micros_{-1};  ///< vs submitted_; -1 = running
  std::atomic<bool> finished_{false};
  std::atomic<bool> ok_{false};
  std::atomic<bool> shed_{false};

  std::atomic<int64_t> h2d_bytes_{0};
  std::atomic<int64_t> d2h_bytes_{0};
  std::atomic<int64_t> transfer_micros_{0};
  std::atomic<int64_t> transfers_{0};
  std::atomic<int64_t> heap_current_{0};
  std::atomic<int64_t> heap_high_water_{0};
  std::atomic<int64_t> cache_hits_{0};
  std::atomic<int64_t> cache_misses_{0};
  std::atomic<int64_t> queue_wait_micros_{0};
  std::atomic<int64_t> run_micros_{0};
  std::atomic<int64_t> d2d_bytes_{0};
  std::atomic<int64_t> h2d_bytes_by_device_[kMaxDevices] = {};
  std::atomic<int64_t> d2h_bytes_by_device_[kMaxDevices] = {};
  std::atomic<int64_t> alloc_bytes_by_device_[kMaxDevices] = {};
  std::atomic<int64_t> heap_hw_by_device_[kMaxDevices] = {};
};

/// RAII thread-local attribution scope. While alive, everything the current
/// thread does — PCIe transfers, device-heap allocations — is attributed to
/// `stats` (and, when non-null, to `node`). Nests: an inner scope shadows
/// the outer one and restores it on destruction. The executors open one
/// scope per operator execution; layers below (bus, allocator, cache loads
/// running on the calling thread) pick the target up via `current_stats()`
/// without any signature changes. The scope carries the shared_ptr so the
/// allocator can hand ownership to allocations that outlive the query.
class QueryStatsScope {
 public:
  QueryStatsScope(QueryStatsPtr stats, NodeStats* node);
  ~QueryStatsScope();

  QueryStatsScope(const QueryStatsScope&) = delete;
  QueryStatsScope& operator=(const QueryStatsScope&) = delete;

  static QueryStats* current_stats();
  static NodeStats* current_node();
  /// Owning handle on the current stats (null when no scope is open).
  static QueryStatsPtr current_stats_shared();

 private:
  QueryStatsPtr prev_stats_;
  NodeStats* prev_node_;
};

}  // namespace hetdb

#endif  // HETDB_TELEMETRY_QUERY_STATS_H_
