#include "sql/planner.h"

#include <algorithm>
#include <map>
#include <set>

#include "sql/parser.h"

namespace hetdb {

namespace {

/// Per-referenced-table planning state.
struct TableState {
  TablePtr table;
  ConjunctiveFilter filter;            // pushed-down single-table predicates
  std::set<std::string> needed;        // columns this table must provide
  bool joined = false;
};

/// Rough output-size estimate used for greedy join ordering.
double EstimatedRows(const TableState& state) {
  const double selectivity = state.filter.empty() ? 1.0 : 0.1;
  return static_cast<double>(state.table->num_rows()) * selectivity;
}

Predicate MakeComparePredicate(const SqlPredicate& predicate) {
  Predicate result;
  result.column = predicate.column;
  result.op = predicate.op;
  result.value = predicate.value;
  return result;
}

}  // namespace

Result<PlanNodePtr> PlanQuery(const SelectStatement& statement,
                              const Database& db) {
  if (statement.items.empty()) {
    return Status::InvalidArgument("empty select list");
  }
  if (statement.tables.empty()) {
    return Status::InvalidArgument("empty FROM clause");
  }

  // --- 1. Resolve tables and columns ---------------------------------------
  std::map<std::string, TableState> tables;          // table name -> state
  std::map<std::string, std::string> column_owner;   // column -> table name
  for (const std::string& name : statement.tables) {
    HETDB_ASSIGN_OR_RETURN(TablePtr table, db.GetTable(name));
    for (const ColumnPtr& column : table->columns()) {
      auto [it, inserted] = column_owner.emplace(column->name(), name);
      if (!inserted) {
        return Status::InvalidArgument("column '" + column->name() +
                                       "' is ambiguous between tables '" +
                                       it->second + "' and '" + name + "'");
      }
    }
    tables[name].table = table;
  }
  auto owner_of = [&](const std::string& column) -> Result<std::string> {
    auto it = column_owner.find(column);
    if (it == column_owner.end()) {
      return Status::NotFound("unknown column '" + column + "'");
    }
    return it->second;
  };
  auto require = [&](const std::string& column) -> Status {
    HETDB_ASSIGN_OR_RETURN(std::string owner, owner_of(column));
    tables[owner].needed.insert(column);
    return Status::OK();
  };

  // Output-producing columns.
  for (const SelectItem& item : statement.items) {
    if (item.kind == SelectItem::Kind::kAggregate && item.expr.column.empty()) {
      continue;  // COUNT(*)
    }
    for (const std::string& column : item.expr.Columns()) {
      HETDB_RETURN_NOT_OK(require(column));
    }
  }
  for (const std::string& column : statement.group_by) {
    HETDB_RETURN_NOT_OK(require(column));
  }

  // --- 2. Partition WHERE into pushdowns, join edges, residual equalities ---
  struct JoinEdge {
    std::string left_column, right_column;  // left/right table columns
    std::string left_table, right_table;
    bool used = false;
  };
  std::vector<JoinEdge> edges;
  std::vector<std::pair<std::string, std::string>> residual_eq;

  for (const SqlPredicate& predicate : statement.where) {
    HETDB_ASSIGN_OR_RETURN(std::string owner, owner_of(predicate.column));
    switch (predicate.kind) {
      case SqlPredicate::Kind::kCompare:
        tables[owner].filter.conjuncts.push_back(
            Disjunction(MakeComparePredicate(predicate)));
        tables[owner].needed.insert(predicate.column);
        break;
      case SqlPredicate::Kind::kBetween:
        tables[owner].filter.conjuncts.push_back(Disjunction(
            Predicate::Between(predicate.column, predicate.value,
                               predicate.value2)));
        tables[owner].needed.insert(predicate.column);
        break;
      case SqlPredicate::Kind::kIn: {
        Disjunction disjunction;
        for (const Value& value : predicate.in_list) {
          disjunction.atoms.push_back(Predicate::Eq(predicate.column, value));
        }
        tables[owner].filter.conjuncts.push_back(std::move(disjunction));
        tables[owner].needed.insert(predicate.column);
        break;
      }
      case SqlPredicate::Kind::kColumnEq: {
        HETDB_ASSIGN_OR_RETURN(std::string rhs_owner,
                               owner_of(predicate.rhs_column));
        if (owner == rhs_owner) {
          // Same-table column equality: evaluated as a residual filter.
          residual_eq.emplace_back(predicate.column, predicate.rhs_column);
          tables[owner].needed.insert(predicate.column);
          tables[owner].needed.insert(predicate.rhs_column);
        } else {
          JoinEdge edge;
          edge.left_column = predicate.column;
          edge.left_table = owner;
          edge.right_column = predicate.rhs_column;
          edge.right_table = rhs_owner;
          edges.push_back(std::move(edge));
          tables[owner].needed.insert(predicate.column);
          tables[rhs_owner].needed.insert(predicate.rhs_column);
        }
        break;
      }
    }
  }

  // --- 3. Per-table subplans -------------------------------------------------
  auto build_subplan = [&](TableState& state) -> PlanNodePtr {
    std::vector<std::string> columns(state.needed.begin(), state.needed.end());
    PlanNodePtr plan = std::make_shared<ScanNode>(state.table, columns);
    if (!state.filter.empty()) {
      plan = std::make_shared<SelectNode>(std::move(plan), state.filter);
    }
    return plan;
  };

  // Greedy join order: start at the smallest estimated table and repeatedly
  // join the smallest table connected to the current result.
  std::string start;
  for (const auto& [name, state] : tables) {
    if (start.empty() || EstimatedRows(state) < EstimatedRows(tables[start])) {
      start = name;
    }
  }
  PlanNodePtr current = build_subplan(tables[start]);
  tables[start].joined = true;
  std::set<std::string> available = tables[start].needed;

  size_t remaining = tables.size() - 1;
  while (remaining > 0) {
    // Pick the unused edge whose other side is joinable and smallest.
    int best_edge = -1;
    std::string best_table;
    for (size_t e = 0; e < edges.size(); ++e) {
      JoinEdge& edge = edges[e];
      if (edge.used) continue;
      std::string candidate;
      if (tables[edge.left_table].joined && !tables[edge.right_table].joined) {
        candidate = edge.right_table;
      } else if (tables[edge.right_table].joined &&
                 !tables[edge.left_table].joined) {
        candidate = edge.left_table;
      } else {
        continue;
      }
      if (best_edge < 0 || EstimatedRows(tables[candidate]) <
                               EstimatedRows(tables[best_table])) {
        best_edge = static_cast<int>(e);
        best_table = candidate;
      }
    }
    if (best_edge < 0) {
      return Status::InvalidArgument(
          "FROM tables are not connected by join predicates");
    }
    JoinEdge& edge = edges[best_edge];
    edge.used = true;
    TableState& other = tables[best_table];
    other.joined = true;
    --remaining;

    const bool new_is_left = edge.left_table == best_table;
    const std::string& new_key = new_is_left ? edge.left_column
                                             : edge.right_column;
    const std::string& cur_key = new_is_left ? edge.right_column
                                             : edge.left_column;

    // Columns needed above this join: outputs + keys of still-unused edges
    // + residual equality columns.
    std::set<std::string> needed_later;
    for (const SelectItem& item : statement.items) {
      if (item.kind == SelectItem::Kind::kAggregate && item.expr.column.empty())
        continue;
      for (const std::string& column : item.expr.Columns()) {
        needed_later.insert(column);
      }
    }
    for (const std::string& column : statement.group_by) {
      needed_later.insert(column);
    }
    for (const JoinEdge& other_edge : edges) {
      if (other_edge.used) continue;
      needed_later.insert(other_edge.left_column);
      needed_later.insert(other_edge.right_column);
    }
    for (const auto& [a, b] : residual_eq) {
      needed_later.insert(a);
      needed_later.insert(b);
    }

    JoinOutputSpec spec;
    for (const std::string& column : other.needed) {
      if (needed_later.count(column) > 0) spec.build_columns.push_back(column);
    }
    for (const std::string& column : available) {
      if (needed_later.count(column) > 0) spec.probe_columns.push_back(column);
    }
    // Build on the new (dimension) side, probe with the running result.
    current = std::make_shared<JoinNode>(build_subplan(other), std::move(current),
                                         new_key, cur_key, spec);
    available.clear();
    available.insert(spec.build_columns.begin(), spec.build_columns.end());
    available.insert(spec.probe_columns.begin(), spec.probe_columns.end());
  }

  // --- 3b. Residual column equalities (e.g. c_nationkey = s_nationkey) -------
  for (size_t r = 0; r < residual_eq.size(); ++r) {
    const auto& [left, right] = residual_eq[r];
    const std::string diff_name = "residual_diff_" + std::to_string(r);
    std::vector<std::string> keep(available.begin(), available.end());
    current = std::make_shared<ProjectNode>(
        std::move(current), keep,
        std::vector<ArithmeticExpr>{ArithmeticExpr::ColumnOp(
            diff_name, ArithmeticExpr::Op::kSub, left, right)});
    current = std::make_shared<SelectNode>(
        std::move(current),
        ConjunctiveFilter::And({Predicate::Eq(diff_name, int64_t{0})}));
  }
  // Unused join edges between already-joined tables are residual too.
  for (size_t e = 0; e < edges.size(); ++e) {
    if (edges[e].used) continue;
    const std::string diff_name = "join_diff_" + std::to_string(e);
    std::vector<std::string> keep(available.begin(), available.end());
    current = std::make_shared<ProjectNode>(
        std::move(current), keep,
        std::vector<ArithmeticExpr>{
            ArithmeticExpr::ColumnOp(diff_name, ArithmeticExpr::Op::kSub,
                                     edges[e].left_column,
                                     edges[e].right_column)});
    current = std::make_shared<SelectNode>(
        std::move(current),
        ConjunctiveFilter::And({Predicate::Eq(diff_name, int64_t{0})}));
  }

  // --- 4. Projection / aggregation -------------------------------------------
  const bool has_aggregates =
      std::any_of(statement.items.begin(), statement.items.end(),
                  [](const SelectItem& item) {
                    return item.kind == SelectItem::Kind::kAggregate;
                  });

  if (has_aggregates || !statement.group_by.empty()) {
    // Non-aggregate output items must be grouping columns.
    for (const SelectItem& item : statement.items) {
      if (item.kind == SelectItem::Kind::kAggregate) continue;
      if (!item.expr.IsPlainColumn() ||
          std::find(statement.group_by.begin(), statement.group_by.end(),
                    item.expr.column) == statement.group_by.end()) {
        return Status::InvalidArgument(
            "select item '" + item.OutputName() +
            "' must be an aggregate or a GROUP BY column");
      }
    }
    // Compute arithmetic aggregate arguments first.
    std::vector<ArithmeticExpr> pre_exprs;
    std::vector<AggregateSpec> aggregates;
    int arg_counter = 0;
    for (const SelectItem& item : statement.items) {
      if (item.kind != SelectItem::Kind::kAggregate) continue;
      AggregateSpec spec;
      spec.fn = item.fn;
      spec.output_name = item.OutputName();
      if (item.expr.column.empty()) {
        spec.input_column = "";  // COUNT(*)
      } else if (item.expr.IsPlainColumn()) {
        spec.input_column = item.expr.column;
      } else {
        const std::string arg_name = "agg_arg_" + std::to_string(arg_counter++);
        ArithmeticExpr expr;
        expr.output_name = arg_name;
        expr.op = item.expr.op;
        expr.left_column = item.expr.column;
        if (item.expr.rhs_is_constant) {
          expr.right_constant = item.expr.rhs_constant;
        } else {
          expr.right_column = item.expr.rhs_column;
        }
        pre_exprs.push_back(std::move(expr));
        spec.input_column = arg_name;
      }
      aggregates.push_back(std::move(spec));
    }
    if (!pre_exprs.empty()) {
      std::vector<std::string> keep = statement.group_by;
      // Plain-column aggregate arguments must survive the projection too.
      for (const AggregateSpec& spec : aggregates) {
        if (!spec.input_column.empty() &&
            spec.input_column.rfind("agg_arg_", 0) != 0 &&
            std::find(keep.begin(), keep.end(), spec.input_column) ==
                keep.end()) {
          keep.push_back(spec.input_column);
        }
      }
      current = std::make_shared<ProjectNode>(std::move(current), keep,
                                              pre_exprs);
    }
    current = std::make_shared<AggregateNode>(std::move(current),
                                              statement.group_by, aggregates);
  } else {
    // Pure projection.
    std::vector<std::string> keep;
    std::vector<ArithmeticExpr> exprs;
    for (const SelectItem& item : statement.items) {
      if (item.expr.IsPlainColumn()) {
        keep.push_back(item.expr.column);
        continue;
      }
      ArithmeticExpr expr;
      expr.output_name = item.OutputName();
      expr.op = item.expr.op;
      expr.left_column = item.expr.column;
      if (item.expr.rhs_is_constant) {
        expr.right_constant = item.expr.rhs_constant;
      } else {
        expr.right_column = item.expr.rhs_column;
      }
      exprs.push_back(std::move(expr));
    }
    current = std::make_shared<ProjectNode>(std::move(current), keep, exprs);
  }

  // --- 5. ORDER BY / LIMIT ----------------------------------------------------
  if (!statement.order_by.empty()) {
    current = std::make_shared<SortNode>(std::move(current),
                                         statement.order_by);
  }
  if (statement.limit.has_value()) {
    current = std::make_shared<LimitNode>(std::move(current),
                                          *statement.limit);
  }
  return current;
}

Result<PlanNodePtr> PlanSql(const std::string& sql, const Database& db) {
  HETDB_ASSIGN_OR_RETURN(SelectStatement statement, ParseSelect(sql));
  return PlanQuery(statement, db);
}

}  // namespace hetdb
