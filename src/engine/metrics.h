#ifndef HETDB_ENGINE_METRICS_H_
#define HETDB_ENGINE_METRICS_H_

#include <atomic>
#include <cstdint>

namespace hetdb {

/// Counters collected over one workload run. These back the paper's
/// evaluation metrics:
///
///  * `gpu_operator_aborts` — Figure 13 (aborted device operators);
///  * `wasted_micros` — Figure 20: total time from operator start to abort,
///    summed over all aborted device operators (includes input transfers and
///    any kernel work done before the failing allocation);
///  * transfer time/bytes are read from the PcieBus (Figures 6, 15, 19).
class WorkloadMetrics {
 public:
  WorkloadMetrics() = default;

  WorkloadMetrics(const WorkloadMetrics&) = delete;
  WorkloadMetrics& operator=(const WorkloadMetrics&) = delete;

  void RecordGpuAbort(int64_t wasted_micros) {
    gpu_operator_aborts_.fetch_add(1, std::memory_order_relaxed);
    wasted_micros_.fetch_add(wasted_micros, std::memory_order_relaxed);
  }
  void RecordOperator(bool on_gpu) {
    (on_gpu ? gpu_operators_ : cpu_operators_)
        .fetch_add(1, std::memory_order_relaxed);
  }
  void RecordQueryDone() {
    queries_completed_.fetch_add(1, std::memory_order_relaxed);
  }

  uint64_t gpu_operator_aborts() const {
    return gpu_operator_aborts_.load(std::memory_order_relaxed);
  }
  int64_t wasted_micros() const {
    return wasted_micros_.load(std::memory_order_relaxed);
  }
  uint64_t cpu_operators() const {
    return cpu_operators_.load(std::memory_order_relaxed);
  }
  uint64_t gpu_operators() const {
    return gpu_operators_.load(std::memory_order_relaxed);
  }
  uint64_t queries_completed() const {
    return queries_completed_.load(std::memory_order_relaxed);
  }

  void Reset() {
    gpu_operator_aborts_.store(0, std::memory_order_relaxed);
    wasted_micros_.store(0, std::memory_order_relaxed);
    cpu_operators_.store(0, std::memory_order_relaxed);
    gpu_operators_.store(0, std::memory_order_relaxed);
    queries_completed_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> gpu_operator_aborts_{0};
  std::atomic<int64_t> wasted_micros_{0};
  std::atomic<uint64_t> cpu_operators_{0};
  std::atomic<uint64_t> gpu_operators_{0};
  std::atomic<uint64_t> queries_completed_{0};
};

}  // namespace hetdb

#endif  // HETDB_ENGINE_METRICS_H_
