// Figure 2: cache thrashing. The Appendix B.1 serial selection workload
// (eight interleaved single-column selections over lineorder, SF 10) under
// operator-driven placement, with the device data-cache size swept from 0 to
// beyond the 8-column working set. When the cache is one column short, LRU
// evicts exactly the column the next query needs: every access misses and
// execution time degrades by an order of magnitude (the paper measures 24x).

#include "bench/bench_util.h"

using namespace hetdb;
using namespace hetdb::bench;

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv);
  const double sf = args.quick ? 5 : 10;
  const int reps = args.quick ? 4 : (args.full ? 25 : 8);

  SsbGeneratorOptions gen;
  args.ApplySeed(gen);
  gen.scale_factor = sf;
  DatabasePtr db = GenerateSsbDatabase(gen);

  // Working set: the eight selection columns.
  size_t working_set = 0;
  for (const char* column : kSsbSelectionColumns) {
    working_set += db->GetColumnByQualifiedName(std::string("lineorder.") +
                                                column)
                       .value()
                       ->data_bytes();
  }

  Banner("Figure 2",
         "Serial selection workload (B.1), operator-driven placement (GPU "
         "Only, LRU demand cache), working set " +
             Mib(working_set) + ", " + std::to_string(reps) +
             " repetitions of 8 interleaved selections");

  WorkloadRunOptions options;
  options.repetitions = reps;
  options.warmup_repetitions = 1;
  // Operator-driven: the cache is filled on demand, no placement job.
  options.refresh_data_placement = false;

  PrintHeader({"buffer[MiB]", "time[ms]", "h2d[ms]", "cache_hit%"});
  for (int step = 0; step <= 9; ++step) {
    SystemConfig config = PaperConfig(args.time_scale);
    config.device_cache_bytes = working_set * step / 8;  // 0 .. 9/8 of set
    config.device_memory_bytes = config.device_cache_bytes + (16ull << 20);

    EngineContext ctx(config, db, EvictionPolicy::kLru);
    StrategyRunner runner(&ctx, Strategy::kGpuOnly);
    WorkloadRunResult result =
        RunWorkload(runner, SerialSelectionQueries(), options);
    const DataCacheStats cache = ctx.cache().stats();
    const double hit_rate =
        cache.hits + cache.misses == 0
            ? 0
            : 100.0 * cache.hits / (cache.hits + cache.misses);
    PrintCell(static_cast<double>(config.device_cache_bytes) / (1 << 20));
    PrintCell(result.wall_millis);
    PrintCell(result.h2d_transfer_millis);
    PrintCell(hit_rate);
    EndRow();
  }
  return 0;
}
