#include "engine/operator_executor.h"

#include <string>
#include <utility>

#include "common/logging.h"
#include "common/stopwatch.h"

namespace hetdb {

namespace {

/// CPU execution: marshal device-resident inputs back to the host, run the
/// kernel, charge modeled CPU time (occupying a CPU slot).
Result<OperatorResult> ExecuteOnCpu(const PlanNode& node,
                                    const std::vector<OperatorResult*>& inputs,
                                    EngineContext& ctx) {
  std::vector<TablePtr> input_tables;
  input_tables.reserve(inputs.size());
  for (OperatorResult* input : inputs) {
    HETDB_CHECK(input != nullptr && input->table != nullptr);
    if (input->location == ProcessorKind::kGpu && !input->base_data) {
      // Intermediate result produced on the device: copy it back. This is
      // the cost a compile-time plan pays when a device operator aborted and
      // its successor was left on the other processor (Figure 8).
      ctx.simulator().bus().Transfer(input->table_bytes(),
                                     TransferDirection::kDeviceToHost);
      input->ReleaseDeviceResources();
      input->location = ProcessorKind::kCpu;
    }
    input_tables.push_back(input->table);
  }

  Stopwatch kernel_watch;
  HETDB_ASSIGN_OR_RETURN(TablePtr output, node.ComputeResult(input_tables));

  if (node.op() != PlanOp::kScan) {
    const size_t input_bytes = node.InputBytes(input_tables);
    ctx.simulator().ChargeCompute(ProcessorKind::kCpu, node.op_class(),
                                  input_bytes);
    // HyPE learns from *measured* durations (normalized back to modeled
    // units), so the model captures slot contention and queueing that the
    // analytical bootstrap cannot know about.
    ctx.cost_model().Observe(
        ProcessorKind::kCpu, node.op_class(), input_bytes,
        kernel_watch.ElapsedMicros() / ctx.config().time_scale);
  }
  ctx.metrics().RecordOperator(/*on_gpu=*/false);

  OperatorResult result;
  result.table = std::move(output);
  result.location = ProcessorKind::kCpu;
  result.base_data = node.op() == PlanOp::kScan;
  return result;
}

/// Device execution with staged allocation; see the header for the phases.
Result<OperatorResult> ExecuteOnGpu(const PlanNode& node,
                                    const std::vector<OperatorResult*>& inputs,
                                    EngineContext& ctx) {
  Stopwatch abort_watch;
  DeviceAllocator& heap = ctx.simulator().device_heap();

  auto abort_with = [&](const Status& status) -> Status {
    ctx.metrics().RecordGpuAbort(abort_watch.ElapsedMicros());
    return status;
  };

  OperatorResult result;
  result.location = ProcessorKind::kGpu;

  // --- Scans: acquire base columns through the data cache -------------------
  if (node.op() == PlanOp::kScan) {
    const auto& scan = static_cast<const ScanNode&>(node);
    for (const auto& [key, column] : scan.base_columns()) {
      DataCache::Access access = ctx.cache().RequireOnDevice(column, key);
      if (access.resident) {
        result.cache_leases.push_back(std::move(access.lease));
        continue;
      }
      // Cache cannot hold the column: it was transferred into device heap
      // for this operator only (the thrashing path). Hold the bytes.
      Result<DeviceAllocation> allocation = heap.Allocate(
          ctx.cache().EntryBytes(*column), "transient input " + key);
      if (!allocation.ok()) return abort_with(allocation.status());
      result.device_allocations.push_back(std::move(allocation).value());
    }
    HETDB_ASSIGN_OR_RETURN(TablePtr output, node.ComputeResult({}));
    result.table = std::move(output);
    result.base_data = true;
    ctx.metrics().RecordOperator(/*on_gpu=*/true);
    return result;
  }

  // --- Phase 1: inputs -------------------------------------------------------
  std::vector<TablePtr> input_tables;
  input_tables.reserve(inputs.size());
  for (OperatorResult* input : inputs) {
    HETDB_CHECK(input != nullptr && input->table != nullptr);
    if (input->location != ProcessorKind::kGpu) {
      // Host-resident input: allocate a device buffer and ship it over.
      Result<DeviceAllocation> allocation = heap.Allocate(
          input->table_bytes(), "device input for " + node.label());
      if (!allocation.ok()) return abort_with(allocation.status());
      result.device_allocations.push_back(std::move(allocation).value());
      ctx.simulator().bus().Transfer(input->table_bytes(),
                                     TransferDirection::kHostToDevice);
    }
    input_tables.push_back(input->table);
  }

  // --- Phase 2: intermediate data structures ---------------------------------
  const size_t intermediate_bytes = node.IntermediateDeviceBytes(input_tables);
  DeviceAllocation intermediates;
  if (intermediate_bytes > 0) {
    Result<DeviceAllocation> allocation =
        heap.Allocate(intermediate_bytes, "intermediates for " + node.label());
    if (!allocation.ok()) return abort_with(allocation.status());
    intermediates = std::move(allocation).value();
  }

  // --- Phase 3: kernel --------------------------------------------------------
  Stopwatch kernel_watch;
  HETDB_ASSIGN_OR_RETURN(TablePtr output, node.ComputeResult(input_tables));
  const size_t input_bytes = node.InputBytes(input_tables);
  ctx.simulator().ChargeCompute(ProcessorKind::kGpu, node.op_class(),
                                input_bytes);
  ctx.cost_model().Observe(
      ProcessorKind::kGpu, node.op_class(), input_bytes,
      kernel_watch.ElapsedMicros() / ctx.config().time_scale);

  // --- Phase 4: result buffer (exact size, known only now) --------------------
  const size_t output_bytes = output->data_bytes();
  if (output_bytes > 0) {
    Result<DeviceAllocation> allocation =
        heap.Allocate(output_bytes, "result of " + node.label());
    // Failing here wastes the whole kernel — this is what makes aborts late
    // in an operator expensive (Figure 20's wasted time).
    if (!allocation.ok()) return abort_with(allocation.status());
    result.device_allocations.push_back(std::move(allocation).value());
  }
  intermediates.Release();

  result.table = std::move(output);
  ctx.metrics().RecordOperator(/*on_gpu=*/true);
  return result;
}

}  // namespace

Result<OperatorResult> ExecuteOperator(const PlanNode& node,
                                       const std::vector<OperatorResult*>& inputs,
                                       ProcessorKind processor,
                                       EngineContext& ctx) {
  if (processor == ProcessorKind::kCpu) {
    return ExecuteOnCpu(node, inputs, ctx);
  }
  return ExecuteOnGpu(node, inputs, ctx);
}

Result<ExecutedOperator> ExecuteWithFallback(
    const PlanNode& node, const std::vector<OperatorResult*>& inputs,
    ProcessorKind processor, EngineContext& ctx) {
  Result<OperatorResult> attempt = ExecuteOperator(node, inputs, processor, ctx);
  if (attempt.ok()) {
    ExecutedOperator executed;
    executed.result = std::move(attempt).value();
    executed.ran_on = processor;
    executed.aborted = false;
    return executed;
  }
  if (processor == ProcessorKind::kGpu &&
      attempt.status().IsResourceExhausted()) {
    // The paper's fault tolerance: restart only the failed operator on the
    // CPU; already-computed child results are preserved (Section 2.5.1).
    Result<OperatorResult> retry =
        ExecuteOperator(node, inputs, ProcessorKind::kCpu, ctx);
    if (!retry.ok()) return retry.status();
    ExecutedOperator executed;
    executed.result = std::move(retry).value();
    executed.ran_on = ProcessorKind::kCpu;
    executed.aborted = true;
    return executed;
  }
  return attempt.status();
}

}  // namespace hetdb
