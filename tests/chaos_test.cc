// Chaos suite: SSB workloads under seeded, deterministic fault schedules.
//
// The contract under test (DESIGN.md §8): whatever the device does — heap
// exhaustion, transient kernel faults, dying mid-transfer, falling off the
// bus entirely — the engine either returns the bit-identical result of a
// fault-free CPU run or a clean Status. Never a wrong answer, never a
// stranded future, never a leaked device byte.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "engine/chopping_executor.h"
#include "engine/pipeline_builder.h"
#include "fault/circuit_breaker.h"
#include "fault/fault_injector.h"
#include "fault/watchdog.h"
#include "placement/runtime.h"
#include "placement/strategy_runner.h"
#include "ssb/ssb_generator.h"
#include "ssb/ssb_queries.h"
#include "tests/test_util.h"

namespace hetdb {
namespace {

DatabasePtr ChaosDb() {
  static DatabasePtr db = [] {
    SsbGeneratorOptions options;
    options.scale_factor = 0.1;
    return GenerateSsbDatabase(options);
  }();
  return db;
}

/// Fault-free CPU reference result, computed once per query.
TablePtr Reference(const std::string& query_name) {
  DatabasePtr db = ChaosDb();
  EngineContext ctx(TestConfig(), db);
  StrategyRunner runner(&ctx, Strategy::kCpuOnly);
  Result<NamedQuery> query = SsbQueryByName(query_name);
  EXPECT_TRUE(query.ok());
  Result<PlanNodePtr> plan = query->builder(*db);
  EXPECT_TRUE(plan.ok());
  Result<TablePtr> result = runner.RunQuery(plan.value());
  EXPECT_TRUE(result.ok());
  return result.value();
}

PlanNodePtr ChaosPlan(const std::string& query_name) {
  Result<NamedQuery> query = SsbQueryByName(query_name);
  EXPECT_TRUE(query.ok());
  Result<PlanNodePtr> plan = query->builder(*ChaosDb());
  EXPECT_TRUE(plan.ok());
  return plan.value();
}

// ---------------------------------------------------------------------------
// FaultInjector unit behaviour (determinism is what makes chaos replayable)
// ---------------------------------------------------------------------------

TEST(FaultInjectorTest, SameSeedSameScheduleSameDecisions) {
  FaultInjector a(42), b(42);
  FaultSchedule schedule =
      FaultSchedule::WithProbability(FaultKind::kTransient, 0.37);
  a.SetSchedule(FaultSite::kKernel, schedule);
  b.SetSchedule(FaultSite::kKernel, schedule);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_EQ(a.Decide(FaultSite::kKernel, 100).kind,
              b.Decide(FaultSite::kKernel, 100).kind);
  }
  EXPECT_GT(a.total_faults(), 0u);
  EXPECT_EQ(a.total_faults(), b.total_faults());
}

TEST(FaultInjectorTest, BurstAndMaxFaultsBoundTheDamage) {
  FaultInjector injector(7);
  FaultSchedule schedule = FaultSchedule::Always(FaultKind::kTransient);
  schedule.burst_length = 3;
  schedule.max_faults = 4;
  injector.SetSchedule(FaultSite::kTransfer, schedule);
  int faults = 0;
  for (int i = 0; i < 100; ++i) {
    if (injector.Decide(FaultSite::kTransfer).fault()) ++faults;
  }
  EXPECT_EQ(faults, 4);  // capped by max_faults despite probability 1
  EXPECT_EQ(injector.faults_injected(FaultSite::kTransfer,
                                     FaultKind::kTransient),
            4u);
}

TEST(FaultInjectorTest, MinBytesSparesSmallEvents) {
  FaultInjector injector;
  FaultSchedule schedule = FaultSchedule::Always(FaultKind::kHeapExhausted);
  schedule.min_bytes = 1000;
  injector.SetSchedule(FaultSite::kDeviceAlloc, schedule);
  EXPECT_FALSE(injector.Decide(FaultSite::kDeviceAlloc, 999).fault());
  EXPECT_TRUE(injector.Decide(FaultSite::kDeviceAlloc, 1000).fault());
}

TEST(FaultInjectorTest, DecisionStatusCodesMatchFaultKinds) {
  FaultDecision decision;
  decision.kind = FaultKind::kHeapExhausted;
  EXPECT_TRUE(decision.ToStatus("x").IsResourceExhausted());
  decision.kind = FaultKind::kTransient;
  EXPECT_TRUE(decision.ToStatus("x").IsUnavailable());
  decision.kind = FaultKind::kDeviceLost;
  EXPECT_TRUE(decision.ToStatus("x").IsDeviceLost());
  for (FaultKind kind : {FaultKind::kHeapExhausted, FaultKind::kTransient,
                         FaultKind::kDeviceLost}) {
    decision.kind = kind;
    EXPECT_TRUE(decision.ToStatus("x").IsDeviceAbort());
  }
}

TEST(FaultInjectorTest, OfflineEpisodeDominatesEverySite) {
  FaultInjector injector;
  injector.ForceOffline(3);
  EXPECT_TRUE(injector.offline());
  EXPECT_EQ(injector.Decide(FaultSite::kDeviceAlloc).kind,
            FaultKind::kDeviceLost);
  EXPECT_EQ(injector.Decide(FaultSite::kKernel).kind, FaultKind::kDeviceLost);
  EXPECT_EQ(injector.Decide(FaultSite::kTransfer).kind,
            FaultKind::kDeviceLost);
  EXPECT_FALSE(injector.offline());  // episode drained
  EXPECT_EQ(injector.Decide(FaultSite::kDeviceAlloc).kind, FaultKind::kNone);
}

// ---------------------------------------------------------------------------
// Circuit-breaker state machine
// ---------------------------------------------------------------------------

DeviceCircuitBreaker::Options SmallBreaker() {
  DeviceCircuitBreaker::Options options;
  options.window = 8;
  options.min_samples = 4;
  options.trip_ratio = 0.5;
  options.cooldown_denials = 4;
  options.half_open_probes = 2;
  options.probes_to_close = 2;
  return options;
}

TEST(CircuitBreakerTest, AbortStormTripsThenProbesThenCloses) {
  DeviceCircuitBreaker breaker{SmallBreaker()};
  // Four aborts in a row: ratio 1.0 >= 0.5 with 4 >= min_samples.
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(breaker.AllowDevice());
    breaker.RecordDeviceAbort();
  }
  EXPECT_EQ(breaker.state(), DeviceCircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.trips(), 1u);
  // Cooldown counted in denials, deterministic without wall clock.
  for (int i = 0; i < 4; ++i) EXPECT_FALSE(breaker.AllowDevice());
  EXPECT_EQ(breaker.state(), DeviceCircuitBreaker::State::kHalfOpen);
  // Two successful probes close it again.
  ASSERT_TRUE(breaker.AllowDevice());
  breaker.RecordDeviceSuccess();
  ASSERT_TRUE(breaker.AllowDevice());
  breaker.RecordDeviceSuccess();
  EXPECT_EQ(breaker.state(), DeviceCircuitBreaker::State::kClosed);
  // Closing cleared the window: one fresh abort must not re-trip.
  ASSERT_TRUE(breaker.AllowDevice());
  breaker.RecordDeviceAbort();
  EXPECT_EQ(breaker.state(), DeviceCircuitBreaker::State::kClosed);
}

TEST(CircuitBreakerTest, FailedProbeReopens) {
  DeviceCircuitBreaker breaker{SmallBreaker()};
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(breaker.AllowDevice());
    breaker.RecordDeviceAbort();
  }
  for (int i = 0; i < 4; ++i) EXPECT_FALSE(breaker.AllowDevice());
  ASSERT_EQ(breaker.state(), DeviceCircuitBreaker::State::kHalfOpen);
  ASSERT_TRUE(breaker.AllowDevice());
  breaker.RecordDeviceAbort();
  EXPECT_EQ(breaker.state(), DeviceCircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.trips(), 2u);
}

TEST(CircuitBreakerTest, DeviceLostTripsImmediately) {
  DeviceCircuitBreaker breaker{SmallBreaker()};
  ASSERT_TRUE(breaker.AllowDevice());
  breaker.RecordDeviceAbort(/*device_lost=*/true);
  EXPECT_EQ(breaker.state(), DeviceCircuitBreaker::State::kOpen);
  EXPECT_FALSE(breaker.device_available());
}

TEST(CircuitBreakerTest, PlacerPeekAdvancesCooldown) {
  DeviceCircuitBreaker breaker{SmallBreaker()};
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(breaker.AllowDevice());
    breaker.RecordDeviceAbort();
  }
  // A placer-only workload (device_available, never AllowDevice) must not
  // wedge the breaker open forever.
  for (int i = 0; i < 4; ++i) EXPECT_FALSE(breaker.device_available());
  EXPECT_EQ(breaker.state(), DeviceCircuitBreaker::State::kHalfOpen);
}

/// Half-open is a *bounded* probe window: under a stampede of concurrent
/// requests, exactly half_open_probes slots are admitted and everyone else
/// is denied without perturbing the state machine — the admitted probes'
/// outcomes alone decide whether the breaker closes.
TEST(CircuitBreakerTest, HalfOpenProbeContentionAdmitsBoundedProbes) {
  DeviceCircuitBreaker breaker{SmallBreaker()};
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(breaker.AllowDevice());
    breaker.RecordDeviceAbort();
  }
  for (int i = 0; i < 4; ++i) EXPECT_FALSE(breaker.AllowDevice());
  ASSERT_EQ(breaker.state(), DeviceCircuitBreaker::State::kHalfOpen);

  std::atomic<int> admitted{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&breaker, &admitted] {
      if (breaker.AllowDevice()) admitted.fetch_add(1);
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(admitted.load(), SmallBreaker().half_open_probes);
  EXPECT_EQ(breaker.state(), DeviceCircuitBreaker::State::kHalfOpen);

  // The denied stampede consumed nothing: the two real probes still close
  // the breaker on success.
  breaker.RecordDeviceSuccess();
  breaker.RecordDeviceSuccess();
  EXPECT_EQ(breaker.state(), DeviceCircuitBreaker::State::kClosed);
}

// ---------------------------------------------------------------------------
// Engine-level chaos: SSB under seeded fault schedules
// ---------------------------------------------------------------------------

const char* const kChaosQueries[] = {"Q1.1", "Q2.1", "Q3.1"};

/// Heap exhaustion + transient kernel faults + transfer latency spikes:
/// every fault class the engine recovers from transparently (retry or CPU
/// fallback), so every query must succeed with the reference result — across
/// compile-time, run-time, and chopping placement.
TEST(ChaosTest, MixedFaultsNeverCorruptResults) {
  DatabasePtr db = ChaosDb();
  for (Strategy strategy :
       {Strategy::kGpuOnly, Strategy::kRunTime, Strategy::kChopping,
        Strategy::kDataDrivenChopping}) {
    EngineContext ctx(TestConfig(), db);
    {
      StrategyRunner runner(&ctx, strategy);
      runner.RefreshDataPlacement();
      FaultInjector& injector = ctx.simulator().fault_injector();
      injector.Reseed(0xc4a05u + static_cast<uint64_t>(strategy));
      injector.SetSchedule(
          FaultSite::kDeviceAlloc,
          FaultSchedule::WithProbability(FaultKind::kHeapExhausted, 0.3));
      injector.SetSchedule(
          FaultSite::kKernel,
          FaultSchedule::WithProbability(FaultKind::kTransient, 0.2));
      injector.SetSchedule(
          FaultSite::kTransfer,
          FaultSchedule::WithProbability(FaultKind::kLatencySpike, 0.2));
      for (const char* name : kChaosQueries) {
        TablePtr expected = Reference(name);
        for (int round = 0; round < 3; ++round) {
          Result<TablePtr> result = runner.RunQuery(ChaosPlan(name));
          ASSERT_TRUE(result.ok())
              << StrategyToString(strategy) << " " << name << ": "
              << result.status().ToString();
          EXPECT_TRUE(TablesEqual(*expected, *result.value()))
              << StrategyToString(strategy) << " " << name;
        }
      }
      EXPECT_GT(injector.total_faults(), 0u) << StrategyToString(strategy);
    }
    // Runner destroyed: all queries drained. No leaked device bytes.
    EXPECT_EQ(ctx.simulator().device_heap().used(), 0u)
        << StrategyToString(strategy);
  }
}

/// Transient *transfer* faults can strike the one path with no processor
/// fallback: the device-to-host result copy-back. Queries must then either
/// succeed (retries absorbed the fault) with the correct result, or fail
/// with the clean transfer status — and never leak device memory.
TEST(ChaosTest, TransferFaultsSucceedOrFailCleanly) {
  DatabasePtr db = ChaosDb();
  TablePtr expected = Reference("Q2.1");
  for (Strategy strategy : {Strategy::kGpuOnly, Strategy::kChopping}) {
    EngineContext ctx(TestConfig(), db);
    {
      StrategyRunner runner(&ctx, strategy);
      FaultInjector& injector = ctx.simulator().fault_injector();
      injector.Reseed(0xbadbu + static_cast<uint64_t>(strategy));
      injector.SetSchedule(
          FaultSite::kTransfer,
          FaultSchedule::WithProbability(FaultKind::kTransient, 0.4));
      int succeeded = 0;
      for (int round = 0; round < 6; ++round) {
        Result<TablePtr> result = runner.RunQuery(ChaosPlan("Q2.1"));
        if (result.ok()) {
          ++succeeded;
          EXPECT_TRUE(TablesEqual(*expected, *result.value()))
              << StrategyToString(strategy);
        } else {
          EXPECT_TRUE(result.status().IsDeviceAbort())
              << StrategyToString(strategy) << ": "
              << result.status().ToString();
        }
      }
      EXPECT_GT(succeeded, 0) << StrategyToString(strategy);
      EXPECT_GT(ctx.simulator().bus().failed_transfers(), 0u);
    }
    EXPECT_EQ(ctx.simulator().device_heap().used(), 0u)
        << StrategyToString(strategy);
  }
}

/// A device that falls off the bus trips the breaker on the first DeviceLost
/// abort; the rest of the workload short-circuits to the CPU and completes
/// with correct results.
TEST(ChaosTest, DeviceLossFailsOverToCpu) {
  DatabasePtr db = ChaosDb();
  TablePtr expected = Reference("Q1.1");
  EngineContext ctx(TestConfig(), db);
  {
    StrategyRunner runner(&ctx, Strategy::kGpuOnly);
    ctx.simulator().fault_injector().SetSchedule(
        FaultSite::kDeviceAlloc, FaultSchedule::Always(FaultKind::kDeviceLost));
    for (int round = 0; round < 3; ++round) {
      Result<TablePtr> result = runner.RunQuery(ChaosPlan("Q1.1"));
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      EXPECT_TRUE(TablesEqual(*expected, *result.value()));
    }
    EXPECT_GE(ctx.breaker().trips(), 1u);
    // Denials may have advanced the breaker into half-open by now, but the
    // still-lost device re-trips every probe — it can never be closed.
    EXPECT_NE(ctx.breaker().state(), DeviceCircuitBreaker::State::kClosed);
    EXPECT_GT(
        ctx.telemetry().registry().GetCounter("breaker.short_circuits").value(),
        0);
  }
  EXPECT_EQ(ctx.simulator().device_heap().used(), 0u);
}

/// Whole-device-offline episode (every site returns DeviceLost until it
/// drains): the workload fails over to the CPU; once the episode ends and
/// the breaker is reset, device execution resumes.
TEST(ChaosTest, OfflineEpisodeIsSurvivedAndRecoveredFrom) {
  DatabasePtr db = ChaosDb();
  TablePtr expected = Reference("Q1.1");
  EngineContext ctx(TestConfig(), db);
  StrategyRunner runner(&ctx, Strategy::kGpuOnly);
  ctx.simulator().fault_injector().ForceOffline(10000);

  Result<TablePtr> during = runner.RunQuery(ChaosPlan("Q1.1"));
  ASSERT_TRUE(during.ok()) << during.status().ToString();
  EXPECT_TRUE(TablesEqual(*expected, *during.value()));
  EXPECT_GT(ctx.simulator().fault_injector().total_faults(), 0u);

  // Device comes back; operator recovery path confirmed by device operators
  // running again after the breaker resets.
  ctx.simulator().fault_injector().ClearAll();
  ctx.breaker().Reset();
  const uint64_t gpu_ops_before = ctx.telemetry().gpu_operators();
  Result<TablePtr> after = runner.RunQuery(ChaosPlan("Q1.1"));
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_TRUE(TablesEqual(*expected, *after.value()));
  EXPECT_GT(ctx.telemetry().gpu_operators(), gpu_ops_before);
}

/// After an abort storm trips the breaker, clearing the fault and continuing
/// to submit work recovers device execution through half-open probes — no
/// manual Reset needed.
TEST(ChaosTest, BreakerRecoversViaHalfOpenProbes) {
  DatabasePtr db = ChaosDb();
  TablePtr expected = Reference("Q1.1");
  EngineContext ctx(TestConfig(), db);
  ctx.breaker().Configure(SmallBreaker());
  StrategyRunner runner(&ctx, Strategy::kGpuOnly);
  FaultInjector& injector = ctx.simulator().fault_injector();
  injector.SetSchedule(
      FaultSite::kDeviceAlloc,
      FaultSchedule::Always(FaultKind::kHeapExhausted));

  Result<TablePtr> stormy = runner.RunQuery(ChaosPlan("Q1.1"));
  ASSERT_TRUE(stormy.ok());
  EXPECT_TRUE(TablesEqual(*expected, *stormy.value()));
  EXPECT_GE(ctx.breaker().trips(), 1u);

  // Fault gone; keep submitting. Denials advance the cooldown, probes
  // succeed, the breaker closes.
  injector.ClearAll();
  for (int round = 0; round < 10 &&
                      ctx.breaker().state() != DeviceCircuitBreaker::State::kClosed;
       ++round) {
    Result<TablePtr> result = runner.RunQuery(ChaosPlan("Q1.1"));
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(TablesEqual(*expected, *result.value()));
  }
  EXPECT_EQ(ctx.breaker().state(), DeviceCircuitBreaker::State::kClosed);
}

/// A watchdog kill travels the executor's ordinary cancel path, so it must
/// leave the same clean state a client cancel does: the future settles (with
/// Cancelled, or the result if the query won the race), the executor
/// deregisters the query from the engine watchdog, and no device byte stays
/// allocated. Repeated kills must not accumulate state, and the engine keeps
/// serving correct results afterwards.
TEST(ChaosTest, WatchdogKillLeavesNoStrandedState) {
  DatabasePtr db = ChaosDb();
  TablePtr expected = Reference("Q3.1");
  // Modeled time keeps the query in flight for milliseconds, so the kill
  // reliably lands mid-flight (with no-sleep TestConfig the query can beat
  // a sub-millisecond watchdog to the finish line).
  SystemConfig config = TestConfig();
  config.simulate_time = true;
  EngineContext ctx(config, db);
  {
    StrategyRunner runner(&ctx, Strategy::kChopping);
    // A test-local watchdog with a microscopic runtime ceiling plays the
    // killer (the engine's own watchdog keeps production thresholds); both
    // fire through the query's CancelToken, so the unwind path is the same.
    StuckQueryWatchdog::Options options;
    options.scan_period_micros = 0;  // test drives CheckNow()
    options.stall_micros = 0;
    options.deadline_multiple = 0;
    options.max_runtime_micros = 1;
    StuckQueryWatchdog watchdog(options);
    int kills = 0;
    for (int cycle = 0; cycle < 3; ++cycle) {
      PlanNodePtr plan = ChaosPlan("Q3.1");
      QueryControls controls;
      controls.cancel = CancelToken::Create();
      controls.stats = MakeQueryStats(plan);
      const uint64_t query_id = 1000u + static_cast<uint64_t>(cycle);
      controls.stats->set_query_id(query_id);
      const CancelToken cancel = controls.cancel;
      watchdog.Register(query_id, controls.stats, cancel, {},
                        /*has_deadline=*/false);
      std::future<Result<TablePtr>> future =
          std::async(std::launch::async, [&runner, &plan, &controls] {
            return runner.RunQuery(plan, std::move(controls));
          });
      // Kill early and keep checking: the ceiling is 1us, so the first scan
      // after launch fires while the query is still mid-flight.
      std::this_thread::sleep_for(std::chrono::microseconds(100));
      while (future.wait_for(std::chrono::microseconds(50)) !=
             std::future_status::ready) {
        watchdog.CheckNow();
      }
      Result<TablePtr> result = future.get();
      watchdog.Deregister(query_id);
      if (result.ok()) {
        // The query beat the kill to the finish line; result must be right.
        EXPECT_TRUE(TablesEqual(*expected, *result.value())) << cycle;
      } else {
        EXPECT_TRUE(result.status().IsCancelled())
            << cycle << ": " << result.status().ToString();
        EXPECT_TRUE(watchdog.WasKilled(query_id)) << cycle;
        ++kills;
      }
      // The executor deregisters before settling the promise, so once the
      // future resolved the engine watchdog must be empty. (Device bytes of
      // straggler in-kernel tasks drain by executor teardown, asserted at
      // scope exit — the same contract as a client cancel.)
      EXPECT_EQ(ctx.watchdog().active(), 0u) << "cycle " << cycle;
    }
    EXPECT_GT(kills, 0) << "no cycle was ever killed; ceiling too lax?";
    // Recovery: with the killer idle, the same query runs to the correct
    // result — no lingering cancel or watchdog verdict affects fresh work.
    Result<TablePtr> clean = runner.RunQuery(ChaosPlan("Q3.1"));
    ASSERT_TRUE(clean.ok()) << clean.status().ToString();
    EXPECT_TRUE(TablesEqual(*expected, *clean.value()));
  }
  EXPECT_EQ(ctx.simulator().device_heap().used(), 0u);
}

/// Tripping the breaker must automatically dump the flight recorder as
/// parseable JSONL: the post-mortem story (query summaries, the abort storm,
/// the closed->open transition, the dump reason) with no manual step.
TEST(ChaosTest, BreakerTripDumpsFlightRecorderJsonl) {
  DatabasePtr db = ChaosDb();
  EngineContext ctx(TestConfig(), db);
  ctx.breaker().Configure(SmallBreaker());
  const std::string dump_path =
      ::testing::TempDir() + "/hetdb_chaos_flight.jsonl";
  ctx.flight_recorder().SetAutoDumpPath(dump_path);

  StrategyRunner runner(&ctx, Strategy::kGpuOnly);
  ctx.simulator().fault_injector().SetSchedule(
      FaultSite::kDeviceAlloc,
      FaultSchedule::Always(FaultKind::kHeapExhausted));
  for (int round = 0; round < 2; ++round) {
    Result<TablePtr> result = runner.RunQuery(ChaosPlan("Q1.1"));
    ASSERT_TRUE(result.ok()) << result.status().ToString();
  }
  ASSERT_GE(ctx.breaker().trips(), 1u);

  std::FILE* file = std::fopen(dump_path.c_str(), "r");
  ASSERT_NE(file, nullptr) << "breaker trip did not write " << dump_path;
  std::string content;
  char buffer[4096];
  size_t read = 0;
  while ((read = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    content.append(buffer, read);
  }
  std::fclose(file);
  std::remove(dump_path.c_str());

  // Every line is one JSON object with the fixed header fields.
  ASSERT_FALSE(content.empty());
  ASSERT_EQ(content.back(), '\n');
  size_t lines = 0;
  size_t start = 0;
  while (start < content.size()) {
    const size_t end = content.find('\n', start);
    ASSERT_NE(end, std::string::npos);
    const std::string line = content.substr(start, end - start);
    EXPECT_EQ(line.find("{\"seq\":"), 0u) << line;
    EXPECT_EQ(line.back(), '}') << line;
    EXPECT_NE(line.find("\"kind\":\""), std::string::npos) << line;
    ++lines;
    start = end + 1;
  }
  EXPECT_GE(lines, 2u);
  // The dump carries the breaker transition and names its own trigger.
  EXPECT_NE(content.find("\"name\":\"breaker\""), std::string::npos)
      << content;
  EXPECT_NE(content.find("\"to\":\"open\""), std::string::npos) << content;
  EXPECT_NE(content.find("\"reason\":\"breaker_trip\""), std::string::npos)
      << content;
}

// ---------------------------------------------------------------------------
// Cancellation, deadlines, shutdown
// ---------------------------------------------------------------------------

TEST(ChaosTest, PreCancelledQueryFailsWithCancelled) {
  DatabasePtr db = ChaosDb();
  EngineContext ctx(TestConfig(), db);
  ChoppingExecutor executor(&ctx, 2, 2);
  QueryControls controls;
  controls.cancel = CancelToken::Create();
  controls.cancel.RequestCancel();
  auto future =
      executor.Submit(ChaosPlan("Q1.1"), MakeHypePlacer(), controls);
  Result<TablePtr> result = future.get();
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCancelled());
}

TEST(ChaosTest, ExpiredDeadlineFailsWithCancelled) {
  DatabasePtr db = ChaosDb();
  EngineContext ctx(TestConfig(), db);
  ChoppingExecutor executor(&ctx, 2, 2);
  QueryControls controls;
  controls.deadline =
      std::chrono::steady_clock::now() - std::chrono::milliseconds(1);
  Result<TablePtr> result =
      executor.ExecuteQuery(ChaosPlan("Q1.1"), MakeHypePlacer(), controls);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCancelled());
}

TEST(ChaosTest, MidFlightCancelResolvesEveryFutureAndLeaksNothing) {
  DatabasePtr db = ChaosDb();
  TablePtr expected = Reference("Q1.1");
  EngineContext ctx(TestConfig(), db);
  {
    ChoppingExecutor executor(&ctx, 2, 2);
    std::vector<CancelToken> tokens;
    std::vector<std::future<Result<TablePtr>>> futures;
    for (int i = 0; i < 12; ++i) {
      QueryControls controls;
      controls.cancel = CancelToken::Create();
      tokens.push_back(controls.cancel);
      futures.push_back(
          executor.Submit(ChaosPlan("Q1.1"), MakeHypePlacer(), controls));
    }
    // Cancel every other query while they race through the pool.
    for (size_t i = 0; i < tokens.size(); i += 2) tokens[i].RequestCancel();
    for (size_t i = 0; i < futures.size(); ++i) {
      Result<TablePtr> result = futures[i].get();  // must never throw
      if (result.ok()) {
        EXPECT_TRUE(TablesEqual(*expected, *result.value()));
      } else {
        EXPECT_TRUE(result.status().IsCancelled())
            << result.status().ToString();
      }
    }
  }
  EXPECT_EQ(ctx.simulator().device_heap().used(), 0u);
}

/// The shutdown race: destroying the executor with queries in flight must
/// resolve every future (with the result or Cancelled — never
/// broken_promise) and release all device memory.
TEST(ChaosTest, DestructionWithInFlightQueriesStrandsNoFuture) {
  DatabasePtr db = ChaosDb();
  TablePtr expected = Reference("Q1.1");
  EngineContext ctx(TestConfig(), db);
  for (int cycle = 0; cycle < 20; ++cycle) {
    std::vector<std::future<Result<TablePtr>>> futures;
    {
      ChoppingExecutor executor(&ctx, 2, 2);
      for (int i = 0; i < 8; ++i) {
        futures.push_back(executor.Submit(ChaosPlan("Q1.1"),
                                          MakeDataDrivenPlacer()));
      }
      // Destructor fires with most queries still in flight.
    }
    for (auto& future : futures) {
      ASSERT_TRUE(future.valid());
      Result<TablePtr> result = future.get();  // throws if promise stranded
      if (result.ok()) {
        EXPECT_TRUE(TablesEqual(*expected, *result.value()));
      } else {
        EXPECT_TRUE(result.status().IsCancelled())
            << result.status().ToString();
      }
    }
    ASSERT_EQ(ctx.simulator().device_heap().used(), 0u) << "cycle " << cycle;
  }
}

/// Concurrent submitters plus immediate teardown: the destructor fires the
/// instant the last Submit returns, with nearly every query still in flight.
/// Every future must settle either way.
TEST(ChaosTest, ConcurrentSubmittersSurviveImmediateTeardown) {
  DatabasePtr db = ChaosDb();
  TablePtr expected = Reference("Q1.1");
  EngineContext ctx(TestConfig(), db);
  for (int cycle = 0; cycle < 10; ++cycle) {
    std::vector<std::future<Result<TablePtr>>> futures;
    std::mutex futures_mutex;
    {
      ChoppingExecutor executor(&ctx, 2, 2);
      std::vector<std::thread> submitters;
      for (int t = 0; t < 3; ++t) {
        submitters.emplace_back([&] {
          for (int i = 0; i < 4; ++i) {
            auto future = executor.Submit(ChaosPlan("Q1.1"), MakeHypePlacer());
            std::lock_guard<std::mutex> lock(futures_mutex);
            futures.push_back(std::move(future));
          }
        });
      }
      for (std::thread& submitter : submitters) submitter.join();
      // Destructor races the in-flight queries, not the submitters.
    }
    for (auto& future : futures) {
      Result<TablePtr> result = future.get();
      if (result.ok()) {
        EXPECT_TRUE(TablesEqual(*expected, *result.value()));
      } else {
        EXPECT_TRUE(result.status().IsCancelled()) << result.status().ToString();
      }
    }
  }
  EXPECT_EQ(ctx.simulator().device_heap().used(), 0u);
}

// ---------------------------------------------------------------------------
// Fused pipelines under chaos (DESIGN.md §11)
// ---------------------------------------------------------------------------

/// Explicitly pre-fused plan for a query, asserting it really fused.
PlanNodePtr FusedChaosPlan(const std::string& query_name) {
  PlanNodePtr fused = FusePipelines(ChaosPlan(query_name));
  size_t fused_nodes = 0;
  VisitPlanPostOrder(fused, [&fused_nodes](const PlanNodePtr& node) {
    if (node->op() == PlanOp::kFusedPipeline) ++fused_nodes;
  });
  EXPECT_GE(fused_nodes, 1u) << query_name;
  return fused;
}

/// Fused pipelines run as single device tasks, so a fault mid-pipeline
/// classifies and retries/falls back like any operator: under mixed faults
/// the fused plan must still match the fault-free unfused reference.
TEST(ChaosTest, FusedPipelinesSurviveMixedFaultsWithParity) {
  DatabasePtr db = ChaosDb();
  for (Strategy strategy :
       {Strategy::kGpuOnly, Strategy::kDataDrivenChopping}) {
    EngineContext ctx(TestConfig(), db);
    {
      StrategyRunner runner(&ctx, strategy);
      runner.RefreshDataPlacement();
      FaultInjector& injector = ctx.simulator().fault_injector();
      injector.Reseed(0xf0f0u + static_cast<uint64_t>(strategy));
      injector.SetSchedule(
          FaultSite::kDeviceAlloc,
          FaultSchedule::WithProbability(FaultKind::kHeapExhausted, 0.3));
      injector.SetSchedule(
          FaultSite::kKernel,
          FaultSchedule::WithProbability(FaultKind::kTransient, 0.2));
      for (const char* name : kChaosQueries) {
        TablePtr expected = Reference(name);  // fault-free CPU reference
        for (int round = 0; round < 3; ++round) {
          Result<TablePtr> result = runner.RunQuery(FusedChaosPlan(name));
          ASSERT_TRUE(result.ok())
              << StrategyToString(strategy) << " " << name << ": "
              << result.status().ToString();
          EXPECT_TRUE(TablesEqual(*expected, *result.value()))
              << StrategyToString(strategy) << " " << name;
        }
      }
      EXPECT_GT(injector.total_faults(), 0u) << StrategyToString(strategy);
    }
    EXPECT_EQ(ctx.simulator().device_heap().used(), 0u)
        << StrategyToString(strategy);
  }
}

// ---------------------------------------------------------------------------
// Multi-device chaos: losing one of four co-processors (DESIGN.md §12)
// ---------------------------------------------------------------------------

SystemConfig FourDeviceConfig() {
  SystemConfig config = TestConfig();
  config.device_count = 4;
  return config;
}

/// Kill one of four devices while a concurrent sweep is in flight: every
/// query must still return the reference result — shards re-home to the
/// survivors, in-flight work on the dead device classifies as DeviceLost and
/// falls back, and no device byte stays stranded on the corpse.
TEST(MultiDeviceChaosTest, KillingOneOfFourMidSweepLosesNoQueries) {
  DatabasePtr db = ChaosDb();
  EngineContext ctx(FourDeviceConfig(), db);
  StrategyRunner runner(&ctx, Strategy::kDataDrivenChopping);
  // Warm phase trains access counts; the placement job then shards the hot
  // columns across all four devices, so there is device work to disrupt.
  for (const char* name : kChaosQueries) {
    ASSERT_TRUE(runner.RunQuery(ChaosPlan(name)).ok());
  }
  runner.RefreshDataPlacement();

  std::vector<TablePtr> expected;
  for (const char* name : kChaosQueries) expected.push_back(Reference(name));

  std::atomic<int> failed{0}, wrong{0};
  std::vector<std::thread> users;
  for (int u = 0; u < 4; ++u) {
    users.emplace_back([&, u] {
      for (int round = 0; round < 3; ++round) {
        const int q = (u + round) % 3;
        Result<TablePtr> result = runner.RunQuery(ChaosPlan(kChaosQueries[q]));
        if (!result.ok()) {
          ++failed;
        } else if (!TablesEqual(*expected[static_cast<size_t>(q)],
                                *result.value())) {
          ++wrong;
        }
      }
    });
  }
  // Device 2 falls off the bus mid-sweep: the injector refuses everything,
  // the sharding layer stops routing there, and its shard is re-sourced from
  // the host copies onto the survivors' own PCIe links.
  ctx.simulator().fault_injector(2).ForceOffline(1 << 20);
  ctx.sharding().MarkDeviceLost(2);
  ctx.sharding().RebalanceAway(2, /*source_reachable=*/false);
  for (std::thread& user : users) user.join();

  EXPECT_EQ(failed.load(), 0);
  EXPECT_EQ(wrong.load(), 0);
  EXPECT_EQ(ctx.simulator().device_heap(2).used(), 0u);
  EXPECT_EQ(ctx.cache(2).used_bytes(), 0u);
}

/// The breaker-trip path on a multi-device machine: an abort storm on one
/// device opens only that device's breaker; its shard migrates to survivors
/// over the D2D link (it is still on the bus); half-open probes close the
/// breaker again; and the restored device rejoins the placement pool.
TEST(MultiDeviceChaosTest, BreakerTripRebalancesThenHalfOpenRecoveryReadmits) {
  DatabasePtr db = ChaosDb();
  SystemConfig config = FourDeviceConfig();
  config.d2d_mbps = 1000.0;  // dedicated interconnect: migrate, don't reload
  EngineContext ctx(config, db);
  ctx.breaker(1).Configure(SmallBreaker());

  const std::string key = "lineorder.lo_quantity";
  ASSERT_TRUE(
      ctx.cache(1).Pin(db->GetColumnByQualifiedName(key).value(), key).ok());

  // Abort storm on device 1 only: its breaker opens, the others stay closed.
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(ctx.breaker(1).AllowDevice());
    ctx.breaker(1).RecordDeviceAbort();
  }
  ASSERT_EQ(ctx.breaker(1).state(), DeviceCircuitBreaker::State::kOpen);
  EXPECT_TRUE(ctx.breaker(0).device_available());
  EXPECT_TRUE(ctx.breaker(2).device_available());

  // The tripped device leaves the pool; its cached shard moves to the
  // survivors over the D2D path and the source cache empties.
  ctx.sharding().MarkDeviceLost(1);
  EXPECT_EQ(ctx.sharding().RebalanceAway(1, /*source_reachable=*/true), 1);
  EXPECT_GT(ctx.simulator().d2d_bytes(), 0u);
  EXPECT_EQ(ctx.cache(1).used_bytes(), 0u);
  const int new_home = ctx.sharding().AffinityDevice(key);
  ASSERT_GE(new_home, 0);
  ASSERT_NE(new_home, 1);
  EXPECT_TRUE(ctx.cache(new_home).IsCached(key));
  // Rebalancing converged: a second pass finds nothing left to move.
  EXPECT_EQ(ctx.sharding().RebalanceAway(1, /*source_reachable=*/true), 0);

  // Placement never offers device 1 while it is out, even with a resident
  // input pointing there.
  for (int i = 0; i < 8; ++i) {
    EXPECT_NE(ctx.sharding().PickDevice({}, {{1, 4096}}, 0), 1);
  }

  // Recovery: open-state cooldown advances on placer peeks, two successful
  // probes close the breaker, and the device is re-admitted.
  for (int i = 0; i < 4; ++i) EXPECT_FALSE(ctx.breaker(1).device_available());
  ASSERT_EQ(ctx.breaker(1).state(), DeviceCircuitBreaker::State::kHalfOpen);
  ASSERT_TRUE(ctx.breaker(1).AllowDevice());
  ctx.breaker(1).RecordDeviceSuccess();
  ASSERT_TRUE(ctx.breaker(1).AllowDevice());
  ctx.breaker(1).RecordDeviceSuccess();
  ASSERT_EQ(ctx.breaker(1).state(), DeviceCircuitBreaker::State::kClosed);
  ctx.sharding().MarkDeviceRestored(1);

  // Re-admitted: resident-input affinity lands on device 1 again, and a
  // sweep over the recovered machine still returns correct results.
  EXPECT_EQ(ctx.sharding().PickDevice({}, {{1, 4096}, {1, 4096}}, 0), 1);
  StrategyRunner runner(&ctx, Strategy::kDataDrivenChopping);
  for (const char* name : kChaosQueries) {
    TablePtr expected = Reference(name);
    Result<TablePtr> result = runner.RunQuery(ChaosPlan(name));
    ASSERT_TRUE(result.ok()) << name << ": " << result.status().ToString();
    EXPECT_TRUE(TablesEqual(*expected, *result.value())) << name;
  }
}

/// Cancellation and deadlines apply to fused plans exactly as to unfused
/// ones: a fused pipeline is one schedulable unit, checked at the same
/// checkpoints, and never strands device memory.
TEST(ChaosTest, FusedPipelineRespectsCancellationAndDeadline) {
  DatabasePtr db = ChaosDb();
  EngineContext ctx(TestConfig(), db);
  {
    ChoppingExecutor executor(&ctx, 2, 2);
    {
      QueryControls controls;
      controls.cancel = CancelToken::Create();
      controls.cancel.RequestCancel();
      auto future =
          executor.Submit(FusedChaosPlan("Q2.1"), MakeHypePlacer(), controls);
      Result<TablePtr> result = future.get();
      ASSERT_FALSE(result.ok());
      EXPECT_TRUE(result.status().IsCancelled());
    }
    {
      QueryControls controls;
      controls.deadline =
          std::chrono::steady_clock::now() - std::chrono::milliseconds(1);
      Result<TablePtr> result = executor.ExecuteQuery(
          FusedChaosPlan("Q2.1"), MakeHypePlacer(), controls);
      ASSERT_FALSE(result.ok());
      EXPECT_TRUE(result.status().IsCancelled());
    }
  }
  EXPECT_EQ(ctx.simulator().device_heap().used(), 0u);
}

}  // namespace
}  // namespace hetdb
