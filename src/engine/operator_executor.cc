#include "engine/operator_executor.h"

#include <string>
#include <utility>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "telemetry/query_stats.h"

namespace hetdb {

namespace {

/// Attributes modeled kernel time to the node the calling thread is
/// executing (no-op outside a QueryStatsScope).
void AttributeKernelMicros(ProcessorKind processor, double micros) {
  NodeStats* stats = QueryStatsScope::current_node();
  if (stats == nullptr) return;
  auto& counter = processor == ProcessorKind::kGpu ? stats->gpu_kernel_micros
                                                   : stats->cpu_kernel_micros;
  counter.fetch_add(static_cast<int64_t>(micros), std::memory_order_relaxed);
}

/// Stamps node-level outcome fields after a successful execution.
void AttributeOutcome(const std::vector<OperatorResult*>& inputs,
                      const OperatorResult& result, ProcessorKind ran_on) {
  NodeStats* stats = QueryStatsScope::current_node();
  if (stats == nullptr) return;
  stats->ran_on.store(ran_on == ProcessorKind::kGpu ? 1 : 0,
                      std::memory_order_relaxed);
  stats->device.store(ran_on == ProcessorKind::kGpu ? result.device : -1,
                      std::memory_order_relaxed);
  int64_t rows_in = 0;
  for (const OperatorResult* input : inputs) {
    if (input != nullptr && input->table != nullptr) {
      rows_in += static_cast<int64_t>(input->table->num_rows());
    }
  }
  stats->rows_in.store(rows_in, std::memory_order_relaxed);
  if (result.table != nullptr) {
    stats->rows_out.store(static_cast<int64_t>(result.table->num_rows()),
                          std::memory_order_relaxed);
  }
}

/// CPU execution: marshal device-resident inputs back to the host, run the
/// kernel, charge modeled CPU time (occupying a CPU slot).
Result<OperatorResult> ExecuteOnCpu(const PlanNode& node,
                                    const std::vector<OperatorResult*>& inputs,
                                    EngineContext& ctx) {
  std::vector<TablePtr> input_tables;
  input_tables.reserve(inputs.size());
  for (OperatorResult* input : inputs) {
    HETDB_CHECK(input != nullptr && input->table != nullptr);
    if (input->location == ProcessorKind::kGpu && !input->base_data) {
      // Intermediate result produced on the device: copy it back. This is
      // the cost a compile-time plan pays when a device operator aborted and
      // its successor was left on the other processor (Figure 8).
      HETDB_RETURN_NOT_OK(TransferWithRetry(input->table_bytes(),
                                           TransferDirection::kDeviceToHost,
                                           ctx, input->device));
      input->ReleaseDeviceResources();
      input->location = ProcessorKind::kCpu;
    }
    input_tables.push_back(input->table);
  }

  Stopwatch kernel_watch;
  HETDB_ASSIGN_OR_RETURN(TablePtr output, node.ComputeResult(input_tables));

  if (node.op() != PlanOp::kScan) {
    const size_t input_bytes = node.InputBytes(input_tables);
    ctx.simulator().ChargeCompute(ProcessorKind::kCpu, node.op_class(),
                                  input_bytes);
    AttributeKernelMicros(
        ProcessorKind::kCpu,
        ctx.simulator().EstimateComputeMicros(ProcessorKind::kCpu,
                                              node.op_class(), input_bytes));
    // HyPE learns from *measured* durations (normalized back to modeled
    // units), so the model captures slot contention and queueing that the
    // analytical bootstrap cannot know about.
    ctx.cost_model().Observe(
        ProcessorKind::kCpu, node.op_class(), input_bytes,
        kernel_watch.ElapsedMicros() / ctx.config().time_scale);
  }
  ctx.metrics().RecordOperator(/*on_gpu=*/false);

  OperatorResult result;
  result.table = std::move(output);
  result.location = ProcessorKind::kCpu;
  result.base_data = node.op() == PlanOp::kScan;
  return result;
}

/// Consults the fault injector's kernel site before a device kernel launch.
/// Returns non-OK when the launch must fail; a latency spike instead charges
/// the extra modeled kernel time and succeeds.
Status CheckKernelLaunch(const PlanNode& node, size_t input_bytes,
                         EngineContext& ctx, int device) {
  FaultInjector& injector = ctx.simulator().fault_injector(device);
  if (!injector.enabled()) return Status::OK();
  const FaultDecision fault =
      injector.Decide(FaultSite::kKernel, input_bytes);
  if (fault.fault()) {
    return fault.ToStatus("kernel " + node.label());
  }
  if (fault.kind == FaultKind::kLatencySpike) {
    // Thermal throttling: the kernel succeeds but runs `latency_factor`
    // times slower; charge the extra time on top of the regular kernel cost.
    ctx.simulator().clock().Charge(
        (fault.latency_factor - 1.0) *
        ctx.simulator().EstimateComputeMicros(ProcessorKind::kGpu,
                                              node.op_class(), input_bytes));
  }
  return Status::OK();
}

/// Device execution with staged allocation; see the header for the phases.
Result<OperatorResult> ExecuteOnGpu(const PlanNode& node,
                                    const std::vector<OperatorResult*>& inputs,
                                    EngineContext& ctx, int device) {
  Stopwatch abort_watch;
  DeviceAllocator& heap = ctx.simulator().device_heap(device);

  auto abort_with = [&](const Status& status) -> Status {
    ctx.metrics().RecordGpuAbort(abort_watch.ElapsedMicros(), device);
    return status;
  };

  OperatorResult result;
  result.location = ProcessorKind::kGpu;
  result.device = device;

  // --- Scans: acquire base columns through the data cache -------------------
  if (node.op() == PlanOp::kScan) {
    const auto& scan = static_cast<const ScanNode&>(node);
    for (const auto& [key, column] : scan.base_columns()) {
      DataCache::Access access =
          ctx.cache(device).RequireOnDevice(column, key);
      if (!access.status.ok()) {
        // The load transfer faulted; the column is neither cached nor held.
        return abort_with(access.status);
      }
      if (QueryStats* stats = QueryStatsScope::current_stats()) {
        stats->OnCacheAccess(access.hit, QueryStatsScope::current_node());
      }
      if (access.resident) {
        result.cache_leases.push_back(std::move(access.lease));
        continue;
      }
      // Cache cannot hold the column: it was transferred into device heap
      // for this operator only (the thrashing path). Hold the bytes.
      Result<DeviceAllocation> allocation = heap.Allocate(
          ctx.cache(device).EntryBytes(*column), "transient input " + key);
      if (!allocation.ok()) return abort_with(allocation.status());
      result.device_allocations.push_back(std::move(allocation).value());
    }
    Status launch = CheckKernelLaunch(node, node.InputBytes({}), ctx, device);
    if (!launch.ok()) return abort_with(launch);
    HETDB_ASSIGN_OR_RETURN(TablePtr output, node.ComputeResult({}));
    result.table = std::move(output);
    result.base_data = true;
    ctx.metrics().RecordOperator(/*on_gpu=*/true, device);
    return result;
  }

  // --- Phase 1: inputs -------------------------------------------------------
  std::vector<TablePtr> input_tables;
  input_tables.reserve(inputs.size());
  for (OperatorResult* input : inputs) {
    HETDB_CHECK(input != nullptr && input->table != nullptr);
    const bool on_this_device =
        input->location == ProcessorKind::kGpu && input->device == device;
    if (!on_this_device) {
      // The bytes are not on this device yet: allocate a buffer here and
      // bring them in over the cheapest correct path.
      Result<DeviceAllocation> allocation = heap.Allocate(
          input->table_bytes(), "device input for " + node.label());
      if (!allocation.ok()) return abort_with(allocation.status());
      result.device_allocations.push_back(std::move(allocation).value());
      Status transfer;
      if (input->location == ProcessorKind::kGpu && !input->base_data) {
        // Intermediate result held by another device: migrate it over the
        // D2D path (dedicated link, or D2H + H2D through the host).
        transfer = ctx.simulator().TransferDeviceToDevice(
            input->table_bytes(), input->device, device);
      } else {
        // Host-resident (or base data, which always has a host copy): ship
        // it over this device's own PCIe link.
        transfer = ctx.simulator().bus(device).Transfer(
            input->table_bytes(), TransferDirection::kHostToDevice);
      }
      if (!transfer.ok()) return abort_with(transfer);
    }
    input_tables.push_back(input->table);
  }

  // --- Phase 2: intermediate data structures ---------------------------------
  const size_t intermediate_bytes = node.IntermediateDeviceBytes(input_tables);
  DeviceAllocation intermediates;
  if (intermediate_bytes > 0) {
    Result<DeviceAllocation> allocation =
        heap.Allocate(intermediate_bytes, "intermediates for " + node.label());
    if (!allocation.ok()) return abort_with(allocation.status());
    intermediates = std::move(allocation).value();
  }

  // --- Phase 3: kernel --------------------------------------------------------
  Status launch =
      CheckKernelLaunch(node, node.InputBytes(input_tables), ctx, device);
  if (!launch.ok()) return abort_with(launch);
  Stopwatch kernel_watch;
  HETDB_ASSIGN_OR_RETURN(TablePtr output, node.ComputeResult(input_tables));
  const size_t input_bytes = node.InputBytes(input_tables);
  ctx.simulator().ChargeCompute(ProcessorKind::kGpu, node.op_class(),
                                input_bytes, device);
  AttributeKernelMicros(
      ProcessorKind::kGpu,
      ctx.simulator().EstimateComputeMicros(ProcessorKind::kGpu,
                                            node.op_class(), input_bytes));
  ctx.cost_model().Observe(
      ProcessorKind::kGpu, node.op_class(), input_bytes,
      kernel_watch.ElapsedMicros() / ctx.config().time_scale);

  // --- Phase 4: result buffer (exact size, known only now) --------------------
  const size_t output_bytes = output->data_bytes();
  if (output_bytes > 0) {
    Result<DeviceAllocation> allocation =
        heap.Allocate(output_bytes, "result of " + node.label());
    // Failing here wastes the whole kernel — this is what makes aborts late
    // in an operator expensive (Figure 20's wasted time).
    if (!allocation.ok()) return abort_with(allocation.status());
    result.device_allocations.push_back(std::move(allocation).value());
  }
  intermediates.Release();

  result.table = std::move(output);
  ctx.metrics().RecordOperator(/*on_gpu=*/true, device);
  return result;
}

}  // namespace

Result<OperatorResult> ExecuteOperator(const PlanNode& node,
                                       const std::vector<OperatorResult*>& inputs,
                                       ProcessorKind processor,
                                       EngineContext& ctx, int device) {
  if (processor == ProcessorKind::kCpu) {
    return ExecuteOnCpu(node, inputs, ctx);
  }
  return ExecuteOnGpu(node, inputs, ctx, device);
}

Result<ExecutedOperator> ExecuteWithFallback(
    const PlanNode& node, const std::vector<OperatorResult*>& inputs,
    ProcessorKind processor, EngineContext& ctx, int device) {
  bool aborted = false;
  NodeStats* node_stats = QueryStatsScope::current_node();
  if (node_stats != nullptr) {
    node_stats->requested.store(processor == ProcessorKind::kGpu ? 1 : 0,
                                std::memory_order_relaxed);
  }
  if (processor == ProcessorKind::kGpu) {
    DeviceCircuitBreaker& breaker = ctx.breaker(device);
    const SystemConfig& config = ctx.config();
    if (!breaker.AllowDevice()) {
      // Breaker open: the device is aborting most operators right now, so
      // don't even start one — go straight to the CPU without paying the
      // wasted start-to-abort time of Figure 20.
      ctx.metrics().registry().GetCounter("breaker.short_circuits").Increment();
      processor = ProcessorKind::kCpu;
    } else {
      // Every iteration holds one breaker admission and reports exactly one
      // outcome; retries re-request admission so half-open probe accounting
      // stays exact.
      for (int attempt = 0;; ++attempt) {
        if (node_stats != nullptr) {
          node_stats->attempts.fetch_add(1, std::memory_order_relaxed);
        }
        Result<OperatorResult> device_try =
            ExecuteOperator(node, inputs, ProcessorKind::kGpu, ctx, device);
        if (device_try.ok()) {
          breaker.RecordDeviceSuccess();
          ExecutedOperator executed;
          executed.result = std::move(device_try).value();
          executed.ran_on = ProcessorKind::kGpu;
          executed.aborted = false;
          AttributeOutcome(inputs, executed.result, ProcessorKind::kGpu);
          return executed;
        }
        const Status& status = device_try.status();
        if (!status.IsDeviceAbort()) {
          // Logic error (bad plan, kernel bug): not the device's fault, not
          // recoverable by moving processors.
          return status;
        }
        breaker.RecordDeviceAbort(status.IsDeviceLost());
        // Only transient faults are worth retrying on the device: heap
        // contention (ResourceExhausted) does not resolve by waiting inside
        // the operator (Section 2.5.1), and a lost device stays lost.
        if (status.IsUnavailable() && attempt < config.device_retry_limit &&
            breaker.AllowDevice()) {
          const double backoff_micros =
              ctx.simulator().RetryBackoffMicros(attempt);
          ctx.simulator().clock().Charge(backoff_micros);
          MetricRegistry& registry = ctx.metrics().registry();
          registry.GetCounter("engine.device_retries").Increment();
          registry.GetHistogram("engine.retry_backoff_us")
              .Record(static_cast<int64_t>(backoff_micros));
          if (node_stats != nullptr) {
            node_stats->device_retries.fetch_add(1, std::memory_order_relaxed);
          }
          continue;
        }
        aborted = true;
        if (node_stats != nullptr) {
          node_stats->cpu_fallbacks.fetch_add(1, std::memory_order_relaxed);
        }
        break;
      }
      // The paper's fault tolerance: restart only the failed operator on the
      // CPU; already-computed child results are preserved (Section 2.5.1).
      processor = ProcessorKind::kCpu;
    }
  }
  if (node_stats != nullptr) {
    node_stats->attempts.fetch_add(1, std::memory_order_relaxed);
  }
  Result<OperatorResult> run = ExecuteOperator(node, inputs, processor, ctx);
  if (!run.ok()) return run.status();
  ExecutedOperator executed;
  executed.result = std::move(run).value();
  executed.ran_on = processor;
  executed.aborted = aborted;
  AttributeOutcome(inputs, executed.result, processor);
  return executed;
}

Status TransferWithRetry(size_t bytes, TransferDirection direction,
                         EngineContext& ctx, int device) {
  const SystemConfig& config = ctx.config();
  for (int attempt = 0;; ++attempt) {
    Status status = ctx.simulator().bus(device).Transfer(bytes, direction);
    if (status.ok() || !status.IsUnavailable() ||
        attempt >= config.transfer_retry_limit) {
      return status;
    }
    const double backoff_micros = ctx.simulator().RetryBackoffMicros(attempt);
    ctx.simulator().clock().Charge(backoff_micros);
    ctx.metrics().registry().GetCounter("engine.transfer_retries").Increment();
  }
}

}  // namespace hetdb
