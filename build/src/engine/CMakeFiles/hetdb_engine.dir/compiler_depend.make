# Empty compiler generated dependencies file for hetdb_engine.
# This may be replaced when dependencies are built.
