#ifndef HETDB_PLACEMENT_COMPILE_TIME_H_
#define HETDB_PLACEMENT_COMPILE_TIME_H_

#include "engine/engine_context.h"
#include "engine/query_executor.h"
#include "operators/plan_node.h"

namespace hetdb {

/// All operators on the CPU.
PlacementMap PlaceCpuOnly(const PlanNodePtr& root);

/// "GPU Preferred": all operators compile-time-placed on the device. The
/// engine's fault handling moves aborting operators back to the CPU, but the
/// successors keep their device placement — the Figure 8 pathology.
PlacementMap PlaceGpuOnly(const PlanNodePtr& root);

/// Compile-time data-driven placement (Section 3.3): a scan goes to the
/// device iff *all* its input columns are currently cached there; any other
/// operator goes to the device iff all of its children did. Operators chain
/// on the device from the leaves until an input is missing, after which the
/// rest of the query runs on the CPU.
PlacementMap PlaceDataDriven(const PlanNodePtr& root, EngineContext& ctx);

/// CoGaDB's default Critical Path optimizer (Appendix D): iterative
/// refinement over "leaf chains". Starting from a pure CPU plan, each round
/// tentatively moves one more leaf (and its unary chain up to the first
/// binary ancestor) to the device, estimates the response time of the
/// resulting hybrid plan with the (learned) cost models, and keeps the best
/// plan; it stops when no single additional leaf improves the estimate or
/// after `max_iterations` rounds.
PlacementMap PlaceCriticalPath(const PlanNodePtr& root, EngineContext& ctx,
                               int max_iterations = 32);

/// Estimated response time (microseconds) of a placed plan, using the cost
/// model and static cardinality guesses. Exposed for tests and diagnostics.
double EstimatePlanResponseMicros(const PlanNodePtr& root,
                                  const PlacementMap& placement,
                                  EngineContext& ctx);

}  // namespace hetdb

#endif  // HETDB_PLACEMENT_COMPILE_TIME_H_
