file(REMOVE_RECURSE
  "libhetdb_hype.a"
)
