#include "engine/chopping_executor.h"

#include <utility>

#include "common/logging.h"
#include "common/parallel.h"
#include "telemetry/trace_recorder.h"

namespace hetdb {

ChoppingExecutor::ChoppingExecutor(EngineContext* ctx, int cpu_workers,
                                   int gpu_workers)
    : ctx_(ctx), cpu_workers_(cpu_workers), gpu_workers_(gpu_workers) {
  HETDB_CHECK(cpu_workers_ > 0 && gpu_workers_ > 0);
  workers_.reserve(cpu_workers_ + gpu_workers_);
  for (int i = 0; i < cpu_workers_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(ProcessorKind::kCpu); });
  }
  for (int i = 0; i < gpu_workers_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(ProcessorKind::kGpu); });
  }
}

ChoppingExecutor::~ChoppingExecutor() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  ready_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

std::future<Result<TablePtr>> ChoppingExecutor::Submit(PlanNodePtr root,
                                                       RuntimePlacer placer) {
  auto query = std::make_shared<QueryExec>();
  query->root = std::move(root);
  query->placer = std::move(placer);
  query->query_id = Telemetry::NextQueryId();
  std::future<Result<TablePtr>> future = query->promise.get_future();

  // Build the task graph (one task per operator).
  struct Builder {
    QueryExec* query;
    OpTask* Build(const PlanNodePtr& node, OpTask* parent) {
      query->tasks.push_back(std::make_unique<OpTask>());
      OpTask* task = query->tasks.back().get();
      task->query = query;
      task->node = node.get();
      task->parent = parent;
      task->pending_children.store(static_cast<int>(node->children().size()),
                                   std::memory_order_relaxed);
      for (const PlanNodePtr& child : node->children()) {
        task->children.push_back(Build(child, task));
      }
      return task;
    }
  };
  Builder builder{query.get()};
  builder.Build(query->root, nullptr);

  // Chop: all leaves enter the global operator stream immediately — they
  // have no dependencies (Figure 10).
  for (const auto& task : query->tasks) {
    if (task->children.empty()) ScheduleTask(query, task.get());
  }
  return future;
}

Result<TablePtr> ChoppingExecutor::ExecuteQuery(PlanNodePtr root,
                                                RuntimePlacer placer) {
  return Submit(std::move(root), std::move(placer)).get();
}

void ChoppingExecutor::ScheduleTask(const QueryExecPtr& query, OpTask* task) {
  std::vector<OperatorResult*> inputs;
  inputs.reserve(task->children.size());
  for (OpTask* child : task->children) inputs.push_back(&child->result);

  const ProcessorKind kind = query->placer(*task->node, inputs, *ctx_);
  task->assigned = kind;

  // Track queue load for HyPE's completion-time estimates. The estimate
  // includes the kernel only; transfers are second-order for load purposes.
  size_t input_bytes = 0;
  for (OperatorResult* input : inputs) input_bytes += input->table_bytes();
  if (task->node->op() == PlanOp::kScan) {
    input_bytes = task->node->InputBytes({});
  }
  task->load_estimate_micros =
      ctx_->cost_model().EstimateMicros(kind, task->node->op_class(),
                                        input_bytes);
  ctx_->load_tracker().AddPending(kind, task->load_estimate_micros);

  if (TraceRecorder::enabled()) {
    RecordInstantEvent(
        "place " + task->node->label(), "placement", query->query_id,
        {{"processor", ProcessorKindToString(kind)},
         {"load_estimate_us",
          std::to_string(static_cast<int64_t>(task->load_estimate_micros))}});
  }

  {
    std::lock_guard<std::mutex> lock(mutex_);
    // LIFO ready queues: an operator whose children just completed runs
    // before leaves of queries that have not started yet. This drains
    // queries depth-first, so the device heap holds the intermediate
    // results of only ~pool-size queries at a time instead of one
    // unconsumed result per admitted query — the memory bound that makes
    // the chopping pool an effective cure for heap contention.
    ready_queues_[static_cast<int>(kind)].emplace_front(query, task);
  }
  ready_cv_.notify_all();
}

void ChoppingExecutor::WorkerLoop(ProcessorKind kind) {
  const int queue = static_cast<int>(kind);
  while (true) {
    QueryExecPtr query;
    OpTask* task = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      ready_cv_.wait(lock, [this, queue] {
        return shutting_down_ || !ready_queues_[queue].empty();
      });
      if (shutting_down_ && ready_queues_[queue].empty()) return;
      query = std::move(ready_queues_[queue].front().first);
      task = ready_queues_[queue].front().second;
      ready_queues_[queue].pop_front();
    }
    RunTask(query, task, kind);
  }
}

void ChoppingExecutor::RunTask(const QueryExecPtr& query, OpTask* task,
                               ProcessorKind kind) {
  ctx_->load_tracker().RemovePending(kind, task->load_estimate_micros);
  if (query->failed.load(std::memory_order_acquire)) {
    return;  // sibling already failed the query; drop silently
  }

  std::vector<OperatorResult*> inputs;
  inputs.reserve(task->children.size());
  for (OpTask* child : task->children) inputs.push_back(&child->result);

  TraceSpan span;
  if (TraceRecorder::enabled()) {
    span.Begin(task->node->label(), "operator");
    span.SetQuery(query->query_id);
    span.SetNode(reinterpret_cast<uint64_t>(task->node),
                 task->parent != nullptr
                     ? reinterpret_cast<uint64_t>(task->parent->node)
                     : 0);
    span.AddArg("requested", ProcessorKindToString(kind));
  }
  // Charge this worker's core against the shared DoP budget while the
  // operator runs, so kernel-internal morsel parallelism on top of a busy
  // chopping pool cannot oversubscribe the machine. Best effort: with no
  // token available the operator still runs (kernels just stay serial).
  DopBudget::Token dop_token(&DopBudget::Global());
  Result<ExecutedOperator> executed =
      ExecuteWithFallback(*task->node, inputs, kind, *ctx_);
  if (!executed.ok()) {
    if (span.active()) span.AddArg("error", executed.status().ToString());
    FailQuery(query, executed.status());
    return;
  }
  if (span.active()) {
    span.AddArg("processor", ProcessorKindToString(executed.value().ran_on));
    if (executed.value().aborted) span.AddArg("cpu_retry", "true");
    span.End();  // the span covers execution only, not parent scheduling
  }
  task->result = std::move(executed).value().result;

  // Free the inputs we just consumed (device allocations, cache pins).
  for (OpTask* child : task->children) child->result = OperatorResult();

  if (task->parent == nullptr) {
    // Root finished: deliver the result on the host.
    if (task->result.location == ProcessorKind::kGpu &&
        !task->result.base_data) {
      ctx_->simulator().bus().Transfer(task->result.table_bytes(),
                                       TransferDirection::kDeviceToHost);
      task->result.ReleaseDeviceResources();
    }
    ctx_->metrics().RecordQueryDone();
    query->promise.set_value(task->result.table);
    return;
  }

  // Notify the parent; the last completing child inserts it into the stream
  // (Figure 11).
  if (task->parent->pending_children.fetch_sub(
          1, std::memory_order_acq_rel) == 1) {
    ScheduleTask(query, task->parent);
  }
}

void ChoppingExecutor::FailQuery(const QueryExecPtr& query,
                                 const Status& status) {
  bool expected = false;
  if (query->failed.compare_exchange_strong(expected, true,
                                            std::memory_order_acq_rel)) {
    query->promise.set_value(status);
  }
}

}  // namespace hetdb
