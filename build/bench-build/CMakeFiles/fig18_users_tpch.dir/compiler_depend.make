# Empty compiler generated dependencies file for fig18_users_tpch.
# This may be replaced when dependencies are built.
