// Figure 25 (Appendix): per-query latencies of all 13 SSB queries as the
// number of parallel users grows (SF 10), under Data-Driven Chopping. Short
// queries slow down moderately under the concurrency bound; long queries
// stay stable — the latency/robustness trade-off discussed in Section 6.2.2.

#include "bench/bench_util.h"

using namespace hetdb;
using namespace hetdb::bench;

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv);
  const double sf = args.quick ? 5 : 10;
  const std::vector<int> users =
      args.quick ? std::vector<int>{1, 8} : std::vector<int>{1, 5, 10, 20};

  Banner("Figure 25",
         "Latency of every SSB query vs parallel users (SF " +
             std::to_string(static_cast<int>(sf)) +
             ", Data-Driven Chopping)");

  SsbGeneratorOptions gen;
  args.ApplySeed(gen);
  gen.scale_factor = sf;
  DatabasePtr db = GenerateSsbDatabase(gen);

  std::vector<WorkloadRunResult> results;
  for (int user_count : users) {
    WorkloadRunOptions options;
    options.repetitions = args.quick ? 1 : 2;
    options.num_users = user_count;
    results.push_back(RunPoint(PaperConfig(args.time_scale), db,
                               Strategy::kDataDrivenChopping, SsbQueries(),
                               options));
  }

  std::vector<std::string> header = {"query"};
  for (int user_count : users) {
    header.push_back(std::to_string(user_count) + "_users[ms]");
  }
  PrintHeader(header);
  for (const NamedQuery& query : SsbQueries()) {
    PrintCell(query.name);
    for (const WorkloadRunResult& result : results) {
      auto it = result.latency_ms_by_query.find(query.name);
      PrintCell(it != result.latency_ms_by_query.end() ? it->second : -1.0);
    }
    EndRow();
  }
  return 0;
}
