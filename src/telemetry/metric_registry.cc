#include "telemetry/metric_registry.h"

namespace hetdb {

Counter& MetricRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return *slot;
}

void MetricRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

std::vector<std::pair<std::string, int64_t>> MetricRegistry::CounterValues()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, int64_t>> values;
  values.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    values.emplace_back(name, counter->value());
  }
  return values;
}

std::vector<std::pair<std::string, int64_t>> MetricRegistry::GaugeValues()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, int64_t>> values;
  values.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    values.emplace_back(name, gauge->value());
  }
  return values;
}

std::vector<std::pair<std::string, HistogramSnapshot>>
MetricRegistry::HistogramSnapshots() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, HistogramSnapshot>> snapshots;
  snapshots.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    snapshots.emplace_back(name, histogram->Snapshot());
  }
  return snapshots;
}

}  // namespace hetdb
