file(REMOVE_RECURSE
  "../bench/abl_pool_size"
  "../bench/abl_pool_size.pdb"
  "CMakeFiles/abl_pool_size.dir/abl_pool_size.cpp.o"
  "CMakeFiles/abl_pool_size.dir/abl_pool_size.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_pool_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
