// Figure 16: memory footprint of the SSB and TPC-H workloads vs scale
// factor, against the device data-cache capacity. The paper's point: from
// SF 15 the working set significantly exceeds the cache, which is where the
// cache-thrashing effect starts in Figure 14. Computed from real generated
// data (bytes of every base column the workload's queries reference).

#include <set>

#include "bench/bench_util.h"
#include "tpch/tpch_queries.h"

using namespace hetdb;
using namespace hetdb::bench;

namespace {

/// Bytes of all base columns referenced by the workload's scans.
size_t WorkloadFootprint(const DatabasePtr& db,
                         const std::vector<NamedQuery>& queries) {
  std::set<std::string> referenced;
  size_t bytes = 0;
  for (const NamedQuery& query : queries) {
    Result<PlanNodePtr> plan = query.builder(*db);
    HETDB_CHECK(plan.ok());
    VisitPlanPostOrder(plan.value(), [&](const PlanNodePtr& node) {
      if (node->op() != PlanOp::kScan) return;
      const auto& scan = static_cast<const ScanNode&>(*node);
      for (const auto& [key, column] : scan.base_columns()) {
        if (referenced.insert(key).second) bytes += column->data_bytes();
      }
    });
  }
  return bytes;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv);
  (void)args;
  Banner("Figure 16",
         "Workload memory footprint vs scale factor (device cache: 24 MiB)");
  PrintHeader({"sf", "ssb[MiB]", "tpch[MiB]", "cache[MiB]"});
  for (double sf : {5, 10, 15, 20, 25, 30}) {
    SsbGeneratorOptions ssb_gen;
    args.ApplySeed(ssb_gen);
    ssb_gen.scale_factor = sf;
    DatabasePtr ssb_db = GenerateSsbDatabase(ssb_gen);
    TpchGeneratorOptions tpch_gen;
    args.ApplySeed(tpch_gen);
    tpch_gen.scale_factor = sf;
    DatabasePtr tpch_db = GenerateTpchDatabase(tpch_gen);
    PrintCell(static_cast<uint64_t>(sf));
    PrintCell(static_cast<double>(WorkloadFootprint(ssb_db, SsbQueries())) /
              (1 << 20));
    PrintCell(static_cast<double>(WorkloadFootprint(tpch_db, TpchQueries())) /
              (1 << 20));
    PrintCell(static_cast<double>(PaperConfig().device_cache_bytes) /
              (1 << 20));
    EndRow();
  }
  return 0;
}
