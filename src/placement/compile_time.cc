#include "placement/compile_time.h"

#include <algorithm>
#include <limits>
#include <unordered_set>

#include "common/logging.h"

namespace hetdb {

namespace {

/// Static cardinality guesses for compile-time cost estimation. Being rough
/// is deliberate: the paper lists the dependence on cardinality estimates as
/// a core weakness of compile-time placement (Section 4, drawback 2).
constexpr double kSelectSelectivity = 0.1;
constexpr double kAggregateReduction = 0.05;

/// Estimated output bytes per node, bottom-up.
double EstimateOutputBytes(const PlanNode& node,
                           const std::vector<double>& child_bytes) {
  switch (node.op()) {
    case PlanOp::kScan:
      return static_cast<double>(node.InputBytes({}));
    case PlanOp::kSelect:
      return child_bytes[0] * kSelectSelectivity;
    case PlanOp::kJoin:
      // PK-FK join: output cardinality ~ probe side.
      return child_bytes[1];
    case PlanOp::kAggregate:
      return child_bytes[0] * kAggregateReduction;
    case PlanOp::kSort:
    case PlanOp::kProject:
      return child_bytes[0];
    case PlanOp::kLimit:
      return std::min(child_bytes[0], 4096.0);
    case PlanOp::kFusedPipeline:
      // Source (child 0) flows through the fused chain's selections and
      // probes; build sides only feed hash tables.
      return child_bytes.empty() ? 0 : child_bytes[0] * kSelectSelectivity;
  }
  return child_bytes.empty() ? 0 : child_bytes[0];
}

struct PlanCostEstimator {
  EngineContext& ctx;
  const PlacementMap& placement;

  ProcessorKind PlacementOf(const PlanNode* node) const {
    auto it = placement.find(node);
    return it != placement.end() ? it->second : ProcessorKind::kCpu;
  }

  /// Returns {completion_micros, estimated_output_bytes}.
  std::pair<double, double> Estimate(const PlanNodePtr& node) const {
    std::vector<double> child_bytes;
    double children_completion = 0;
    double transfer_micros = 0;
    const ProcessorKind here = PlacementOf(node.get());
    for (const PlanNodePtr& child : node->children()) {
      auto [child_completion, bytes] = Estimate(child);
      // Children run in parallel: completion is the max.
      children_completion = std::max(children_completion, child_completion);
      child_bytes.push_back(bytes);
      if (PlacementOf(child.get()) != here && child->op() != PlanOp::kScan) {
        transfer_micros += ctx.simulator().EstimateTransferMicros(
            static_cast<size_t>(bytes));
      }
    }
    double input_bytes = 0;
    for (double b : child_bytes) input_bytes += b;
    if (node->op() == PlanOp::kScan) {
      input_bytes = static_cast<double>(node->InputBytes({}));
      if (here == ProcessorKind::kGpu) {
        // Uncached base columns must cross the bus.
        const auto& scan = static_cast<const ScanNode&>(*node);
        size_t missing = 0;
        for (const auto& [key, column] : scan.base_columns()) {
          if (!ctx.IsCachedOnAnyDevice(key)) missing += column->data_bytes();
        }
        transfer_micros += ctx.simulator().EstimateTransferMicros(missing);
      }
    }
    const double kernel_micros =
        node->op() == PlanOp::kScan
            ? 0
            : ctx.cost_model().EstimateMicros(
                  here, node->op_class(), static_cast<size_t>(input_bytes));
    const double completion =
        children_completion + transfer_micros + kernel_micros;
    return {completion, EstimateOutputBytes(*node, child_bytes)};
  }
};

void AssignAll(const PlanNodePtr& root, ProcessorKind kind,
               PlacementMap* placement) {
  VisitPlanPostOrder(root, [&](const PlanNodePtr& node) {
    (*placement)[node.get()] = kind;
  });
}

/// Derives a full placement from the set of device leaves: a leaf is on the
/// device iff selected; any other operator is on the device iff all its
/// children are (the "chain" rule of Appendix D / Section 3.3).
PlacementMap DerivePlacementFromLeaves(
    const PlanNodePtr& root,
    const std::unordered_set<const PlanNode*>& gpu_leaves) {
  PlacementMap placement;
  VisitPlanPostOrder(root, [&](const PlanNodePtr& node) {
    if (node->children().empty()) {
      placement[node.get()] = gpu_leaves.count(node.get()) > 0
                                  ? ProcessorKind::kGpu
                                  : ProcessorKind::kCpu;
      return;
    }
    bool all_gpu = true;
    for (const PlanNodePtr& child : node->children()) {
      if (placement[child.get()] != ProcessorKind::kGpu) all_gpu = false;
    }
    placement[node.get()] =
        all_gpu ? ProcessorKind::kGpu : ProcessorKind::kCpu;
  });
  return placement;
}

std::vector<const PlanNode*> CollectLeaves(const PlanNodePtr& root) {
  std::vector<const PlanNode*> leaves;
  VisitPlanPostOrder(root, [&](const PlanNodePtr& node) {
    if (node->children().empty()) leaves.push_back(node.get());
  });
  return leaves;
}

}  // namespace

PlacementMap PlaceCpuOnly(const PlanNodePtr& root) {
  PlacementMap placement;
  AssignAll(root, ProcessorKind::kCpu, &placement);
  return placement;
}

PlacementMap PlaceGpuOnly(const PlanNodePtr& root) {
  PlacementMap placement;
  AssignAll(root, ProcessorKind::kGpu, &placement);
  return placement;
}

PlacementMap PlaceDataDriven(const PlanNodePtr& root, EngineContext& ctx) {
  PlacementMap placement;
  VisitPlanPostOrder(root, [&](const PlanNodePtr& node) {
    if (node->op() == PlanOp::kScan) {
      const auto& scan = static_cast<const ScanNode&>(*node);
      bool all_cached = true;
      for (const auto& [key, column] : scan.base_columns()) {
        if (!ctx.IsCachedOnAnyDevice(key)) all_cached = false;
      }
      placement[node.get()] =
          all_cached ? ProcessorKind::kGpu : ProcessorKind::kCpu;
      return;
    }
    bool all_gpu = true;
    for (const PlanNodePtr& child : node->children()) {
      if (placement[child.get()] != ProcessorKind::kGpu) all_gpu = false;
    }
    placement[node.get()] =
        all_gpu ? ProcessorKind::kGpu : ProcessorKind::kCpu;
  });
  return placement;
}

double EstimatePlanResponseMicros(const PlanNodePtr& root,
                                  const PlacementMap& placement,
                                  EngineContext& ctx) {
  PlanCostEstimator estimator{ctx, placement};
  return estimator.Estimate(root).first;
}

PlacementMap PlaceCriticalPath(const PlanNodePtr& root, EngineContext& ctx,
                               int max_iterations) {
  const std::vector<const PlanNode*> leaves = CollectLeaves(root);
  std::unordered_set<const PlanNode*> gpu_leaves;

  PlacementMap best_placement = DerivePlacementFromLeaves(root, gpu_leaves);
  double best_cost = EstimatePlanResponseMicros(root, best_placement, ctx);

  for (int iteration = 0; iteration < max_iterations; ++iteration) {
    const PlanNode* best_leaf = nullptr;
    PlacementMap best_candidate;
    double best_candidate_cost = std::numeric_limits<double>::infinity();

    for (const PlanNode* leaf : leaves) {
      if (gpu_leaves.count(leaf) > 0) continue;
      std::unordered_set<const PlanNode*> candidate_leaves = gpu_leaves;
      candidate_leaves.insert(leaf);
      PlacementMap candidate = DerivePlacementFromLeaves(root, candidate_leaves);
      const double cost = EstimatePlanResponseMicros(root, candidate, ctx);
      if (cost < best_candidate_cost) {
        best_candidate_cost = cost;
        best_candidate = std::move(candidate);
        best_leaf = leaf;
      }
    }
    if (best_leaf == nullptr || best_candidate_cost >= best_cost) {
      break;  // no single additional leaf improves the plan
    }
    gpu_leaves.insert(best_leaf);
    best_placement = std::move(best_candidate);
    best_cost = best_candidate_cost;
  }
  return best_placement;
}

}  // namespace hetdb
