file(REMOVE_RECURSE
  "libhetdb_storage.a"
)
