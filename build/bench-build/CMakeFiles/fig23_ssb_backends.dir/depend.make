# Empty dependencies file for fig23_ssb_backends.
# This may be replaced when dependencies are built.
