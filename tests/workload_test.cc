#include <gtest/gtest.h>

#include "common/config.h"
#include "ssb/ssb_generator.h"
#include "tests/test_util.h"
#include "workload/workload.h"

namespace hetdb {
namespace {

DatabasePtr SmallSsbDb() {
  SsbGeneratorOptions options;
  options.scale_factor = 0.1;  // 6,000 lineorder rows
  return GenerateSsbDatabase(options);
}

/// Workload-counter expectations below assume one co-processor (one bus, one
/// heap); pin device_count so the machine shape stays fixed even if the
/// multi-device default ever changes (tests/multi_device_test.cc owns the
/// N-device behavior).
SystemConfig SingleDeviceConfig() {
  SystemConfig config = TestConfig();
  config.device_count = 1;
  return config;
}

TEST(MicroWorkloadTest, SerialSelectionHasEightDistinctColumns) {
  std::vector<NamedQuery> queries = SerialSelectionQueries();
  ASSERT_EQ(queries.size(), 8u);
  DatabasePtr db = SmallSsbDb();
  std::set<std::string> names;
  for (const NamedQuery& query : queries) {
    names.insert(query.name);
    Result<PlanNodePtr> plan = query.builder(*db);
    ASSERT_TRUE(plan.ok());
    // Each query scans exactly one lineorder column.
    const auto& scan = static_cast<const ScanNode&>(*plan.value()->children()[0]);
    EXPECT_EQ(scan.base_columns().size(), 1u);
  }
  EXPECT_EQ(names.size(), 8u);
}

TEST(MicroWorkloadTest, ParallelSelectionHasFourOperators) {
  DatabasePtr db = SmallSsbDb();
  std::vector<NamedQuery> queries = ParallelSelectionQueries();
  ASSERT_EQ(queries.size(), 1u);
  Result<PlanNodePtr> plan = queries[0].builder(*db);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(CountPlanNodes(plan.value()), 4u);
}

TEST(WorkloadDriverTest, RunsAllQueries) {
  DatabasePtr db = SmallSsbDb();
  EngineContext ctx(SingleDeviceConfig(), db);
  StrategyRunner runner(&ctx, Strategy::kCpuOnly);
  WorkloadRunOptions options;
  options.repetitions = 3;
  options.warmup_repetitions = 1;
  WorkloadRunResult result =
      RunWorkload(runner, SerialSelectionQueries(), options);
  EXPECT_EQ(result.queries_run, 24u);  // 8 queries x 3 repetitions
  EXPECT_EQ(result.failed_queries, 0u);
  EXPECT_EQ(result.latency_ms_by_query.size(), 8u);
  EXPECT_GT(result.wall_millis, 0.0);
  // CPU-only: nothing crossed the bus during measurement.
  EXPECT_EQ(result.h2d_bytes, 0u);
  EXPECT_EQ(result.gpu_operators, 0u);
}

TEST(WorkloadDriverTest, MultiUserDoesSameTotalWork) {
  DatabasePtr db = SmallSsbDb();
  EngineContext ctx(SingleDeviceConfig(), db);
  StrategyRunner runner(&ctx, Strategy::kCpuOnly);
  WorkloadRunOptions options;
  options.repetitions = 4;
  options.num_users = 4;
  options.warmup_repetitions = 0;
  WorkloadRunResult result =
      RunWorkload(runner, SerialSelectionQueries(), options);
  EXPECT_EQ(result.queries_run, 32u);
  EXPECT_EQ(result.failed_queries, 0u);
}

TEST(WorkloadDriverTest, AdmissionControlSerializesQueries) {
  DatabasePtr db = SmallSsbDb();
  EngineContext ctx(SingleDeviceConfig(), db);
  StrategyRunner runner(&ctx, Strategy::kGpuOnly);
  WorkloadRunOptions options;
  options.repetitions = 2;
  options.num_users = 4;
  options.admission_limit = 1;
  options.warmup_repetitions = 0;
  WorkloadRunResult result =
      RunWorkload(runner, ParallelSelectionQueries(), options);
  EXPECT_EQ(result.queries_run, 2u);
  EXPECT_EQ(result.failed_queries, 0u);
}

TEST(WorkloadDriverTest, WarmupTrainsPlacementBeforeMeasurement) {
  DatabasePtr db = SmallSsbDb();
  SystemConfig config = SingleDeviceConfig();
  config.device_cache_bytes = 4ull << 20;  // room for the whole working set
  config.device_memory_bytes = 8ull << 20;
  EngineContext ctx(config, db);
  StrategyRunner runner(&ctx, Strategy::kDataDriven);
  WorkloadRunOptions options;
  options.repetitions = 2;
  WorkloadRunResult result =
      RunWorkload(runner, SerialSelectionQueries(), options);
  // After warm-up + placement, all eight columns are cached: the measured
  // phase runs on the device without host-to-device traffic.
  EXPECT_EQ(result.h2d_bytes, 0u);
  EXPECT_GT(result.gpu_operators, 0u);
  EXPECT_EQ(result.gpu_aborts, 0u);
}

/// The paper's core robustness claim, as a unit test: with a heap too small
/// for the concurrent operator footprint, GPU-only thrashes with aborts;
/// chopping (1 device worker) avoids them; and both produce correct results.
TEST(RobustnessTest, ChoppingAvoidsHeapContentionAborts) {
  // This scenario needs the unfused selection chain: fusing it removes the
  // intermediate selection-vector footprint entirely (zero heap charge for
  // filter-only pipelines — see the fusion ablation in EXPERIMENTS.md), so
  // with fusion on there is no contention left to measure.
  const bool saved_fusion = GlobalKernelConfig().fusion;
  GlobalKernelConfig().fusion = false;
  DatabasePtr db = SmallSsbDb();
  SystemConfig config = SingleDeviceConfig();
  // Operators must genuinely overlap for contention to occur, so this test
  // runs with time simulation on (sub-millisecond modeled durations).
  config.simulate_time = true;
  // Cache fits the two filter columns; heap fits ~1.5 concurrent selections.
  const size_t column_bytes =
      db->GetColumnByQualifiedName("lineorder.lo_discount").value()->data_bytes();
  config.device_cache_bytes = 3 * column_bytes;
  config.device_memory_bytes = config.device_cache_bytes + 5 * column_bytes;

  WorkloadRunOptions options;
  options.repetitions = 16;
  options.num_users = 8;

  uint64_t aborts_gpu_only = 0, aborts_chopping = 0;
  {
    EngineContext ctx(config, db);
    StrategyRunner runner(&ctx, Strategy::kGpuOnly);
    WorkloadRunResult result =
        RunWorkload(runner, ParallelSelectionQueries(), options);
    EXPECT_EQ(result.failed_queries, 0u);
    aborts_gpu_only = result.gpu_aborts;
  }
  {
    EngineContext ctx(config, db);
    StrategyRunner runner(&ctx, Strategy::kDataDrivenChopping);
    WorkloadRunResult result =
        RunWorkload(runner, ParallelSelectionQueries(), options);
    EXPECT_EQ(result.failed_queries, 0u);
    aborts_chopping = result.gpu_aborts;
  }
  EXPECT_GT(aborts_gpu_only, 0u);
  EXPECT_LT(aborts_chopping, aborts_gpu_only);
  GlobalKernelConfig().fusion = saved_fusion;
}

TEST(WorkloadResultTest, ToStringMentionsKeyFields) {
  WorkloadRunResult result;
  result.wall_millis = 12.5;
  result.gpu_aborts = 3;
  const std::string text = result.ToString();
  EXPECT_NE(text.find("wall=12.5"), std::string::npos);
  EXPECT_NE(text.find("aborts=3"), std::string::npos);
}

TEST(WorkloadResultTest, PerQueryBreakdownIsPopulatedAndPrinted) {
  DatabasePtr db = SmallSsbDb();
  EngineContext ctx(SingleDeviceConfig(), db);
  StrategyRunner runner(&ctx, Strategy::kGpuOnly);
  WorkloadRunOptions options;
  options.repetitions = 2;
  options.warmup_repetitions = 1;
  WorkloadRunResult result =
      RunWorkload(runner, SerialSelectionQueries(), options);
  ASSERT_EQ(result.latency_stats_by_query.size(), 8u);
  double total_execute_ms = 0;
  for (const auto& [name, stats] : result.latency_stats_by_query) {
    EXPECT_EQ(stats.count, 2u) << name;
    EXPECT_GE(stats.execute_ms, 0.0) << name;
    EXPECT_GE(stats.queue_wait_ms, 0.0) << name;
    EXPECT_EQ(stats.device_retries, 0u) << name;
    EXPECT_EQ(stats.cpu_fallbacks, 0u) << name;
    total_execute_ms += stats.execute_ms;
  }
  // The attribution layer fed the breakdown: operators actually ran.
  EXPECT_GT(total_execute_ms, 0.0);
  const std::string text = result.PerQueryToString();
  EXPECT_NE(text.find("per-query breakdown"), std::string::npos);
  EXPECT_NE(text.find("queue_wait="), std::string::npos);
  EXPECT_NE(text.find("execute="), std::string::npos);
  EXPECT_NE(text.find("cpu_fallbacks="), std::string::npos);
}

}  // namespace
}  // namespace hetdb
