// Multi-user robustness demo: the paper's headline scenario end-to-end.
// Twenty analysts fire SSB queries at a machine whose co-processor heap is
// far too small for that concurrency. GPU-Preferred execution thrashes the
// heap (aborts, wasted time, bus traffic); Data-Driven Chopping stays
// robust. Prints a side-by-side comparison.
//
//   ./build/examples/multi_user_robustness [users] [think_ms] [seed]
//   (defaults: 16 users, no think time, seed 42)

#include <cstdio>
#include <cstdlib>

#include "ssb/ssb_generator.h"
#include "workload/workload.h"

using namespace hetdb;

int main(int argc, char** argv) {
  const int users = argc > 1 ? std::atoi(argv[1]) : 16;
  const double think_ms = argc > 2 ? std::atof(argv[2]) : 0;
  const uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 42;

  SsbGeneratorOptions gen;
  gen.scale_factor = 5.0;
  DatabasePtr db = GenerateSsbDatabase(gen);
  std::printf("SSB SF5 (%zu MB), %d parallel users, small co-processor\n\n",
              db->TotalBytes() >> 20, users);

  SystemConfig config;
  config.device_memory_bytes = 24ull << 20;
  config.device_cache_bytes = 14ull << 20;
  config.time_scale = 2.0;

  WorkloadRunOptions options;
  options.repetitions = 2;
  options.num_users = users;
  options.think_time_ms = think_ms;  // sessions share the user_sim loop
  options.seed = seed;

  std::printf("%-22s %10s %9s %8s %11s %12s\n", "strategy", "time[ms]",
              "aborts", "wasted", "h2d[ms]", "gpu/cpu ops");
  for (Strategy strategy :
       {Strategy::kGpuOnly, Strategy::kRunTime, Strategy::kChopping,
        Strategy::kDataDrivenChopping, Strategy::kCpuOnly}) {
    EngineContext ctx(config, db);
    StrategyRunner runner(&ctx, strategy);
    const WorkloadRunResult result = RunWorkload(runner, SsbQueries(), options);
    std::printf("%-22s %10.1f %9llu %8.1f %11.1f %6llu/%llu\n",
                StrategyToString(strategy), result.wall_millis,
                static_cast<unsigned long long>(result.gpu_aborts),
                result.wasted_millis, result.h2d_transfer_millis,
                static_cast<unsigned long long>(result.gpu_operators),
                static_cast<unsigned long long>(result.cpu_operators));
    if (result.failed_queries > 0) {
      std::printf("  !! %llu queries failed\n",
                  static_cast<unsigned long long>(result.failed_queries));
      return 1;
    }
  }
  std::printf(
      "\nRobust query processing means the co-processor never makes things\n"
      "worse: compare the last column pairs — chopping uses the device only\n"
      "to the degree the heap allows, so aborts and wasted time vanish.\n");
  return 0;
}
