#ifndef HETDB_TELEMETRY_METRIC_REGISTRY_H_
#define HETDB_TELEMETRY_METRIC_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "telemetry/histogram.h"

namespace hetdb {

/// Monotonically increasing counter (relaxed atomic).
class Counter {
 public:
  void Increment(int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Last-write-wins instantaneous value (relaxed atomic).
class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Named counters, gauges, and histograms with create-on-first-use lookup.
///
/// `Get*` takes the registry mutex; hot paths should look a metric up once
/// and keep the returned reference — it stays valid for the registry's
/// lifetime (metrics are never removed). Recording through the returned
/// objects is lock-free. Naming convention: `subsystem.metric` with `.`
/// separators and an optional `.<label>` suffix, e.g.
/// `workload.latency_us.Q1.1`.
class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  Histogram& GetHistogram(const std::string& name);

  /// Zeroes every registered metric (the instruments stay registered, so
  /// cached references remain valid across measurement phases).
  void Reset();

  /// Sorted name -> value snapshots for the exporters.
  std::vector<std::pair<std::string, int64_t>> CounterValues() const;
  std::vector<std::pair<std::string, int64_t>> GaugeValues() const;
  std::vector<std::pair<std::string, HistogramSnapshot>> HistogramSnapshots()
      const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace hetdb

#endif  // HETDB_TELEMETRY_METRIC_REGISTRY_H_
